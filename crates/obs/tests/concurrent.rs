//! Concurrency contract: span/counter/histogram recording from many
//! threads (the situation `mersit_tensor::par` workers create) must not
//! lose or duplicate samples.

use mersit_obs::Registry;
use std::sync::Arc;
use std::thread;

const THREADS: usize = 8;
const PER_THREAD: usize = 500;

#[test]
fn concurrent_spans_into_global_registry_lose_nothing() {
    mersit_obs::set_enabled(true);
    mersit_obs::reset();
    thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    let _g = mersit_obs::span("conc.span");
                    mersit_obs::add("conc.counter", (t + i) as u64 % 3 + 1);
                    mersit_obs::observe("conc.hist", (i + 1) as f64);
                }
            });
        }
    });
    let snap = mersit_obs::global().snapshot();
    let span = snap.spans.iter().find(|s| s.name == "conc.span").unwrap();
    assert_eq!(span.stats.count, (THREADS * PER_THREAD) as u64);
    assert!(span.stats.min_ns <= span.stats.max_ns);
    assert!(span.stats.total_ns >= span.stats.max_ns);

    let hist = snap
        .histograms
        .iter()
        .find(|h| h.name == "conc.hist")
        .unwrap();
    assert_eq!(hist.stats.count, (THREADS * PER_THREAD) as u64);
    assert_eq!(
        hist.stats.buckets.iter().sum::<u64>(),
        (THREADS * PER_THREAD) as u64,
        "every observation must land in exactly one bucket"
    );

    // The counter total is exactly the sum each thread contributed.
    let expect: u64 = (0..THREADS)
        .flat_map(|t| (0..PER_THREAD).map(move |i| (t + i) as u64 % 3 + 1))
        .sum();
    let counter = snap
        .counters
        .iter()
        .find(|c| c.name == "conc.counter")
        .unwrap();
    assert_eq!(counter.value, expect);
    mersit_obs::set_enabled(false);
}

#[test]
fn concurrent_recording_into_a_local_registry() {
    // Local registries are always live (no toggle) — hammer one from many
    // threads and check exact totals.
    let reg = Arc::new(Registry::new());
    thread::scope(|s| {
        for _ in 0..THREADS {
            let reg = Arc::clone(&reg);
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    reg.record_span_ns("local.span", i as u64);
                    reg.add("local.counter", 1);
                }
            });
        }
    });
    let snap = reg.snapshot();
    assert_eq!(snap.spans[0].stats.count, (THREADS * PER_THREAD) as u64);
    let per_thread_total: u64 = (0..PER_THREAD as u64).sum();
    assert_eq!(
        snap.spans[0].stats.total_ns,
        per_thread_total * THREADS as u64
    );
    assert_eq!(snap.spans[0].stats.min_ns, 0);
    assert_eq!(snap.spans[0].stats.max_ns, PER_THREAD as u64 - 1);
    assert_eq!(snap.counters[0].value, (THREADS * PER_THREAD) as u64);
}
