//! Disabled-mode contract: with the `MERSIT_OBS` toggle off, recording
//! through the global convenience API is a strict no-op — the returned
//! span guards are inert (no monotonic-clock read is ever taken, which is
//! what `is_active() == false` certifies: an active guard *is* a captured
//! `Instant`), dynamic span names are never materialized (the closure
//! would have to run to allocate), and nothing reaches the registry.

use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn disabled_recording_is_a_no_op() {
    mersit_obs::set_enabled(false);
    mersit_obs::reset();

    // Spans: guard is inert — it holds no Instant, so constructing and
    // dropping it performs no timing syscall and records nothing.
    for _ in 0..1000 {
        let g = mersit_obs::span("noop.span");
        assert!(!g.is_active());
    }

    // Dynamic spans: the name closure must not even run (running it would
    // be the allocation the hot path is not allowed to make).
    static NAME_BUILDS: AtomicUsize = AtomicUsize::new(0);
    for _ in 0..1000 {
        let g = mersit_obs::span_dyn(|| {
            NAME_BUILDS.fetch_add(1, Ordering::Relaxed);
            String::from("noop.dyn")
        });
        assert!(!g.is_active());
    }
    assert_eq!(NAME_BUILDS.load(Ordering::Relaxed), 0);

    // Counters and histograms: silently dropped.
    for i in 0..1000 {
        mersit_obs::add("noop.counter", i);
        mersit_obs::incr("noop.incr");
        mersit_obs::observe("noop.hist", i as f64);
    }

    let snap = mersit_obs::global().snapshot();
    assert!(snap.is_empty(), "disabled mode leaked metrics: {snap:?}");
    let report = mersit_obs::RunReport::capture("noop");
    assert!(report.snapshot.is_empty());

    // And the report sink refuses to write while disabled.
    let written = mersit_obs::report::write_global_report("noop").unwrap();
    assert_eq!(written, None);
}
