//! Snapshot test pinning the `RunReport` JSON schema: deterministic
//! inputs through the public recording API must serialize to exactly this
//! artifact, byte for byte. Consumers parse these files — schema changes
//! must bump `REPORT_VERSION` and update this snapshot deliberately.

use mersit_obs::{Registry, RunReport};

#[test]
fn run_report_json_schema_snapshot() {
    let reg = Registry::new();
    reg.record_span_ns("quantize", 1_500);
    reg.record_span_ns("quantize", 2_500);
    reg.record_span_ns("calibrate", 1_000_000);
    reg.add("elements", 4096);
    reg.add("threads", 8);
    reg.observe("chunk_units", 1024.0);

    let json = RunReport::of("schema", &reg).to_json();
    let expected = r#"{
  "version": 1,
  "bin": "schema",
  "spans": [
    {"name": "calibrate", "count": 1, "total_ns": 1000000, "min_ns": 1000000, "max_ns": 1000000, "mean_ns": 1000000.0},
    {"name": "quantize", "count": 2, "total_ns": 4000, "min_ns": 1500, "max_ns": 2500, "mean_ns": 2000.0}
  ],
  "counters": [
    {"name": "elements", "value": 4096},
    {"name": "threads", "value": 8}
  ],
  "histograms": [
    {"name": "chunk_units", "count": 1, "sum": 1024.0, "min": 1024.0, "max": 1024.0, "buckets": [{"le": 2048.0, "count": 1}]}
  ]
}
"#;
    assert_eq!(json, expected);
}

#[test]
fn report_round_trips_through_a_file() {
    let reg = Registry::new();
    reg.add("written", 1);
    let report = RunReport::of("file_test", &reg);
    let dir = std::env::temp_dir().join("mersit_obs_schema_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("OBS_file_test.json");
    report.write_json(&path).unwrap();
    let back = std::fs::read_to_string(&path).unwrap();
    assert_eq!(back, report.to_json());
    std::fs::remove_file(&path).ok();
}
