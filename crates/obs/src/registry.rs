//! The thread-safe metric store: span statistics, counters, and
//! log2-bucketed histograms keyed by name.
//!
//! Recording locks one mutex per metric kind; entries are `BTreeMap`s so
//! snapshots (and the JSON report built from them) come out in a stable,
//! sorted order. Span *ends* are the only contended operations — the
//! timed work itself runs outside the lock — so contention stays
//! proportional to the number of spans, not the work inside them.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Number of log2 histogram buckets.
pub(crate) const N_HIST_BUCKETS: usize = 48;

/// Bucket `i` covers values in `[2^(i - HIST_BIAS), 2^(i + 1 - HIST_BIAS))`;
/// with a bias of 16 the histogram spans `2^-16 ..= 2^31`, enough for
/// activation magnitudes, chunk sizes, and nanosecond-scale durations
/// alike (out-of-range values clamp into the edge buckets).
pub(crate) const HIST_BIAS: i32 = 16;

/// Aggregate statistics of one named span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of recorded span executions.
    pub count: u64,
    /// Total duration across executions, nanoseconds.
    pub total_ns: u64,
    /// Shortest execution, nanoseconds.
    pub min_ns: u64,
    /// Longest execution, nanoseconds.
    pub max_ns: u64,
}

impl SpanStats {
    fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }
}

/// One histogram: count/sum/min/max plus log2 buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct HistStats {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Log2 buckets; index `i` counts values in
    /// `[2^(i - 16), 2^(i - 15))` (clamped at the edges, zeros and
    /// negatives land in bucket 0).
    pub buckets: [u64; N_HIST_BUCKETS],
}

impl HistStats {
    fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; N_HIST_BUCKETS],
        }
    }

    fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }
}

/// The log2 bucket a value falls into.
pub(crate) fn bucket_index(v: f64) -> usize {
    if v <= 0.0 || !v.is_finite() {
        if v.is_finite() {
            return 0;
        }
        return N_HIST_BUCKETS - 1;
    }
    let e = v.log2().floor() as i64 + i64::from(HIST_BIAS);
    let max = i64::try_from(N_HIST_BUCKETS - 1).expect("small constant");
    usize::try_from(e.clamp(0, max)).expect("clamped to non-negative")
}

type Name = Cow<'static, str>;

/// Thread-safe store of spans, counters, and histograms.
///
/// A process-global instance backs the crate-level convenience functions
/// (see [`crate::global`]); tests and embedders may also hold private
/// instances and record into them directly — a local registry is always
/// live, independent of the `MERSIT_OBS` toggle.
#[derive(Debug, Default)]
pub struct Registry {
    spans: Mutex<BTreeMap<Name, SpanStats>>,
    counters: Mutex<BTreeMap<Name, u64>>,
    hists: Mutex<BTreeMap<Name, HistStats>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one span execution of `ns` nanoseconds into the named span's
    /// statistics.
    pub fn record_span_ns(&self, name: impl Into<Name>, ns: u64) {
        let mut spans = self.spans.lock().expect("obs span lock");
        spans
            .entry(name.into())
            .or_insert(SpanStats {
                count: 0,
                total_ns: 0,
                min_ns: u64::MAX,
                max_ns: 0,
            })
            .record(ns);
    }

    /// Adds `n` to the named counter.
    pub fn add(&self, name: impl Into<Name>, n: u64) {
        let mut counters = self.counters.lock().expect("obs counter lock");
        *counters.entry(name.into()).or_insert(0) += n;
    }

    /// Records one observation into the named histogram.
    pub fn observe(&self, name: impl Into<Name>, value: f64) {
        let mut hists = self.hists.lock().expect("obs hist lock");
        hists
            .entry(name.into())
            .or_insert_with(HistStats::new)
            .record(value);
    }

    /// Removes every recorded metric.
    pub fn clear(&self) {
        self.spans.lock().expect("obs span lock").clear();
        self.counters.lock().expect("obs counter lock").clear();
        self.hists.lock().expect("obs hist lock").clear();
    }

    /// A consistent-per-kind copy of the current contents, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let spans = self
            .spans
            .lock()
            .expect("obs span lock")
            .iter()
            .map(|(k, v)| SpanSnapshot {
                name: k.to_string(),
                stats: *v,
            })
            .collect();
        let counters = self
            .counters
            .lock()
            .expect("obs counter lock")
            .iter()
            .map(|(k, &v)| CounterSnapshot {
                name: k.to_string(),
                value: v,
            })
            .collect();
        let histograms = self
            .hists
            .lock()
            .expect("obs hist lock")
            .iter()
            .map(|(k, v)| HistogramSnapshot {
                name: k.to_string(),
                stats: v.clone(),
            })
            .collect();
        Snapshot {
            spans,
            counters,
            histograms,
        }
    }
}

/// Point-in-time copy of one span's aggregate statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Span name.
    pub name: String,
    /// Aggregate statistics.
    pub stats: SpanStats,
}

/// Point-in-time copy of one counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Counter name.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Aggregate statistics and buckets.
    pub stats: HistStats,
}

/// Everything a [`Registry`] held at snapshot time, sorted by name within
/// each kind.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// All spans.
    pub spans: Vec<SpanSnapshot>,
    /// All counters.
    pub counters: Vec<CounterSnapshot>,
    /// All histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact values recorded, exact values expected
mod tests {
    use super::*;

    #[test]
    fn span_stats_fold_min_max_total() {
        let reg = Registry::new();
        for ns in [30, 10, 20] {
            reg.record_span_ns("s", ns);
        }
        let snap = reg.snapshot();
        assert_eq!(
            snap.spans[0].stats,
            SpanStats {
                count: 3,
                total_ns: 60,
                min_ns: 10,
                max_ns: 30
            }
        );
    }

    #[test]
    fn counters_accumulate() {
        let reg = Registry::new();
        reg.add("c", 2);
        reg.add("c", 40);
        reg.add("d", 1);
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].value, 42);
        assert_eq!(snap.counters[1].name, "d");
    }

    #[test]
    fn histogram_buckets_by_log2() {
        assert_eq!(bucket_index(1.0), 16);
        assert_eq!(bucket_index(2.0), 17);
        assert_eq!(bucket_index(3.9), 17);
        assert_eq!(bucket_index(0.5), 15);
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(1e-30), 0);
        assert_eq!(bucket_index(1e30), N_HIST_BUCKETS - 1);
        assert_eq!(bucket_index(f64::INFINITY), N_HIST_BUCKETS - 1);
        let reg = Registry::new();
        reg.observe("h", 1.5);
        reg.observe("h", 1.75);
        reg.observe("h", 100.0);
        let snap = reg.snapshot();
        let h = &snap.histograms[0].stats;
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets[16], 2);
        assert_eq!(h.buckets[22], 1); // 100 ∈ [64, 128)
        assert_eq!(h.min, 1.5);
        assert_eq!(h.max, 100.0);
    }

    #[test]
    fn clear_empties_everything() {
        let reg = Registry::new();
        reg.record_span_ns("s", 1);
        reg.add("c", 1);
        reg.observe("h", 1.0);
        assert!(!reg.snapshot().is_empty());
        reg.clear();
        assert!(reg.snapshot().is_empty());
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let reg = Registry::new();
        reg.add("zeta", 1);
        reg.add("alpha", 1);
        let names: Vec<_> = reg
            .snapshot()
            .counters
            .iter()
            .map(|c| c.name.clone())
            .collect();
        assert_eq!(names, ["alpha", "zeta"]);
    }
}
