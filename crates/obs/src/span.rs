//! The RAII span guard: reads the monotonic clock on construction and
//! folds the elapsed time into the global registry on drop.
//!
//! Guards come in two flavors — *active* (holds a name and an
//! [`Instant`]) and *inert* (holds nothing, does nothing on drop). The
//! crate-level [`crate::span()`] / [`crate::span_dyn`] constructors hand out
//! inert guards whenever recording is disabled, so a disabled span costs
//! one atomic load and zero clock syscalls.

use std::borrow::Cow;
use std::time::Instant;

/// RAII handle for one timed span execution.
///
/// Created by [`crate::span()`] / [`crate::span_dyn`]. Dropping an active
/// guard records the elapsed nanoseconds under the span's name in the
/// global registry; dropping an inert guard does nothing.
#[derive(Debug)]
#[must_use = "a span guard records on drop; binding it to `_` ends the span immediately"]
pub struct SpanGuard {
    inner: Option<(Cow<'static, str>, Instant)>,
}

impl SpanGuard {
    /// A guard that times from now until drop.
    pub(crate) fn active(name: Cow<'static, str>) -> Self {
        Self {
            inner: Some((name, Instant::now())),
        }
    }

    /// A guard that records nothing (disabled mode). Public so
    /// instrumented code can keep one variable binding for both modes.
    pub fn inert() -> Self {
        Self { inner: None }
    }

    /// Whether this guard will record on drop (false in disabled mode).
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, start)) = self.inner.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            crate::global().record_span_ns(name, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_guard_is_inactive_and_silent() {
        let g = SpanGuard::inert();
        assert!(!g.is_active());
        drop(g); // must not touch the global registry
    }

    #[test]
    fn active_guard_reports_active() {
        // Construct directly; recording goes to the global registry on
        // drop, which is harmless for other tests (unique name, and the
        // global-toggle tests run in their own processes).
        let g = SpanGuard::active(Cow::Borrowed("span_unit_test.direct"));
        assert!(g.is_active());
        drop(g);
        let snap = crate::global().snapshot();
        let s = snap
            .spans
            .iter()
            .find(|s| s.name == "span_unit_test.direct")
            .expect("recorded");
        assert!(s.stats.count >= 1);
    }
}
