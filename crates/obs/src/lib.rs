//! # mersit-obs — zero-dependency observability for the MERSIT pipeline
//!
//! Spans (monotonic wall-clock timing), counters, and log2-bucketed
//! histograms, recorded into a thread-safe [`Registry`] and serialized as
//! a JSON [`RunReport`] — the artifact every perf/robustness study in
//! this repository reports through.
//!
//! ## The `MERSIT_OBS` toggle
//!
//! Recording through the module-level convenience functions ([`fn@span`],
//! [`add`], [`observe`], …) goes to a process-global registry and is
//! **disabled by default**. It turns on when the `MERSIT_OBS` environment
//! variable is set to `1`/`true`/`on` (checked once, lazily), or
//! programmatically via [`set_enabled`]. While disabled, every recording
//! call is a no-op behind a single relaxed atomic load: no allocation, no
//! clock syscall, no lock — so instrumented hot paths stay at full speed,
//! and instrumentation never changes numeric results either way (it only
//! observes).
//!
//! ## Quick example: record a span and emit a report
//!
//! ```
//! use mersit_obs::{Registry, RunReport};
//!
//! // A local registry (the global one works the same way, gated by
//! // `MERSIT_OBS`).
//! let reg = Registry::new();
//! reg.record_span_ns("quantize", 1_500);
//! reg.record_span_ns("quantize", 2_500);
//! reg.add("elements", 4096);
//! reg.observe("chunk_units", 1024.0);
//!
//! let report = RunReport::of("example", &reg);
//! let json = report.to_json();
//! assert!(json.contains("\"name\": \"quantize\""));
//! assert!(json.contains("\"count\": 2"));
//! assert!(json.contains("\"total_ns\": 4000"));
//! ```

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(
    clippy::must_use_candidate,
    clippy::module_name_repetitions,
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::missing_panics_doc
)]

pub mod registry;
pub mod report;
pub mod span;

pub use registry::{CounterSnapshot, HistogramSnapshot, Registry, Snapshot, SpanSnapshot};
pub use report::RunReport;
pub use span::SpanGuard;

use std::borrow::Cow;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Tri-state enabled flag: 0 = uninitialized, 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);

const OFF: u8 = 1;
const ON: u8 = 2;

/// Whether global recording is on. The first call reads `MERSIT_OBS` from
/// the environment; later calls are a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        0 => init_from_env(),
        s => s == ON,
    }
}

/// Reads `MERSIT_OBS` and latches the toggle (`1`, `true`, `on`, `yes`
/// enable it; anything else, or unset, disables it). Returns the resulting
/// state. Called lazily by [`enabled`]; binaries may call it eagerly.
pub fn init_from_env() -> bool {
    let on = std::env::var("MERSIT_OBS").is_ok_and(|v| {
        let v = v.trim().to_ascii_lowercase();
        matches!(v.as_str(), "1" | "true" | "on" | "yes")
    });
    STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
    on
}

/// Forces the toggle on or off, overriding the environment (used by tests
/// and by binaries that manage their own reporting).
pub fn set_enabled(on: bool) {
    STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

/// The process-global registry that the convenience functions record into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Clears every span, counter, and histogram in the global registry.
pub fn reset() {
    global().clear();
}

/// Starts a span with a static name. Returns an inert guard (no clock
/// read) when recording is disabled; otherwise the guard records the
/// elapsed monotonic time into the global registry on drop.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if enabled() {
        SpanGuard::active(Cow::Borrowed(name))
    } else {
        SpanGuard::inert()
    }
}

/// Starts a span whose name is built lazily — the closure (and its
/// allocation) runs only when recording is enabled. Use for per-layer /
/// per-format span names.
#[inline]
pub fn span_dyn(name: impl FnOnce() -> String) -> SpanGuard {
    if enabled() {
        SpanGuard::active(Cow::Owned(name()))
    } else {
        SpanGuard::inert()
    }
}

/// Adds `n` to the named global counter (no-op while disabled).
#[inline]
pub fn add(name: &'static str, n: u64) {
    if enabled() {
        global().add(name, n);
    }
}

/// Increments the named global counter by one (no-op while disabled).
#[inline]
pub fn incr(name: &'static str) {
    add(name, 1);
}

/// Records one observation into the named global histogram (no-op while
/// disabled).
#[inline]
pub fn observe(name: &'static str, value: f64) {
    if enabled() {
        global().observe(name, value);
    }
}

/// Records one observation into a histogram whose name is built lazily —
/// the closure (and its allocation) runs only when recording is enabled.
/// Use for per-site / per-format histogram names, mirroring [`span_dyn`].
#[inline]
pub fn observe_dyn(name: impl FnOnce() -> String, value: f64) {
    if enabled() {
        global().observe(name(), value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: tests that flip the *global* toggle live in the integration
    // test files (one process each) so they cannot race unit tests that
    // rely on the default-off state.

    #[test]
    fn span_guard_is_small() {
        // The inert guard must stay cheap to construct and carry around.
        assert!(std::mem::size_of::<SpanGuard>() <= 64);
    }

    #[test]
    fn local_registry_records_without_global_toggle() {
        let reg = Registry::new();
        reg.record_span_ns("s", 10);
        reg.add("c", 3);
        reg.observe("h", 2.0);
        let snap = reg.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.histograms.len(), 1);
    }
}
