//! The JSON run-report sink: a [`RunReport`] snapshots a registry and
//! serializes it in the same hand-rolled, dependency-free artifact style
//! as `BENCH_ptq.json`.
//!
//! Schema (stable; the snapshot test in `tests/report_schema.rs` pins it):
//!
//! ```json
//! {
//!   "version": 1,
//!   "bin": "perf_ptq",
//!   "spans": [
//!     {"name": "...", "count": 2, "total_ns": 4000,
//!      "min_ns": 1500, "max_ns": 2500, "mean_ns": 2000.0}
//!   ],
//!   "counters": [{"name": "...", "value": 4096}],
//!   "histograms": [
//!     {"name": "...", "count": 1, "sum": 1024.0, "min": 1024.0,
//!      "max": 1024.0, "buckets": [{"le": 2048.0, "count": 1}]}
//!   ]
//! }
//! ```

use crate::registry::{Registry, Snapshot, HIST_BIAS, N_HIST_BUCKETS};
use std::fmt::Write as _;
use std::path::Path;

/// Schema version stamped into every report.
pub const REPORT_VERSION: u32 = 1;

/// A serializable snapshot of a registry, labelled with the binary (or
/// phase) that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Name of the producing binary / run.
    pub bin: String,
    /// The captured metrics.
    pub snapshot: Snapshot,
}

impl RunReport {
    /// Snapshots an explicit registry.
    pub fn of(bin: &str, registry: &Registry) -> Self {
        Self {
            bin: bin.to_owned(),
            snapshot: registry.snapshot(),
        }
    }

    /// Snapshots the process-global registry (see [`crate::global`]).
    pub fn capture(bin: &str) -> Self {
        Self::of(bin, crate::global())
    }

    /// Renders the report as a JSON string (schema above).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"version\": {REPORT_VERSION},");
        let _ = writeln!(out, "  \"bin\": \"{}\",", escape(&self.bin));

        out.push_str("  \"spans\": [");
        for (i, s) in self.snapshot.spans.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let mean = s.stats.total_ns as f64 / s.stats.count.max(1) as f64;
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"count\": {}, \"total_ns\": {}, \
                 \"min_ns\": {}, \"max_ns\": {}, \"mean_ns\": {}}}",
                escape(&s.name),
                s.stats.count,
                s.stats.total_ns,
                s.stats.min_ns,
                s.stats.max_ns,
                json_f64(mean)
            );
        }
        out.push_str("\n  ],\n");

        out.push_str("  \"counters\": [");
        for (i, c) in self.snapshot.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"value\": {}}}",
                escape(&c.name),
                c.value
            );
        }
        out.push_str("\n  ],\n");

        out.push_str("  \"histograms\": [");
        for (i, h) in self.snapshot.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"count\": {}, \"sum\": {}, \
                 \"min\": {}, \"max\": {}, \"buckets\": [",
                escape(&h.name),
                h.stats.count,
                json_f64(h.stats.sum),
                json_f64(h.stats.min),
                json_f64(h.stats.max)
            );
            let mut first = true;
            for (b, &count) in h.stats.buckets.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let _ = write!(
                    out,
                    "{{\"le\": {}, \"count\": {count}}}",
                    json_f64(bucket_upper_bound(b))
                );
            }
            out.push_str("]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes the JSON report to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_json(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Captures the global registry and writes `OBS_<bin>.json` **iff** the
/// `MERSIT_OBS` toggle is on. Returns the path written, if any. This is
/// the one-liner the bench binaries end with.
///
/// # Errors
///
/// Propagates the underlying filesystem error from writing the file.
pub fn write_global_report(bin: &str) -> std::io::Result<Option<String>> {
    if !crate::enabled() {
        return Ok(None);
    }
    let path = format!("OBS_{bin}.json");
    RunReport::capture(bin).write_json(&path)?;
    Ok(Some(path))
}

/// Upper bound (exclusive) of histogram bucket `i`.
fn bucket_upper_bound(i: usize) -> f64 {
    debug_assert!(i < N_HIST_BUCKETS);
    let i = i32::try_from(i).expect("bucket index is small");
    2f64.powi(i + 1 - HIST_BIAS)
}

/// JSON-legal rendering of an f64 (non-finite values become `null`).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Ensure a numeric token that JSON parsers keep as a float.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_owned()
    }
}

/// Escapes a metric name for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact powers of two, exact comparisons
mod tests {
    use super::*;

    #[test]
    fn json_f64_always_emits_a_float_token() {
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(1.5), "1.5");
        // Rust's f64 Display never uses exponent notation; the integer
        // rendering still gets a ".0" so parsers keep it a float.
        assert!(json_f64(1e30).ends_with(".0"));
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\ny");
    }

    #[test]
    fn empty_report_is_valid_shape() {
        let reg = Registry::new();
        let json = RunReport::of("empty", &reg).to_json();
        assert!(json.contains("\"spans\": [\n  ]"));
        assert!(json.contains("\"counters\": [\n  ]"));
        assert!(json.contains("\"bin\": \"empty\""));
    }

    #[test]
    fn bucket_bounds_are_powers_of_two() {
        assert_eq!(bucket_upper_bound(16), 2.0);
        assert_eq!(bucket_upper_bound(15), 1.0);
        assert_eq!(bucket_upper_bound(0), 2f64.powi(-15));
    }
}
