//! Bit-identity properties of the packed integer GEMM: for every shape
//! (random and tile-boundary) and thread count, the blocked/packed/
//! threaded kernels must equal the serial i-k-j reference **exactly** —
//! integer addition is associative, so there is no tolerance, only
//! equality. This is the kernel half of the bit-true chain: the golden
//! differential (`mersit-ptq/tests/bittrue_golden.rs`) proves the scalar
//! dot product, and these properties prove every tiling of it.

use mersit_tensor::gemm::{KC, NR};
use mersit_tensor::qgemm::{self, PackedCodeRhs};
use mersit_tensor::{par_chunks_mut_with, Rng};
use proptest::prelude::*;

/// Signed values spanning the fixed-point range real format tables
/// produce (up to ~2^22 for MERSIT(8,2), wider here for margin).
fn random_codes(rng: &mut Rng, len: usize, bits: u32) -> Vec<i64> {
    (0..len)
        .map(|_| {
            let m = (rng.next_u64() % (1u64 << bits)) as i64;
            if rng.next_u64() & 1 == 0 {
                m
            } else {
                -m
            }
        })
        .collect()
}

fn reference(a: &[i64], b: &[i64], m: usize, k: usize, n: usize) -> Vec<i128> {
    let mut out = vec![0i128; m * n];
    qgemm::qgemm_naive_rows(a, k, b, n, &mut out);
    out
}

fn check_shape(m: usize, k: usize, n: usize, bits: u32, seed: u64) {
    let mut rng = Rng::new(seed);
    let a = random_codes(&mut rng, m * k, bits);
    let b = random_codes(&mut rng, k * n, bits);
    let want = reference(&a, &b, m, k, n);

    let packed = PackedCodeRhs::pack(&b, k, n);
    let mut got = vec![0i128; m * n];
    qgemm::qgemm_rows(&a, k, &packed, &mut got);
    assert_eq!(got, want, "qgemm_rows [{m},{k},{n}]");

    // pack_t from the transposed (weight-matrix) layout must agree.
    let mut bt = vec![0i64; n * k];
    for kk in 0..k {
        for j in 0..n {
            bt[j * k + kk] = b[kk * n + j];
        }
    }
    let packed_t = PackedCodeRhs::pack_t(&bt, n, k);
    let mut got_t = vec![0i128; m * n];
    qgemm::qgemm_rows(&a, k, &packed_t, &mut got_t);
    assert_eq!(got_t, want, "qgemm_rows(pack_t) [{m},{k},{n}]");

    let mut got_par = vec![0i128; m * n];
    qgemm::qgemm_rows_par(&a, k, &packed, &mut got_par);
    assert_eq!(got_par, want, "qgemm_rows_par [{m},{k},{n}]");
}

/// Replicates `qgemm_rows_par`'s row split with an explicit thread count
/// (the env-var pool size is latched process-wide, so the explicit-count
/// API is how tests sweep thread counts).
fn qgemm_with_threads(
    threads: usize,
    a: &[i64],
    k: usize,
    packed: &PackedCodeRhs,
    m: usize,
) -> Vec<i128> {
    let n = packed.n();
    let mut out = vec![0i128; m * n];
    if n > 0 {
        par_chunks_mut_with(threads, &mut out, n, 1, |i0, chunk| {
            let rows = chunk.len() / n;
            qgemm::qgemm_rows(&a[i0 * k..(i0 + rows) * k], k, packed, chunk);
        });
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_shapes_bit_identical(
        m in 1usize..40,
        k in 1usize..70,
        n in 1usize..50,
        seed in any::<u64>(),
    ) {
        check_shape(m, k, n, 24, seed);
    }

    #[test]
    fn thread_splits_bit_identical(
        m in 1usize..48,
        k in 1usize..40,
        n in 1usize..33,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng::new(seed);
        let a = random_codes(&mut rng, m * k, 24);
        let b = random_codes(&mut rng, k * n, 24);
        let want = reference(&a, &b, m, k, n);
        let packed = PackedCodeRhs::pack(&b, k, n);
        for threads in [1usize, 2, 7] {
            let got = qgemm_with_threads(threads, &a, k, &packed, m);
            prop_assert!(got == want, "threads={threads} [{m},{k},{n}]");
        }
    }
}

#[test]
fn tile_boundary_grid_bit_identical() {
    let ms = [1, 2, 37];
    let ns = [1, NR - 1, NR, NR + 1, 25];
    let ks = [1, 3, KC - 1, KC, KC + 1];
    let mut seed = 0x9d_u64;
    for &m in &ms {
        for &n in &ns {
            for &k in &ks {
                check_shape(m, k, n, 20, seed);
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
        }
    }
}

#[test]
fn near_overflow_products_stay_exact() {
    // 61-bit operands with k=4: products near the i128 edge must still
    // match the reference (both sides widen before the multiply).
    let a = vec![(1i64 << 61) - 1, -((1i64 << 61) - 3), 5, -7];
    let b = vec![-((1i64 << 61) - 5), (1i64 << 61) - 7, -11, 13];
    let want = reference(&a, &b, 1, 4, 1);
    let packed = PackedCodeRhs::pack(&b, 4, 1);
    let mut got = vec![0i128; 1];
    qgemm::qgemm_rows(&a, 4, &packed, &mut got);
    assert_eq!(got, want);
}
