//! Bit-identity properties of the packed integer GEMM: for every shape
//! (random and tile-boundary), thread count, and SIMD tier (scalar and
//! the widening vector tile, via `qgemm_rows_with_level`), the blocked/
//! packed/threaded kernels must equal the serial i-k-j reference
//! **exactly** — integer addition is associative, so there is no
//! tolerance, only equality. This is the kernel half of the bit-true
//! chain: the golden differential (`mersit-ptq/tests/bittrue_golden.rs`)
//! proves the scalar dot product, and these properties prove every
//! tiling of it. The vector tile's overflow gate (operands ≤ 31 bits,
//! block sum ≤ i64) is probed on both sides.

use mersit_tensor::gemm::{KC, NR};
use mersit_tensor::qgemm::{self, PackedCodeRhs};
use mersit_tensor::simd::available_levels;
use mersit_tensor::{par_chunks_mut_with, Rng};
use proptest::prelude::*;

/// Signed values spanning the fixed-point range real format tables
/// produce (up to ~2^22 for MERSIT(8,2), wider here for margin).
fn random_codes(rng: &mut Rng, len: usize, bits: u32) -> Vec<i64> {
    (0..len)
        .map(|_| {
            let m = (rng.next_u64() % (1u64 << bits)) as i64;
            if rng.next_u64() & 1 == 0 {
                m
            } else {
                -m
            }
        })
        .collect()
}

fn reference(a: &[i64], b: &[i64], m: usize, k: usize, n: usize) -> Vec<i128> {
    let mut out = vec![0i128; m * n];
    qgemm::qgemm_naive_rows(a, k, b, n, &mut out);
    out
}

fn check_shape(m: usize, k: usize, n: usize, bits: u32, seed: u64) {
    let mut rng = Rng::new(seed);
    let a = random_codes(&mut rng, m * k, bits);
    let b = random_codes(&mut rng, k * n, bits);
    let want = reference(&a, &b, m, k, n);

    let packed = PackedCodeRhs::pack(&b, k, n);
    let mut got = vec![0i128; m * n];
    qgemm::qgemm_rows(&a, k, &packed, &mut got);
    assert_eq!(got, want, "qgemm_rows [{m},{k},{n}]");

    // Every SIMD tier this host can run.
    for &level in available_levels() {
        let mut got_l = vec![0i128; m * n];
        qgemm::qgemm_rows_with_level(level, &a, k, &packed, &mut got_l);
        assert_eq!(got_l, want, "{} [{m},{k},{n}]", level.name());
    }

    // pack_t from the transposed (weight-matrix) layout must agree.
    let mut bt = vec![0i64; n * k];
    for kk in 0..k {
        for j in 0..n {
            bt[j * k + kk] = b[kk * n + j];
        }
    }
    let packed_t = PackedCodeRhs::pack_t(&bt, n, k);
    let mut got_t = vec![0i128; m * n];
    qgemm::qgemm_rows(&a, k, &packed_t, &mut got_t);
    assert_eq!(got_t, want, "qgemm_rows(pack_t) [{m},{k},{n}]");

    let mut got_par = vec![0i128; m * n];
    qgemm::qgemm_rows_par(&a, k, &packed, &mut got_par);
    assert_eq!(got_par, want, "qgemm_rows_par [{m},{k},{n}]");
}

/// Replicates `qgemm_rows_par`'s row split with explicit thread count
/// and SIMD tier (the env-var pool size and `MERSIT_SIMD` are latched
/// process-wide, so the explicit APIs are how tests sweep both).
fn qgemm_with_threads(
    threads: usize,
    level: mersit_tensor::simd::SimdLevel,
    a: &[i64],
    k: usize,
    packed: &PackedCodeRhs,
    m: usize,
) -> Vec<i128> {
    let n = packed.n();
    let mut out = vec![0i128; m * n];
    if n > 0 {
        par_chunks_mut_with(threads, &mut out, n, 1, |i0, chunk| {
            let rows = chunk.len() / n;
            qgemm::qgemm_rows_with_level(level, &a[i0 * k..(i0 + rows) * k], k, packed, chunk);
        });
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_shapes_bit_identical(
        m in 1usize..40,
        k in 1usize..70,
        n in 1usize..50,
        seed in any::<u64>(),
    ) {
        check_shape(m, k, n, 24, seed);
    }

    #[test]
    fn thread_splits_bit_identical(
        m in 1usize..48,
        k in 1usize..40,
        n in 1usize..33,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng::new(seed);
        let a = random_codes(&mut rng, m * k, 24);
        let b = random_codes(&mut rng, k * n, 24);
        let want = reference(&a, &b, m, k, n);
        let packed = PackedCodeRhs::pack(&b, k, n);
        for &level in available_levels() {
            for threads in [1usize, 2, 7] {
                let got = qgemm_with_threads(threads, level, &a, k, &packed, m);
                prop_assert!(got == want, "{} threads={threads} [{m},{k},{n}]", level.name());
            }
        }
    }
}

#[test]
fn tile_boundary_grid_bit_identical() {
    let ms = [1, 2, 37];
    let ns = [1, NR - 1, NR, NR + 1, 25];
    let ks = [1, 3, KC - 1, KC, KC + 1];
    let mut seed = 0x9d_u64;
    for &m in &ms {
        for &n in &ns {
            for &k in &ks {
                check_shape(m, k, n, 20, seed);
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
        }
    }
}

#[test]
fn near_overflow_products_stay_exact() {
    // 61-bit operands with k=4: products near the i128 edge must still
    // match the reference (both sides widen before the multiply). These
    // exceed the vector tile's 31-bit operand gate, so every tier must
    // take the scalar fallback and stay exact.
    let a = vec![(1i64 << 61) - 1, -((1i64 << 61) - 3), 5, -7];
    let b = vec![-((1i64 << 61) - 5), (1i64 << 61) - 7, -11, 13];
    let want = reference(&a, &b, 1, 4, 1);
    let packed = PackedCodeRhs::pack(&b, 4, 1);
    let mut got = vec![0i128; 1];
    qgemm::qgemm_rows(&a, 4, &packed, &mut got);
    assert_eq!(got, want);
    for &level in available_levels() {
        let mut got_l = vec![0i128; 1];
        qgemm::qgemm_rows_with_level(level, &a, 4, &packed, &mut got_l);
        assert_eq!(got_l, want, "{}", level.name());
    }
}

#[test]
fn simd_gate_boundaries_stay_exact() {
    // Both sides of the vector tile's overflow gate, on every tier.
    //
    // Eligible edge: 30-bit operands with k=4 — the per-block bound
    // 4·2^30·2^30 = 2^62 fits i64, so the vector tile runs with lane
    // sums near the i64 edge.
    let lim = (1i64 << 30) - 1;
    let a = vec![lim, -lim, lim, lim];
    let b: Vec<i64> = (0..4 * NR)
        .map(|i| if i % 3 == 0 { lim } else { -lim + i as i64 })
        .collect();
    let want = reference(&a, &b, 1, 4, NR);
    let packed = PackedCodeRhs::pack(&b, 4, NR);
    for &level in available_levels() {
        let mut got = vec![0i128; NR];
        qgemm::qgemm_rows_with_level(level, &a, 4, &packed, &mut got);
        assert_eq!(got, want, "eligible edge, {}", level.name());
    }

    // Ineligible: 32-bit operands must force the scalar fallback
    // (vpmuldq would truncate them); results stay exact regardless.
    let wide = (1i64 << 32) + 5;
    let a2 = vec![wide, -wide, 3, wide];
    let b2: Vec<i64> = (0..4 * NR).map(|i| wide - i as i64).collect();
    let want2 = reference(&a2, &b2, 1, 4, NR);
    let packed2 = PackedCodeRhs::pack(&b2, 4, NR);
    for &level in available_levels() {
        let mut got = vec![0i128; NR];
        qgemm::qgemm_rows_with_level(level, &a2, 4, &packed2, &mut got);
        assert_eq!(got, want2, "wide fallback, {}", level.name());
    }

    // Ineligible by block-sum only: 31-bit operands with k = KC means
    // KC·2^31·2^31 overflows i64 even though each operand fits i32.
    let mut rng = Rng::new(77);
    let a3 = random_codes(&mut rng, KC, 31);
    let b3 = random_codes(&mut rng, KC * 3, 31);
    let want3 = reference(&a3, &b3, 1, KC, 3);
    let packed3 = PackedCodeRhs::pack(&b3, KC, 3);
    for &level in available_levels() {
        let mut got = vec![0i128; 3];
        qgemm::qgemm_rows_with_level(level, &a3, KC, &packed3, &mut got);
        assert_eq!(got, want3, "block-sum fallback, {}", level.name());
    }
}
