//! Stress and lifecycle tests for the persistent worker pool: many small
//! dispatches, nested dispatch from inside a chunk, panic recovery, and
//! shutdown-then-reinit. One `#[test]` fn — the pool and the obs registry
//! are process-global, and `pool::shutdown` mid-dispatch of a *parallel*
//! sibling test would skew its obs assertions' timing expectations.

use std::sync::atomic::{AtomicUsize, Ordering};

use mersit_tensor::{par_chunks_mut_with, pool, pool_size};

#[test]
fn pool_lifecycle_and_stress() {
    // Warm the pool and pin its size invariants.
    let size = pool_size();
    assert!(size >= 1);
    assert!(!pool::is_worker_thread(), "test runs on the main thread");

    // Many small dispatches: the pool must survive rapid-fire publish /
    // complete cycles without leaking queue entries or dropping chunks.
    let counter = AtomicUsize::new(0);
    for round in 0..2000 {
        let mut data = vec![0u8; 16];
        par_chunks_mut_with(4, &mut data, 1, 1, |_, chunk| {
            counter.fetch_add(chunk.len(), Ordering::Relaxed);
            for x in chunk.iter_mut() {
                *x = 1;
            }
        });
        assert!(data.iter().all(|&x| x == 1), "round {round}");
    }
    assert_eq!(counter.load(Ordering::Relaxed), 2000 * 16);

    // Nested dispatch: an inner par call inside an outer chunk must
    // complete (inline-serial on pool workers, queued otherwise) and
    // produce the same bytes as the flat loop.
    let mut outer = vec![0u32; 8 * 4];
    par_chunks_mut_with(4, &mut outer, 4, 1, |first, chunk| {
        let mut inner = vec![0u32; 32];
        par_chunks_mut_with(3, &mut inner, 1, 1, |f2, c2| {
            for (i, x) in c2.iter_mut().enumerate() {
                *x = (f2 + i) as u32;
            }
        });
        for (u, block) in chunk.chunks_mut(4).enumerate() {
            for (j, x) in block.iter_mut().enumerate() {
                *x = inner[(first + u) * 4 + j];
            }
        }
    });
    let want: Vec<u32> = (0..32).collect();
    assert_eq!(outer, want);

    // Panic in a chunk propagates to the dispatcher, and the pool stays
    // usable afterwards.
    let caught = std::panic::catch_unwind(|| {
        let mut data = vec![0u8; 8];
        par_chunks_mut_with(4, &mut data, 1, 1, |first, _| {
            assert!(first != 2, "stress boom {first}");
        });
    });
    assert!(caught.is_err(), "chunk panic must reach the caller");
    let mut data = vec![0u8; 8];
    par_chunks_mut_with(4, &mut data, 1, 1, |_, chunk| {
        for x in chunk.iter_mut() {
            *x = 7;
        }
    });
    assert!(data.iter().all(|&x| x == 7), "pool usable after panic");

    // Shutdown joins the workers; the next dispatch transparently builds
    // a fresh pool of the same (env-derived) size.
    pool::shutdown();
    pool::shutdown(); // idempotent
    let mut data = vec![0u16; 64];
    par_chunks_mut_with(4, &mut data, 1, 1, |first, chunk| {
        for (i, x) in chunk.iter_mut().enumerate() {
            *x = (first + i) as u16;
        }
    });
    let want: Vec<u16> = (0..64).collect();
    assert_eq!(data, want, "dispatch after shutdown re-initializes");
    assert_eq!(pool_size(), size, "re-init reads the same environment");
}
