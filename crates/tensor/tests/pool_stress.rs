//! Stress and lifecycle tests for the global work-stealing pool: many
//! small dispatches, deeply nested scopes, concurrent external
//! dispatchers (the server/sweep shape), panic propagation across
//! steals, and shutdown/re-init under load. One `#[test]` fn — the pool
//! and the obs registry are process-global, and `pool::shutdown`
//! mid-dispatch of a *parallel* sibling test would skew its obs
//! assertions' timing expectations.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mersit_tensor::{par_chunks_mut_with, pool, pool_size};

/// Recursive nested dispatch: each level fans out over the slice and the
/// leaves increment. Exercises dispatch-from-worker at every depth — on
/// the stealing pool these all queue (no inline-serial fallback), so the
/// whole tree is stealable.
fn nested_fill(depth: usize, data: &mut [u64], hits: &AtomicUsize) {
    if depth == 0 {
        for x in data.iter_mut() {
            *x += 1;
        }
        hits.fetch_add(data.len(), Ordering::Relaxed);
        return;
    }
    par_chunks_mut_with(3, data, 1, 1, |_, chunk| {
        nested_fill(depth - 1, chunk, hits);
    });
}

#[test]
fn pool_lifecycle_and_stress() {
    // Warm the pool and pin its size invariants.
    let size = pool_size();
    assert!(size >= 1);
    assert!(!pool::is_worker_thread(), "test runs on the main thread");

    // Many small dispatches: the pool must survive rapid-fire publish /
    // complete cycles without leaking queue entries or dropping chunks.
    let counter = AtomicUsize::new(0);
    for round in 0..2000 {
        let mut data = vec![0u8; 16];
        par_chunks_mut_with(4, &mut data, 1, 1, |_, chunk| {
            counter.fetch_add(chunk.len(), Ordering::Relaxed);
            for x in chunk.iter_mut() {
                *x = 1;
            }
        });
        assert!(data.iter().all(|&x| x == 1), "round {round}");
    }
    assert_eq!(counter.load(Ordering::Relaxed), 2000 * 16);

    // Nested dispatch: an inner par call inside an outer chunk must
    // complete (queued on the worker's own deque and helped/stolen, never
    // inline-serial) and produce the same bytes as the flat loop.
    let mut outer = vec![0u32; 8 * 4];
    par_chunks_mut_with(4, &mut outer, 4, 1, |first, chunk| {
        let mut inner = vec![0u32; 32];
        par_chunks_mut_with(3, &mut inner, 1, 1, |f2, c2| {
            for (i, x) in c2.iter_mut().enumerate() {
                *x = (f2 + i) as u32;
            }
        });
        for (u, block) in chunk.chunks_mut(4).enumerate() {
            for (j, x) in block.iter_mut().enumerate() {
                *x = inner[(first + u) * 4 + j];
            }
        }
    });
    let want: Vec<u32> = (0..32).collect();
    assert_eq!(outer, want);

    // Deeply nested scopes: five levels of dispatch-from-dispatch. Every
    // element is visited exactly once per leaf, whatever thread stole
    // which level.
    let hits = AtomicUsize::new(0);
    let mut deep = vec![0u64; 81];
    nested_fill(5, &mut deep, &hits);
    assert!(deep.iter().all(|&x| x == 1), "every leaf ran exactly once");
    assert_eq!(hits.load(Ordering::Relaxed), 81);

    // Concurrent external dispatchers — the sweep/server shape: several
    // non-pool threads each issuing their own stream of dispatches into
    // the one shared pool, with nested dispatches inside. All streams
    // must complete with correct bytes.
    let total = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|s| {
        for t in 0..4usize {
            let total = Arc::clone(&total);
            s.spawn(move || {
                for round in 0..50 {
                    let mut data = vec![0u32; 64];
                    par_chunks_mut_with(4, &mut data, 1, 1, |first, chunk| {
                        // Nested dispatch from inside an externally
                        // published chunk.
                        let mut scratch = vec![0u32; 8];
                        par_chunks_mut_with(2, &mut scratch, 1, 1, |f2, c2| {
                            for (i, x) in c2.iter_mut().enumerate() {
                                *x = (f2 + i) as u32;
                            }
                        });
                        for (i, x) in chunk.iter_mut().enumerate() {
                            *x = (first + i) as u32 + scratch[7] - 7;
                        }
                    });
                    let want: Vec<u32> = (0..64).collect();
                    assert_eq!(data, want, "dispatcher {t} round {round}");
                    total.fetch_add(data.len(), Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(total.load(Ordering::Relaxed), 4 * 50 * 64);

    // Panic in a chunk propagates to the dispatcher — including when the
    // panicking chunk was *stolen* (many chunks + a worker pool make a
    // steal overwhelmingly likely; correctness must not depend on who
    // ran it) — and the pool stays usable afterwards.
    let caught = std::panic::catch_unwind(|| {
        let mut data = vec![0u8; 64];
        par_chunks_mut_with(8, &mut data, 1, 1, |first, _| {
            assert!(first != 2, "stress boom {first}");
        });
    });
    assert!(caught.is_err(), "chunk panic must reach the caller");
    // Panic across a *nested* dispatch: the inner dispatcher (a pool
    // worker or helping thread) re-raises, the outer catches and
    // re-raises again to us.
    let caught = std::panic::catch_unwind(|| {
        let mut data = vec![0u8; 16];
        par_chunks_mut_with(4, &mut data, 1, 1, |_, chunk| {
            let mut inner = vec![0u8; 8];
            par_chunks_mut_with(2, &mut inner, 1, 1, |f2, _| {
                assert!(f2 != 4, "nested boom {f2}");
            });
            for x in chunk.iter_mut() {
                *x = 1;
            }
        });
    });
    assert!(caught.is_err(), "nested chunk panic must reach the caller");
    let mut data = vec![0u8; 8];
    par_chunks_mut_with(4, &mut data, 1, 1, |_, chunk| {
        for x in chunk.iter_mut() {
            *x = 7;
        }
    });
    assert!(data.iter().all(|&x| x == 7), "pool usable after panic");

    // Shutdown under load: external dispatchers keep issuing work while
    // the main thread shuts the pool down repeatedly. In-flight
    // dispatchers self-serve whatever exiting workers leave; every
    // dispatch completes correctly against a pool in an arbitrary
    // lifecycle state.
    let stop = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|s| {
        let mut loads = Vec::new();
        for _ in 0..2 {
            let stop = Arc::clone(&stop);
            loads.push(s.spawn(move || {
                let mut rounds = 0usize;
                while stop.load(Ordering::Relaxed) == 0 {
                    let mut data = vec![0u16; 48];
                    par_chunks_mut_with(4, &mut data, 1, 1, |first, chunk| {
                        for (i, x) in chunk.iter_mut().enumerate() {
                            *x = (first + i) as u16;
                        }
                    });
                    let want: Vec<u16> = (0..48).collect();
                    assert_eq!(data, want, "round {rounds} under shutdown");
                    rounds += 1;
                }
                rounds
            }));
        }
        for _ in 0..10 {
            pool::shutdown();
            std::thread::yield_now();
        }
        stop.store(1, Ordering::Relaxed);
        for l in loads {
            assert!(l.join().unwrap() > 0, "load thread made progress");
        }
    });

    // Shutdown joins the workers; the next dispatch transparently builds
    // a fresh pool of the same (env-derived) size.
    pool::shutdown();
    pool::shutdown(); // idempotent
    let mut data = vec![0u16; 64];
    par_chunks_mut_with(4, &mut data, 1, 1, |first, chunk| {
        for (i, x) in chunk.iter_mut().enumerate() {
            *x = (first + i) as u16;
        }
    });
    let want: Vec<u16> = (0..64).collect();
    assert_eq!(data, want, "dispatch after shutdown re-initializes");
    assert_eq!(pool_size(), size, "re-init reads the same environment");
}
