//! Bit-identity properties of the packed, cache-blocked GEMM: for every
//! shape (random and tile-boundary), thread count, **SIMD tier** the
//! host supports (scalar and each vector kernel, via
//! `gemm_rows_with_level`), and entry point (`gemm_rows`,
//! `Tensor::matmul`, `Tensor::matmul_packed`), the output must equal the
//! serial i-k-j reference loop bit for bit. This is the invariant the
//! whole PTQ test suite leans on — a single reordered addition here
//! shows up as a prediction diff in `plan_matches_legacy`.

use mersit_tensor::gemm::{self, PackedRhs, KC, MC, MR, NR};
use mersit_tensor::simd::available_levels;
use mersit_tensor::{par_chunks_mut_with, Rng, Tensor};
use proptest::prelude::*;

/// The plain triple loop, written out independently of the library code:
/// `out[i][j] = Σ_k a[i][k]·b[k][j]`, k ascending from +0.0.
fn reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk];
            for j in 0..n {
                out[i * n + j] += av * b[kk * n + j];
            }
        }
    }
    out
}

fn random_mats(m: usize, k: usize, n: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
    let mut rng = Rng::new(seed);
    let a: Vec<f32> = (0..m * k).map(|_| rng.normal() as f32).collect();
    let b: Vec<f32> = (0..k * n).map(|_| rng.normal() as f32).collect();
    (a, b)
}

fn assert_bits_eq(got: &[f32], want: &[f32], what: &str, m: usize, k: usize, n: usize) {
    assert_eq!(got.len(), want.len(), "{what} [{m},{k},{n}] length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what} [{m},{k},{n}] elem {i}: {g} vs {w}"
        );
    }
}

/// Checks every entry point against the reference for one shape.
fn check_shape(m: usize, k: usize, n: usize, seed: u64) {
    let (a, b) = random_mats(m, k, n, seed);
    let want = reference(&a, &b, m, k, n);

    // Direct blocked kernel on the packed rhs.
    let packed = PackedRhs::pack(&b, k, n);
    let mut got = vec![0.0f32; m * n];
    gemm::gemm_rows(&a, k, &packed, &mut got);
    assert_bits_eq(&got, &want, "gemm_rows", m, k, n);

    // Every SIMD tier this host can run (the process-default result
    // above is one of these; the sweep proves the rest agree too).
    for &level in available_levels() {
        let mut got_l = vec![0.0f32; m * n];
        gemm::gemm_rows_with_level(level, &a, k, &packed, &mut got_l);
        assert_bits_eq(&got_l, &want, level.name(), m, k, n);
    }

    // Public tensor paths (small m takes the naive route, large m packs).
    let at = Tensor::from_vec(a.clone(), &[m, k]);
    let bt = Tensor::from_vec(b.clone(), &[k, n]);
    assert_bits_eq(at.matmul(&bt).data(), &want, "Tensor::matmul", m, k, n);
    assert_bits_eq(
        at.matmul_packed(&packed).data(),
        &want,
        "Tensor::matmul_packed",
        m,
        k,
        n,
    );

    // pack_t from the transposed layout must agree too (the weight path).
    let mut btr = vec![0.0f32; n * k];
    for kk in 0..k {
        for j in 0..n {
            btr[j * k + kk] = b[kk * n + j];
        }
    }
    let packed_t = PackedRhs::pack_t(&btr, n, k);
    let mut got_t = vec![0.0f32; m * n];
    gemm::gemm_rows(&a, k, &packed_t, &mut got_t);
    assert_bits_eq(&got_t, &want, "gemm_rows(pack_t)", m, k, n);
}

/// Replicates `matmul_packed`'s row-chunked dispatch with explicit
/// chunk count and SIMD tier (the env-var pool size and `MERSIT_SIMD`
/// are latched process-wide, so the explicit APIs are how tests sweep
/// thread counts and tiers).
fn matmul_packed_with_threads(
    threads: usize,
    level: mersit_tensor::simd::SimdLevel,
    a: &[f32],
    k: usize,
    packed: &PackedRhs,
    m: usize,
) -> Vec<f32> {
    let n = packed.n();
    let mut out = vec![0.0f32; m * n];
    if n > 0 {
        par_chunks_mut_with(threads, &mut out, n, 1, |i0, chunk| {
            let rows = chunk.len() / n;
            gemm::gemm_rows_with_level(level, &a[i0 * k..(i0 + rows) * k], k, packed, chunk);
        });
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_shapes_bit_identical(
        m in 1usize..40,
        k in 1usize..70,
        n in 1usize..50,
        seed in any::<u64>(),
    ) {
        check_shape(m, k, n, seed);
    }

    #[test]
    fn thread_splits_bit_identical(
        m in 1usize..48,
        k in 1usize..40,
        n in 1usize..33,
        seed in any::<u64>(),
    ) {
        let (a, b) = random_mats(m, k, n, seed);
        let want = reference(&a, &b, m, k, n);
        let packed = PackedRhs::pack(&b, k, n);
        for &level in available_levels() {
            for threads in [1usize, 2, 7] {
                let got = matmul_packed_with_threads(threads, level, &a, k, &packed, m);
                assert_bits_eq(&got, &want, level.name(), m, k, n);
            }
        }
    }
}

#[test]
fn tile_boundary_grid_bit_identical() {
    // Every micro/block dimension at 1, tile−1, tile, tile+1, and odd —
    // including the vector tile heights (6 rows for AVX2, 8 for AVX-512)
    // that differ from the scalar MR.
    let ms = [1, MR - 1, MR, MR + 1, 6, 8, 9, MC - 1, MC, MC + 1, 37];
    let ns = [1, NR - 1, NR, NR + 1, 2 * NR + 1, 25];
    let ks = [1, 3, KC - 1, KC, KC + 1];
    let mut seed = 0x51_u64;
    for &m in &ms {
        for &n in &ns {
            for &k in &ks {
                seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
                check_shape(m, k, n, seed);
            }
        }
    }
}

#[test]
fn zero_matrices_give_positive_zero_bits() {
    let a = Tensor::zeros(&[2 * MR + 1, KC + 2]);
    let b = Tensor::zeros(&[KC + 2, NR + 3]);
    let c = a.matmul(&b);
    for &v in c.data() {
        assert_eq!(v.to_bits(), 0.0f32.to_bits());
    }
}
