//! Observability contract of the parallel fan-out: span/counter capture
//! from `par` worker threads must be complete (no lost or duplicated
//! chunk samples) and must not perturb results.

use mersit_tensor::par_chunks_mut_with;

#[test]
fn par_workers_record_exactly_one_span_per_chunk() {
    mersit_obs::set_enabled(true);
    mersit_obs::reset();

    let threads = 4;
    let mut data = vec![0u32; 64 * 16];
    par_chunks_mut_with(threads, &mut data, 16, 1, |first, chunk| {
        for (u, block) in chunk.chunks_mut(16).enumerate() {
            for x in block.iter_mut() {
                *x = (first + u) as u32;
            }
        }
    });

    let snap = mersit_obs::global().snapshot();
    let chunk_span = snap
        .spans
        .iter()
        .find(|s| s.name == "tensor.par.chunk")
        .expect("chunk spans recorded");
    assert_eq!(chunk_span.stats.count, threads as u64);

    let dispatch = snap
        .spans
        .iter()
        .find(|s| s.name == "tensor.par.dispatch")
        .expect("dispatch span recorded");
    assert_eq!(dispatch.stats.count, 1);

    let hist = snap
        .histograms
        .iter()
        .find(|h| h.name == "tensor.par.chunk_units")
        .expect("chunk-size histogram recorded");
    assert_eq!(hist.stats.count, threads as u64);
    assert_eq!(
        hist.stats.sum, 64.0,
        "every unit accounted for exactly once"
    );

    let dispatches = snap
        .counters
        .iter()
        .find(|c| c.name == "tensor.pool.dispatches")
        .expect("pool dispatch counter recorded");
    assert_eq!(dispatches.value, 1);

    let pool_chunks = snap
        .counters
        .iter()
        .find(|c| c.name == "tensor.pool.chunks")
        .expect("pool chunk counter recorded");
    assert_eq!(pool_chunks.value, threads as u64);

    let queue_depth = snap
        .histograms
        .iter()
        .find(|h| h.name == "tensor.pool.queue_depth")
        .expect("queue-depth histogram recorded");
    assert_eq!(queue_depth.stats.count, 1);

    // Instrumentation must not change the computation.
    for (i, &v) in data.iter().enumerate() {
        assert_eq!(v, (i / 16) as u32);
    }

    // Serial (inline) path: counted, but no worker spans. Same test fn —
    // both halves toggle the process-global registry and would race as
    // separate parallel #[test]s.
    mersit_obs::reset();
    let mut data = vec![0u8; 8];
    par_chunks_mut_with(1, &mut data, 1, 1, |_, chunk| {
        for x in chunk.iter_mut() {
            *x = 1;
        }
    });
    let snap = mersit_obs::global().snapshot();
    assert!(snap.spans.iter().all(|s| s.name != "tensor.par.chunk"));
    let serial = snap
        .counters
        .iter()
        .find(|c| c.name == "tensor.par.calls_serial")
        .expect("serial counter");
    assert_eq!(serial.value, 1);
    mersit_obs::set_enabled(false);
}
