//! Observability contract of the parallel fan-out: span/counter capture
//! from `par` worker threads must be complete (no lost or duplicated
//! chunk samples) and must not perturb results.

use mersit_tensor::{par_chunks_mut_with, pool_size};

#[test]
fn par_workers_record_exactly_one_span_per_chunk() {
    mersit_obs::set_enabled(true);
    mersit_obs::reset();

    // threads=4 with 64 units (min 1 per chunk) publishes
    // threads × CHUNKS_PER_THREAD = 16 stealable chunks of 4 units each.
    let threads = 4;
    let chunks = 16u64;
    let mut data = vec![0u32; 64 * 16];
    par_chunks_mut_with(threads, &mut data, 16, 1, |first, chunk| {
        for (u, block) in chunk.chunks_mut(16).enumerate() {
            for x in block.iter_mut() {
                *x = (first + u) as u32;
            }
        }
    });

    let snap = mersit_obs::global().snapshot();
    let chunk_span = snap
        .spans
        .iter()
        .find(|s| s.name == "tensor.par.chunk")
        .expect("chunk spans recorded");
    assert_eq!(chunk_span.stats.count, chunks);

    let dispatch = snap
        .spans
        .iter()
        .find(|s| s.name == "tensor.par.dispatch")
        .expect("dispatch span recorded");
    assert_eq!(dispatch.stats.count, 1);

    let hist = snap
        .histograms
        .iter()
        .find(|h| h.name == "tensor.par.chunk_units")
        .expect("chunk-size histogram recorded");
    assert_eq!(hist.stats.count, chunks);
    assert_eq!(
        hist.stats.sum, 64.0,
        "every unit accounted for exactly once"
    );

    let dispatches = snap
        .counters
        .iter()
        .find(|c| c.name == "tensor.pool.dispatches")
        .expect("pool dispatch counter recorded");
    assert_eq!(dispatches.value, 1);

    let pool_chunks = snap
        .counters
        .iter()
        .find(|c| c.name == "tensor.pool.chunks")
        .expect("pool chunk counter recorded");
    assert_eq!(pool_chunks.value, chunks);

    let queue_depth = snap
        .histograms
        .iter()
        .find(|h| h.name == "tensor.pool.queue_depth")
        .expect("queue-depth histogram recorded");
    assert_eq!(queue_depth.stats.count, 1);

    // Every chunk that went through the queues was either a LIFO pop by
    // its publisher or a steal; on a 1-thread pool the dispatch runs
    // inline and never touches the queues.
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    };
    let executed = counter("tensor.pool.local_hits") + counter("tensor.pool.steals");
    if pool_size() > 1 {
        assert_eq!(executed, chunks, "queued chunks all popped or stolen");
    } else {
        assert_eq!(executed, 0, "size-1 pool runs inline, no queue traffic");
    }

    // Instrumentation must not change the computation.
    for (i, &v) in data.iter().enumerate() {
        assert_eq!(v, (i / 16) as u32);
    }

    // Serial (inline) path: counted, but no worker spans. Same test fn —
    // both halves toggle the process-global registry and would race as
    // separate parallel #[test]s.
    mersit_obs::reset();
    let mut data = vec![0u8; 8];
    par_chunks_mut_with(1, &mut data, 1, 1, |_, chunk| {
        for x in chunk.iter_mut() {
            *x = 1;
        }
    });
    let snap = mersit_obs::global().snapshot();
    assert!(snap.spans.iter().all(|s| s.name != "tensor.par.chunk"));
    let serial = snap
        .counters
        .iter()
        .find(|c| c.name == "tensor.par.calls_serial")
        .expect("serial counter");
    assert_eq!(serial.value, 1);
    mersit_obs::set_enabled(false);
}
