//! Explicit `std::arch` micro-kernels behind the process-wide SIMD tier.
//!
//! The scalar micro-kernels in [`crate::gemm`] / [`crate::qgemm`] stay
//! the always-compiled bit-identity reference; this module adds the
//! vector tiles [`crate::gemm::gemm_rows`] and
//! [`crate::qgemm::qgemm_rows`] dispatch to when
//! [`mersit_core::simd::simd_level`] (one-time detection, `MERSIT_SIMD`
//! kill-switch) allows. The ISA matrix:
//!
//! | kernel              | AVX-512F        | AVX2            | NEON  | scalar |
//! |---------------------|-----------------|-----------------|-------|--------|
//! | f32 GEMM tile       | 8×16 (1 zmm/row)| 6×16 (2 ymm/row)| 4×16  | 4×16   |
//! | qgemm integer tile  | AVX2 kernel     | 1×16 `vpmuldq`  | —     | 1×16   |
//! | `QuantLut` probe    | AVX2 kernel     | 8-lane gather   | —     | 1-lane |
//!
//! (The `QuantLut` kernel lives with its tables in
//! `mersit_core::quant_lut`; it shares the same tier selection.)
//!
//! # Bit-identity: multiply-then-add, never fused
//!
//! Every f32 kernel performs a **separate IEEE multiply and add per
//! element** (`_mm256_mul_ps` + `_mm256_add_ps` and friends), exactly the
//! two roundings of the scalar reference `acc[j] += av * b[j]`. A fused
//! FMA (`_mm256_fmadd_ps`) would round once and diverge from
//! [`crate::gemm::matmul_naive_rows`] in the last ulp — breaking
//! `plan_matches_legacy` and the serving batcher's
//! batched-equals-single-sample licensing invariant (small m takes the
//! naive path, large m the packed path; they must agree bitwise). The
//! vector win comes from width (16-lane panels), register tiling, and
//! the panel layout — not from fusing. Per output element the `kk` order
//! is the scalar order: each k-block loads the current `out`, adds its
//! range ascending, stores back — lanes are independent columns.
//!
//! The integer qgemm is exact, so its only constraint is overflow: the
//! AVX2 tile multiplies 32-bit-bounded operands into 64-bit partial
//! products (`vpmuldq`) and accumulates them in i64 lanes within one
//! k-block — legal when `block·max|a|·max|b|` fits i64, checked per call
//! against the pack-time rhs magnitude bound — then spills through a
//! scalar i128 carry/accumulate seam, preserving exact Kulisch-width
//! semantics. Calls that exceed the bound fall back to the scalar i128
//! kernel, which is always exact.

use crate::gemm::{PackedRhs, KC};
use crate::qgemm::PackedCodeRhs;
pub use mersit_core::simd::SimdLevel;

pub use mersit_core::simd::{available_levels, detected_level, simd_level};

/// Publishes the selected tier once per process as the obs counter
/// `tensor.simd.isa` (value = tier discriminant: 0 scalar, 1 neon,
/// 2 avx2, 3 avx512), so perf artifacts record what produced them.
fn note_isa(level: SimdLevel) {
    use std::sync::atomic::{AtomicBool, Ordering};
    static NOTED: AtomicBool = AtomicBool::new(false);
    if mersit_obs::enabled() && !NOTED.swap(true, Ordering::Relaxed) {
        mersit_obs::add("tensor.simd.isa", level as u64);
    }
}

/// Runs the f32 GEMM through a vector driver when `level` has one for
/// this architecture; returns `false` to fall back to the scalar
/// micro-kernels. Caller guarantees `n > 0`, `k > 0` and consistent
/// lengths (the `gemm_rows` debug asserts).
#[allow(unused_variables)] // non-SIMD architectures use no parameter
pub(crate) fn gemm_rows_simd(
    level: SimdLevel,
    a: &[f32],
    k: usize,
    packed: &PackedRhs,
    out: &mut [f32],
) -> bool {
    note_isa(level);
    #[cfg(target_arch = "x86_64")]
    {
        if level >= SimdLevel::Avx512 {
            // SAFETY: tiers are clamped to runtime-detected features.
            unsafe { x86::gemm_rows_avx512(a, k, packed, out) };
            return true;
        }
        if level >= SimdLevel::Avx2 {
            // SAFETY: as above.
            unsafe { x86::gemm_rows_avx2(a, k, packed, out) };
            return true;
        }
    }
    #[cfg(target_arch = "aarch64")]
    if level >= SimdLevel::Neon {
        // SAFETY: tiers are clamped to runtime-detected features.
        unsafe { neon::gemm_rows_neon(a, k, packed, out) };
        return true;
    }
    false
}

/// Runs the integer qgemm through the AVX2 widening tile when `level`
/// and the operand magnitudes allow (see the module docs); returns
/// `false` to fall back to the exact scalar i128 kernel. Wide fixpoint
/// formats whose operands exceed 31 bits always take the scalar path.
#[allow(unused_variables)]
pub(crate) fn qgemm_rows_simd(
    level: SimdLevel,
    a: &[i64],
    k: usize,
    packed: &PackedCodeRhs,
    out: &mut [i128],
) -> bool {
    note_isa(level);
    #[cfg(target_arch = "x86_64")]
    if level >= SimdLevel::Avx2 {
        // `vpmuldq` multiplies the sign-extended low 32 bits of each
        // 64-bit lane, so both operands must fit in i32; the per-k-block
        // lane accumulator must hold `block` such products in i64.
        const LANE_LIMIT: u64 = i32::MAX as u64;
        let bmax = packed.max_abs();
        let amax = a.iter().map(|&v| v.unsigned_abs()).max().unwrap_or(0);
        let block = KC.min(k).max(1) as u128;
        if amax <= LANE_LIMIT
            && bmax <= LANE_LIMIT
            && block * u128::from(amax) * u128::from(bmax) <= i64::MAX as u128
        {
            // SAFETY: tier implies AVX2; bounds checked above.
            unsafe { x86::qgemm_rows_avx2(a, k, packed, out) };
            return true;
        }
    }
    false
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{PackedCodeRhs, PackedRhs, KC};
    use crate::gemm::{micro_edge, MC, MR, NR};
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_add_ps, _mm256_loadu_ps, _mm256_loadu_si256,
        _mm256_mul_epi32, _mm256_mul_ps, _mm256_set1_epi64x, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_setzero_si256, _mm256_storeu_ps, _mm256_storeu_si256, _mm512_add_ps,
        _mm512_loadu_ps, _mm512_mul_ps, _mm512_set1_ps, _mm512_setzero_ps, _mm512_storeu_ps,
    };

    /// Vector tile height for AVX2: 6 rows × 2 ymm accumulators + 2 panel
    /// vectors + 1 broadcast = 15 of 16 registers.
    const MR_AVX2: usize = 6;

    /// Vector tile height for AVX-512: 8 rows × 1 zmm accumulator leaves
    /// ample slack in the 32-register file while amortizing panel loads.
    const MR_AVX512: usize = 8;

    /// AVX2 full-panel tile: `M`×[`NR`] accumulators as two 8-lane
    /// vectors per row, separate `mul`+`add` per step (module docs).
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn micro_f32_avx2<const M: usize>(
        a: &[f32],
        k: usize,
        n: usize,
        panel: &[f32],
        out: &mut [f32],
        i0: usize,
        j0: usize,
        kb: usize,
        kend: usize,
        first: bool,
    ) {
        let mut lo = [_mm256_setzero_ps(); M];
        let mut hi = [_mm256_setzero_ps(); M];
        if !first {
            for r in 0..M {
                let base = (i0 + r) * n + j0;
                lo[r] = _mm256_loadu_ps(out.as_ptr().add(base));
                hi[r] = _mm256_loadu_ps(out.as_ptr().add(base + 8));
            }
        }
        let ap = a.as_ptr();
        let pp = panel.as_ptr();
        for kk in kb..kend {
            let b0 = _mm256_loadu_ps(pp.add(kk * NR));
            let b1 = _mm256_loadu_ps(pp.add(kk * NR + 8));
            for r in 0..M {
                let av = _mm256_set1_ps(*ap.add((i0 + r) * k + kk));
                lo[r] = _mm256_add_ps(lo[r], _mm256_mul_ps(av, b0));
                hi[r] = _mm256_add_ps(hi[r], _mm256_mul_ps(av, b1));
            }
        }
        for r in 0..M {
            let base = (i0 + r) * n + j0;
            _mm256_storeu_ps(out.as_mut_ptr().add(base), lo[r]);
            _mm256_storeu_ps(out.as_mut_ptr().add(base + 8), hi[r]);
        }
    }

    /// AVX-512 full-panel tile: one 16-lane accumulator per row.
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn micro_f32_avx512<const M: usize>(
        a: &[f32],
        k: usize,
        n: usize,
        panel: &[f32],
        out: &mut [f32],
        i0: usize,
        j0: usize,
        kb: usize,
        kend: usize,
        first: bool,
    ) {
        let mut acc = [_mm512_setzero_ps(); M];
        if !first {
            for r in 0..M {
                acc[r] = _mm512_loadu_ps(out.as_ptr().add((i0 + r) * n + j0));
            }
        }
        let ap = a.as_ptr();
        let pp = panel.as_ptr();
        for kk in kb..kend {
            let b = _mm512_loadu_ps(pp.add(kk * NR));
            for r in 0..M {
                let av = _mm512_set1_ps(*ap.add((i0 + r) * k + kk));
                acc[r] = _mm512_add_ps(acc[r], _mm512_mul_ps(av, b));
            }
        }
        for r in 0..M {
            _mm512_storeu_ps(out.as_mut_ptr().add((i0 + r) * n + j0), acc[r]);
        }
    }

    /// Shared kb/ib/panel blocking (the scalar driver's loop structure)
    /// with per-ISA full-panel tiles; tail panels reuse the scalar
    /// [`micro_edge`] (at most one per matrix — throughput-irrelevant,
    /// and bit-identical by the same argument as the scalar driver).
    macro_rules! gemm_driver {
        ($a:ident, $k:ident, $packed:ident, $out:ident, $mr_v:expr, $micro:ident) => {{
            let n = $packed.n();
            let data = $packed.data();
            let rows = $out.len() / n;
            for kb in (0..$k).step_by(KC) {
                let kend = (kb + KC).min($k);
                let first = kb == 0;
                for ib in (0..rows).step_by(MC) {
                    let iend = (ib + MC).min(rows);
                    for p in 0..$packed.panels() {
                        let j0 = p * NR;
                        let nr = NR.min(n - j0);
                        let panel = &data[p * $k * NR..(p + 1) * $k * NR];
                        let mut i = ib;
                        if nr == NR {
                            while i < iend {
                                let mr = $mr_v.min(iend - i);
                                match mr {
                                    8 => {
                                        $micro::<8>($a, $k, n, panel, $out, i, j0, kb, kend, first)
                                    }
                                    7 => {
                                        $micro::<7>($a, $k, n, panel, $out, i, j0, kb, kend, first)
                                    }
                                    6 => {
                                        $micro::<6>($a, $k, n, panel, $out, i, j0, kb, kend, first)
                                    }
                                    5 => {
                                        $micro::<5>($a, $k, n, panel, $out, i, j0, kb, kend, first)
                                    }
                                    4 => {
                                        $micro::<4>($a, $k, n, panel, $out, i, j0, kb, kend, first)
                                    }
                                    3 => {
                                        $micro::<3>($a, $k, n, panel, $out, i, j0, kb, kend, first)
                                    }
                                    2 => {
                                        $micro::<2>($a, $k, n, panel, $out, i, j0, kb, kend, first)
                                    }
                                    _ => {
                                        $micro::<1>($a, $k, n, panel, $out, i, j0, kb, kend, first)
                                    }
                                }
                                i += mr;
                            }
                        } else {
                            while i < iend {
                                let mr = MR.min(iend - i);
                                match mr {
                                    4 => micro_edge::<4>(
                                        $a, $k, n, panel, $out, i, j0, nr, kb, kend, first,
                                    ),
                                    3 => micro_edge::<3>(
                                        $a, $k, n, panel, $out, i, j0, nr, kb, kend, first,
                                    ),
                                    2 => micro_edge::<2>(
                                        $a, $k, n, panel, $out, i, j0, nr, kb, kend, first,
                                    ),
                                    _ => micro_edge::<1>(
                                        $a, $k, n, panel, $out, i, j0, nr, kb, kend, first,
                                    ),
                                }
                                i += mr;
                            }
                        }
                    }
                }
            }
        }};
    }

    /// AVX2 driver for [`crate::gemm::gemm_rows`].
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gemm_rows_avx2(a: &[f32], k: usize, packed: &PackedRhs, out: &mut [f32]) {
        gemm_driver!(a, k, packed, out, MR_AVX2, micro_f32_avx2);
    }

    /// AVX-512 driver for [`crate::gemm::gemm_rows`].
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn gemm_rows_avx512(
        a: &[f32],
        k: usize,
        packed: &PackedRhs,
        out: &mut [f32],
    ) {
        gemm_driver!(a, k, packed, out, MR_AVX512, micro_f32_avx512);
    }

    /// AVX2 integer qgemm: per (row, panel, k-block), accumulate
    /// `vpmuldq` 64-bit partial products in four i64 vectors (16 lanes),
    /// then spill each block through the scalar i128 seam. The caller
    /// proved `block·max|a|·max|b| ≤ i64::MAX`, so the lane adds cannot
    /// wrap; integer addition is associative, so any split is exact.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::cast_ptr_alignment)] // unaligned intrinsics only
    pub(super) unsafe fn qgemm_rows_avx2(
        a: &[i64],
        k: usize,
        packed: &PackedCodeRhs,
        out: &mut [i128],
    ) {
        let n = packed.n();
        let data = packed.data();
        let rows = out.len() / n;
        for kb in (0..k).step_by(KC) {
            let kend = (kb + KC).min(k);
            for i in 0..rows {
                let arow = &a[i * k..(i + 1) * k];
                for p in 0..packed.panels() {
                    let j0 = p * NR;
                    let nr = NR.min(n - j0);
                    let panel = &data[p * k * NR..(p + 1) * k * NR];
                    let pp = panel.as_ptr();
                    let mut acc = [_mm256_setzero_si256(); 4];
                    for (kk, &av) in arow.iter().enumerate().take(kend).skip(kb) {
                        if av == 0 {
                            continue; // zero-skip is sound: sums are exact
                        }
                        let avv = _mm256_set1_epi64x(av);
                        for (c, accc) in acc.iter_mut().enumerate() {
                            let b = _mm256_loadu_si256(pp.add(kk * NR + 4 * c).cast::<__m256i>());
                            *accc = _mm256_add_epi64(*accc, _mm256_mul_epi32(avv, b));
                        }
                    }
                    // The i128 carry/accumulate seam: widen the block's
                    // i64 lane sums and fold them into the output.
                    let mut lanes = [0i64; NR];
                    for (c, &accc) in acc.iter().enumerate() {
                        _mm256_storeu_si256(lanes.as_mut_ptr().add(4 * c).cast::<__m256i>(), accc);
                    }
                    let orow = &mut out[i * n + j0..i * n + j0 + nr];
                    for (o, &v) in orow.iter_mut().zip(&lanes) {
                        *o += i128::from(v);
                    }
                }
            }
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::PackedRhs;
    use crate::gemm::{micro_edge, KC, MC, MR, NR};
    use std::arch::aarch64::{vaddq_f32, vdupq_n_f32, vld1q_f32, vmulq_f32, vst1q_f32};

    /// Vector tile height for NEON: 4 rows × 4 q-register accumulators
    /// + 4 panel vectors + 1 broadcast = 21 of 32 registers.
    const MR_NEON: usize = 4;

    /// NEON full-panel tile: `M`×[`NR`] accumulators as four 4-lane
    /// vectors per row; separate `vmulq`/`vaddq` per step keeps the two
    /// roundings of the scalar reference (no `vfmaq`).
    #[target_feature(enable = "neon")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn micro_f32_neon<const M: usize>(
        a: &[f32],
        k: usize,
        n: usize,
        panel: &[f32],
        out: &mut [f32],
        i0: usize,
        j0: usize,
        kb: usize,
        kend: usize,
        first: bool,
    ) {
        let mut acc = [[vdupq_n_f32(0.0); 4]; M];
        if !first {
            for r in 0..M {
                let base = (i0 + r) * n + j0;
                for c in 0..4 {
                    acc[r][c] = vld1q_f32(out.as_ptr().add(base + 4 * c));
                }
            }
        }
        let ap = a.as_ptr();
        let pp = panel.as_ptr();
        for kk in kb..kend {
            let mut b = [vdupq_n_f32(0.0); 4];
            for (c, bc) in b.iter_mut().enumerate() {
                *bc = vld1q_f32(pp.add(kk * NR + 4 * c));
            }
            for r in 0..M {
                let av = vdupq_n_f32(*ap.add((i0 + r) * k + kk));
                for c in 0..4 {
                    acc[r][c] = vaddq_f32(acc[r][c], vmulq_f32(av, b[c]));
                }
            }
        }
        for r in 0..M {
            let base = (i0 + r) * n + j0;
            for c in 0..4 {
                vst1q_f32(out.as_mut_ptr().add(base + 4 * c), acc[r][c]);
            }
        }
    }

    /// NEON driver for [`crate::gemm::gemm_rows`]: the scalar driver's
    /// kb/ib/panel blocking with the NEON full-panel tile; tail panels
    /// reuse the scalar [`micro_edge`].
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn gemm_rows_neon(a: &[f32], k: usize, packed: &PackedRhs, out: &mut [f32]) {
        let n = packed.n();
        let data = packed.data();
        let rows = out.len() / n;
        for kb in (0..k).step_by(KC) {
            let kend = (kb + KC).min(k);
            let first = kb == 0;
            for ib in (0..rows).step_by(MC) {
                let iend = (ib + MC).min(rows);
                for p in 0..packed.panels() {
                    let j0 = p * NR;
                    let nr = NR.min(n - j0);
                    let panel = &data[p * k * NR..(p + 1) * k * NR];
                    let mut i = ib;
                    if nr == NR {
                        while i < iend {
                            let mr = MR_NEON.min(iend - i);
                            match mr {
                                4 => {
                                    micro_f32_neon::<4>(a, k, n, panel, out, i, j0, kb, kend, first)
                                }
                                3 => {
                                    micro_f32_neon::<3>(a, k, n, panel, out, i, j0, kb, kend, first)
                                }
                                2 => {
                                    micro_f32_neon::<2>(a, k, n, panel, out, i, j0, kb, kend, first)
                                }
                                _ => {
                                    micro_f32_neon::<1>(a, k, n, panel, out, i, j0, kb, kend, first)
                                }
                            }
                            i += mr;
                        }
                    } else {
                        while i < iend {
                            let mr = MR.min(iend - i);
                            match mr {
                                4 => {
                                    micro_edge::<4>(a, k, n, panel, out, i, j0, nr, kb, kend, first)
                                }
                                3 => {
                                    micro_edge::<3>(a, k, n, panel, out, i, j0, nr, kb, kend, first)
                                }
                                2 => {
                                    micro_edge::<2>(a, k, n, panel, out, i, j0, nr, kb, kend, first)
                                }
                                _ => {
                                    micro_edge::<1>(a, k, n, panel, out, i, j0, nr, kb, kend, first)
                                }
                            }
                            i += mr;
                        }
                    }
                }
            }
        }
    }
}
