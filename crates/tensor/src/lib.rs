//! # mersit-tensor — a minimal dense f32 tensor library
//!
//! Deterministic RNG ([`Rng`]), a contiguous row-major [`Tensor`], and the
//! NN math primitives ([`ops`]) the `mersit-nn` layers are built from.
//! No external dependencies, so every experiment in the MERSIT
//! reproduction is bit-reproducible across environments.
//!
//! ```
//! use mersit_tensor::{Rng, Tensor};
//!
//! let mut rng = Rng::new(42);
//! let a = Tensor::randn(&[4, 8], 1.0, &mut rng);
//! let b = Tensor::randn(&[8, 2], 1.0, &mut rng);
//! let c = a.matmul(&b);
//! assert_eq!(c.shape(), &[4, 2]);
//! ```

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_possible_wrap,
    clippy::cast_precision_loss,
    clippy::must_use_candidate,
    clippy::module_name_repetitions,
    clippy::doc_markdown,
    clippy::float_cmp,
    clippy::many_single_char_names,
    clippy::unreadable_literal,
    clippy::missing_panics_doc,
    clippy::unusual_byte_groupings,
    clippy::too_many_lines,
    clippy::cast_lossless,
    clippy::needless_range_loop,
    clippy::similar_names
)]

pub mod gemm;
pub mod ops;
pub mod par;
pub mod pool;
pub mod qgemm;
pub mod rng;
pub mod simd;
pub mod tensor;

pub use gemm::PackedRhs;
pub use ops::{
    add_channel_bias, col2im, conv2d, conv2d_packed, cross_entropy, dims4, dwconv2d,
    dwconv2d_backward, global_avg_pool, global_avg_pool_backward, im2col, maxpool2d,
    maxpool2d_backward, nchw_to_rows, rows_to_nchw, softmax_rows, ConvSpec,
};
pub use par::{par_chunks_mut, par_chunks_mut_with, pool_size, thread_count};
pub use qgemm::PackedCodeRhs;
pub use rng::Rng;
pub use tensor::Tensor;
