//! Packed, cache-blocked GEMM micro-kernel for the inference hot path.
//!
//! The PTQ sweep spends nearly all of its wall-clock in
//! `[m,k]·[k,n]` matmuls (im2col convolutions and linear layers), so the
//! rhs is packed once into cache-friendly column panels ([`PackedRhs`])
//! and the product is tiled over i/k with a register-blocked
//! [`MR`]×[`NR`] micro-kernel ([`gemm_rows`]). Weight matrices that are
//! reused across many forwards (a `QuantPlan`'s per-format copies) pack
//! **once per plan** via [`PackedRhs::pack_t`], not once per sample.
//!
//! # Bit-identity invariant
//!
//! Every kernel here produces outputs **bit-identical** to the serial
//! i-k-j reference ([`matmul_naive_rows`]) for every shape, tile size,
//! and thread split. Per output element `(i, j)` the additions happen in
//! exactly the order `out += a[i][0]·b[0][j], a[i][1]·b[1][j], …`:
//!
//! * k-blocking keeps the order because each block loads the current
//!   `out` value into a register accumulator, adds its `kk` range in
//!   ascending order, and stores back — the same prefix-sum sequence,
//!   just materialized to memory every [`KC`] steps;
//! * packing is a pure copy (tail panels are zero-padded; their
//!   accumulator lanes are computed but never stored);
//! * the row split across threads never crosses an output element.
//!
//! Pinned by `tests/gemm_props.rs` across random shapes, the tile
//! boundaries of [`MR`]/[`NR`]/[`KC`]/[`MC`], explicit thread counts,
//! and every SIMD tier the host supports (via [`gemm_rows_with_level`]).
//!
//! # SIMD dispatch
//!
//! [`gemm_rows`] routes full panels through the explicit vector kernels
//! in [`crate::simd`] when the process-wide tier
//! ([`mersit_core::simd::simd_level`], overridable with `MERSIT_SIMD`)
//! allows it; the scalar micro-kernels below remain the always-compiled
//! reference and the fallback for tail panels and scalar-only hosts.

/// Micro-kernel panel width (output columns per register block). Sixteen
/// f32 lanes = one AVX-512 vector, two AVX2 vectors, or four NEON
/// vectors; the scalar inner loop is written over the full fixed width
/// so it autovectorizes even without the explicit kernels.
pub const NR: usize = 16;

/// Scalar micro-kernel height (output rows per register block): 4×16 f32
/// accumulators stay comfortably within 16 vector registers. The
/// explicit SIMD tiles use their own heights ([`crate::simd`]).
pub const MR: usize = 4;

/// k-dimension block: one [`KC`]×[`NR`] panel strip (16 KiB) stays
/// L1-resident while a row block streams over it.
pub const KC: usize = 256;

/// i-dimension block: bounds the lhs rows (up to [`MC`]·[`KC`]·4 B =
/// 64 KiB) re-read per panel sweep to roughly L2 size.
pub const MC: usize = 64;

/// Below this many output rows the per-call panel packing (`k·n` copies
/// vs `m·k·n` multiplies) is not amortized and [`crate::Tensor::matmul`]
/// keeps the direct naive kernel.
pub(crate) const PACK_MIN_ROWS: usize = 2 * MR;

/// The rhs of a GEMM, repacked into [`NR`]-wide column panels:
/// `data[p·k·NR + kk·NR + j]` holds `B[kk][p·NR + j]`, with the tail
/// panel zero-padded. The micro-kernel then streams each panel
/// contiguously instead of striding `n`-wide rows.
#[derive(Clone)]
pub struct PackedRhs {
    data: Vec<f32>,
    k: usize,
    n: usize,
}

impl std::fmt::Debug for PackedRhs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PackedRhs[{}x{}, {} panels]",
            self.k,
            self.n,
            self.panels()
        )
    }
}

impl PackedRhs {
    /// Packs a row-major `[k, n]` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != k * n`.
    #[must_use]
    pub fn pack(b: &[f32], k: usize, n: usize) -> Self {
        assert_eq!(b.len(), k * n, "rhs buffer does not match [{k}, {n}]");
        let panels = n.div_ceil(NR);
        let mut data = vec![0.0f32; panels * k * NR];
        for (p, panel) in data.chunks_exact_mut((k * NR).max(1)).enumerate() {
            let j0 = p * NR;
            let nr = NR.min(n - j0);
            for kk in 0..k {
                panel[kk * NR..kk * NR + nr].copy_from_slice(&b[kk * n + j0..kk * n + j0 + nr]);
            }
        }
        Self { data, k, n }
    }

    /// Packs the transpose of a row-major `[n, k]` matrix — i.e. `bt`
    /// holds `Bᵀ` and the panels describe `B` — without materializing
    /// the transpose. This is the weight-matrix entry point: layers
    /// store `W` as `[out, in]` and consume it as the `[in, out]` rhs of
    /// `x·Wᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if `bt.len() != n * k`.
    #[must_use]
    pub fn pack_t(bt: &[f32], n: usize, k: usize) -> Self {
        assert_eq!(bt.len(), n * k, "rhs buffer does not match [{n}, {k}]");
        let panels = n.div_ceil(NR);
        let mut data = vec![0.0f32; panels * k * NR];
        for (p, panel) in data.chunks_exact_mut((k * NR).max(1)).enumerate() {
            let j0 = p * NR;
            let nr = NR.min(n - j0);
            for (dj, col) in bt[j0 * k..(j0 + nr) * k].chunks_exact(k.max(1)).enumerate() {
                for (kk, &v) in col.iter().enumerate() {
                    panel[kk * NR + dj] = v;
                }
            }
        }
        Self { data, k, n }
    }

    /// Inner (k) dimension of the packed matrix.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Column (n) dimension of the packed matrix.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    pub(crate) fn panels(&self) -> usize {
        self.n.div_ceil(NR)
    }

    /// Raw panel storage, for the vector kernels in [`crate::simd`].
    pub(crate) fn data(&self) -> &[f32] {
        &self.data
    }
}

/// Serial i-k-j reference kernel over `rows = out.len() / n` rows:
/// `out[i][j] += a[i][kk] · b[kk][j]` with `kk` ascending — the
/// accumulation order every other kernel in this module reproduces
/// bit-for-bit. `out` is accumulated into (callers pass zeros).
///
/// This loop is the **canonical scalar order**: separate multiply then
/// add per step (never `mul_add` — a fused single rounding would change
/// results), `kk` strictly ascending. It doubles as the perf baseline in
/// `mersit-bench` and the reference in `tests/gemm_props.rs`, so it must
/// not be restructured; `#[inline(never)]` keeps it a single stable
/// compilation unit so the SIMD kernels are never benchmarked against an
/// inline-context autovectorization that shifts across compiler versions.
#[inline(never)]
pub fn matmul_naive_rows(a: &[f32], k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    if n == 0 {
        return;
    }
    let rows = out.len() / n;
    for i in 0..rows {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// Register-blocked `M`×[`NR`] tile for a **full** panel (`nr == NR`):
/// loads the current `out` values (unless this is the first k block),
/// accumulates `kk ∈ [kb, kend)` in ascending order, stores back.
/// Monomorphized per row count, and every access into the accumulator
/// array is constant-size — that is what lets SRoA promote `acc` to
/// vector registers instead of round-tripping the stack (a
/// variable-length `copy_from_slice` here de-vectorizes the whole
/// kernel; the tail panel pays that price in [`micro_edge`] instead).
#[inline(always)] // hot micro-kernel: inlining lets LLVM hoist tile bases
#[allow(clippy::inline_always, clippy::too_many_arguments)]
fn micro_full<const M: usize>(
    a: &[f32],
    k: usize,
    n: usize,
    panel: &[f32],
    out: &mut [f32],
    i0: usize,
    j0: usize,
    kb: usize,
    kend: usize,
    first: bool,
) {
    let mut acc = [[0.0f32; NR]; M];
    if !first {
        for (r, accr) in acc.iter_mut().enumerate() {
            let base = (i0 + r) * n + j0;
            let orow: &[f32; NR] = (&out[base..base + NR]).try_into().unwrap();
            *accr = *orow;
        }
    }
    for kk in kb..kend {
        // Fixed-size array refs give the lane loop a static trip count
        // and no bounds checks, so it vectorizes.
        let bp: &[f32; NR] = panel[kk * NR..kk * NR + NR].try_into().unwrap();
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = a[(i0 + r) * k + kk];
            for j in 0..NR {
                accr[j] += av * bp[j];
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let base = (i0 + r) * n + j0;
        let orow: &mut [f32; NR] = (&mut out[base..base + NR]).try_into().unwrap();
        *orow = *accr;
    }
}

/// Tail-panel variant of [`micro_full`] for `nr < NR` output columns
/// (at most one panel per matrix, so throughput is irrelevant): padded
/// lanes compute against the panel's zero padding and are never stored.
#[inline(always)] // same codegen contract as micro_full
#[allow(clippy::inline_always, clippy::too_many_arguments)]
pub(crate) fn micro_edge<const M: usize>(
    a: &[f32],
    k: usize,
    n: usize,
    panel: &[f32],
    out: &mut [f32],
    i0: usize,
    j0: usize,
    nr: usize,
    kb: usize,
    kend: usize,
    first: bool,
) {
    // The variable-length `out` copies go through `staged`, a separate
    // memory-homed buffer; `acc` itself only ever sees constant-size
    // accesses (whole-array copies and unrolled lanes), so SRoA can
    // still promote it to registers and the compute loop vectorizes.
    let mut staged = [[0.0f32; NR]; M];
    if !first {
        for (r, row) in staged.iter_mut().enumerate() {
            let orow = &out[(i0 + r) * n + j0..];
            row[..nr].copy_from_slice(&orow[..nr]);
        }
    }
    let mut acc = staged;
    for kk in kb..kend {
        let bp: &[f32; NR] = panel[kk * NR..kk * NR + NR].try_into().unwrap();
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = a[(i0 + r) * k + kk];
            for j in 0..NR {
                accr[j] += av * bp[j];
            }
        }
    }
    staged = acc;
    for (r, row) in staged.iter().enumerate() {
        let orow = &mut out[(i0 + r) * n + j0..];
        orow[..nr].copy_from_slice(&row[..nr]);
    }
}

/// Cache-blocked product of `rows = out.len() / packed.n()` lhs rows
/// (`a`, row-major `rows`×`k`) against a packed rhs, accumulating into
/// `out` (zeroed by the caller). Bit-identical to
/// [`matmul_naive_rows`] on the unpacked rhs — see the module docs.
/// Dispatches to the explicit vector kernels when the process-wide SIMD
/// tier permits; `MERSIT_SIMD=0` forces the scalar micro-kernels.
///
/// # Panics
///
/// Debug-panics when `a`/`out` lengths are inconsistent with `k` and
/// the packed dimensions.
pub fn gemm_rows(a: &[f32], k: usize, packed: &PackedRhs, out: &mut [f32]) {
    gemm_rows_with_level(mersit_core::simd::simd_level(), a, k, packed, out);
}

/// [`gemm_rows`] with an explicit SIMD tier — the differential-testing
/// entry point (`tests/gemm_props.rs` sweeps every tier in
/// [`mersit_core::simd::available_levels`]). Tiers the host cannot run
/// must not be passed; production code uses [`gemm_rows`].
pub fn gemm_rows_with_level(
    level: mersit_core::simd::SimdLevel,
    a: &[f32],
    k: usize,
    packed: &PackedRhs,
    out: &mut [f32],
) {
    let n = packed.n;
    if n == 0 || k == 0 {
        return;
    }
    debug_assert_eq!(packed.k, k, "packed rhs k mismatch");
    let rows = out.len() / n;
    debug_assert_eq!(a.len(), rows * k, "lhs rows mismatch");
    if crate::simd::gemm_rows_simd(level, a, k, packed, out) {
        return;
    }
    for kb in (0..k).step_by(KC) {
        let kend = (kb + KC).min(k);
        let first = kb == 0;
        for ib in (0..rows).step_by(MC) {
            let iend = (ib + MC).min(rows);
            for p in 0..packed.panels() {
                let j0 = p * NR;
                let nr = NR.min(n - j0);
                let panel = &packed.data[p * k * NR..(p + 1) * k * NR];
                let mut i = ib;
                while i < iend {
                    let mr = MR.min(iend - i);
                    if nr == NR {
                        match mr {
                            4 => micro_full::<4>(a, k, n, panel, out, i, j0, kb, kend, first),
                            3 => micro_full::<3>(a, k, n, panel, out, i, j0, kb, kend, first),
                            2 => micro_full::<2>(a, k, n, panel, out, i, j0, kb, kend, first),
                            _ => micro_full::<1>(a, k, n, panel, out, i, j0, kb, kend, first),
                        }
                    } else {
                        match mr {
                            4 => micro_edge::<4>(a, k, n, panel, out, i, j0, nr, kb, kend, first),
                            3 => micro_edge::<3>(a, k, n, panel, out, i, j0, nr, kb, kend, first),
                            2 => micro_edge::<2>(a, k, n, panel, out, i, j0, nr, kb, kend, first),
                            _ => micro_edge::<1>(a, k, n, panel, out, i, j0, nr, kb, kend, first),
                        }
                    }
                    i += mr;
                }
            }
        }
    }
}

/// Row-parallel wrapper over [`gemm_rows`]: splits the output rows into
/// stealable chunks on the global pool. Bit-identical to the serial
/// kernel for every thread count and steal schedule (the split never
/// crosses a row and each element keeps its ascending-k accumulation
/// order). This is the one entry point every f32 matmul consumer routes
/// tile parallelism through — `Tensor::matmul`/`matmul_packed` and the
/// conv lowerings compose with batch- and sweep-level dispatches above
/// them instead of re-deriving their own splits.
pub fn gemm_rows_par(a: &[f32], k: usize, packed: &PackedRhs, out: &mut [f32]) {
    let n = packed.n;
    if n == 0 {
        return;
    }
    crate::par::par_chunks_mut(out, n, crate::par::min_units(2 * k * n), |i0, chunk| {
        let rows = chunk.len() / n;
        gemm_rows(&a[i0 * k..(i0 + rows) * k], k, packed, chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn compare(m: usize, k: usize, n: usize, seed: u64) {
        let mut rng = Rng::new(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal() as f32).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal() as f32).collect();
        let mut want = vec![0.0f32; m * n];
        matmul_naive_rows(&a, k, &b, n, &mut want);
        let packed = PackedRhs::pack(&b, k, n);
        let mut got = vec![0.0f32; m * n];
        gemm_rows(&a, k, &packed, &mut got);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "[{m},{k},{n}] elem {i}");
        }
    }

    #[test]
    fn blocked_matches_naive_bitwise() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (4, 8, 8),
            (5, 9, 11),
            (MR + 1, KC + 1, NR + 1),
            (MC + 3, 40, 2 * NR + 5),
        ] {
            compare(m, k, n, 7 + (m * 31 + k * 7 + n) as u64);
        }
    }

    #[test]
    fn pack_t_equals_pack_of_transpose() {
        let mut rng = Rng::new(41);
        let (n, k) = (13, 21);
        let bt: Vec<f32> = (0..n * k).map(|_| rng.normal() as f32).collect();
        // Materialized transpose: b[kk][j] = bt[j][kk].
        let mut b = vec![0.0f32; k * n];
        for j in 0..n {
            for kk in 0..k {
                b[kk * n + j] = bt[j * k + kk];
            }
        }
        let from_t = PackedRhs::pack_t(&bt, n, k);
        let direct = PackedRhs::pack(&b, k, n);
        assert_eq!(from_t.data, direct.data);
    }

    #[test]
    fn degenerate_dims_leave_zeros() {
        let packed = PackedRhs::pack(&[], 0, 5);
        let mut out = vec![0.0f32; 3 * 5];
        gemm_rows(&[], 0, &packed, &mut out);
        assert!(out.iter().all(|v| v.to_bits() == 0));
    }
}
