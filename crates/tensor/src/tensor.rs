//! A minimal dense `f32` tensor: row-major contiguous storage with shape
//! metadata — just enough to run and train the paper's miniature DNNs.

use crate::gemm;
use crate::par;
use crate::rng::Rng;
use std::fmt;

/// Square tile edge for the blocked transpose: 32×32 f32 tiles (4 KiB for
/// the source walk plus 4 KiB for the destination walk) sit comfortably in
/// L1 while keeping both access patterns within-tile sequential.
const TRANSPOSE_TILE: usize = 32;

/// Dense row-major `f32` tensor.
///
/// # Examples
///
/// ```
/// use mersit_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// assert_eq!(t.at(&[1, 0]), 3.0);
/// assert_eq!(t.sum(), 10.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// All-zeros tensor of the given shape.
    #[must_use]
    pub fn zeros(shape: &[usize]) -> Self {
        Self {
            data: vec![0.0; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// Constant-filled tensor.
    #[must_use]
    pub fn full(shape: &[usize], v: f32) -> Self {
        Self {
            data: vec![v; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// Builds a tensor from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape volume.
    #[must_use]
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "shape {shape:?} does not match {} elements",
            data.len()
        );
        Self {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Normal(0, `std`) initialized tensor.
    #[must_use]
    pub fn randn(shape: &[usize], std: f32, rng: &mut Rng) -> Self {
        let n = shape.iter().product();
        let data = (0..n).map(|_| rng.normal() as f32 * std).collect();
        Self {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Uniform(lo, hi) initialized tensor.
    #[must_use]
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let n = shape.iter().product();
        let data = (0..n)
            .map(|_| rng.uniform_in(f64::from(lo), f64::from(hi)) as f32)
            .collect();
        Self {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Kaiming/He initialization for a layer with `fan_in` inputs.
    #[must_use]
    pub fn kaiming(shape: &[usize], fan_in: usize, rng: &mut Rng) -> Self {
        let std = (2.0 / fan_in.max(1) as f32).sqrt();
        Self::randn(shape, std, rng)
    }

    /// Shape of the tensor.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat immutable data view.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable data view.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its storage.
    #[must_use]
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor with a new shape of equal volume.
    ///
    /// # Panics
    ///
    /// Panics if the volumes differ.
    #[must_use]
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        assert_eq!(
            self.data.len(),
            shape.iter().product::<usize>(),
            "cannot reshape {:?} to {shape:?}",
            self.shape
        );
        self.shape = shape.to_vec();
        self
    }

    /// Flat offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds index.
    #[must_use]
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.len(), "rank mismatch");
        let mut off = 0;
        for (i, (&x, &d)) in idx.iter().zip(self.shape.iter()).enumerate() {
            assert!(x < d, "index {x} out of bounds for dim {i} (size {d})");
            off = off * d + x;
        }
        off
    }

    /// Element at a multi-dimensional index.
    #[must_use]
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.offset(idx)]
    }

    /// Mutable element at a multi-dimensional index.
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let o = self.offset(idx);
        &mut self.data[o]
    }

    /// Elementwise map into a new tensor.
    ///
    /// Large tensors are mapped on multiple threads (see [`crate::par`]);
    /// elements are independent, so the result is identical for any thread
    /// count.
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Self {
        let mut out = vec![0.0f32; self.data.len()];
        let src = &self.data;
        par::par_chunks_mut(&mut out, 1, par::min_units(4), |first, chunk| {
            let src = &src[first..first + chunk.len()];
            for (o, &x) in chunk.iter_mut().zip(src) {
                *o = f(x);
            }
        });
        Self {
            data: out,
            shape: self.shape.clone(),
        }
    }

    /// In-place elementwise map (multi-threaded for large tensors).
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        par::par_chunks_mut(&mut self.data, 1, par::min_units(4), |_, chunk| {
            for x in chunk {
                *x = f(*x);
            }
        });
    }

    /// Elementwise combination of two equally shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn zip(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        Self {
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        }
    }

    /// `self + other`.
    #[must_use]
    pub fn add(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a + b)
    }

    /// `self − other`.
    #[must_use]
    pub fn sub(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise product.
    #[must_use]
    pub fn mul(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a * b)
    }

    /// Scales by a constant.
    #[must_use]
    pub fn scale(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// In-place `self += alpha · other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Self) {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Sum of all elements.
    #[must_use]
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    #[must_use]
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum absolute value (0 for empty tensors).
    #[must_use]
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    /// Root-mean-square of the elements.
    #[must_use]
    pub fn rms(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            (self.data.iter().map(|&x| x * x).sum::<f32>() / self.data.len() as f32).sqrt()
        }
    }

    /// Matrix product of two rank-2 tensors: `[m,k] × [k,n] → [m,n]`.
    ///
    /// Large products pack the rhs into cache-blocked panels
    /// ([`crate::gemm::PackedRhs`]) and run the register-blocked kernel;
    /// small row counts keep the direct i-k-j loop (packing is not
    /// amortized). Both paths accumulate each output element in the same
    /// ascending-k order, so the result is bit-identical for every shape,
    /// path, and thread count.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are rank 2 with matching inner dims.
    #[must_use]
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be rank 2");
        assert_eq!(other.shape.len(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "inner dimension mismatch: {k} vs {k2}");
        if m < gemm::PACK_MIN_ROWS {
            let mut out = vec![0.0f32; m * n];
            let lhs = &self.data;
            let rhs = &other.data;
            if n > 0 {
                par::par_chunks_mut(&mut out, n, par::min_units(2 * k * n), |i0, chunk| {
                    let rows = chunk.len() / n;
                    gemm::matmul_naive_rows(&lhs[i0 * k..(i0 + rows) * k], k, rhs, n, chunk);
                });
            }
            return Self {
                data: out,
                shape: vec![m, n],
            };
        }
        let packed = gemm::PackedRhs::pack(&other.data, k, n);
        self.matmul_packed(&packed)
    }

    /// Matrix product against a pre-packed rhs: `[m,k] × packed[k,n] →
    /// [m,n]`. Pack weight matrices once (e.g. per `QuantPlan` format)
    /// and reuse across samples. Bit-identical to [`Self::matmul`] on
    /// the unpacked rhs.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is rank 2 with inner dim `packed.k()`.
    #[must_use]
    pub fn matmul_packed(&self, packed: &gemm::PackedRhs) -> Self {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be rank 2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let n = packed.n();
        assert_eq!(
            k,
            packed.k(),
            "inner dimension mismatch: {k} vs {}",
            packed.k()
        );
        let mut out = vec![0.0f32; m * n];
        // Output rows are independent; the shared row-parallel kernel
        // splits them into stealable chunks, and each row accumulates in
        // the same k order regardless of the split, keeping results
        // bit-identical for any thread count.
        gemm::gemm_rows_par(&self.data, k, packed, &mut out);
        Self {
            data: out,
            shape: vec![m, n],
        }
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is rank 2.
    #[must_use]
    pub fn transpose(&self) -> Self {
        assert_eq!(self.shape.len(), 2, "transpose needs rank 2");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        // Walk the matrix in square tiles so both the row-major reads and
        // the column-major writes stay within one cache-resident tile,
        // instead of striding the full destination every element.
        for ib in (0..m).step_by(TRANSPOSE_TILE) {
            let iend = (ib + TRANSPOSE_TILE).min(m);
            for jb in (0..n).step_by(TRANSPOSE_TILE) {
                let jend = (jb + TRANSPOSE_TILE).min(n);
                for i in ib..iend {
                    for j in jb..jend {
                        out[j * m + i] = self.data[i * n + j];
                    }
                }
            }
        }
        Self {
            data: out,
            shape: vec![n, m],
        }
    }

    /// Extracts rows `[lo, hi)` of the outermost dimension.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn slice_outer(&self, lo: usize, hi: usize) -> Self {
        assert!(lo <= hi && hi <= self.shape[0], "bad outer slice");
        let inner: usize = self.shape[1..].iter().product();
        let mut shape = self.shape.clone();
        shape[0] = hi - lo;
        Self {
            data: self.data[lo * inner..hi * inner].to_vec(),
            shape,
        }
    }

    /// Concatenates along the outermost dimension. Allocates the result
    /// exactly once (the serving batcher coalesces requests through this
    /// on every flush, so no growth reallocations on the hot path).
    ///
    /// # Panics
    ///
    /// Panics if inner shapes differ.
    #[must_use]
    pub fn cat_outer(parts: &[&Self]) -> Self {
        assert!(!parts.is_empty(), "cat of nothing");
        let inner = &parts[0].shape[1..];
        let mut data = Vec::with_capacity(parts.iter().map(|p| p.data.len()).sum());
        let mut outer = 0;
        for p in parts {
            assert_eq!(&p.shape[1..], inner, "inner shape mismatch");
            outer += p.shape[0];
            data.extend_from_slice(&p.data);
        }
        let mut shape = Vec::with_capacity(1 + inner.len());
        shape.push(outer);
        shape.extend_from_slice(inner);
        Self { data, shape }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor{:?} (n={}, rms={:.4}, max|x|={:.4})",
            self.shape,
            self.len(),
            self.rms(),
            self.max_abs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let t = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        assert_eq!(t.at(&[0, 2]), 3.0);
        assert_eq!(t.at(&[1, 0]), 4.0);
        let mut t = t;
        *t.at_mut(&[1, 2]) = 9.0;
        assert_eq!(t.at(&[1, 2]), 9.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t.at(&[0, 2]);
    }

    #[test]
    fn matmul_reference() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        let b = Tensor::from_vec(vec![7., 8., 9., 10., 11., 12.], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_matches_naive_random() {
        let mut rng = Rng::new(5);
        let a = Tensor::randn(&[7, 11], 1.0, &mut rng);
        let b = Tensor::randn(&[11, 5], 1.0, &mut rng);
        let c = a.matmul(&b);
        for i in 0..7 {
            for j in 0..5 {
                let mut s = 0.0;
                for k in 0..11 {
                    s += a.at(&[i, k]) * b.at(&[k, j]);
                }
                assert!((c.at(&[i, j]) - s).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn matmul_zero_inputs_give_exact_zeros() {
        // The accumulator is branch-free now (no `a == 0.0` skip); a zero
        // operand must still produce bit-exact +0.0 everywhere.
        let mut rng = Rng::new(17);
        let z = Tensor::zeros(&[9, 13]);
        let b = Tensor::randn(&[13, 6], 1.0, &mut rng);
        for &v in z.matmul(&b).data() {
            assert_eq!(v.to_bits(), 0.0f32.to_bits());
        }
        let a = Tensor::randn(&[9, 13], 1.0, &mut rng);
        let zb = Tensor::zeros(&[13, 6]);
        for &v in a.matmul(&zb).data() {
            assert_eq!(v.to_bits(), 0.0f32.to_bits());
        }
    }

    #[test]
    fn matmul_bit_exact_vs_serial_reference() {
        // Re-derive each output element with the same i-k-j accumulation
        // order the kernel uses; the parallel split must not change a bit.
        let mut rng = Rng::new(23);
        let (m, k, n) = (33, 17, 29);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let c = a.matmul(&b);
        let mut want = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                let av = a.at(&[i, kk]);
                for j in 0..n {
                    want[i * n + j] += av * b.at(&[kk, j]);
                }
            }
        }
        for (got, want) in c.data().iter().zip(&want) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn transpose_blocked_matches_naive() {
        // Shapes chosen to exercise full tiles, ragged edges, and the
        // degenerate thin cases.
        let mut rng = Rng::new(31);
        for &(m, n) in &[(1, 1), (1, 70), (70, 1), (32, 32), (33, 65), (100, 37)] {
            let a = Tensor::randn(&[m, n], 1.0, &mut rng);
            let t = a.transpose();
            assert_eq!(t.shape(), &[n, m]);
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(t.at(&[j, i]).to_bits(), a.at(&[i, j]).to_bits());
                }
            }
        }
    }

    #[test]
    fn transpose_round_trip() {
        let mut rng = Rng::new(6);
        let a = Tensor::randn(&[4, 9], 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().at(&[3, 1]), a.at(&[1, 3]));
    }

    #[test]
    fn map_large_bit_exact_vs_serial() {
        // Large enough to cross the parallel threshold in par::min_units.
        let mut rng = Rng::new(37);
        let a = Tensor::randn(&[200_000], 1.0, &mut rng);
        let f = |x: f32| (x * 1.5 + 0.25).tanh();
        let mapped = a.map(f);
        let mut inplace = a.clone();
        inplace.map_inplace(f);
        for ((&g, &h), &x) in mapped.data().iter().zip(inplace.data()).zip(a.data()) {
            let want = f(x).to_bits();
            assert_eq!(g.to_bits(), want);
            assert_eq!(h.to_bits(), want);
        }
    }

    #[test]
    fn elementwise_and_reductions() {
        let a = Tensor::from_vec(vec![1., -2., 3.], &[3]);
        let b = Tensor::from_vec(vec![2., 2., 2.], &[3]);
        assert_eq!(a.add(&b).data(), &[3., 0., 5.]);
        assert_eq!(a.sub(&b).data(), &[-1., -4., 1.]);
        assert_eq!(a.mul(&b).data(), &[2., -4., 6.]);
        assert_eq!(a.scale(2.0).data(), &[2., -4., 6.]);
        assert_eq!(a.sum(), 2.0);
        assert_eq!(a.max_abs(), 3.0);
        assert!((a.mean() - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::zeros(&[3]);
        let g = Tensor::from_vec(vec![1., 2., 3.], &[3]);
        a.axpy(0.5, &g);
        a.axpy(0.5, &g);
        assert_eq!(a.data(), &[1., 2., 3.]);
    }

    #[test]
    fn slice_and_cat() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[4, 3]);
        let lo = t.slice_outer(0, 2);
        let hi = t.slice_outer(2, 4);
        assert_eq!(lo.shape(), &[2, 3]);
        assert_eq!(Tensor::cat_outer(&[&lo, &hi]), t);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]);
        let r = t.clone().reshape(&[4]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape(), &[4]);
    }

    #[test]
    fn kaiming_scales_with_fan_in() {
        let mut rng = Rng::new(8);
        let w = Tensor::kaiming(&[100, 100], 100, &mut rng);
        let rms = w.rms();
        assert!((rms - (2.0f32 / 100.0).sqrt()).abs() < 0.02, "rms {rms}");
    }
}
