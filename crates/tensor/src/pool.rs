//! Persistent worker pool behind [`crate::par`]: lazily spawned once,
//! sized by [`crate::par::thread_count`], parked on a condvar when idle.
//!
//! The old dispatch path spawned fresh OS threads under
//! `std::thread::scope` on *every* kernel call (~10–20 µs per
//! spawn/join); the pool replaces that with a push onto a shared task
//! queue plus a condvar wake (~1 µs), which is what makes fine-grained
//! parallelism inside the PTQ sweep worthwhile at all.
//!
//! # Design
//!
//! * **Chunk claiming, not chunk assignment.** A `dispatch` publishes a
//!   task with `chunks` indivisible chunk indices; the caller and every
//!   idle worker race to claim indices off one atomic counter
//!   (`fetch_add`), so a slow worker never strands work — whoever is free
//!   takes the next chunk.
//! * **The dispatcher always participates.** `dispatch` runs the claim
//!   loop itself before blocking, so every dispatch completes even with
//!   zero workers (a pool of size 1, e.g. `MERSIT_THREADS=1` or a
//!   single-core machine) and chunk execution is guaranteed to finish —
//!   the dispatcher can only wait on chunks *already claimed* by a
//!   worker, which that worker always finishes.
//! * **Nested dispatch never deadlocks.** `par` routes dispatches issued
//!   *from a pool worker* ([`is_worker_thread`]) through the serial
//!   inline path, so a kernel called inside another kernel's chunk
//!   cannot wait on the pool it is running on. Dispatches from non-pool
//!   threads (including the main thread inside another task's chunk) go
//!   to the queue as usual, where idle workers can help.
//! * **Panics propagate.** A panicking chunk is caught on the thread
//!   that ran it, stored in the task, and re-raised (`resume_unwind`)
//!   on the dispatcher after the whole task completes — same observable
//!   behavior as the scoped-thread version.
//! * **Clean shutdown, lazy re-init.** [`shutdown`] flags the pool,
//!   wakes and joins every worker, and drops the handle; the next
//!   dispatch transparently builds a fresh pool (re-reading
//!   `MERSIT_THREADS`). Shutdown concurrent with an in-flight dispatch
//!   is safe: the dispatcher self-serves whatever the exiting workers
//!   leave unclaimed.
//!
//! # Observability
//!
//! With `MERSIT_OBS` on: `tensor.pool.size` (workers + dispatcher,
//! recorded once at creation), `tensor.pool.dispatches`,
//! `tensor.pool.chunks`, and the `tensor.pool.queue_depth` histogram
//! (queued tasks at each publish, 0 when the pool has no workers).

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

thread_local! {
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// One published fan-out: `chunks` indices claimed off `next` by whoever
/// is free, completion tracked in `done`.
struct Task {
    /// Type-erased `&F where F: Fn(usize) + Sync`, valid until the
    /// dispatcher returns (it blocks on `done`, so the borrow outlives
    /// every invocation).
    data: *const (),
    call: unsafe fn(*const (), usize),
    chunks: usize,
    next: AtomicUsize,
    done: Mutex<usize>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

// SAFETY: `data` points at an `F: Sync` borrowed by the dispatcher for
// the task's whole lifetime (it blocks until `done == chunks`), and is
// only ever used through `call` as `&F`.
unsafe impl Send for Task {}
unsafe impl Sync for Task {}

impl Task {
    fn has_unclaimed(&self) -> bool {
        self.next.load(Ordering::Relaxed) < self.chunks
    }

    /// Claims and runs chunk indices until none remain.
    fn run_claimed(&self) {
        loop {
            let idx = self.next.fetch_add(1, Ordering::Relaxed);
            if idx >= self.chunks {
                return;
            }
            // SAFETY: each index is claimed exactly once; `data` is a
            // live `&F` for the task's lifetime (see struct docs).
            let r = catch_unwind(AssertUnwindSafe(|| unsafe { (self.call)(self.data, idx) }));
            if let Err(p) = r {
                self.panic.lock().unwrap().get_or_insert(p);
            }
            let mut done = self.done.lock().unwrap();
            *done += 1;
            if *done == self.chunks {
                self.done_cv.notify_all();
            }
        }
    }

    fn wait_done(&self) {
        let mut done = self.done.lock().unwrap();
        while *done < self.chunks {
            done = self.done_cv.wait(done).unwrap();
        }
    }
}

/// Task queue shared between the dispatchers and the workers.
struct State {
    tasks: Vec<Arc<Task>>,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    work_cv: Condvar,
    handles: Mutex<Vec<thread::JoinHandle<()>>>,
    /// Spawned worker threads (`size - 1`; the dispatcher is the rest).
    workers: usize,
    /// Total threads a dispatch can use (workers + the dispatcher).
    size: usize,
}

static POOL: Mutex<Option<Arc<Inner>>> = Mutex::new(None);

fn worker_loop(inner: &Inner) {
    IS_WORKER.with(|w| w.set(true));
    loop {
        let task = {
            let mut st = inner.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(t) = st.tasks.iter().find(|t| t.has_unclaimed()) {
                    break t.clone();
                }
                st = inner.work_cv.wait(st).unwrap();
            }
        };
        task.run_claimed();
    }
}

/// The live pool, building it on first use. `MERSIT_THREADS` (via
/// [`crate::par::thread_count`]) is read once here; later changes take
/// effect only after a [`shutdown`].
fn handle() -> Arc<Inner> {
    let mut guard = POOL.lock().unwrap();
    if let Some(inner) = guard.as_ref() {
        return inner.clone();
    }
    let size = crate::par::thread_count().max(1);
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            tasks: Vec::new(),
            shutdown: false,
        }),
        work_cv: Condvar::new(),
        handles: Mutex::new(Vec::new()),
        workers: size - 1,
        size,
    });
    let mut handles = Vec::with_capacity(size - 1);
    for i in 0..size - 1 {
        let worker = Arc::clone(&inner);
        handles.push(
            thread::Builder::new()
                .name(format!("mersit-pool-{i}"))
                .spawn(move || worker_loop(&worker))
                .expect("spawn pool worker"),
        );
    }
    *inner.handles.lock().unwrap() = handles;
    if mersit_obs::enabled() {
        mersit_obs::add("tensor.pool.size", size as u64);
    }
    *guard = Some(Arc::clone(&inner));
    inner
}

/// Number of threads the pool runs dispatches on (workers + dispatcher),
/// initializing the pool if needed.
#[must_use]
pub fn size() -> usize {
    handle().size
}

/// True on a pool worker thread. `par` uses this to run nested
/// dispatches inline (serially) instead of re-entering the queue.
#[must_use]
pub fn is_worker_thread() -> bool {
    IS_WORKER.with(Cell::get)
}

/// Runs `run(idx)` for every `idx in 0..chunks` across the pool,
/// returning when all chunks finished. Panics from chunks are re-raised
/// here after completion.
pub(crate) fn dispatch<F: Fn(usize) + Sync>(chunks: usize, run: &F) {
    /// Monomorphized un-eraser for [`Task::data`].
    unsafe fn trampoline<F: Fn(usize) + Sync>(p: *const (), idx: usize) {
        unsafe { (*p.cast::<F>())(idx) }
    }
    let task = Arc::new(Task {
        data: std::ptr::from_ref(run).cast::<()>(),
        call: trampoline::<F>,
        chunks,
        next: AtomicUsize::new(0),
        done: Mutex::new(0),
        done_cv: Condvar::new(),
        panic: Mutex::new(None),
    });
    let inner = handle();
    let obs_on = mersit_obs::enabled();
    if obs_on {
        mersit_obs::incr("tensor.pool.dispatches");
        mersit_obs::add("tensor.pool.chunks", chunks as u64);
    }
    let queued = inner.workers > 0;
    if queued {
        let mut st = inner.state.lock().unwrap();
        st.tasks.push(Arc::clone(&task));
        if obs_on {
            mersit_obs::observe("tensor.pool.queue_depth", st.tasks.len() as f64);
        }
        drop(st);
        inner.work_cv.notify_all();
    } else if obs_on {
        mersit_obs::observe("tensor.pool.queue_depth", 0.0);
    }
    task.run_claimed();
    task.wait_done();
    if queued {
        let mut st = inner.state.lock().unwrap();
        st.tasks.retain(|t| !Arc::ptr_eq(t, &task));
    }
    let payload = task.panic.lock().unwrap().take();
    if let Some(p) = payload {
        resume_unwind(p);
    }
}

/// Stops and joins every worker and drops the pool handle. The next
/// dispatch lazily builds a fresh pool (re-reading `MERSIT_THREADS`).
/// Safe to call concurrently with in-flight dispatches: their
/// dispatchers self-serve whatever the exiting workers leave unclaimed.
pub fn shutdown() {
    let inner = POOL.lock().unwrap().take();
    let Some(inner) = inner else { return };
    inner.state.lock().unwrap().shutdown = true;
    inner.work_cv.notify_all();
    let handles = std::mem::take(&mut *inner.handles.lock().unwrap());
    for h in handles {
        h.join().expect("pool worker exited abnormally");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_chunk_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..37).map(|_| AtomicUsize::new(0)).collect();
        dispatch(hits.len(), &|idx| {
            hits[idx].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "chunk {i}");
        }
    }

    #[test]
    fn zero_chunk_dispatch_is_a_noop() {
        let ran = AtomicU64::new(0);
        dispatch(0, &|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn panic_in_chunk_reaches_dispatcher() {
        let caught = std::panic::catch_unwind(|| {
            dispatch(4, &|idx| assert!(idx != 2, "boom at {idx}"));
        });
        let payload = caught.expect_err("chunk panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom at 2"), "payload was {msg:?}");
        // The pool survives a panicking task.
        let ran = AtomicU64::new(0);
        dispatch(3, &|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn size_is_positive_and_stable() {
        let s = size();
        assert!(s >= 1);
        assert_eq!(size(), s);
    }
}
