//! Global work-stealing scheduler behind [`crate::par`]: lazily spawned
//! once, sized by [`crate::par::thread_count`], parked on a condvar when
//! idle.
//!
//! The previous pool pushed every fan-out onto one shared task list and
//! ran any dispatch issued *from* a worker thread inline-serially, so
//! nested parallelism (a GEMM inside a batch shard inside a format
//! sweep) collapsed to one thread per outer chunk. This scheduler makes
//! nesting compose: every dispatch — from any thread, at any depth —
//! publishes stealable per-chunk jobs, and every thread that waits on a
//! dispatch helps execute whatever work is runnable.
//!
//! # Design
//!
//! * **Per-worker deques + one injector.** Each worker owns a deque of
//!   `Job`s (one job = one chunk of one task). A dispatch issued *on* a
//!   worker pushes its jobs onto that worker's own deque; a dispatch
//!   from any other thread (the main thread, an external sweep thread)
//!   pushes onto the shared injector queue.
//! * **LIFO locally, FIFO steals.** The publishing thread pops its own
//!   queue from the back — the most recently pushed, cache-hot,
//!   innermost work. Everyone else steals from the front — the oldest,
//!   outermost chunks, which represent the largest stealable units of
//!   work. Victims are scanned starting at a per-thread random offset so
//!   stealers don't convoy on one queue.
//! * **Help-while-wait join.** A dispatcher never blocks while runnable
//!   work exists anywhere: after publishing, it loops { own-queue pop →
//!   steal → run } until its task completes, and only parks on the
//!   task's condvar when every remaining chunk of *its* task is already
//!   executing on some other thread. Workers, dispatchers, and external
//!   threads all run the same loop, so a worker that hits a nested
//!   dispatch inside a chunk drains its own subtasks (and any steals)
//!   instead of serializing. Deadlock-free: a parked joiner's chunks are
//!   in-execution elsewhere, and any chain of waiting threads bottoms
//!   out at a frame making progress (tasks nest strictly, so the wait
//!   graph is acyclic).
//! * **Panics propagate — across steals.** A panicking chunk is caught
//!   on whichever thread ran it (owner or thief), stored in the task,
//!   and re-raised (`resume_unwind`) on the dispatcher after the whole
//!   task completes.
//! * **Clean shutdown, lazy re-init.** [`shutdown`] flags the pool,
//!   wakes and joins every worker, and drops the handle; the next
//!   dispatch transparently builds a fresh pool (re-reading
//!   `MERSIT_THREADS`). Shutdown concurrent with in-flight dispatches is
//!   safe: a worker's deque is necessarily empty when it exits its idle
//!   loop (only its own in-flight dispatches fill it, and those drain
//!   before returning), and exiting workers defensively hand any
//!   leftovers to the injector where the owning dispatcher self-serves
//!   them.
//!
//! # Observability
//!
//! With `MERSIT_OBS` on: `tensor.pool.size` (workers + dispatcher,
//! recorded once at creation), `tensor.pool.dispatches`,
//! `tensor.pool.chunks`, `tensor.pool.local_hits` (jobs executed by
//! their publishing thread via a LIFO pop), `tensor.pool.steals` (jobs
//! taken from another thread's queue or the injector via a FIFO pop),
//! and the `tensor.pool.queue_depth` histogram (total queued jobs right
//! after each publish). `local_hits + steals` is every chunk that went
//! through the queues; chunks of inline dispatches (single chunk, or a
//! pool of size 1) bypass them.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

thread_local! {
    /// `(pool generation, worker index)` on pool workers; `None` on
    /// every other thread. The generation guards against a worker of an
    /// old (shut down) pool being mistaken for a worker of the current
    /// one.
    static WORKER: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
    /// Per-thread xorshift state for randomized victim selection.
    static STEAL_RNG: Cell<u64> = const { Cell::new(0) };
}

/// Pool generations, so stale worker TLS never aliases a fresh pool.
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

/// Seeds for [`STEAL_RNG`] (one per thread, deterministic, no clock).
static RNG_SEED: AtomicU64 = AtomicU64::new(0x9e37_79b9_7f4a_7c15);

fn next_rand() -> u64 {
    STEAL_RNG.with(|c| {
        let mut x = c.get();
        if x == 0 {
            // splitmix64 of a fresh seed, so threads start decorrelated.
            let mut z = RNG_SEED.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x = (z ^ (z >> 31)) | 1;
        }
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        c.set(x);
        x
    })
}

/// One published fan-out: `chunks` jobs pushed to a queue, completion
/// tracked by `completed` and announced on `done_cv`.
struct Task {
    /// Type-erased `&F where F: Fn(usize) + Sync`, valid until the
    /// dispatcher returns (it blocks until every chunk completed, so the
    /// borrow outlives every invocation).
    data: *const (),
    call: unsafe fn(*const (), usize),
    chunks: usize,
    completed: AtomicUsize,
    done: Mutex<bool>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

// SAFETY: `data` points at an `F: Sync` borrowed by the dispatcher for
// the task's whole lifetime (it blocks until `completed == chunks`), and
// is only ever used through `call` as `&F`.
unsafe impl Send for Task {}
unsafe impl Sync for Task {}

impl Task {
    fn is_done(&self) -> bool {
        self.completed.load(Ordering::Acquire) >= self.chunks
    }

    /// Runs one chunk, capturing a panic into the task, and announces
    /// completion when this was the last chunk. The panic is stored
    /// *before* the completion increment so the dispatcher always
    /// observes it.
    fn run_chunk(&self, idx: usize) {
        // SAFETY: each chunk index is queued exactly once; `data` is a
        // live `&F` for the task's lifetime (see struct docs).
        let r = catch_unwind(AssertUnwindSafe(|| unsafe { (self.call)(self.data, idx) }));
        if let Err(p) = r {
            self.panic.lock().unwrap().get_or_insert(p);
        }
        if self.completed.fetch_add(1, Ordering::AcqRel) + 1 == self.chunks {
            let mut done = self.done.lock().unwrap();
            *done = true;
            drop(done);
            self.done_cv.notify_all();
        }
    }
}

/// One stealable unit of work: a single chunk of a task.
struct Job {
    task: Arc<Task>,
    idx: usize,
}

impl Job {
    fn run(self) {
        self.task.run_chunk(self.idx);
    }
}

/// Sleep/shutdown state for idle workers. `epoch` increments on every
/// publish; a worker records it before scanning and parks only if it is
/// unchanged after a failed scan, so wakeups are never lost.
struct Sleep {
    shutdown: bool,
    epoch: u64,
}

struct Inner {
    /// `queues[INJECTOR]` is the injector (external dispatchers);
    /// `queues[1 + w]` is worker `w`'s deque.
    queues: Vec<Mutex<VecDeque<Job>>>,
    sleep: Mutex<Sleep>,
    work_cv: Condvar,
    handles: Mutex<Vec<thread::JoinHandle<()>>>,
    /// Total threads a dispatch can use (spawned workers + dispatcher).
    size: usize,
    generation: u64,
}

const INJECTOR: usize = 0;

static POOL: Mutex<Option<Arc<Inner>>> = Mutex::new(None);

impl Inner {
    /// This thread's worker index in *this* pool, if any.
    fn worker_id(&self) -> Option<usize> {
        WORKER
            .with(Cell::get)
            .and_then(|(generation, idx)| (generation == self.generation).then_some(idx))
    }

    /// The queue this thread publishes to and pops LIFO: its own deque
    /// on a worker, the injector everywhere else.
    fn home_queue(me: Option<usize>) -> usize {
        me.map_or(INJECTOR, |w| w + 1)
    }

    /// Publishes every chunk of `task` onto this thread's home queue and
    /// wakes the pool.
    fn publish(&self, me: Option<usize>, task: &Arc<Task>, obs_on: bool) {
        let home = Self::home_queue(me);
        {
            let mut q = self.queues[home].lock().unwrap();
            for idx in 0..task.chunks {
                q.push_back(Job {
                    task: Arc::clone(task),
                    idx,
                });
            }
        }
        if obs_on {
            let depth: usize = self.queues.iter().map(|q| q.lock().unwrap().len()).sum();
            mersit_obs::observe("tensor.pool.queue_depth", depth as f64);
        }
        let mut s = self.sleep.lock().unwrap();
        s.epoch = s.epoch.wrapping_add(1);
        drop(s);
        self.work_cv.notify_all();
    }

    /// One scheduling decision: LIFO pop of the home queue, else a FIFO
    /// steal from the other queues starting at a random victim.
    fn find_job(&self, me: Option<usize>) -> Option<(Job, bool)> {
        let home = Self::home_queue(me);
        if let Some(job) = self.queues[home].lock().unwrap().pop_back() {
            return Some((job, true));
        }
        let n = self.queues.len();
        let start = next_rand() as usize % n;
        for i in 0..n {
            let qi = (start + i) % n;
            if qi == home {
                continue;
            }
            if let Some(job) = self.queues[qi].lock().unwrap().pop_front() {
                return Some((job, false));
            }
        }
        None
    }

    /// Runs `job`, bumping the local-hit / steal counters.
    fn run_job(job: Job, local: bool, obs_on: bool) {
        if obs_on {
            if local {
                mersit_obs::incr("tensor.pool.local_hits");
            } else {
                mersit_obs::incr("tensor.pool.steals");
            }
        }
        job.run();
    }

    /// Help-while-wait join: run any available job until `task`
    /// completes, parking on the task's condvar only when nothing is
    /// runnable anywhere (which implies every remaining chunk of `task`
    /// is already executing on another thread).
    fn join(&self, me: Option<usize>, task: &Task) {
        let obs_on = mersit_obs::enabled();
        while !task.is_done() {
            if let Some((job, local)) = self.find_job(me) {
                Self::run_job(job, local, obs_on);
                continue;
            }
            let done = task.done.lock().unwrap();
            if !*done {
                // Completion notifies under `done`, so this cannot miss
                // it; a spurious wake just re-runs the scan.
                let _unused = task.done_cv.wait(done).unwrap();
            }
        }
    }
}

fn worker_loop(inner: &Inner, index: usize) {
    WORKER.with(|w| w.set(Some((inner.generation, index))));
    loop {
        let epoch = inner.sleep.lock().unwrap().epoch;
        if let Some((job, local)) = inner.find_job(Some(index)) {
            Inner::run_job(job, local, mersit_obs::enabled());
            continue;
        }
        let mut s = inner.sleep.lock().unwrap();
        loop {
            if s.shutdown {
                drop(s);
                // Defensive: the deque should be empty here (our own
                // dispatches drain before returning to the idle loop),
                // but hand any stragglers to the injector and wake their
                // dispatchers so no join can strand.
                let leftovers: Vec<Job> =
                    inner.queues[index + 1].lock().unwrap().drain(..).collect();
                if !leftovers.is_empty() {
                    let mut inj = inner.queues[INJECTOR].lock().unwrap();
                    for job in leftovers {
                        let task = Arc::clone(&job.task);
                        inj.push_back(job);
                        drop(task.done.lock().unwrap());
                        task.done_cv.notify_all();
                    }
                }
                return;
            }
            if s.epoch != epoch {
                break;
            }
            s = inner.work_cv.wait(s).unwrap();
        }
    }
}

/// The live pool, building it on first use. `MERSIT_THREADS` (via
/// [`crate::par::thread_count`]) is read once here; later changes take
/// effect only after a [`shutdown`].
fn handle() -> Arc<Inner> {
    let mut guard = POOL.lock().unwrap();
    if let Some(inner) = guard.as_ref() {
        return inner.clone();
    }
    let size = crate::par::thread_count().max(1);
    let inner = Arc::new(Inner {
        queues: (0..size).map(|_| Mutex::new(VecDeque::new())).collect(),
        sleep: Mutex::new(Sleep {
            shutdown: false,
            epoch: 0,
        }),
        work_cv: Condvar::new(),
        handles: Mutex::new(Vec::new()),
        size,
        generation: NEXT_GENERATION.fetch_add(1, Ordering::Relaxed),
    });
    let mut handles = Vec::with_capacity(size - 1);
    for i in 0..size - 1 {
        let worker = Arc::clone(&inner);
        handles.push(
            thread::Builder::new()
                .name(format!("mersit-pool-{i}"))
                .spawn(move || worker_loop(&worker, i))
                .expect("spawn pool worker"),
        );
    }
    *inner.handles.lock().unwrap() = handles;
    if mersit_obs::enabled() {
        mersit_obs::add("tensor.pool.size", size as u64);
        // Pin the utilization counters into the schema even before the
        // first queued job.
        mersit_obs::add("tensor.pool.local_hits", 0);
        mersit_obs::add("tensor.pool.steals", 0);
    }
    *guard = Some(Arc::clone(&inner));
    inner
}

/// Number of threads the pool runs dispatches on (workers + dispatcher),
/// initializing the pool if needed.
#[must_use]
pub fn size() -> usize {
    handle().size
}

/// True on a pool worker thread (of any pool generation). Nested
/// dispatches no longer special-case this — they queue onto the worker's
/// own deque — but tests use it to pin thread identities.
#[must_use]
pub fn is_worker_thread() -> bool {
    WORKER.with(Cell::get).is_some()
}

/// Runs `run(idx)` for every `idx in 0..chunks` across the pool,
/// returning when all chunks finished. May be called from any thread,
/// including pool workers mid-chunk (the subtasks are pushed onto that
/// worker's deque and are stealable). Panics from chunks are re-raised
/// here after completion.
pub(crate) fn dispatch<F: Fn(usize) + Sync>(chunks: usize, run: &F) {
    /// Monomorphized un-eraser for [`Task::data`].
    unsafe fn trampoline<F: Fn(usize) + Sync>(p: *const (), idx: usize) {
        unsafe { (*p.cast::<F>())(idx) }
    }
    if chunks == 0 {
        return;
    }
    let inner = handle();
    let obs_on = mersit_obs::enabled();
    if obs_on {
        mersit_obs::incr("tensor.pool.dispatches");
        mersit_obs::add("tensor.pool.chunks", chunks as u64);
    }
    let task = Arc::new(Task {
        data: std::ptr::from_ref(run).cast::<()>(),
        call: trampoline::<F>,
        chunks,
        completed: AtomicUsize::new(0),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
        panic: Mutex::new(None),
    });
    if chunks == 1 || inner.size == 1 {
        // Nothing could be stolen (single chunk) or there is nobody to
        // steal (no workers): run inline, skipping the queues.
        if obs_on {
            mersit_obs::observe("tensor.pool.queue_depth", 0.0);
        }
        for idx in 0..chunks {
            task.run_chunk(idx);
        }
    } else {
        let me = inner.worker_id();
        inner.publish(me, &task, obs_on);
        inner.join(me, &task);
    }
    let payload = task.panic.lock().unwrap().take();
    if let Some(p) = payload {
        resume_unwind(p);
    }
}

/// Stops and joins every worker and drops the pool handle. The next
/// dispatch lazily builds a fresh pool (re-reading `MERSIT_THREADS`).
/// Safe to call concurrently with in-flight dispatches: their
/// dispatchers self-serve whatever the exiting workers leave behind.
pub fn shutdown() {
    let inner = POOL.lock().unwrap().take();
    let Some(inner) = inner else { return };
    inner.sleep.lock().unwrap().shutdown = true;
    inner.work_cv.notify_all();
    let handles = std::mem::take(&mut *inner.handles.lock().unwrap());
    for h in handles {
        h.join().expect("pool worker exited abnormally");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_chunk_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..37).map(|_| AtomicUsize::new(0)).collect();
        dispatch(hits.len(), &|idx| {
            hits[idx].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "chunk {i}");
        }
    }

    #[test]
    fn zero_chunk_dispatch_is_a_noop() {
        let ran = AtomicU64::new(0);
        dispatch(0, &|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn nested_dispatch_completes_from_any_thread() {
        // Two levels of nesting from inside chunks: both the worker and
        // the dispatcher sides must push-and-help rather than deadlock.
        let total = AtomicUsize::new(0);
        dispatch(4, &|_| {
            dispatch(3, &|_| {
                dispatch(2, &|_| {
                    total.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 3 * 2);
    }

    #[test]
    fn panic_in_chunk_reaches_dispatcher() {
        let caught = std::panic::catch_unwind(|| {
            dispatch(4, &|idx| assert!(idx != 2, "boom at {idx}"));
        });
        let payload = caught.expect_err("chunk panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom at 2"), "payload was {msg:?}");
        // The pool survives a panicking task.
        let ran = AtomicU64::new(0);
        dispatch(3, &|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn size_is_positive_and_stable() {
        let s = size();
        assert!(s >= 1);
        assert_eq!(size(), s);
    }
}
