//! Neural-network math primitives over [`Tensor`]: im2col convolution
//! (forward and backward), depthwise convolution, pooling, softmax and
//! cross-entropy — the compute substrate the `mersit-nn` layers wrap.
//!
//! Layout convention: activations are NCHW, convolution weights are
//! `[OC, C·KH·KW]` (already flattened for im2col matmuls), depthwise
//! weights are `[C, KH, KW]`.

use crate::par;
use crate::tensor::Tensor;

/// Convolution geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSpec {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both dims).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl ConvSpec {
    /// Square kernel with stride/pad.
    #[must_use]
    pub fn new(k: usize, stride: usize, pad: usize) -> Self {
        Self {
            kh: k,
            kw: k,
            stride,
            pad,
        }
    }

    /// Output spatial size for an input of `(h, w)`.
    #[must_use]
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h + 2 * self.pad - self.kh) / self.stride + 1,
            (w + 2 * self.pad - self.kw) / self.stride + 1,
        )
    }
}

/// Unfolds an NCHW tensor into im2col layout:
/// `[N·OH·OW, C·KH·KW]`, rows ordered `(n, oh, ow)`.
///
/// # Panics
///
/// Panics unless `x` is rank 4.
#[must_use]
pub fn im2col(x: &Tensor, spec: &ConvSpec) -> Tensor {
    let (n, c, h, w) = dims4(x);
    let (oh, ow) = spec.out_hw(h, w);
    let ckk = c * spec.kh * spec.kw;
    let mut out = vec![0.0f32; n * oh * ow * ckk];
    let xd = x.data();
    // Each output row is one `(n, oh, ow)` patch, filled independently of
    // every other row, so flat row ranges split cleanly across threads.
    par::par_chunks_mut(&mut out, ckk, par::min_units(ckk), |row0, chunk| {
        for (dr, orow) in chunk.chunks_mut(ckk).enumerate() {
            let row = row0 + dr;
            let ni = row / (oh * ow);
            let oy = row / ow % oh;
            let ox = row % ow;
            for ci in 0..c {
                for ky in 0..spec.kh {
                    let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                    for kx in 0..spec.kw {
                        let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                        let col = (ci * spec.kh + ky) * spec.kw + kx;
                        if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                            orow[col] = xd[((ni * c + ci) * h + iy as usize) * w + ix as usize];
                        }
                    }
                }
            }
        }
    });
    Tensor::from_vec(out, &[n * oh * ow, ckk])
}

/// Folds an im2col gradient back into an NCHW input gradient
/// (the adjoint of [`im2col`]).
///
/// # Panics
///
/// Panics on inconsistent shapes.
#[must_use]
pub fn col2im(dcol: &Tensor, x_shape: &[usize], spec: &ConvSpec) -> Tensor {
    let (n, c, h, w) = (x_shape[0], x_shape[1], x_shape[2], x_shape[3]);
    let (oh, ow) = spec.out_hw(h, w);
    let ckk = c * spec.kh * spec.kw;
    assert_eq!(dcol.shape(), &[n * oh * ow, ckk], "col shape mismatch");
    let mut dx = vec![0.0f32; n * c * h * w];
    let dd = dcol.data();
    let mut row = 0;
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let base = row * ckk;
                for ci in 0..c {
                    for ky in 0..spec.kh {
                        let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                        for kx in 0..spec.kw {
                            let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                            let col = (ci * spec.kh + ky) * spec.kw + kx;
                            if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                                dx[((ni * c + ci) * h + iy as usize) * w + ix as usize] +=
                                    dd[base + col];
                            }
                        }
                    }
                }
                row += 1;
            }
        }
    }
    Tensor::from_vec(dx, &[n, c, h, w])
}

/// Permutes `[N·OH·OW, OC]` (im2col matmul output) to NCHW.
#[must_use]
pub fn rows_to_nchw(rows: &Tensor, n: usize, oc: usize, oh: usize, ow: usize) -> Tensor {
    assert_eq!(rows.shape(), &[n * oh * ow, oc]);
    let rd = rows.data();
    let mut out = vec![0.0f32; n * oc * oh * ow];
    for ni in 0..n {
        for y in 0..oh {
            for x in 0..ow {
                let r = (ni * oh + y) * ow + x;
                for co in 0..oc {
                    out[((ni * oc + co) * oh + y) * ow + x] = rd[r * oc + co];
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, oc, oh, ow])
}

/// Permutes NCHW to `[N·OH·OW, OC]` (the inverse of [`rows_to_nchw`]).
#[must_use]
pub fn nchw_to_rows(x: &Tensor) -> Tensor {
    let (n, c, h, w) = dims4(x);
    let xd = x.data();
    let mut out = vec![0.0f32; n * c * h * w];
    for ni in 0..n {
        for y in 0..h {
            for xx in 0..w {
                let r = (ni * h + y) * w + xx;
                for ci in 0..c {
                    out[r * c + ci] = xd[((ni * c + ci) * h + y) * w + xx];
                }
            }
        }
    }
    Tensor::from_vec(out, &[n * h * w, c])
}

/// Full convolution forward: `x` NCHW, `w` `[OC, C·KH·KW]`, optional bias
/// `[OC]`. Returns NCHW output.
///
/// # Panics
///
/// Panics on inconsistent shapes.
#[must_use]
pub fn conv2d(x: &Tensor, w: &Tensor, bias: Option<&Tensor>, spec: &ConvSpec) -> Tensor {
    let (n, _c, h, ww) = dims4(x);
    let (oh, ow) = spec.out_hw(h, ww);
    let oc = w.shape()[0];
    let col = im2col(x, spec);
    let rows = col.matmul(&w.transpose());
    let mut out = rows_to_nchw(&rows, n, oc, oh, ow);
    if let Some(b) = bias {
        add_channel_bias(&mut out, b);
    }
    out
}

/// [`conv2d`] against a pre-packed weight: `w_t` is the `[C·KH·KW, OC]`
/// rhs (i.e. `PackedRhs::pack_t` of the usual `[OC, C·KH·KW]` weight),
/// packed once and reused across samples. Bit-identical to [`conv2d`]
/// on the unpacked weight.
///
/// # Panics
///
/// Panics on inconsistent shapes.
#[must_use]
pub fn conv2d_packed(
    x: &Tensor,
    w_t: &crate::gemm::PackedRhs,
    bias: Option<&Tensor>,
    spec: &ConvSpec,
) -> Tensor {
    let (n, _c, h, ww) = dims4(x);
    let (oh, ow) = spec.out_hw(h, ww);
    let oc = w_t.n();
    let col = im2col(x, spec);
    let rows = col.matmul_packed(w_t);
    let mut out = rows_to_nchw(&rows, n, oc, oh, ow);
    if let Some(b) = bias {
        add_channel_bias(&mut out, b);
    }
    out
}

/// Adds a per-channel bias to an NCHW tensor in place.
///
/// # Panics
///
/// Panics if `bias` length differs from the channel count.
pub fn add_channel_bias(x: &mut Tensor, bias: &Tensor) {
    let (n, c, h, w) = dims4(x);
    assert_eq!(bias.len(), c, "bias length mismatch");
    let bd = bias.data().to_vec();
    let xd = x.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for p in &mut xd[base..base + h * w] {
                *p += bd[ci];
            }
        }
    }
}

/// Depthwise convolution forward: `x` NCHW, `w` `[C, KH, KW]`.
///
/// # Panics
///
/// Panics on inconsistent shapes.
#[must_use]
pub fn dwconv2d(x: &Tensor, w: &Tensor, spec: &ConvSpec) -> Tensor {
    let (n, c, h, ww) = dims4(x);
    assert_eq!(w.shape()[0], c, "depthwise kernel channel mismatch");
    let (oh, ow) = spec.out_hw(h, ww);
    let mut out = vec![0.0f32; n * c * oh * ow];
    let (xd, wd) = (x.data(), w.data());
    for ni in 0..n {
        for ci in 0..c {
            let xbase = (ni * c + ci) * h * ww;
            let wbase = ci * spec.kh * spec.kw;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut s = 0.0;
                    for ky in 0..spec.kh {
                        let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                        if iy < 0 || iy as usize >= h {
                            continue;
                        }
                        for kx in 0..spec.kw {
                            let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                            if ix < 0 || ix as usize >= ww {
                                continue;
                            }
                            s += xd[xbase + iy as usize * ww + ix as usize]
                                * wd[wbase + ky * spec.kw + kx];
                        }
                    }
                    out[((ni * c + ci) * oh + oy) * ow + ox] = s;
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, oh, ow])
}

/// Depthwise convolution backward: returns `(dx, dw)`.
///
/// # Panics
///
/// Panics on inconsistent shapes.
#[must_use]
pub fn dwconv2d_backward(
    x: &Tensor,
    w: &Tensor,
    dout: &Tensor,
    spec: &ConvSpec,
) -> (Tensor, Tensor) {
    let (n, c, h, ww) = dims4(x);
    let (oh, ow) = spec.out_hw(h, ww);
    let mut dx = vec![0.0f32; x.len()];
    let mut dw = vec![0.0f32; w.len()];
    let (xd, wd, dd) = (x.data(), w.data(), dout.data());
    for ni in 0..n {
        for ci in 0..c {
            let xbase = (ni * c + ci) * h * ww;
            let wbase = ci * spec.kh * spec.kw;
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = dd[((ni * c + ci) * oh + oy) * ow + ox];
                    if g == 0.0 {
                        continue;
                    }
                    for ky in 0..spec.kh {
                        let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                        if iy < 0 || iy as usize >= h {
                            continue;
                        }
                        for kx in 0..spec.kw {
                            let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                            if ix < 0 || ix as usize >= ww {
                                continue;
                            }
                            let xi = xbase + iy as usize * ww + ix as usize;
                            let wi = wbase + ky * spec.kw + kx;
                            dx[xi] += g * wd[wi];
                            dw[wi] += g * xd[xi];
                        }
                    }
                }
            }
        }
    }
    (
        Tensor::from_vec(dx, x.shape()),
        Tensor::from_vec(dw, w.shape()),
    )
}

/// 2×2 (or general) max pooling; returns `(output, argmax_flat_indices)`.
///
/// # Panics
///
/// Panics unless `x` is rank 4.
#[must_use]
pub fn maxpool2d(x: &Tensor, k: usize, stride: usize) -> (Tensor, Vec<usize>) {
    let (n, c, h, w) = dims4(x);
    let oh = (h - k) / stride + 1;
    let ow = (w - k) / stride + 1;
    let xd = x.data();
    let mut out = vec![0.0f32; n * c * oh * ow];
    let mut arg = vec![0usize; n * c * oh * ow];
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut bi = 0;
                    for ky in 0..k {
                        for kx in 0..k {
                            let idx = base + (oy * stride + ky) * w + (ox * stride + kx);
                            if xd[idx] > best {
                                best = xd[idx];
                                bi = idx;
                            }
                        }
                    }
                    let o = ((ni * c + ci) * oh + oy) * ow + ox;
                    out[o] = best;
                    arg[o] = bi;
                }
            }
        }
    }
    (Tensor::from_vec(out, &[n, c, oh, ow]), arg)
}

/// Max-pool backward given the recorded argmax indices.
#[must_use]
pub fn maxpool2d_backward(dout: &Tensor, arg: &[usize], x_shape: &[usize]) -> Tensor {
    let mut dx = vec![0.0f32; x_shape.iter().product()];
    for (g, &i) in dout.data().iter().zip(arg.iter()) {
        dx[i] += g;
    }
    Tensor::from_vec(dx, x_shape)
}

/// Global average pooling NCHW → `[N, C]`.
///
/// # Panics
///
/// Panics unless `x` is rank 4.
#[must_use]
pub fn global_avg_pool(x: &Tensor) -> Tensor {
    let (n, c, h, w) = dims4(x);
    let xd = x.data();
    let mut out = vec![0.0f32; n * c];
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            out[ni * c + ci] = xd[base..base + h * w].iter().sum::<f32>() / (h * w) as f32;
        }
    }
    Tensor::from_vec(out, &[n, c])
}

/// Global-average-pool backward: spreads each gradient uniformly.
#[must_use]
pub fn global_avg_pool_backward(dout: &Tensor, x_shape: &[usize]) -> Tensor {
    let (n, c, h, w) = (x_shape[0], x_shape[1], x_shape[2], x_shape[3]);
    let scale = 1.0 / (h * w) as f32;
    let dd = dout.data();
    let mut dx = vec![0.0f32; n * c * h * w];
    for ni in 0..n {
        for ci in 0..c {
            let g = dd[ni * c + ci] * scale;
            let base = (ni * c + ci) * h * w;
            for p in &mut dx[base..base + h * w] {
                *p = g;
            }
        }
    }
    Tensor::from_vec(dx, x_shape)
}

/// Row-wise softmax of a rank-2 tensor.
///
/// # Panics
///
/// Panics unless `x` is rank 2.
#[must_use]
pub fn softmax_rows(x: &Tensor) -> Tensor {
    assert_eq!(x.shape().len(), 2, "softmax needs rank 2");
    let (n, k) = (x.shape()[0], x.shape()[1]);
    let xd = x.data();
    let mut out = vec![0.0f32; n * k];
    for i in 0..n {
        let row = &xd[i * k..(i + 1) * k];
        let m = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut z = 0.0;
        for (o, &v) in out[i * k..(i + 1) * k].iter_mut().zip(row.iter()) {
            *o = (v - m).exp();
            z += *o;
        }
        for o in &mut out[i * k..(i + 1) * k] {
            *o /= z;
        }
    }
    Tensor::from_vec(out, &[n, k])
}

/// Mean cross-entropy loss of logits `[N, K]` against integer labels, and
/// its gradient with respect to the logits.
///
/// # Panics
///
/// Panics on rank/label mismatch.
#[must_use]
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), n, "label count mismatch");
    let p = softmax_rows(logits);
    let pd = p.data();
    let mut loss = 0.0f32;
    let mut grad = pd.to_vec();
    for (i, &y) in labels.iter().enumerate() {
        assert!(y < k, "label out of range");
        loss -= pd[i * k + y].max(1e-12).ln();
        grad[i * k + y] -= 1.0;
    }
    let scale = 1.0 / n as f32;
    for g in &mut grad {
        *g *= scale;
    }
    (loss / n as f32, Tensor::from_vec(grad, &[n, k]))
}

/// Extracts `(N, C, H, W)` from a rank-4 tensor.
///
/// # Panics
///
/// Panics unless the tensor is rank 4.
#[must_use]
pub fn dims4(x: &Tensor) -> (usize, usize, usize, usize) {
    let s = x.shape();
    assert_eq!(s.len(), 4, "expected NCHW, got {s:?}");
    (s[0], s[1], s[2], s[3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// Naive direct convolution for cross-checking im2col.
    fn conv_naive(x: &Tensor, w: &Tensor, spec: &ConvSpec) -> Tensor {
        let (n, c, h, ww) = dims4(x);
        let (oh, ow) = spec.out_hw(h, ww);
        let oc = w.shape()[0];
        let mut out = Tensor::zeros(&[n, oc, oh, ow]);
        for ni in 0..n {
            for co in 0..oc {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut s = 0.0;
                        for ci in 0..c {
                            for ky in 0..spec.kh {
                                for kx in 0..spec.kw {
                                    let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                                    let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                                    if iy < 0 || ix < 0 || iy as usize >= h || ix as usize >= ww {
                                        continue;
                                    }
                                    let wv = w.at(&[co, (ci * spec.kh + ky) * spec.kw + kx]);
                                    s += wv * x.at(&[ni, ci, iy as usize, ix as usize]);
                                }
                            }
                        }
                        *out.at_mut(&[ni, co, oy, ox]) = s;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn conv2d_matches_naive() {
        let mut rng = Rng::new(1);
        let x = Tensor::randn(&[2, 3, 6, 6], 1.0, &mut rng);
        let w = Tensor::randn(&[4, 3 * 9], 0.5, &mut rng);
        for spec in [
            ConvSpec::new(3, 1, 1),
            ConvSpec::new(3, 2, 1),
            ConvSpec::new(3, 1, 0),
            ConvSpec::new(1, 1, 0),
        ] {
            let w1 = if spec.kh == 1 {
                Tensor::randn(&[4, 3], 0.5, &mut rng)
            } else {
                w.clone()
            };
            let got = conv2d(&x, &w1, None, &spec);
            let want = conv_naive(&x, &w1, &spec);
            assert_eq!(got.shape(), want.shape());
            for (a, b) in got.data().iter().zip(want.data().iter()) {
                assert!((a - b).abs() < 1e-4, "spec {spec:?}");
            }
        }
    }

    #[test]
    fn conv_bias_adds_per_channel() {
        let x = Tensor::full(&[1, 1, 2, 2], 0.0);
        let w = Tensor::full(&[2, 1], 0.0);
        let b = Tensor::from_vec(vec![1.5, -2.0], &[2]);
        let y = conv2d(&x, &w, Some(&b), &ConvSpec::new(1, 1, 0));
        assert_eq!(y.at(&[0, 0, 1, 1]), 1.5);
        assert_eq!(y.at(&[0, 1, 0, 0]), -2.0);
    }

    #[test]
    fn im2col_col2im_adjoint() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property.
        let mut rng = Rng::new(2);
        let spec = ConvSpec::new(3, 2, 1);
        let x = Tensor::randn(&[2, 3, 5, 5], 1.0, &mut rng);
        let col = im2col(&x, &spec);
        let y = Tensor::randn(col.shape(), 1.0, &mut rng);
        let lhs: f32 = col.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, x.shape(), &spec);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn dwconv_matches_grouped_naive() {
        let mut rng = Rng::new(3);
        let x = Tensor::randn(&[2, 4, 6, 6], 1.0, &mut rng);
        let w = Tensor::randn(&[4, 3, 3], 0.5, &mut rng);
        let spec = ConvSpec::new(3, 1, 1);
        let got = dwconv2d(&x, &w, &spec);
        // Naive: each channel convolved independently.
        for ni in 0..2 {
            for ci in 0..4 {
                for oy in 0..6 {
                    for ox in 0..6 {
                        let mut s = 0.0;
                        for ky in 0..3 {
                            for kx in 0..3 {
                                let iy = oy as isize + ky as isize - 1;
                                let ix = ox as isize + kx as isize - 1;
                                if iy < 0 || ix < 0 || iy >= 6 || ix >= 6 {
                                    continue;
                                }
                                s +=
                                    x.at(&[ni, ci, iy as usize, ix as usize]) * w.at(&[ci, ky, kx]);
                            }
                        }
                        assert!((got.at(&[ni, ci, oy, ox]) - s).abs() < 1e-4);
                    }
                }
            }
        }
    }

    #[test]
    fn dwconv_backward_numerical() {
        let mut rng = Rng::new(4);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let w = Tensor::randn(&[2, 3, 3], 0.5, &mut rng);
        let spec = ConvSpec::new(3, 1, 1);
        let dout = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let (dx, dw) = dwconv2d_backward(&x, &w, &dout, &spec);
        let loss = |x: &Tensor, w: &Tensor| -> f32 {
            dwconv2d(x, w, &spec)
                .data()
                .iter()
                .zip(dout.data())
                .map(|(a, b)| a * b)
                .sum()
        };
        let eps = 1e-3;
        for i in [0usize, 5, 17, 31] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            assert!((num - dx.data()[i]).abs() < 1e-2, "dx[{i}]");
        }
        for i in [0usize, 7, 17] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let num = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!((num - dw.data()[i]).abs() < 1e-2, "dw[{i}]");
        }
    }

    #[test]
    fn maxpool_forward_backward() {
        let x = Tensor::from_vec(
            vec![
                1., 2., 5., 3., //
                4., 0., 1., 2., //
                7., 1., 0., 1., //
                2., 3., 4., 9.,
            ],
            &[1, 1, 4, 4],
        );
        let (y, arg) = maxpool2d(&x, 2, 2);
        assert_eq!(y.data(), &[4., 5., 7., 9.]);
        let dout = Tensor::from_vec(vec![1., 1., 1., 1.], &[1, 1, 2, 2]);
        let dx = maxpool2d_backward(&dout, &arg, x.shape());
        assert_eq!(dx.data()[4], 1.0); // the 4
        assert_eq!(dx.data()[2], 1.0); // the 5
        assert_eq!(dx.sum(), 4.0);
    }

    #[test]
    fn gap_and_backward() {
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]);
        let y = global_avg_pool(&x);
        assert_eq!(y.data(), &[1.5, 5.5]);
        let dx = global_avg_pool_backward(&Tensor::from_vec(vec![4.0, 8.0], &[1, 2]), x.shape());
        assert_eq!(dx.data()[0], 1.0);
        assert_eq!(dx.data()[7], 2.0);
    }

    #[test]
    fn softmax_rows_sane() {
        let x = Tensor::from_vec(vec![1., 2., 3., 1000., 1000., 1000.], &[2, 3]);
        let p = softmax_rows(&x);
        let row0: f32 = p.data()[..3].iter().sum();
        assert!((row0 - 1.0).abs() < 1e-5);
        assert!((p.data()[5] - 1.0 / 3.0).abs() < 1e-5); // no overflow
        assert!(p.data()[2] > p.data()[1]);
    }

    #[test]
    fn cross_entropy_gradient_numerical() {
        let mut rng = Rng::new(6);
        let logits = Tensor::randn(&[3, 4], 1.0, &mut rng);
        let labels = [1usize, 3, 0];
        let (_, grad) = cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (la, _) = cross_entropy(&lp, &labels);
            let (lb, _) = cross_entropy(&lm, &labels);
            let num = (la - lb) / (2.0 * eps);
            assert!((num - grad.data()[i]).abs() < 1e-2, "grad[{i}]");
        }
    }

    #[test]
    fn nchw_row_round_trip() {
        let mut rng = Rng::new(7);
        let x = Tensor::randn(&[2, 3, 4, 5], 1.0, &mut rng);
        let rows = nchw_to_rows(&x);
        let back = rows_to_nchw(&rows, 2, 3, 4, 5);
        assert_eq!(back, x);
    }
}
