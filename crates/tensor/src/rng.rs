//! Deterministic pseudo-random number generation (SplitMix64 seeding +
//! Xoshiro256** core) so every experiment in the reproduction is exactly
//! repeatable without depending on external RNG crate versions.

/// Xoshiro256** generator with SplitMix64 seeding.
///
/// # Examples
///
/// ```
/// use mersit_tensor::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    cached_normal: Option<f64>,
}

impl Rng {
    /// Creates a generator from a seed (any value, including 0).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the Xoshiro state.
        let mut sm = seed;
        let mut next_sm = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
            cached_normal: None,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        // Multiply-shift rejection-free mapping (bias < 2^-64·n, negligible).
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }

    /// Standard normal via Box–Muller (cached pair).
    pub fn normal(&mut self) -> f64 {
        if let Some(v) = self.cached_normal.take() {
            return v;
        }
        let (u1, u2) = (self.uniform().max(1e-18), self.uniform());
        let r = (-2.0 * u1.ln()).sqrt();
        let (s, c) = (std::f64::consts::TAU * u2).sin_cos();
        self.cached_normal = Some(r * s);
        r * c
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        self.shuffle(&mut p);
        p
    }

    /// Forks an independent generator (seeded from this one).
    #[must_use]
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_range_and_roughly_flat() {
        let mut r = Rng::new(3);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
            buckets[(u * 10.0) as usize] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket {b}");
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(11);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn below_bounds_and_coverage() {
        let mut r = Rng::new(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn permutation_is_permutation() {
        let mut r = Rng::new(9);
        let p = r.permutation(100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(p, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut a = Rng::new(13);
        let mut f = a.fork();
        assert_ne!(a.next_u64(), f.next_u64());
    }
}
