//! Packed integer GEMM over fixed-point code values — the bit-true
//! inference hot path.
//!
//! The bit-true executor (`mersit-ptq`) maps every 8-bit code to an `i64`
//! fixed-point value (`mersit-core::fixpoint::FixTable`) and needs exact
//! `[m,k]·[k,n]` integer products with `i128` accumulation. Unlike the
//! float kernels in [`crate::gemm`], **integer addition is associative**,
//! so any tiling, packing, or thread split produces bit-identical sums by
//! construction — the kernels here are free to reorder. The panel layout
//! mirrors [`crate::gemm::PackedRhs`] (same [`NR`]-wide column panels,
//! same `pack_t` entry point from `[n, k]` weight-code matrices) so plans
//! pack code matrices once and reuse them across samples.
//!
//! Pinned by `tests/qgemm_props.rs`: packed/blocked/threaded results are
//! bit-identical to the serial [`qgemm_naive_rows`] reference across
//! random shapes, tile boundaries, and thread counts.

use crate::gemm::{KC, NR};
use crate::par;

/// An integer rhs repacked into [`NR`]-wide column panels with the exact
/// layout of [`crate::gemm::PackedRhs`]: `data[p·k·NR + kk·NR + j]` holds
/// `B[kk][p·NR + j]`, tail panel zero-padded. Packing also records the
/// maximum operand magnitude so [`qgemm_rows`] can prove, per call, that
/// the SIMD tile's 64-bit partial-product accumulators cannot overflow.
#[derive(Clone)]
pub struct PackedCodeRhs {
    data: Vec<i64>,
    k: usize,
    n: usize,
    /// `max |B[kk][j]|` over the packed matrix, computed at pack time.
    max_abs: u64,
}

impl std::fmt::Debug for PackedCodeRhs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PackedCodeRhs[{}x{}, {} panels]",
            self.k,
            self.n,
            self.panels()
        )
    }
}

impl PackedCodeRhs {
    /// Packs a row-major `[k, n]` integer matrix.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != k * n`.
    #[must_use]
    pub fn pack(b: &[i64], k: usize, n: usize) -> Self {
        assert_eq!(b.len(), k * n, "rhs buffer does not match [{k}, {n}]");
        let panels = n.div_ceil(NR);
        let mut data = vec![0i64; panels * k * NR];
        for (p, panel) in data.chunks_exact_mut((k * NR).max(1)).enumerate() {
            let j0 = p * NR;
            let nr = NR.min(n - j0);
            for kk in 0..k {
                panel[kk * NR..kk * NR + nr].copy_from_slice(&b[kk * n + j0..kk * n + j0 + nr]);
            }
        }
        let max_abs = b.iter().map(|&v| v.unsigned_abs()).max().unwrap_or(0);
        Self {
            data,
            k,
            n,
            max_abs,
        }
    }

    /// Packs the transpose of a row-major `[n, k]` matrix without
    /// materializing it — the weight-code entry point, mirroring
    /// [`crate::gemm::PackedRhs::pack_t`].
    ///
    /// # Panics
    ///
    /// Panics if `bt.len() != n * k`.
    #[must_use]
    pub fn pack_t(bt: &[i64], n: usize, k: usize) -> Self {
        assert_eq!(bt.len(), n * k, "rhs buffer does not match [{n}, {k}]");
        let panels = n.div_ceil(NR);
        let mut data = vec![0i64; panels * k * NR];
        for (p, panel) in data.chunks_exact_mut((k * NR).max(1)).enumerate() {
            let j0 = p * NR;
            let nr = NR.min(n - j0);
            for (dj, col) in bt[j0 * k..(j0 + nr) * k].chunks_exact(k.max(1)).enumerate() {
                for (kk, &v) in col.iter().enumerate() {
                    panel[kk * NR + dj] = v;
                }
            }
        }
        let max_abs = bt.iter().map(|&v| v.unsigned_abs()).max().unwrap_or(0);
        Self {
            data,
            k,
            n,
            max_abs,
        }
    }

    /// Inner (k) dimension of the packed matrix.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Column (n) dimension of the packed matrix.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    pub(crate) fn panels(&self) -> usize {
        self.n.div_ceil(NR)
    }

    /// Raw panel storage, for the vector kernel in [`crate::simd`].
    pub(crate) fn data(&self) -> &[i64] {
        &self.data
    }

    /// Maximum operand magnitude, recorded at pack time — the rhs half
    /// of the SIMD overflow gate in [`crate::simd`].
    pub(crate) fn max_abs(&self) -> u64 {
        self.max_abs
    }
}

/// Serial i-k-j reference: `out[i][j] += a[i][kk] · b[kk][j]` over
/// `rows = out.len() / n` rows, every product widened to `i128` before
/// the add. Exact — the packed kernels must match it bit for bit.
pub fn qgemm_naive_rows(a: &[i64], k: usize, b: &[i64], n: usize, out: &mut [i128]) {
    if n == 0 {
        return;
    }
    let rows = out.len() / n;
    for i in 0..rows {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0 {
                continue; // zero-skip is sound: integer sums are exact
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += i128::from(av) * i128::from(bv);
            }
        }
    }
}

/// Blocked product of `rows = out.len() / packed.n()` lhs rows against a
/// packed integer rhs, accumulating exactly into `out` (zeroed or
/// pre-loaded by the caller). Serial; see [`qgemm_rows_par`] for the
/// row-split entry point. When the process-wide SIMD tier and the
/// operand magnitudes allow, the product runs through the widening
/// vector tile in [`crate::simd`] — exactness is unconditional either
/// way (integer sums are associative), `MERSIT_SIMD=0` forces scalar.
///
/// # Panics
///
/// Debug-panics when `a`/`out` lengths are inconsistent with `k` and the
/// packed dimensions.
pub fn qgemm_rows(a: &[i64], k: usize, packed: &PackedCodeRhs, out: &mut [i128]) {
    qgemm_rows_with_level(mersit_core::simd::simd_level(), a, k, packed, out);
}

/// [`qgemm_rows`] with an explicit SIMD tier — the differential-testing
/// entry point (`tests/qgemm_props.rs` sweeps every tier in
/// [`mersit_core::simd::available_levels`]). Tiers the host cannot run
/// must not be passed; production code uses [`qgemm_rows`].
pub fn qgemm_rows_with_level(
    level: mersit_core::simd::SimdLevel,
    a: &[i64],
    k: usize,
    packed: &PackedCodeRhs,
    out: &mut [i128],
) {
    let n = packed.n;
    if n == 0 || k == 0 {
        return;
    }
    debug_assert_eq!(packed.k, k, "packed rhs k mismatch");
    let rows = out.len() / n;
    debug_assert_eq!(a.len(), rows * k, "lhs rows mismatch");
    if crate::simd::qgemm_rows_simd(level, a, k, packed, out) {
        return;
    }
    for kb in (0..k).step_by(KC) {
        let kend = (kb + KC).min(k);
        for i in 0..rows {
            let arow = &a[i * k..(i + 1) * k];
            for p in 0..packed.panels() {
                let j0 = p * NR;
                let nr = NR.min(n - j0);
                let panel = &packed.data[p * k * NR..(p + 1) * k * NR];
                let mut acc = [0i128; NR];
                for (kk, &av) in arow.iter().enumerate().take(kend).skip(kb) {
                    if av == 0 {
                        continue;
                    }
                    let bp = &panel[kk * NR..kk * NR + NR];
                    for (accj, &bv) in acc.iter_mut().zip(bp) {
                        *accj += i128::from(av) * i128::from(bv);
                    }
                }
                let orow = &mut out[i * n + j0..i * n + j0 + nr];
                for (o, &v) in orow.iter_mut().zip(&acc) {
                    *o += v;
                }
            }
        }
    }
}

/// Row-parallel wrapper over [`qgemm_rows`]: splits the output rows
/// across the persistent worker pool. Bit-identical to the serial kernel
/// for every thread count (the split never crosses an output element and
/// integer accumulation is exact).
pub fn qgemm_rows_par(a: &[i64], k: usize, packed: &PackedCodeRhs, out: &mut [i128]) {
    let n = packed.n();
    if n == 0 {
        return;
    }
    // i128 MACs are ~4 f32 FLOPs of work per element; reuse the float
    // kernels' work heuristic with that weight.
    par::par_chunks_mut(out, n, par::min_units(8 * k * n), |i0, chunk| {
        let rows = chunk.len() / n;
        qgemm_rows(&a[i0 * k..(i0 + rows) * k], k, packed, chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn random_codes(rng: &mut Rng, len: usize, bits: u32) -> Vec<i64> {
        (0..len)
            .map(|_| {
                let m = (rng.next_u64() % (1 << bits)) as i64;
                if rng.next_u64() & 1 == 0 {
                    m
                } else {
                    -m
                }
            })
            .collect()
    }

    fn compare(m: usize, k: usize, n: usize, seed: u64) {
        let mut rng = Rng::new(seed);
        let a = random_codes(&mut rng, m * k, 20);
        let b = random_codes(&mut rng, k * n, 20);
        let mut want = vec![0i128; m * n];
        qgemm_naive_rows(&a, k, &b, n, &mut want);
        let packed = PackedCodeRhs::pack(&b, k, n);
        let mut got = vec![0i128; m * n];
        qgemm_rows(&a, k, &packed, &mut got);
        assert_eq!(got, want, "[{m},{k},{n}] blocked");
        let mut got_par = vec![0i128; m * n];
        qgemm_rows_par(&a, k, &packed, &mut got_par);
        assert_eq!(got_par, want, "[{m},{k},{n}] parallel");
    }

    #[test]
    fn blocked_matches_naive_exactly() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (4, 8, 8),
            (5, 9, 11),
            (5, KC + 1, NR + 1),
            (67, 40, 2 * NR + 5),
        ] {
            compare(m, k, n, 11 + (m * 31 + k * 7 + n) as u64);
        }
    }

    #[test]
    fn pack_t_equals_pack_of_transpose() {
        let mut rng = Rng::new(43);
        let (n, k) = (13, 21);
        let bt = random_codes(&mut rng, n * k, 30);
        let mut b = vec![0i64; k * n];
        for j in 0..n {
            for kk in 0..k {
                b[kk * n + j] = bt[j * k + kk];
            }
        }
        let from_t = PackedCodeRhs::pack_t(&bt, n, k);
        let direct = PackedCodeRhs::pack(&b, k, n);
        assert_eq!(from_t.data, direct.data);
    }

    #[test]
    fn degenerate_dims_leave_zeros() {
        let packed = PackedCodeRhs::pack(&[], 0, 5);
        let mut out = vec![0i128; 3 * 5];
        qgemm_rows(&[], 0, &packed, &mut out);
        assert!(out.iter().all(|&v| v == 0));
    }

    #[test]
    fn wide_products_do_not_overflow() {
        // 62-bit operands: each product needs up to 124 bits.
        let a = vec![(1i64 << 61) - 1; 4];
        let b = vec![-((1i64 << 61) - 3); 4];
        let mut out = vec![0i128; 1];
        qgemm_naive_rows(&a, 4, &b, 1, &mut out);
        let expect = 4 * (i128::from(a[0]) * i128::from(b[0]));
        assert_eq!(out[0], expect);
        let packed = PackedCodeRhs::pack(&b, 4, 1);
        let mut got = vec![0i128; 1];
        qgemm_rows(&a, 4, &packed, &mut got);
        assert_eq!(got[0], expect);
    }
}
