//! Parallel fan-out over contiguous chunks of a mutable slice, executed
//! on the global work-stealing pool in [`crate::pool`].
//!
//! The kernels in this crate (matmul, im2col, elementwise map) all write
//! disjoint regions of one output buffer, each region a whole number of
//! fixed-size *units* (a matrix row, an im2col row, a single element).
//! [`par_chunks_mut`] splits the buffer into chunks along unit boundaries
//! and publishes them as stealable pool jobs; the caller helps execute
//! jobs until its own dispatch completes. No external dependencies — the
//! pool is `std` threads with per-worker deques parked on a condvar.
//!
//! # Invariants
//!
//! * **Structural partitioning, bit-identical results.** The split is by
//!   *position* (whole units, contiguous, in order), never by value, and
//!   every unit's output depends only on that unit's inputs. The result
//!   is therefore bit-identical for every thread count and every steal
//!   schedule, including 1 thread — which runs inline on the caller's
//!   thread, reproducing the serial kernels exactly. No reduction ever
//!   crosses a chunk boundary, and *which* thread runs a chunk never
//!   affects what it writes.
//! * **Nested calls compose.** A dispatch issued from a pool worker (a
//!   kernel inside another kernel's chunk) pushes its jobs onto that
//!   worker's own deque and helps drain them; idle threads steal across
//!   the nesting boundary. Nothing ever falls back to inline-serial just
//!   because of *where* it was called from — only work size decides.
//! * **Environment, not API.** The pool size comes from the
//!   `MERSIT_THREADS` environment variable (default: available
//!   parallelism), latched once at the first parallel dispatch; `1`
//!   disables threading entirely. `pool::shutdown()` drops the pool and
//!   the next dispatch re-reads the variable.
//!
//! # Chunk sizing: steal granularity ≠ dispatch granularity
//!
//! Two constants govern the split, and they answer different questions:
//!
//! * `PAR_WORK_TARGET` (2¹³ ≈ 8k elementary ops) is the **steal
//!   granularity floor** — the minimum work per *chunk*, because a chunk
//!   is the unit a thief takes. A pool pop/steal costs ~0.1–1 µs against
//!   ~0.8 µs for a serial 8k-op pass on the reference container, so
//!   below this the queue traffic cannot pay for itself and the call
//!   degrades gracefully to the serial path. Callers express it per
//!   kernel via [`min_units`].
//! * `CHUNKS_PER_THREAD` (4) is the **dispatch granularity** — how
//!   many chunks to publish per requested thread, work permitting. With
//!   an exclusive pool and perfectly uniform chunks, `chunks == threads`
//!   would be optimal (zero excess queue traffic). But under a shared
//!   pool the threads are *not* exclusively ours: a concurrent sweep,
//!   batch shard, or nested kernel may hold some of them mid-dispatch,
//!   and uneven chunk runtimes leave tails. Oversubscribing ~4× keeps a
//!   margin of stealable jobs so whoever frees up first rebalances the
//!   tail, at a bounded (≤4×) increase in per-dispatch queue operations.
//!
//! So the chunk count is `min(threads × CHUNKS_PER_THREAD, units /
//! min_units_per_chunk)`, clamped to at least 1.
//!
//! # Observability
//!
//! When the `MERSIT_OBS` toggle is on (see `mersit-obs`), each dispatch
//! records a `tensor.par.dispatch` span plus `tensor.pool.dispatches` /
//! `tensor.pool.chunks` counters, each executed chunk a
//! `tensor.par.chunk` span, and the chunk sizes land in the
//! `tensor.par.chunk_units` histogram; `tensor.pool.size`, the
//! `tensor.pool.queue_depth` histogram, and the `tensor.pool.local_hits`
//! / `tensor.pool.steals` counters describe the pool itself. Thread
//! utilization for a run is `sum(chunk total_ns) / (dispatch total_ns ×
//! pool size)`. Serial (inline) calls are counted under
//! `tensor.par.calls_serial`. With the toggle off this instrumentation
//! is a single atomic load per dispatch.

use std::env;
use std::num::NonZeroUsize;
use std::slice;
use std::thread;

use crate::pool;

/// Approximate number of elementary operations worth queueing as one
/// stealable chunk; below this, pool traffic dominates. See the module
/// docs ("Chunk sizing") for how this floor interacts with
/// [`CHUNKS_PER_THREAD`].
const PAR_WORK_TARGET: usize = 1 << 13;

/// Chunks published per requested thread (work permitting): the
/// oversubscription margin that lets work-stealing rebalance tails and
/// absorb threads lost to concurrent dispatches. See the module docs.
const CHUNKS_PER_THREAD: usize = 4;

/// Minimum units per chunk so that each chunk carries roughly
/// `PAR_WORK_TARGET` (2¹³) operations, given the per-unit cost.
#[must_use]
pub fn min_units(work_per_unit: usize) -> usize {
    (PAR_WORK_TARGET / work_per_unit.max(1)).max(1)
}

/// Worker-thread count: `MERSIT_THREADS` when set to a positive integer,
/// otherwise the machine's available parallelism. `1` disables threading.
///
/// The pool latches this at its first dispatch; see [`pool_size`] for the
/// count actually in use.
#[must_use]
pub fn thread_count() -> usize {
    if let Ok(v) = env::var("MERSIT_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Number of threads the live worker pool runs dispatches on (workers +
/// dispatcher), initializing the pool if needed. This is the value
/// benchmark reports should record as "threads used".
#[must_use]
pub fn pool_size() -> usize {
    pool::size()
}

/// Splits `data` into contiguous chunks of whole `unit`-sized blocks and
/// runs `f(first_unit_index, chunk)` across the pool, publishing up to
/// [`thread_count`]` × CHUNKS_PER_THREAD` chunks (capped so each carries
/// at least `min_units_per_chunk` units).
///
/// # Panics
///
/// Panics if `unit` is zero or does not divide `data.len()`. Panics from
/// `f` propagate to the caller after the dispatch completes.
pub fn par_chunks_mut<T, F>(data: &mut [T], unit: usize, min_units_per_chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    par_chunks_mut_with(thread_count(), data, unit, min_units_per_chunk, f);
}

/// Raw base pointer of the output buffer, smuggled into the `Fn(usize)`
/// chunk closure. Sound because chunk index → slice bounds is injective
/// (disjoint ranges) and every chunk index is executed exactly once.
struct SyncPtr<T>(*mut T);
unsafe impl<T: Send> Sync for SyncPtr<T> {}

impl<T> SyncPtr<T> {
    /// Accessor method (not field access) so the closure captures the
    /// whole `Sync` wrapper rather than the bare pointer.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// [`par_chunks_mut`] with an explicit thread-count target (used by tests
/// and benchmarks to compare scaling without touching the environment).
/// The chunks still execute on the [`thread_count`]-sized pool.
///
/// # Panics
///
/// Panics if `unit` is zero or does not divide `data.len()`. Panics from
/// `f` propagate to the caller after the dispatch completes.
pub fn par_chunks_mut_with<T, F>(
    threads: usize,
    data: &mut [T],
    unit: usize,
    min_units_per_chunk: usize,
    f: F,
) where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(unit > 0, "unit size must be positive");
    assert!(
        data.len().is_multiple_of(unit),
        "buffer of {} elements is not whole units of {unit}",
        data.len()
    );
    let units = data.len() / unit;
    let by_work = units / min_units_per_chunk.max(1);
    let n_chunks = threads
        .saturating_mul(CHUNKS_PER_THREAD)
        .min(by_work)
        .max(1);
    let obs_on = mersit_obs::enabled();
    if threads <= 1 || n_chunks <= 1 {
        if obs_on {
            mersit_obs::incr("tensor.par.calls_serial");
            mersit_obs::observe("tensor.par.chunk_units", units as f64);
        }
        f(0, data);
        return;
    }
    if obs_on {
        mersit_obs::incr("tensor.par.calls_parallel");
    }
    let _dispatch = if obs_on {
        mersit_obs::span("tensor.par.dispatch")
    } else {
        mersit_obs::SpanGuard::inert()
    };
    let per = units.div_ceil(n_chunks);
    let n_chunks = units.div_ceil(per);
    let len = data.len();
    let base = SyncPtr(data.as_mut_ptr());
    let run = move |idx: usize| {
        let first = idx * per;
        let start = first * unit;
        let end = ((first + per) * unit).min(len);
        // SAFETY: chunk `idx` owns exactly `[start, end)`; ranges of
        // distinct indices are disjoint, each index runs exactly once,
        // and the dispatcher blocks until all chunks finish, so `base`
        // outlives every access.
        let chunk = unsafe { slice::from_raw_parts_mut(base.get().add(start), end - start) };
        let _chunk_span = if obs_on {
            mersit_obs::observe("tensor.par.chunk_units", (chunk.len() / unit) as f64);
            mersit_obs::span("tensor.par.chunk")
        } else {
            mersit_obs::SpanGuard::inert()
        };
        f(first, chunk);
    };
    pool::dispatch(n_chunks, &run);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_every_unit_exactly_once() {
        for threads in [1, 2, 3, 7, 16] {
            let mut data = vec![0u32; 12 * 5];
            par_chunks_mut_with(threads, &mut data, 5, 1, |first, chunk| {
                for (u, block) in chunk.chunks_mut(5).enumerate() {
                    for (j, x) in block.iter_mut().enumerate() {
                        *x += ((first + u) * 5 + j) as u32 + 1;
                    }
                }
            });
            let want: Vec<u32> = (1..=60).collect();
            assert_eq!(data, want, "threads={threads}");
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let run = |threads: usize| {
            let mut data = vec![0.0f32; 1000];
            par_chunks_mut_with(threads, &mut data, 1, 1, |first, chunk| {
                for (i, x) in chunk.iter_mut().enumerate() {
                    *x = ((first + i) as f32).sin();
                }
            });
            data
        };
        let base = run(1);
        for threads in [2, 3, 5, 13] {
            assert_eq!(run(threads), base, "threads={threads}");
        }
    }

    #[test]
    fn min_units_caps_parallelism() {
        // 10 units, but each chunk must carry at least 6 → single chunk.
        let mut data = vec![0u8; 10];
        par_chunks_mut_with(8, &mut data, 1, 6, |first, chunk| {
            // With one chunk the whole slice arrives at once.
            assert_eq!(first, 0);
            assert_eq!(chunk.len(), 10);
        });
    }

    #[test]
    fn oversubscription_caps_at_available_work() {
        // 12 units, min 1: threads=16 would target 64 chunks, but only
        // 12 units exist — every chunk still carries a whole unit.
        let mut data = vec![0u8; 12];
        let seen = std::sync::Mutex::new(Vec::new());
        par_chunks_mut_with(16, &mut data, 1, 1, |first, chunk| {
            seen.lock().unwrap().push((first, chunk.len()));
        });
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        let total: usize = seen.iter().map(|&(_, l)| l).sum();
        assert_eq!(total, 12);
        assert!(seen.iter().all(|&(_, l)| l >= 1));
    }

    #[test]
    #[should_panic(expected = "not whole units")]
    fn ragged_buffer_panics() {
        let mut data = vec![0u8; 7];
        par_chunks_mut_with(2, &mut data, 2, 1, |_, _| {});
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn pool_size_is_positive() {
        assert!(pool_size() >= 1);
    }

    #[test]
    fn min_units_scales_inversely_with_work() {
        assert_eq!(min_units(usize::MAX), 1);
        assert!(min_units(1) > min_units(1024));
    }

    #[test]
    fn empty_buffer_is_a_noop() {
        let mut data: Vec<u8> = Vec::new();
        par_chunks_mut_with(4, &mut data, 3, 1, |_, chunk| {
            assert!(chunk.is_empty());
        });
    }
}
