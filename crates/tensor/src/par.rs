//! Scoped-thread fan-out over contiguous chunks of a mutable slice.
//!
//! The kernels in this crate (matmul, im2col, elementwise map) all write
//! disjoint regions of one output buffer, each region a whole number of
//! fixed-size *units* (a matrix row, an im2col row, a single element).
//! [`par_chunks_mut`] splits the buffer into per-thread chunks along unit
//! boundaries and runs them under [`std::thread::scope`] — no external
//! dependencies, no persistent pool.
//!
//! # Invariants
//!
//! * **Structural partitioning, bit-identical results.** The split is by
//!   *position* (whole units, contiguous, in order), never by value, and
//!   every unit's output depends only on that unit's inputs. The result
//!   is therefore bit-identical for every thread count, including 1 —
//!   which runs inline on the caller's thread, reproducing the serial
//!   kernels exactly. No reduction ever crosses a chunk boundary.
//! * **Work-bounded fan-out.** The effective thread count is capped so
//!   each worker receives at least `min_units_per_thread` units (see
//!   [`min_units`]); below that, spawn overhead would dominate and the
//!   call degrades gracefully to the serial path.
//! * **Environment, not API.** The worker count comes from the
//!   `MERSIT_THREADS` environment variable (default: available
//!   parallelism); `1` disables threading entirely.
//!
//! # Observability
//!
//! When the `MERSIT_OBS` toggle is on (see `mersit-obs`), each dispatch
//! records a `tensor.par.dispatch` span, each worker chunk a
//! `tensor.par.chunk` span, and the chunk sizes land in the
//! `tensor.par.chunk_units` histogram. Thread utilization for a run is
//! `sum(chunk total_ns) / (dispatch total_ns × threads)`. Serial
//! (inline) calls are counted under `tensor.par.calls_serial`. With the
//! toggle off this instrumentation is a single atomic load per dispatch.

use std::env;
use std::num::NonZeroUsize;
use std::thread;

/// Approximate number of elementary operations worth shipping to a worker
/// thread; below this, spawn overhead dominates.
const PAR_WORK_TARGET: usize = 1 << 16;

/// Minimum units per thread so that each thread gets roughly
/// `PAR_WORK_TARGET` (2¹⁶) operations, given the per-unit cost.
#[must_use]
pub fn min_units(work_per_unit: usize) -> usize {
    (PAR_WORK_TARGET / work_per_unit.max(1)).max(1)
}

/// Worker-thread count: `MERSIT_THREADS` when set to a positive integer,
/// otherwise the machine's available parallelism. `1` disables threading.
#[must_use]
pub fn thread_count() -> usize {
    if let Ok(v) = env::var("MERSIT_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Splits `data` into contiguous chunks of whole `unit`-sized blocks and
/// runs `f(first_unit_index, chunk)` on scoped threads, using
/// [`thread_count`] workers (capped so each gets at least
/// `min_units_per_thread` units).
///
/// # Panics
///
/// Panics if `unit` is zero or does not divide `data.len()`.
pub fn par_chunks_mut<T, F>(data: &mut [T], unit: usize, min_units_per_thread: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    par_chunks_mut_with(thread_count(), data, unit, min_units_per_thread, f);
}

/// [`par_chunks_mut`] with an explicit thread count (used by tests and
/// benchmarks to compare scaling without touching the environment).
///
/// # Panics
///
/// Panics if `unit` is zero or does not divide `data.len()`.
pub fn par_chunks_mut_with<T, F>(
    threads: usize,
    data: &mut [T],
    unit: usize,
    min_units_per_thread: usize,
    f: F,
) where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(unit > 0, "unit size must be positive");
    assert!(
        data.len().is_multiple_of(unit),
        "buffer of {} elements is not whole units of {unit}",
        data.len()
    );
    let units = data.len() / unit;
    let by_work = units / min_units_per_thread.max(1);
    let threads = threads.min(by_work).max(1);
    let obs_on = mersit_obs::enabled();
    if threads <= 1 {
        if obs_on {
            mersit_obs::incr("tensor.par.calls_serial");
            mersit_obs::observe("tensor.par.chunk_units", units as f64);
        }
        f(0, data);
        return;
    }
    if obs_on {
        mersit_obs::incr("tensor.par.calls_parallel");
        mersit_obs::add("tensor.par.threads_spawned", threads as u64);
    }
    let _dispatch = if obs_on {
        mersit_obs::span("tensor.par.dispatch")
    } else {
        mersit_obs::SpanGuard::inert()
    };
    let per = units.div_ceil(threads);
    let f = &f;
    thread::scope(|s| {
        let mut rest = data;
        let mut start_unit = 0;
        while !rest.is_empty() {
            let take = per.min(rest.len() / unit) * unit;
            let (chunk, tail) = rest.split_at_mut(take);
            rest = tail;
            let first = start_unit;
            s.spawn(move || {
                let _chunk_span = if obs_on {
                    mersit_obs::observe("tensor.par.chunk_units", (chunk.len() / unit) as f64);
                    mersit_obs::span("tensor.par.chunk")
                } else {
                    mersit_obs::SpanGuard::inert()
                };
                f(first, chunk);
            });
            start_unit += take / unit;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_every_unit_exactly_once() {
        for threads in [1, 2, 3, 7, 16] {
            let mut data = vec![0u32; 12 * 5];
            par_chunks_mut_with(threads, &mut data, 5, 1, |first, chunk| {
                for (u, block) in chunk.chunks_mut(5).enumerate() {
                    for (j, x) in block.iter_mut().enumerate() {
                        *x += ((first + u) * 5 + j) as u32 + 1;
                    }
                }
            });
            let want: Vec<u32> = (1..=60).collect();
            assert_eq!(data, want, "threads={threads}");
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let run = |threads: usize| {
            let mut data = vec![0.0f32; 1000];
            par_chunks_mut_with(threads, &mut data, 1, 1, |first, chunk| {
                for (i, x) in chunk.iter_mut().enumerate() {
                    *x = ((first + i) as f32).sin();
                }
            });
            data
        };
        let base = run(1);
        for threads in [2, 3, 5, 13] {
            assert_eq!(run(threads), base, "threads={threads}");
        }
    }

    #[test]
    fn min_units_caps_parallelism() {
        // 10 units, but each thread must get at least 6 → single thread.
        let mut data = vec![0u8; 10];
        par_chunks_mut_with(8, &mut data, 1, 6, |first, chunk| {
            // With one thread the whole slice arrives at once.
            assert_eq!(first, 0);
            assert_eq!(chunk.len(), 10);
        });
    }

    #[test]
    #[should_panic(expected = "not whole units")]
    fn ragged_buffer_panics() {
        let mut data = vec![0u8; 7];
        par_chunks_mut_with(2, &mut data, 2, 1, |_, _| {});
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn min_units_scales_inversely_with_work() {
        assert_eq!(min_units(usize::MAX), 1);
        assert!(min_units(1) > min_units(1024));
    }
}
