//! Criterion benches for the matmul hot path: the naive i-k-j kernel
//! against the packed cache-blocked GEMM, single-threaded (direct kernel
//! calls, no `par` dispatch), over square and skinny shapes drawn from
//! the model zoo's real layer dims.
//!
//! The `packed` leg re-packs the rhs every iteration — that is the
//! `Tensor::matmul` cost model; the `packed_amortized` leg packs once,
//! which is the `QuantPlan` weight-panel cost model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mersit_tensor::gemm::{gemm_rows, matmul_naive_rows, PackedRhs};
use mersit_tensor::Rng;
use std::hint::black_box;

/// (label, m, k, n) — im2col rows × patch × out-channels plus the
/// classifier / logits linears at bench model sizes.
const SHAPES: [(&str, usize, usize, usize); 5] = [
    ("square_256", 256, 256, 256),
    ("vgg_conv3x3", 2400, 144, 32),
    ("mnv3_conv1x1", 1200, 24, 64),
    ("vgg_classifier", 96, 128, 64),
    ("logits_skinny", 96, 64, 10),
];

fn bench_gemm(c: &mut Criterion) {
    for (label, m, k, n) in SHAPES {
        let mut rng = Rng::new(0x6E44 ^ (m * 31 + k * 7 + n) as u64);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal() as f32).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal() as f32).collect();
        let mut g = c.benchmark_group(format!("gemm_{label}"));
        g.throughput(Throughput::Elements((2 * m * n * k) as u64));
        g.bench_function(BenchmarkId::from_parameter("naive"), |bch| {
            let mut out = vec![0.0f32; m * n];
            bch.iter(|| {
                out.fill(0.0);
                matmul_naive_rows(black_box(&a), k, black_box(&b), n, black_box(&mut out));
            });
        });
        g.bench_function(BenchmarkId::from_parameter("packed"), |bch| {
            let mut out = vec![0.0f32; m * n];
            bch.iter(|| {
                out.fill(0.0);
                let p = PackedRhs::pack(black_box(&b), k, n);
                gemm_rows(black_box(&a), k, &p, black_box(&mut out));
            });
        });
        g.bench_function(BenchmarkId::from_parameter("packed_amortized"), |bch| {
            let p = PackedRhs::pack(&b, k, n);
            let mut out = vec![0.0f32; m * n];
            bch.iter(|| {
                out.fill(0.0);
                gemm_rows(black_box(&a), k, black_box(&p), black_box(&mut out));
            });
        });
        g.finish();
    }
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
