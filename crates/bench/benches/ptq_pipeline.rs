//! Criterion benches: end-to-end PTQ pipeline throughput — tensor
//! fake-quantization and full calibrate+evaluate on a small model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mersit_core::parse_format;
use mersit_nn::models::vgg_t;
use mersit_nn::synthetic_images;
use mersit_ptq::{calibrate, evaluate_format, quantize_tensor, scale_for};
use mersit_tensor::{Rng, Tensor};
use std::hint::black_box;

fn bench_quantize_tensor(c: &mut Criterion) {
    let mut rng = Rng::new(1);
    let t = Tensor::randn(&[64 * 1024], 1.0, &mut rng);
    let mut g = c.benchmark_group("quantize_tensor_64k");
    g.throughput(Throughput::Elements(t.len() as u64));
    for name in ["INT8", "FP(8,4)", "Posit(8,1)", "MERSIT(8,2)"] {
        let fmt = parse_format(name).expect("valid");
        let s = scale_for(fmt.as_ref(), t.max_abs());
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| quantize_tensor(fmt.as_ref(), black_box(&t), s));
        });
    }
    g.finish();
}

fn bench_calibrate_and_eval(c: &mut Criterion) {
    let mut rng = Rng::new(2);
    let mut model = vgg_t(8, 10, &mut rng);
    let ds = synthetic_images(9, 64, 32, 8);
    let fmt = parse_format("MERSIT(8,2)").expect("valid");
    c.bench_function("calibrate_64_images", |b| {
        b.iter(|| calibrate(&model, black_box(&ds.calib.inputs), 16));
    });
    let cal = calibrate(&model, &ds.calib.inputs, 16);
    c.bench_function("quantized_inference_32_images", |b| {
        b.iter(|| {
            evaluate_format(
                &mut model,
                fmt.as_ref(),
                &cal,
                black_box(&ds.test.inputs),
                16,
            )
        });
    });
}

criterion_group!(benches, bench_quantize_tensor, bench_calibrate_and_eval);
criterion_main!(benches);
