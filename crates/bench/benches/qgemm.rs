//! Criterion benches for the bit-true integer GEMM hot path: the serial
//! i-k-j reference against the packed i128-accumulating kernel, forced
//! to the scalar tier and at the host's detected SIMD tier, over the
//! same model-zoo shapes as the f32 `gemm` bench. Code magnitudes are
//! capped at 2^22 — the fixed-point range real Table 2 tables produce —
//! so the vector tile's 31-bit operand gate is satisfied and the SIMD
//! leg actually exercises the widening tile.
//!
//! The `packed_*` legs re-pack the rhs every iteration (the
//! `Tensor`-style cost model); the `amortized_simd` leg packs once,
//! which is the `QuantPlan` weight-panel cost model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mersit_tensor::qgemm::{qgemm_naive_rows, qgemm_rows_with_level, PackedCodeRhs};
use mersit_tensor::simd::{detected_level, SimdLevel};
use mersit_tensor::Rng;
use std::hint::black_box;

/// (label, m, k, n) — im2col rows × patch × out-channels plus the
/// classifier / logits linears at bench model sizes.
const SHAPES: [(&str, usize, usize, usize); 5] = [
    ("square_256", 256, 256, 256),
    ("vgg_conv3x3", 2400, 144, 32),
    ("mnv3_conv1x1", 1200, 24, 64),
    ("vgg_classifier", 96, 128, 64),
    ("logits_skinny", 96, 64, 10),
];

/// Signed codes spanning the fixed-point range real format tables
/// produce (~2^22 for MERSIT(8,2)).
fn random_codes(rng: &mut Rng, len: usize) -> Vec<i64> {
    (0..len)
        .map(|_| {
            let mag = (rng.next_u64() % (1u64 << 22)) as i64;
            if rng.next_u64() & 1 == 0 {
                mag
            } else {
                -mag
            }
        })
        .collect()
}

fn bench_qgemm(c: &mut Criterion) {
    let simd = detected_level();
    for (label, m, k, n) in SHAPES {
        let mut rng = Rng::new(0x51E0 ^ (m * 31 + k * 7 + n) as u64);
        let a = random_codes(&mut rng, m * k);
        let b = random_codes(&mut rng, k * n);
        let mut g = c.benchmark_group(format!("qgemm_{label}"));
        g.throughput(Throughput::Elements((m * n * k) as u64));
        g.bench_function(BenchmarkId::from_parameter("naive"), |bch| {
            let mut out = vec![0i128; m * n];
            bch.iter(|| {
                out.fill(0);
                qgemm_naive_rows(black_box(&a), k, black_box(&b), n, black_box(&mut out));
            });
        });
        g.bench_function(BenchmarkId::from_parameter("packed_scalar"), |bch| {
            let mut out = vec![0i128; m * n];
            bch.iter(|| {
                out.fill(0);
                let p = PackedCodeRhs::pack(black_box(&b), k, n);
                qgemm_rows_with_level(SimdLevel::Scalar, black_box(&a), k, &p, black_box(&mut out));
            });
        });
        g.bench_function(BenchmarkId::from_parameter("packed_simd"), |bch| {
            let mut out = vec![0i128; m * n];
            bch.iter(|| {
                out.fill(0);
                let p = PackedCodeRhs::pack(black_box(&b), k, n);
                qgemm_rows_with_level(simd, black_box(&a), k, &p, black_box(&mut out));
            });
        });
        g.bench_function(BenchmarkId::from_parameter("amortized_simd"), |bch| {
            let p = PackedCodeRhs::pack(&b, k, n);
            let mut out = vec![0i128; m * n];
            bch.iter(|| {
                out.fill(0);
                qgemm_rows_with_level(simd, black_box(&a), k, black_box(&p), black_box(&mut out));
            });
        });
        g.finish();
    }
}

criterion_group!(benches, bench_qgemm);
criterion_main!(benches);
