//! Criterion benches: software encode/decode throughput of each 8-bit
//! format (the cost of the emulation layer itself).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mersit_core::table2_formats;
use std::hint::black_box;

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("decode_all_codes");
    for fmt in table2_formats() {
        g.bench_with_input(BenchmarkId::from_parameter(fmt.name()), &fmt, |b, fmt| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for code in 0..256u16 {
                    let v = fmt.decode(black_box(code));
                    if v.is_finite() {
                        acc += v;
                    }
                }
                acc
            });
        });
    }
    g.finish();
}

fn bench_encode(c: &mut Criterion) {
    // Deterministic pseudo-random input batch.
    let values: Vec<f64> = (0..1024)
        .map(|i| {
            let x = f64::from(i % 97) / 23.0 - 2.0;
            x * x * x // spread across magnitudes, both signs
        })
        .collect();
    let mut g = c.benchmark_group("encode_1k_values");
    for fmt in table2_formats() {
        g.bench_with_input(BenchmarkId::from_parameter(fmt.name()), &fmt, |b, fmt| {
            b.iter(|| {
                let mut acc = 0u32;
                for &v in &values {
                    acc = acc.wrapping_add(u32::from(fmt.encode(black_box(v))));
                }
                acc
            });
        });
    }
    g.finish();
}

fn bench_quantize_round_trip(c: &mut Criterion) {
    let values: Vec<f64> = (0..1024).map(|i| f64::from(i) / 100.0 - 5.0).collect();
    let mut g = c.benchmark_group("quantize_round_trip_1k");
    for name in ["FP(8,4)", "Posit(8,1)", "MERSIT(8,2)"] {
        let fmt = mersit_core::parse_format(name).expect("valid");
        g.bench_with_input(BenchmarkId::from_parameter(name), &fmt, |b, fmt| {
            b.iter(|| {
                let mut acc = 0.0;
                for &v in &values {
                    acc += fmt.quantize(black_box(v));
                }
                acc
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_decode,
    bench_encode,
    bench_quantize_round_trip
);
criterion_main!(benches);
