//! Criterion benches for the batched quantization engine: scalar
//! `Format::quantize` loop vs the `QuantLut` codec vs the threaded
//! slice path, on PTQ-sized activation buffers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mersit_core::{quantize_slice_scalar, table2_formats, QuantLut};
use mersit_tensor::par;
use std::hint::black_box;

const N: usize = 1 << 18; // 256k elements per iteration

/// Deterministic Gaussian-ish activation buffer (sum of uniforms).
fn workload(n: usize) -> Vec<f32> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        (state >> 33) as f32 / f32::from_bits(0x4f00_0000) // [0, 1)
    };
    (0..n)
        .map(|_| (next() + next() + next() + next()) * 2.0 - 4.0)
        .collect()
}

fn bench_quantize_slice(c: &mut Criterion) {
    let src = workload(N);
    let mut g = c.benchmark_group("quantize_slice_256k");
    g.throughput(Throughput::Elements(N as u64));
    for fmt in table2_formats() {
        let scale = 0.037; // typical activation scale, exercises ties
        let spec = fmt.quant_spec();
        g.bench_with_input(BenchmarkId::new("scalar", fmt.name()), &fmt, |b, fmt| {
            let mut buf = src.clone();
            b.iter(|| {
                buf.copy_from_slice(&src);
                quantize_slice_scalar(fmt.as_ref(), black_box(&mut buf), scale);
            });
        });
        g.bench_with_input(BenchmarkId::new("lut", fmt.name()), &fmt, |b, _| {
            let lut = QuantLut::build(&spec, scale).expect("supported scale");
            let mut buf = src.clone();
            b.iter(|| {
                buf.copy_from_slice(&src);
                lut.apply(black_box(&mut buf));
            });
        });
        g.bench_with_input(BenchmarkId::new("lut_threads", fmt.name()), &fmt, |b, _| {
            let lut = QuantLut::build(&spec, scale).expect("supported scale");
            let mut buf = src.clone();
            b.iter(|| {
                buf.copy_from_slice(&src);
                par::par_chunks_mut(black_box(&mut buf), 1, par::min_units(8), |_, chunk| {
                    lut.apply(chunk);
                });
            });
        });
    }
    g.finish();
}

fn bench_lut_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("lut_build");
    for fmt in table2_formats() {
        let spec = fmt.quant_spec();
        g.bench_with_input(BenchmarkId::from_parameter(fmt.name()), &fmt, |b, _| {
            b.iter(|| QuantLut::build(black_box(&spec), black_box(0.037)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_quantize_slice, bench_lut_build);
criterion_main!(benches);
