//! Criterion benches: gate-level simulation throughput of the synthesized
//! decoders and MAC units (cycles per second of the EDA substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mersit_hw::{decoder_for, standalone_decoder, MacUnit};
use mersit_netlist::Simulator;
use std::hint::black_box;

const HW_FORMATS: [&str; 3] = ["FP(8,4)", "Posit(8,1)", "MERSIT(8,2)"];

fn bench_decoder_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("decoder_gate_sim_256codes");
    for name in HW_FORMATS {
        let dec = decoder_for(name).expect("hardware format");
        let (nl, code, _) = standalone_decoder(dec.as_ref());
        g.throughput(Throughput::Elements(256));
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut sim = Simulator::new(&nl);
            b.iter(|| {
                for cv in 0..256u64 {
                    sim.set(&code, black_box(cv));
                    sim.step();
                }
                sim.peek_output("sig")
            });
        });
    }
    g.finish();
}

fn bench_mac_clocking(c: &mut Criterion) {
    let mut g = c.benchmark_group("mac_gate_sim_256macs");
    for name in HW_FORMATS {
        let dec = decoder_for(name).expect("hardware format");
        let mac = MacUnit::build(dec.as_ref());
        g.throughput(Throughput::Elements(256));
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut sim = Simulator::new(&mac.netlist);
            sim.reset();
            b.iter(|| {
                for i in 0..256u64 {
                    sim.set(&mac.clear, u64::from(i == 0));
                    sim.set(&mac.w_code, black_box(i * 37 % 256));
                    sim.set(&mac.a_code, black_box(i * 91 % 256));
                    sim.clock();
                }
                sim.get_signed(&mac.acc)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_decoder_sim, bench_mac_clocking);
criterion_main!(benches);
