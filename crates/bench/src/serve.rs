//! Serving throughput/latency bench (the `serve_bench` binary's engine
//! room): drives a [`mersit_serve::Server`] over the model zoo with
//! closed-loop (N concurrent clients, each waiting for its response) and
//! open-loop (paced arrivals at a target rate) load, and writes
//! requests/sec plus p50/p95/p99 latency per
//! (format × executor × offered-load) to `BENCH_serve.json`.
//!
//! Accounting is conservation-based: every offered request ends as
//! exactly one of completed / rejected / failed, and `unanswered` (the
//! remainder) must be zero — CI asserts this on the quick run.

use mersit_nn::models::{mobilenet_v3_t, vgg_t};
use mersit_ptq::{calibrate, Executor};
use mersit_serve::{Request, ServeConfig, Server};
use mersit_tensor::{par, Rng, Tensor};
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One (model × format × executor × mode × offered-load) measurement.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// Model served.
    pub model: String,
    /// Format name, or `"fp32"` for the unquantized reference path.
    pub format: String,
    /// Executor name (`"float"` / `"bittrue"`).
    pub executor: String,
    /// `"closed"` (concurrent blocking clients) or `"open"` (paced
    /// arrivals).
    pub mode: String,
    /// Offered load: client count (closed) or target requests/sec (open).
    pub offered: usize,
    /// Requests offered in total.
    pub requests: usize,
    /// Requests answered with a prediction.
    pub completed: usize,
    /// Requests rejected at admission (queue full).
    pub rejected: usize,
    /// Requests answered with an error.
    pub failed: usize,
    /// Offered requests not accounted for above — must be 0.
    pub unanswered: usize,
    /// Completed requests per second of wall-clock.
    pub reqs_per_sec: f64,
    /// Median admission-to-response latency, µs.
    pub p50_us: u64,
    /// 95th-percentile latency, µs.
    pub p95_us: u64,
    /// 99th-percentile latency, µs.
    pub p99_us: u64,
    /// Mean coalesced-batch size over completed requests.
    pub mean_batch: f64,
}

/// The whole bench: config echo plus one row per measurement.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// Pool size used (workers + dispatcher).
    pub threads: usize,
    /// SIMD tier the kernels ran at (`MERSIT_SIMD` clamped to the host).
    pub simd_isa: String,
    /// Whether this was the CI quick grid.
    pub quick: bool,
    /// Server flush threshold in effect.
    pub max_batch: usize,
    /// Server latency budget in effect, µs.
    pub max_wait_us: u64,
    /// Server admission depth in effect.
    pub queue_depth: usize,
    /// All measurements.
    pub runs: Vec<ServeRun>,
}

/// What one load pass observed.
struct PassResult {
    latencies_us: Vec<u64>,
    batch_sizes: Vec<usize>,
    rejected: usize,
    failed: usize,
    wall: Duration,
}

/// The (format, executor) grid; `None` format = FP32 reference forward.
fn combos(quick: bool) -> Vec<(Option<&'static str>, Executor)> {
    if quick {
        vec![
            (None, Executor::Float),
            (Some("MERSIT(8,2)"), Executor::Float),
            (Some("MERSIT(8,2)"), Executor::BitTrue),
        ]
    } else {
        vec![
            (None, Executor::Float),
            (Some("MERSIT(8,2)"), Executor::Float),
            (Some("MERSIT(8,2)"), Executor::BitTrue),
            (Some("INT8"), Executor::Float),
            (Some("Posit(8,1)"), Executor::BitTrue),
        ]
    }
}

fn make_request(model: &str, fmt: Option<&str>, executor: Executor, sample: Tensor) -> Request {
    let req = Request::new(model, sample);
    match fmt {
        Some(f) => req.format(f).executor(executor),
        None => req,
    }
}

/// Closed loop: `clients` threads, each blocking on its own requests —
/// offered concurrency is the load knob, arrival rate is whatever the
/// server sustains.
fn closed_loop(
    server: &Server,
    model: &str,
    fmt: Option<&str>,
    executor: Executor,
    samples: &[Tensor],
    clients: usize,
    per_client: usize,
) -> PassResult {
    let agg = Mutex::new((Vec::new(), Vec::new(), 0usize, 0usize));
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let agg = &agg;
            s.spawn(move || {
                let mut lat = Vec::with_capacity(per_client);
                let mut bat = Vec::with_capacity(per_client);
                let mut rejected = 0usize;
                let mut failed = 0usize;
                for r in 0..per_client {
                    let sample = samples[(c * per_client + r) % samples.len()].clone();
                    match server.infer(make_request(model, fmt, executor, sample)) {
                        Ok(resp) => {
                            lat.push(resp.total_us);
                            bat.push(resp.batch_size);
                        }
                        Err(mersit_serve::ServeError::QueueFull { .. }) => rejected += 1,
                        Err(_) => failed += 1,
                    }
                }
                let mut g = agg.lock().expect("aggregate");
                g.0.extend(lat);
                g.1.extend(bat);
                g.2 += rejected;
                g.3 += failed;
            });
        }
    });
    let wall = t0.elapsed();
    let (latencies_us, batch_sizes, rejected, failed) = agg.into_inner().expect("aggregate");
    PassResult {
        latencies_us,
        batch_sizes,
        rejected,
        failed,
        wall,
    }
}

/// Open loop: one pacer submits at `rate` requests/sec without waiting,
/// then all tickets are drained — offered arrival rate is the load knob,
/// queueing shows up as latency (or, past the depth, as rejections).
fn open_loop(
    server: &Server,
    model: &str,
    fmt: Option<&str>,
    executor: Executor,
    samples: &[Tensor],
    rate: usize,
    total: usize,
) -> PassResult {
    let interval = Duration::from_secs_f64(1.0 / rate.max(1) as f64);
    let mut tickets = Vec::with_capacity(total);
    let mut rejected = 0usize;
    let t0 = Instant::now();
    for r in 0..total {
        let due = t0 + interval * u32::try_from(r).expect("request count fits u32");
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let sample = samples[r % samples.len()].clone();
        match server.submit(make_request(model, fmt, executor, sample)) {
            Ok(t) => tickets.push(t),
            Err(mersit_serve::ServeError::QueueFull { .. }) => rejected += 1,
            Err(_) => rejected += 1,
        }
    }
    let mut latencies_us = Vec::with_capacity(tickets.len());
    let mut batch_sizes = Vec::with_capacity(tickets.len());
    let mut failed = 0usize;
    for t in tickets {
        match t.wait() {
            Ok(resp) => {
                latencies_us.push(resp.total_us);
                batch_sizes.push(resp.batch_size);
            }
            Err(_) => failed += 1,
        }
    }
    PassResult {
        latencies_us,
        batch_sizes,
        rejected,
        failed,
        wall: t0.elapsed(),
    }
}

/// Percentile over a sorted latency vector (nearest-rank on the sorted
/// order; 0 for an empty pass).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn finish_run(
    model: &str,
    fmt: Option<&str>,
    executor: Executor,
    mode: &str,
    offered: usize,
    requests: usize,
    mut pass: PassResult,
) -> ServeRun {
    pass.latencies_us.sort_unstable();
    let completed = pass.latencies_us.len();
    let mean_batch = if completed == 0 {
        0.0
    } else {
        pass.batch_sizes.iter().sum::<usize>() as f64 / completed as f64
    };
    let run = ServeRun {
        model: model.to_owned(),
        format: fmt.unwrap_or("fp32").to_owned(),
        executor: executor.to_string(),
        mode: mode.to_owned(),
        offered,
        requests,
        completed,
        rejected: pass.rejected,
        failed: pass.failed,
        unanswered: requests - completed - pass.rejected - pass.failed,
        reqs_per_sec: completed as f64 / pass.wall.as_secs_f64().max(1e-9),
        p50_us: percentile(&pass.latencies_us, 0.50),
        p95_us: percentile(&pass.latencies_us, 0.95),
        p99_us: percentile(&pass.latencies_us, 0.99),
        mean_batch,
    };
    println!(
        "{:<16} {:<12} {:<8} {:<6} @{:<5} {:>7.1} req/s  p50 {:>7}us p95 {:>7}us p99 {:>7}us  batch {:.2}  ({} ok / {} rej / {} fail)",
        run.model,
        run.format,
        run.executor,
        run.mode,
        run.offered,
        run.reqs_per_sec,
        run.p50_us,
        run.p95_us,
        run.p99_us,
        run.mean_batch,
        run.completed,
        run.rejected,
        run.failed
    );
    run
}

/// Runs the full grid: per model, per (format × executor) combo, a
/// closed-loop pass at each client count, then an open-loop pass paced
/// at roughly half the best closed-loop rate (so the open pass measures
/// batching under head-room, not a saturated queue).
///
/// # Panics
///
/// Panics if any pass leaves requests unanswered — the server's
/// admission-conservation invariant would be broken.
#[must_use]
pub fn run_serve_bench(quick: bool) -> ServeBenchReport {
    let _span = mersit_obs::span("bench.serve");
    println!(
        "serve_bench: {} threads, simd {}",
        par::pool_size(),
        mersit_core::simd_level()
    );
    let (hw, sample_pool, per_client, open_total) = if quick {
        (8usize, 8usize, 12usize, 24usize)
    } else {
        (10, 12, 32, 64)
    };
    let client_counts: &[usize] = if quick { &[1, 2] } else { &[1, 4] };
    let cfg = ServeConfig::from_env();
    let report_cfg = cfg.clone();
    let mut rng = Rng::new(0x5E4E);
    let models = if quick {
        vec![vgg_t(hw, 10, &mut rng)]
    } else {
        vec![vgg_t(hw, 10, &mut rng), mobilenet_v3_t(hw, 10, &mut rng)]
    };
    let mut runs = Vec::new();
    for model in models {
        let name = model.name.clone();
        let calib = Tensor::randn(&[16, 3, hw, hw], 1.0, &mut rng);
        let cal = calibrate(&model, &calib, 8);
        let samples: Vec<Tensor> = (0..sample_pool)
            .map(|_| Tensor::randn(&[3, hw, hw], 1.0, &mut rng))
            .collect();
        let server = Server::start(vec![(model, cal)], cfg.clone());
        for (fmt, executor) in combos(quick) {
            let mut best_rate = 0.0f64;
            for &clients in client_counts {
                let requests = clients * per_client;
                let pass =
                    closed_loop(&server, &name, fmt, executor, &samples, clients, per_client);
                let run = finish_run(&name, fmt, executor, "closed", clients, requests, pass);
                best_rate = best_rate.max(run.reqs_per_sec);
                assert_eq!(run.unanswered, 0, "closed loop dropped requests");
                runs.push(run);
            }
            let rate = (best_rate * 0.5).max(2.0) as usize;
            let pass = open_loop(&server, &name, fmt, executor, &samples, rate, open_total);
            let run = finish_run(&name, fmt, executor, "open", rate, open_total, pass);
            assert_eq!(run.unanswered, 0, "open loop dropped requests");
            runs.push(run);
        }
        let stats = server.stats();
        println!(
            "{name}: {} submitted, {} completed, {} rejected, {} plans cached",
            stats.submitted, stats.completed, stats.rejected, stats.cached_plans
        );
    }
    ServeBenchReport {
        threads: par::pool_size(),
        simd_isa: mersit_core::simd_level().to_string(),
        quick,
        max_batch: report_cfg.max_batch,
        max_wait_us: report_cfg.max_wait_us,
        queue_depth: report_cfg.queue_depth,
        runs,
    }
}

/// Serializes a report to `BENCH_serve.json`.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn write_serve_json(report: &ServeBenchReport) {
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"threads\": {},", report.threads);
    let _ = writeln!(json, "  \"simd_isa\": \"{}\",", report.simd_isa);
    let _ = writeln!(json, "  \"quick\": {},", report.quick);
    let _ = writeln!(json, "  \"max_batch\": {},", report.max_batch);
    let _ = writeln!(json, "  \"max_wait_us\": {},", report.max_wait_us);
    let _ = writeln!(json, "  \"queue_depth\": {},", report.queue_depth);
    json.push_str("  \"runs\": [\n");
    for (i, r) in report.runs.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"model\": \"{}\", \"format\": \"{}\", \"executor\": \"{}\", \
             \"mode\": \"{}\", \"offered\": {}, \"requests\": {}, \"completed\": {}, \
             \"rejected\": {}, \"failed\": {}, \"unanswered\": {}, \
             \"reqs_per_sec\": {:.2}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \
             \"mean_batch\": {:.2}}}",
            r.model,
            r.format,
            r.executor,
            r.mode,
            r.offered,
            r.requests,
            r.completed,
            r.rejected,
            r.failed,
            r.unanswered,
            r.reqs_per_sec,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            r.mean_batch
        );
        json.push_str(if i + 1 < report.runs.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
