//! Serving throughput/latency bench (the `serve_bench` binary's engine
//! room): drives a [`mersit_serve::Server`] over the model zoo with
//! closed-loop (N concurrent clients, each waiting for its response) and
//! open-loop (paced arrivals at a target rate) load, and writes
//! requests/sec plus p50/p95/p99 latency per
//! (format × executor × offered-load) to `BENCH_serve.json`.
//!
//! Accounting is conservation-based: every offered request ends as
//! exactly one of completed / rejected / failed, and `unanswered` (the
//! remainder) must be zero — CI asserts this on the quick run.

use mersit_nn::models::{mobilenet_v3_t, vgg_t};
use mersit_ptq::{calibrate, Executor};
use mersit_serve::{wire, NetConfig, Request, ServeConfig, Server};
use mersit_tensor::{par, Rng, Tensor};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One (model × format × executor × mode × offered-load) measurement.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// Model served.
    pub model: String,
    /// Format name, or `"fp32"` for the unquantized reference path.
    pub format: String,
    /// Executor name (`"float"` / `"bittrue"`).
    pub executor: String,
    /// `"closed"` (concurrent blocking clients) or `"open"` (paced
    /// arrivals).
    pub mode: String,
    /// Offered load: client count (closed) or target requests/sec (open).
    pub offered: usize,
    /// Requests offered in total.
    pub requests: usize,
    /// Requests answered with a prediction.
    pub completed: usize,
    /// Requests rejected at admission (queue full).
    pub rejected: usize,
    /// Requests answered with an error.
    pub failed: usize,
    /// Offered requests not accounted for above — must be 0.
    pub unanswered: usize,
    /// Completed requests per second of wall-clock.
    pub reqs_per_sec: f64,
    /// Median admission-to-response latency, µs.
    pub p50_us: u64,
    /// 95th-percentile latency, µs.
    pub p95_us: u64,
    /// 99th-percentile latency, µs.
    pub p99_us: u64,
    /// Mean coalesced-batch size over completed requests.
    pub mean_batch: f64,
}

/// One socket-mode measurement: N pipelined connections driving the
/// wire protocol against a `mersit_serve::net` event loop.
#[derive(Debug, Clone)]
pub struct NetRun {
    /// Model served.
    pub model: String,
    /// Format name, or `"fp32"` for the unquantized reference path.
    pub format: String,
    /// Executor name (`"float"` / `"bittrue"`).
    pub executor: String,
    /// Concurrent TCP connections held open for the whole pass.
    pub connections: usize,
    /// Requests kept in flight per connection (pipelining depth).
    pub pipeline: usize,
    /// Request frames written in total.
    pub requests: usize,
    /// Response frames received.
    pub completed: usize,
    /// Error frames received — must be 0.
    pub wire_errors: usize,
    /// Connections that died on an I/O error — must be 0.
    pub failed: usize,
    /// Requests with neither a response nor an error — must be 0.
    pub unanswered: usize,
    /// Completed requests per second of wall-clock.
    pub reqs_per_sec: f64,
    /// Median client-measured round-trip latency, µs.
    pub p50_us: u64,
    /// 95th-percentile round-trip latency, µs.
    pub p95_us: u64,
    /// 99th-percentile round-trip latency, µs.
    pub p99_us: u64,
}

/// The socket-mode section of the report: where the load went and what
/// each (format × executor × connection-count) pass observed.
#[derive(Debug, Clone)]
pub struct NetSection {
    /// Address the load generator connected to.
    pub addr: String,
    /// True when `serve_bench` hosted the event loop itself (default
    /// mode); false when driving an external `mersit-served` (`--net`).
    pub self_hosted: bool,
    /// All socket-mode measurements.
    pub runs: Vec<NetRun>,
}

/// The whole bench: config echo plus one row per measurement.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// Pool size used (workers + dispatcher).
    pub threads: usize,
    /// SIMD tier the kernels ran at (`MERSIT_SIMD` clamped to the host).
    pub simd_isa: String,
    /// Whether this was the CI quick grid.
    pub quick: bool,
    /// Server flush threshold in effect.
    pub max_batch: usize,
    /// Server latency budget in effect, µs.
    pub max_wait_us: u64,
    /// Server admission depth in effect.
    pub queue_depth: usize,
    /// All measurements.
    pub runs: Vec<ServeRun>,
    /// Socket-mode measurements over the wire protocol.
    pub net: NetSection,
}

/// What one load pass observed.
struct PassResult {
    latencies_us: Vec<u64>,
    batch_sizes: Vec<usize>,
    rejected: usize,
    failed: usize,
    wall: Duration,
}

/// The (format, executor) grid; `None` format = FP32 reference forward.
fn combos(quick: bool) -> Vec<(Option<&'static str>, Executor)> {
    if quick {
        vec![
            (None, Executor::Float),
            (Some("MERSIT(8,2)"), Executor::Float),
            (Some("MERSIT(8,2)"), Executor::BitTrue),
        ]
    } else {
        vec![
            (None, Executor::Float),
            (Some("MERSIT(8,2)"), Executor::Float),
            (Some("MERSIT(8,2)"), Executor::BitTrue),
            (Some("INT8"), Executor::Float),
            (Some("Posit(8,1)"), Executor::BitTrue),
        ]
    }
}

fn make_request(model: &str, fmt: Option<&str>, executor: Executor, sample: Tensor) -> Request {
    let req = Request::new(model, sample);
    match fmt {
        Some(f) => req.format(f).executor(executor),
        None => req,
    }
}

/// Closed loop: `clients` threads, each blocking on its own requests —
/// offered concurrency is the load knob, arrival rate is whatever the
/// server sustains.
fn closed_loop(
    server: &Server,
    model: &str,
    fmt: Option<&str>,
    executor: Executor,
    samples: &[Tensor],
    clients: usize,
    per_client: usize,
) -> PassResult {
    let agg = Mutex::new((Vec::new(), Vec::new(), 0usize, 0usize));
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let agg = &agg;
            s.spawn(move || {
                let mut lat = Vec::with_capacity(per_client);
                let mut bat = Vec::with_capacity(per_client);
                let mut rejected = 0usize;
                let mut failed = 0usize;
                for r in 0..per_client {
                    let sample = samples[(c * per_client + r) % samples.len()].clone();
                    match server.infer(make_request(model, fmt, executor, sample)) {
                        Ok(resp) => {
                            lat.push(resp.total_us);
                            bat.push(resp.batch_size);
                        }
                        Err(mersit_serve::ServeError::QueueFull { .. }) => rejected += 1,
                        Err(_) => failed += 1,
                    }
                }
                let mut g = agg.lock().expect("aggregate");
                g.0.extend(lat);
                g.1.extend(bat);
                g.2 += rejected;
                g.3 += failed;
            });
        }
    });
    let wall = t0.elapsed();
    let (latencies_us, batch_sizes, rejected, failed) = agg.into_inner().expect("aggregate");
    PassResult {
        latencies_us,
        batch_sizes,
        rejected,
        failed,
        wall,
    }
}

/// Open loop: one pacer submits at `rate` requests/sec without waiting,
/// then all tickets are drained — offered arrival rate is the load knob,
/// queueing shows up as latency (or, past the depth, as rejections).
fn open_loop(
    server: &Server,
    model: &str,
    fmt: Option<&str>,
    executor: Executor,
    samples: &[Tensor],
    rate: usize,
    total: usize,
) -> PassResult {
    let interval = Duration::from_secs_f64(1.0 / rate.max(1) as f64);
    let mut tickets = Vec::with_capacity(total);
    let mut rejected = 0usize;
    let t0 = Instant::now();
    for r in 0..total {
        let due = t0 + interval * u32::try_from(r).expect("request count fits u32");
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let sample = samples[r % samples.len()].clone();
        match server.submit(make_request(model, fmt, executor, sample)) {
            Ok(t) => tickets.push(t),
            Err(mersit_serve::ServeError::QueueFull { .. }) => rejected += 1,
            Err(_) => rejected += 1,
        }
    }
    let mut latencies_us = Vec::with_capacity(tickets.len());
    let mut batch_sizes = Vec::with_capacity(tickets.len());
    let mut failed = 0usize;
    for t in tickets {
        match t.wait() {
            Ok(resp) => {
                latencies_us.push(resp.total_us);
                batch_sizes.push(resp.batch_size);
            }
            Err(_) => failed += 1,
        }
    }
    PassResult {
        latencies_us,
        batch_sizes,
        rejected,
        failed,
        wall: t0.elapsed(),
    }
}

/// Percentile over a sorted latency vector (nearest-rank on the sorted
/// order; 0 for an empty pass).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn finish_run(
    model: &str,
    fmt: Option<&str>,
    executor: Executor,
    mode: &str,
    offered: usize,
    requests: usize,
    mut pass: PassResult,
) -> ServeRun {
    pass.latencies_us.sort_unstable();
    let completed = pass.latencies_us.len();
    let mean_batch = if completed == 0 {
        0.0
    } else {
        pass.batch_sizes.iter().sum::<usize>() as f64 / completed as f64
    };
    let run = ServeRun {
        model: model.to_owned(),
        format: fmt.unwrap_or("fp32").to_owned(),
        executor: executor.to_string(),
        mode: mode.to_owned(),
        offered,
        requests,
        completed,
        rejected: pass.rejected,
        failed: pass.failed,
        unanswered: requests - completed - pass.rejected - pass.failed,
        reqs_per_sec: completed as f64 / pass.wall.as_secs_f64().max(1e-9),
        p50_us: percentile(&pass.latencies_us, 0.50),
        p95_us: percentile(&pass.latencies_us, 0.95),
        p99_us: percentile(&pass.latencies_us, 0.99),
        mean_batch,
    };
    println!(
        "{:<16} {:<12} {:<8} {:<6} @{:<5} {:>7.1} req/s  p50 {:>7}us p95 {:>7}us p99 {:>7}us  batch {:.2}  ({} ok / {} rej / {} fail)",
        run.model,
        run.format,
        run.executor,
        run.mode,
        run.offered,
        run.reqs_per_sec,
        run.p50_us,
        run.p95_us,
        run.p99_us,
        run.mean_batch,
        run.completed,
        run.rejected,
        run.failed
    );
    run
}

/// What one pipelined socket connection observed.
struct ConnResult {
    latencies_us: Vec<u64>,
    sent: usize,
    wire_errors: usize,
    io_error: bool,
}

/// Drives one blocking client connection: keep `pipeline` requests in
/// flight, match responses to requests by id, record round-trip times.
/// The *server* end is non-blocking; a bench client can afford to block.
#[allow(clippy::too_many_arguments)]
fn drive_connection(
    addr: &str,
    model: &str,
    fmt: Option<&str>,
    executor: Executor,
    samples: &[Tensor],
    conn_idx: usize,
    per_conn: usize,
    pipeline: usize,
) -> ConnResult {
    let mut out = ConnResult {
        latencies_us: Vec::with_capacity(per_conn),
        sent: 0,
        wire_errors: 0,
        io_error: false,
    };
    let Ok(mut stream) = TcpStream::connect(addr) else {
        out.io_error = true;
        return out;
    };
    let _ = stream.set_nodelay(true);
    // A lost response must fail the pass loudly, not hang it.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let mut in_flight: HashMap<u64, Instant> = HashMap::new();
    let send_one = |stream: &mut TcpStream,
                    out: &mut ConnResult,
                    in_flight: &mut HashMap<u64, Instant>|
     -> bool {
        let id = (conn_idx as u64) << 32 | out.sent as u64;
        let sample = &samples[(conn_idx + out.sent) % samples.len()];
        let req = wire::WireRequest {
            id,
            model: model.to_owned(),
            assignment: fmt.map(str::to_owned),
            executor: fmt.map(|_| executor),
            shape: sample.shape().to_vec(),
            data: sample.data().to_vec(),
        };
        let mut frame = Vec::new();
        wire::encode_request(&req, &mut frame);
        in_flight.insert(id, Instant::now());
        out.sent += 1;
        stream.write_all(&frame).is_ok()
    };
    for _ in 0..pipeline.min(per_conn) {
        if !send_one(&mut stream, &mut out, &mut in_flight) {
            out.io_error = true;
            return out;
        }
    }
    let mut buf = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    while !in_flight.is_empty() {
        match wire::decode_frame(&buf, 1 << 24) {
            Ok(Some((frame, used))) => {
                buf.drain(..used);
                let id = match &frame {
                    wire::Frame::Response(r) => Some(r.id),
                    wire::Frame::Error(e) => {
                        out.wire_errors += 1;
                        Some(e.id)
                    }
                    _ => None,
                };
                if let Some(started) = id.and_then(|id| in_flight.remove(&id)) {
                    if matches!(frame, wire::Frame::Response(_)) {
                        let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                        out.latencies_us.push(us);
                    }
                    if out.sent < per_conn && !send_one(&mut stream, &mut out, &mut in_flight) {
                        out.io_error = true;
                        return out;
                    }
                }
            }
            Ok(None) => match stream.read(&mut chunk) {
                Ok(0) => {
                    out.io_error = true;
                    return out;
                }
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(_) => {
                    out.io_error = true;
                    return out;
                }
            },
            Err(_) => {
                out.io_error = true;
                return out;
            }
        }
    }
    out
}

/// One socket-mode pass: `connections` threads, each holding a pipelined
/// connection open for `per_conn` requests.
#[allow(clippy::too_many_arguments)]
fn net_pass(
    addr: &str,
    model: &str,
    fmt: Option<&str>,
    executor: Executor,
    samples: &[Tensor],
    connections: usize,
    per_conn: usize,
    pipeline: usize,
) -> NetRun {
    let agg: Mutex<Vec<ConnResult>> = Mutex::new(Vec::with_capacity(connections));
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..connections {
            let agg = &agg;
            s.spawn(move || {
                let r =
                    drive_connection(addr, model, fmt, executor, samples, c, per_conn, pipeline);
                agg.lock().expect("net aggregate").push(r);
            });
        }
    });
    let wall = t0.elapsed();
    let results = agg.into_inner().expect("net aggregate");
    let mut latencies: Vec<u64> = results
        .iter()
        .flat_map(|r| r.latencies_us.clone())
        .collect();
    latencies.sort_unstable();
    let requests: usize = results.iter().map(|r| r.sent).sum();
    let completed = latencies.len();
    let wire_errors: usize = results.iter().map(|r| r.wire_errors).sum();
    let failed = results.iter().filter(|r| r.io_error).count();
    let run = NetRun {
        model: model.to_owned(),
        format: fmt.unwrap_or("fp32").to_owned(),
        executor: executor.to_string(),
        connections,
        pipeline,
        requests,
        completed,
        wire_errors,
        failed,
        unanswered: requests - completed - wire_errors,
        reqs_per_sec: completed as f64 / wall.as_secs_f64().max(1e-9),
        p50_us: percentile(&latencies, 0.50),
        p95_us: percentile(&latencies, 0.95),
        p99_us: percentile(&latencies, 0.99),
    };
    println!(
        "net {:<16} {:<12} {:<8} {:>4} conns x{:<2} {:>7.1} req/s  p50 {:>7}us p95 {:>7}us p99 {:>7}us  ({} ok / {} err / {} dead)",
        run.model,
        run.format,
        run.executor,
        run.connections,
        run.pipeline,
        run.reqs_per_sec,
        run.p50_us,
        run.p95_us,
        run.p99_us,
        run.completed,
        run.wire_errors,
        run.failed
    );
    run
}

/// The socket-mode grid. The fp32 pass carries the concurrency headline
/// (the acceptance bar: ≥ 256 pipelined connections with nothing lost);
/// the quantized passes keep both executors covered over the wire.
fn net_combos(quick: bool) -> Vec<(Option<&'static str>, Executor, usize, usize)> {
    // (format, executor, connections, requests per connection)
    if quick {
        vec![
            (None, Executor::Float, 256, 4),
            (Some("MERSIT(8,2)"), Executor::Float, 32, 8),
            (Some("MERSIT(8,2)"), Executor::BitTrue, 8, 4),
        ]
    } else {
        vec![
            (None, Executor::Float, 384, 4),
            (Some("MERSIT(8,2)"), Executor::Float, 64, 8),
            (Some("MERSIT(8,2)"), Executor::BitTrue, 16, 4),
        ]
    }
}

/// Runs the socket-mode section: against `net_addr` when given (an
/// external `mersit-served`), else against a self-hosted event loop over
/// a freshly built zoo model on an ephemeral loopback port.
///
/// # Panics
///
/// Panics (self-hosted mode) if the listener cannot bind, or if the
/// server breaks admission conservation.
fn run_net_section(quick: bool, net_addr: Option<&str>) -> NetSection {
    let _span = mersit_obs::span("bench.serve.net");
    let hw = if quick { 8usize } else { 10 };
    // Same construction as `mersit-served`: seed 0x5E4E, vgg_t first.
    let mut rng = Rng::new(0x5E4E);
    let model = vgg_t(hw, 10, &mut rng);
    let name = model.name.clone();
    let samples: Vec<Tensor> = (0..8)
        .map(|_| Tensor::randn(&[3, hw, hw], 1.0, &mut rng))
        .collect();
    let (addr, hosted) = match net_addr {
        Some(a) => (a.to_owned(), None),
        None => {
            let calib = Tensor::randn(&[16, 3, hw, hw], 1.0, &mut rng);
            let cal = calibrate(&model, &calib, 8);
            let server = Arc::new(Server::start(vec![(model, cal)], ServeConfig::from_env()));
            let handle = mersit_serve::net::spawn(
                Arc::clone(&server),
                NetConfig::from_env().addr("127.0.0.1:0"),
            )
            .expect("bind self-hosted event loop");
            (handle.addr().to_string(), Some((server, handle)))
        }
    };
    let mut runs = Vec::new();
    for (fmt, executor, connections, per_conn) in net_combos(quick) {
        runs.push(net_pass(
            &addr,
            &name,
            fmt,
            executor,
            &samples,
            connections,
            per_conn,
            2,
        ));
    }
    if let Some((server, handle)) = hosted {
        let net_stats = handle.shutdown();
        let stats = server.stats();
        assert_eq!(
            stats.submitted,
            stats.completed + stats.failed,
            "self-hosted server broke admission conservation"
        );
        println!(
            "net self-host: {} conns, {} frames in, {} responses, {} errors",
            net_stats.accepted, net_stats.requests, net_stats.responses, net_stats.errors
        );
    }
    NetSection {
        addr,
        self_hosted: net_addr.is_none(),
        runs,
    }
}

/// Runs the full grid: per model, per (format × executor) combo, a
/// closed-loop pass at each client count, then an open-loop pass paced
/// at roughly half the best closed-loop rate (so the open pass measures
/// batching under head-room, not a saturated queue).
///
/// After the in-process grid, the socket-mode section runs the wire
/// protocol — against `net_addr` when given (CI's `net-smoke` points it
/// at a backgrounded `mersit-served`), else against a self-hosted event
/// loop on an ephemeral loopback port.
///
/// # Panics
///
/// Panics if any pass leaves requests unanswered — the server's
/// admission-conservation invariant would be broken.
#[must_use]
pub fn run_serve_bench(quick: bool, net_addr: Option<&str>) -> ServeBenchReport {
    let _span = mersit_obs::span("bench.serve");
    println!(
        "serve_bench: {} threads, simd {}",
        par::pool_size(),
        mersit_core::simd_level()
    );
    let (hw, sample_pool, per_client, open_total) = if quick {
        (8usize, 8usize, 12usize, 24usize)
    } else {
        (10, 12, 32, 64)
    };
    let client_counts: &[usize] = if quick { &[1, 2] } else { &[1, 4] };
    let cfg = ServeConfig::from_env();
    let report_cfg = cfg.clone();
    let mut rng = Rng::new(0x5E4E);
    let models = if quick {
        vec![vgg_t(hw, 10, &mut rng)]
    } else {
        vec![vgg_t(hw, 10, &mut rng), mobilenet_v3_t(hw, 10, &mut rng)]
    };
    let mut runs = Vec::new();
    for model in models {
        let name = model.name.clone();
        let calib = Tensor::randn(&[16, 3, hw, hw], 1.0, &mut rng);
        let cal = calibrate(&model, &calib, 8);
        let samples: Vec<Tensor> = (0..sample_pool)
            .map(|_| Tensor::randn(&[3, hw, hw], 1.0, &mut rng))
            .collect();
        let server = Server::start(vec![(model, cal)], cfg.clone());
        for (fmt, executor) in combos(quick) {
            let mut best_rate = 0.0f64;
            for &clients in client_counts {
                let requests = clients * per_client;
                let pass =
                    closed_loop(&server, &name, fmt, executor, &samples, clients, per_client);
                let run = finish_run(&name, fmt, executor, "closed", clients, requests, pass);
                best_rate = best_rate.max(run.reqs_per_sec);
                assert_eq!(run.unanswered, 0, "closed loop dropped requests");
                runs.push(run);
            }
            let rate = (best_rate * 0.5).max(2.0) as usize;
            let pass = open_loop(&server, &name, fmt, executor, &samples, rate, open_total);
            let run = finish_run(&name, fmt, executor, "open", rate, open_total, pass);
            assert_eq!(run.unanswered, 0, "open loop dropped requests");
            runs.push(run);
        }
        let stats = server.stats();
        println!(
            "{name}: {} submitted, {} completed, {} rejected, {} plans cached",
            stats.submitted, stats.completed, stats.rejected, stats.cached_plans
        );
    }
    let net = run_net_section(quick, net_addr);
    ServeBenchReport {
        threads: par::pool_size(),
        simd_isa: mersit_core::simd_level().to_string(),
        quick,
        max_batch: report_cfg.max_batch,
        max_wait_us: report_cfg.max_wait_us,
        queue_depth: report_cfg.queue_depth,
        runs,
        net,
    }
}

/// Serializes a report to `BENCH_serve.json`.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn write_serve_json(report: &ServeBenchReport) {
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"threads\": {},", report.threads);
    let _ = writeln!(json, "  \"simd_isa\": \"{}\",", report.simd_isa);
    let _ = writeln!(json, "  \"quick\": {},", report.quick);
    let _ = writeln!(json, "  \"max_batch\": {},", report.max_batch);
    let _ = writeln!(json, "  \"max_wait_us\": {},", report.max_wait_us);
    let _ = writeln!(json, "  \"queue_depth\": {},", report.queue_depth);
    json.push_str("  \"runs\": [\n");
    for (i, r) in report.runs.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"model\": \"{}\", \"format\": \"{}\", \"executor\": \"{}\", \
             \"mode\": \"{}\", \"offered\": {}, \"requests\": {}, \"completed\": {}, \
             \"rejected\": {}, \"failed\": {}, \"unanswered\": {}, \
             \"reqs_per_sec\": {:.2}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \
             \"mean_batch\": {:.2}}}",
            r.model,
            r.format,
            r.executor,
            r.mode,
            r.offered,
            r.requests,
            r.completed,
            r.rejected,
            r.failed,
            r.unanswered,
            r.reqs_per_sec,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            r.mean_batch
        );
        json.push_str(if i + 1 < report.runs.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"net\": {\n");
    let _ = writeln!(json, "    \"addr\": \"{}\",", report.net.addr);
    let _ = writeln!(json, "    \"self_hosted\": {},", report.net.self_hosted);
    json.push_str("    \"runs\": [\n");
    for (i, r) in report.net.runs.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"model\": \"{}\", \"format\": \"{}\", \"executor\": \"{}\", \
             \"connections\": {}, \"pipeline\": {}, \"requests\": {}, \"completed\": {}, \
             \"wire_errors\": {}, \"failed\": {}, \"unanswered\": {}, \
             \"reqs_per_sec\": {:.2}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}",
            r.model,
            r.format,
            r.executor,
            r.connections,
            r.pipeline,
            r.requests,
            r.completed,
            r.wire_errors,
            r.failed,
            r.unanswered,
            r.reqs_per_sec,
            r.p50_us,
            r.p95_us,
            r.p99_us
        );
        json.push_str(if i + 1 < report.net.runs.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("    ]\n  }\n}\n");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
