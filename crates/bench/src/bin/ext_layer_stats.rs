//! **Extension study**: why each architecture family lands where it does
//! in Table 2 — per-model activation-distribution statistics (dynamic-range
//! demand and outlier ratios) from trained models. High range demand
//! predicts the collapse of narrow-range formats (INT8, FP(8,2),
//! Posit(8,0)); low demand predicts format-insensitivity.

#![allow(
    clippy::pedantic,
    clippy::string_slice,
    clippy::unusual_byte_groupings,
    clippy::type_complexity
)]

use mersit_nn::{profile_model, synthetic_images, train_classifier, vision_zoo, TrainConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n_train, epochs) = if quick { (500, 3) } else { (1200, 5) };
    let ds = synthetic_images(0x57A7, n_train, 100, 12);

    println!("=== Extension: per-model activation statistics (trained) ===\n");
    println!(
        "{:<20} {:>9} {:>9} {:>12} {:>12} {:>12}",
        "model", "layers", "MACs", "peak rng bits", "mean rng bits", "outliers %"
    );
    mersit_bench::hr(80);
    for mut model in vision_zoo(12, 10, 0xBEEF) {
        train_classifier(
            &mut model.net,
            &ds.train,
            &TrainConfig {
                epochs,
                ..TrainConfig::default()
            },
        );
        let p = profile_model(&model, &ds.test.inputs.slice_outer(0, 32));
        let mean_rng = p
            .layers
            .iter()
            .map(mersit_nn::LayerStats::range_demand_bits)
            .sum::<f64>()
            / p.layers.len() as f64;
        let mean_out =
            p.layers.iter().map(|l| l.outlier_ratio).sum::<f64>() / p.layers.len() as f64;
        println!(
            "{:<20} {:>9} {:>9} {:>12.2} {:>12.2} {:>12.3}",
            p.model,
            p.layers.len(),
            p.macs_per_sample(),
            p.peak_range_demand_bits(),
            mean_rng,
            100.0 * mean_out
        );
    }
    println!();
    println!("Reading: the h-swish/SiLU + SE models carry the highest dynamic-range");
    println!("demand (max/rms) — exactly the models where Table 2 shows INT8 /");
    println!("FP(8,2) / Posit(8,0) collapsing while MERSIT(8,2)'s tapered range");
    println!("absorbs the spread.");
}
