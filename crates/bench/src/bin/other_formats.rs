//! **§2.1 check**: AdaptivFloat and 8-bit block floating point vs FP(8,4)
//! with channel/layer scaling. The paper *presumes* "these data formats
//! align with FP8, eliminating the need for a separate comparison" — this
//! study measures that presumption on a trained model.

#![allow(
    clippy::pedantic,
    clippy::string_slice,
    clippy::unusual_byte_groupings,
    clippy::type_complexity
)]

use mersit_core::parse_format;
use mersit_nn::models::{efficientnet_b0_t, vgg_t, Model};
use mersit_nn::{predict, synthetic_images, train_classifier, Ctx, Layer, TrainConfig};
use mersit_ptq::{
    calibrate, evaluate_format, quantize_weights_alt, AltAssignment, AltQuant, AltTap, Metric,
    WeightSnapshot,
};
use mersit_tensor::{Rng, Tensor};

/// The two §2.1 quantizers at the paper's comparison points.
const ADAPTIVFLOAT: AltQuant = AltQuant::AdaptivFloat {
    exp_bits: 4,
    frac_bits: 3,
};
const BFP8: AltQuant = AltQuant::Bfp {
    mant_bits: 7,
    group: 16,
};

fn eval_alt(model: &mut Model, alt: AltQuant, inputs: &Tensor, labels: &[usize]) -> f64 {
    let assign = AltAssignment::uniform(alt);
    let snap = WeightSnapshot::capture(model);
    quantize_weights_alt(model, &assign);
    let n = inputs.shape()[0];
    let mut preds = Vec::with_capacity(n);
    let mut i = 0;
    while i < n {
        let hi = (i + 50).min(n);
        let x = alt.apply(&inputs.slice_outer(i, hi));
        let mut tap = AltTap::new(assign.clone());
        let mut ctx = Ctx::with_tap(&mut tap);
        let logits = model.net.forward(x, &mut ctx);
        preds.extend(mersit_nn::argmax_rows(&logits));
        i = hi;
    }
    snap.restore(model);
    Metric::Accuracy.score(&preds, labels)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n_train, epochs) = if quick { (600, 4) } else { (1500, 6) };
    let ds = synthetic_images(0x07E4, n_train, 300, 10);

    println!("=== S2.1: AdaptivFloat / BFP vs scaled FP8 ===\n");
    println!(
        "{:<20} {:>7} {:>9} {:>13} {:>9}",
        "model", "FP32", "FP(8,4)", "AdaptivFloat", "BFP-8"
    );
    mersit_bench::hr(62);
    let builders: [(&str, fn(usize, usize, &mut Rng) -> Model); 2] =
        [("vgg_t", vgg_t), ("efficientnet_b0_t", efficientnet_b0_t)];
    for (name, build) in builders {
        let mut rng = Rng::new(0x07E5);
        let mut model = build(10, 10, &mut rng);
        train_classifier(
            &mut model.net,
            &ds.train,
            &TrainConfig {
                epochs,
                ..TrainConfig::default()
            },
        );
        let cal = calibrate(&model, &ds.calib.inputs, 32);
        let fp32_preds = predict(&mut model.net, &ds.test.inputs, 50);
        let fp32 = Metric::Accuracy.score(&fp32_preds, &ds.test.labels);
        let fp84 = {
            let fmt = parse_format("FP(8,4)").expect("valid");
            let preds = evaluate_format(&mut model, fmt.as_ref(), &cal, &ds.test.inputs, 50);
            Metric::Accuracy.score(&preds, &ds.test.labels)
        };
        let af = eval_alt(&mut model, ADAPTIVFLOAT, &ds.test.inputs, &ds.test.labels);
        let bfp = eval_alt(&mut model, BFP8, &ds.test.inputs, &ds.test.labels);
        println!("{name:<20} {fp32:>7.1} {fp84:>9.1} {af:>13.1} {bfp:>9.1}");
    }
    println!();
    println!("Reading: with channel-/layer-level scaling in place, AdaptivFloat");
    println!("and group-wise BFP land within a few points of FP(8,4) — the");
    println!("paper's justification for omitting them from Table 2.");
}
