//! Regenerates **Fig. 3**: a step-by-step MERSIT(8,2) decoding walkthrough
//! (sign / regime-sign / exponent candidates / fraction), for every
//! structurally distinct case.

#![allow(
    clippy::pedantic,
    clippy::string_slice,
    clippy::unusual_byte_groupings,
    clippy::type_complexity
)]

use mersit_core::{Format, Mersit, ValueClass};

fn walkthrough(m: &Mersit, code: u16) {
    let bits = format!("{code:08b}");
    let es = m.es() as usize;
    println!("code {bits}   ({})", m.name());
    println!("  sign = {}   ks = {}", &bits[0..1], &bits[1..2]);
    let body = &bits[2..];
    for g in 0..m.groups() as usize {
        let ec = &body[g * es..(g + 1) * es];
        let all_ones = ec.chars().all(|c| c == '1');
        println!("  EC{g} = {ec}  AND = {}", if all_ones { 1 } else { 0 });
    }
    match m.classify(code) {
        ValueClass::Zero => println!("  every EC is all-ones, ks=0  =>  zero\n"),
        ValueClass::Infinite => println!("  every EC is all-ones, ks=1  =>  +/-inf\n"),
        ValueClass::Finite => {
            let d = m.fields(code).expect("finite");
            println!(
                "  exponent EC found at g (first AND=0)  =>  k = {}  exp = {}",
                d.regime.expect("mersit has regimes"),
                d.exp_raw
            );
            println!("  effective exponent = (2^es-1)*k + exp = {}", d.exp_eff);
            println!(
                "  fraction = {:0w$b} ({} bits)  =>  value = {}\n",
                d.frac,
                d.frac_bits,
                m.decode(code),
                w = d.frac_bits.max(1) as usize
            );
        }
        ValueClass::Nan => unreachable!("MERSIT has no NaN"),
    }
}

fn main() {
    let m = Mersit::new(8, 2).expect("valid configuration");
    println!("=== Fig. 3: MERSIT(8,2) decoding walkthroughs ===\n");
    for code in [
        0b0_1_00_1010u16, // k=0, fraction-rich
        0b0_1_1101_01,    // k=1, 2 fraction bits
        0b0_1_111110,     // k=2, no fraction bits
        0b0_0_01_0011,    // negative regime, k=-1
        0b0_0_1110_10,    // k=-2
        0b1_0_111101,     // negative value, k=-3
        0b0_0_111111,     // zero
        0b0_1_111111,     // +inf
    ] {
        walkthrough(&m, code);
    }
}
