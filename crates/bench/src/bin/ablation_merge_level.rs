//! **Ablation A1**: the MERSIT merge level. The paper examines E ∈ {2, 3};
//! this study sweeps E ∈ {1, 2, 3} and reports, per level:
//! decoder hardware cost, MAC cost, precision-band geometry, and
//! quantization RMSE on trained-model tensors — exposing the
//! accuracy/hardware trade the merge level controls.

#![allow(
    clippy::pedantic,
    clippy::string_slice,
    clippy::unusual_byte_groupings,
    clippy::type_complexity
)]

use mersit_bench::trained_dnn_operands;
use mersit_core::{Format, Mersit, PrecisionProfile};
use mersit_hw::{mac_cost_with_margin, standalone_decoder, Decoder, MacUnit, MersitDecoder};
use mersit_netlist::AreaReport;
use mersit_nn::models::resnet50_t;
use mersit_nn::{synthetic_images, train_classifier, TrainConfig};
use mersit_ptq::{calibrate, rmse_report};
use mersit_tensor::Rng;

fn main() {
    let ops = trained_dnn_operands(0xAB1A, 3000);

    // A trained model for RMSE scoring.
    let ds = synthetic_images(0xAB1B, 800, 120, 12);
    let mut rng = Rng::new(0xAB1C);
    let mut model = resnet50_t(12, 10, &mut rng);
    train_classifier(
        &mut model.net,
        &ds.train,
        &TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        },
    );
    let cal = calibrate(&model, &ds.calib.inputs, 32);

    println!("=== Ablation: MERSIT(8,E) merge level ===\n");
    println!(
        "{:<12} {:>7} {:>7} {:>9} {:>10} {:>10} {:>10} {:>10}",
        "Config", "range", "peakfb", "dec um^2", "mac um^2", "mac uW", "w-rmse", "a-rmse"
    );
    mersit_bench::hr(82);
    for es in [1u32, 2, 3] {
        let fmt = Mersit::new(8, es).expect("valid");
        let profile = PrecisionProfile::of(&fmt);
        let dec = MersitDecoder::new(fmt.clone());
        let (dnl, _, _) = standalone_decoder(&dec);
        let dec_area = AreaReport::of(&dnl).total_um2;
        let stream = ops.encode_scaled(&fmt, 1500);
        // Clamp the overflow margin to the 63-bit simulation limit.
        let params = dec.params();
        let v = (0..=10u32)
            .rev()
            .find(|&v| MacUnit::acc_width_for(&params, v) <= 63)
            .expect("fits at some margin");
        let mac = mac_cost_with_margin(&dec, &stream, 64, v);
        let r = rmse_report(
            &mut model,
            &cal,
            &fmt,
            &ds.test.inputs.slice_outer(0, 48),
            24,
        );
        println!(
            "{:<12} {:>7} {:>7} {:>9.1} {:>10.1} {:>10.2} {:>10.4} {:>10.4}",
            fmt.name(),
            format!("2^{}..{}", profile.exp_min(), profile.exp_max()),
            profile.max_frac_bits(),
            dec_area,
            mac.total.area_um2,
            mac.total.power_uw,
            r.weight_rmse,
            r.act_rmse
        );
    }
    println!();
    println!("Reading: E=2 holds the sweet spot the paper selects — E=1 narrows");
    println!("the dynamic range (posit(8,0)-like), E=3 widens range but drops to");
    println!("3-bit peak precision and a larger Kulisch accumulator.");
}
