//! Regenerates **Fig. 4**: the per-binade effective fraction precision of
//! FP(8,2..5), Posit(8,0..2) and MERSIT(8,2..3), rendered as an ASCII
//! staircase (one digit per binade = fraction bits available there).

#![allow(
    clippy::pedantic,
    clippy::string_slice,
    clippy::unusual_byte_groupings,
    clippy::type_complexity
)]

use mersit_core::{fig4_formats, PrecisionProfile};

fn main() {
    let profiles: Vec<PrecisionProfile> = fig4_formats()
        .iter()
        .map(|f| PrecisionProfile::of(f.as_ref()))
        .collect();
    let lo = profiles
        .iter()
        .map(PrecisionProfile::exp_min)
        .min()
        .expect("profiles");
    let hi = profiles
        .iter()
        .map(PrecisionProfile::exp_max)
        .max()
        .expect("profiles");

    println!("=== Fig. 4: range and precision of 8-bit data formats ===");
    println!("(columns: binade exponent {lo}..{hi}; digit = effective fraction bits)\n");
    // Axis header (mark decades).
    let mut axis = String::new();
    for e in lo..=hi {
        axis.push(if e == 0 {
            '0'
        } else if e % 4 == 0 {
            '|'
        } else {
            ' '
        });
    }
    println!("{:<14} {axis}", "");
    for p in &profiles {
        println!("{:<14} {}", p.name, p.ascii_row(lo, hi));
    }
    println!();
    println!(
        "{:<14} {:>6} {:>6} {:>9} {:>14}",
        "Format", "min2^", "max2^", "peak-bits", "4-bit band"
    );
    mersit_bench::hr(55);
    for p in &profiles {
        println!(
            "{:<14} {:>6} {:>6} {:>9} {:>14}",
            p.name,
            p.exp_min(),
            p.exp_max(),
            p.max_frac_bits(),
            format!("{} binades", p.band_width_at(4))
        );
    }
    println!();
    println!(
        "S3.2 check: MERSIT(8,2) 4-bit band = {} binades vs Posit(8,1) = {} binades",
        profiles
            .iter()
            .find(|p| p.name == "MERSIT(8,2)")
            .expect("present")
            .band_width_at(4),
        profiles
            .iter()
            .find(|p| p.name == "Posit(8,1)")
            .expect("present")
            .band_width_at(4),
    );
}
