//! Regenerates **Table 1** of the paper: the complete MERSIT(8,2)
//! decoding table, plus the same enumeration for MERSIT(8,3).

#![allow(
    clippy::pedantic,
    clippy::string_slice,
    clippy::unusual_byte_groupings,
    clippy::type_complexity
)]

use mersit_core::{render_mersit_table, Mersit};

fn main() {
    let m82 = Mersit::new(8, 2).expect("valid configuration");
    println!("{}", render_mersit_table(&m82));
    let m83 = Mersit::new(8, 3).expect("valid configuration");
    println!("{}", render_mersit_table(&m83));
}
