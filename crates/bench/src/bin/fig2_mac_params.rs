//! Regenerates the **Fig. 2 table**: dynamic range, exponent width `P`,
//! significand width `M`, and Kulisch span `W` for FP(8,4), Posit(8,1),
//! and MERSIT(8,2) — extended to every configuration under study.

#![allow(
    clippy::pedantic,
    clippy::string_slice,
    clippy::unusual_byte_groupings,
    clippy::type_complexity
)]

use mersit_core::{table2_formats, MacParams};

fn main() {
    println!(
        "{:<14} {:>16} {:>4} {:>4} {:>22}",
        "Format", "Dynamic Range", "P", "M", "W"
    );
    mersit_bench::hr(66);
    for fmt in table2_formats() {
        if fmt.name() == "INT8" {
            // Fixed-point: the accumulator is a plain integer adder.
            println!(
                "{:<14} {:>16} {:>4} {:>4} {:>22}",
                "INT8", "-127..127", "-", "8", "16+V (integer)"
            );
            continue;
        }
        let p = MacParams::of(fmt.as_ref());
        println!(
            "{:<14} {:>16} {:>4} {:>4} {:>22}",
            fmt.name(),
            format!("2^{}..2^{}", p.e_min, p.e_max),
            p.p,
            p.m,
            format!("2x({}+{})+1={} bits", -p.e_min, p.e_max, p.w)
        );
    }
    println!();
    println!("Paper anchors: FP(8,4) W=33, Posit(8,1) W=45, MERSIT(8,2) W=35.");
}
