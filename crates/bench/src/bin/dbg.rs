#![allow(
    clippy::pedantic,
    clippy::string_slice,
    clippy::unusual_byte_groupings,
    clippy::type_complexity
)]

use mersit_hw::*;
fn main() {
    for name in ["FP(8,4)", "Posit(8,1)", "MERSIT(8,2)"] {
        let dec = decoder_for(name).unwrap();
        let fmt = mersit_core::parse_format(name).unwrap();
        let w = gaussian_samples(500, 0.04, 7);
        let a = gaussian_samples(500, 1.0, 13);
        let s = encode_stream(fmt.as_ref(), &w, &a);
        let mc = multiplier_cost(dec.as_ref(), &s);
        println!("{name:12} dec {:7.1}um2/{:6.2}uW  exp {:6.1}/{:5.2}  frac {:6.1}/{:5.2}  total {:7.1}/{:6.2}",
          mc.decoder.area_um2, mc.decoder.power_uw, mc.exp_adder.area_um2, mc.exp_adder.power_uw,
          mc.frac_mul.area_um2, mc.frac_mul.power_uw, mc.total.area_um2, mc.total.power_uw);
        let kc = mac_cost(dec.as_ref(), &s, 64);
        println!(
            "{name:12} MAC total {:7.1}um2 {:6.2}uW  (mult {:6.1}, align {:6.1}, acc {:6.1})",
            kc.total.area_um2,
            kc.total.power_uw,
            kc.multiplier.area_um2,
            kc.aligner.area_um2,
            kc.accumulator.area_um2
        );
    }
}
