//! Regenerates **Table 3**: the multiplier breakdown — decoder, exponent
//! adder and fraction multiplier area/power for FP(8,4), Posit(8,1) and
//! MERSIT(8,2), driven by actual DNN operand streams.

#![allow(
    clippy::pedantic,
    clippy::string_slice,
    clippy::unusual_byte_groupings,
    clippy::type_complexity
)]

use mersit_bench::trained_dnn_operands;
use mersit_core::parse_format;
use mersit_hw::{decoder_for, multiplier_cost, MultiplierBreakdown};

fn main() {
    mersit_obs::init_from_env();
    let ops = trained_dnn_operands(0x7AB3, 4000);
    let names = ["FP(8,4)", "Posit(8,1)", "MERSIT(8,2)"];
    let rows: Vec<MultiplierBreakdown> = names
        .iter()
        .map(|name| {
            let dec = decoder_for(name).expect("hardware format");
            let fmt = parse_format(name).expect("valid");
            let stream = ops.encode_scaled(fmt.as_ref(), 2000);
            multiplier_cost(dec.as_ref(), &stream)
        })
        .collect();

    println!("=== Table 3: Multiplier Breakdown Analysis ===\n");
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "", names[0], names[1], names[2]
    );
    mersit_bench::hr(62);
    println!("{:<22} {:>12} {:>12} {:>12}", "Area (um^2)", "", "", "");
    let area = |f: fn(&MultiplierBreakdown) -> f64| -> Vec<String> {
        rows.iter().map(|r| format!("{:.0}", f(r))).collect()
    };
    for (label, vals) in [
        ("  Decoder", area(|r| r.decoder.area_um2)),
        ("  Exponent-Adder", area(|r| r.exp_adder.area_um2)),
        ("  Fraction-Multiplier", area(|r| r.frac_mul.area_um2)),
        ("  Total", area(|r| r.total.area_um2)),
    ] {
        println!(
            "{:<22} {:>12} {:>12} {:>12}",
            label, vals[0], vals[1], vals[2]
        );
    }
    println!("{:<22} {:>12} {:>12} {:>12}", "Power (uW)", "", "", "");
    let power = |f: fn(&MultiplierBreakdown) -> f64| -> Vec<String> {
        rows.iter().map(|r| format!("{:.2}", f(r))).collect()
    };
    for (label, vals) in [
        ("  Decoder", power(|r| r.decoder.power_uw)),
        ("  Exponent-Adder", power(|r| r.exp_adder.power_uw)),
        ("  Fraction-Multiplier", power(|r| r.frac_mul.power_uw)),
        ("  Total", power(|r| r.total.power_uw)),
    ] {
        println!(
            "{:<22} {:>12} {:>12} {:>12}",
            label, vals[0], vals[1], vals[2]
        );
    }

    let dec_saving = 100.0 * (1.0 - rows[2].decoder.area_um2 / rows[1].decoder.area_um2);
    println!();
    println!("MERSIT(8,2) decoder saves {dec_saving:.1}% area vs Posit(8,1)  (paper: 59.2%)");
    println!("Paper Table 3 (um^2): decoder 434/830/338, exp-adder 46/54/54, frac-mul 128/216/216");

    if let Ok(Some(path)) = mersit_obs::report::write_global_report("table3") {
        println!("wrote {path}");
    }
}
