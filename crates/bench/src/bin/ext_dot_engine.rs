//! **Extension study**: the Fig. 7 comparison at accelerator-tile scale —
//! a 4-lane dot-product engine per format (lane multipliers + adder tree +
//! one shared Kulisch accumulator). Shows how lane amortization reshapes
//! the MERSIT-vs-Posit gap and reports achievable clock frequency.

#![allow(
    clippy::pedantic,
    clippy::string_slice,
    clippy::unusual_byte_groupings,
    clippy::type_complexity
)]

use mersit_bench::trained_dnn_operands;
use mersit_core::parse_format;
use mersit_hw::{decoder_for, DotEngine, MacUnit};
use mersit_netlist::{AreaReport, PowerReport, Simulator, TimingReport};

const LANES: usize = 4;

fn main() {
    let ops = trained_dnn_operands(0xD07E, 4000);
    println!("=== Extension: {LANES}-lane dot-product engines (45nm-class, 100 MHz) ===\n");
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "Format", "area um^2", "/lane", "1-MAC um^2", "power uW", "crit ps", "fmax MHz"
    );
    mersit_bench::hr(82);
    let mut rows = Vec::new();
    for name in ["FP(8,4)", "Posit(8,1)", "MERSIT(8,2)"] {
        let dec = decoder_for(name).expect("hardware format");
        let fmt = parse_format(name).expect("valid");
        let eng = DotEngine::build(dec.as_ref(), LANES, 6);
        let single = MacUnit::build_with_margin(dec.as_ref(), 6);

        // Activity from real operand streams across all lanes.
        let stream = ops.encode_scaled(fmt.as_ref(), 2048);
        let mut sim = Simulator::new(&eng.netlist);
        sim.reset();
        for chunk in stream.chunks(LANES) {
            if chunk.len() < LANES {
                break;
            }
            for (l, &(w, a)) in chunk.iter().enumerate() {
                sim.set(&eng.w_codes[l], u64::from(w));
                sim.set(&eng.a_codes[l], u64::from(a));
            }
            sim.set(&eng.clear, 0);
            sim.clock();
        }
        let area = AreaReport::of(&eng.netlist).total_um2;
        let single_area = AreaReport::of(&single.netlist).total_um2;
        let power = PowerReport::at_100mhz(&sim).total_uw();
        let timing = TimingReport::of(&eng.netlist);
        println!(
            "{:<14} {:>10.1} {:>10.1} {:>12.1} {:>10.2} {:>10.0} {:>10.0}",
            name,
            area,
            area / LANES as f64,
            single_area,
            power,
            timing.critical_path_ps,
            timing.fmax_mhz
        );
        rows.push((name, area, power));
    }
    let posit = rows.iter().find(|r| r.0 == "Posit(8,1)").expect("present");
    let mersit = rows.iter().find(|r| r.0 == "MERSIT(8,2)").expect("present");
    println!();
    println!(
        "4-lane MERSIT vs Posit: area -{:.1}%, power -{:.1}%",
        100.0 * (1.0 - mersit.1 / posit.1),
        100.0 * (1.0 - mersit.2 / posit.2),
    );
    println!("Reading: with the accumulator shared across lanes, the decoder and");
    println!("multiplier costs dominate, so MERSIT's advantage over Posit *grows*");
    println!("relative to the single-MAC comparison of Fig. 7.");
}
