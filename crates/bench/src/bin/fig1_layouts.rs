//! Regenerates **Fig. 1**: the bit-layout diagrams of FP8 and Posit8,
//! illustrated on concrete codes.

#![allow(
    clippy::pedantic,
    clippy::string_slice,
    clippy::unusual_byte_groupings,
    clippy::type_complexity
)]

use mersit_core::{Format, Fp8, Posit};

fn show_fp8(e: u32, code: u16) {
    let f = Fp8::new(e).expect("valid configuration");
    let m = 7 - e;
    let bits = format!("{code:08b}");
    println!("{}  code {bits}", f.name());
    println!(
        "  sign={}  exponent[{e}]={}  fraction[{m}]={}",
        &bits[0..1],
        &bits[1..1 + e as usize],
        &bits[1 + e as usize..]
    );
    println!("  value = {}\n", f.decode(code));
}

fn show_posit(es: u32, code: u16) {
    let p = Posit::new(8, es).expect("valid configuration");
    let bits = format!("{code:08b}");
    println!("{}  code {bits}", p.name());
    let d = p.fields(code);
    match d {
        Some(d) => println!(
            "  sign={}  regime k={}  exp={}  frac={:0width$b} ({} bits)",
            u8::from(d.sign),
            d.regime.unwrap_or(0),
            d.exp_raw,
            d.frac,
            d.frac_bits,
            width = d.frac_bits.max(1) as usize
        ),
        None => println!("  special value"),
    }
    println!("  value = {}\n", p.decode(code));
}

fn main() {
    println!("=== Fig. 1a: FP8 structure (sign | exponent | fraction) ===\n");
    for (e, code) in [
        (4u32, 0b0_0111_100u16),
        (4, 0b1_1010_011),
        (3, 0b0_011_1010),
    ] {
        show_fp8(e, code);
    }
    println!("=== Fig. 1b: Posit8 structure (sign | regime | exp | fraction) ===\n");
    for code in [
        0b0_10_0_1000u16,
        0b0_110_1_010,
        0b0_0001_1_01,
        0b1_10_1_0000,
    ] {
        show_posit(1, code);
    }
}
