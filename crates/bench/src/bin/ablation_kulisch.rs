//! **Ablation A2**: the Kulisch overflow margin `V`. The accumulator is
//! `W + (2M−2) + V_ovf` bits; this study sweeps the headroom and measures
//! (a) hardware cost and (b) the dot-product length at which wrap-around
//! first corrupts a worst-case accumulation — quantifying the margin the
//! paper's "+V to prevent overflow" buys.

#![allow(
    clippy::pedantic,
    clippy::string_slice,
    clippy::unusual_byte_groupings,
    clippy::type_complexity
)]

use mersit_core::{Format, Mersit};
use mersit_hw::{Decoder, GoldenMac, MacUnit, MersitDecoder};
use mersit_netlist::AreaReport;

/// First accumulation count at which a stream of worst-case same-sign
/// maximal products wraps the accumulator.
fn overflow_point(fmt: &Mersit, acc_width: usize, limit: usize) -> Option<usize> {
    let mut g = GoldenMac::new(fmt, acc_width);
    let max_code = fmt.encode(fmt.max_finite());
    let mut true_sum = 0.0f64;
    for i in 1..=limit {
        g.mac(max_code, max_code);
        true_sum += fmt.max_finite() * fmt.max_finite();
        if (g.acc_value() - true_sum).abs() > true_sum * 1e-9 {
            return Some(i);
        }
    }
    None
}

fn main() {
    let fmt = Mersit::new(8, 2).expect("valid");
    let dec = MersitDecoder::new(fmt.clone());
    println!("=== Ablation: Kulisch accumulator margin V (MERSIT(8,2)) ===\n");
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>20}",
        "V_ovf", "acc bits", "acc um^2", "mac um^2", "overflow at n ="
    );
    mersit_bench::hr(68);
    for v in [0u32, 2, 4, 6, 8, 10, 12] {
        let acc_width = MacUnit::acc_width_for(&dec.params(), v);
        if acc_width > 63 {
            println!("{v:<8} {acc_width:>10} (beyond 63-bit simulation limit)");
            continue;
        }
        let mac = MacUnit::build_with_margin(&dec, v);
        let area = AreaReport::of(&mac.netlist);
        let acc_area = area.scope_area(&format!("{}/accumulator", mac.netlist.name()));
        let ov = overflow_point(&fmt, acc_width, 1 << 13);
        println!(
            "{:<8} {:>10} {:>12.1} {:>12.1} {:>20}",
            v,
            acc_width,
            acc_area,
            area.total_um2,
            ov.map_or_else(|| "> 8192".to_owned(), |n| n.to_string())
        );
    }
    println!();
    println!("Reading: each margin bit doubles the safe worst-case dot-product");
    println!("length at a near-linear area cost in the accumulator register/adder.");
}
