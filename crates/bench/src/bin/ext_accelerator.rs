//! **Extension study**: whole-model accelerator cost. Combines the
//! per-MAC energy measured on the gate-level units (Fig. 7 methodology),
//! the tile clock frequency from static timing, and the per-model MAC
//! counts from the profiler — yielding inference latency and compute
//! energy per model per format. This is the paper's conclusion ("deep
//! learning acceleration using MERSIT") made quantitative end to end.

#![allow(
    clippy::pedantic,
    clippy::string_slice,
    clippy::unusual_byte_groupings,
    clippy::type_complexity
)]

use mersit_bench::trained_dnn_operands;
use mersit_core::parse_format;
use mersit_hw::{decoder_for, mac_cost};
use mersit_netlist::TimingReport;
use mersit_nn::{profile_model, vision_zoo};
use mersit_tensor::{Rng, Tensor};

const LANES: usize = 64; // accelerator tile: 64 MACs

struct FormatCost {
    name: &'static str,
    pj_per_mac: f64,
    fmax_mhz: f64,
    mac_area_um2: f64,
}

fn main() {
    let ops = trained_dnn_operands(0xACCE1, 4000);
    // Per-format MAC characteristics from the gate-level units.
    let mut costs = Vec::new();
    for name in ["FP(8,4)", "Posit(8,1)", "MERSIT(8,2)"] {
        let dec = decoder_for(name).expect("hardware format");
        let fmt = parse_format(name).expect("valid");
        let stream = ops.encode_scaled(fmt.as_ref(), 2000);
        let c = mac_cost(dec.as_ref(), &stream, 64);
        let mac = mersit_hw::MacUnit::build(dec.as_ref());
        let t = TimingReport::of(&mac.netlist);
        costs.push(FormatCost {
            name,
            // µW at 100 MHz → pJ per operation.
            pj_per_mac: c.total.power_uw / 100.0,
            fmax_mhz: t.fmax_mhz,
            mac_area_um2: c.total.area_um2,
        });
    }

    println!("=== Extension: accelerator-level cost ({LANES}-MAC tile) ===\n");
    println!(
        "{:<14} {:>10} {:>10} {:>12}",
        "Format", "pJ/MAC", "fmax MHz", "tile mm^2"
    );
    mersit_bench::hr(50);
    for c in &costs {
        println!(
            "{:<14} {:>10.3} {:>10.0} {:>12.4}",
            c.name,
            c.pj_per_mac,
            c.fmax_mhz,
            c.mac_area_um2 * LANES as f64 / 1e6
        );
    }

    // Per-model workloads (batch 1).
    let mut rng = Rng::new(0xACCE2);
    let x = Tensor::randn(&[1, 3, 12, 12], 1.0, &mut rng);
    println!(
        "\n{:<20} {:>10} {:>8}   energy uJ / latency us per format",
        "Model", "MACs", "params"
    );
    mersit_bench::hr(96);
    for model in vision_zoo(12, 10, 0xBEEF) {
        let p = profile_model(&model, &x);
        let macs = p.macs_per_sample();
        print!("{:<20} {:>10} {:>8}  ", p.model, macs, p.total_params());
        for c in &costs {
            let energy_uj = macs as f64 * c.pj_per_mac / 1e6;
            let latency_us = macs as f64 / (LANES as f64 * c.fmax_mhz);
            print!(" {:>6.3}/{:<7.3}", energy_uj, latency_us);
        }
        println!();
    }
    println!("\n(columns: FP(8,4), Posit(8,1), MERSIT(8,2))");
    let posit = &costs[1];
    let mersit = &costs[2];
    println!(
        "\nMERSIT vs Posit at model level: {:.1}% less energy, {:.1}% faster at fmax",
        100.0 * (1.0 - mersit.pj_per_mac / posit.pj_per_mac),
        100.0 * (mersit.fmax_mhz / posit.fmax_mhz - 1.0),
    );
}
