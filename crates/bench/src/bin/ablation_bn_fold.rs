//! **Ablation A3**: batch-norm folding before PTQ. Folding the trained BN
//! scales into the convolution weights widens the per-channel weight
//! spread (the mechanism behind the real MobileNet rows of Table 2) and
//! lets per-channel weight scaling show its value. This study compares
//! PTQ accuracy with and without folding on the depthwise models.

#![allow(
    clippy::pedantic,
    clippy::string_slice,
    clippy::unusual_byte_groupings,
    clippy::type_complexity
)]

use mersit_core::{parse_format, FormatRef};
use mersit_nn::layer::Layer;
use mersit_nn::models::{mobilenet_v2_t, mobilenet_v3_t, Model};
use mersit_nn::{synthetic_images, train_classifier, Optimizer, TrainConfig};
use mersit_ptq::{evaluate_model, Metric};
use mersit_tensor::Rng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n_train, epochs) = if quick { (600, 4) } else { (1500, 6) };
    let ds = synthetic_images(0xB17F, n_train, 300, 10);
    let formats: Vec<FormatRef> = ["INT8", "FP(8,4)", "FP(8,5)", "Posit(8,1)", "MERSIT(8,2)"]
        .iter()
        .map(|n| parse_format(n).expect("valid"))
        .collect();

    println!("=== Ablation: batch-norm folding before PTQ ===\n");
    let builders: [(&str, fn(usize, usize, &mut Rng) -> Model); 2] = [
        ("mobilenet_v2_t", mobilenet_v2_t),
        ("mobilenet_v3_t", mobilenet_v3_t),
    ];
    for (name, build) in builders {
        let mut rng = Rng::new(0xB17E);
        let mut model = build(10, 10, &mut rng);
        let cfg = TrainConfig {
            epochs,
            batch_size: 32,
            opt: Optimizer::adam(2e-3),
            ..TrainConfig::default()
        };
        train_classifier(&mut model.net, &ds.train, &cfg);

        let (plain, _) = evaluate_model(&mut model, &ds, &formats, Metric::Accuracy, 50);
        model.net.fold_bn();
        let (folded, _) = evaluate_model(&mut model, &ds, &formats, Metric::Accuracy, 50);

        println!(
            "{name}  (fp32: plain {:.1}%, folded {:.1}%)",
            plain.fp32, folded.fp32
        );
        println!(
            "  {:<14} {:>8} {:>8} {:>8}",
            "format", "plain", "folded", "delta"
        );
        for f in &formats {
            let p = plain.score_of(&f.name()).expect("scored");
            let q = folded.score_of(&f.name()).expect("scored");
            println!("  {:<14} {:>8.1} {:>8.1} {:>+8.1}", f.name(), p, q, q - p);
        }
        println!();
    }
    println!("Reading: folding concentrates the BN channel scales into the conv");
    println!("weights; per-channel weight scaling absorbs most of the spread, so");
    println!("robust formats hold, while low-precision formats feel the wider");
    println!("per-channel ranges — the mechanism behind the paper's MobileNet rows.");
}
