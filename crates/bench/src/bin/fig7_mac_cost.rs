//! Regenerates **Fig. 7**: area and power of the full MAC units for
//! FP(8,4), Posit(8,1) and MERSIT(8,2), synthesized to the 45 nm-class
//! cell model and exercised with actual DNN operand streams at 100 MHz.

#![allow(
    clippy::pedantic,
    clippy::string_slice,
    clippy::unusual_byte_groupings,
    clippy::type_complexity
)]

use mersit_bench::trained_dnn_operands;
use mersit_core::parse_format;
use mersit_hw::{decoder_for, mac_cost, MacBreakdown};

fn bar(v: f64, scale: f64) -> String {
    "#".repeat((v / scale).round() as usize)
}

fn main() {
    let ops = trained_dnn_operands(0xF16_7, 4000);
    let names = ["FP(8,4)", "Posit(8,1)", "MERSIT(8,2)"];
    let mut rows: Vec<MacBreakdown> = Vec::new();
    for name in names {
        let dec = decoder_for(name).expect("hardware format");
        let fmt = parse_format(name).expect("valid");
        let stream = ops.encode_scaled(fmt.as_ref(), 2000);
        rows.push(mac_cost(dec.as_ref(), &stream, 64));
    }

    println!("=== Fig. 7: MAC area and power (45nm-class, 100 MHz, real DNN data) ===\n");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>11} {:>10}",
        "Format", "mult um^2", "align um^2", "acc um^2", "TOTAL um^2", "TOTAL uW", "acc bits"
    );
    mersit_bench::hr(82);
    for r in &rows {
        println!(
            "{:<14} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>11.2} {:>10}",
            r.name,
            r.multiplier.area_um2,
            r.aligner.area_um2,
            r.accumulator.area_um2,
            r.total.area_um2,
            r.total.power_uw,
            r.acc_width
        );
    }

    let amax = rows.iter().map(|r| r.total.area_um2).fold(0.0, f64::max);
    let pmax = rows.iter().map(|r| r.total.power_uw).fold(0.0, f64::max);
    println!("\narea  (one # = {:.0} um^2)", amax / 40.0);
    for r in &rows {
        println!("  {:<14} {}", r.name, bar(r.total.area_um2, amax / 40.0));
    }
    println!("power (one # = {:.2} uW)", pmax / 40.0);
    for r in &rows {
        println!("  {:<14} {}", r.name, bar(r.total.power_uw, pmax / 40.0));
    }

    let posit = &rows[1];
    let mersit = &rows[2];
    let fp = &rows[0];
    println!();
    println!(
        "MERSIT(8,2) vs Posit(8,1): area -{:.1}%  power -{:.1}%   (paper: -26.6% / -22.2%)",
        100.0 * (1.0 - mersit.total.area_um2 / posit.total.area_um2),
        100.0 * (1.0 - mersit.total.power_uw / posit.total.power_uw),
    );
    println!(
        "MERSIT(8,2) vs FP(8,4):    area +{:.1}%  power {:+.1}%   (paper: +11% / ~par)",
        100.0 * (mersit.total.area_um2 / fp.total.area_um2 - 1.0),
        100.0 * (mersit.total.power_uw / fp.total.power_uw - 1.0),
    );
}
