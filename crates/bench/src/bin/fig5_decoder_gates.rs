//! Regenerates **Fig. 5**: the merged decoding scheme — cell counts and
//! areas of the decoder sub-blocks (EC AND gates, first-zero LZD,
//! `k×(2^es−1)` unit, coarse shifter) and the full decoder comparison
//! against Posit and FP8, including structural Verilog dumps.

#![allow(
    clippy::pedantic,
    clippy::string_slice,
    clippy::unusual_byte_groupings,
    clippy::type_complexity
)]

use mersit_core::Mersit;
use mersit_hw::lzd::{first_zero_detector, k_times_scale};
use mersit_hw::{decoder_for, standalone_decoder};
use mersit_netlist::{to_verilog, AreaReport, Bus, Netlist, TimingReport};

fn main() {
    println!("=== Fig. 5b: the two 'challenging' MERSIT(8,2) sub-blocks ===\n");

    // 3-bit first-zero detector over the EC AND flags.
    let mut nl = Netlist::new("lzd3");
    let f = nl.input("flags", 3);
    let fz = first_zero_detector(&mut nl, &[f.bit(0), f.bit(1), f.bit(2)]);
    nl.output("idx", &fz.index);
    nl.output("none", &Bus(vec![fz.none]));
    let a = AreaReport::of(&nl);
    println!(
        "3-bit LZD unit: {} cells, {:.2} um^2",
        nl.gates().len(),
        a.total_um2
    );
    for (cell, n) in &a.by_cell {
        println!("    {cell}: {n}");
    }

    // k × 3 unit (es = 2).
    let mut nl = Netlist::new("kx3");
    let k = nl.input("k", 3);
    let r = k_times_scale(&mut nl, &k, 2, 5);
    nl.output("r", &r);
    let a = AreaReport::of(&nl);
    println!(
        "\nk x (2^es - 1) unit (es=2): {} cells, {:.2} um^2",
        nl.gates().len(),
        a.total_um2
    );
    for (cell, n) in &a.by_cell {
        println!("    {cell}: {n}");
    }

    println!("\n=== Full decoder comparison (both operands' worth = 1 decoder each) ===\n");
    println!(
        "{:<14} {:>7} {:>12} {:>14} {:>8}",
        "Decoder", "cells", "area um^2", "crit path ps", "levels"
    );
    mersit_bench::hr(60);
    for name in ["FP(8,4)", "Posit(8,1)", "MERSIT(8,2)", "MERSIT(8,3)"] {
        let dec = decoder_for(name).expect("hardware format");
        let (nl, _, _) = standalone_decoder(dec.as_ref());
        let a = AreaReport::of(&nl);
        let t = TimingReport::of(&nl);
        println!(
            "{name:<14} {:>7} {:>12.1} {:>14.0} {:>8}",
            nl.gates().len(),
            a.total_um2,
            t.critical_path_ps,
            t.levels
        );
    }
    println!("\n(S4.1: \"our decoder having a shorter critical path than the Posit one\")");

    // The write-back path: the MERSIT(8,2) requantizer (encoder).
    let rq = mersit_hw::MersitRequantizer::build(24, -12);
    let ra = AreaReport::of(&rq.netlist);
    let rt = TimingReport::of(&rq.netlist);
    println!(
        "\nMERSIT(8,2) requantizer (24-bit fixed-point -> code): {} cells, {:.1} um^2, {:.0} ps",
        rq.netlist.gates().len(),
        ra.total_um2,
        rt.critical_path_ps
    );

    // Verilog artifact for the MERSIT decoder.
    let dec = mersit_hw::MersitDecoder::new(Mersit::new(8, 2).expect("valid"));
    let (nl, _, _) = standalone_decoder(&dec);
    let v = to_verilog(&nl);
    let path = "target/mersit82_decoder.v";
    if std::fs::write(path, &v).is_ok() {
        println!(
            "\nstructural Verilog written to {path} ({} lines)",
            v.lines().count()
        );
    }
}
