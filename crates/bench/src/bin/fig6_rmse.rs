//! Regenerates **Fig. 6**: the quantization RMSE of FP(8,4), Posit(8,1)
//! and MERSIT(8,2) on the ResNet50-, MobileNetV3- and EfficientNet-B0-style
//! models (weights per-channel, activations per-layer with calibrated
//! scales).

#![allow(
    clippy::pedantic,
    clippy::string_slice,
    clippy::unusual_byte_groupings,
    clippy::type_complexity
)]

use mersit_core::parse_format;
use mersit_nn::models::{efficientnet_b0_t, mobilenet_v3_t, resnet50_t};
use mersit_nn::{synthetic_images, train_classifier, Model, TrainConfig};
use mersit_ptq::{calibrate, rmse_report, RmseReport};
use mersit_tensor::Rng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n_train, epochs) = if quick { (600, 3) } else { (2000, 6) };
    let hw = 12;
    let ds = synthetic_images(0xF16_6, n_train, 200, hw);
    let formats = ["FP(8,4)", "Posit(8,1)", "MERSIT(8,2)"];
    let builders: [(&str, fn(usize, usize, &mut Rng) -> Model); 3] = [
        ("resnet50_t", resnet50_t),
        ("mobilenet_v3_t", mobilenet_v3_t),
        ("efficientnet_b0_t", efficientnet_b0_t),
    ];

    let mut all: Vec<RmseReport> = Vec::new();
    for (name, build) in builders {
        let mut rng = Rng::new(0x6F16);
        let mut model = build(hw, 10, &mut rng);
        let cfg = TrainConfig {
            epochs,
            ..TrainConfig::default()
        };
        train_classifier(&mut model.net, &ds.train, &cfg);
        let cal = calibrate(&model, &ds.calib.inputs, 32);
        for f in formats {
            let fmt = parse_format(f).expect("valid");
            let r = rmse_report(
                &mut model,
                &cal,
                fmt.as_ref(),
                &ds.test.inputs.slice_outer(0, 64),
                32,
            );
            all.push(r);
        }
        println!("profiled {name}");
    }

    println!("\n=== Fig. 6: Relative RMSE comparison ===\n");
    println!(
        "{:<20} {:>12} {:>12} {:>12}",
        "Model", "FP(8,4)", "Posit(8,1)", "MERSIT(8,2)"
    );
    mersit_bench::hr(60);
    for (kind, pick) in [("weights", 0usize), ("activations", 1), ("combined", 2)] {
        println!("[{kind}]");
        for (name, _) in builders {
            let vals: Vec<f64> = formats
                .iter()
                .map(|f| {
                    let r = all
                        .iter()
                        .find(|r| r.model == name && r.format == *f)
                        .expect("computed");
                    match pick {
                        0 => r.weight_rmse,
                        1 => r.act_rmse,
                        _ => r.combined(),
                    }
                })
                .collect();
            println!(
                "{:<20} {:>12.4} {:>12.4} {:>12.4}",
                name, vals[0], vals[1], vals[2]
            );
        }
    }
    println!();
    println!("Paper shape: MERSIT(8,2) RMSE slightly better than or comparable to");
    println!("Posit(8,1), and notably lower than FP(8,4).");
}
