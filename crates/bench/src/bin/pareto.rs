//! **Accuracy ↔ hardware-cost Pareto search**: trains vision models with
//! the Table-2 protocol, then runs the sensitivity-ordered greedy
//! demotion search ([`mersit_ptq::greedy_search`]) from the all-MERSIT
//! corner, pricing every candidate assignment with the gate-level MAC
//! roll-up (`mersit_hw::assignment_cost` weighted by
//! [`mersit_ptq::layer_macs`]). Emits `BENCH_pareto.json` with uniform
//! baselines, the search trajectory, Pareto-front flags, and which
//! uniform non-MERSIT formats each mixed point dominates.
//!
//! Set `MERSIT_ASSIGN` to additionally score a pinned assignment spec
//! (e.g. `MERSIT(8,2);0_conv=FP(8,4)`).
//!
//! Usage: `cargo run --release -p mersit-bench --bin pareto [-- --quick]`

#![allow(
    clippy::pedantic,
    clippy::string_slice,
    clippy::unusual_byte_groupings,
    clippy::type_complexity
)]

use mersit_core::{parse_format, FormatRef};
use mersit_nn::models::{mobilenet_v3_t, vgg_t, Model};
use mersit_nn::{synthetic_images, train_classifier, Optimizer, TrainConfig};
use mersit_ptq::{
    evaluate_model, greedy_search, layer_macs, layer_sensitivity, pareto_front, Executor,
    FormatAssignment, Metric, ParetoPoint, SearchConfig,
};
use mersit_tensor::{par, Rng};
use std::fmt::Write as _;
use std::time::Instant;

/// One priced-and-scored uniform corner (or pinned assignment).
struct UniformPoint {
    format: String,
    accuracy: f64,
    area_um2: f64,
    power_uw: f64,
}

/// One search point with its front flag and dominance list.
struct FrontPoint {
    point: ParetoPoint,
    on_front: bool,
    dominates: Vec<String>,
}

struct ModelReport {
    model: String,
    fp32: f64,
    table2_mersit: f64,
    uniform: Vec<UniformPoint>,
    pinned: Vec<UniformPoint>,
    front: Vec<FrontPoint>,
}

fn main() {
    mersit_obs::init_from_env();
    let quick = std::env::args().any(|a| a == "--quick");
    let (hw, n_train, n_test, epochs, pool, stream_dot) = if quick {
        (10, 800, 250, 4, 300, 32)
    } else {
        (12, 1400, 600, 6, 2000, 32)
    };
    let threads = par::pool_size();
    let t0 = Instant::now();

    // Operand pools from an independently trained model: the "actual DNN
    // data" every MAC simulation shares (one gate-level sim per format,
    // memoized across the whole run).
    let ops = mersit_bench::trained_dnn_operands(0x0DA7A, pool);
    let mut cache = mersit_hw::MacCostCache::new(ops.weights, ops.activations, stream_dot);

    let base = parse_format("MERSIT(8,2)").expect("valid");
    // Uniform corners to score and price: the base plus the alternatives
    // whose MAC fits the gate-level simulator (wide-range formats like
    // FP(8,5) / Posit(8,3) blow the 63-bit Kulisch simulation limit).
    let uniform_fmts: Vec<FormatRef> = [
        "MERSIT(8,2)",
        "FP(8,4)",
        "FP(8,3)",
        "Posit(8,1)",
        "Posit(8,0)",
    ]
    .iter()
    .map(|n| parse_format(n).expect("valid"))
    .collect();
    // Demotion candidates for the greedy search (cheapest-area first is
    // established by the search itself; Posits are priced out).
    let cfg = SearchConfig {
        candidates: uniform_fmts[1..].to_vec(),
        tolerance: 0.8,
        max_swaps: if quick { 4 } else { 8 },
    };
    let executor = Executor::from_env();
    let pinned_assign = FormatAssignment::from_env().expect("MERSIT_ASSIGN parses");

    let ds = synthetic_images(0x1A6E, n_train, n_test, hw);
    println!(
        "pareto search on {} ({} train / {} test, {} threads){}\n",
        ds.name,
        n_train,
        n_test,
        threads,
        if quick { " [quick]" } else { "" }
    );

    let builders: [(&str, fn(usize, usize, &mut Rng) -> Model); 2] =
        [("vgg_t", vgg_t), ("mobilenet_v3_t", mobilenet_v3_t)];
    let mut reports = Vec::new();
    for (name, build) in builders {
        let t1 = Instant::now();
        let mut rng = Rng::new(0xBEEF ^ name.len() as u64);
        let mut model = build(hw, 10, &mut rng);
        let cfg_train = TrainConfig {
            epochs,
            batch_size: 32,
            opt: Optimizer::adam(2e-3),
            ..TrainConfig::default()
        };
        train_classifier(&mut model.net, &ds.train, &cfg_train);

        // Uniform sweep: Table-2 protocol, one plan per corner format.
        let (row, cal) = evaluate_model(&mut model, &ds, &uniform_fmts, Metric::Accuracy, 50);
        let table2_mersit = row.score_of(&base.name()).expect("base scored");

        // Per-layer MAC weights and the cost closure over the roll-up.
        let macs = layer_macs(&model, &ds.test.inputs.slice_outer(0, 1));
        let mut cost = |a: &FormatAssignment| -> Option<(f64, f64)> {
            let layers: Vec<(FormatRef, u64)> = macs
                .iter()
                .map(|l| (a.format_for(&l.path).clone(), l.macs))
                .collect();
            mersit_hw::assignment_cost(&mut cache, &layers)
                .ok()
                .map(|c| (c.area_um2, c.power_uw))
        };

        let uniform: Vec<UniformPoint> = row
            .scores
            .iter()
            .filter_map(|s| {
                let fmt = parse_format(&s.format).expect("valid");
                let (area_um2, power_uw) = cost(&FormatAssignment::uniform(fmt))?;
                Some(UniformPoint {
                    format: s.format.clone(),
                    accuracy: s.score,
                    area_um2,
                    power_uw,
                })
            })
            .collect();

        // Demotion order: least-sensitive GEMM layers first.
        let sens = layer_sensitivity(&model, &cal, &base, &ds.calib.inputs, 50);
        let mut order: Vec<(f64, String)> = sens
            .iter()
            .filter(|s| macs.iter().any(|l| l.path == s.path && l.macs > 0))
            .map(|s| (s.score(), s.path.clone()))
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut seen = std::collections::HashSet::new();
        let order: Vec<String> = order
            .into_iter()
            .filter(|(_, p)| seen.insert(p.clone()))
            .map(|(_, p)| p)
            .collect();

        let points = greedy_search(
            &model,
            &cal,
            &base,
            &order,
            &ds.test.inputs,
            &ds.test.labels,
            Metric::Accuracy,
            50,
            executor,
            &cfg,
            &mut cost,
        );
        assert_eq!(
            points.first().map(|p| p.accuracy),
            Some(table2_mersit),
            "all-MERSIT corner must reproduce the Table-2 accuracy"
        );
        let flags = pareto_front(&points);
        let front: Vec<FrontPoint> = points
            .into_iter()
            .zip(flags)
            .map(|(point, on_front)| {
                let dominates = uniform
                    .iter()
                    .filter(|u| {
                        u.format != base.name()
                            && point.accuracy >= u.accuracy
                            && point.area_um2 <= u.area_um2
                            && (point.accuracy > u.accuracy || point.area_um2 < u.area_um2)
                    })
                    .map(|u| u.format.clone())
                    .collect();
                FrontPoint {
                    point,
                    on_front,
                    dominates,
                }
            })
            .collect();

        let pinned: Vec<UniformPoint> = pinned_assign
            .iter()
            .filter_map(|a| {
                let (area_um2, power_uw) = cost(a)?;
                Some(UniformPoint {
                    format: a.name(),
                    accuracy: mersit_ptq::assignment_score(
                        &model,
                        a,
                        &cal,
                        &ds.test.inputs,
                        &ds.test.labels,
                        Metric::Accuracy,
                        50,
                        executor,
                    ),
                    area_um2,
                    power_uw,
                })
            })
            .collect();

        println!(
            "  {:<16} fp32 {:5.1}  MERSIT {:5.1}  ({} layers, {} search points, {:.0?})",
            name,
            row.fp32,
            table2_mersit,
            order.len(),
            front.len(),
            t1.elapsed()
        );
        for u in &uniform {
            println!(
                "    uniform {:<12} acc {:5.1}  area {:8.1} um2/MAC  power {:7.2} uW/MAC",
                u.format, u.accuracy, u.area_um2, u.power_uw
            );
        }
        for f in &front {
            println!(
                "    swaps {:>2}  acc {:5.1}  area {:8.1}  {}{}{}",
                f.point.swaps,
                f.point.accuracy,
                f.point.area_um2,
                if f.on_front { "front" } else { "     " },
                if f.dominates.is_empty() {
                    String::new()
                } else {
                    format!("  dominates {}", f.dominates.join(", "))
                },
                if f.point.assignment.is_uniform() {
                    String::new()
                } else {
                    format!("  [{}]", f.point.assignment.name())
                }
            );
        }
        reports.push(ModelReport {
            model: name.to_owned(),
            fp32: row.fp32,
            table2_mersit,
            uniform,
            pinned,
            front,
        });
    }

    let dominating_mixed = reports
        .iter()
        .flat_map(|r| &r.front)
        .filter(|f| f.point.swaps > 0 && !f.dominates.is_empty())
        .count();
    println!(
        "\n{} mixed points strictly dominate a uniform non-MERSIT corner ({:.0?} total, {} MAC sims, {} cache hits)",
        dominating_mixed,
        t0.elapsed(),
        cache.misses(),
        cache.hits()
    );

    write_pareto_json(&reports, quick, threads, stream_dot, &cache);
    if let Ok(Some(path)) = mersit_obs::report::write_global_report("pareto") {
        println!("wrote {path}");
    }
}

fn write_uniform_entries(json: &mut String, points: &[UniformPoint]) {
    for (i, u) in points.iter().enumerate() {
        let _ = write!(
            json,
            "        {{\"format\": \"{}\", \"accuracy\": {:.4}, \
             \"area_um2_per_mac\": {:.4}, \"power_uw_per_mac\": {:.4}}}",
            u.format, u.accuracy, u.area_um2, u.power_uw
        );
        json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
}

/// Hand-rolled deterministic JSON, like the other bench artifacts.
fn write_pareto_json(
    reports: &[ModelReport],
    quick: bool,
    threads: usize,
    dot_len: usize,
    cache: &mersit_hw::MacCostCache,
) {
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"dot_len\": {dot_len},");
    let _ = writeln!(json, "  \"mac_sims\": {},", cache.misses());
    let _ = writeln!(json, "  \"mac_cache_hits\": {},", cache.hits());
    json.push_str("  \"models\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let _ = writeln!(json, "    {{\n      \"model\": \"{}\",", r.model);
        let _ = writeln!(json, "      \"fp32\": {:.4},", r.fp32);
        let _ = writeln!(json, "      \"table2_mersit\": {:.4},", r.table2_mersit);
        json.push_str("      \"uniform\": [\n");
        write_uniform_entries(&mut json, &r.uniform);
        json.push_str("      ],\n      \"pinned\": [\n");
        write_uniform_entries(&mut json, &r.pinned);
        json.push_str("      ],\n      \"front\": [\n");
        for (j, f) in r.front.iter().enumerate() {
            let doms: Vec<String> = f.dominates.iter().map(|d| format!("\"{d}\"")).collect();
            let _ = write!(
                json,
                "        {{\"assignment\": \"{}\", \"swaps\": {}, \"accuracy\": {:.4}, \
                 \"area_um2_per_mac\": {:.4}, \"power_uw_per_mac\": {:.4}, \
                 \"on_front\": {}, \"dominates\": [{}]}}",
                f.point.assignment.name(),
                f.point.swaps,
                f.point.accuracy,
                f.point.area_um2,
                f.point.power_uw,
                f.on_front,
                doms.join(", ")
            );
            json.push_str(if j + 1 < r.front.len() { ",\n" } else { "\n" });
        }
        json.push_str("      ]\n    }");
        json.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_pareto.json", &json).expect("write BENCH_pareto.json");
    println!("wrote BENCH_pareto.json");
}
