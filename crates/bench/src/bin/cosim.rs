//! Hardware/software co-simulation smoke: trains one small vision model,
//! runs the **bit-true** executor against the float executor on every
//! hardware format (FP(8,4), Posit(8,1), MERSIT(8,2)), spot-checks the
//! scalar engine against the `mersit-hw` golden MAC on random code
//! streams, and writes the per-site divergence report the CI schema gate
//! diffs.
//!
//! Usage: `cargo run --release --bin cosim [-- --quick]`
//!
//! Artifacts: `COSIM_report.json` (divergence summaries, deterministic
//! key structure — `ci/cosim_schema.txt` pins the site/format key set).
//! Set `MERSIT_OBS=1` to also emit `OBS_cosim.json` with
//! `ptq.bittrue.*` / `ptq.coverify.*` spans and histograms.

use mersit_core::fixpoint::{v_ovf_for, FixTable};
use mersit_core::hardware_formats;
use mersit_hw::GoldenMac;
use mersit_nn::models::vgg_t;
use mersit_nn::{synthetic_images, train_classifier, TrainConfig};
use mersit_ptq::{calibrate, coverify, dot_bit_true};
use mersit_tensor::Rng;

fn main() {
    mersit_obs::init_from_env();
    let quick = std::env::args().any(|a| a == "--quick");
    let (n_train, n_test, epochs) = if quick { (240, 48, 2) } else { (800, 120, 4) };

    // --- 1. One small trained model --------------------------------------
    let mut rng = Rng::new(0xC051);
    let mut model = vgg_t(8, 10, &mut rng);
    let ds = synthetic_images(0xC051, n_train, n_test, 8);
    let cfg = TrainConfig {
        epochs,
        batch_size: 32,
        ..TrainConfig::default()
    };
    train_classifier(&mut model.net, &ds.train, &cfg);
    let cal = calibrate(&model, &ds.calib.inputs, 16);
    println!(
        "cosim: model {} | {} calibration sites | {} test samples\n",
        model.name,
        cal.num_sites(),
        ds.test.inputs.shape()[0]
    );

    // --- 2. Golden-MAC spot checks ---------------------------------------
    println!("golden differential (scalar engine vs mersit-hw GoldenMac):");
    let mut code_rng = Rng::new(0xD1FF);
    for fmt in hardware_formats() {
        let table = FixTable::build(fmt.as_ref()).expect("hardware formats have i64 tables");
        let mut dots = 0usize;
        for len in [1usize, 7, 64] {
            for _ in 0..8 {
                let gen = |rng: &mut Rng| -> Vec<u16> {
                    (0..len).map(|_| (rng.next_u64() & 0xFF) as u16).collect()
                };
                let (w, a) = (gen(&mut code_rng), gen(&mut code_rng));
                let acc_width = table.acc_width(v_ovf_for(len));
                let mut golden = GoldenMac::new(fmt.as_ref(), acc_width);
                for (&wc, &ac) in w.iter().zip(&a) {
                    golden.mac(wc, ac);
                }
                let engine = dot_bit_true(&table, &w, &a, acc_width);
                assert_eq!(
                    engine,
                    golden.acc_wrapped(),
                    "{}: engine diverged from golden MAC",
                    fmt.name()
                );
                dots += 1;
            }
        }
        println!(
            "  {:<12} {dots} random dot products bit-identical",
            fmt.name()
        );
    }

    // --- 3. Executor co-verification --------------------------------------
    println!("\nfloat vs bit-true executors (per-site divergence):");
    println!(
        "  {:<12} {:>5} {:>14} {:>14} {:>10}",
        "format", "sites", "worst site", "logits", "agreement"
    );
    let mut reports = Vec::new();
    for fmt in hardware_formats() {
        let report = coverify(&model, fmt, &cal, &ds.test.inputs, 16);
        println!(
            "  {:<12} {:>5} {:>14.6e} {:>14.6e} {:>9.1}%",
            report.format,
            report.sites.len(),
            report.worst_site_divergence(),
            report.logits_max_abs,
            100.0 * report.agreement
        );
        assert!(
            report.agreement >= 0.5,
            "{}: executors disagree on most predictions",
            report.format
        );
        reports.push(report);
    }

    // --- 4. Artifacts ------------------------------------------------------
    let mut json = String::from("{\n\"reports\": [\n");
    for (i, r) in reports.iter().enumerate() {
        json.push_str(&r.to_json());
        if i + 1 < reports.len() {
            json.push_str(",\n");
        }
    }
    json.push_str("]\n}\n");
    std::fs::write("COSIM_report.json", &json).expect("write COSIM_report.json");
    println!("\nwrote COSIM_report.json ({} formats)", reports.len());

    match mersit_obs::report::write_global_report("cosim") {
        Ok(Some(path)) => println!("wrote {path}"),
        Ok(None) => {}
        Err(e) => eprintln!("obs report write failed: {e}"),
    }
}
