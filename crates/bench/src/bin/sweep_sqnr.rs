//! **Extension study**: signal-to-quantization-noise ratio (SQNR) of every
//! 8-bit format as the data distribution hardens — Gaussian with an
//! increasing fraction of large outliers (the activation regime of modern
//! DNNs). Makes the Table 2 crossovers visible as a single sweep:
//! flat-precision formats win on clean data; tapered formats win once
//! outliers force the scale up.

#![allow(
    clippy::pedantic,
    clippy::string_slice,
    clippy::unusual_byte_groupings,
    clippy::type_complexity
)]

use mersit_core::{table2_formats, Format};
use mersit_ptq::scale_anchor;
use mersit_tensor::Rng;

/// SQNR in dB of quantizing `data` with max-calibrated scaling.
fn sqnr_db(fmt: &dyn Format, data: &[f64]) -> f64 {
    let max = data.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    let s = max / scale_anchor(fmt);
    let mut sig = 0.0;
    let mut noise = 0.0;
    for &v in data {
        let q = fmt.quantize(v / s) * s;
        sig += v * v;
        noise += (q - v) * (q - v);
    }
    if noise == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (sig / noise).log10()
    }
}

fn main() {
    let mut rng = Rng::new(0x509);
    let n = 20_000;
    let base: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
    // Outlier magnitudes: log-normal tail ~ e^(3+N) (30–3000x the bulk).
    let outlier_mag: Vec<f64> = (0..n).map(|_| (3.0 + rng.normal()).exp()).collect();

    let ratios = [0.0, 1e-4, 1e-3, 1e-2, 0.05, 0.2];
    let formats = table2_formats();

    println!("=== SQNR (dB) vs outlier fraction: Gaussian bulk + log-normal tail ===\n");
    print!("{:<14}", "Format");
    for r in ratios {
        print!(" {r:>9}");
    }
    println!();
    mersit_bench::hr(14 + 10 * ratios.len());
    for fmt in &formats {
        print!("{:<14}", fmt.name());
        for &r in &ratios {
            let mut data = base.clone();
            let k = (n as f64 * r) as usize;
            for (i, v) in data.iter_mut().enumerate().take(k) {
                *v = outlier_mag[i] * v.signum().max(-1.0);
            }
            print!(" {:>9.2}", sqnr_db(fmt.as_ref(), &data));
        }
        println!();
    }
    println!();
    println!("Reading: with no outliers the high-precision formats (Posit(8,0),");
    println!("FP(8,2)) lead; as the outlier fraction grows, max-calibrated scales");
    println!("explode and only wide-dynamic-range tapered formats — Posit(8,1),");
    println!("MERSIT(8,2) — hold SQNR. This is the Table 2 mechanism in isolation.");
}
