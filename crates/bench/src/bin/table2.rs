//! Regenerates **Table 2**: PTQ accuracy of INT8 / FP8 / Posit8 / MERSIT8
//! across the vision model zoo and the BERT-style GLUE-analogue tasks.
//!
//! Models are trained from scratch on the deterministic synthetic datasets
//! (the documented ImageNet/GLUE substitution), then calibrated and
//! evaluated per format with the §4.1 protocol: per-channel weight maxima,
//! per-layer activation maxima, no advanced PTQ techniques.
//!
//! Usage: `cargo run --release -p mersit-bench --bin table2 [-- --quick]`

#![allow(
    clippy::pedantic,
    clippy::string_slice,
    clippy::unusual_byte_groupings,
    clippy::type_complexity
)]

use mersit_core::table2_formats;
use mersit_nn::models::bert_t;
use mersit_nn::{
    glue_like, synthetic_images, train_classifier, vision_zoo, GlueTask, Optimizer, TrainConfig,
    GLUE_SEQ_LEN, GLUE_VOCAB,
};
use mersit_ptq::{evaluate_model, render_table, EvalRow, Metric};
use mersit_tensor::Rng;
use std::time::Instant;

struct Sizes {
    hw: usize,
    n_train: usize,
    n_test: usize,
    epochs: usize,
    glue_train: usize,
    glue_test: usize,
    glue_epochs: usize,
}

fn main() {
    mersit_obs::init_from_env();
    let quick = std::env::args().any(|a| a == "--quick");
    let s = if quick {
        Sizes {
            hw: 10,
            n_train: 800,
            n_test: 250,
            epochs: 4,
            glue_train: 800,
            glue_test: 250,
            glue_epochs: 6,
        }
    } else {
        Sizes {
            hw: 12,
            n_train: 1400,
            n_test: 600,
            epochs: 6,
            glue_train: 2500,
            glue_test: 600,
            glue_epochs: 12,
        }
    };
    let formats = table2_formats();
    let mut rows: Vec<EvalRow> = Vec::new();

    // --- Vision models on the synthetic image task -----------------------
    let ds = synthetic_images(0x1A6E, s.n_train, s.n_test, s.hw);
    println!(
        "training {} vision models on {} ({} train / {} test){}...\n",
        8,
        ds.name,
        s.n_train,
        s.n_test,
        if quick { " [quick]" } else { "" }
    );
    for mut model in vision_zoo(s.hw, 10, 0xBEEF) {
        let t0 = Instant::now();
        let cfg = TrainConfig {
            epochs: s.epochs,
            batch_size: 32,
            opt: Optimizer::adam(2e-3),
            ..TrainConfig::default()
        };
        let losses = train_classifier(&mut model.net, &ds.train, &cfg);
        let (row, _) = evaluate_model(&mut model, &ds, &formats, Metric::Accuracy, 50);
        println!(
            "  {:<20} fp32 {:5.1}%  (loss {:.3} -> {:.3}, {:.0?})",
            row.model,
            row.fp32,
            losses.first().copied().unwrap_or(0.0),
            losses.last().copied().unwrap_or(0.0),
            t0.elapsed()
        );
        rows.push(row);
    }

    // --- BERT-style GLUE-analogue tasks ----------------------------------
    println!("\ntraining bert_t on 4 GLUE-analogue tasks...\n");
    for (task, metric) in [
        (GlueTask::Cola, Metric::Matthews),
        (GlueTask::Mnli, Metric::Accuracy),
        (GlueTask::Mrpc, Metric::F1),
        (GlueTask::Sst2, Metric::Accuracy),
    ] {
        let t0 = Instant::now();
        let gds = glue_like(task, 0x6E0 ^ task as u64, s.glue_train, s.glue_test);
        let mut rng = Rng::new(0xBE27 ^ task as u64);
        let mut model = bert_t(GLUE_VOCAB, GLUE_SEQ_LEN, 32, gds.num_classes, &mut rng);
        model.name = gds.name.clone();
        let cfg = TrainConfig {
            epochs: s.glue_epochs,
            batch_size: 32,
            opt: Optimizer::adam(1e-3),
            ..TrainConfig::default()
        };
        let losses = train_classifier(&mut model.net, &gds.train, &cfg);
        let (row, _) = evaluate_model(&mut model, &gds, &formats, metric, 50);
        println!(
            "  {:<20} fp32 {:5.1}  (loss {:.3} -> {:.3}, {:.0?})",
            row.model,
            row.fp32,
            losses.first().copied().unwrap_or(0.0),
            losses.last().copied().unwrap_or(0.0),
            t0.elapsed()
        );
        rows.push(row);
    }

    println!("\n=== Table 2: PTQ accuracy results ===\n");
    println!("{}", render_table(&rows, &formats));
    println!("Shape anchors from the paper:");
    println!("  * Posit(8,1) and MERSIT(8,2) stay near FP32 on every row;");
    println!("  * narrow-range formats (FP(8,2), Posit(8,0), INT8) collapse on");
    println!("    the h-swish/SiLU/SE models and degrade on GLUE;");
    println!("  * wide-range low-precision formats (FP(8,5), Posit(8,3)) lag on");
    println!("    precision-sensitive depthwise models.");

    if let Ok(Some(path)) = mersit_obs::report::write_global_report("table2") {
        println!("wrote {path}");
    }
}
