//! Throughput trajectory of the batched quantization engine (the
//! `perf_ptq` binary's engine room).
//!
//! Fake-quantizes a ≥1M-element activation buffer through every Table 2
//! format along three paths — the scalar `Format::quantize` loop, the
//! single-threaded `QuantLut` codec, and the LUT with thread fan-out —
//! and writes the elements/sec results to `BENCH_ptq.json` so future
//! optimizations have a baseline to beat.
//!
//! With `MERSIT_OBS=1`, each format × path measurement additionally
//! records a `bench.perf.<path>.<format>` span and the run ends by
//! writing `OBS_perf_ptq.json` (see [`mersit_obs::report`]). The
//! measured buffers are identical either way: instrumentation only
//! observes.

use mersit_core::{quantize_slice_scalar, table2_formats, Format, QuantLut};
use mersit_tensor::par;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Deterministic Gaussian-ish activation buffer (sum of four uniforms).
#[must_use]
pub fn workload(n: usize) -> Vec<f32> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        (state >> 33) as f32 / f32::from_bits(0x4f00_0000) // [0, 1)
    };
    (0..n)
        .map(|_| (next() + next() + next() + next()) * 2.0 - 4.0)
        .collect()
}

/// Times `f` over the buffer, re-seeding it from `src` each repetition,
/// and returns the best elements/sec over `reps` runs (best-of to shave
/// scheduler noise; the buffer reseed is excluded by timing only `f`).
fn best_rate(src: &[f32], reps: usize, mut f: impl FnMut(&mut [f32])) -> f64 {
    let mut buf = src.to_vec();
    let mut best = 0.0f64;
    for _ in 0..reps {
        buf.copy_from_slice(src);
        let t0 = Instant::now();
        f(black_box(&mut buf));
        let dt = t0.elapsed().as_secs_f64();
        best = best.max(src.len() as f64 / dt);
    }
    black_box(&buf);
    best
}

/// One format's measured rates (elements/sec) along the three paths.
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Format name.
    pub format: String,
    /// Scalar `Format::quantize` loop.
    pub scalar: f64,
    /// Single-threaded `QuantLut` codec.
    pub lut: f64,
    /// LUT with thread fan-out.
    pub lut_threads: f64,
}

/// Runs the full sweep, prints the human-readable table, writes
/// `BENCH_ptq.json`, and returns the rows.
///
/// # Panics
///
/// Panics if `n < 2^20` (the measurement is too noisy below ~1M
/// elements) or if `BENCH_ptq.json` cannot be written.
pub fn run_perf_ptq(n: usize) -> Vec<PerfRow> {
    assert!(n >= 1 << 20, "need at least 1M elements for a stable read");
    let threads = par::thread_count();
    let src = workload(n);
    let scale = 0.037; // typical activation scale
    let reps = 3;

    mersit_obs::add("bench.perf.elements", n as u64);
    mersit_obs::add("bench.perf.threads", threads as u64);

    println!("perf_ptq: {n} elements, {threads} threads, scale {scale}");
    println!(
        "{:<14} {:>14} {:>14} {:>14} {:>8} {:>10}",
        "format", "scalar el/s", "lut el/s", "lut+thr el/s", "lut x", "thr x"
    );

    let mut rows = Vec::new();
    for fmt in table2_formats() {
        let fmt: &dyn Format = fmt.as_ref();
        let spec = fmt.quant_spec();
        let lut = QuantLut::build(&spec, scale).expect("supported scale");
        let scalar = {
            let _span = mersit_obs::span_dyn(|| format!("bench.perf.scalar.{}", fmt.name()));
            best_rate(&src, reps, |buf| {
                quantize_slice_scalar(fmt, buf, scale);
            })
        };
        let lut_rate = {
            let _span = mersit_obs::span_dyn(|| format!("bench.perf.lut.{}", fmt.name()));
            best_rate(&src, reps, |buf| lut.apply(buf))
        };
        let thr_rate = {
            let _span = mersit_obs::span_dyn(|| format!("bench.perf.lut_threads.{}", fmt.name()));
            best_rate(&src, reps, |buf| {
                par::par_chunks_mut(buf, 1, par::min_units(8), |_, chunk| lut.apply(chunk));
            })
        };
        println!(
            "{:<14} {:>14.3e} {:>14.3e} {:>14.3e} {:>7.1}x {:>9.1}x",
            fmt.name(),
            scalar,
            lut_rate,
            thr_rate,
            lut_rate / scalar,
            thr_rate / scalar
        );
        rows.push(PerfRow {
            format: fmt.name(),
            scalar,
            lut: lut_rate,
            lut_threads: thr_rate,
        });
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"elements\": {n},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"scale\": {scale},");
    json.push_str("  \"formats\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"format\": \"{}\", \"scalar_elems_per_sec\": {:.4e}, \
             \"lut_elems_per_sec\": {:.4e}, \"lut_threads_elems_per_sec\": {:.4e}, \
             \"lut_speedup\": {:.2}, \"threads_speedup\": {:.2}}}",
            r.format,
            r.scalar,
            r.lut,
            r.lut_threads,
            r.lut / r.scalar,
            r.lut_threads / r.scalar
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_ptq.json", &json).expect("write BENCH_ptq.json");
    println!("wrote BENCH_ptq.json");

    let best = rows.iter().map(|r| r.lut / r.scalar).fold(0.0f64, f64::max);
    println!("best single-threaded LUT speedup: {best:.1}x");
    rows
}
