//! Throughput trajectory of the batched quantization engine (the
//! `perf_ptq` binary's engine room).
//!
//! Fake-quantizes a ≥1M-element activation buffer through every Table 2
//! format along three paths — the scalar `Format::quantize` loop, the
//! single-threaded `QuantLut` codec, and the LUT with thread fan-out —
//! and writes the elements/sec results to `BENCH_ptq.json` so future
//! optimizations have a baseline to beat.
//!
//! With `MERSIT_OBS=1`, each format × path measurement additionally
//! records a `bench.perf.<path>.<format>` span and the run ends by
//! writing `OBS_perf_ptq.json` (see [`mersit_obs::report`]). The
//! measured buffers are identical either way: instrumentation only
//! observes.
//!
//! The run also times the **full PTQ format sweep** both ways — the
//! legacy serial string-path executor (snapshot → mutate → restore per
//! format) against the compiled [`QuantPlan`] sweep, which walks formats
//! in order and fans each one's batch shards and nested GEMMs out across
//! the work-stealing pool — asserts the predictions are bit-identical,
//! and records both wall-clocks under the `"sweep"` key of
//! `BENCH_ptq.json`.
//!
//! With `--repeat R` the whole measurement runs `R` times and the JSON
//! reports the **median** of every rate and the **min** of every
//! wall-clock (plus explicit `*_median` sweep keys), so scheduler jitter
//! from stealing does not pollute the committed baseline.

use mersit_core::{quantize_slice_scalar, table2_formats, Format, FormatRef, QuantLut};
use mersit_nn::models::{mobilenet_v3_t, vgg_t};
use mersit_nn::Model;
use mersit_ptq::{calibrate, evaluate_format, QuantPlan};
use mersit_tensor::{gemm, par, qgemm, Rng, Tensor};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Typical activation scale every throughput row quantizes at.
const QUANT_SCALE: f64 = 0.037;

/// Deterministic Gaussian-ish activation buffer (sum of four uniforms).
#[must_use]
pub fn workload(n: usize) -> Vec<f32> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        (state >> 33) as f32 / f32::from_bits(0x4f00_0000) // [0, 1)
    };
    (0..n)
        .map(|_| (next() + next() + next() + next()) * 2.0 - 4.0)
        .collect()
}

/// Times `f` over the buffer, re-seeding it from `src` each repetition,
/// and returns the best elements/sec over `reps` runs (best-of to shave
/// scheduler noise; the buffer reseed is excluded by timing only `f`).
fn best_rate(src: &[f32], reps: usize, mut f: impl FnMut(&mut [f32])) -> f64 {
    let mut buf = src.to_vec();
    let mut best = 0.0f64;
    for _ in 0..reps {
        buf.copy_from_slice(src);
        let t0 = Instant::now();
        f(black_box(&mut buf));
        let dt = t0.elapsed().as_secs_f64();
        best = best.max(src.len() as f64 / dt);
    }
    black_box(&buf);
    best
}

/// One format's measured rates (elements/sec) along the three paths.
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Format name.
    pub format: String,
    /// Scalar `Format::quantize` loop.
    pub scalar: f64,
    /// Single-threaded `QuantLut` codec.
    pub lut: f64,
    /// LUT with thread fan-out.
    pub lut_threads: f64,
}

/// One format's wall-clock contribution to the sweep, summed over models.
#[derive(Debug, Clone)]
pub struct FormatSweep {
    /// Format name.
    pub format: String,
    /// Serial leg seconds for this format (legacy executor).
    pub serial_secs: f64,
    /// Parallel leg seconds for this format (plan build + predict, all
    /// pool parallelism inside the format).
    pub parallel_secs: f64,
}

/// Serial-vs-parallel wall-clock of the full PTQ format sweep — the
/// before (string-path executor, one format at a time) and after
/// (compiled `QuantPlan`s sharing one read-only model) of the
/// plan refactor.
#[derive(Debug, Clone)]
pub struct SweepBench {
    /// Models swept (each contributes to both legs).
    pub models: Vec<String>,
    /// Number of formats in the sweep grid.
    pub formats: usize,
    /// Evaluation samples per model.
    pub samples: usize,
    /// Threads actually used: the persistent pool's size (workers +
    /// dispatcher), not just the requested `MERSIT_THREADS`.
    pub threads: usize,
    /// Serial leg: legacy `evaluate_format` loop, summed over models.
    pub serial_string_path_secs: f64,
    /// Parallel leg: `QuantPlan` sweep (formats in order, pool
    /// parallelism inside each), summed over models.
    pub parallel_plan_secs: f64,
    /// `serial / parallel`.
    pub speedup: f64,
    /// Median serial-leg seconds across repeats (equals
    /// `serial_string_path_secs` for a single run).
    pub serial_secs_median: f64,
    /// Median parallel-leg seconds across repeats (equals
    /// `parallel_plan_secs` for a single run).
    pub parallel_secs_median: f64,
    /// Per-format wall-clock breakdown (summed over models).
    pub per_format: Vec<FormatSweep>,
}

/// Times the PTQ format sweep serially (legacy mutate-and-restore
/// executor) and in parallel (compiled plans over a shared `&Model`),
/// asserting along the way that both produce bit-identical predictions
/// for every format × model pair.
///
/// `quick` shrinks the grid (4 formats, smaller images/sample counts)
/// for CI smoke runs. Untrained zoo weights are fine here: the sweep
/// exercises exactly the same code paths and the comparison is on
/// predictions and wall-clock, not accuracy.
///
/// # Panics
///
/// Panics if the two executors disagree on any prediction.
pub fn run_sweep_bench(quick: bool) -> SweepBench {
    let _span = mersit_obs::span("bench.sweep");
    let mut formats: Vec<FormatRef> = table2_formats();
    if quick {
        formats.truncate(4);
    }
    let (hw, samples, calib_n, batch) = if quick {
        (8usize, 48usize, 16usize, 16usize)
    } else {
        (10, 96, 32, 24)
    };
    let threads = par::pool_size();
    let mut rng = Rng::new(0xBE7C);
    let mut models = [vgg_t(hw, 10, &mut rng), mobilenet_v3_t(hw, 10, &mut rng)];
    let calib = Tensor::randn(&[calib_n, 3, hw, hw], 1.0, &mut rng);
    let inputs = Tensor::randn(&[samples, 3, hw, hw], 1.0, &mut rng);

    let mut serial_secs = 0.0f64;
    let mut parallel_secs = 0.0f64;
    let mut per_format: Vec<FormatSweep> = formats
        .iter()
        .map(|f| FormatSweep {
            format: f.name(),
            serial_secs: 0.0,
            parallel_secs: 0.0,
        })
        .collect();
    for model in &mut models {
        let cal = calibrate(model, &calib, batch);
        let serial_preds: Vec<Vec<usize>> = {
            let _leg = mersit_obs::span("bench.sweep.serial");
            let t0 = Instant::now();
            let preds = formats
                .iter()
                .zip(&mut per_format)
                .map(|(fmt, pf)| {
                    let f0 = Instant::now();
                    let preds = evaluate_format(model, fmt.as_ref(), &cal, &inputs, batch);
                    pf.serial_secs += f0.elapsed().as_secs_f64();
                    preds
                })
                .collect();
            serial_secs += t0.elapsed().as_secs_f64();
            preds
        };
        // Formats run in order; all pool parallelism lives inside each
        // format (batch shards → nested GEMM tiles), so the per-format
        // wall-clock is a clean latency number, not a time-sliced share
        // of the machine.
        let parallel_preds: Vec<(Vec<usize>, f64)> = {
            let _leg = mersit_obs::span("bench.sweep.parallel");
            let t0 = Instant::now();
            let shared: &Model = model;
            let preds = formats
                .iter()
                .map(|fmt| {
                    let s0 = Instant::now();
                    let plan = QuantPlan::build(shared, fmt.clone(), &cal);
                    let preds = plan.predict(shared, &inputs, batch);
                    (preds, s0.elapsed().as_secs_f64())
                })
                .collect();
            parallel_secs += t0.elapsed().as_secs_f64();
            preds
        };
        for (((fmt, s), (p, secs)), pf) in formats
            .iter()
            .zip(&serial_preds)
            .zip(&parallel_preds)
            .zip(&mut per_format)
        {
            pf.parallel_secs += secs;
            assert_eq!(
                s,
                p,
                "executor mismatch for {} on {}",
                fmt.name(),
                model.name
            );
        }
    }

    let bench = SweepBench {
        models: models.iter().map(|m| m.name.clone()).collect(),
        formats: formats.len(),
        samples,
        threads,
        serial_string_path_secs: serial_secs,
        parallel_plan_secs: parallel_secs,
        speedup: serial_secs / parallel_secs,
        serial_secs_median: serial_secs,
        parallel_secs_median: parallel_secs,
        per_format,
    };
    println!(
        "sweep ({} models x {} formats, {} samples): serial {:.3}s, parallel {:.3}s, {:.2}x ({} threads)",
        bench.models.len(),
        bench.formats,
        bench.samples,
        bench.serial_string_path_secs,
        bench.parallel_plan_secs,
        bench.speedup,
        bench.threads
    );
    bench
}

/// One matmul shape's measured throughput, naive vs packed/blocked.
#[derive(Debug, Clone)]
pub struct GemmRow {
    /// Shape label (where the dims come from in the model zoo).
    pub shape: String,
    /// Output rows.
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Naive i-k-j kernel, MFLOP/s (2·m·n·k flops).
    pub naive_mflops: f64,
    /// Packed cache-blocked kernel incl. per-call pack cost, MFLOP/s.
    pub packed_mflops: f64,
    /// `packed / naive`.
    pub speedup: f64,
}

/// Single-thread matmul throughput: the old naive i-k-j kernel against
/// the packed cache-blocked GEMM (pack cost included), over square and
/// skinny shapes drawn from the model zoo's real layer dims. Kernels are
/// called directly (no `par` dispatch) so this isolates the micro-kernel
/// win, and each shape's outputs are asserted bit-identical first.
#[must_use]
pub fn run_gemm_bench() -> Vec<GemmRow> {
    let _span = mersit_obs::span("bench.gemm");
    // (label, m, k, n): im2col rows × patch × out-channels and the
    // classifier/logits linears of the zoo models at bench size.
    let shapes: [(&str, usize, usize, usize); 5] = [
        ("square_256", 256, 256, 256),
        ("vgg_conv3x3", 2400, 144, 32),
        ("mnv3_conv1x1", 1200, 24, 64),
        ("vgg_classifier", 96, 128, 64),
        ("logits_skinny", 96, 64, 10),
    ];
    let reps = 5;
    println!(
        "{:<16} {:>5} {:>5} {:>5} {:>12} {:>12} {:>8}",
        "gemm shape", "m", "k", "n", "naive MF/s", "packed MF/s", "speedup"
    );
    let mut rows = Vec::new();
    for (label, m, k, n) in shapes {
        let mut rng = Rng::new(0x6E44 ^ (m * 31 + k * 7 + n) as u64);
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal() as f32).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal() as f32).collect();
        let flops = (2 * m * n * k) as f64;

        let mut naive_out = vec![0.0f32; m * n];
        gemm::matmul_naive_rows(&a, k, &b, n, &mut naive_out);
        let packed = gemm::PackedRhs::pack(&b, k, n);
        let mut packed_out = vec![0.0f32; m * n];
        gemm::gemm_rows(&a, k, &packed, &mut packed_out);
        assert_eq!(
            naive_out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            packed_out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "kernels diverged on {label}"
        );

        // Criterion-style batched windows: each timing window runs
        // enough iterations to cover ~0.4 GFLOP, so µs-scale shapes are
        // not at the mercy of timer granularity; best window wins.
        let inner = ((4e8 / flops).ceil() as usize).clamp(1, 10_000);
        let mut out = vec![0.0f32; m * n];
        let mut naive_best = 0.0f64;
        for _ in 0..reps {
            let t0 = Instant::now();
            for _ in 0..inner {
                out.fill(0.0);
                gemm::matmul_naive_rows(black_box(&a), k, black_box(&b), n, black_box(&mut out));
            }
            let rate = flops * inner as f64 / t0.elapsed().as_secs_f64();
            naive_best = naive_best.max(rate);
        }
        let mut packed_best = 0.0f64;
        for _ in 0..reps {
            let t0 = Instant::now();
            for _ in 0..inner {
                out.fill(0.0);
                let p = gemm::PackedRhs::pack(black_box(&b), k, n);
                gemm::gemm_rows(black_box(&a), k, &p, black_box(&mut out));
            }
            let rate = flops * inner as f64 / t0.elapsed().as_secs_f64();
            packed_best = packed_best.max(rate);
        }
        black_box(&out);
        let row = GemmRow {
            shape: label.to_owned(),
            m,
            k,
            n,
            naive_mflops: naive_best / 1e6,
            packed_mflops: packed_best / 1e6,
            speedup: packed_best / naive_best,
        };
        println!(
            "{:<16} {:>5} {:>5} {:>5} {:>12.1} {:>12.1} {:>7.2}x",
            row.shape, m, k, n, row.naive_mflops, row.packed_mflops, row.speedup
        );
        rows.push(row);
    }
    rows
}

/// One integer-matmul shape's measured throughput: the serial i-k-j
/// reference against the packed tiling at the scalar tier and at the
/// process-selected SIMD tier.
#[derive(Debug, Clone)]
pub struct QgemmRow {
    /// Shape label (where the dims come from in the model zoo).
    pub shape: String,
    /// Output rows.
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Serial i-k-j reference kernel, mega-MACs/s (m·n·k MACs).
    pub naive_mmacs: f64,
    /// Packed kernel forced to the scalar tier, mega-MACs/s.
    pub packed_scalar_mmacs: f64,
    /// Packed kernel at the process-selected SIMD tier, mega-MACs/s.
    pub packed_simd_mmacs: f64,
    /// `packed_simd / packed_scalar` — the vector-tile win alone.
    pub simd_speedup: f64,
}

/// Single-thread bit-true integer GEMM throughput: the serial i-k-j
/// reference against the packed i128-accumulating kernel, at the scalar
/// tier and at the process-selected SIMD tier (same shape grid as
/// [`run_gemm_bench`], code magnitudes typical of Table 2 fixed-point
/// tables). All three outputs are asserted exactly equal first —
/// integer addition is associative, so equality is bitwise.
#[must_use]
pub fn run_qgemm_bench() -> Vec<QgemmRow> {
    let _span = mersit_obs::span("bench.qgemm");
    let shapes: [(&str, usize, usize, usize); 5] = [
        ("square_256", 256, 256, 256),
        ("vgg_conv3x3", 2400, 144, 32),
        ("mnv3_conv1x1", 1200, 24, 64),
        ("vgg_classifier", 96, 128, 64),
        ("logits_skinny", 96, 64, 10),
    ];
    let simd = mersit_core::simd_level();
    let scalar = mersit_core::SimdLevel::Scalar;
    let reps = 5;
    println!(
        "{:<16} {:>5} {:>5} {:>5} {:>12} {:>12} {:>12} {:>8}  (isa {})",
        "qgemm shape", "m", "k", "n", "naive MM/s", "scalar MM/s", "simd MM/s", "speedup", simd
    );
    let mut rows = Vec::new();
    for (label, m, k, n) in shapes {
        let mut rng = Rng::new(0x51E0 ^ (m * 31 + k * 7 + n) as u64);
        // Signed codes spanning the fixed-point range real format tables
        // produce (~2^22 for MERSIT(8,2)).
        let mut code = |len: usize| -> Vec<i64> {
            (0..len)
                .map(|_| {
                    let mag = (rng.next_u64() % (1u64 << 22)) as i64;
                    if rng.next_u64() & 1 == 0 {
                        mag
                    } else {
                        -mag
                    }
                })
                .collect()
        };
        let a = code(m * k);
        let b = code(k * n);
        let macs = (m * n * k) as f64;

        let mut naive_out = vec![0i128; m * n];
        qgemm::qgemm_naive_rows(&a, k, &b, n, &mut naive_out);
        let packed = qgemm::PackedCodeRhs::pack(&b, k, n);
        for level in [scalar, simd] {
            let mut got = vec![0i128; m * n];
            qgemm::qgemm_rows_with_level(level, &a, k, &packed, &mut got);
            assert_eq!(
                got, naive_out,
                "qgemm kernels diverged on {label} ({level})"
            );
        }

        let inner = ((2e8 / macs).ceil() as usize).clamp(1, 10_000);
        let mut out = vec![0i128; m * n];
        let mut best = |f: &mut dyn FnMut(&mut [i128])| -> f64 {
            let mut rate = 0.0f64;
            for _ in 0..reps {
                let t0 = Instant::now();
                for _ in 0..inner {
                    out.fill(0);
                    f(black_box(&mut out));
                }
                rate = rate.max(macs * inner as f64 / t0.elapsed().as_secs_f64());
            }
            rate
        };
        let naive_best =
            best(&mut |o| qgemm::qgemm_naive_rows(black_box(&a), k, black_box(&b), n, o));
        let scalar_best =
            best(&mut |o| qgemm::qgemm_rows_with_level(scalar, black_box(&a), k, &packed, o));
        let simd_best =
            best(&mut |o| qgemm::qgemm_rows_with_level(simd, black_box(&a), k, &packed, o));
        black_box(&out);
        let row = QgemmRow {
            shape: label.to_owned(),
            m,
            k,
            n,
            naive_mmacs: naive_best / 1e6,
            packed_scalar_mmacs: scalar_best / 1e6,
            packed_simd_mmacs: simd_best / 1e6,
            simd_speedup: simd_best / scalar_best,
        };
        println!(
            "{:<16} {:>5} {:>5} {:>5} {:>12.1} {:>12.1} {:>12.1} {:>7.2}x",
            row.shape,
            m,
            k,
            n,
            row.naive_mmacs,
            row.packed_scalar_mmacs,
            row.packed_simd_mmacs,
            row.simd_speedup
        );
        rows.push(row);
    }
    rows
}

/// One full measurement pass: quantization throughput rows, GEMM
/// throughput rows, and the serial-vs-parallel sweep wall-clocks.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Per-format quantization throughput along the three paths.
    pub formats: Vec<PerfRow>,
    /// Matmul throughput rows.
    pub gemm: Vec<GemmRow>,
    /// Bit-true integer matmul throughput rows.
    pub qgemm: Vec<QgemmRow>,
    /// The PTQ sweep serial-vs-parallel comparison.
    pub sweep: SweepBench,
}

/// Measures one [`PerfReport`] (printing the human-readable tables)
/// without writing any file.
///
/// # Panics
///
/// Panics if `n < 2^20` (the measurement is too noisy below ~1M
/// elements).
#[must_use]
pub fn measure_perf_ptq(n: usize, quick: bool) -> PerfReport {
    assert!(n >= 1 << 20, "need at least 1M elements for a stable read");
    let threads = par::pool_size();
    let src = workload(n);
    let scale = QUANT_SCALE;
    let reps = 3;
    let mut grid = table2_formats();
    if quick {
        grid.truncate(4);
    }

    mersit_obs::add("bench.perf.elements", n as u64);
    mersit_obs::add("bench.perf.threads", threads as u64);

    println!(
        "perf_ptq: {n} elements, {threads} threads, scale {scale}, simd {}",
        mersit_core::simd_level()
    );
    println!(
        "{:<14} {:>14} {:>14} {:>14} {:>8} {:>10}",
        "format", "scalar el/s", "lut el/s", "lut+thr el/s", "lut x", "thr x"
    );

    let mut rows = Vec::new();
    for fmt in grid {
        let fmt: &dyn Format = fmt.as_ref();
        let spec = fmt.quant_spec();
        let lut = QuantLut::build(&spec, scale).expect("supported scale");
        let scalar = {
            let _span = mersit_obs::span_dyn(|| format!("bench.perf.scalar.{}", fmt.name()));
            best_rate(&src, reps, |buf| {
                quantize_slice_scalar(fmt, buf, scale);
            })
        };
        let lut_rate = {
            let _span = mersit_obs::span_dyn(|| format!("bench.perf.lut.{}", fmt.name()));
            best_rate(&src, reps, |buf| lut.apply(buf))
        };
        let thr_rate = {
            let _span = mersit_obs::span_dyn(|| format!("bench.perf.lut_threads.{}", fmt.name()));
            best_rate(&src, reps, |buf| {
                par::par_chunks_mut(buf, 1, par::min_units(8), |_, chunk| lut.apply(chunk));
            })
        };
        println!(
            "{:<14} {:>14.3e} {:>14.3e} {:>14.3e} {:>7.1}x {:>9.1}x",
            fmt.name(),
            scalar,
            lut_rate,
            thr_rate,
            lut_rate / scalar,
            thr_rate / scalar
        );
        rows.push(PerfRow {
            format: fmt.name(),
            scalar,
            lut: lut_rate,
            lut_threads: thr_rate,
        });
    }

    let gemm = run_gemm_bench();
    let qgemm = run_qgemm_bench();
    let sweep = run_sweep_bench(quick);
    PerfReport {
        formats: rows,
        gemm,
        qgemm,
        sweep,
    }
}

/// Median of a sample set (`0.0` when empty). Rates aggregate by median
/// — robust against a single run that got lucky or unlucky with steals.
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    match xs.len() {
        0 => 0.0,
        n if n % 2 == 1 => xs[n / 2],
        n => 0.5 * (xs[n / 2 - 1] + xs[n / 2]),
    }
}

/// Minimum of a sample set (`0.0` when empty). Wall-clocks aggregate by
/// min — the cleanest observation of the actual cost, since noise only
/// ever adds time.
fn minimum(xs: Vec<f64>) -> f64 {
    xs.into_iter().fold(f64::INFINITY, f64::min).min(f64::MAX)
}

/// Folds repeated measurements into one report: **median** for every
/// rate (throughput rows, GEMM MFLOP/s), **min** for every wall-clock
/// (sweep legs, per-format seconds) with the leg medians kept alongside,
/// speedups recomputed from the aggregates.
///
/// # Panics
///
/// Panics if `reports` is empty.
#[must_use]
pub fn aggregate_reports(reports: &[PerfReport]) -> PerfReport {
    let first = reports.first().expect("at least one measurement");
    let formats = (0..first.formats.len())
        .map(|i| {
            let rs: Vec<&PerfRow> = reports.iter().map(|r| &r.formats[i]).collect();
            PerfRow {
                format: rs[0].format.clone(),
                scalar: median(rs.iter().map(|r| r.scalar).collect()),
                lut: median(rs.iter().map(|r| r.lut).collect()),
                lut_threads: median(rs.iter().map(|r| r.lut_threads).collect()),
            }
        })
        .collect();
    let gemm = (0..first.gemm.len())
        .map(|i| {
            let gs: Vec<&GemmRow> = reports.iter().map(|r| &r.gemm[i]).collect();
            let naive = median(gs.iter().map(|g| g.naive_mflops).collect());
            let packed = median(gs.iter().map(|g| g.packed_mflops).collect());
            GemmRow {
                shape: gs[0].shape.clone(),
                m: gs[0].m,
                k: gs[0].k,
                n: gs[0].n,
                naive_mflops: naive,
                packed_mflops: packed,
                speedup: packed / naive,
            }
        })
        .collect();
    let qgemm = (0..first.qgemm.len())
        .map(|i| {
            let qs: Vec<&QgemmRow> = reports.iter().map(|r| &r.qgemm[i]).collect();
            let naive = median(qs.iter().map(|q| q.naive_mmacs).collect());
            let scalar = median(qs.iter().map(|q| q.packed_scalar_mmacs).collect());
            let simd = median(qs.iter().map(|q| q.packed_simd_mmacs).collect());
            QgemmRow {
                shape: qs[0].shape.clone(),
                m: qs[0].m,
                k: qs[0].k,
                n: qs[0].n,
                naive_mmacs: naive,
                packed_scalar_mmacs: scalar,
                packed_simd_mmacs: simd,
                simd_speedup: simd / scalar,
            }
        })
        .collect();
    let serial = minimum(
        reports
            .iter()
            .map(|r| r.sweep.serial_string_path_secs)
            .collect(),
    );
    let parallel = minimum(reports.iter().map(|r| r.sweep.parallel_plan_secs).collect());
    let per_format = (0..first.sweep.per_format.len())
        .map(|i| {
            let fs: Vec<&FormatSweep> = reports.iter().map(|r| &r.sweep.per_format[i]).collect();
            FormatSweep {
                format: fs[0].format.clone(),
                serial_secs: minimum(fs.iter().map(|f| f.serial_secs).collect()),
                parallel_secs: minimum(fs.iter().map(|f| f.parallel_secs).collect()),
            }
        })
        .collect();
    let sweep = SweepBench {
        models: first.sweep.models.clone(),
        formats: first.sweep.formats,
        samples: first.sweep.samples,
        threads: first.sweep.threads,
        serial_string_path_secs: serial,
        parallel_plan_secs: parallel,
        speedup: serial / parallel,
        serial_secs_median: median(
            reports
                .iter()
                .map(|r| r.sweep.serial_string_path_secs)
                .collect(),
        ),
        parallel_secs_median: median(reports.iter().map(|r| r.sweep.parallel_plan_secs).collect()),
        per_format,
    };
    PerfReport {
        formats,
        gemm,
        qgemm,
        sweep,
    }
}

/// Serializes an (aggregated) report to `BENCH_ptq.json`.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn write_bench_json(report: &PerfReport, n: usize, scale: f64, repeats: usize) {
    let rows = &report.formats;
    let sweep = &report.sweep;
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"elements\": {n},");
    let _ = writeln!(json, "  \"threads\": {},", sweep.threads);
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"repeats\": {repeats},");
    let _ = writeln!(json, "  \"simd_isa\": \"{}\",", mersit_core::simd_level());
    json.push_str("  \"formats\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"format\": \"{}\", \"scalar_elems_per_sec\": {:.4e}, \
             \"lut_elems_per_sec\": {:.4e}, \"lut_threads_elems_per_sec\": {:.4e}, \
             \"lut_speedup\": {:.2}, \"threads_speedup\": {:.2}}}",
            r.format,
            r.scalar,
            r.lut,
            r.lut_threads,
            r.lut / r.scalar,
            r.lut_threads / r.scalar
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"gemm\": [\n");
    for (i, g) in report.gemm.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"shape\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
             \"naive_mflops\": {:.1}, \"packed_mflops\": {:.1}, \"speedup\": {:.2}}}",
            g.shape, g.m, g.k, g.n, g.naive_mflops, g.packed_mflops, g.speedup
        );
        json.push_str(if i + 1 < report.gemm.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"qgemm\": [\n");
    for (i, q) in report.qgemm.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"shape\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
             \"naive_mmacs\": {:.1}, \"packed_scalar_mmacs\": {:.1}, \
             \"packed_simd_mmacs\": {:.1}, \"simd_speedup\": {:.2}}}",
            q.shape,
            q.m,
            q.k,
            q.n,
            q.naive_mmacs,
            q.packed_scalar_mmacs,
            q.packed_simd_mmacs,
            q.simd_speedup
        );
        json.push_str(if i + 1 < report.qgemm.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"sweep\": {\n");
    let names: Vec<String> = sweep.models.iter().map(|m| format!("\"{m}\"")).collect();
    let _ = writeln!(json, "    \"models\": [{}],", names.join(", "));
    let _ = writeln!(json, "    \"formats\": {},", sweep.formats);
    let _ = writeln!(json, "    \"samples\": {},", sweep.samples);
    let _ = writeln!(json, "    \"threads\": {},", sweep.threads);
    let _ = writeln!(
        json,
        "    \"serial_string_path_secs\": {:.4},",
        sweep.serial_string_path_secs
    );
    let _ = writeln!(
        json,
        "    \"parallel_plan_secs\": {:.4},",
        sweep.parallel_plan_secs
    );
    let _ = writeln!(json, "    \"speedup\": {:.2},", sweep.speedup);
    let _ = writeln!(
        json,
        "    \"serial_secs_median\": {:.4},",
        sweep.serial_secs_median
    );
    let _ = writeln!(
        json,
        "    \"parallel_secs_median\": {:.4},",
        sweep.parallel_secs_median
    );
    json.push_str("    \"per_format\": [\n");
    for (i, pf) in sweep.per_format.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"format\": \"{}\", \"serial_secs\": {:.4}, \"parallel_secs\": {:.4}}}",
            pf.format, pf.serial_secs, pf.parallel_secs
        );
        json.push_str(if i + 1 < sweep.per_format.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("    ]\n");
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_ptq.json", &json).expect("write BENCH_ptq.json");
    println!("wrote BENCH_ptq.json");
}

/// Measures the sweep `repeats` times, aggregates (median rates, min
/// wall-clocks — see [`aggregate_reports`]), writes `BENCH_ptq.json`
/// once, and returns the aggregate.
///
/// # Panics
///
/// Panics if `n < 2^20` or the JSON cannot be written.
pub fn run_perf_ptq_repeat(n: usize, quick: bool, repeats: usize) -> PerfReport {
    let repeats = repeats.max(1);
    let reports: Vec<PerfReport> = (0..repeats)
        .map(|r| {
            if repeats > 1 {
                println!("--- repeat {}/{repeats} ---", r + 1);
            }
            measure_perf_ptq(n, quick)
        })
        .collect();
    let agg = aggregate_reports(&reports);
    write_bench_json(&agg, n, QUANT_SCALE, repeats);
    let best = agg
        .formats
        .iter()
        .map(|r| r.lut / r.scalar)
        .fold(0.0f64, f64::max);
    println!("best single-threaded LUT speedup: {best:.1}x");
    agg
}

/// Single-measurement convenience wrapper around [`run_perf_ptq_repeat`]:
/// runs the full sweep once, writes `BENCH_ptq.json`, returns the rows.
///
/// # Panics
///
/// Panics if `n < 2^20` or the JSON cannot be written.
pub fn run_perf_ptq(n: usize, quick: bool) -> Vec<PerfRow> {
    run_perf_ptq_repeat(n, quick, 1).formats
}
