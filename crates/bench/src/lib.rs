//! # mersit-bench — regenerators for every table and figure of the paper
//!
//! One binary per artifact (see DESIGN.md §4 for the experiment index):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table 1 — MERSIT(8,2) decoding table |
//! | `fig1_layouts` | Fig. 1 — FP8 / Posit8 bit layouts |
//! | `fig2_mac_params` | Fig. 2 table — dynamic range, P, M, W |
//! | `fig3_decode_walkthrough` | Fig. 3 — MERSIT decoding example |
//! | `fig4_range_precision` | Fig. 4 — range & precision comparison |
//! | `fig5_decoder_gates` | Fig. 5 — merged decoding sub-blocks |
//! | `table2` | Table 2 — PTQ accuracy across formats × models |
//! | `fig6_rmse` | Fig. 6 — RMSE comparison |
//! | `fig7_mac_cost` | Fig. 7 — MAC area & power |
//! | `table3` | Table 3 — multiplier breakdown |
//! | `ablation_merge_level` | merge level E ∈ {1,2,3} study |
//! | `ablation_kulisch` | Kulisch margin V study |
//! | `cosim` | hw/sw co-simulation smoke — bit-true vs float executors + golden-MAC differential |
//!
//! This library hosts the shared workload machinery: quick model training
//! and the extraction of *actual DNN operand streams* for the hardware
//! power analyses (mirroring the paper's PrimeTime-PX-with-real-data
//! methodology).

#![warn(missing_docs)]
#![allow(clippy::cast_precision_loss, clippy::must_use_candidate)]

pub mod perf;
pub mod serve;

use mersit_core::Format;
use mersit_nn::models::vgg_t;
use mersit_nn::{synthetic_images, train_classifier, Ctx, Dataset, Layer, Model, Tap, TrainConfig};
use mersit_tensor::{Rng, Tensor};

/// Weight and activation value pools sampled from a trained model —
/// the "actual DNN data" for hardware power estimation.
#[derive(Debug, Clone)]
pub struct DnnOperands {
    /// Sampled weight values.
    pub weights: Vec<f64>,
    /// Sampled activation values.
    pub activations: Vec<f64>,
}

struct Collect {
    values: Vec<f64>,
    cap: usize,
    stride: usize,
    seen: usize,
}

impl Tap for Collect {
    fn activation(&mut self, _site: mersit_nn::Site<'_>, t: Tensor) -> Tensor {
        for &v in t.data() {
            if self.seen.is_multiple_of(self.stride) && self.values.len() < self.cap {
                self.values.push(f64::from(v));
            }
            self.seen += 1;
        }
        t
    }
}

/// Trains a small conv net on the synthetic image task and samples its
/// weights and activations. Deterministic in `seed`.
#[must_use]
pub fn trained_dnn_operands(seed: u64, pool: usize) -> DnnOperands {
    let mut rng = Rng::new(seed);
    let mut model: Model = vgg_t(8, 10, &mut rng);
    let ds: Dataset = synthetic_images(seed ^ 0xDA7A, 600, 60, 8);
    let cfg = TrainConfig {
        epochs: 3,
        batch_size: 32,
        ..TrainConfig::default()
    };
    train_classifier(&mut model.net, &ds.train, &cfg);
    // Weight pool.
    let mut weights = Vec::new();
    model.net.visit_params("", &mut |_, p| {
        if p.value.shape().len() >= 2 {
            for &v in p.value.data() {
                if weights.len() < pool {
                    weights.push(f64::from(v));
                }
            }
        }
    });
    // Activation pool from a forward pass.
    let mut tap = Collect {
        values: Vec::new(),
        cap: pool,
        stride: 7,
        seen: 0,
    };
    {
        let mut ctx = Ctx::with_tap(&mut tap);
        let _ = model
            .net
            .forward(ds.test.inputs.slice_outer(0, 32), &mut ctx);
    }
    DnnOperands {
        weights,
        activations: tap.values,
    }
}

impl DnnOperands {
    /// Normalizes the pools so their maxima sit at the format's scale
    /// anchor (i.e. the data is pre-scaled the way the PTQ pipeline would
    /// scale it), then encodes operand pairs.
    #[must_use]
    pub fn encode_scaled(&self, fmt: &dyn Format, n: usize) -> Vec<(u16, u16)> {
        let anchor = mersit_ptq::scale_anchor(fmt);
        let wmax = self.weights.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let amax = self.activations.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let ws = if wmax > 0.0 { anchor / wmax } else { 1.0 };
        let ascale = if amax > 0.0 { anchor / amax } else { 1.0 };
        (0..n)
            .map(|i| {
                let w = self.weights[i % self.weights.len()] * ws;
                let a = self.activations[(i * 13 + 5) % self.activations.len()] * ascale;
                (fmt.encode(w), fmt.encode(a))
            })
            .collect()
    }
}

/// Prints a separator line of width `w`.
pub fn hr(w: usize) {
    println!("{}", "-".repeat(w));
}

#[cfg(test)]
mod tests {
    use super::*;
    use mersit_core::parse_format;

    #[test]
    fn operand_pools_are_populated_and_deterministic() {
        let a = trained_dnn_operands(3, 500);
        let b = trained_dnn_operands(3, 500);
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.activations, b.activations);
        assert!(a.weights.len() >= 400);
        assert!(a.activations.len() >= 400);
    }

    #[test]
    fn encoded_streams_use_wide_code_range() {
        let ops = trained_dnn_operands(5, 400);
        let fmt = parse_format("MERSIT(8,2)").unwrap();
        let s = ops.encode_scaled(fmt.as_ref(), 200);
        assert_eq!(s.len(), 200);
        let distinct: std::collections::BTreeSet<u16> = s.iter().map(|&(w, _)| w).collect();
        assert!(
            distinct.len() > 20,
            "only {} distinct codes",
            distinct.len()
        );
    }
}
