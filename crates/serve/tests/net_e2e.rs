//! Socket front-end end-to-end: a wire-protocol client gets the exact
//! answer an in-process caller gets, pipelined concurrent connections
//! are all served, error frames carry the right codes, and admission
//! conservation (`submitted == completed + failed`) holds even when a
//! client disconnects with requests still in flight.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mersit_nn::layers::{Linear, Sequential};
use mersit_nn::{InputKind, Model};
use mersit_ptq::{calibrate, Executor};
use mersit_serve::wire::{self, WireRequest};
use mersit_serve::{net, NetConfig, Request, ServeConfig, Server};
use mersit_tensor::{Rng, Tensor};

const IN_DIM: usize = 6;

fn toy_server(rng: &mut Rng, cfg: ServeConfig) -> Arc<Server> {
    let mut net = Sequential::new();
    net.push(Linear::new(IN_DIM, 4, rng));
    let model = Model {
        name: "toy".into(),
        net,
        input: InputKind::Image,
    };
    let x = Tensor::randn(&[8, IN_DIM], 1.0, rng);
    let cal = calibrate(&model, &x, 4);
    Arc::new(Server::start(vec![(model, cal)], cfg))
}

fn sample(rng: &mut Rng) -> Vec<f32> {
    Tensor::randn(&[IN_DIM], 1.0, rng).data().to_vec()
}

fn wire_req(id: u64, data: Vec<f32>, assignment: Option<&str>, exec: Option<Executor>) -> Vec<u8> {
    let req = WireRequest {
        id,
        model: "toy".to_owned(),
        assignment: assignment.map(str::to_owned),
        executor: exec,
        shape: vec![IN_DIM],
        data,
    };
    let mut buf = Vec::new();
    wire::encode_request(&req, &mut buf);
    buf
}

/// Reads whole frames from a blocking stream until `want` frames arrived.
fn read_frames(stream: &mut TcpStream, want: usize) -> Vec<wire::Frame> {
    let mut buf = Vec::new();
    let mut frames = Vec::new();
    let mut chunk = [0u8; 4096];
    let deadline = Instant::now() + Duration::from_secs(30);
    while frames.len() < want {
        assert!(Instant::now() < deadline, "timed out waiting for frames");
        let n = stream.read(&mut chunk).expect("socket read");
        assert!(n > 0, "server closed with {}/{want} frames", frames.len());
        buf.extend_from_slice(&chunk[..n]);
        let mut at = 0;
        while let Some((frame, used)) =
            wire::decode_frame(&buf[at..], 1 << 22).expect("clean frame stream")
        {
            frames.push(frame);
            at += used;
        }
        buf.drain(..at);
    }
    assert!(buf.is_empty(), "trailing bytes after expected frames");
    frames
}

fn connect(addr: std::net::SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    stream.set_nodelay(true).expect("nodelay");
    stream
}

/// Polls until every admitted request resolved (the batcher settled).
fn await_conservation(server: &Server) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let s = server.stats();
        if s.submitted == s.completed + s.failed {
            return;
        }
        assert!(Instant::now() < deadline, "batcher never settled: {s:?}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn socket_answers_match_in_process_answers() {
    let mut rng = Rng::new(0xE2E0);
    let server = toy_server(&mut rng, ServeConfig::default());
    let handle = net::spawn(
        Arc::clone(&server),
        NetConfig::default().addr("127.0.0.1:0"),
    )
    .expect("bind loopback");
    let addr = handle.addr();

    // Same (model, assignment, executor, input) through both doors, for
    // every combo the protocol can express.
    let combos: [(Option<&str>, Option<Executor>); 4] = [
        (None, None),
        (Some("MERSIT(8,2)"), Some(Executor::Float)),
        (Some("MERSIT(8,2)"), Some(Executor::BitTrue)),
        (Some("Posit(8,1)"), Some(Executor::BitTrue)),
    ];
    let mut stream = connect(addr);
    for (i, (assign, exec)) in combos.iter().enumerate() {
        let data = sample(&mut rng);
        let mut req = Request::new("toy", Tensor::from_vec(data.clone(), &[IN_DIM]));
        if let Some(a) = assign {
            req = req.format(*a);
        }
        if let Some(e) = exec {
            req = req.executor(*e);
        }
        let reference = server.infer(req).expect("in-process inference");

        stream
            .write_all(&wire_req(1000 + i as u64, data, *assign, *exec))
            .expect("send");
        let frames = read_frames(&mut stream, 1);
        match &frames[0] {
            wire::Frame::Response(r) => {
                assert_eq!(r.id, 1000 + i as u64);
                assert_eq!(
                    r.prediction as usize, reference.prediction,
                    "socket and in-process disagree for combo {i}: {assign:?} {exec:?}"
                );
            }
            other => panic!("expected response, got {other:?}"),
        }
    }

    // Ping round-trips through the same pipe.
    let mut ping = Vec::new();
    wire::encode_ping(0xABCD, &mut ping);
    stream.write_all(&ping).expect("send ping");
    let frames = read_frames(&mut stream, 1);
    assert_eq!(frames[0], wire::Frame::Pong(0xABCD));

    drop(stream);
    let stats = handle.shutdown();
    assert_eq!(stats.requests, combos.len() as u64);
    assert_eq!(stats.responses, combos.len() as u64);
    assert_eq!(stats.errors, 0);
}

#[test]
fn error_frames_carry_the_right_codes_and_keep_the_connection() {
    let mut rng = Rng::new(0xE2E1);
    let server = toy_server(&mut rng, ServeConfig::default());
    let handle = net::spawn(
        Arc::clone(&server),
        NetConfig::default().addr("127.0.0.1:0"),
    )
    .expect("bind loopback");
    let mut stream = connect(handle.addr());

    // Unknown model, bad format string, then malformed payload — each
    // answered with its error frame, none killing the connection.
    let bad_model = WireRequest {
        id: 1,
        model: "nope".to_owned(),
        assignment: None,
        executor: None,
        shape: vec![IN_DIM],
        data: sample(&mut rng),
    };
    let mut buf = Vec::new();
    wire::encode_request(&bad_model, &mut buf);
    let bad_format = WireRequest {
        id: 2,
        model: "toy".to_owned(),
        assignment: Some("MERSIT(9,9)".to_owned()),
        executor: None,
        shape: vec![IN_DIM],
        data: sample(&mut rng),
    };
    wire::encode_request(&bad_format, &mut buf);
    // Intact framing, broken payload: executor byte set to 9.
    let mut mangled = wire_req(3, sample(&mut rng), None, None);
    let exec_at = 8 + 8 + 1 + "toy".len() + 2;
    mangled[exec_at] = 9;
    buf.extend_from_slice(&mangled);
    // A healthy request after all three — proves the connection survived.
    buf.extend_from_slice(&wire_req(4, sample(&mut rng), None, None));

    stream.write_all(&buf).expect("send burst");
    let frames = read_frames(&mut stream, 4);
    match &frames[0] {
        wire::Frame::Error(e) => {
            assert_eq!((e.id, e.code), (1, wire::ERR_UNKNOWN_MODEL));
        }
        other => panic!("expected unknown-model error, got {other:?}"),
    }
    match &frames[1] {
        wire::Frame::Error(e) => assert_eq!((e.id, e.code), (2, wire::ERR_BAD_FORMAT)),
        other => panic!("expected bad-format error, got {other:?}"),
    }
    match &frames[2] {
        wire::Frame::Error(e) => assert_eq!((e.id, e.code), (3, wire::ERR_MALFORMED)),
        other => panic!("expected malformed error, got {other:?}"),
    }
    assert!(
        matches!(&frames[3], wire::Frame::Response(r) if r.id == 4),
        "healthy request after errors must still be served: {:?}",
        frames[3]
    );

    // Garbage that loses framing (a full header's worth — fewer bytes
    // would just look like a partial frame): one ERR_PROTOCOL frame,
    // then close.
    stream
        .write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0xDE, 0xAD, 0xBE, 0xEF])
        .expect("send");
    let frames = read_frames(&mut stream, 1);
    match &frames[0] {
        wire::Frame::Error(e) => assert_eq!(e.code, wire::ERR_PROTOCOL),
        other => panic!("expected protocol error, got {other:?}"),
    }
    let mut tail = [0u8; 16];
    let n = stream.read(&mut tail).expect("read close");
    assert_eq!(n, 0, "connection must close after a protocol error");

    handle.shutdown();
}

#[test]
fn concurrent_pipelined_connections_all_get_answered() {
    let mut rng = Rng::new(0xE2E2);
    let server = toy_server(
        &mut rng,
        ServeConfig::default().max_batch(16).queue_depth(32),
    );
    let handle = net::spawn(
        Arc::clone(&server),
        NetConfig::default().addr("127.0.0.1:0"),
    )
    .expect("bind loopback");
    let addr = handle.addr();

    const CONNS: usize = 24;
    const PER_CONN: usize = 12;
    const PIPELINE: usize = 4;

    // Per-connection inputs, fixed up front so each thread owns its data.
    let inputs: Vec<Vec<Vec<f32>>> = (0..CONNS)
        .map(|_| (0..PER_CONN).map(|_| sample(&mut rng)).collect())
        .collect();
    // In-process reference predictions for the same inputs.
    let expected: Vec<Vec<usize>> = inputs
        .iter()
        .map(|conn| {
            conn.iter()
                .map(|data| {
                    server
                        .infer(
                            Request::new("toy", Tensor::from_vec(data.clone(), &[IN_DIM]))
                                .format("MERSIT(8,2)"),
                        )
                        .expect("reference inference")
                        .prediction
                })
                .collect()
        })
        .collect();

    std::thread::scope(|scope| {
        for (conn_idx, (conn_inputs, conn_expected)) in
            inputs.iter().zip(expected.iter()).enumerate()
        {
            scope.spawn(move || {
                let mut stream = connect(addr);
                let mut sent = 0;
                let mut got = [None; PER_CONN];
                let mut outstanding = 0;
                let mut done = 0;
                while done < PER_CONN {
                    while sent < PER_CONN && outstanding < PIPELINE {
                        let id = ((conn_idx as u64) << 32) | sent as u64;
                        let buf =
                            wire_req(id, conn_inputs[sent].clone(), Some("MERSIT(8,2)"), None);
                        stream.write_all(&buf).expect("send");
                        sent += 1;
                        outstanding += 1;
                    }
                    for frame in read_frames(&mut stream, 1) {
                        match frame {
                            wire::Frame::Response(r) => {
                                let slot = (r.id & 0xFFFF_FFFF) as usize;
                                assert_eq!(r.id >> 32, conn_idx as u64);
                                assert!(got[slot].is_none(), "duplicate response {}", r.id);
                                got[slot] = Some(r.prediction);
                                outstanding -= 1;
                                done += 1;
                            }
                            other => panic!("conn {conn_idx}: unexpected frame {other:?}"),
                        }
                    }
                }
                for (i, (have, want)) in got.iter().zip(conn_expected.iter()).enumerate() {
                    assert_eq!(
                        have.unwrap() as usize,
                        *want,
                        "conn {conn_idx} req {i} diverged"
                    );
                }
            });
        }
    });

    let stats = handle.shutdown();
    assert_eq!(stats.accepted, CONNS as u64);
    assert_eq!(stats.requests, (CONNS * PER_CONN) as u64);
    assert_eq!(stats.responses, (CONNS * PER_CONN) as u64);
    assert_eq!(stats.errors, 0);
    await_conservation(&server);
}

#[test]
fn midflight_disconnect_conserves_admission() {
    let mut rng = Rng::new(0xE2E3);
    // Slow the batcher down (long wait, deep queue) so the disconnect
    // happens while requests are genuinely still in flight.
    let server = toy_server(
        &mut rng,
        ServeConfig::default()
            .max_batch(64)
            .max_wait_us(50_000)
            .queue_depth(64),
    );
    let handle = net::spawn(
        Arc::clone(&server),
        NetConfig::default().addr("127.0.0.1:0"),
    )
    .expect("bind loopback");
    let addr = handle.addr();

    // One well-behaved connection to prove service continues afterwards.
    let mut survivor = connect(addr);

    // The vanishing client: pipeline a burst, read nothing, drop.
    {
        let mut stream = connect(addr);
        let mut buf = Vec::new();
        for i in 0..16 {
            buf.extend_from_slice(&wire_req(i, sample(&mut rng), Some("MERSIT(8,2)"), None));
        }
        stream.write_all(&buf).expect("send burst");
        // Close abruptly with everything still unanswered.
        drop(stream);
    }

    // The survivor still gets served while the orphans resolve.
    survivor
        .write_all(&wire_req(777, sample(&mut rng), None, None))
        .expect("send");
    let frames = read_frames(&mut survivor, 1);
    assert!(
        matches!(&frames[0], wire::Frame::Response(r) if r.id == 777),
        "survivor starved: {:?}",
        frames[0]
    );
    drop(survivor);

    // Shutdown drains: the orphan's in-flight requests finish computing,
    // the flush toward the dead socket fails, and the loop reaps both
    // connections before returning.
    let stats = handle.shutdown();
    assert_eq!(stats.accepted, 2);
    assert_eq!(stats.closed, 2);

    // Every admitted request resolved exactly once — orphaned tickets
    // are dropped by the event loop, but the batcher still completes
    // them (the ticket channel just has no listener).
    await_conservation(&server);
    let s = server.stats();
    assert!(s.submitted >= 17, "burst not admitted: {s:?}");
    assert_eq!(s.submitted, s.completed + s.failed);
    assert_eq!(s.failed, 0);
}
