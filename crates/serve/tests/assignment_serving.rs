//! Serving-layer behavior added with per-layer format assignments:
//!
//! * a lone request flushes as soon as the batcher sees its group holds
//!   the whole queue — it never waits out `max_wait_us`;
//! * a mixed-assignment spec in [`Request::format`] is a first-class
//!   plan identity (own cache entry) and serves predictions bit-identical
//!   to a locally built mixed [`QuantPlan`].

use mersit_nn::layers::{Act, ActKind, Linear, Sequential};
use mersit_nn::{InputKind, Model};
use mersit_ptq::{calibrate, Executor, FormatAssignment, QuantPlan};
use mersit_serve::{Request, ServeConfig, ServeError, Server};
use mersit_tensor::{Rng, Tensor};

fn two_layer_model(rng: &mut Rng) -> (Model, Tensor) {
    let mut net = Sequential::new();
    net.push(Linear::new(12, 16, rng));
    net.push(Act::new(ActKind::Relu));
    net.push(Linear::new(16, 4, rng));
    let model = Model {
        name: "mlp".into(),
        net,
        input: InputKind::Image,
    };
    let x = Tensor::randn(&[9, 12], 1.0, rng);
    (model, x)
}

fn sample(x: &Tensor, i: usize) -> Tensor {
    let s = x.slice_outer(i, i + 1);
    Tensor::from_vec(s.data().to_vec(), &x.shape()[1..])
}

/// A lone request must not pay the full latency budget: with a huge
/// `max_wait_us` the whole-queue fast flush answers in milliseconds.
#[test]
fn lone_request_flushes_without_waiting_out_the_deadline() {
    let mut rng = Rng::new(0x0001_704E);
    let (model, x) = two_layer_model(&mut rng);
    let cal = calibrate(&model, &x, 4);
    let cfg = ServeConfig::default()
        .max_batch(64)
        .max_wait_us(30_000_000) // 30 s: the old policy would sit here
        .queue_depth(8);
    let server = Server::start(vec![(model, cal)], cfg);
    let resp = server
        .infer(Request::new("mlp", sample(&x, 0)).format("MERSIT(8,2)"))
        .expect("served");
    assert_eq!(resp.batch_size, 1);
    assert!(
        resp.total_us < 5_000_000,
        "lone request waited {} µs — fast flush is broken",
        resp.total_us
    );
}

/// Mixed-assignment requests: own plan-cache entry, bit-identical to a
/// locally built mixed plan, and bad specs rejected at admission.
#[test]
fn assignment_spec_requests_get_their_own_plan() {
    let mut rng = Rng::new(0xA551);
    let (model, x) = two_layer_model(&mut rng);
    let cal = calibrate(&model, &x, 4);
    let spec = "MERSIT(8,2);2_linear=FP(8,4)";

    // Local references for both plan identities.
    let uniform = FormatAssignment::parse("MERSIT(8,2)").unwrap();
    let mixed = FormatAssignment::parse(spec).unwrap();
    assert!(!mixed.is_uniform());
    let uni_plan = QuantPlan::build_with(&model, uniform, &cal, Executor::BitTrue);
    let mix_plan = QuantPlan::build_with(&model, mixed, &cal, Executor::BitTrue);
    let uni_ref = uni_plan.predict(&model, &x, 1);
    let mix_ref = mix_plan.predict(&model, &x, 1);

    let name = model.name.clone();
    let server = Server::start(vec![(model, cal)], ServeConfig::default());
    let n = x.shape()[0];
    for i in 0..n {
        let resp = server
            .infer(
                Request::new(&name, sample(&x, i))
                    .format("MERSIT(8,2)")
                    .executor(Executor::BitTrue),
            )
            .expect("uniform served");
        assert_eq!(resp.prediction, uni_ref[i], "uniform sample {i}");
        let resp = server
            .infer(
                Request::new(&name, sample(&x, i))
                    .format(spec)
                    .executor(Executor::BitTrue),
            )
            .expect("mixed served");
        assert_eq!(resp.prediction, mix_ref[i], "mixed sample {i}");
    }
    // Uniform and mixed compiled into distinct cached plans.
    assert_eq!(server.stats().cached_plans, 2);

    // A spec with a bad override format never occupies a queue slot.
    match server.submit(Request::new(&name, sample(&x, 0)).format("MERSIT(8,2);x=GHOST(8,1)")) {
        Err(ServeError::BadFormat(_)) => {}
        other => panic!("expected BadFormat, got {other:?}"),
    }
}
