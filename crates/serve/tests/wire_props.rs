//! Wire-codec properties: every frame round-trips losslessly (including
//! NaN payload bit patterns), every truncation of a valid frame asks for
//! more bytes, and arbitrary garbage — flipped headers, lying length
//! fields, random byte soup — decodes to a *clean* protocol error.
//! `decode_frame` must never panic, whatever the bytes.

use proptest::prelude::*;

use mersit_ptq::Executor;
use mersit_serve::wire::{
    self, decode_frame, encode_error, encode_ping, encode_pong, encode_request, DecodeError, Frame,
    WireRequest,
};

const LIMIT: usize = 1 << 22;

/// Deterministic byte soup from a seed (the shim's TestRng, reused as a
/// plain PRNG).
fn garbage(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = proptest::TestRng::seeded(seed);
    (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect()
}

fn build_request(seed: u64) -> WireRequest {
    let mut rng = proptest::TestRng::seeded(seed);
    let rank = 1 + (rng.below(4) as usize);
    let shape: Vec<usize> = (0..rank).map(|_| 1 + rng.below(5) as usize).collect();
    let elems: usize = shape.iter().product();
    let data: Vec<f32> = (0..elems)
        .map(|i| match rng.below(8) {
            0 => f32::NAN,
            1 => f32::INFINITY,
            2 => f32::NEG_INFINITY,
            3 => 0.0,
            4 => -0.0,
            _ => (rng.unit_f64() as f32 - 0.5) * (10f32).powi((i % 7) as i32 - 3),
        })
        .collect();
    WireRequest {
        id: rng.next_u64(),
        model: format!("model_{}", rng.below(1000)),
        assignment: match rng.below(3) {
            0 => None,
            1 => Some("MERSIT(8,2)".to_owned()),
            _ => Some("MERSIT(8,2);head=FP(8,4);features.0=Posit(8,1)".to_owned()),
        },
        executor: match rng.below(3) {
            0 => None,
            1 => Some(Executor::Float),
            _ => Some(Executor::BitTrue),
        },
        shape,
        data,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_round_trip_bit_for_bit(seed in 0u64..1_000_000) {
        let req = build_request(seed);
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let (frame, used) = decode_frame(&buf, LIMIT)
            .expect("valid frame")
            .expect("complete frame");
        prop_assert_eq!(used, buf.len());
        let Frame::Request(got) = frame else {
            panic!("decoded wrong frame type");
        };
        prop_assert_eq!(got.id, req.id);
        prop_assert_eq!(&got.model, &req.model);
        prop_assert_eq!(&got.assignment, &req.assignment);
        prop_assert_eq!(got.executor, req.executor);
        prop_assert_eq!(&got.shape, &req.shape);
        // Bit-level comparison: NaNs must survive the wire unchanged.
        let want: Vec<u32> = req.data.iter().map(|v| v.to_bits()).collect();
        let have: Vec<u32> = got.data.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(have, want);
    }

    #[test]
    fn every_truncation_wants_more_bytes(seed in 0u64..100_000) {
        let req = build_request(seed);
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        // Check a spread of cut points including all header boundaries.
        let mut cuts: Vec<usize> = (0..wire::HEADER_LEN.min(buf.len())).collect();
        cuts.extend((wire::HEADER_LEN..buf.len()).step_by(7));
        for cut in cuts {
            prop_assert_eq!(decode_frame(&buf[..cut], LIMIT), Ok(None));
        }
    }

    #[test]
    fn pipelined_frames_decode_in_sequence(seed in 0u64..100_000) {
        // Several frames of mixed types back to back in one buffer —
        // exactly what a pipelining client produces.
        let reqs: Vec<WireRequest> = (0..3).map(|i| build_request(seed * 31 + i)).collect();
        let mut buf = Vec::new();
        encode_request(&reqs[0], &mut buf);
        encode_ping(seed, &mut buf);
        encode_request(&reqs[1], &mut buf);
        encode_error(7, wire::ERR_INTERNAL, "boom", &mut buf);
        encode_request(&reqs[2], &mut buf);
        encode_pong(seed ^ 1, &mut buf);
        let mut frames = Vec::new();
        let mut cursor = &buf[..];
        while let Some((frame, used)) = decode_frame(cursor, LIMIT).expect("valid stream") {
            frames.push(frame);
            cursor = &cursor[used..];
        }
        prop_assert!(cursor.is_empty());
        prop_assert_eq!(frames.len(), 6);
        prop_assert!(matches!(&frames[0], Frame::Request(r) if r.id == reqs[0].id));
        prop_assert!(matches!(frames[1], Frame::Ping(t) if t == seed));
        prop_assert!(matches!(&frames[3], Frame::Error(e) if e.id == 7));
        prop_assert!(matches!(&frames[4], Frame::Request(r) if r.id == reqs[2].id));
    }

    #[test]
    fn garbage_never_panics_and_errors_cleanly(seed in 0u64..1_000_000, len in 0usize..200) {
        let buf = garbage(seed, len);
        // Whatever happens, it must be a clean outcome — the proptest
        // harness would catch a panic as a test failure.
        match decode_frame(&buf, LIMIT) {
            Ok(None | Some(_)) | Err(_) => {}
        }
    }

    #[test]
    fn corrupted_valid_frames_never_panic(seed in 0u64..100_000, flips in 1usize..8) {
        // Start from a real frame, then flip bytes — covers the "almost
        // valid" space random soup misses (magic intact, length lying,
        // UTF-8 broken, executor code unknown...).
        let req = build_request(seed);
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let mut rng = proptest::TestRng::seeded(seed ^ 0xF11F);
        for _ in 0..flips {
            let at = rng.below(buf.len() as u64) as usize;
            buf[at] ^= (rng.next_u64() & 0xFF) as u8;
        }
        match decode_frame(&buf, LIMIT) {
            Ok(None | Some(_)) | Err(_) => {}
        }
    }
}

#[test]
fn oversized_declaration_is_fatal_not_a_wait() {
    // A header declaring a payload bigger than the cap must fail
    // immediately: waiting for bytes that will never fit the read
    // buffer would hang the connection forever.
    let mut buf = vec![wire::MAGIC, wire::VERSION, wire::FRAME_REQUEST, 0];
    buf.extend_from_slice(&(LIMIT as u32 + 1).to_be_bytes());
    assert!(matches!(
        decode_frame(&buf, LIMIT),
        Err(DecodeError::Fatal(_))
    ));
}

#[test]
fn wrong_version_unknown_type_and_flags_are_fatal() {
    let mut ping = Vec::new();
    encode_ping(1, &mut ping);
    let mut v2 = ping.clone();
    v2[1] = 2; // future version
    assert!(matches!(
        decode_frame(&v2, LIMIT),
        Err(DecodeError::Fatal(_))
    ));
    let mut t9 = ping.clone();
    t9[2] = 0x09; // unknown frame type
    assert!(matches!(
        decode_frame(&t9, LIMIT),
        Err(DecodeError::Fatal(_))
    ));
    let mut fl = ping.clone();
    fl[3] = 0x80; // v1 flags must be zero
    assert!(matches!(
        decode_frame(&fl, LIMIT),
        Err(DecodeError::Fatal(_))
    ));
}

#[test]
fn malformed_request_payload_keeps_the_boundary() {
    // Intact framing, broken payload (executor code 9): the decoder must
    // report exactly the frame's extent so the connection can skip it
    // and keep decoding the next frame.
    let req = build_request(99);
    let mut buf = Vec::new();
    encode_request(&req, &mut buf);
    let frame_len = buf.len();
    // Corrupt the executor byte: header(8) + id(8) + model(1+len) + assign(2+len).
    let model_len = req.model.len();
    let assign_len = req.assignment.as_deref().map_or(0, str::len);
    let exec_at = 8 + 8 + 1 + model_len + 2 + assign_len;
    buf[exec_at] = 9;
    let mut tail = Vec::new();
    encode_ping(5, &mut tail);
    buf.extend_from_slice(&tail);
    match decode_frame(&buf, LIMIT) {
        Err(DecodeError::Malformed { consumed, id, .. }) => {
            assert_eq!(consumed, frame_len);
            assert_eq!(id, req.id);
            // The next frame decodes cleanly after the skip.
            let (frame, used) = decode_frame(&buf[consumed..], LIMIT)
                .expect("clean tail")
                .expect("complete tail");
            assert_eq!(frame, Frame::Ping(5));
            assert_eq!(used, tail.len());
        }
        other => panic!("expected Malformed, got {other:?}"),
    }
}
