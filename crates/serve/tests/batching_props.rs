//! The serving layer's load-bearing invariant: coalescing requests into
//! batches is invisible in the bits. A batch of N requests must return
//! outputs bit-identical to N single-sample inference calls — for the
//! float executor, the bit-true executor, and the FP32 reference path,
//! at thread counts 1, 2 and 7.
//!
//! The pool and the `MERSIT_THREADS` latch are process-global, so the
//! thread sweep lives in a single `#[test]` (the `pool_stress` idiom:
//! set the env var, `pool::shutdown()`, and the next dispatch re-latches
//! at the new size).

use proptest::prelude::*;
use std::collections::HashMap;

use mersit_core::parse_format;
use mersit_nn::layers::{Act, ActKind, Linear, Sequential};
use mersit_nn::models::vgg_t;
use mersit_nn::{predict_ref, InputKind, Model};
use mersit_ptq::{calibrate, Calibration, Executor, QuantPlan};
use mersit_serve::{Request, ServeConfig, Server};
use mersit_tensor::{pool, Rng, Tensor};

/// Extracts sample `i` of `x` *without* the batch dimension (the shape a
/// serving client submits).
fn sample(x: &Tensor, i: usize) -> Tensor {
    let s = x.slice_outer(i, i + 1);
    Tensor::from_vec(s.data().to_vec(), &x.shape()[1..])
}

/// Single-sample references for every path the server can take.
struct Refs {
    fp32: Vec<usize>,
    by_executor: HashMap<&'static str, Vec<usize>>,
}

fn single_sample_refs(model: &Model, cal: &Calibration, x: &Tensor, fmt_name: &str) -> Refs {
    let fmt = parse_format(fmt_name).unwrap();
    let mut by_executor = HashMap::new();
    for (label, ex) in [("float", Executor::Float), ("bittrue", Executor::BitTrue)] {
        let plan = QuantPlan::build_with(model, fmt.clone(), cal, ex);
        // batch = 1: N independent single-sample predictions.
        by_executor.insert(label, plan.predict(model, x, 1));
    }
    Refs {
        fp32: predict_ref(&model.net, x, 1),
        by_executor,
    }
}

/// Drives one server over a calibrated model: submits every sample as a
/// single-sample request (per executor and for the FP32 path), lets the
/// batcher coalesce them, and asserts every prediction matches the
/// single-sample reference exactly. Returns the largest batch size the
/// responses report, so callers can assert coalescing actually happened.
fn serve_and_check(model: Model, cal: Calibration, x: &Tensor, fmt_name: &str) -> usize {
    let n = x.shape()[0];
    let name = model.name.clone();
    let refs = single_sample_refs(&model, &cal, x, fmt_name);
    let cfg = ServeConfig::default()
        .max_batch(5)
        .max_wait_us(200_000)
        .queue_depth(4 * n + 8);
    let server = Server::start(vec![(model, cal)], cfg);
    let mut max_batch_seen = 0;

    for (label, ex) in [("float", Executor::Float), ("bittrue", Executor::BitTrue)] {
        let tickets: Vec<_> = (0..n)
            .map(|i| {
                server
                    .submit(
                        Request::new(&name, sample(x, i))
                            .format(fmt_name)
                            .executor(ex),
                    )
                    .expect("admission")
            })
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let resp = t.wait().expect("served");
            assert_eq!(
                resp.prediction, refs.by_executor[label][i],
                "{label} sample {i} diverged from single-sample reference"
            );
            max_batch_seen = max_batch_seen.max(resp.batch_size);
        }
    }

    // FP32 reference path (no format): same invariant vs predict_ref.
    let tickets: Vec<_> = (0..n)
        .map(|i| server.submit(Request::new(&name, sample(x, i))).unwrap())
        .collect();
    for (i, t) in tickets.into_iter().enumerate() {
        let resp = t.wait().expect("served");
        assert_eq!(resp.prediction, refs.fp32[i], "fp32 sample {i} diverged");
        max_batch_seen = max_batch_seen.max(resp.batch_size);
    }

    let stats = server.stats();
    assert_eq!(stats.submitted, 3 * n as u64);
    assert_eq!(stats.completed, 3 * n as u64);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.failed, 0);
    // One plan per (format, executor); the FP32 path builds none.
    assert_eq!(stats.cached_plans, 2);
    max_batch_seen
}

#[test]
fn batched_equals_single_sample_across_executors_and_threads() {
    for threads in [1usize, 2, 7] {
        std::env::set_var("MERSIT_THREADS", threads.to_string());
        pool::shutdown(); // re-latch the pool at the new size
        let mut rng = Rng::new(0xBA7C + threads as u64);
        let model = vgg_t(8, 10, &mut rng);
        let x = Tensor::randn(&[11, 3, 8, 8], 1.0, &mut rng);
        let cal = calibrate(&model, &x, 4);
        let max_batch = serve_and_check(model, cal, &x, "MERSIT(8,2)");
        assert!(
            max_batch >= 2,
            "batcher never coalesced at {threads} threads (max batch {max_batch})"
        );
    }
    std::env::remove_var("MERSIT_THREADS");
    pool::shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Randomized compositions on a small MLP: any sample count, flush
    /// threshold, latency budget and seed — batched predictions still
    /// equal the single-sample references for every path.
    #[test]
    fn random_compositions_preserve_bit_identity(
        n in 1usize..10,
        max_batch in 1usize..7,
        max_wait_us in 0u64..3000,
        seed in 0u64..1000,
    ) {
        let mut rng = Rng::new(0xC0FFEE ^ seed);
        let mut net = Sequential::new();
        net.push(Linear::new(12, 16, &mut rng));
        net.push(Act::new(ActKind::Relu));
        net.push(Linear::new(16, 4, &mut rng));
        let model = Model {
            name: "toy_mlp".into(),
            net,
            input: InputKind::Image,
        };
        let x = Tensor::randn(&[n, 12], 1.0, &mut rng);
        let cal = calibrate(&model, &x, 4);
        let fmt_name = "Posit(8,1)";
        let refs = single_sample_refs(&model, &cal, &x, fmt_name);
        let name = model.name.clone();
        let cfg = ServeConfig::default()
            .max_batch(max_batch)
            .max_wait_us(max_wait_us)
            .queue_depth(4 * n + 8);
        let server = Server::start(vec![(model, cal)], cfg);
        for (label, ex) in [("float", Executor::Float), ("bittrue", Executor::BitTrue)] {
            let tickets: Vec<_> = (0..n)
                .map(|i| {
                    server
                        .submit(Request::new(&name, sample(&x, i)).format(fmt_name).executor(ex))
                        .expect("admission")
                })
                .collect();
            for (i, t) in tickets.into_iter().enumerate() {
                prop_assert_eq!(t.wait().expect("served").prediction, refs.by_executor[label][i]);
            }
        }
        let tickets: Vec<_> = (0..n)
            .map(|i| server.submit(Request::new(&name, sample(&x, i))).unwrap())
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            prop_assert_eq!(t.wait().expect("served").prediction, refs.fp32[i]);
        }
    }
}
