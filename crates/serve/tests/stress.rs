//! Admission-path stress: queue-full rejection under backpressure,
//! graceful shutdown with in-flight requests (everything admitted gets
//! answered), and the validation / internal-error paths.
//!
//! One `#[test]` fn: the internal-error leg swaps the process-global
//! panic hook, which must not race another test in this binary.

use mersit_nn::layers::{Linear, Sequential};
use mersit_nn::{InputKind, Model};
use mersit_ptq::calibrate;
use mersit_serve::{Request, ServeConfig, ServeError, Server};
use mersit_tensor::{Rng, Tensor};

fn toy_model(rng: &mut Rng) -> (Model, Tensor) {
    let mut net = Sequential::new();
    net.push(Linear::new(6, 4, rng));
    let model = Model {
        name: "toy".into(),
        net,
        input: InputKind::Image,
    };
    let x = Tensor::randn(&[8, 6], 1.0, rng);
    (model, x)
}

fn one_sample(rng: &mut Rng) -> Tensor {
    Tensor::randn(&[6], 1.0, rng)
}

#[test]
fn backpressure_validation_and_graceful_shutdown() {
    let mut rng = Rng::new(0x57E55);

    // --- Queue-full rejection under backpressure. The batcher flushes a
    // group immediately once it holds the whole queue, so to keep
    // requests queued we first park the batcher on a slow warm-up flush
    // (big bit-true plan build), then split the backlog across two
    // format keys — neither group covers the queue, so both wait out the
    // (long) deadline.
    {
        let (model, x) = toy_model(&mut rng);
        let cal = calibrate(&model, &x, 4);
        let mut slow_net = Sequential::new();
        slow_net.push(Linear::new(256, 256, &mut rng));
        let slow = Model {
            name: "slow".into(),
            net: slow_net,
            input: InputKind::Image,
        };
        let slow_x = Tensor::randn(&[4, 256], 1.0, &mut rng);
        let slow_cal = calibrate(&slow, &slow_x, 4);
        let cfg = ServeConfig::default()
            .max_batch(64) // never flush on size...
            .max_wait_us(300_000) // ...and not on time within this test
            .queue_depth(4);
        let mut server = Server::start(vec![(model, cal), (slow, slow_cal)], cfg);
        let warmup = server
            .submit(
                Request::new("slow", Tensor::randn(&[256], 1.0, &mut rng))
                    .format("Posit(8,3)")
                    .executor(mersit_ptq::Executor::BitTrue),
            )
            .expect("warm-up admitted");
        // Wait until the batcher has pulled the warm-up out of the queue
        // and entered its flush (the batches counter bumps at flush
        // start); everything submitted from here queues behind it.
        while server.stats().batches < 1 {
            std::thread::yield_now();
        }
        let tickets: Vec<_> = (0..4)
            .map(|i| {
                let fmt = if i % 2 == 0 { "INT8" } else { "Posit(8,1)" };
                server
                    .submit(Request::new("toy", one_sample(&mut rng)).format(fmt))
                    .expect("within queue depth")
            })
            .collect();
        // The 5th must bounce with backpressure, not block or queue.
        match server.submit(Request::new("toy", one_sample(&mut rng)).format("INT8")) {
            Err(ServeError::QueueFull { depth: 4 }) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        // Graceful shutdown with 4 requests still queued: all answered,
        // one batch per format key.
        server.shutdown();
        assert_eq!(warmup.wait().expect("warm-up served").batch_size, 1);
        let mut sizes = Vec::new();
        for t in tickets {
            let resp = t.wait().expect("drained on shutdown");
            sizes.push(resp.batch_size);
        }
        assert!(
            sizes.iter().all(|&s| s == 2),
            "drain batched each key's pair: {sizes:?}"
        );
        let stats = server.stats();
        assert_eq!(stats.submitted, 5);
        assert_eq!(stats.completed, 5);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.failed, 0);
        // Post-shutdown submissions are refused, not dropped.
        match server.submit(Request::new("toy", one_sample(&mut rng))) {
            Err(ServeError::ShuttingDown) => {}
            other => panic!("expected ShuttingDown, got {other:?}"),
        }
    }

    // --- Validation errors never occupy queue slots.
    {
        let (model, x) = toy_model(&mut rng);
        let cal = calibrate(&model, &x, 4);
        let server = Server::start(vec![(model, cal)], ServeConfig::default());
        match server.submit(Request::new("nope", one_sample(&mut rng))) {
            Err(ServeError::UnknownModel(m)) => assert_eq!(m, "nope"),
            other => panic!("expected UnknownModel, got {other:?}"),
        }
        match server.submit(Request::new("toy", one_sample(&mut rng)).format("MERSIT(9,9)")) {
            Err(ServeError::BadFormat(_)) => {}
            other => panic!("expected BadFormat, got {other:?}"),
        }
        assert_eq!(server.stats().submitted, 0);
    }

    // --- A compute panic fails its batch with Internal; the server and
    // differently-shaped batch-mates keep working. Shape is part of the
    // grouping key, so the bad request batches alone.
    {
        let (model, x) = toy_model(&mut rng);
        let cal = calibrate(&model, &x, 4);
        let cfg = ServeConfig::default().max_wait_us(0);
        let server = Server::start(vec![(model, cal)], cfg);
        let bad = Tensor::randn(&[9], 1.0, &mut rng); // Linear expects 6
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the expected panic
        let bad_result = server.infer(Request::new("toy", bad));
        std::panic::set_hook(prev);
        match bad_result {
            Err(ServeError::Internal(_)) => {}
            other => panic!("expected Internal, got {other:?}"),
        }
        // Server survived and still serves well-formed requests.
        let ok = server.infer(Request::new("toy", one_sample(&mut rng)).format("INT8"));
        assert!(ok.is_ok(), "server dead after batch panic: {ok:?}");
        let stats = server.stats();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 1);
    }

    // --- Shutdown via drop with a burst in flight: every ticket resolves.
    {
        let (model, x) = toy_model(&mut rng);
        let cal = calibrate(&model, &x, 4);
        let cfg = ServeConfig::default().max_batch(3).queue_depth(128);
        let server = Server::start(vec![(model, cal)], cfg);
        let tickets: Vec<_> = (0..17)
            .map(|i| {
                let fmt = if i % 2 == 0 { "INT8" } else { "Posit(8,1)" };
                server
                    .submit(Request::new("toy", one_sample(&mut rng)).format(fmt))
                    .expect("admission")
            })
            .collect();
        let stats_before = server.stats();
        assert_eq!(stats_before.submitted, 17);
        drop(server); // drains and joins
        let served = tickets
            .into_iter()
            .map(mersit_serve::Ticket::wait)
            .filter(Result::is_ok)
            .count();
        assert_eq!(served, 17, "drop must answer every admitted request");
    }
}
