//! The server proper: bounded admission, the dynamic batcher thread, and
//! response plumbing.

use crate::cache::{PlanCache, PlanKey};
use crate::config::ServeConfig;
use mersit_nn::{predict_one_batch_ref, Model};
use mersit_ptq::{Calibration, Executor, FormatAssignment};
use mersit_tensor::Tensor;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One inference request: a single sample for a named model, optionally
/// choosing a quantization format and execution engine.
///
/// Built with consuming setters:
///
/// ```
/// use mersit_ptq::Executor;
/// use mersit_serve::Request;
/// use mersit_tensor::Tensor;
///
/// let sample = Tensor::from_vec(vec![0.5, -1.0, 0.25, 2.0], &[4]);
/// let req = Request::new("toy", sample)
///     .format("MERSIT(8,2)")
///     .executor(Executor::BitTrue);
/// assert_eq!(req.model(), "toy");
/// ```
#[derive(Debug, Clone)]
pub struct Request {
    model: String,
    format: Option<String>,
    executor: Option<Executor>,
    input: Tensor,
}

impl Request {
    /// A request for one sample (no leading batch dimension — the server
    /// batches for you) against the named model. Without further setters
    /// it runs the FP32 reference forward.
    #[must_use]
    pub fn new(model: impl Into<String>, input: Tensor) -> Self {
        Self {
            model: model.into(),
            format: None,
            executor: None,
            input,
        }
    }

    /// Quantize through this format — any `mersit-core` format name
    /// (`"MERSIT(8,2)"`, `"Posit(8,1)"`, `"INT8"`) or a per-layer
    /// assignment spec (`"MERSIT(8,2);head.fc=FP(8,4)"`, see
    /// [`FormatAssignment::parse`]). Unset means the FP32 reference
    /// forward — no quantization, executor ignored.
    #[must_use]
    pub fn format(mut self, fmt: impl Into<String>) -> Self {
        self.format = Some(fmt.into());
        self
    }

    /// Run on this execution engine. Unset means the server config's
    /// default executor ([`ServeConfig::from_env`] honors
    /// `MERSIT_EXECUTOR`).
    #[must_use]
    pub fn executor(mut self, e: Executor) -> Self {
        self.executor = Some(e);
        self
    }

    /// The model this request targets.
    #[must_use]
    pub fn model(&self) -> &str {
        &self.model
    }
}

/// A completed inference: the predicted class plus latency accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Argmax class index for the submitted sample.
    pub prediction: usize,
    /// How many requests rode in the coalesced batch that computed this.
    pub batch_size: usize,
    /// Microseconds from admission to the batch starting to compute.
    pub queue_us: u64,
    /// Microseconds from admission to the response being ready.
    pub total_us: u64,
}

/// Why a request was not served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue was at its configured depth; the request was
    /// rejected without queueing (backpressure — retry later or raise
    /// `MERSIT_SERVE_QUEUE_DEPTH`).
    QueueFull {
        /// The configured depth that was full.
        depth: usize,
    },
    /// No model with this name is loaded.
    UnknownModel(String),
    /// The format string did not parse.
    BadFormat(String),
    /// The server is shutting down (or has shut down) and admits nothing.
    ShuttingDown,
    /// The batch this request rode in panicked during compute (e.g. an
    /// input shape the model cannot consume).
    Internal(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { depth } => {
                write!(f, "admission queue full (depth {depth})")
            }
            ServeError::UnknownModel(m) => write!(f, "unknown model {m:?}"),
            ServeError::BadFormat(e) => write!(f, "bad format: {e}"),
            ServeError::ShuttingDown => f.write_str("server is shutting down"),
            ServeError::Internal(e) => write!(f, "inference failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A claim on a future [`Response`]: returned by [`Server::submit`] so
/// callers can overlap their own work with queued inference.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Response, ServeError>>,
}

impl Ticket {
    /// Blocks until the request is served (or rejected by shutdown).
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Non-blocking poll: `None` while the request is still queued or
    /// computing, `Some(..)` once its outcome is available. The socket
    /// front door ([`crate::net`]) drains tickets with this from its
    /// event loop, so completed batches flow back to clients without
    /// anyone blocking on [`Ticket::wait`].
    #[must_use]
    pub fn try_wait(&self) -> Option<Result<Response, ServeError>> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::ShuttingDown)),
        }
    }
}

/// Counters describing everything a server has done so far. Admission
/// conservation: every submitted request is eventually exactly one of
/// completed or failed, and `rejected` counts the ones never admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Requests answered with a [`Response`].
    pub completed: u64,
    /// Requests rejected at admission ([`ServeError::QueueFull`]).
    pub rejected: u64,
    /// Admitted requests answered with [`ServeError::Internal`].
    pub failed: u64,
    /// Coalesced batches flushed.
    pub batches: u64,
    /// Compiled plans currently in the cache.
    pub cached_plans: usize,
}

/// How requests group into coalescable batches: same model, same
/// canonical assignment name (None = FP32 reference), same executor,
/// same sample shape. Only identical keys ever share a forward, so a
/// batch is always one `cat_outer` away from a valid model input.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct GroupKey {
    model: String,
    format: Option<String>,
    executor: Executor,
    shape: Vec<usize>,
}

/// One admitted request waiting in the queue.
struct Pending {
    key: GroupKey,
    fmt: Option<FormatAssignment>,
    /// The sample lifted to `[1, ...]`, ready to concatenate.
    input: Tensor,
    enqueued: Instant,
    tx: mpsc::Sender<Result<Response, ServeError>>,
}

struct State {
    queue: VecDeque<Pending>,
    shutdown: bool,
}

#[derive(Debug, Default)]
struct StatsInner {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
}

struct ModelEntry {
    model: Model,
    cal: Calibration,
}

struct Shared {
    cfg: ServeConfig,
    models: HashMap<String, ModelEntry>,
    cache: PlanCache,
    state: Mutex<State>,
    notify: Condvar,
    stats: StatsInner,
}

/// A persistent in-process inference server over compiled plans.
///
/// [`Server::start`] spawns exactly one lightweight batcher thread, which
/// only admits and coalesces — all tensor compute it triggers fans out
/// through the global `mersit-tensor` work-stealing pool, so the server
/// adds no second compute pool. Requests arrive via [`Server::submit`]
/// (non-blocking, returns a [`Ticket`]) or [`Server::infer`] (blocking);
/// any number of client threads may call both concurrently (`&self`).
///
/// Dropping the server (or calling [`Server::shutdown`]) stops admission,
/// drains every queued request with a real response, and joins the
/// batcher — no request is silently dropped.
pub struct Server {
    shared: Arc<Shared>,
    batcher: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("models", &self.shared.models.len())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Starts a server over the given calibrated models.
    ///
    /// # Panics
    ///
    /// Panics if two models share a name (requests would be ambiguous).
    #[must_use]
    pub fn start(models: Vec<(Model, Calibration)>, cfg: ServeConfig) -> Self {
        let mut map = HashMap::new();
        for (model, cal) in models {
            let prev = map.insert(model.name.clone(), ModelEntry { model, cal });
            assert!(prev.is_none(), "duplicate model name");
        }
        let shared = Arc::new(Shared {
            cfg,
            models: map,
            cache: PlanCache::new(),
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            notify: Condvar::new(),
            stats: StatsInner::default(),
        });
        let worker = Arc::clone(&shared);
        let batcher = std::thread::Builder::new()
            .name("mersit-serve-batcher".into())
            .spawn(move || batcher_loop(&worker))
            .expect("spawn batcher thread");
        Self {
            shared,
            batcher: Some(batcher),
        }
    }

    /// Validates and enqueues a request, returning a [`Ticket`] for its
    /// response. Never blocks on compute: a full queue rejects with
    /// [`ServeError::QueueFull`] instead of waiting.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] / [`ServeError::BadFormat`] for
    /// invalid requests, [`ServeError::QueueFull`] under backpressure,
    /// [`ServeError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, req: Request) -> Result<Ticket, ServeError> {
        let shared = &self.shared;
        if !shared.models.contains_key(&req.model) {
            return Err(ServeError::UnknownModel(req.model));
        }
        let fmt = match &req.format {
            Some(spec) => Some(
                FormatAssignment::parse(spec).map_err(|e| ServeError::BadFormat(e.to_string()))?,
            ),
            None => None,
        };
        // FP32 reference requests all share one group regardless of the
        // (ignored) executor choice.
        let executor = match &fmt {
            Some(_) => req.executor.unwrap_or(shared.cfg.default_executor),
            None => Executor::Float,
        };
        let key = GroupKey {
            model: req.model,
            format: fmt.as_ref().map(FormatAssignment::name),
            executor,
            shape: req.input.shape().to_vec(),
        };
        let mut lifted = vec![1usize];
        lifted.extend_from_slice(req.input.shape());
        let input = Tensor::from_vec(req.input.data().to_vec(), &lifted);
        let (tx, rx) = mpsc::channel();
        let pending = Pending {
            key,
            fmt,
            input,
            enqueued: Instant::now(),
            tx,
        };
        let mut st = shared.state.lock().expect("serve state poisoned");
        if st.shutdown {
            return Err(ServeError::ShuttingDown);
        }
        if st.queue.len() >= shared.cfg.queue_depth {
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            mersit_obs::incr("serve.admission.rejected");
            return Err(ServeError::QueueFull {
                depth: shared.cfg.queue_depth,
            });
        }
        st.queue.push_back(pending);
        shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        mersit_obs::incr("serve.requests");
        mersit_obs::observe("serve.queue.depth", st.queue.len() as f64);
        drop(st);
        shared.notify.notify_all();
        Ok(Ticket { rx })
    }

    /// Submits and blocks for the response: `submit(req)?.wait()`.
    ///
    /// # Errors
    ///
    /// Everything [`Server::submit`] rejects, plus
    /// [`ServeError::Internal`] when the batch panicked in compute.
    pub fn infer(&self, req: Request) -> Result<Response, ServeError> {
        self.submit(req)?.wait()
    }

    /// A consistent-enough snapshot of the server's counters.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        let s = &self.shared.stats;
        ServeStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            failed: s.failed.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            cached_plans: self.shared.cache.len(),
        }
    }

    /// Stops admission, serves every already-queued request, and joins
    /// the batcher thread. Idempotent; also runs on drop. Submissions
    /// racing with shutdown either get queued-and-served or
    /// [`ServeError::ShuttingDown`] — never silence.
    pub fn shutdown(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("serve state poisoned");
            st.shutdown = true;
        }
        self.shared.notify.notify_all();
        if let Some(h) = self.batcher.take() {
            h.join().expect("batcher thread panicked");
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The batcher: wait for work, coalesce the front group, flush, repeat.
/// On shutdown it keeps flushing until the queue is empty, so every
/// admitted request is answered.
fn batcher_loop(shared: &Shared) {
    loop {
        let Some(batch) = next_batch(shared) else {
            return;
        };
        flush(shared, batch);
    }
}

/// Blocks until a batch is ready under the flush policy — the front
/// request's group reaching `max_batch`, the group already holding
/// *every* queued request (waiting longer could not grow the batch, so a
/// lone request never pays `max_wait_us`), or its deadline
/// (`enqueued + max_wait_us`) passing, whichever comes first; shutdown
/// flushes immediately. Returns `None` when shut down and drained.
fn next_batch(shared: &Shared) -> Option<Vec<Pending>> {
    let mut st: MutexGuard<'_, State> = shared.state.lock().expect("serve state poisoned");
    loop {
        if st.queue.is_empty() {
            if st.shutdown {
                return None;
            }
            st = shared.notify.wait(st).expect("serve state poisoned");
            continue;
        }
        let front = st.queue.front().expect("non-empty queue");
        let key = front.key.clone();
        let deadline = front.enqueued + Duration::from_micros(shared.cfg.max_wait_us);
        let same = st.queue.iter().filter(|p| p.key == key).count();
        let now = Instant::now();
        if same >= shared.cfg.max_batch || same == st.queue.len() || now >= deadline || st.shutdown
        {
            return Some(extract_group(&mut st.queue, &key, shared.cfg.max_batch));
        }
        let (guard, _) = shared
            .notify
            .wait_timeout(st, deadline - now)
            .expect("serve state poisoned");
        st = guard;
    }
}

/// Removes up to `max` requests with this key from the queue, preserving
/// FIFO order (both inside the batch and among the left-behind rest).
fn extract_group(queue: &mut VecDeque<Pending>, key: &GroupKey, max: usize) -> Vec<Pending> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < queue.len() && out.len() < max {
        if queue[i].key == *key {
            out.push(queue.remove(i).expect("index checked"));
        } else {
            i += 1;
        }
    }
    out
}

/// Runs one coalesced batch end to end and answers every ticket in it.
/// A panic in compute (bad input shape, model/plan mismatch) fails the
/// batch with [`ServeError::Internal`] instead of killing the server.
fn flush(shared: &Shared, batch: Vec<Pending>) {
    let _span = mersit_obs::span("serve.batch.flush");
    let n = batch.len();
    mersit_obs::observe("serve.batch.size", n as f64);
    shared.stats.batches.fetch_add(1, Ordering::Relaxed);
    let key = &batch[0].key;
    let entry = shared.models.get(&key.model).expect("validated at submit");
    let compute_start = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let parts: Vec<&Tensor> = batch.iter().map(|p| &p.input).collect();
        let x = Tensor::cat_outer(&parts);
        match (&batch[0].fmt, &key.format) {
            (Some(assign), Some(canonical)) => {
                let plan_key = PlanKey {
                    model: key.model.clone(),
                    format: canonical.clone(),
                    executor: key.executor,
                };
                let plan = shared
                    .cache
                    .get_or_build(&plan_key, &entry.model, assign, &entry.cal);
                plan.predict_one_batch(&entry.model, x)
            }
            _ => predict_one_batch_ref(&entry.model.net, x),
        }
    }));
    match result {
        Ok(preds) => {
            assert_eq!(preds.len(), n, "one prediction per batched request");
            let done = Instant::now();
            for (p, prediction) in batch.into_iter().zip(preds) {
                let resp = Response {
                    prediction,
                    batch_size: n,
                    queue_us: micros_between(p.enqueued, compute_start),
                    total_us: micros_between(p.enqueued, done),
                };
                shared.stats.completed.fetch_add(1, Ordering::Relaxed);
                let _ = p.tx.send(Ok(resp));
            }
        }
        Err(payload) => {
            mersit_obs::incr("serve.batch.failed");
            let msg = panic_message(&payload);
            for p in batch {
                shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                let _ = p.tx.send(Err(ServeError::Internal(msg.clone())));
            }
        }
    }
}

fn micros_between(from: Instant, to: Instant) -> u64 {
    u64::try_from(to.saturating_duration_since(from).as_micros()).unwrap_or(u64::MAX)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "batch compute panicked".to_owned()
    }
}
