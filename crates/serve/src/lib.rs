//! # mersit-serve — a persistent in-process inference server over compiled plans
//!
//! The serving layer the ROADMAP's north star asks for: admit requests,
//! coalesce them into GEMM-friendly batches, run them through build-once
//! [`mersit_ptq::QuantPlan`]s on the global work-stealing pool, and
//! answer with per-request latency accounting. See `SERVING.md` at the
//! repository root for the user-facing guide.
//!
//! ```text
//! clients ──submit──▶ bounded queue ──▶ dynamic batcher ──▶ plan cache
//!    ▲                (backpressure)    (max_batch /        (build once,
//!    │                                   max_wait_us)        share Arc)
//!    └──────── Response ◀── ticket ◀─── global work-stealing pool
//!
//! sockets ◀─frames─▶ event loop ([`net`]) ──submit──▶ (same queue)
//!                    non-blocking poll(2), length-prefixed protocol
//!                    (PROTOCOL.md), pipelined requests per connection
//! ```
//!
//! In-process callers use [`Server::submit`] / [`Server::infer`]
//! directly; remote clients speak the length-prefixed binary protocol of
//! `PROTOCOL.md` to the [`net`] event loop (started with [`net::spawn`]
//! or the `mersit-served` binary), which multiplexes every connection
//! onto the same admission queue without blocking the batcher.
//!
//! # Invariants
//!
//! * **Batching is invisible in the bits.** A request's prediction is
//!   bit-identical whether it ran alone or coalesced into any batch, for
//!   both executors: the float path quantizes activations element-wise
//!   through calibrated per-site scales, and the bit-true path encodes
//!   activations with *per-row* dynamic scales
//!   ([`mersit_ptq::QuantGemm::row_scales`]) — nothing in a forward mixes
//!   batch-mates. Pinned by `tests/batching_props.rs` across both
//!   executors and thread counts {1, 2, 7}.
//! * **Admission conservation.** Every [`Server::submit`] resolves to
//!   exactly one of: a [`Response`], an admission error
//!   ([`ServeError::QueueFull`] / validation), or
//!   [`ServeError::Internal`] if its batch panicked in compute. Shutdown
//!   drains the queue and answers everything in it — no request is
//!   silently dropped. Pinned by `tests/stress.rs`.
//! * **One compute pool.** The server spawns exactly one batcher thread,
//!   which only admits and coalesces; every tensor operation dispatches
//!   through the existing `mersit_tensor::pool` (sized by
//!   `MERSIT_THREADS`). There is no second compute pool to fight it.
//! * **Plans build once.** The [`PlanCache`] memoizes by
//!   `(model, canonical format, executor)`; concurrent requests for the
//!   same triple share one [`std::sync::Arc`]'d plan.
//!
//! # Observability
//!
//! With `MERSIT_OBS=1`: `serve.queue.depth` and `serve.batch.size`
//! histograms, `serve.requests` / `serve.admission.rejected` /
//! `serve.plan.cache.hit` / `serve.plan.cache.miss` counters, and
//! `serve.batch.flush` / `serve.plan.build` spans. The socket layer adds
//! `serve.net.connections` / `serve.net.frames.in` /
//! `serve.net.bytes.read` / `serve.net.bytes.written` counters and a
//! `serve.net.frame.decode` span per decode attempt.

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss,
    clippy::must_use_candidate,
    clippy::module_name_repetitions,
    clippy::doc_markdown,
    clippy::missing_errors_doc,
    // Lock-poisoning expects: a poisoned serve mutex is already a bug.
    clippy::missing_panics_doc
)]

pub mod cache;
pub mod config;
mod conn;
pub mod net;
pub mod server;
pub mod wire;

pub use cache::{PlanCache, PlanKey};
pub use config::{NetConfig, ServeConfig};
pub use net::{NetHandle, NetStats};
pub use server::{Request, Response, ServeError, ServeStats, Server, Ticket};
