//! The wire protocol: a length-prefixed binary framing for requests and
//! responses over a byte stream. `PROTOCOL.md` at the repository root is
//! the normative byte-level specification; this module is its reference
//! implementation, and `tests/wire_props.rs` pins the round-trip and
//! malformed-input behavior.
//!
//! Design points, in brief:
//!
//! * **Self-delimiting.** Every frame starts with an 8-byte header
//!   (magic, version, type, flags, payload length), so a reader always
//!   knows how many bytes it is waiting for — the precondition for
//!   pipelining many requests on one connection.
//! * **Correlation ids, not ordering.** Responses carry the request's
//!   client-chosen `id` and may arrive in any order; clients must match
//!   on `id`, never on position.
//! * **Two failure severities.** A frame whose *boundary* is intact but
//!   whose payload doesn't parse yields [`DecodeError::Malformed`] — the
//!   connection skips the frame, answers with an [`ERR_MALFORMED`] error
//!   frame, and keeps going. A broken *boundary* (bad magic, unknown
//!   version/type, oversized length) yields [`DecodeError::Fatal`]: the
//!   stream position can no longer be trusted, so the peer gets one
//!   [`ERR_PROTOCOL`] error frame and the connection closes.
//! * **Big-endian everywhere**, including the IEEE-754 bit patterns of
//!   `f32` payload elements (`f32::to_bits` / `from_bits`, so NaN
//!   payloads survive byte-for-byte).

use crate::server::{Response, ServeError};
use mersit_ptq::Executor;

/// First byte of every frame. Chosen to be outside ASCII so that a
/// text-protocol client connecting by mistake fails fast.
pub const MAGIC: u8 = 0xC8;
/// The one protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Fixed size of the frame header in bytes.
pub const HEADER_LEN: usize = 8;

/// Frame type tag: request. Client → server.
pub const FRAME_REQUEST: u8 = 0x01;
/// Frame type tag: response. Server → client.
pub const FRAME_RESPONSE: u8 = 0x02;
/// Frame type tag: error. Server → client.
pub const FRAME_ERROR: u8 = 0x03;
/// Frame type tag: ping. Client → server liveness probe.
pub const FRAME_PING: u8 = 0x04;
/// Frame type tag: pong. Server → client, echoing the ping token.
pub const FRAME_PONG: u8 = 0x05;

/// Error code: admission queue full (reserved — the reference server
/// prefers parking + TCP backpressure over emitting this, see
/// `PROTOCOL.md` §5).
pub const ERR_QUEUE_FULL: u16 = 1;
/// Error code: no model with the requested name is loaded.
pub const ERR_UNKNOWN_MODEL: u16 = 2;
/// Error code: the assignment spec did not parse.
pub const ERR_BAD_FORMAT: u16 = 3;
/// Error code: the server is shutting down.
pub const ERR_SHUTTING_DOWN: u16 = 4;
/// Error code: the batch this request rode in failed in compute.
pub const ERR_INTERNAL: u16 = 5;
/// Error code: a well-delimited frame whose payload did not parse. The
/// connection stays open.
pub const ERR_MALFORMED: u16 = 6;
/// Error code: framing lost (bad magic/version/type/flags or an
/// oversized declared length). The server closes the connection after
/// this frame.
pub const ERR_PROTOCOL: u16 = 7;

/// Highest input rank a request may declare.
pub const MAX_RANK: usize = 8;

/// A decoded request frame: everything needed to build a
/// [`crate::Request`] against an in-process [`crate::Server`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// Client-chosen correlation id, echoed verbatim in the response or
    /// error frame. Clients pipelining multiple requests must keep ids
    /// unique per connection while in flight.
    pub id: u64,
    /// Target model name (UTF-8, ≤ 255 bytes).
    pub model: String,
    /// Format / assignment spec (`"MERSIT(8,2)"`,
    /// `"MERSIT(8,2);head=FP(8,4)"`); `None` (zero-length on the wire)
    /// selects the FP32 reference forward.
    pub assignment: Option<String>,
    /// Requested executor: `None` = server default
    /// (wire value 0), otherwise float (1) / bit-true (2).
    pub executor: Option<Executor>,
    /// Sample shape, **without** a batch dimension (the server batches).
    pub shape: Vec<usize>,
    /// Row-major sample payload; `data.len()` equals the shape product.
    pub data: Vec<f32>,
}

/// A decoded response frame (the server's answer to one request).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireResponse {
    /// Correlation id of the request this answers.
    pub id: u64,
    /// Argmax class index.
    pub prediction: u32,
    /// Size of the coalesced batch that computed this.
    pub batch_size: u32,
    /// Microseconds from admission to the batch starting to compute.
    pub queue_us: u64,
    /// Microseconds from admission to the response being ready.
    pub total_us: u64,
}

/// A decoded error frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Correlation id of the offending request, or `0` when the error is
    /// not attributable to a specific request (e.g. framing lost).
    pub id: u64,
    /// One of the `ERR_*` codes.
    pub code: u16,
    /// Human-readable detail (UTF-8, ≤ 65 535 bytes). Informational
    /// only — clients must dispatch on `code`.
    pub message: String,
}

/// Any frame the protocol can carry.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A client inference request.
    Request(WireRequest),
    /// A server answer.
    Response(WireResponse),
    /// A server-side failure report.
    Error(WireError),
    /// Liveness probe carrying an opaque token.
    Ping(u64),
    /// Probe answer echoing the token.
    Pong(u64),
}

/// Why a buffer failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The frame boundary itself is untrustworthy (bad magic, unknown
    /// version or type, nonzero flags, declared length over the limit).
    /// The connection must send one [`ERR_PROTOCOL`] frame and close.
    Fatal(String),
    /// The frame boundary is intact — `consumed` bytes cover the whole
    /// frame — but the payload inside did not parse. Skip the frame,
    /// answer [`ERR_MALFORMED`] (with `id` when it could be recovered,
    /// else 0), and keep the connection.
    Malformed {
        /// Total frame size to skip (header + payload).
        consumed: usize,
        /// Recovered request id, or 0.
        id: u64,
        /// What went wrong.
        reason: String,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Fatal(m) => write!(f, "protocol error: {m}"),
            DecodeError::Malformed { reason, .. } => write!(f, "malformed frame: {reason}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Maps a [`ServeError`] to its wire error code.
#[must_use]
pub fn error_code(e: &ServeError) -> u16 {
    match e {
        ServeError::QueueFull { .. } => ERR_QUEUE_FULL,
        ServeError::UnknownModel(_) => ERR_UNKNOWN_MODEL,
        ServeError::BadFormat(_) => ERR_BAD_FORMAT,
        ServeError::ShuttingDown => ERR_SHUTTING_DOWN,
        ServeError::Internal(_) => ERR_INTERNAL,
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Writes a frame header followed by the payload produced by `body`.
/// The payload length field is back-patched, so `body` can emit freely.
fn frame(out: &mut Vec<u8>, frame_type: u8, body: impl FnOnce(&mut Vec<u8>)) {
    out.push(MAGIC);
    out.push(VERSION);
    out.push(frame_type);
    out.push(0); // flags: must be zero in v1
    let len_at = out.len();
    put_u32(out, 0);
    let payload_start = out.len();
    body(out);
    let payload_len =
        u32::try_from(out.len() - payload_start).expect("frame payload exceeds u32::MAX");
    out[len_at..len_at + 4].copy_from_slice(&payload_len.to_be_bytes());
}

/// Encodes a request frame.
///
/// # Panics
///
/// Panics if the model name exceeds 255 bytes, the assignment spec
/// exceeds 65 535 bytes, the rank exceeds [`MAX_RANK`], a dimension
/// exceeds `u32::MAX`, or `data.len()` differs from the shape product —
/// these are caller bugs, not wire conditions.
pub fn encode_request(req: &WireRequest, out: &mut Vec<u8>) {
    let model = req.model.as_bytes();
    assert!(model.len() <= 255, "model name too long for the wire");
    let assign = req.assignment.as_deref().unwrap_or("").as_bytes();
    assert!(assign.len() <= 65_535, "assignment spec too long");
    assert!(
        req.shape.len() <= MAX_RANK && !req.shape.is_empty(),
        "bad rank"
    );
    let elems: usize = req.shape.iter().product();
    assert_eq!(req.data.len(), elems, "payload/shape mismatch");
    frame(out, FRAME_REQUEST, |out| {
        put_u64(out, req.id);
        out.push(model.len() as u8);
        out.extend_from_slice(model);
        put_u16(out, assign.len() as u16);
        out.extend_from_slice(assign);
        out.push(match req.executor {
            None => 0,
            Some(Executor::Float) => 1,
            Some(Executor::BitTrue) => 2,
        });
        out.push(req.shape.len() as u8);
        for &d in &req.shape {
            put_u32(out, u32::try_from(d).expect("dimension exceeds u32"));
        }
        for &v in &req.data {
            put_u32(out, v.to_bits());
        }
    });
}

/// Encodes a response frame answering request `id`.
pub fn encode_response(id: u64, resp: &Response, out: &mut Vec<u8>) {
    frame(out, FRAME_RESPONSE, |out| {
        put_u64(out, id);
        put_u32(out, u32::try_from(resp.prediction).unwrap_or(u32::MAX));
        put_u32(out, u32::try_from(resp.batch_size).unwrap_or(u32::MAX));
        put_u64(out, resp.queue_us);
        put_u64(out, resp.total_us);
    });
}

/// Encodes an error frame (code + truncated-to-u16 message).
pub fn encode_error(id: u64, code: u16, message: &str, out: &mut Vec<u8>) {
    let msg = truncate_utf8(message, 65_535);
    frame(out, FRAME_ERROR, |out| {
        put_u64(out, id);
        put_u16(out, code);
        put_u16(out, msg.len() as u16);
        out.extend_from_slice(msg);
    });
}

/// Encodes a ping frame carrying `token`.
pub fn encode_ping(token: u64, out: &mut Vec<u8>) {
    frame(out, FRAME_PING, |out| put_u64(out, token));
}

/// Encodes a pong frame echoing `token`.
pub fn encode_pong(token: u64, out: &mut Vec<u8>) {
    frame(out, FRAME_PONG, |out| put_u64(out, token));
}

/// Truncates to at most `max` bytes on a UTF-8 boundary.
fn truncate_utf8(s: &str, max: usize) -> &[u8] {
    if s.len() <= max {
        return s.as_bytes();
    }
    let mut end = max;
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    &s.as_bytes()[..end]
}

/// Cursor over a frame payload with bounds-checked big-endian reads.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "payload truncated: wanted {n} more bytes, have {}",
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn utf8(&mut self, n: usize) -> Result<&'a str, String> {
        std::str::from_utf8(self.take(n)?).map_err(|e| format!("invalid UTF-8: {e}"))
    }
}

/// Attempts to decode one frame from the front of `buf`.
///
/// * `Ok(None)` — `buf` holds no complete frame yet; read more bytes.
/// * `Ok(Some((frame, consumed)))` — one frame decoded; drop `consumed`
///   bytes from the front of `buf` and call again.
/// * `Err(..)` — see [`DecodeError`] for the two severities.
///
/// `max_payload` bounds the declared payload length (a resource cap, not
/// a protocol constant — the reference server uses its read-buffer
/// capacity); longer declarations are [`DecodeError::Fatal`] because the
/// reader will never buffer enough to reach the next boundary.
///
/// Never panics, for any byte sequence: pinned by `tests/wire_props.rs`.
pub fn decode_frame(buf: &[u8], max_payload: usize) -> Result<Option<(Frame, usize)>, DecodeError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    if buf[0] != MAGIC {
        return Err(DecodeError::Fatal(format!(
            "bad magic byte 0x{:02X} (want 0x{MAGIC:02X})",
            buf[0]
        )));
    }
    if buf[1] != VERSION {
        return Err(DecodeError::Fatal(format!(
            "unsupported protocol version {} (this build speaks {VERSION})",
            buf[1]
        )));
    }
    let frame_type = buf[2];
    if buf[3] != 0 {
        return Err(DecodeError::Fatal(format!(
            "nonzero flags 0x{:02X} in a v1 frame",
            buf[3]
        )));
    }
    let payload_len = u32::from_be_bytes(buf[4..8].try_into().expect("len 4")) as usize;
    if payload_len > max_payload {
        return Err(DecodeError::Fatal(format!(
            "declared payload of {payload_len} bytes exceeds the {max_payload}-byte limit"
        )));
    }
    let total = HEADER_LEN + payload_len;
    if buf.len() < total {
        return Ok(None);
    }
    let payload = &buf[HEADER_LEN..total];
    let frame = match frame_type {
        FRAME_REQUEST => decode_request(payload).map(Frame::Request),
        FRAME_RESPONSE => decode_response(payload).map(Frame::Response),
        FRAME_ERROR => decode_error(payload).map(Frame::Error),
        FRAME_PING => decode_token(payload).map(Frame::Ping),
        FRAME_PONG => decode_token(payload).map(Frame::Pong),
        t => {
            return Err(DecodeError::Fatal(format!("unknown frame type 0x{t:02X}")));
        }
    };
    match frame {
        Ok(f) => Ok(Some((f, total))),
        Err(reason) => Err(DecodeError::Malformed {
            consumed: total,
            id: recover_id(payload),
            reason,
        }),
    }
}

/// Best-effort request-id recovery from a malformed payload (the id is
/// always the first 8 payload bytes of every id-carrying frame type).
fn recover_id(payload: &[u8]) -> u64 {
    if payload.len() >= 8 {
        u64::from_be_bytes(payload[..8].try_into().expect("len 8"))
    } else {
        0
    }
}

fn decode_request(payload: &[u8]) -> Result<WireRequest, String> {
    let mut r = Reader::new(payload);
    let id = r.u64()?;
    let model_len = r.u8()? as usize;
    let model = r.utf8(model_len)?.to_owned();
    if model.is_empty() {
        return Err("empty model name".into());
    }
    let assign_len = r.u16()? as usize;
    let assignment = if assign_len == 0 {
        None
    } else {
        Some(r.utf8(assign_len)?.to_owned())
    };
    let executor = match r.u8()? {
        0 => None,
        1 => Some(Executor::Float),
        2 => Some(Executor::BitTrue),
        e => return Err(format!("unknown executor code {e}")),
    };
    let rank = r.u8()? as usize;
    if rank == 0 || rank > MAX_RANK {
        return Err(format!("rank {rank} outside 1..={MAX_RANK}"));
    }
    let mut shape = Vec::with_capacity(rank);
    let mut elems: usize = 1;
    for _ in 0..rank {
        let d = r.u32()? as usize;
        if d == 0 {
            return Err("zero dimension".into());
        }
        elems = elems
            .checked_mul(d)
            .ok_or_else(|| "shape product overflows".to_owned())?;
        shape.push(d);
    }
    // The element count must exactly consume the rest of the payload —
    // a mismatch means the sender and receiver disagree about layout.
    if r.remaining() != elems * 4 {
        return Err(format!(
            "payload holds {} bytes of data but the shape wants {}",
            r.remaining(),
            elems * 4
        ));
    }
    let mut data = Vec::with_capacity(elems);
    for _ in 0..elems {
        data.push(f32::from_bits(r.u32()?));
    }
    Ok(WireRequest {
        id,
        model,
        assignment,
        executor,
        shape,
        data,
    })
}

fn decode_response(payload: &[u8]) -> Result<WireResponse, String> {
    let mut r = Reader::new(payload);
    let resp = WireResponse {
        id: r.u64()?,
        prediction: r.u32()?,
        batch_size: r.u32()?,
        queue_us: r.u64()?,
        total_us: r.u64()?,
    };
    if r.remaining() != 0 {
        return Err(format!("{} trailing bytes after response", r.remaining()));
    }
    Ok(resp)
}

fn decode_error(payload: &[u8]) -> Result<WireError, String> {
    let mut r = Reader::new(payload);
    let id = r.u64()?;
    let code = r.u16()?;
    let msg_len = r.u16()? as usize;
    let message = r.utf8(msg_len)?.to_owned();
    if r.remaining() != 0 {
        return Err(format!("{} trailing bytes after error", r.remaining()));
    }
    Ok(WireError { id, code, message })
}

fn decode_token(payload: &[u8]) -> Result<u64, String> {
    let mut r = Reader::new(payload);
    let token = r.u64()?;
    if r.remaining() != 0 {
        return Err(format!("{} trailing bytes after ping/pong", r.remaining()));
    }
    Ok(token)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let req = WireRequest {
            id: 42,
            model: "vgg_t".into(),
            assignment: Some("MERSIT(8,2);head=FP(8,4)".into()),
            executor: Some(Executor::BitTrue),
            shape: vec![3, 4, 4],
            data: (0..48).map(|i| i as f32 * 0.5 - 3.0).collect(),
        };
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let (frame, used) = decode_frame(&buf, 1 << 20).unwrap().unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(frame, Frame::Request(req));
    }

    #[test]
    fn truncated_needs_more_and_garbage_is_fatal() {
        let mut buf = Vec::new();
        encode_ping(7, &mut buf);
        for cut in 0..buf.len() {
            assert_eq!(decode_frame(&buf[..cut], 1 << 20), Ok(None));
        }
        assert!(matches!(
            decode_frame(b"GET / HTTP/1.1\r\n", 1 << 20),
            Err(DecodeError::Fatal(_))
        ));
    }

    #[test]
    fn oversized_declaration_is_fatal() {
        let mut buf = vec![MAGIC, VERSION, FRAME_PING, 0];
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            decode_frame(&buf, 1 << 20),
            Err(DecodeError::Fatal(_))
        ));
    }

    /// Pins the annotated hex example in `PROTOCOL.md` §6 — if this
    /// fails, either the codec or the spec drifted; fix whichever is
    /// wrong and keep the two in sync.
    #[test]
    fn protocol_md_worked_example_matches() {
        fn unhex(s: &str) -> Vec<u8> {
            (0..s.len())
                .step_by(2)
                .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
                .collect()
        }
        let req = WireRequest {
            id: 7,
            model: "vgg_t".into(),
            assignment: Some("MERSIT(8,2)".into()),
            executor: Some(Executor::BitTrue),
            shape: vec![4],
            data: vec![1.5, -2.0, 0.25, 3.0],
        };
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        assert_eq!(
            buf,
            unhex(
                "c8010100000000310000000000000007057667675f74000b4d45525349\
                 5428382c32290201000000043fc00000c00000003e80000040400000"
            )
        );
        let resp = Response {
            prediction: 3,
            batch_size: 2,
            queue_us: 412,
            total_us: 903,
        };
        let mut buf = Vec::new();
        encode_response(7, &resp, &mut buf);
        assert_eq!(
            buf,
            unhex(
                "c80102000000002000000000000000070000000300000002000000000000019c0000000000000387"
            )
        );
    }

    #[test]
    fn malformed_payload_recovers_id_and_boundary() {
        // A request frame whose payload is just an id (no model etc.).
        let mut buf = Vec::new();
        frame(&mut buf, FRAME_REQUEST, |out| put_u64(out, 0xDEAD));
        match decode_frame(&buf, 1 << 20) {
            Err(DecodeError::Malformed { consumed, id, .. }) => {
                assert_eq!(consumed, buf.len());
                assert_eq!(id, 0xDEAD);
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }
}
