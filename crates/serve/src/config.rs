//! Server tuning knobs: batching limits, queue depth, default executor.

use mersit_ptq::Executor;

/// Tuning knobs for a [`crate::Server`]: how aggressively to batch, how
/// much work to admit, and which execution engine requests run on when
/// they don't pick one.
///
/// Built with consuming setters, so a config reads as one expression:
///
/// ```
/// use mersit_serve::ServeConfig;
///
/// let cfg = ServeConfig::default().max_batch(16).max_wait_us(500);
/// assert_eq!(cfg.max_batch, 16);
/// assert_eq!(cfg.max_wait_us, 500);
/// assert_eq!(cfg.queue_depth, 64); // untouched knobs keep their defaults
/// ```
///
/// Every knob is also settable from the environment (the `MERSIT_SERVE_*`
/// variables) via [`ServeConfig::from_env`]; see `SERVING.md` for the
/// trade-offs behind each default.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Flush a coalesced batch once it reaches this many samples
    /// (`MERSIT_SERVE_MAX_BATCH`, default 8). Bigger batches amortize
    /// per-forward overhead and feed the GEMMs larger row blocks; they
    /// also make the last request in a batch wait for the first.
    pub max_batch: usize,
    /// Flush a partial batch once its oldest request has waited this many
    /// microseconds (`MERSIT_SERVE_MAX_WAIT_US`, default 2000). The
    /// latency price a request can pay waiting for batch-mates.
    pub max_wait_us: u64,
    /// Reject new requests while this many are already queued
    /// (`MERSIT_SERVE_QUEUE_DEPTH`, default 64). Bounds memory and tail
    /// latency under overload: past this depth, [`crate::Server::submit`]
    /// returns [`crate::ServeError::QueueFull`] instead of queueing.
    pub queue_depth: usize,
    /// Executor for requests that don't select one
    /// ([`ServeConfig::from_env`] honors `MERSIT_EXECUTOR`; the plain
    /// default is [`Executor::Float`]).
    pub default_executor: Executor,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            max_wait_us: 2000,
            queue_depth: 64,
            default_executor: Executor::Float,
        }
    }
}

impl ServeConfig {
    /// Reads every knob from the environment: `MERSIT_SERVE_MAX_BATCH`,
    /// `MERSIT_SERVE_MAX_WAIT_US`, `MERSIT_SERVE_QUEUE_DEPTH`, and
    /// `MERSIT_EXECUTOR` for the default engine. Unset or unparsable
    /// variables keep the [`ServeConfig::default`] values (zero values
    /// are clamped up to 1 where zero would deadlock admission).
    #[must_use]
    pub fn from_env() -> Self {
        let d = Self::default();
        Self {
            max_batch: env_usize("MERSIT_SERVE_MAX_BATCH", d.max_batch).max(1),
            max_wait_us: env_u64("MERSIT_SERVE_MAX_WAIT_US", d.max_wait_us),
            queue_depth: env_usize("MERSIT_SERVE_QUEUE_DEPTH", d.queue_depth).max(1),
            default_executor: Executor::from_env(),
        }
    }

    /// Sets the batch-size flush threshold (clamped up to 1).
    ///
    /// ```
    /// use mersit_serve::ServeConfig;
    /// assert_eq!(ServeConfig::default().max_batch(0).max_batch, 1);
    /// ```
    #[must_use]
    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch = n.max(1);
        self
    }

    /// Sets the latency budget (µs) a partial batch may wait for mates.
    /// `0` means flush immediately — batching only happens when requests
    /// are already queued at flush time.
    #[must_use]
    pub fn max_wait_us(mut self, us: u64) -> Self {
        self.max_wait_us = us;
        self
    }

    /// Sets the admission-queue depth (clamped up to 1).
    #[must_use]
    pub fn queue_depth(mut self, n: usize) -> Self {
        self.queue_depth = n.max(1);
        self
    }

    /// Sets the executor used by requests that don't choose one.
    ///
    /// ```
    /// use mersit_ptq::Executor;
    /// use mersit_serve::ServeConfig;
    /// let cfg = ServeConfig::default().default_executor(Executor::BitTrue);
    /// assert_eq!(cfg.default_executor, Executor::BitTrue);
    /// ```
    #[must_use]
    pub fn default_executor(mut self, e: Executor) -> Self {
        self.default_executor = e;
        self
    }
}

/// Tuning knobs for the socket front door ([`crate::net`]): where to
/// listen, how many connections to multiplex, and the per-connection
/// buffer caps that implement backpressure.
///
/// ```
/// use mersit_serve::NetConfig;
///
/// let cfg = NetConfig::default().addr("127.0.0.1:0").max_conns(256);
/// assert_eq!(cfg.addr, "127.0.0.1:0");
/// assert_eq!(cfg.max_conns, 256);
/// assert_eq!(cfg.read_buf, 256 * 1024); // untouched knobs keep defaults
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetConfig {
    /// Listen address (`MERSIT_SERVE_ADDR`, default `127.0.0.1:7878`).
    /// Port `0` binds an ephemeral port — the bound address is reported
    /// by [`crate::net::NetHandle::addr`].
    pub addr: String,
    /// Serve at most this many simultaneous connections
    /// (`MERSIT_SERVE_MAX_CONNS`, default 1024). At the cap the listener
    /// is simply not polled, so further connects queue in the kernel
    /// accept backlog instead of being reset.
    pub max_conns: usize,
    /// Per-connection read-buffer capacity in bytes
    /// (`MERSIT_SERVE_READ_BUF`, default 256 KiB, clamped ≥ 4096). Also
    /// the maximum frame payload the server will accept: a frame must
    /// fit the buffer to ever decode.
    pub read_buf: usize,
    /// Per-connection write-buffer cap in bytes
    /// (`MERSIT_SERVE_WRITE_BUF`, default 256 KiB, clamped ≥ 4096). A
    /// connection whose client stops reading accumulates responses up to
    /// this cap; past it the server stops reading new requests from that
    /// connection until the backlog drains (backpressure, not OOM).
    pub write_buf: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_owned(),
            max_conns: 1024,
            read_buf: 256 * 1024,
            write_buf: 256 * 1024,
        }
    }
}

impl NetConfig {
    /// Reads every knob from the environment: `MERSIT_SERVE_ADDR`,
    /// `MERSIT_SERVE_MAX_CONNS`, `MERSIT_SERVE_READ_BUF`,
    /// `MERSIT_SERVE_WRITE_BUF`. Unset or unparsable variables keep the
    /// [`NetConfig::default`] values.
    #[must_use]
    pub fn from_env() -> Self {
        let d = Self::default();
        Self {
            addr: std::env::var("MERSIT_SERVE_ADDR")
                .ok()
                .map_or(d.addr, |v| v.trim().to_owned()),
            max_conns: env_usize("MERSIT_SERVE_MAX_CONNS", d.max_conns).max(1),
            read_buf: env_usize("MERSIT_SERVE_READ_BUF", d.read_buf).max(4096),
            write_buf: env_usize("MERSIT_SERVE_WRITE_BUF", d.write_buf).max(4096),
        }
    }

    /// Sets the listen address.
    #[must_use]
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the connection cap (clamped up to 1).
    #[must_use]
    pub fn max_conns(mut self, n: usize) -> Self {
        self.max_conns = n.max(1);
        self
    }

    /// Sets the read-buffer / max-frame cap (clamped up to 4096).
    #[must_use]
    pub fn read_buf(mut self, bytes: usize) -> Self {
        self.read_buf = bytes.max(4096);
        self
    }

    /// Sets the write-buffer backpressure cap (clamped up to 4096).
    #[must_use]
    pub fn write_buf(mut self, bytes: usize) -> Self {
        self.write_buf = bytes.max(4096);
        self
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_documented_values() {
        let d = ServeConfig::default();
        assert_eq!(d.max_batch, 8);
        assert_eq!(d.max_wait_us, 2000);
        assert_eq!(d.queue_depth, 64);
        assert_eq!(d.default_executor, Executor::Float);
    }

    #[test]
    fn net_defaults_and_clamps() {
        let d = NetConfig::default();
        assert_eq!(d.addr, "127.0.0.1:7878");
        assert_eq!(d.max_conns, 1024);
        assert_eq!(d.read_buf, 256 * 1024);
        assert_eq!(d.write_buf, 256 * 1024);
        let c = NetConfig::default()
            .addr("0.0.0.0:0")
            .max_conns(0)
            .read_buf(1)
            .write_buf(1);
        assert_eq!(c.addr, "0.0.0.0:0");
        assert_eq!(c.max_conns, 1);
        assert_eq!(c.read_buf, 4096);
        assert_eq!(c.write_buf, 4096);
    }

    #[test]
    fn setters_chain_and_clamp() {
        let c = ServeConfig::default()
            .max_batch(32)
            .max_wait_us(0)
            .queue_depth(0)
            .default_executor(Executor::BitTrue);
        assert_eq!(c.max_batch, 32);
        assert_eq!(c.max_wait_us, 0);
        assert_eq!(c.queue_depth, 1);
        assert_eq!(c.default_executor, Executor::BitTrue);
    }
}
