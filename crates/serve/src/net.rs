//! The socket front door: one event-loop thread multiplexing every TCP
//! connection onto the in-process [`Server`] — no thread-per-client, no
//! async runtime, no second compute pool.
//!
//! The loop is a hand-rolled `poll(2)` readiness cycle over `std::net`
//! sockets set non-blocking (a direct FFI declaration against the libc
//! the Rust standard library already links; no external crates). Each
//! iteration:
//!
//! 1. retries parked (queue-refused) admissions and decodes any complete
//!    frames already buffered,
//! 2. polls completed [`crate::Ticket`]s and turns them into response
//!    frames (the batcher thread never blocks on a slow client — the
//!    ticket channel decouples it),
//! 3. builds the `pollfd` set from each connection's declared interest
//!    (read paused under backpressure, write only when bytes wait),
//! 4. `poll(2)`s with a short timeout while inference is in flight, a
//!    long one when idle,
//! 5. accepts, reads, and writes whatever became ready.
//!
//! # Invariants
//!
//! * **The batcher never blocks on the network.** Responses cross from
//!   the batcher to the event loop over the per-request ticket channel;
//!   a client that stops reading only ever stalls *its own* connection
//!   (write-buffer cap → reads pause → TCP backpressure).
//! * **Admission conservation extends to the wire.** Every decoded
//!   request frame is answered by exactly one response or error frame,
//!   unless its connection died first — in which case the in-process
//!   server still completes the work and the response is discarded with
//!   the connection (`submitted == completed + failed` server-side,
//!   pinned by `tests/net_e2e.rs` across mid-flight disconnects).
//! * **Graceful drain.** [`NetHandle::shutdown`] stops accepting and
//!   reading, but every in-flight request still computes, flushes, and
//!   only then closes — pinned by `tests/net_e2e.rs`.
//!
//! # Observability
//!
//! With `MERSIT_OBS=1`: `serve.net.connections` / `serve.net.frames.in`
//! counters, `serve.net.bytes.read` / `serve.net.bytes.written` byte
//! counters, and a `serve.net.frame.decode` span per decode attempt.

use crate::config::NetConfig;
use crate::conn::Conn;
use crate::server::Server;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Minimal `poll(2)` FFI: the standard library already links libc on
/// every unix target, so declaring the symbol directly costs nothing and
/// keeps the workspace dependency-free.
#[cfg(unix)]
mod sys {
    /// `struct pollfd` from `<poll.h>`.
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout: i32) -> i32;
    }

    /// Blocks until an fd is ready or `timeout_ms` passes. An empty set
    /// is a plain sleep. `EINTR` reports as zero ready fds.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> usize {
        // SAFETY: `fds` is a valid, exclusively-borrowed slice of
        // `#[repr(C)]` pollfd values for the duration of the call, and
        // the length is passed alongside the pointer.
        let n = unsafe {
            poll(
                fds.as_mut_ptr(),
                fds.len() as std::os::raw::c_ulong,
                timeout_ms,
            )
        };
        usize::try_from(n).unwrap_or(0)
    }
}

/// Portable fallback for non-unix targets: sleep briefly and report
/// everything as ready — the non-blocking I/O paths treat spurious
/// readiness as a no-op (`WouldBlock`), so this is correct, just busier.
#[cfg(not(unix))]
mod sys {
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> usize {
        std::thread::sleep(std::time::Duration::from_millis(
            1.min(timeout_ms.max(0) as u64),
        ));
        for f in fds.iter_mut() {
            f.revents = f.events;
        }
        fds.len()
    }
}

/// Poll timeout while any request is in flight (ms): the ticket channel
/// has no fd to select on, so this bounds added response latency.
const BUSY_TIMEOUT_MS: i32 = 1;
/// Poll timeout when fully idle (ms): bounds how long a shutdown signal
/// waits to be noticed.
const IDLE_TIMEOUT_MS: i32 = 25;

/// Lifetime counters for one event loop, returned by
/// [`NetHandle::shutdown`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections closed (gracefully or on error).
    pub closed: u64,
    /// Request frames decoded.
    pub requests: u64,
    /// Response frames written toward clients.
    pub responses: u64,
    /// Error frames written toward clients.
    pub errors: u64,
    /// Bytes read off sockets.
    pub bytes_read: u64,
    /// Bytes written to sockets.
    pub bytes_written: u64,
}

/// A running socket front door: the bound address, a stop flag, and the
/// event-loop thread's handle.
#[derive(Debug)]
pub struct NetHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<NetStats>>,
}

impl NetHandle {
    /// The actually-bound listen address (resolves port `0` requests).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the loop to drain — stop accepting and reading, answer
    /// everything in flight, flush, close — and joins it, returning the
    /// lifetime counters.
    pub fn shutdown(mut self) -> NetStats {
        self.stop.store(true, Ordering::Release);
        self.join
            .take()
            .expect("event loop joined twice")
            .join()
            .expect("event loop panicked")
    }

    /// Blocks until the loop exits on its own (it only does if the
    /// listener dies); used by `mersit-served` to park the main thread.
    pub fn join(mut self) -> NetStats {
        self.join
            .take()
            .expect("event loop joined twice")
            .join()
            .expect("event loop panicked")
    }
}

impl Drop for NetHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.join.take() {
            let _ = h.join();
        }
    }
}

/// Binds `cfg.addr` and spawns the event-loop thread over `server`.
///
/// # Errors
///
/// Propagates listener bind/configuration failures.
pub fn spawn(server: Arc<Server>, cfg: NetConfig) -> std::io::Result<NetHandle> {
    let listener = TcpListener::bind(cfg.addr.as_str())?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let loop_stop = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("mersit-serve-net".into())
        .spawn(move || event_loop(&server, &listener, &cfg, &loop_stop))
        .expect("spawn net event-loop thread");
    Ok(NetHandle {
        addr,
        stop,
        join: Some(join),
    })
}

/// The readiness loop proper. Runs until stopped-and-drained.
fn event_loop(
    server: &Server,
    listener: &TcpListener,
    cfg: &NetConfig,
    stop: &AtomicBool,
) -> NetStats {
    let mut conns: Vec<Conn> = Vec::new();
    let mut stats = NetStats::default();
    let mut draining = false;
    loop {
        if !draining && stop.load(Ordering::Acquire) {
            draining = true;
            for c in &mut conns {
                c.begin_drain();
            }
        }
        // Phase 1: make progress on buffered bytes and parked work, then
        // poll tickets so finished inference becomes response frames.
        let mut in_flight = false;
        for c in &mut conns {
            c.process(server, cfg);
            c.drain_tickets();
            in_flight |= c.has_in_flight();
        }
        // Phase 2: opportunistic flush — most responses fit the socket
        // buffer, so this usually completes without waiting for POLLOUT.
        retain_live(&mut conns, &mut stats, |c| c.flush().is_ok());
        if draining && conns.is_empty() {
            return stats;
        }

        // Phase 3: build the pollfd set. Index 0 is the listener (only
        // while accepting); connection i sits at offset `base + i`.
        let accepting = !draining && conns.len() < cfg.max_conns;
        let base = usize::from(accepting);
        let mut fds: Vec<sys::PollFd> = Vec::with_capacity(base + conns.len());
        if accepting {
            fds.push(sys::PollFd {
                fd: listener_fd(listener),
                events: sys::POLLIN,
                revents: 0,
            });
        }
        for c in &conns {
            let interest = c.interest(cfg);
            let mut events = 0i16;
            if interest.read {
                events |= sys::POLLIN;
            }
            if interest.write {
                events |= sys::POLLOUT;
            }
            // events == 0 still reports POLLHUP/POLLERR, keeping dead
            // sockets from lingering while fully backpressured.
            fds.push(sys::PollFd {
                fd: conn_fd(c),
                events,
                revents: 0,
            });
        }
        let timeout = if in_flight {
            BUSY_TIMEOUT_MS
        } else {
            IDLE_TIMEOUT_MS
        };
        sys::poll_fds(&mut fds, timeout);

        // Phase 4: act on readiness. Accept first, but only walk the
        // connections the pollfd set was built from — freshly accepted
        // ones have no revents yet and wait for the next tick.
        let polled = fds.len() - base;
        if accepting && fds[0].revents & (sys::POLLIN | sys::POLLERR) != 0 {
            accept_ready(listener, cfg, &mut conns, &mut stats);
        }
        let mut dead = Vec::new();
        for (i, c) in conns.iter_mut().enumerate().take(polled) {
            let r = fds[base + i].revents;
            if r & (sys::POLLERR | sys::POLLNVAL) != 0 {
                dead.push(i);
                continue;
            }
            if r & (sys::POLLIN | sys::POLLHUP) != 0 {
                if c.fill(cfg).is_err() {
                    dead.push(i);
                    continue;
                }
                c.process(server, cfg);
            }
            if r & sys::POLLOUT != 0 && c.flush().is_err() {
                dead.push(i);
            }
        }
        for &i in dead.iter().rev() {
            let c = conns.swap_remove(i);
            fold_counters(&mut stats, &c);
            stats.closed += 1;
        }
        retain_live(&mut conns, &mut stats, |c| !c.finished());
    }
}

/// Accepts every pending connection (or parks at the cap — the listener
/// simply stops being polled, leaving latecomers in the kernel backlog).
fn accept_ready(
    listener: &TcpListener,
    cfg: &NetConfig,
    conns: &mut Vec<Conn>,
    stats: &mut NetStats,
) {
    while conns.len() < cfg.max_conns {
        match listener.accept() {
            Ok((stream, _peer)) => match Conn::new(stream) {
                Ok(conn) => {
                    stats.accepted += 1;
                    mersit_obs::incr("serve.net.connections");
                    conns.push(conn);
                }
                Err(_) => stats.closed += 1,
            },
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            // Transient accept errors (EMFILE, ECONNABORTED): skip this
            // round rather than spinning or dying.
            Err(_) => break,
        }
    }
}

/// Drops connections failing `keep`, folding their counters into stats.
fn retain_live(
    conns: &mut Vec<Conn>,
    stats: &mut NetStats,
    mut keep: impl FnMut(&mut Conn) -> bool,
) {
    let mut i = 0;
    while i < conns.len() {
        if keep(&mut conns[i]) {
            i += 1;
        } else {
            let c = conns.swap_remove(i);
            fold_counters(stats, &c);
            stats.closed += 1;
        }
    }
}

fn fold_counters(stats: &mut NetStats, c: &Conn) {
    stats.requests += c.counters.requests;
    stats.responses += c.counters.responses;
    stats.errors += c.counters.errors;
    stats.bytes_read += c.counters.bytes_read;
    stats.bytes_written += c.counters.bytes_written;
    mersit_obs::add("serve.net.frames.in", c.counters.requests);
}

#[cfg(unix)]
fn listener_fd(l: &TcpListener) -> i32 {
    use std::os::unix::io::AsRawFd;
    l.as_raw_fd()
}

#[cfg(unix)]
fn conn_fd(c: &Conn) -> i32 {
    c.raw_fd()
}

#[cfg(not(unix))]
fn listener_fd(_l: &TcpListener) -> i32 {
    0
}

#[cfg(not(unix))]
fn conn_fd(_c: &Conn) -> i32 {
    0
}
