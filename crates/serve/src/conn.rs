//! Per-connection state machine for the socket front door: partial-read
//! framing, request decode + submission, out-of-order response write-back,
//! and the two backpressure seams (read-buffer cap, write-buffer cap,
//! plus *parking* a request the admission queue refused so TCP flow
//! control — not an error frame — pushes back on the client).
//!
//! A [`Conn`] never blocks: all socket I/O is `WouldBlock`-aware, and
//! completed inference arrives by polling [`Ticket::try_wait`] from the
//! event loop. The loop in [`crate::net`] owns the scheduling; this
//! module owns what happens to one connection's bytes.

use crate::config::NetConfig;
use crate::server::{Request, ServeError, Server, Ticket};
use crate::wire::{self, DecodeError, Frame, WireRequest};
use mersit_tensor::Tensor;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;

/// How many decoded-but-unadmitted requests a connection may hold. One:
/// when the admission queue is full we stop decoding entirely, so the
/// client's unread bytes stay in its socket and TCP backpressure does
/// the rest.
const PARK_LIMIT: usize = 1;

/// What a connection wants from the next readiness poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interest {
    /// Poll for readability (there is buffer room and no parked work).
    pub read: bool,
    /// Poll for writability (buffered response bytes are waiting).
    pub write: bool,
}

/// Counters one connection accumulates over its lifetime; folded into
/// [`crate::net::NetStats`] when the connection closes.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ConnCounters {
    /// Bytes read off the socket.
    pub bytes_read: u64,
    /// Bytes written back.
    pub bytes_written: u64,
    /// Request frames decoded.
    pub requests: u64,
    /// Response frames queued for write.
    pub responses: u64,
    /// Error frames queued for write.
    pub errors: u64,
}

/// One accepted connection: socket, elastic read/write buffers, the
/// in-flight tickets awaiting completion, and at most one parked
/// (queue-refused) request.
pub(crate) struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// Bytes of `write_buf` already written to the socket.
    write_pos: usize,
    /// Requests submitted to the server, awaiting their responses.
    in_flight: Vec<(u64, Ticket)>,
    /// A decoded request the admission queue refused; retried every tick.
    parked: Vec<(u64, Request)>,
    /// No more reads: the peer sent EOF, a fatal protocol error fired, or
    /// the server is draining for shutdown.
    read_closed: bool,
    /// A fatal protocol error was encountered: close as soon as the
    /// write buffer drains, without waiting for in-flight work.
    poisoned: bool,
    pub(crate) counters: ConnCounters,
}

impl Conn {
    /// Wraps an accepted stream (sets it non-blocking and disables
    /// Nagle's algorithm so small response frames leave immediately).
    pub(crate) fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            in_flight: Vec::new(),
            parked: Vec::new(),
            read_closed: false,
            poisoned: false,
            counters: ConnCounters::default(),
        })
    }

    /// The raw fd for readiness polling.
    #[cfg(unix)]
    pub(crate) fn raw_fd(&self) -> i32 {
        use std::os::unix::io::AsRawFd;
        self.stream.as_raw_fd()
    }

    /// What to poll for next. Reading pauses (without erroring) while any
    /// backpressure condition holds: a parked request, a full read
    /// buffer, or a write backlog past the cap.
    pub(crate) fn interest(&self, cfg: &NetConfig) -> Interest {
        let backlogged = self.write_buf.len() - self.write_pos >= cfg.write_buf;
        Interest {
            read: !self.read_closed
                && self.parked.is_empty()
                && self.read_buf.len() < cfg.read_buf
                && !backlogged,
            write: self.write_pos < self.write_buf.len(),
        }
    }

    /// True when there are tickets to poll for completion.
    pub(crate) fn has_in_flight(&self) -> bool {
        !self.in_flight.is_empty() || !self.parked.is_empty()
    }

    /// True when this connection is over: nothing left to read, answer,
    /// or flush. The event loop drops it. Leftover `read_buf` bytes are
    /// at most a partial trailing frame — once reads stopped it can
    /// never complete, so it doesn't hold the connection open.
    pub(crate) fn finished(&self) -> bool {
        let flushed = self.write_pos >= self.write_buf.len();
        if self.poisoned {
            return flushed;
        }
        self.read_closed && self.in_flight.is_empty() && self.parked.is_empty() && flushed
    }

    /// Stops reading new requests (shutdown drain: in-flight work still
    /// completes and flushes before [`Conn::finished`] turns true).
    pub(crate) fn begin_drain(&mut self) {
        self.read_closed = true;
    }

    /// Pulls whatever the socket has, up to the read-buffer cap. Returns
    /// `Err` on a dead socket (the event loop drops the connection).
    pub(crate) fn fill(&mut self, cfg: &NetConfig) -> std::io::Result<()> {
        let mut chunk = [0u8; 16 * 1024];
        while !self.read_closed && self.read_buf.len() < cfg.read_buf {
            let room = (cfg.read_buf - self.read_buf.len()).min(chunk.len());
            match self.stream.read(&mut chunk[..room]) {
                Ok(0) => {
                    self.read_closed = true;
                }
                Ok(n) => {
                    self.counters.bytes_read += n as u64;
                    mersit_obs::add("serve.net.bytes.read", n as u64);
                    self.read_buf.extend_from_slice(&chunk[..n]);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Decodes and dispatches every complete frame in the read buffer,
    /// stopping early under backpressure (a parked request). Call after
    /// [`Conn::fill`] and once per tick to retry parked admissions.
    pub(crate) fn process(&mut self, server: &Server, cfg: &NetConfig) {
        self.retry_parked(server);
        while self.parked.len() < PARK_LIMIT && !self.poisoned {
            let outcome = {
                let _span = mersit_obs::span("serve.net.frame.decode");
                wire::decode_frame(&self.read_buf, cfg.read_buf)
            };
            match outcome {
                Ok(None) => break,
                Ok(Some((frame, used))) => {
                    self.read_buf.drain(..used);
                    self.handle_frame(frame, server);
                }
                Err(DecodeError::Malformed {
                    consumed,
                    id,
                    reason,
                }) => {
                    self.read_buf.drain(..consumed);
                    self.push_error(id, wire::ERR_MALFORMED, &reason);
                }
                Err(DecodeError::Fatal(reason)) => {
                    // Framing lost: report once, stop reading, close
                    // after the error frame flushes.
                    self.push_error(0, wire::ERR_PROTOCOL, &reason);
                    self.read_buf.clear();
                    self.read_closed = true;
                    self.poisoned = true;
                }
            }
        }
    }

    fn handle_frame(&mut self, frame: Frame, server: &Server) {
        match frame {
            Frame::Request(req) => {
                self.counters.requests += 1;
                let id = req.id;
                let request = build_request(req);
                self.submit(id, request, server);
            }
            Frame::Ping(token) => {
                wire::encode_pong(token, &mut self.write_buf);
            }
            // Response / Error / Pong frames travel server → client
            // only; a client sending one is confused but harmless.
            Frame::Response(r) => {
                self.push_error(r.id, wire::ERR_MALFORMED, "unexpected response frame");
            }
            Frame::Error(e) => {
                self.push_error(e.id, wire::ERR_MALFORMED, "unexpected error frame");
            }
            Frame::Pong(_) => {
                self.push_error(0, wire::ERR_MALFORMED, "unexpected pong frame");
            }
        }
    }

    /// Submits to the in-process server. `QueueFull` *parks* the request
    /// for retry next tick instead of erroring — combined with
    /// [`Conn::interest`] refusing to read while parked, admission
    /// pressure turns into TCP flow control the client feels as a slow
    /// socket, not as failures. Other admission errors answer
    /// immediately with an error frame.
    fn submit(&mut self, id: u64, request: Request, server: &Server) {
        match server.submit(request.clone()) {
            Ok(ticket) => self.in_flight.push((id, ticket)),
            Err(ServeError::QueueFull { .. }) => self.parked.push((id, request)),
            Err(e) => self.push_error(id, wire::error_code(&e), &e.to_string()),
        }
    }

    fn retry_parked(&mut self, server: &Server) {
        if let Some((id, request)) = self.parked.pop() {
            self.submit(id, request, server);
        }
    }

    /// Polls every in-flight ticket; completed ones become response (or
    /// error) frames in the write buffer. Returns how many completed.
    pub(crate) fn drain_tickets(&mut self) -> usize {
        let mut done = 0;
        let mut i = 0;
        while i < self.in_flight.len() {
            let (id, ticket) = &self.in_flight[i];
            match ticket.try_wait() {
                None => i += 1,
                Some(result) => {
                    let id = *id;
                    self.in_flight.swap_remove(i);
                    done += 1;
                    match result {
                        Ok(resp) => {
                            self.counters.responses += 1;
                            wire::encode_response(id, &resp, &mut self.write_buf);
                        }
                        Err(e) => {
                            self.push_error(id, wire::error_code(&e), &e.to_string());
                        }
                    }
                }
            }
        }
        done
    }

    /// Writes buffered bytes until the socket blocks or the buffer
    /// empties. Returns `Err` on a dead socket.
    pub(crate) fn flush(&mut self) -> std::io::Result<()> {
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::WriteZero,
                        "socket accepted no bytes",
                    ));
                }
                Ok(n) => {
                    self.write_pos += n;
                    self.counters.bytes_written += n as u64;
                    mersit_obs::add("serve.net.bytes.written", n as u64);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Reclaim fully-written prefixes so the buffer never grows
        // monotonically across a long-lived connection.
        if self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        } else if self.write_pos > 64 * 1024 {
            self.write_buf.drain(..self.write_pos);
            self.write_pos = 0;
        }
        Ok(())
    }

    fn push_error(&mut self, id: u64, code: u16, message: &str) {
        self.counters.errors += 1;
        wire::encode_error(id, code, message, &mut self.write_buf);
    }
}

/// Lowers a decoded wire request onto the in-process [`Request`] builder.
fn build_request(req: WireRequest) -> Request {
    let input = Tensor::from_vec(req.data, &req.shape);
    let mut r = Request::new(req.model, input);
    if let Some(spec) = req.assignment {
        r = r.format(spec);
        if let Some(e) = req.executor {
            r = r.executor(e);
        }
    }
    r
}
