//! Build-once plan cache: one [`QuantPlan`] per (model, assignment, executor).

use mersit_nn::Model;
use mersit_ptq::{Calibration, Executor, FormatAssignment, QuantPlan};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Identity of one compiled plan: model name, canonical assignment name
/// (as reported by [`FormatAssignment::name`] — a plain format name like
/// `"MERSIT(8,2)"` for uniform plans, so `"mersit(8,2)"` and
/// `"MERSIT(8,2)"` collide onto one entry; a `"DEFAULT;path=FMT"` spec
/// for mixed plans), and execution engine.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Model name (e.g. `"vgg_t"`).
    pub model: String,
    /// Canonical assignment name (e.g. `"MERSIT(8,2)"`, or a mixed spec
    /// like `"MERSIT(8,2);head.fc=FP(8,4)"`).
    pub format: String,
    /// Execution engine the plan was compiled for.
    pub executor: Executor,
}

/// A thread-safe build-once cache of compiled [`QuantPlan`]s.
///
/// The first request for a `(model, format, executor)` triple pays the
/// plan build (weight quantization, panel packing, bit-true engine
/// construction); every later request — from any thread — shares the same
/// [`Arc`]'d plan. `QuantPlan::predict*` needs only `&self`, so one plan
/// serves concurrent batches with no further synchronization.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<PlanKey, Arc<QuantPlan>>>,
}

impl PlanCache {
    /// Empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached plan for `key`, building it on first use.
    /// Records `serve.plan.cache.hit` / `serve.plan.cache.miss` counters
    /// and times builds under a `serve.plan.build` span.
    ///
    /// The build runs under the cache lock: concurrent callers asking for
    /// the same triple wait and then share one build rather than racing
    /// duplicate ones (in the server only the batcher thread builds, so
    /// nothing else ever blocks on it).
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned by a panicking build.
    #[must_use]
    pub fn get_or_build(
        &self,
        key: &PlanKey,
        model: &Model,
        assign: &FormatAssignment,
        cal: &Calibration,
    ) -> Arc<QuantPlan> {
        let mut plans = self.plans.lock().expect("plan cache poisoned");
        if let Some(plan) = plans.get(key) {
            mersit_obs::incr("serve.plan.cache.hit");
            return Arc::clone(plan);
        }
        mersit_obs::incr("serve.plan.cache.miss");
        let _span = mersit_obs::span("serve.plan.build");
        let plan = Arc::new(QuantPlan::build_with(
            model,
            assign.clone(),
            cal,
            key.executor,
        ));
        plans.insert(key.clone(), Arc::clone(&plan));
        plan
    }

    /// Number of compiled plans currently cached.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned by a panicking build.
    #[must_use]
    pub fn len(&self) -> usize {
        self.plans.lock().expect("plan cache poisoned").len()
    }

    /// True when no plan has been built yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
