//! A minimal, dependency-free shim of the [proptest](https://crates.io/crates/proptest)
//! API surface used by this workspace.
//!
//! The build environment has no network access to crates.io, so the real
//! proptest cannot be fetched. This crate implements just enough of the
//! same API — the [`proptest!`] macro, range/collection strategies,
//! `any::<T>()`, `prop_map`, and the `prop_assert*` macros — that the
//! workspace's property tests compile and run unchanged. Sampling is
//! deterministic (seeded per test from the test's name) so failures are
//! reproducible; there is no shrinking.

#![warn(missing_docs)]

/// Deterministic pseudo-random source (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// FNV-1a hash of a string — used to derive per-test seeds.
#[must_use]
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runner configuration (only the case count is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` sampled inputs per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A source of sampled values, mirroring proptest's `Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value. `case` is the 0-based case index, letting
    /// strategies bias early cases toward range edges.
    fn sample(&self, rng: &mut TestRng, case: u32) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng, case: u32) -> U {
        (self.f)(self.inner.sample(rng, case))
    }
}

macro_rules! float_range_strategy {
    ($t:ty) => {
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng, case: u32) -> $t {
                // Bias the first cases toward the edges of the range.
                match case {
                    0 => self.start,
                    1 => <$t>::from_bits(self.end.to_bits().wrapping_sub(1)).max(self.start),
                    _ => {
                        let span = f64::from(self.end) - f64::from(self.start);
                        (f64::from(self.start) + rng.unit_f64() * span) as $t
                    }
                }
            }
        }
    };
}
float_range_strategy!(f32);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng, case: u32) -> f64 {
        match case {
            0 => self.start,
            1 => f64::from_bits(self.end.to_bits().wrapping_sub(1)).max(self.start),
            _ => self.start + rng.unit_f64() * (self.end - self.start),
        }
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng, case: u32) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u64;
                match case {
                    0 => self.start,
                    _ => (self.start as i128 + rng.below(span) as i128) as $t,
                }
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng, case: u32) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as i128 - lo as i128 + 1).max(1) as u64;
                match case {
                    0 => lo,
                    1 => hi,
                    _ => (lo as i128 + rng.below(span) as i128) as $t,
                }
            }
        }
    )*};
}
int_range_strategy!(u16, u32, u64, usize, i32, i64);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}
impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}
impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u16
    }
}

/// Strategy producing arbitrary values of `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng, _case: u32) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy constructor.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Numeric sub-strategies (`prop::num::...`).
pub mod num {
    /// `f64`-specific strategies.
    pub mod f64 {
        use crate::{Strategy, TestRng};

        /// Strategy over normal (non-zero, non-subnormal, finite) `f64`s.
        #[derive(Debug, Clone, Copy)]
        pub struct NormalStrategy;

        /// Samples normal `f64` values of both signs across all magnitudes.
        pub const NORMAL: NormalStrategy = NormalStrategy;

        impl Strategy for NormalStrategy {
            type Value = f64;
            fn sample(&self, rng: &mut TestRng, _case: u32) -> f64 {
                loop {
                    let v = f64::from_bits(rng.next_u64());
                    if v.is_normal() {
                        return v;
                    }
                }
            }
        }
    }
}

/// Collection strategies (`prop::collection::...`).
pub mod collection {
    use crate::{Strategy, TestRng};

    /// Anything usable as a collection size: a fixed count or a range.
    pub trait IntoSizeRange {
        /// Inclusive (lo, hi) size bounds.
        fn bounds(&self) -> (usize, usize);
    }
    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }
    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end.saturating_sub(1).max(self.start))
        }
    }
    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng, case: u32) -> Vec<S::Value> {
            let n = self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize;
            (0..n)
                .map(|i| self.element.sample(rng, case.wrapping_add(i as u32 + 2)))
                .collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    // By-value `size` mirrors the real proptest signature.
    #[allow(clippy::needless_pass_by_value)]
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { element, lo, hi }
    }
}

/// The standard proptest prelude.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each function runs its body over sampled
/// inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    // Internal expansion rule — must precede the catch-all below, or the
    // catch-all re-matches `@cfg ...` input and recurses forever.
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::TestRng::seeded($crate::seed_from_name(stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(
                        let $arg =
                            $crate::Strategy::sample(&($strat), &mut __rng, __case);
                    )+
                    $body
                }
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::seeded(7);
        let mut b = crate::TestRng::seeded(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -5.0f64..5.0, n in 1usize..10, k in -3i32..=2) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!((-3..=2).contains(&k));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0.0f32..1.0, 3..=5)) {
            prop_assert!(v.len() >= 3 && v.len() <= 5);
            for x in v {
                prop_assert!((0.0..1.0).contains(&x));
            }
        }

        #[test]
        fn normal_is_normal(x in prop::num::f64::NORMAL) {
            prop_assert!(x.is_normal());
        }

        #[test]
        fn map_applies(t in prop::collection::vec(1.0f32..2.0, 4).prop_map(|v| v.len())) {
            prop_assert_eq!(t, 4);
        }
    }
}
