//! Property-based invariants of the PTQ quantizers.

use mersit_core::table2_formats;
use mersit_ptq::{
    quantize_adaptivfloat, quantize_bfp, quantize_per_channel, quantize_tensor, relative_rmse,
    scale_anchor, scale_for,
};
use mersit_tensor::Tensor;
use proptest::prelude::*;

fn tensor_strategy(n: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-100.0f32..100.0, n..=n).prop_map(move |v| Tensor::from_vec(v, &[n]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fake-quantization is idempotent for every format.
    #[test]
    fn quantize_tensor_idempotent(t in tensor_strategy(64)) {
        for fmt in table2_formats() {
            let s = scale_for(fmt.as_ref(), t.max_abs());
            let q1 = quantize_tensor(fmt.as_ref(), &t, s);
            let q2 = quantize_tensor(fmt.as_ref(), &q1, s);
            prop_assert_eq!(q1.data(), q2.data(), "{}", fmt.name());
        }
    }

    /// Per-channel quantization never does worse than per-tensor on the
    /// same weight matrix (per-channel scales are a refinement).
    #[test]
    fn per_channel_no_worse_than_per_tensor(
        a in prop::collection::vec(-1.0f32..1.0, 32),
        chan_scale in 1.0f32..1000.0,
    ) {
        // Two channels with very different magnitudes.
        let mut data = a.clone();
        data.extend(a.iter().map(|&v| v * chan_scale));
        let t = Tensor::from_vec(data, &[2, 32]);
        for fmt in table2_formats() {
            let pc = quantize_per_channel(fmt.as_ref(), &t);
            let s = scale_for(fmt.as_ref(), t.max_abs());
            let pt = quantize_tensor(fmt.as_ref(), &t, s);
            let e_pc = relative_rmse(&pc, &t);
            let e_pt = relative_rmse(&pt, &t);
            // Allow float-accumulation noise and grid-alignment slack.
            prop_assert!(
                e_pc <= e_pt * 1.02 + 1e-9,
                "{}: per-channel {} vs per-tensor {}",
                fmt.name(), e_pc, e_pt
            );
        }
    }

    /// Quantization error is bounded by half the worst in-range step:
    /// every element within the calibrated range moves by at most
    /// max(|x|, anchor·2^(e_min)) × 2^-1 ... conservatively, by at most
    /// 25% of its own magnitude for any format with ≥ 2 fraction bits
    /// somewhere (sanity envelope, not a tight bound).
    #[test]
    fn quantization_error_enveloped(t in tensor_strategy(64)) {
        for name in ["FP(8,3)", "FP(8,4)", "Posit(8,1)", "MERSIT(8,2)"] {
            let fmt = mersit_core::parse_format(name).unwrap();
            let s = scale_for(fmt.as_ref(), t.max_abs());
            let q = quantize_tensor(fmt.as_ref(), &t, s);
            for (&x, &y) in t.data().iter().zip(q.data()) {
                prop_assert!(
                    (y - x).abs() <= x.abs() * 0.26 + (s * scale_anchor(fmt.as_ref())) as f32 * 1e-3,
                    "{}: {} -> {}", name, x, y
                );
            }
        }
    }

    /// AdaptivFloat and BFP are idempotent too.
    #[test]
    fn alt_quantizers_idempotent(t in tensor_strategy(64)) {
        let a1 = quantize_adaptivfloat(&t, 4, 3);
        let a2 = quantize_adaptivfloat(&a1, 4, 3);
        prop_assert_eq!(a1.data(), a2.data());
        let b1 = quantize_bfp(&t, 7, 16);
        let b2 = quantize_bfp(&b1, 7, 16);
        prop_assert_eq!(b1.data(), b2.data());
    }

    /// Quantizers preserve sign and zero.
    #[test]
    fn quantizers_preserve_sign(t in tensor_strategy(64)) {
        for fmt in table2_formats() {
            let s = scale_for(fmt.as_ref(), t.max_abs());
            let q = quantize_tensor(fmt.as_ref(), &t, s);
            for (&x, &y) in t.data().iter().zip(q.data()) {
                if x == 0.0 {
                    prop_assert_eq!(y, 0.0, "{}", fmt.name());
                } else if y != 0.0 {
                    prop_assert_eq!(x.signum(), y.signum(), "{}: {} -> {}", fmt.name(), x, y);
                }
            }
        }
    }
}
