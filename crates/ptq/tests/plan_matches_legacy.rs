//! Pins the bit-identity contract between the two PTQ executors: the
//! legacy string-path executor (`evaluate_format`, which mutates the
//! model's weights and restores them from a snapshot) and the compiled
//! [`QuantPlan`] executor (which owns quantized weight tensors and runs
//! over a shared `&Model`). Every Table 2 format on two zoo models must
//! produce *exactly* the same predictions both ways — this is the
//! invariant that makes the parallel format sweep a pure optimization.

use mersit_core::table2_formats;
use mersit_nn::models::{mobilenet_v3_t, vgg_t};
use mersit_ptq::{calibrate, evaluate_format, QuantPlan};
use mersit_tensor::{Rng, Tensor};

#[test]
fn plan_matches_legacy_for_every_table2_format() {
    let mut rng = Rng::new(0x51AB);
    let mut models = [vgg_t(8, 10, &mut rng), mobilenet_v3_t(8, 10, &mut rng)];
    let calib = Tensor::randn(&[6, 3, 8, 8], 1.0, &mut rng);
    // 12 samples with batch 5 forces an uneven final shard in the
    // plan's parallel predict path.
    let inputs = Tensor::randn(&[12, 3, 8, 8], 1.0, &mut rng);
    let formats = table2_formats();
    assert_eq!(formats.len(), 11, "Table 2 grid changed size");
    for model in &mut models {
        let cal = calibrate(model, &calib, 4);
        for fmt in &formats {
            let legacy = evaluate_format(model, fmt.as_ref(), &cal, &inputs, 5);
            let plan = QuantPlan::build(model, fmt.clone(), &cal);
            let planned = plan.predict(model, &inputs, 5);
            assert_eq!(
                legacy,
                planned,
                "executors disagree: {} on {}",
                fmt.name(),
                model.name
            );
        }
    }
}
