//! Mixed (genuinely heterogeneous) assignments end to end on zoo models:
//! every site compiles against the format its path resolves to, on both
//! executors, and batching stays invisible — a batched predict is
//! bit-identical to per-sample predicts under the same mixed plan.

use mersit_core::parse_format;
use mersit_nn::models::{mobilenet_v3_t, vgg_t};
use mersit_ptq::{calibrate, Executor, FormatAssignment, QuantPlan};
use mersit_tensor::{Rng, Tensor};

#[test]
fn mixed_assignment_batched_equals_single_sample_on_both_executors() {
    let mut rng = Rng::new(0x21F0);
    let models = [vgg_t(8, 10, &mut rng), mobilenet_v3_t(8, 10, &mut rng)];
    let calib = Tensor::randn(&[6, 3, 8, 8], 1.0, &mut rng);
    let inputs = Tensor::randn(&[11, 3, 8, 8], 1.0, &mut rng);
    // One override per model family: vgg paths are flat (`5_conv`),
    // mobilenet paths are nested (`ir1.6_se.fc2`); a dotted-prefix
    // override must catch a whole subtree.
    let assigns = [
        FormatAssignment::parse("MERSIT(8,2);5_conv=FP(8,4);11_linear=Posit(8,1);0_conv=INT8")
            .unwrap(),
        FormatAssignment::parse("MERSIT(8,2);ir1=FP(8,4);head=Posit(8,1)").unwrap(),
    ];
    for (model, assign) in models.iter().zip(&assigns) {
        let cal = calibrate(model, &calib, 4);
        for executor in [Executor::Float, Executor::BitTrue] {
            let plan = QuantPlan::build_with(model, assign.clone(), &cal, executor);
            // The plan keeps the mixed assignment as its identity.
            assert!(!plan.assignment().is_uniform());
            assert_eq!(plan.assignment().name(), assign.name());
            assert!(
                plan.assignment().formats().len() >= 2,
                "assignment must be genuinely heterogeneous"
            );
            let single = plan.predict(model, &inputs, 1);
            for batch in [3usize, 7, 11] {
                assert_eq!(
                    single,
                    plan.predict(model, &inputs, batch),
                    "batch {batch} diverged under {} on {} ({executor:?})",
                    assign.name(),
                    model.name
                );
            }
        }
    }
}

/// Overrides are load-bearing, not cosmetic: the same mixed layout
/// expressed through two opposite routes must compile to bit-identical
/// plans. Route A defaults to MERSIT and demotes the stem to FP(8,2);
/// route B defaults to FP(8,2) and promotes everything *else* (every
/// activation site and the network input) back to MERSIT. If overrides
/// were ignored, route A would be uniform MERSIT and route B uniform
/// FP(8,2) — two very different plans.
#[test]
fn mixed_layout_is_route_independent() {
    let mut rng = Rng::new(0x21F1);
    let model = vgg_t(8, 10, &mut rng);
    let calib = Tensor::randn(&[6, 3, 8, 8], 1.0, &mut rng);
    let inputs = Tensor::randn(&[9, 3, 8, 8], 1.0, &mut rng);
    let cal = calibrate(&model, &calib, 4);
    let mersit = parse_format("MERSIT(8,2)").unwrap();
    let fp82 = parse_format("FP(8,2)").unwrap();

    let route_a = FormatAssignment::uniform(mersit.clone()).with_override("0_conv", fp82.clone());
    let mut route_b = FormatAssignment::uniform(fp82);
    for (_, path) in cal.sites().iter() {
        if path != "0_conv" && !path.starts_with("0_conv.") {
            route_b = route_b.with_override(path, mersit.clone());
        }
    }
    route_b = route_b.with_override(mersit_ptq::INPUT_PATH, mersit.clone());
    assert!(route_b.overrides().len() > 3, "vgg_t has several sites");

    for executor in [Executor::Float, Executor::BitTrue] {
        let a = QuantPlan::build_with(&model, route_a.clone(), &cal, executor);
        let b = QuantPlan::build_with(&model, route_b.clone(), &cal, executor);
        for batch in [1usize, 4] {
            assert_eq!(
                a.predict(&model, &inputs, batch),
                b.predict(&model, &inputs, batch),
                "routes diverged ({executor:?}, batch {batch})"
            );
        }
    }
}
