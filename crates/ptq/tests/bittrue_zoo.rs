//! End-to-end bit-true execution over the model zoo: every registered
//! Table 2 format must run the [`Executor::BitTrue`] engine through a
//! full model forward — including Posit(8,3), whose fixed-point operands
//! overflow `i64` and take the 256-bit wide-accumulator fallback — and
//! the co-verification harness must report bounded divergence against
//! the float executor on every hardware format.

use mersit_core::{hardware_formats, table2_formats};
use mersit_nn::models::{mobilenet_v3_t, vgg_t};
use mersit_ptq::{calibrate, coverify, Executor, QuantPlan};
use mersit_tensor::{Rng, Tensor};

#[test]
fn bit_true_runs_every_table2_format_end_to_end() {
    let mut rng = Rng::new(0xB17);
    let model = vgg_t(8, 10, &mut rng);
    let calib = Tensor::randn(&[6, 3, 8, 8], 1.0, &mut rng);
    let inputs = Tensor::randn(&[10, 3, 8, 8], 1.0, &mut rng);
    let cal = calibrate(&model, &calib, 4);
    let formats = table2_formats();
    assert_eq!(formats.len(), 11, "Table 2 grid changed size");
    for fmt in &formats {
        let plan = QuantPlan::build_with(&model, fmt.clone(), &cal, Executor::BitTrue);
        assert_eq!(plan.executor(), Executor::BitTrue);
        let preds = plan.predict(&model, &inputs, 4);
        assert_eq!(preds.len(), 10, "{}", fmt.name());
        assert!(
            preds.iter().all(|&p| p < 10),
            "{}: prediction out of class range",
            fmt.name()
        );
    }
}

#[test]
fn bit_true_tracks_float_executor_predictions() {
    // On the well-conditioned hardware formats the two executors should
    // agree on most argmax decisions (they share quantization scales;
    // only the activation re-encoding differs).
    let mut rng = Rng::new(0xB18);
    for model in [vgg_t(8, 10, &mut rng), mobilenet_v3_t(8, 10, &mut rng)] {
        let calib = Tensor::randn(&[6, 3, 8, 8], 1.0, &mut rng);
        let inputs = Tensor::randn(&[12, 3, 8, 8], 1.0, &mut rng);
        let cal = calibrate(&model, &calib, 4);
        for fmt in hardware_formats() {
            let float_plan = QuantPlan::build_with(&model, fmt.clone(), &cal, Executor::Float);
            let bt_plan = QuantPlan::build_with(&model, fmt.clone(), &cal, Executor::BitTrue);
            let f = float_plan.predict(&model, &inputs, 4);
            let b = bt_plan.predict(&model, &inputs, 4);
            let agree = f.iter().zip(&b).filter(|(x, y)| x == y).count();
            assert!(
                agree >= 8,
                "{} on {}: only {agree}/12 predictions agree",
                fmt.name(),
                model.name
            );
        }
    }
}

#[test]
fn bit_true_predictions_stable_across_batch_sizes() {
    // Integer accumulation is exact and the activation scale is
    // dynamic *per row* of a GEMM input — and every row the engine sees
    // (a Linear sample, an im2col patch) comes from exactly one sample —
    // so predictions must not depend on how samples are grouped into
    // batches. This is the invariant the serving layer's dynamic batcher
    // leans on (see `mersit-serve`).
    let mut rng = Rng::new(0xB19);
    let model = vgg_t(8, 10, &mut rng);
    let calib = Tensor::randn(&[5, 3, 8, 8], 1.0, &mut rng);
    let inputs = Tensor::randn(&[11, 3, 8, 8], 1.0, &mut rng);
    let cal = calibrate(&model, &calib, 4);
    let fmt = mersit_core::parse_format("MERSIT(8,2)").unwrap();
    let plan = QuantPlan::build_with(&model, fmt, &cal, Executor::BitTrue);
    let single = plan.predict(&model, &inputs, 1);
    for batch in [3, 4, 11] {
        let grouped = plan.predict(&model, &inputs, batch);
        assert_eq!(single, grouped, "batch {batch} changed bit-true output");
    }
}

#[test]
fn coverify_bounds_divergence_on_hardware_formats() {
    let mut rng = Rng::new(0xB20);
    let model = vgg_t(8, 10, &mut rng);
    let calib = Tensor::randn(&[6, 3, 8, 8], 1.0, &mut rng);
    let inputs = Tensor::randn(&[8, 3, 8, 8], 1.0, &mut rng);
    let cal = calibrate(&model, &calib, 4);
    for fmt in hardware_formats() {
        let name = fmt.name();
        let report = coverify(&model, fmt, &cal, &inputs, 4);
        assert_eq!(report.samples, 8, "{name}");
        assert!(!report.sites.is_empty(), "{name}: no sites compared");
        assert!(
            report.agreement >= 0.5,
            "{name}: agreement collapsed to {}",
            report.agreement
        );
        assert!(
            report.logits_max_abs.is_finite(),
            "{name}: non-finite logit divergence"
        );
        for s in &report.sites {
            assert!(
                s.max_abs.is_finite() && s.elems > 0,
                "{name} @ {}: degenerate divergence entry",
                s.path
            );
        }
        // The JSON artifact round-trips its headline fields.
        let json = report.to_json();
        assert!(json.contains(&format!("{:?}", report.model)), "{name}");
        assert!(json.contains("\"agreement\""), "{name}");
    }
}
