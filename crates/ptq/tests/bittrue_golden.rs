//! The hardware/software differential: the bit-true executor's scalar
//! dot product ([`mersit_ptq::dot_bit_true`]) must equal the `mersit-hw`
//! golden MAC **bit for bit** on every tested dot product — same codes
//! in, same wrapped accumulator out, for every registered format whose
//! fixed-point table exists and whose accumulator fits the golden
//! model's `i128`.
//!
//! The two implementations compute very differently — the golden MAC
//! decodes fields and wraps after every step; the executor looks up
//! precomputed fixed-point values, sums raw, and wraps once — so bit
//! equality here is a real theorem check (mod-2^w is a ring
//! homomorphism), not a tautology.

use mersit_core::fixpoint::{v_ovf_for, FixTable};
use mersit_core::{table2_formats, Format, FormatRef};
use mersit_hw::GoldenMac;
use proptest::prelude::*;

/// Formats the differential covers: a fixed-point table exists (operands
/// fit i64) and the width formula stays inside the golden model's i128.
fn differential_formats() -> Vec<(FormatRef, FixTable)> {
    table2_formats()
        .into_iter()
        .filter_map(|f| {
            let t = FixTable::build(f.as_ref())?;
            (t.acc_width(v_ovf_for(MAX_DOT)) < 128 && t.raw_sum_fits_i128(MAX_DOT))
                .then_some((f, t))
        })
        .collect()
}

const MAX_DOT: usize = 96;

fn random_codes(seed: u64, len: usize) -> (Vec<u16>, Vec<u16>) {
    let mut rng = mersit_tensor::Rng::new(seed);
    let gen =
        |rng: &mut mersit_tensor::Rng| (0..len).map(|_| (rng.next_u64() & 0xFF) as u16).collect();
    (gen(&mut rng), gen(&mut rng))
}

/// Runs both sides on one code vector and asserts bit identity.
fn check_dot(fmt: &dyn Format, table: &FixTable, w: &[u16], a: &[u16]) {
    let acc_width = table.acc_width(v_ovf_for(w.len()));
    let mut golden = GoldenMac::new(fmt, acc_width);
    for (&wc, &ac) in w.iter().zip(a) {
        golden.mac(wc, ac);
    }
    let engine = mersit_ptq::dot_bit_true(table, w, a, acc_width);
    assert_eq!(
        engine,
        golden.acc_wrapped(),
        "{}: engine {engine:#x} != golden {:#x} over {} products (acc_width {acc_width})",
        table.name(),
        golden.acc_wrapped(),
        w.len(),
    );
}

#[test]
fn differential_covers_most_registered_formats() {
    // Regression guard: the filter must not silently shrink coverage.
    // Today only Posit(8,3) (no i64 table) is excluded from 11 formats.
    let covered = differential_formats().len();
    assert!(covered >= 10, "only {covered} formats in the differential");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random code vectors (all 256 byte patterns, so zero / special /
    /// negative-regime codes all appear) across every covered format.
    #[test]
    fn engine_equals_golden_mac_bitwise(
        seed in any::<u64>(),
        len in 1usize..MAX_DOT,
    ) {
        for (fmt, table) in differential_formats() {
            let (w, a) = random_codes(seed, len);
            check_dot(fmt.as_ref(), &table, &w, &a);
        }
    }
}

#[test]
fn exhaustive_single_products_match() {
    // Every (w, a) code pair as a length-1 dot product: 65 536 pairs per
    // format — the complete multiplier truth table.
    for (fmt, table) in differential_formats() {
        let acc_width = table.acc_width(v_ovf_for(1));
        let mut golden = GoldenMac::new(fmt.as_ref(), acc_width);
        for wc in 0..=255u16 {
            for ac in 0..=255u16 {
                golden.clear();
                golden.mac(wc, ac);
                let engine = mersit_ptq::dot_bit_true(&table, &[wc], &[ac], acc_width);
                assert_eq!(
                    engine,
                    golden.acc_wrapped(),
                    "{}: codes ({wc:#04x}, {ac:#04x})",
                    table.name(),
                );
            }
        }
    }
}

#[test]
fn long_alternating_dots_exercise_wraparound() {
    // Max-magnitude codes of alternating sign push the accumulator to
    // its headroom; per-step and wrap-once must still agree.
    for (fmt, table) in differential_formats() {
        let f = fmt.as_ref();
        // The largest-|fix| finite code and its negation.
        let big = f
            .codes()
            .map(|c| c as u16)
            .max_by_key(|&c| table.fix(c).unsigned_abs())
            .unwrap();
        let neg = f.encode(-f.decode(big));
        let w: Vec<u16> = (0..MAX_DOT)
            .map(|i| if i % 2 == 0 { big } else { neg })
            .collect();
        let a = vec![big; MAX_DOT];
        check_dot(f, &table, &w, &a);
    }
}
