//! Bit-identity contract of the assignment refactor: a *uniform*
//! [`FormatAssignment`] — whether written as the `From<FormatRef>` sugar
//! or as an explicit assignment that redundantly overrides every single
//! parameter path to the same format — must be bit-for-bit identical to
//! the historical single-format plan, for every Table-2 format, on both
//! executors, at pool sizes 1, 2 and 7.
//!
//! The thread sweep reuses the `pool_stress` idiom: `MERSIT_THREADS` is
//! a process-global latch, so the sweep lives in one `#[test]` and
//! re-latches via `pool::shutdown()`.

use mersit_core::table2_formats;
use mersit_nn::models::vgg_t;
use mersit_nn::Layer;
use mersit_ptq::{calibrate, evaluate_format, Executor, FormatAssignment, QuantPlan};
use mersit_tensor::{pool, Rng, Tensor};

#[test]
fn uniform_assignment_is_bit_identical_across_formats_executors_threads() {
    let formats = table2_formats();
    assert_eq!(formats.len(), 11, "Table 2 grid changed size");
    for threads in [1usize, 2, 7] {
        std::env::set_var("MERSIT_THREADS", threads.to_string());
        pool::shutdown(); // re-latch the pool at the new size
        let mut rng = Rng::new(0xA55 ^ threads as u64);
        let mut model = vgg_t(8, 10, &mut rng);
        let calib = Tensor::randn(&[6, 3, 8, 8], 1.0, &mut rng);
        // 10 samples at batch 4: an uneven final shard in predict.
        let inputs = Tensor::randn(&[10, 3, 8, 8], 1.0, &mut rng);
        let cal = calibrate(&model, &calib, 4);

        // Every parameter path, for the redundant-override spelling.
        let mut param_paths = Vec::new();
        model.net.visit_params_ref("", &mut |path, _| {
            param_paths.push(path.to_owned());
        });
        assert!(param_paths.len() > 4, "vgg_t has several parameters");

        for fmt in &formats {
            // Leg 1 (float only): the sugar plan matches the legacy
            // weight-mutating executor exactly.
            let legacy = evaluate_format(&mut model, fmt.as_ref(), &cal, &inputs, 4);
            for executor in [Executor::Float, Executor::BitTrue] {
                let sugar = QuantPlan::build_with(&model, fmt.clone(), &cal, executor);
                assert!(sugar.assignment().is_uniform());
                let sugar_preds = sugar.predict(&model, &inputs, 4);
                if executor == Executor::Float {
                    assert_eq!(
                        legacy,
                        sugar_preds,
                        "{} diverged from legacy at {threads} threads",
                        fmt.name()
                    );
                }
                // Leg 2 (both executors): redundantly overriding every
                // parameter path to the same format changes nothing.
                let mut redundant = FormatAssignment::uniform(fmt.clone());
                for p in &param_paths {
                    redundant = redundant.with_override(p.clone(), fmt.clone());
                }
                assert!(!redundant.is_uniform());
                let explicit = QuantPlan::build_with(&model, redundant, &cal, executor);
                assert_eq!(
                    sugar_preds,
                    explicit.predict(&model, &inputs, 4),
                    "redundant overrides diverged: {} {executor:?} at {threads} threads",
                    fmt.name()
                );
            }
        }
    }
    std::env::remove_var("MERSIT_THREADS");
    pool::shutdown();
}
