//! The Table 2 harness: trains nothing itself — given a *pre-trained*
//! model and a dataset, it calibrates once and scores every format.

use crate::assign::FormatAssignment;
use crate::bittrue::Executor;
use crate::calibrate::{calibrate, Calibration};
use crate::executor::QuantPlan;
use mersit_core::FormatRef;
use mersit_nn::{accuracy, f1_binary, matthews, predict, Dataset, Model};

/// Which GLUE-style metric a task reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Top-1 accuracy (vision tasks, SST-2, MNLI).
    Accuracy,
    /// Matthews correlation ×100 (CoLA).
    Matthews,
    /// Binary F1 ×100 (MRPC).
    F1,
}

impl Metric {
    /// Scores predictions against labels.
    #[must_use]
    pub fn score(self, preds: &[usize], labels: &[usize]) -> f64 {
        match self {
            Metric::Accuracy => accuracy(preds, labels),
            Metric::Matthews => matthews(preds, labels),
            Metric::F1 => f1_binary(preds, labels),
        }
    }
}

/// Score of one format on one model.
#[derive(Debug, Clone, PartialEq)]
pub struct FormatScore {
    /// Format name.
    pub format: String,
    /// Metric value (percent / ×100).
    pub score: f64,
}

/// One row of the Table 2 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRow {
    /// Model / task name.
    pub model: String,
    /// FP32 baseline score.
    pub fp32: f64,
    /// Per-format PTQ scores, in the order given.
    pub scores: Vec<FormatScore>,
}

impl EvalRow {
    /// Looks up a format's score by name.
    #[must_use]
    pub fn score_of(&self, format: &str) -> Option<f64> {
        self.scores
            .iter()
            .find(|s| s.format == format)
            .map(|s| s.score)
    }
}

/// Calibrates on the dataset's calibration split and evaluates the FP32
/// baseline plus every format on the test split.
///
/// Each format is compiled into a read-only [`QuantPlan`] and evaluated
/// **in format order**, with all parallelism *inside* the format: the
/// plan's batch shards and their nested GEMM dispatches fan out across
/// the global work-stealing pool (`MERSIT_THREADS` sized), which keeps
/// every core busy on the current format instead of time-slicing cores
/// across formats — per-format latency matches the serial sweep and the
/// total scales with the pool. Scores land in format order and are
/// bit-identical to the serial legacy sweep.
///
/// The execution engine comes from the `MERSIT_EXECUTOR` environment
/// variable ([`Executor::from_env`]): `float` (default) fake-quantizes,
/// `bittrue` runs every GEMM on raw codes with exact Kulisch
/// accumulation.
pub fn evaluate_model(
    model: &mut Model,
    ds: &Dataset,
    formats: &[FormatRef],
    metric: Metric,
    batch: usize,
) -> (EvalRow, Calibration) {
    let assigns: Vec<FormatAssignment> = formats
        .iter()
        .map(|f| FormatAssignment::uniform(f.clone()))
        .collect();
    evaluate_assignments(model, ds, &assigns, metric, batch)
}

/// The sweep generalized to per-layer format assignments: every entry —
/// uniform or mixed — compiles into its own [`QuantPlan`] and scores on
/// the test split. [`evaluate_model`] is the uniform special case; scores
/// are labeled by the canonical [`FormatAssignment::name`], so uniform
/// rows keep their plain format names.
pub fn evaluate_assignments(
    model: &mut Model,
    ds: &Dataset,
    assigns: &[FormatAssignment],
    metric: Metric,
    batch: usize,
) -> (EvalRow, Calibration) {
    let executor = Executor::from_env();
    let cal = calibrate(model, &ds.calib.inputs, batch);
    let fp_preds = predict(&mut model.net, &ds.test.inputs, batch);
    let fp32 = metric.score(&fp_preds, &ds.test.labels);
    let scores = {
        let _sweep = mersit_obs::span("ptq.sweep");
        let shared: &Model = model;
        assigns
            .iter()
            .map(|assign| {
                let _span = mersit_obs::span_dyn(|| format!("ptq.evaluate.{}", assign.name()));
                let plan = QuantPlan::build_with(shared, assign.clone(), &cal, executor);
                let preds = plan.predict(shared, &ds.test.inputs, batch);
                FormatScore {
                    format: assign.name(),
                    score: metric.score(&preds, &ds.test.labels),
                }
            })
            .collect()
    };
    (
        EvalRow {
            model: model.name.clone(),
            fp32,
            scores,
        },
        cal,
    )
}

/// Renders rows as an aligned text table (the shape of Table 2).
#[must_use]
pub fn render_table(rows: &[EvalRow], formats: &[FormatRef]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<20} {:>8}", "Model", "FP32"));
    for f in formats {
        out.push_str(&format!(" {:>12}", f.name()));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!("{:<20} {:>8.2}", row.model, row.fp32));
        for f in formats {
            let v = row.score_of(&f.name()).unwrap_or(f64::NAN);
            out.push_str(&format!(" {v:>12.2}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mersit_core::parse_format;
    use mersit_nn::models::vgg_t;
    use mersit_nn::{synthetic_images, train_classifier, TrainConfig};
    use mersit_tensor::Rng;

    #[test]
    fn metric_dispatch() {
        let p = [1usize, 0, 1, 1];
        let y = [1usize, 0, 0, 1];
        assert_eq!(Metric::Accuracy.score(&p, &y), 75.0);
        assert!(Metric::Matthews.score(&p, &y) > 0.0);
        assert!(Metric::F1.score(&p, &y) > 0.0);
    }

    #[test]
    fn end_to_end_tiny_table2_row() {
        // Train a tiny model briefly, then check the harness produces
        // sane scores: near-lossless formats stay close to FP32.
        let mut rng = Rng::new(42);
        let mut model = vgg_t(8, 10, &mut rng);
        let ds = synthetic_images(7, 300, 120, 8);
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 32,
            ..TrainConfig::default()
        };
        train_classifier(&mut model.net, &ds.train, &cfg);
        let formats = vec![
            parse_format("MERSIT(8,2)").unwrap(),
            parse_format("Posit(8,1)").unwrap(),
        ];
        let (row, cal) = evaluate_model(&mut model, &ds, &formats, Metric::Accuracy, 32);
        assert!(cal.num_sites() > 5);
        assert!(row.fp32 > 30.0, "model failed to learn: {}", row.fp32);
        for s in &row.scores {
            assert!(
                s.score > row.fp32 - 25.0,
                "{} collapsed: {} vs fp32 {}",
                s.format,
                s.score,
                row.fp32
            );
        }
        let txt = render_table(&[row], &formats);
        assert!(txt.contains("vgg_t"));
        assert!(txt.contains("MERSIT(8,2)"));
    }
}
