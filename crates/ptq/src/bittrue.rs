//! Bit-true quantized execution: GEMMs computed on raw 8-bit codes with
//! exact Kulisch accumulation — the software twin of the paper's MAC
//! datapath (Fig. 2), wired into [`crate::executor::QuantPlan`] as
//! [`Executor::BitTrue`].
//!
//! # How a bit-true GEMM runs
//!
//! 1. **Weights** are encoded once per plan: each output channel's
//!    original FP32 weights are scaled by the *same* per-channel scale the
//!    float executor uses (`channel_max / anchor`) and rounded to codes
//!    with `Format::encode` — so the code matrix corresponds element for
//!    element to the float path's fake-quantized weights. Each engine is
//!    built for **one layer's** format as resolved by the plan's
//!    [`crate::FormatAssignment`] — under a mixed assignment, every
//!    layer's codes, row scales and `FixTable` follow its own format;
//!    under a uniform one this degenerates to the historical
//!    one-format-per-plan build.
//! 2. **Activations** are encoded per call with a dynamic **per-row**
//!    scale (`max|row| / anchor`); codes cannot be carried across the
//!    nonlinear layers between GEMMs, so each GEMM re-enters code space
//!    at its input. Rows are sample-local for every GEMM the engine sees
//!    (Linear flattens each sample to one row; im2col rows come from one
//!    sample's patches), so a row's codes — and therefore its outputs —
//!    never depend on its batch-mates. This is what makes batched
//!    inference bit-identical to single-sample inference (the serving
//!    layer's coalescing invariant), and it mirrors per-vector requant
//!    granularity in hardware.
//! 3. The product runs **entirely on integers**: every code maps through
//!    a per-format fixed-point table (`mersit-core::fixpoint::FixTable`),
//!    products are exact `i128`s, and each dot product is reduced with a
//!    single two's-complement wrap at the hardware accumulator width —
//!    bit-identical to `mersit-hw::GoldenMac` fed the same codes (pinned
//!    by `tests/bittrue_golden.rs`).
//! 4. A **single rounding** happens at the output: the wrapped
//!    accumulator is scaled by `2^lsb_exp · s_a · s_w[channel]` and cast
//!    to f32. Biases and every non-GEMM layer stay on the float path,
//!    mirroring hardware accelerators that keep a high-precision
//!    epilogue.
//!
//! Formats whose operands exceed an `i64` fixed point (Posit(8,3)) fall
//! back to a 256-bit wide accumulator ([`WideAcc`]) over explicit
//! (sign, significand, shift) triples — same semantics, no `i64` table.
//!
//! # Observability
//!
//! `ptq.bittrue.gemm` spans time every engine GEMM; `ptq.bittrue.macs`
//! counts accumulated products and `ptq.bittrue.wide_path` counts GEMMs
//! taking the wide fallback.

use crate::quantizer::channel_max_abs;
use mersit_core::fixpoint::{v_ovf_for, wrap_i128, FixTable};
use mersit_core::{Format, FormatRef, MacParams, ValueClass};
use mersit_nn::BitTrueGemm;
use mersit_tensor::qgemm::{qgemm_rows_par, PackedCodeRhs};
use mersit_tensor::Tensor;
use std::sync::Arc;

/// Which execution engine a [`crate::executor::QuantPlan`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Executor {
    /// Fake-quantization: codes are decoded back to f32 and the GEMMs run
    /// in floating point (the paper's accuracy-evaluation methodology).
    #[default]
    Float,
    /// Bit-true: GEMMs run on raw codes with exact integer Kulisch
    /// accumulation, reproducing the hardware datapath bit for bit.
    BitTrue,
}

impl Executor {
    /// Parses an executor name: `float` (default) or `bittrue`
    /// (also accepted: `bit-true`, `bit_true`), case-insensitive.
    /// Unrecognized values fall back to [`Executor::Float`].
    #[must_use]
    pub fn parse(s: &str) -> Self {
        match s.trim().to_ascii_lowercase().as_str() {
            "bittrue" | "bit-true" | "bit_true" => Executor::BitTrue,
            _ => Executor::Float,
        }
    }

    /// Reads the `MERSIT_EXECUTOR` environment variable
    /// ([`Executor::Float`] when unset).
    #[must_use]
    pub fn from_env() -> Self {
        std::env::var("MERSIT_EXECUTOR")
            .map(|v| Self::parse(&v))
            .unwrap_or_default()
    }
}

impl std::fmt::Display for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Executor::Float => "float",
            Executor::BitTrue => "bittrue",
        })
    }
}

/// Scalar bit-true dot product: the engine's reference semantics, and the
/// exact target the `mersit-hw` golden MAC is differenced against. Maps
/// each code pair through the fixed-point table, accumulates the raw
/// `i128` products, and wraps once to `acc_width` bits — equal to
/// `GoldenMac`'s per-step-wrapped accumulator because wrapping is a ring
/// homomorphism and the raw sum cannot overflow `i128` (caller upholds
/// `table.raw_sum_fits_i128(len)`).
///
/// # Panics
///
/// Panics if the code slices differ in length or `acc_width ≥ 128`.
#[must_use]
pub fn dot_bit_true(table: &FixTable, w_codes: &[u16], a_codes: &[u16], acc_width: usize) -> i128 {
    assert_eq!(w_codes.len(), a_codes.len(), "dot operand length mismatch");
    let mut acc = 0i128;
    for (&wc, &ac) in w_codes.iter().zip(a_codes) {
        acc += i128::from(table.fix(wc)) * i128::from(table.fix(ac));
    }
    wrap_i128(acc, acc_width)
}

/// One weight operand of the wide fallback path: sign, raw significand,
/// and the alignment shift `exp_eff − e_min` (zero significand for
/// non-finite codes — they contribute nothing, like the hardware gate).
#[derive(Debug, Clone, Copy, Default)]
struct WideOperand {
    sig: u64,
    shift: u32,
    neg: bool,
}

/// A 256-bit two's-complement Kulisch accumulator for formats whose
/// fixed-point operands exceed `i64` (Posit(8,3) spans ~2^99 alone).
/// Additions wrap modulo 2^256; the final reduction to the hardware
/// accumulator width is therefore still exact for any width ≤ 255,
/// because `2^width` divides `2^256`.
#[derive(Debug, Clone, Copy, Default)]
pub struct WideAcc {
    limbs: [u64; 4],
}

impl WideAcc {
    /// Adds `±(mag << shift)` into the accumulator. `mag` must fit 64
    /// bits (code-pair significand products are ≤ 2·8 bits wide).
    pub fn add_product(&mut self, mag: u64, shift: u32, negative: bool) {
        let mut v = spread(mag, shift);
        if negative {
            v = neg256(v);
        }
        add256(&mut self.limbs, v);
    }

    /// The accumulator wrapped to `width`-bit two's complement, as an
    /// `i128` (requires `width < 128`; used by tests to diff against the
    /// `i128` fast path).
    ///
    /// # Panics
    ///
    /// Panics when `width ≥ 128`.
    #[must_use]
    pub fn wrapped_i128(&self, width: usize) -> i128 {
        assert!(width < 128, "wrapped_i128 requires width < 128");
        let raw = u128::from(self.limbs[0]) | (u128::from(self.limbs[1]) << 64);
        let low = raw & ((1u128 << width) - 1);
        if low >> (width - 1) & 1 == 1 {
            low.wrapping_sub(1u128 << width) as i128
        } else {
            low as i128
        }
    }

    /// The accumulator wrapped to `width`-bit two's complement, rounded
    /// to `f64` (the engine's single output rounding).
    ///
    /// # Panics
    ///
    /// Panics when `width > 255`.
    #[must_use]
    pub fn wrapped_f64(&self, width: usize) -> f64 {
        assert!(width <= 255, "accumulator width exceeds 256-bit storage");
        let mut v = self.limbs;
        // Mask off bits at and above `width`.
        let (q, r) = (width / 64, width % 64);
        if q < 4 {
            if r > 0 {
                v[q] &= (1u64 << r) - 1;
                for limb in v.iter_mut().skip(q + 1) {
                    *limb = 0;
                }
            } else {
                for limb in v.iter_mut().skip(q) {
                    *limb = 0;
                }
            }
        }
        // Sign bit at position width − 1.
        let sq = (width - 1) / 64;
        let sr = (width - 1) % 64;
        let negative = v[sq] >> sr & 1 == 1;
        if negative {
            // Magnitude of the (masked) two's-complement value:
            // 2^width − v.
            v = neg256(v);
            let (q, r) = (width / 64, width % 64);
            if q < 4 {
                if r > 0 {
                    v[q] &= (1u64 << r) - 1;
                }
                for limb in v.iter_mut().skip(q + usize::from(r > 0)) {
                    *limb = 0;
                }
            }
            -limbs_to_f64(&v)
        } else {
            limbs_to_f64(&v)
        }
    }
}

/// Positions `mag` at bit offset `shift` in a 256-bit word (bits past
/// 255 are dropped — consistent with the mod-2^256 accumulator).
fn spread(mag: u64, shift: u32) -> [u64; 4] {
    let q = (shift / 64) as usize;
    let r = shift % 64;
    let wide = u128::from(mag) << r;
    let mut out = [0u64; 4];
    if q < 4 {
        out[q] = wide as u64;
        if q + 1 < 4 {
            out[q + 1] = (wide >> 64) as u64;
        }
    }
    out
}

/// `a += b` over 256 bits, wrapping.
fn add256(a: &mut [u64; 4], b: [u64; 4]) {
    let mut carry = false;
    for (x, y) in a.iter_mut().zip(b) {
        let (s1, c1) = x.overflowing_add(y);
        let (s2, c2) = s1.overflowing_add(u64::from(carry));
        *x = s2;
        carry = c1 || c2;
    }
}

/// Two's-complement negation over 256 bits.
fn neg256(v: [u64; 4]) -> [u64; 4] {
    let mut out = v.map(|x| !x);
    let one = [1u64, 0, 0, 0];
    add256(&mut out, one);
    out
}

/// `Σ limb_i · 2^(64·i)` rounded to f64.
fn limbs_to_f64(v: &[u64; 4]) -> f64 {
    let mut out = 0.0f64;
    for (i, &limb) in v.iter().enumerate() {
        if limb != 0 {
            out += limb as f64 * 2f64.powi(64 * i as i32);
        }
    }
    out
}

/// How the engine multiplies: an `i64` fixed-point table with packed
/// integer panels, or explicit decoded triples with the 256-bit
/// accumulator.
#[derive(Debug)]
enum EnginePath {
    /// Fast path: table lookups + packed `i128`-accumulating GEMM.
    Fix {
        table: Arc<FixTable>,
        packed: PackedCodeRhs,
    },
    /// Wide fallback: weight operand triples, row-major `[n, k]`.
    Wide { weights: Vec<WideOperand> },
}

/// A bit-true GEMM engine for one (format, weight tensor) pair: owns the
/// encoded weight codes in multiply-ready form and computes
/// `[rows, k] → [rows, n]` products with exact Kulisch accumulation.
/// Implements [`mersit_nn::BitTrueGemm`], so a
/// [`crate::executor::QuantPlan`] slots it into Linear / Conv2d forwards.
#[derive(Debug)]
pub struct QuantGemm {
    fmt: FormatRef,
    anchor: f64,
    /// Per-output-channel weight scales — identical to the float
    /// executor's `quantize_per_channel` scales.
    col_scales: Vec<f64>,
    k: usize,
    n: usize,
    /// Hardware accumulator width for `k`-term dot products.
    acc_width: usize,
    /// `2^lsb_exp` converts a wrapped accumulator to the product of two
    /// *unscaled* format values.
    lsb_exp: i32,
    path: EnginePath,
}

impl QuantGemm {
    /// Builds the engine from the **original FP32** weight tensor
    /// (`[out, in]`): per-channel scales are derived exactly as the float
    /// executor derives them, each element is rounded to its code, and
    /// codes are laid out for the multiply path the format supports.
    ///
    /// # Panics
    ///
    /// Panics unless `w` is rank 2.
    #[must_use]
    pub fn build(fmt: FormatRef, w: &Tensor) -> Self {
        assert_eq!(w.shape().len(), 2, "bit-true GEMM weight must be rank 2");
        let (n, k) = (w.shape()[0], w.shape()[1]);
        let anchor = fmt.scale_anchor();
        // Same per-channel scale rule as `quantize_per_channel`: all-zero
        // channels get scale 1.0 (their codes are all zero anyway).
        let col_scales: Vec<f64> = channel_max_abs(w)
            .iter()
            .map(|&m| if m <= 0.0 { 1.0 } else { f64::from(m) / anchor })
            .collect();
        let f: &dyn Format = fmt.as_ref();
        let codes: Vec<u16> = w
            .data()
            .chunks_exact(k.max(1))
            .zip(&col_scales)
            .flat_map(|(row, &s)| row.iter().map(move |&x| f.encode(f64::from(x) / s)))
            .collect();
        let table = FixTable::build(fmt.as_ref());
        let v_ovf = v_ovf_for(k);
        // The i64-table path additionally needs the raw i128 sum and the
        // final wrap to stay inside i128 for this k.
        let fast = table
            .filter(|t| t.raw_sum_fits_i128(k) && t.acc_width(v_ovf) < 128)
            .map(Arc::new);
        if let Some(table) = fast {
            let fixes: Vec<i64> = codes.iter().map(|&c| table.fix(c)).collect();
            let packed = PackedCodeRhs::pack_t(&fixes, n, k);
            let acc_width = table.acc_width(v_ovf);
            let lsb_exp = table.lsb_exp();
            Self {
                fmt,
                anchor,
                col_scales,
                k,
                n,
                acc_width,
                lsb_exp,
                path: EnginePath::Fix { table, packed },
            }
        } else {
            let (params, sig_bits) = wide_spec(fmt.as_ref());
            let weights: Vec<WideOperand> = codes
                .iter()
                .map(|&c| wide_operand(fmt.as_ref(), &params, c))
                .collect();
            let max_bits = (params.e_max - params.e_min) as u32 + sig_bits;
            let acc_width = (2 * max_bits - 1 + v_ovf) as usize;
            let lsb_exp = 2 * (params.e_min - (sig_bits as i32 - 1));
            Self {
                fmt,
                anchor,
                col_scales,
                k,
                n,
                acc_width,
                lsb_exp,
                path: EnginePath::Wide { weights },
            }
        }
    }

    /// The format the engine multiplies in.
    #[must_use]
    pub fn format(&self) -> &dyn Format {
        self.fmt.as_ref()
    }

    /// Inner (reduction) dimension.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output dimension.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The hardware accumulator width used per dot product.
    #[must_use]
    pub fn acc_width(&self) -> usize {
        self.acc_width
    }

    /// Whether the engine took the 256-bit wide fallback.
    #[must_use]
    pub fn is_wide(&self) -> bool {
        matches!(self.path, EnginePath::Wide { .. })
    }

    /// The per-output-channel weight scales (float-executor identical).
    #[must_use]
    pub fn col_scales(&self) -> &[f64] {
        &self.col_scales
    }

    /// Dynamic per-row activation scales: `max|row| / anchor` per rank-2
    /// input row, or 1.0 for an all-zero (or empty) row. Each row's scale
    /// depends only on that row, so a sample's codes are independent of
    /// its batch-mates — the batching bit-identity invariant.
    ///
    /// # Panics
    ///
    /// Panics unless `x2` is rank 2.
    #[must_use]
    pub fn row_scales(&self, x2: &Tensor) -> Vec<f64> {
        assert_eq!(x2.shape().len(), 2, "row scales need a rank-2 input");
        let k = x2.shape()[1];
        x2.data()
            .chunks_exact(k.max(1))
            .map(|row| {
                let m = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                if m > 0.0 {
                    f64::from(m) / self.anchor
                } else {
                    1.0
                }
            })
            .collect()
    }

    /// Encodes an activation tensor to codes, row `i` scaled by `s_a[i]`.
    fn encode_codes(&self, x2: &Tensor, s_a: &[f64]) -> Vec<u16> {
        let k = x2.shape()[1];
        x2.data()
            .chunks_exact(k.max(1))
            .zip(s_a)
            .flat_map(|(row, &s)| row.iter().map(move |&x| self.fmt.encode(f64::from(x) / s)))
            .collect()
    }
}

/// MAC parameters plus the decoder's significand width (from any finite
/// code) — the sizing a wide-path engine needs when no [`FixTable`]
/// exists.
fn wide_spec(fmt: &dyn Format) -> (MacParams, u32) {
    let params = MacParams::of(fmt);
    let sig_bits = fmt
        .codes()
        .find_map(|c| fmt.fields(c as u16))
        .map_or(params.m, |d| d.sig_bits);
    (params, sig_bits)
}

/// Decodes one code into its wide-path operand (zero for non-finite).
fn wide_operand(fmt: &dyn Format, params: &MacParams, code: u16) -> WideOperand {
    if fmt.classify(code) != ValueClass::Finite {
        return WideOperand::default();
    }
    let d = fmt.fields(code).expect("finite code has fields");
    let shift = d.exp_eff - params.e_min;
    assert!(shift >= 0, "finite magnitude below min_positive");
    WideOperand {
        sig: u64::from(d.sig),
        shift: shift as u32,
        neg: d.sign,
    }
}

impl BitTrueGemm for QuantGemm {
    fn gemm(&self, x2: &Tensor) -> Tensor {
        let _span = mersit_obs::span("ptq.bittrue.gemm");
        assert_eq!(x2.shape().len(), 2, "bit-true GEMM input must be rank 2");
        let (rows, k) = (x2.shape()[0], x2.shape()[1]);
        assert_eq!(k, self.k, "bit-true GEMM inner dimension mismatch");
        let s_a = self.row_scales(x2);
        let a_codes = self.encode_codes(x2, &s_a);
        mersit_obs::add("ptq.bittrue.macs", (rows * k * self.n) as u64);
        let mut out = vec![0.0f32; rows * self.n];
        match &self.path {
            EnginePath::Fix { table, packed } => {
                let a_fix: Vec<i64> = a_codes.iter().map(|&c| table.fix(c)).collect();
                let mut acc = vec![0i128; rows * self.n];
                qgemm_rows_par(&a_fix, k, packed, &mut acc);
                let lsb = 2f64.powi(self.lsb_exp);
                for i in 0..rows {
                    for j in 0..self.n {
                        let wrapped = wrap_i128(acc[i * self.n + j], self.acc_width);
                        out[i * self.n + j] =
                            (wrapped as f64 * lsb * s_a[i] * self.col_scales[j]) as f32;
                    }
                }
            }
            EnginePath::Wide { weights } => {
                mersit_obs::incr("ptq.bittrue.wide_path");
                let a_ops: Vec<WideOperand> = {
                    let (params, _) = wide_spec(self.fmt.as_ref());
                    a_codes
                        .iter()
                        .map(|&c| wide_operand(self.fmt.as_ref(), &params, c))
                        .collect()
                };
                let lsb = 2f64.powi(self.lsb_exp);
                for i in 0..rows {
                    let arow = &a_ops[i * k..(i + 1) * k];
                    for j in 0..self.n {
                        let wrow = &weights[j * k..(j + 1) * k];
                        let mut acc = WideAcc::default();
                        for (wo, ao) in wrow.iter().zip(arow) {
                            if wo.sig == 0 || ao.sig == 0 {
                                continue;
                            }
                            acc.add_product(wo.sig * ao.sig, wo.shift + ao.shift, wo.neg ^ ao.neg);
                        }
                        out[i * self.n + j] =
                            (acc.wrapped_f64(self.acc_width) * lsb * s_a[i] * self.col_scales[j])
                                as f32;
                    }
                }
            }
        }
        Tensor::from_vec(out, &[rows, self.n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mersit_core::parse_format;
    use mersit_tensor::Rng;

    #[test]
    fn executor_parsing() {
        assert_eq!(Executor::parse("bittrue"), Executor::BitTrue);
        assert_eq!(Executor::parse("Bit-True"), Executor::BitTrue);
        assert_eq!(Executor::parse("bit_true"), Executor::BitTrue);
        assert_eq!(Executor::parse("float"), Executor::Float);
        assert_eq!(Executor::parse("anything-else"), Executor::Float);
        assert_eq!(Executor::default(), Executor::Float);
        assert_eq!(Executor::BitTrue.to_string(), "bittrue");
    }

    #[test]
    fn engine_matches_scalar_reference() {
        // The packed engine's accumulators must equal dot_bit_true on the
        // same codes; check through the full f32 output pipeline.
        let fmt = parse_format("MERSIT(8,2)").unwrap();
        let mut rng = Rng::new(17);
        let w = Tensor::randn(&[7, 13], 1.0, &mut rng);
        let x = Tensor::randn(&[5, 13], 1.0, &mut rng);
        let eng = QuantGemm::build(fmt.clone(), &w);
        assert!(!eng.is_wide());
        let out = eng.gemm(&x);
        assert_eq!(out.shape(), &[5, 7]);

        let table = FixTable::build(fmt.as_ref()).unwrap();
        let s_a = eng.row_scales(&x);
        let f: &dyn Format = fmt.as_ref();
        let a_codes: Vec<u16> = x
            .data()
            .chunks_exact(13)
            .zip(&s_a)
            .flat_map(|(row, &s)| row.iter().map(move |&v| f.encode(f64::from(v) / s)))
            .collect();
        let w_codes: Vec<u16> = w
            .data()
            .chunks_exact(13)
            .zip(eng.col_scales())
            .flat_map(|(row, &s)| row.iter().map(move |&v| f.encode(f64::from(v) / s)))
            .collect();
        let lsb = 2f64.powi(table.lsb_exp());
        for i in 0..5 {
            for j in 0..7 {
                let acc = dot_bit_true(
                    &table,
                    &w_codes[j * 13..(j + 1) * 13],
                    &a_codes[i * 13..(i + 1) * 13],
                    eng.acc_width(),
                );
                let want = (acc as f64 * lsb * s_a[i] * eng.col_scales()[j]) as f32;
                assert_eq!(out.at(&[i, j]).to_bits(), want.to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn gemm_rows_independent_of_batchmates() {
        // The batching invariant at engine level: a row's output must be
        // bit-identical whether it runs alone or inside a larger batch —
        // for both the fixed-point and the wide path.
        let mut rng = Rng::new(31);
        for fmt_name in ["MERSIT(8,2)", "Posit(8,3)"] {
            let fmt = parse_format(fmt_name).unwrap();
            let w = Tensor::randn(&[5, 9], 1.0, &mut rng);
            let eng = QuantGemm::build(fmt, &w);
            // Rows with wildly different magnitudes, so a per-tensor scale
            // would visibly couple them.
            let mut data = Vec::new();
            for i in 0..4 {
                let scale = 10f32.powi(i - 2);
                data.extend((0..9).map(|_| rng.normal() as f32 * scale));
            }
            let x = Tensor::from_vec(data, &[4, 9]);
            let batched = eng.gemm(&x);
            for i in 0..4 {
                let single = eng.gemm(&x.slice_outer(i, i + 1));
                for j in 0..5 {
                    assert_eq!(
                        batched.at(&[i, j]).to_bits(),
                        single.at(&[0, j]).to_bits(),
                        "{fmt_name} row {i} col {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn wide_path_runs_posit83() {
        let fmt = parse_format("Posit(8,3)").unwrap();
        let mut rng = Rng::new(19);
        let w = Tensor::randn(&[4, 6], 1.0, &mut rng);
        let x = Tensor::randn(&[3, 6], 1.0, &mut rng);
        let eng = QuantGemm::build(fmt, &w);
        assert!(eng.is_wide());
        let out = eng.gemm(&x);
        assert_eq!(out.shape(), &[3, 4]);
        assert!(out.data().iter().all(|v| v.is_finite()));
        // A zero input must map to exact zeros (all codes zero).
        let z = Tensor::zeros(&[2, 6]);
        let zo = eng.gemm(&z);
        assert!(zo.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn wide_acc_matches_i128_for_narrow_widths() {
        let mut rng = Rng::new(23);
        for _ in 0..50 {
            let mut wide = WideAcc::default();
            let mut raw = 0i128;
            for _ in 0..20 {
                let mag = rng.next_u64() % (1 << 16);
                let shift = (rng.next_u64() % 90) as u32;
                let neg = rng.next_u64() & 1 == 1;
                wide.add_product(mag, shift, neg);
                let signed = (i128::from(mag)) << shift;
                raw += if neg { -signed } else { signed };
            }
            for width in [64, 100, 120, 127] {
                assert_eq!(
                    wide.wrapped_i128(width),
                    wrap_i128(raw, width),
                    "width {width}"
                );
                assert_eq!(
                    wide.wrapped_f64(width),
                    wrap_i128(raw, width) as f64,
                    "f64 width {width}"
                );
            }
        }
    }

    #[test]
    fn engine_output_tracks_float_gemm() {
        // Bit-true and float GEMMs quantize the same way, so on
        // well-scaled data they should agree to quantization error.
        let fmt = parse_format("MERSIT(8,2)").unwrap();
        let mut rng = Rng::new(29);
        let w = Tensor::randn(&[9, 24], 0.5, &mut rng);
        let x = Tensor::randn(&[6, 24], 1.0, &mut rng);
        let eng = QuantGemm::build(fmt, &w);
        let got = eng.gemm(&x);
        let want = x.matmul(&w.transpose());
        let denom = f64::from(want.max_abs()).max(1e-6);
        for (g, r) in got.data().iter().zip(want.data()) {
            let rel = (f64::from(g - r)).abs() / denom;
            assert!(rel < 0.2, "divergence {rel} (got {g}, want {r})");
        }
    }
}
