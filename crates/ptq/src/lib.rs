//! # mersit-ptq — the post-training quantization pipeline of §4.1
//!
//! Calibration (per-channel weight maxima, per-layer activation maxima on a
//! small data subset), fake-quantization through any `mersit-core`
//! [`mersit_core::Format`], quantized inference, RMSE analysis (Fig. 6) and
//! the Table 2 accuracy harness.
//!
//! ```
//! use mersit_core::parse_format;
//! use mersit_ptq::{quantize_tensor, scale_for};
//! use mersit_tensor::Tensor;
//!
//! let fmt = parse_format("MERSIT(8,2)")?;
//! let acts = Tensor::from_vec(vec![0.1, -2.3, 0.77, 1.9], &[4]);
//! let s = scale_for(fmt.as_ref(), acts.max_abs());
//! let q = quantize_tensor(fmt.as_ref(), &acts, s);
//! assert!(q.sub(&acts).max_abs() < 0.2);
//! # Ok::<(), mersit_core::InvalidFormatError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_possible_wrap,
    clippy::cast_precision_loss,
    clippy::must_use_candidate,
    clippy::module_name_repetitions,
    clippy::doc_markdown,
    clippy::float_cmp,
    clippy::unreadable_literal,
    clippy::missing_panics_doc,
    clippy::unusual_byte_groupings,
    clippy::too_many_lines,
    clippy::cast_lossless,
    clippy::similar_names,
    clippy::format_push_string,
    clippy::many_single_char_names,
    clippy::needless_range_loop
)]

pub mod accuracy;
pub mod assign;
pub mod bittrue;
pub mod calibrate;
pub mod coverify;
pub mod executor;
pub mod other_formats;
pub mod quantizer;
pub mod rmse;

pub use accuracy::{
    evaluate_assignments, evaluate_model, render_table, EvalRow, FormatScore, Metric,
};
pub use assign::{
    assignment_score, greedy_search, layer_macs, layer_sensitivity, pareto_front, FormatAssignment,
    LayerMacs, LayerSensitivity, ParetoPoint, SearchConfig,
};
pub use bittrue::{dot_bit_true, Executor, QuantGemm, WideAcc};
pub use calibrate::{calibrate, Calibration, INPUT_PATH};
pub use coverify::{coverify, DivergenceReport, SiteDivergence};
pub use executor::{
    evaluate_format, predict_quantized, quantize_weights, QuantPlan, QuantTap, WeightSnapshot,
};
pub use other_formats::{
    quantize_adaptivfloat, quantize_bfp, quantize_weights_alt, AltAssignment, AltQuant, AltTap,
};
pub use quantizer::{
    channel_max_abs, quantize_per_channel, quantize_slice, quantize_tensor, relative_rmse,
    scale_anchor, scale_for, site_scale,
};
pub use rmse::{activation_rmse, rmse_report, weight_rmse, RmseReport};
