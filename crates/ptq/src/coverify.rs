//! Hardware/software co-verification: runs the float and bit-true
//! executors over the **same** compiled plans and inputs, measuring where
//! (and by how much) their activations diverge.
//!
//! The bit-true engine is *not* expected to match the float executor bit
//! for bit — it re-enters code space at every GEMM input with dynamic
//! per-row scales, while the float executor fake-quantizes with
//! calibrated per-site scales. What co-verification pins down is that the
//! divergence is **bounded and quantization-shaped**: small relative to
//! each site's calibrated maximum, and not growing without bound through
//! the network. Exactness claims live one level down — the engine's
//! scalar semantics are bit-identical to the `mersit-hw` golden MAC
//! (`tests/bittrue_golden.rs`) and the packed integer kernels are
//! bit-identical to their scalar reference (`mersit-tensor`'s
//! `tests/qgemm_props.rs`).
//!
//! # How a co-verification run works
//!
//! For each batch, the float plan runs first with a recording tap that
//! stores every activation tensor *as it arrives* at a tap site (before
//! fake-quantization). The bit-true plan then runs with a comparing tap
//! that diffs its own incoming activations against the recording, site by
//! site, before quantizing and continuing — so each site's statistic
//! measures the divergence the preceding layers accumulated. Logit
//! divergence and argmax agreement are measured at the output.
//!
//! With `MERSIT_OBS` on, every site visit records its batch-max
//! divergence into a `ptq.coverify.site.<path>` histogram, giving a
//! log2-bucketed per-site divergence profile over the whole run.

use crate::assign::FormatAssignment;
use crate::bittrue::Executor;
use crate::calibrate::Calibration;
use crate::executor::{quantize_site, QuantPlan};
use crate::quantizer::quantize_tensor;
use mersit_core::FormatRef;
use mersit_nn::{argmax_rows, Ctx, Layer, Model, Site, Tap};
use mersit_tensor::Tensor;

/// Accumulated activation divergence at one tap site.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteDivergence {
    /// Hierarchical layer path of the site.
    pub path: String,
    /// Number of activation elements compared.
    pub elems: u64,
    /// Largest absolute element-wise difference seen.
    pub max_abs: f64,
    /// Mean absolute element-wise difference.
    pub mean_abs: f64,
}

/// The artifact of one co-verification run.
#[derive(Debug, Clone, PartialEq)]
pub struct DivergenceReport {
    /// Model name.
    pub model: String,
    /// Canonical assignment name (the plain format name when uniform).
    pub format: String,
    /// Number of samples compared.
    pub samples: usize,
    /// Per-site divergence, in trace order (visited sites only).
    pub sites: Vec<SiteDivergence>,
    /// Largest absolute logit difference between the executors.
    pub logits_max_abs: f64,
    /// Fraction of samples where both executors picked the same argmax.
    pub agreement: f64,
}

impl DivergenceReport {
    /// The largest per-site `max_abs` across the network (0.0 when no
    /// sites were visited).
    #[must_use]
    pub fn worst_site_divergence(&self) -> f64 {
        self.sites.iter().map(|s| s.max_abs).fold(0.0, f64::max)
    }

    /// Serializes the report as deterministic, human-diffable JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"model\": {:?},\n", self.model));
        out.push_str(&format!("  \"format\": {:?},\n", self.format));
        out.push_str(&format!("  \"samples\": {},\n", self.samples));
        out.push_str(&format!(
            "  \"logits_max_abs\": {:.9e},\n",
            self.logits_max_abs
        ));
        out.push_str(&format!("  \"agreement\": {:.6},\n", self.agreement));
        out.push_str("  \"sites\": [\n");
        for (i, s) in self.sites.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"path\": {:?}, \"elems\": {}, \"max_abs\": {:.9e}, \"mean_abs\": {:.9e}}}{}\n",
                s.path,
                s.elems,
                s.max_abs,
                s.mean_abs,
                if i + 1 < self.sites.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Running divergence stats for one site id.
#[derive(Debug, Clone, Copy, Default)]
struct SiteAgg {
    elems: u64,
    sum_abs: f64,
    max_abs: f64,
}

/// The float pass's tap: stores each incoming (pre-quantization)
/// activation, then quantizes exactly as the plan tap would — through the
/// format each site resolves to under the plan's assignment.
struct RecordTap<'a> {
    fmts: &'a [FormatRef],
    scales: &'a [Option<f64>],
    recorded: Vec<Tensor>,
}

impl Tap for RecordTap<'_> {
    fn activation(&mut self, site: Site<'_>, t: Tensor) -> Tensor {
        self.recorded.push(t.clone());
        quantize_site(self.fmts[site.id.index()].as_ref(), self.scales, site, t)
    }
}

/// The bit-true pass's tap: diffs each incoming activation against the
/// float pass's recording (same visit order — the site table is the
/// contract), then quantizes identically.
struct CompareTap<'a> {
    fmts: &'a [FormatRef],
    scales: &'a [Option<f64>],
    recorded: &'a [Tensor],
    next: usize,
    aggs: &'a mut [SiteAgg],
}

impl Tap for CompareTap<'_> {
    fn activation(&mut self, site: Site<'_>, t: Tensor) -> Tensor {
        let reference = &self.recorded[self.next];
        self.next += 1;
        assert_eq!(
            t.shape(),
            reference.shape(),
            "executors disagree on activation shape at {}",
            site.path
        );
        let agg = &mut self.aggs[site.id.index()];
        let mut visit_max = 0.0f64;
        for (&a, &b) in t.data().iter().zip(reference.data()) {
            let d = f64::from(a - b).abs();
            agg.sum_abs += d;
            visit_max = visit_max.max(d);
        }
        agg.elems += t.data().len() as u64;
        agg.max_abs = agg.max_abs.max(visit_max);
        mersit_obs::observe_dyn(|| format!("ptq.coverify.site.{}", site.path), visit_max);
        quantize_site(self.fmts[site.id.index()].as_ref(), self.scales, site, t)
    }
}

/// Runs both executors of an assignment (a plain [`FormatRef`] converts
/// into a uniform one) over `inputs` and returns the divergence report.
/// Batches run serially (the comparison needs the two passes' site-visit
/// orders aligned). Mixed assignments diff each site under its own
/// resolved format.
///
/// # Panics
///
/// Panics when `batch` is 0, or when the two executors visit a different
/// number of tap sites (a broken site contract).
#[must_use]
pub fn coverify(
    model: &Model,
    assign: impl Into<FormatAssignment>,
    cal: &Calibration,
    inputs: &Tensor,
    batch: usize,
) -> DivergenceReport {
    let assign = assign.into();
    let _span = mersit_obs::span("ptq.coverify");
    assert!(batch > 0, "batch size must be positive");
    let float_plan = QuantPlan::build_with(model, assign.clone(), cal, Executor::Float);
    let bt_plan = QuantPlan::build_with(model, assign, cal, Executor::BitTrue);
    let n = inputs.shape()[0];
    let mut aggs = vec![SiteAgg::default(); float_plan.sites.len()];
    let mut logits_max_abs = 0.0f64;
    let mut agree = 0usize;
    let mut i = 0;
    while i < n {
        let hi = (i + batch).min(n);
        let x = inputs.slice_outer(i, hi);
        let x = match float_plan.input_scale {
            Some(s) => quantize_tensor(float_plan.input_fmt.as_ref(), &x, s),
            None => x,
        };

        let mut rec = RecordTap {
            fmts: &float_plan.site_fmts,
            scales: &float_plan.scales,
            recorded: Vec::new(),
        };
        let mut ctx =
            Ctx::compiled(&float_plan.sites, &mut rec).with_overrides(&float_plan.weights);
        let logits_f = model.net.forward_ref(x.clone(), &mut ctx);
        let recorded = rec.recorded;

        let mut cmp = CompareTap {
            fmts: &bt_plan.site_fmts,
            scales: &bt_plan.scales,
            recorded: &recorded,
            next: 0,
            aggs: &mut aggs,
        };
        let mut ctx = Ctx::compiled(&bt_plan.sites, &mut cmp).with_overrides(&bt_plan.weights);
        let logits_b = model.net.forward_ref(x, &mut ctx);
        assert_eq!(
            cmp.next,
            recorded.len(),
            "bit-true pass visited a different number of tap sites"
        );

        for (&a, &b) in logits_b.data().iter().zip(logits_f.data()) {
            logits_max_abs = logits_max_abs.max(f64::from(a - b).abs());
        }
        agree += argmax_rows(&logits_b)
            .iter()
            .zip(argmax_rows(&logits_f))
            .filter(|(a, b)| **a == *b)
            .count();
        i = hi;
    }

    let sites = float_plan
        .sites
        .iter()
        .filter(|(id, _)| aggs[id.index()].elems > 0)
        .map(|(id, path)| {
            let a = aggs[id.index()];
            SiteDivergence {
                path: path.to_owned(),
                elems: a.elems,
                max_abs: a.max_abs,
                mean_abs: a.sum_abs / a.elems as f64,
            }
        })
        .collect();
    DivergenceReport {
        model: model.name.clone(),
        format: float_plan.assignment().name(),
        samples: n,
        sites,
        logits_max_abs,
        agreement: if n == 0 { 1.0 } else { agree as f64 / n as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::calibrate;
    use mersit_core::parse_format;
    use mersit_nn::models::vgg_t;
    use mersit_tensor::Rng;

    #[test]
    fn coverify_reports_bounded_divergence() {
        let mut rng = Rng::new(7);
        let model = vgg_t(8, 10, &mut rng);
        let x = Tensor::randn(&[6, 3, 8, 8], 1.0, &mut rng);
        let cal = calibrate(&model, &x, 3);
        let fmt = parse_format("MERSIT(8,2)").unwrap();
        let report = coverify(&model, fmt, &cal, &x, 3);
        assert_eq!(report.samples, 6);
        assert!(!report.sites.is_empty());
        assert!(report.agreement >= 0.5, "agreement {}", report.agreement);
        // Divergence is quantization-shaped, not exploding.
        for s in &report.sites {
            assert!(s.max_abs.is_finite(), "{}: non-finite divergence", s.path);
            assert!(s.mean_abs <= s.max_abs + 1e-12);
        }
        let json = report.to_json();
        assert!(json.contains("\"model\""));
        assert!(json.contains("\"sites\""));
        assert!(json.contains("MERSIT"));
    }
}
