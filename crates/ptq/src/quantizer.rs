//! Scaled fake-quantization of tensors through any 8-bit [`Format`].
//!
//! Scaling follows the paper's §4.1 protocol: the maximum absolute value of
//! the data (per output channel for weights, per tensor for activations)
//! is mapped onto the format's largest finite magnitude, i.e.
//! `scale = max|x| / max_finite`, then every element is rounded through the
//! format and scaled back.

use mersit_core::{Format, QuantLut, LUT_MIN_LEN};
use mersit_tensor::{par, Tensor};

/// Rough cost (in elementary ops) of one scalar `Format::quantize` round
/// trip, used to size per-thread work in the parallel splits below.
const SCALAR_QUANT_COST: usize = 64;

/// The value the data maximum is mapped onto: the **largest representable
/// value inside the format's full-precision band** (the highest binade
/// still carrying the format's maximal effective fraction bits).
///
/// * INT8 → 127 and FP8 → `max_finite` (flat precision: the band reaches
///   the top, recovering standard INT8/FP8 practice);
/// * Posit/MERSIT → the top of the tapered-precision plateau (e.g. 3.875
///   for Posit(8,1), 7.75 for MERSIT(8,2)), so the bulk of the data sits
///   where the regime tapering still grants full fraction precision and
///   the wide dynamic range below is spent on the distribution's tail —
///   the §3.2 precision-band argument made operational.
#[must_use]
pub fn scale_anchor(fmt: &dyn Format) -> f64 {
    // Delegates to the format, which memoizes the code-space sweep behind
    // a `OnceLock` so repeated calls (one per layer per batch) are free.
    fmt.scale_anchor()
}

/// Fake-quantizes a slice in place: `x ← quantize(x / scale) · scale` for
/// every element, through the format's batched [`QuantLut`] codec when the
/// slice is long enough to amortize the table build, and across threads
/// when long enough to amortize the spawns. Bit-identical to the scalar
/// element loop in every case.
pub fn quantize_slice(fmt: &dyn Format, xs: &mut [f32], scale: f64) {
    let _span = mersit_obs::span("ptq.quantize_slice");
    mersit_obs::add("ptq.quantize.elems", xs.len() as u64);
    if xs.len() >= LUT_MIN_LEN && QuantLut::supports(scale) {
        if let Some(lut) = QuantLut::build(&fmt.quant_spec(), scale) {
            // Build the table once, share it read-only across threads.
            mersit_obs::incr("ptq.quantize.lut_path");
            par::par_chunks_mut(xs, 1, par::min_units(8), |_, chunk| lut.apply(chunk));
            return;
        }
    }
    mersit_obs::incr("ptq.quantize.scalar_path");
    fmt.quantize_slice(xs, scale);
}

/// Per-site activation scale: `Some(max_abs / anchor)` when the site was
/// observed (positive maximum), `None` for unseen sites, which must pass
/// through unquantized. This is the **single** definition of the
/// activation scale — the calibrated executor taps, the compiled
/// [`crate::executor::QuantPlan`], and the input quantization in
/// [`crate::executor::predict_quantized`] all go through it, so they can
/// never drift apart.
#[must_use]
pub fn site_scale(anchor: f64, max_abs: f32) -> Option<f64> {
    (max_abs > 0.0).then(|| f64::from(max_abs) / anchor)
}

/// Scale that maps `max_abs` onto [`scale_anchor`].
/// Returns 1.0 for all-zero data.
#[must_use]
pub fn scale_for(fmt: &dyn Format, max_abs: f32) -> f64 {
    site_scale(scale_anchor(fmt), max_abs).unwrap_or(1.0)
}

/// Fake-quantizes a whole tensor with one scale (per-tensor quantization,
/// the paper's activation scheme).
#[must_use]
pub fn quantize_tensor(fmt: &dyn Format, t: &Tensor, scale: f64) -> Tensor {
    let mut out = t.clone();
    quantize_slice(fmt, out.data_mut(), scale);
    out
}

/// Per-outermost-dimension max-abs values (per-output-channel statistics
/// for `[OC, ...]` weight tensors).
#[must_use]
pub fn channel_max_abs(t: &Tensor) -> Vec<f32> {
    let oc = t.shape()[0];
    let inner: usize = t.shape()[1..].iter().product();
    (0..oc)
        .map(|c| {
            t.data()[c * inner..(c + 1) * inner]
                .iter()
                .fold(0.0f32, |m, &x| m.max(x.abs()))
        })
        .collect()
}

/// Fake-quantizes a weight tensor per output channel (the paper's weight
/// scheme).
#[must_use]
pub fn quantize_per_channel(fmt: &dyn Format, t: &Tensor) -> Tensor {
    let _span = mersit_obs::span("ptq.quantize_per_channel");
    mersit_obs::add("ptq.quantize.channels", t.shape()[0] as u64);
    let maxes = channel_max_abs(t);
    let inner: usize = t.shape()[1..].iter().product();
    let mut out = t.clone();
    if inner == 0 {
        return out;
    }
    // The anchor is a per-format constant; hoist it out of the channel loop.
    let anchor = fmt.scale_anchor();
    let scales: Vec<f64> = maxes
        .iter()
        .map(|&m| if m <= 0.0 { 1.0 } else { f64::from(m) / anchor })
        .collect();
    let scales = &scales;
    // Channels are independent (each has its own scale), so the channel
    // range is split across threads; within a channel the format's slice
    // codec picks the LUT path when the channel is long enough.
    par::par_chunks_mut(
        out.data_mut(),
        inner,
        par::min_units(inner.saturating_mul(SCALAR_QUANT_COST)),
        |c0, chunk| {
            for (dc, ch) in chunk.chunks_mut(inner).enumerate() {
                fmt.quantize_slice(ch, scales[c0 + dc]);
            }
        },
    );
    out
}

/// Relative root-mean-square error between a tensor and a reference,
/// normalized by the reference RMS. Returns 0 for a zero reference.
#[must_use]
pub fn relative_rmse(quantized: &Tensor, reference: &Tensor) -> f64 {
    assert_eq!(quantized.shape(), reference.shape(), "shape mismatch");
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (&q, &r) in quantized.data().iter().zip(reference.data()) {
        num += f64::from(q - r) * f64::from(q - r);
        den += f64::from(r) * f64::from(r);
    }
    if den == 0.0 {
        0.0
    } else {
        (num / den).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mersit_core::{parse_format, Int8, Mersit};
    use mersit_tensor::Rng;

    #[test]
    fn scale_maps_max_to_the_precision_band_top() {
        let m = Mersit::new(8, 2).unwrap();
        // MERSIT(8,2): 4-bit band tops out in binade 2 → anchor 7.75.
        assert!((scale_anchor(&m) - 7.75).abs() < 1e-12);
        let s = scale_for(&m, 10.0);
        assert!((10.0 / s - 7.75).abs() < 1e-12);
        assert_eq!(scale_for(&m, 0.0), 1.0);
    }

    #[test]
    fn anchors_recover_standard_practice_for_flat_formats() {
        use mersit_core::{Fp8, Posit};
        assert_eq!(scale_anchor(&Int8::new()), 127.0);
        let f = Fp8::new(4).unwrap();
        assert_eq!(scale_anchor(&f), f.max_finite());
        let p = Posit::new(8, 1).unwrap();
        assert!((scale_anchor(&p) - 3.875).abs() < 1e-12);
    }

    #[test]
    fn int8_quantization_matches_reference() {
        let i = Int8::new();
        let t = Tensor::from_vec(vec![0.0, 0.5, -1.0, 0.998], &[4]);
        let s = scale_for(&i, 1.0); // 1/127
        let q = quantize_tensor(&i, &t, s);
        assert_eq!(q.data()[0], 0.0);
        assert!((q.data()[1] - 0.5).abs() < 1.0 / 127.0);
        assert!((q.data()[2] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn per_channel_uses_independent_scales() {
        let m = Mersit::new(8, 2).unwrap();
        // Channel 0 tiny, channel 1 large: per-channel keeps both precise.
        let t = Tensor::from_vec(vec![0.001, 0.0009, 100.0, 90.0], &[2, 2]);
        let q = quantize_per_channel(&m, &t);
        let err0 = relative_rmse(&q.slice_outer(0, 1), &t.slice_outer(0, 1));
        let err1 = relative_rmse(&q.slice_outer(1, 1), &t.slice_outer(1, 1));
        assert!(err0 < 0.05, "small channel error {err0}");
        assert!(err1 < 0.05, "large channel error {err1}");
    }

    #[test]
    fn quantization_error_tracks_precision() {
        // MERSIT(8,2) (4-bit peak precision) should beat FP(8,5)
        // (2-bit precision) on well-scaled Gaussian data.
        let mut rng = Rng::new(5);
        let t = Tensor::randn(&[1000], 1.0, &mut rng);
        let good = parse_format("MERSIT(8,2)").unwrap();
        let bad = parse_format("FP(8,5)").unwrap();
        let s_g = scale_for(good.as_ref(), t.max_abs());
        let s_b = scale_for(bad.as_ref(), t.max_abs());
        let e_g = relative_rmse(&quantize_tensor(good.as_ref(), &t, s_g), &t);
        let e_b = relative_rmse(&quantize_tensor(bad.as_ref(), &t, s_b), &t);
        assert!(e_g < e_b, "MERSIT {e_g} vs FP(8,5) {e_b}");
    }

    #[test]
    fn engine_bit_identical_to_scalar_formula() {
        // The batched engine (LUT + threads for big tensors, scalar for
        // small ones) must reproduce the original per-element expression
        // exactly, for every registry format.
        let mut rng = Rng::new(11);
        let small = Tensor::randn(&[100], 1.5, &mut rng);
        let large = Tensor::randn(&[20_000], 1.5, &mut rng);
        for fmt in mersit_core::table2_formats() {
            let fmt = fmt.as_ref();
            for t in [&small, &large] {
                let s = scale_for(fmt, t.max_abs());
                let q = quantize_tensor(fmt, t, s);
                for (&got, &x) in q.data().iter().zip(t.data()) {
                    let want = (fmt.quantize(f64::from(x) / s) * s) as f32;
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "{} x={x} got={got} want={want}",
                        fmt.name()
                    );
                }
            }
        }
    }

    #[test]
    fn per_channel_bit_identical_to_scalar_loop() {
        let mut rng = Rng::new(13);
        // 6 channels of 2000: long enough to engage the LUT per channel.
        let t = Tensor::randn(&[6, 2000], 3.0, &mut rng);
        let fmt = parse_format("MERSIT(8,2)").unwrap();
        let fmt = fmt.as_ref();
        let q = quantize_per_channel(fmt, &t);
        let maxes = channel_max_abs(&t);
        let anchor = scale_anchor(fmt);
        for c in 0..6 {
            let s = f64::from(maxes[c]) / anchor;
            for j in 0..2000 {
                let x = t.at(&[c, j]);
                let want = (fmt.quantize(f64::from(x) / s) * s) as f32;
                assert_eq!(q.at(&[c, j]).to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn relative_rmse_basics() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        assert_eq!(relative_rmse(&a, &b), 0.0);
        let z = Tensor::zeros(&[2]);
        assert_eq!(relative_rmse(&a, &z), 0.0); // zero reference convention
    }
}
