//! Quantization-error analysis — the Fig. 6 RMSE comparison.

use crate::calibrate::Calibration;
use crate::quantizer::{quantize_per_channel, quantize_tensor, relative_rmse};
use mersit_core::Format;
use mersit_nn::{Ctx, Layer, Model, Site, Tap};
use mersit_tensor::Tensor;

/// RMSE summary for one (model, format) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct RmseReport {
    /// Model name.
    pub model: String,
    /// Format name.
    pub format: String,
    /// Mean relative RMSE of per-channel-quantized weights.
    pub weight_rmse: f64,
    /// Mean relative RMSE of per-layer-quantized activations.
    pub act_rmse: f64,
}

impl RmseReport {
    /// Combined score (mean of the weight and activation components).
    #[must_use]
    pub fn combined(&self) -> f64 {
        0.5 * (self.weight_rmse + self.act_rmse)
    }
}

/// Mean relative RMSE across all rank-≥2 weight tensors, quantized per
/// output channel.
#[must_use]
pub fn weight_rmse(model: &mut Model, fmt: &dyn Format) -> f64 {
    let mut total = 0.0f64;
    let mut count = 0usize;
    model.net.visit_params("", &mut |_, p| {
        if p.value.shape().len() >= 2 {
            let q = quantize_per_channel(fmt, &p.value);
            total += relative_rmse(&q, &p.value);
            count += 1;
        }
    });
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

struct RmseTap<'a> {
    fmt: &'a dyn Format,
    cal: &'a Calibration,
    anchor: f64,
    err_sum: f64,
    sites: usize,
}

impl Tap for RmseTap<'_> {
    fn activation(&mut self, site: Site<'_>, t: Tensor) -> Tensor {
        let Some(s) = crate::quantizer::site_scale(self.anchor, self.cal.max_for(site.path)) else {
            return t;
        };
        let q = quantize_tensor(self.fmt, &t, s);
        self.err_sum += relative_rmse(&q, &t);
        self.sites += 1;
        q
    }
}

/// Mean relative RMSE of activations quantized per layer with calibrated
/// scales, measured over an evaluation batch. Quantized activations
/// propagate downstream (as in real quantized inference); each site's
/// error is measured against its local input.
#[must_use]
pub fn activation_rmse(
    model: &mut Model,
    cal: &Calibration,
    fmt: &dyn Format,
    inputs: &Tensor,
    batch: usize,
) -> f64 {
    let n = inputs.shape()[0];
    let mut err = 0.0f64;
    let mut sites = 0usize;
    let mut i = 0;
    while i < n {
        let hi = (i + batch).min(n);
        let x = inputs.slice_outer(i, hi);
        let mut tap = RmseTap {
            fmt,
            cal,
            anchor: crate::quantizer::scale_anchor(fmt),
            err_sum: 0.0,
            sites: 0,
        };
        let mut ctx = Ctx::with_tap(&mut tap);
        let _ = model.net.forward(x, &mut ctx);
        err += tap.err_sum;
        sites += tap.sites;
        i = hi;
    }
    if sites == 0 {
        0.0
    } else {
        err / sites as f64
    }
}

/// Builds the full report for one (model, format) pair.
#[must_use]
pub fn rmse_report(
    model: &mut Model,
    cal: &Calibration,
    fmt: &dyn Format,
    inputs: &Tensor,
    batch: usize,
) -> RmseReport {
    RmseReport {
        model: model.name.clone(),
        format: fmt.name(),
        weight_rmse: weight_rmse(model, fmt),
        act_rmse: activation_rmse(model, cal, fmt, inputs, batch),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::calibrate;
    use mersit_core::parse_format;
    use mersit_nn::models::vgg_t;
    use mersit_tensor::Rng;

    #[test]
    fn weight_rmse_orders_formats_by_precision() {
        let mut rng = Rng::new(1);
        let mut model = vgg_t(12, 10, &mut rng);
        let hi = weight_rmse(&mut model, parse_format("MERSIT(8,2)").unwrap().as_ref());
        let lo = weight_rmse(&mut model, parse_format("FP(8,5)").unwrap().as_ref());
        assert!(hi > 0.0 && hi < 0.1, "MERSIT weight rmse {hi}");
        assert!(lo > hi, "FP(8,5) {lo} should exceed MERSIT {hi}");
    }

    #[test]
    fn activation_rmse_positive_and_format_dependent() {
        let mut rng = Rng::new(2);
        let mut model = vgg_t(12, 10, &mut rng);
        let x = Tensor::randn(&[8, 3, 12, 12], 1.0, &mut rng);
        let cal = calibrate(&model, &x, 4);
        let m = activation_rmse(
            &mut model,
            &cal,
            parse_format("MERSIT(8,2)").unwrap().as_ref(),
            &x,
            4,
        );
        let f5 = activation_rmse(
            &mut model,
            &cal,
            parse_format("FP(8,5)").unwrap().as_ref(),
            &x,
            4,
        );
        assert!(m > 0.0);
        assert!(f5 > m, "FP(8,5) {f5} vs MERSIT {m}");
    }

    #[test]
    fn report_combines_components() {
        let mut rng = Rng::new(3);
        let mut model = vgg_t(12, 10, &mut rng);
        let x = Tensor::randn(&[4, 3, 12, 12], 1.0, &mut rng);
        let cal = calibrate(&model, &x, 4);
        let fmt = parse_format("Posit(8,1)").unwrap();
        let r = rmse_report(&mut model, &cal, fmt.as_ref(), &x, 4);
        assert_eq!(r.model, "vgg_t");
        assert_eq!(r.format, "Posit(8,1)");
        assert!((r.combined() - 0.5 * (r.weight_rmse + r.act_rmse)).abs() < 1e-12);
    }
}
