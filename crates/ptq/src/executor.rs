//! Fake-quantized inference: weights quantized per output channel,
//! activations quantized per layer at every tap point, using the
//! calibrated maxima as scaling parameters.
//!
//! Two executors share the same numerics:
//!
//! * the **legacy mutate-snapshot-restore path** ([`evaluate_format`]),
//!   which quantizes the model's weights in place and restores them after;
//! * the **compiled plan** ([`QuantPlan`]), which quantizes weights into
//!   plan-owned tensors and runs shared-reference forwards with
//!   weight overrides — so many formats can evaluate concurrently over
//!   one read-only model, with batch shards inside each format.
//!
//! # Invariants
//!
//! * **The tap sites are the contract.** Quantized inference must visit
//!   exactly the activation sites calibration recorded — a site seen only
//!   at calibration means a scale silently goes unused; a site seen only
//!   at inference runs unquantized. Pinned by
//!   `quantized_inference_visits_calibrated_sites` in `calibrate.rs`.
//! * **The two executors are bit-identical.** A [`QuantPlan`] prediction
//!   equals the legacy [`evaluate_format`] prediction exactly for every
//!   format, because both run the same `forward_ref` code with the same
//!   quantized tensors — one substituted in place, one via overrides.
//!   Pinned by `tests/plan_matches_legacy.rs`.
//! * **Weights round-trip exactly.** [`evaluate_format`] snapshots FP32
//!   weights before quantizing and restores them bit-for-bit after, so
//!   formats can be evaluated in sequence on one trained model.
//! * **Rank rule.** Only rank-≥2 parameters are quantized; rank-1
//!   parameters (biases, norm scale/shift) stay FP32, matching common
//!   PTQ practice where they fold into the high-precision accumulator.
//! * **Unseen sites pass through.** A tap whose calibrated maximum is 0
//!   (never fired, or all-zero data) returns the tensor untouched rather
//!   than dividing by a degenerate scale.
//!
//! # Observability
//!
//! With `MERSIT_OBS` on, every tap point records a `ptq.layer.<path>`
//! span (the per-layer executor timings; the path string comes from the
//! interned site table, never rebuilt per activation), and the pipeline
//! phases record `ptq.quantize_weights` / `ptq.predict_quantized` /
//! `ptq.plan.build` / `ptq.plan.predict` / `ptq.evaluate.<format>` spans.
//! Instrumentation observes only — the quantized values are bit-identical
//! with the toggle on or off.

use crate::assign::FormatAssignment;
use crate::bittrue::{Executor, QuantGemm};
use crate::calibrate::{Calibration, INPUT_PATH};
use crate::quantizer::{quantize_per_channel, quantize_tensor, scale_anchor, site_scale};
use mersit_core::{Format, FormatRef};
use mersit_nn::{argmax_rows, Ctx, InputKind, Layer, Model, PlanWeight, Site, SiteTable, Tap};
use mersit_tensor::{par, Tensor};
use std::sync::Arc;

/// Snapshot of model weights for restore-after-quantization.
#[derive(Debug, Default)]
pub struct WeightSnapshot {
    values: Vec<Tensor>,
}

impl WeightSnapshot {
    /// Captures all parameter values of a model.
    #[must_use]
    pub fn capture(model: &Model) -> Self {
        let mut values = Vec::new();
        model
            .net
            .visit_params_ref("", &mut |_, p| values.push(p.value.clone()));
        Self { values }
    }

    /// Restores previously captured values.
    ///
    /// # Panics
    ///
    /// Panics if the model structure changed since capture.
    pub fn restore(&self, model: &mut Model) {
        let mut i = 0;
        model.net.visit_params("", &mut |_, p| {
            p.value = self.values[i].clone();
            i += 1;
        });
        assert_eq!(i, self.values.len(), "parameter count changed");
    }
}

/// Quantizes all rank-≥2 parameters (conv kernels, linear weights,
/// embedding tables) per output channel through `fmt`; rank-1 parameters
/// (biases, normalization scale/shift) stay in FP32, matching common PTQ
/// practice where they fold into the high-precision accumulator path.
pub fn quantize_weights(model: &mut Model, fmt: &dyn Format) {
    let _span = mersit_obs::span("ptq.quantize_weights");
    model.net.visit_params("", &mut |_, p| {
        if p.value.shape().len() >= 2 {
            mersit_obs::incr("ptq.weights.tensors");
            p.value = quantize_per_channel(fmt, &p.value);
        }
    });
}

/// The shared tap body: quantize through the site's calibrated scale, or
/// pass through (counting the miss) when the site was unseen.
pub(crate) fn quantize_site(
    fmt: &dyn Format,
    scales: &[Option<f64>],
    site: Site<'_>,
    t: Tensor,
) -> Tensor {
    // The per-layer executor timing: one span per tap visit, named after
    // the layer path (resolved from the interned table, not rebuilt here).
    let _span = mersit_obs::span_dyn(|| format!("ptq.layer.{}", site.path));
    if let Some(s) = scales.get(site.id.index()).copied().flatten() {
        quantize_tensor(fmt, &t, s)
    } else {
        mersit_obs::incr("ptq.layer.unseen_sites");
        t
    }
}

/// The activation-quantizing tap, carrying per-site scales precompiled
/// from the calibration maxima (one divide per site at construction, zero
/// string handling per activation).
pub struct QuantTap<'a> {
    fmt: &'a dyn Format,
    scales: Vec<Option<f64>>,
}

impl<'a> QuantTap<'a> {
    /// Creates the tap over calibrated maxima.
    #[must_use]
    pub fn new(fmt: &'a dyn Format, cal: &Calibration) -> Self {
        let anchor = scale_anchor(fmt);
        let scales = cal
            .site_maxima()
            .iter()
            .map(|&m| site_scale(anchor, m))
            .collect();
        Self { fmt, scales }
    }
}

impl Tap for QuantTap<'_> {
    fn activation(&mut self, site: Site<'_>, t: Tensor) -> Tensor {
        quantize_site(self.fmt, &self.scales, site, t)
    }
}

/// Runs fake-quantized inference (weights already quantized in the model)
/// and returns argmax predictions.
pub fn predict_quantized(
    model: &mut Model,
    fmt: &dyn Format,
    cal: &Calibration,
    inputs: &Tensor,
    batch: usize,
) -> Vec<usize> {
    let _span = mersit_obs::span("ptq.predict_quantized");
    let n = inputs.shape()[0];
    mersit_obs::add("ptq.predict.samples", n as u64);
    let mut preds = Vec::with_capacity(n);
    let input_scale = input_scale(model, fmt, cal);
    let mut i = 0;
    while i < n {
        let hi = (i + batch).min(n);
        let mut x = inputs.slice_outer(i, hi);
        if let Some(s) = input_scale {
            x = quantize_tensor(fmt, &x, s);
        }
        let mut tap = QuantTap::new(fmt, cal);
        let mut ctx = Ctx::with_tap(&mut tap);
        let logits = model.net.forward_ref(x, &mut ctx);
        preds.extend(argmax_rows(&logits));
        i = hi;
    }
    preds
}

/// Input-tensor quantization scale: image inputs quantize through the
/// calibrated input maximum; token-id inputs never quantize.
fn input_scale(model: &Model, fmt: &dyn Format, cal: &Calibration) -> Option<f64> {
    if model.input == InputKind::Image {
        site_scale(scale_anchor(fmt), cal.input_max())
    } else {
        None
    }
}

/// Full PTQ evaluation of one format on one model: quantize weights,
/// run quantized inference, restore the FP32 weights, return predictions.
///
/// This is the legacy serial executor; [`QuantPlan`] produces bit-identical
/// predictions without ever mutating the model.
pub fn evaluate_format(
    model: &mut Model,
    fmt: &dyn Format,
    cal: &Calibration,
    inputs: &Tensor,
    batch: usize,
) -> Vec<usize> {
    let _span = mersit_obs::span_dyn(|| format!("ptq.evaluate.{}", fmt.name()));
    let snap = WeightSnapshot::capture(model);
    quantize_weights(model, fmt);
    let preds = predict_quantized(model, fmt, cal, inputs, batch);
    snap.restore(model);
    preds
}

/// A compiled, immutable evaluation plan for one (model, assignment)
/// pair: plan-owned quantized weight slots (rank-≥2, in parameter-visit
/// order) plus dense per-site activation scales — each weight and site
/// quantized through the format its path resolves to under the plan's
/// [`FormatAssignment`] (a uniform assignment reproduces the historical
/// single-format plan bit for bit). GEMM-rhs weights (Linear / im2col
/// Conv2d) are additionally pre-packed into cache-blocked panels at build
/// time — once per assignment, not once per sample. Building the plan
/// never mutates the model, and [`QuantPlan::predict`] needs only `&`
/// access — so plans for different assignments run concurrently over one
/// model, and batch shards run concurrently inside one plan.
#[derive(Debug)]
pub struct QuantPlan {
    pub(crate) assign: FormatAssignment,
    pub(crate) weights: Vec<PlanWeight>,
    /// Per-site resolved formats, in [`SiteTable`] id order.
    pub(crate) site_fmts: Vec<FormatRef>,
    pub(crate) scales: Vec<Option<f64>>,
    pub(crate) sites: SiteTable,
    /// The format the network input quantizes through
    /// ([`crate::INPUT_PATH`] resolution).
    pub(crate) input_fmt: FormatRef,
    pub(crate) input_scale: Option<f64>,
    executor: Executor,
}

/// The plan's tap: same numerics as [`QuantTap`], borrowing the plan's
/// precompiled per-site formats and scales.
struct PlanTap<'a> {
    fmts: &'a [FormatRef],
    scales: &'a [Option<f64>],
}

impl Tap for PlanTap<'_> {
    fn activation(&mut self, site: Site<'_>, t: Tensor) -> Tensor {
        if let Some(f) = self.fmts.get(site.id.index()) {
            quantize_site(f.as_ref(), self.scales, site, t)
        } else {
            mersit_obs::incr("ptq.layer.unseen_sites");
            t
        }
    }
}

impl QuantPlan {
    /// Compiles the plan with the default [`Executor::Float`] engine:
    /// per-channel-quantizes every rank-≥2 parameter into plan-owned
    /// tensors and precomputes the per-site activation scales. The model
    /// is only read. Accepts a plain [`FormatRef`] (uniform assignment)
    /// or a full [`FormatAssignment`].
    #[must_use]
    pub fn build(model: &Model, assign: impl Into<FormatAssignment>, cal: &Calibration) -> Self {
        Self::build_with(model, assign, cal, Executor::Float)
    }

    /// Compiles the plan for a chosen execution engine. Every weight and
    /// activation site quantizes through the format its path resolves to
    /// under the assignment (`FormatRef` arguments convert into uniform
    /// assignments, preserving the historical single-format behavior bit
    /// for bit). With [`Executor::BitTrue`], every GEMM-rhs rank-2 weight
    /// additionally gets a [`QuantGemm`] engine built from the **original
    /// FP32** weights under **that layer's** format (same per-channel
    /// scales as the fake-quantized tensor, so the code matrix corresponds
    /// element for element — and each layer's codes, row scales and
    /// `FixTable` follow its own format) — Linear and im2col Conv2d
    /// forwards then multiply raw codes with exact Kulisch accumulation
    /// instead of running the float GEMM.
    #[must_use]
    pub fn build_with(
        model: &Model,
        assign: impl Into<FormatAssignment>,
        cal: &Calibration,
        executor: Executor,
    ) -> Self {
        let assign = assign.into();
        let _span = mersit_obs::span("ptq.plan.build");
        let mut weights = Vec::new();
        model.net.visit_params_ref("", &mut |path, p| {
            if p.value.shape().len() >= 2 {
                mersit_obs::incr("ptq.weights.tensors");
                let fmt = assign.format_for(path);
                let q = quantize_per_channel(fmt.as_ref(), &p.value);
                weights.push(if p.gemm_rhs && q.shape().len() == 2 {
                    if executor == Executor::BitTrue {
                        mersit_obs::incr("ptq.bittrue.engines");
                        let engine = QuantGemm::build(fmt.clone(), &p.value);
                        PlanWeight::with_bit_true(q, Arc::new(engine))
                    } else {
                        PlanWeight::packed_rhs(q)
                    }
                } else {
                    PlanWeight::plain(q)
                });
            }
        });
        let sites = cal.sites().clone();
        let site_fmts: Vec<FormatRef> = sites
            .iter()
            .map(|(_, path)| assign.format_for(path).clone())
            .collect();
        let scales = cal
            .site_maxima()
            .iter()
            .zip(&site_fmts)
            .map(|(&m, f)| site_scale(scale_anchor(f.as_ref()), m))
            .collect();
        let input_fmt = assign.format_for(INPUT_PATH).clone();
        let input_scale = if model.input == InputKind::Image {
            site_scale(scale_anchor(input_fmt.as_ref()), cal.input_max())
        } else {
            None
        };
        Self {
            assign,
            weights,
            site_fmts,
            scales,
            sites,
            input_fmt,
            input_scale,
            executor,
        }
    }

    /// The assignment's default format (the only format of a uniform
    /// plan). See [`QuantPlan::assignment`] for the full per-layer map.
    #[must_use]
    pub fn format(&self) -> &dyn Format {
        self.assign.default_format().as_ref()
    }

    /// The per-layer format assignment this plan quantizes through.
    #[must_use]
    pub fn assignment(&self) -> &FormatAssignment {
        &self.assign
    }

    /// The execution engine the plan was compiled for.
    #[must_use]
    pub fn executor(&self) -> Executor {
        self.executor
    }

    /// Number of quantized weight tensors the plan owns.
    #[must_use]
    pub fn num_weight_slots(&self) -> usize {
        self.weights.len()
    }

    /// Runs one compiled batch: quantize the input (image models), then a
    /// shared-reference forward with weight overrides and the plan tap.
    fn predict_batch(&self, model: &Model, x: Tensor) -> Vec<usize> {
        let x = match self.input_scale {
            Some(s) => quantize_tensor(self.input_fmt.as_ref(), &x, s),
            None => x,
        };
        let mut tap = PlanTap {
            fmts: &self.site_fmts,
            scales: &self.scales,
        };
        let mut ctx = Ctx::compiled(&self.sites, &mut tap).with_overrides(&self.weights);
        let logits = model.net.forward_ref(x, &mut ctx);
        assert_eq!(
            ctx.overrides_consumed(),
            self.weights.len(),
            "forward consumed a different number of weight overrides than the plan owns"
        );
        argmax_rows(&logits)
    }

    /// Runs one already-coalesced batch through the plan and returns the
    /// argmax prediction per sample — the serving layer's entry point: a
    /// dynamic batcher concatenates single-sample requests and runs one
    /// forward here. Per-sample arithmetic never depends on batch-mates
    /// (float taps scale per element with calibrated per-site scales;
    /// bit-true GEMMs encode activations with per-row scales), so each
    /// prediction is bit-identical to running that sample alone.
    ///
    /// # Panics
    ///
    /// Panics if the forward consumes a different number of weight
    /// overrides than the plan owns (a model/plan mismatch).
    #[must_use]
    pub fn predict_one_batch(&self, model: &Model, x: Tensor) -> Vec<usize> {
        let _span = mersit_obs::span("ptq.plan.predict_batch");
        self.predict_batch(model, x)
    }

    /// Fake-quantized inference through the plan, sharding whole batches
    /// across `mersit_tensor::par` scoped threads. The evaluation forward
    /// has no cross-sample reductions, so predictions are bit-identical
    /// to the serial batch loop for every thread count.
    ///
    /// # Panics
    ///
    /// Panics when `batch` is 0.
    #[must_use]
    pub fn predict(&self, model: &Model, inputs: &Tensor, batch: usize) -> Vec<usize> {
        let _span = mersit_obs::span("ptq.plan.predict");
        assert!(batch > 0, "batch size must be positive");
        let n = inputs.shape()[0];
        mersit_obs::add("ptq.predict.samples", n as u64);
        let mut preds = vec![0usize; n];
        par::par_chunks_mut(&mut preds, 1, batch, |s0, chunk| {
            let mut i = 0;
            while i < chunk.len() {
                let hi = (i + batch).min(chunk.len());
                let x = inputs.slice_outer(s0 + i, s0 + hi);
                chunk[i..hi].copy_from_slice(&self.predict_batch(model, x));
                i = hi;
            }
        });
        preds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::calibrate;
    use mersit_core::parse_format;
    use mersit_nn::models::vgg_t;
    use mersit_nn::predict;
    use mersit_tensor::Rng;

    #[test]
    fn snapshot_restores_weights_exactly() {
        let mut rng = Rng::new(1);
        let mut model = vgg_t(12, 10, &mut rng);
        let snap = WeightSnapshot::capture(&model);
        let fmt = parse_format("FP(8,2)").unwrap();
        quantize_weights(&mut model, fmt.as_ref());
        // Weights changed...
        let mut changed = false;
        let mut i = 0;
        model.net.visit_params("", &mut |_, p| {
            if p.value.shape().len() >= 2 && p.value.data() != snap.values[i].data() {
                changed = true;
            }
            i += 1;
        });
        assert!(changed);
        // ...and restore brings them back.
        snap.restore(&mut model);
        let mut j = 0;
        model.net.visit_params("", &mut |_, p| {
            assert_eq!(p.value.data(), snap.values[j].data());
            j += 1;
        });
    }

    #[test]
    fn rank1_params_stay_fp32() {
        let mut rng = Rng::new(2);
        let mut model = vgg_t(12, 10, &mut rng);
        let mut biases_before = Vec::new();
        model.net.visit_params("", &mut |_, p| {
            if p.value.shape().len() == 1 {
                biases_before.push(p.value.clone());
            }
        });
        let fmt = parse_format("INT8").unwrap();
        quantize_weights(&mut model, fmt.as_ref());
        let mut k = 0;
        model.net.visit_params("", &mut |_, p| {
            if p.value.shape().len() == 1 {
                assert_eq!(p.value.data(), biases_before[k].data());
                k += 1;
            }
        });
    }

    #[test]
    fn high_precision_format_preserves_predictions() {
        // Quantizing through a wide format (MERSIT at 4-bit fraction) on a
        // random model should keep most predictions identical.
        let mut rng = Rng::new(3);
        let mut model = vgg_t(12, 10, &mut rng);
        let x = Tensor::randn(&[16, 3, 12, 12], 1.0, &mut rng);
        let cal = calibrate(&model, &x, 8);
        let fp = predict(&mut model.net, &x, 8);
        let fmt = parse_format("MERSIT(8,2)").unwrap();
        let q = evaluate_format(&mut model, fmt.as_ref(), &cal, &x, 8);
        let agree = fp.iter().zip(&q).filter(|(a, b)| a == b).count();
        assert!(agree >= 12, "only {agree}/16 predictions agree");
    }

    #[test]
    fn degenerate_format_degrades_more() {
        // FP(8,2) has a tiny dynamic range; it should disagree with FP32 at
        // least as much as MERSIT(8,2) does.
        let mut rng = Rng::new(4);
        let mut model = vgg_t(12, 10, &mut rng);
        let x = Tensor::randn(&[24, 3, 12, 12], 2.0, &mut rng);
        let cal = calibrate(&model, &x, 8);
        let fp = predict(&mut model.net, &x, 8);
        let agree = |name: &str, model: &mut Model| {
            let fmt = parse_format(name).unwrap();
            let q = evaluate_format(model, fmt.as_ref(), &cal, &x, 8);
            fp.iter().zip(&q).filter(|(a, b)| a == b).count()
        };
        let good = agree("MERSIT(8,2)", &mut model);
        let bad = agree("FP(8,2)", &mut model);
        assert!(good >= bad, "MERSIT {good} vs FP(8,2) {bad}");
    }

    #[test]
    fn plan_predictions_stable_across_batch_sizes() {
        // Per-sample independence: the plan's sharded predict must not
        // depend on how samples are grouped into batches.
        let mut rng = Rng::new(5);
        let model = vgg_t(8, 10, &mut rng);
        let x = Tensor::randn(&[11, 3, 8, 8], 1.0, &mut rng);
        let cal = calibrate(&model, &x, 4);
        let fmt = parse_format("MERSIT(8,2)").unwrap();
        let plan = QuantPlan::build(&model, fmt, &cal);
        let a = plan.predict(&model, &x, 3);
        let b = plan.predict(&model, &x, 11);
        assert_eq!(a, b);
        assert!(plan.num_weight_slots() >= 6);
    }
}
