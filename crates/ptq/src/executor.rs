//! Fake-quantized inference: weights quantized per output channel,
//! activations quantized per layer at every tap point, using the
//! calibrated maxima as scaling parameters.
//!
//! # Invariants
//!
//! * **The tap sites are the contract.** Quantized inference must visit
//!   exactly the activation sites calibration recorded — a site seen only
//!   at calibration means a scale silently goes unused; a site seen only
//!   at inference runs unquantized. Pinned by
//!   `quantized_inference_visits_calibrated_sites` in `calibrate.rs`.
//! * **Weights round-trip exactly.** [`evaluate_format`] snapshots FP32
//!   weights before quantizing and restores them bit-for-bit after, so
//!   formats can be evaluated in sequence on one trained model.
//! * **Rank rule.** Only rank-≥2 parameters are quantized; rank-1
//!   parameters (biases, norm scale/shift) stay FP32, matching common
//!   PTQ practice where they fold into the high-precision accumulator.
//! * **Unseen sites pass through.** A tap whose calibrated maximum is 0
//!   (never fired, or all-zero data) returns the tensor untouched rather
//!   than dividing by a degenerate scale.
//!
//! # Observability
//!
//! With `MERSIT_OBS` on, every tap point records a `ptq.layer.<path>`
//! span (the per-layer executor timings), and the whole-pipeline phases
//! record `ptq.quantize_weights` / `ptq.predict_quantized` /
//! `ptq.evaluate.<format>` spans. Instrumentation observes only — the
//! quantized values are bit-identical with the toggle on or off.

use crate::calibrate::{Calibration, INPUT_PATH};
use crate::quantizer::{quantize_per_channel, quantize_tensor, scale_for};
use mersit_core::Format;
use mersit_nn::{Ctx, InputKind, Layer, Model, Tap};
use mersit_tensor::Tensor;

/// Snapshot of model weights for restore-after-quantization.
#[derive(Debug, Default)]
pub struct WeightSnapshot {
    values: Vec<Tensor>,
}

impl WeightSnapshot {
    /// Captures all parameter values of a model.
    #[must_use]
    pub fn capture(model: &mut Model) -> Self {
        let mut values = Vec::new();
        model
            .net
            .visit_params("", &mut |_, p| values.push(p.value.clone()));
        Self { values }
    }

    /// Restores previously captured values.
    ///
    /// # Panics
    ///
    /// Panics if the model structure changed since capture.
    pub fn restore(&self, model: &mut Model) {
        let mut i = 0;
        model.net.visit_params("", &mut |_, p| {
            p.value = self.values[i].clone();
            i += 1;
        });
        assert_eq!(i, self.values.len(), "parameter count changed");
    }
}

/// Quantizes all rank-≥2 parameters (conv kernels, linear weights,
/// embedding tables) per output channel through `fmt`; rank-1 parameters
/// (biases, normalization scale/shift) stay in FP32, matching common PTQ
/// practice where they fold into the high-precision accumulator path.
pub fn quantize_weights(model: &mut Model, fmt: &dyn Format) {
    let _span = mersit_obs::span("ptq.quantize_weights");
    model.net.visit_params("", &mut |_, p| {
        if p.value.shape().len() >= 2 {
            mersit_obs::incr("ptq.weights.tensors");
            p.value = quantize_per_channel(fmt, &p.value);
        }
    });
}

/// The activation-quantizing tap.
pub struct QuantTap<'a> {
    fmt: &'a dyn Format,
    cal: &'a Calibration,
    anchor: f64,
}

impl<'a> QuantTap<'a> {
    /// Creates the tap over calibrated maxima.
    #[must_use]
    pub fn new(fmt: &'a dyn Format, cal: &'a Calibration) -> Self {
        let anchor = crate::quantizer::scale_anchor(fmt);
        Self { fmt, cal, anchor }
    }
}

impl Tap for QuantTap<'_> {
    fn activation(&mut self, path: &str, t: Tensor) -> Tensor {
        // The per-layer executor timing: one span per tap visit, named
        // after the layer path.
        let _span = mersit_obs::span_dyn(|| format!("ptq.layer.{path}"));
        let m = self.cal.max_for(path);
        if m <= 0.0 {
            mersit_obs::incr("ptq.layer.unseen_sites");
            return t; // site unseen at calibration: leave untouched
        }
        let s = f64::from(m) / self.anchor;
        quantize_tensor(self.fmt, &t, s)
    }
}

/// Runs fake-quantized inference (weights already quantized in the model)
/// and returns argmax predictions.
pub fn predict_quantized(
    model: &mut Model,
    fmt: &dyn Format,
    cal: &Calibration,
    inputs: &Tensor,
    batch: usize,
) -> Vec<usize> {
    let _span = mersit_obs::span("ptq.predict_quantized");
    let n = inputs.shape()[0];
    mersit_obs::add("ptq.predict.samples", n as u64);
    let mut preds = Vec::with_capacity(n);
    let quant_input = model.input == InputKind::Image;
    let mut i = 0;
    while i < n {
        let hi = (i + batch).min(n);
        let mut x = inputs.slice_outer(i, hi);
        if quant_input {
            let m = cal.max_for(INPUT_PATH);
            if m > 0.0 {
                x = quantize_tensor(fmt, &x, scale_for(fmt, m));
            }
        }
        let mut tap = QuantTap::new(fmt, cal);
        let mut ctx = Ctx::with_tap(&mut tap);
        let logits = model.net.forward(x, &mut ctx);
        let k = logits.shape()[1];
        for r in 0..(hi - i) {
            let row = &logits.data()[r * k..(r + 1) * k];
            let arg = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                .map_or(0, |(j, _)| j);
            preds.push(arg);
        }
        i = hi;
    }
    preds
}

/// Full PTQ evaluation of one format on one model: quantize weights,
/// run quantized inference, restore the FP32 weights, return predictions.
pub fn evaluate_format(
    model: &mut Model,
    fmt: &dyn Format,
    cal: &Calibration,
    inputs: &Tensor,
    batch: usize,
) -> Vec<usize> {
    let _span = mersit_obs::span_dyn(|| format!("ptq.evaluate.{}", fmt.name()));
    let snap = WeightSnapshot::capture(model);
    quantize_weights(model, fmt);
    let preds = predict_quantized(model, fmt, cal, inputs, batch);
    snap.restore(model);
    preds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::calibrate;
    use mersit_core::parse_format;
    use mersit_nn::models::vgg_t;
    use mersit_nn::predict;
    use mersit_tensor::Rng;

    #[test]
    fn snapshot_restores_weights_exactly() {
        let mut rng = Rng::new(1);
        let mut model = vgg_t(12, 10, &mut rng);
        let snap = WeightSnapshot::capture(&mut model);
        let fmt = parse_format("FP(8,2)").unwrap();
        quantize_weights(&mut model, fmt.as_ref());
        // Weights changed...
        let mut changed = false;
        let mut i = 0;
        model.net.visit_params("", &mut |_, p| {
            if p.value.shape().len() >= 2 && p.value.data() != snap.values[i].data() {
                changed = true;
            }
            i += 1;
        });
        assert!(changed);
        // ...and restore brings them back.
        snap.restore(&mut model);
        let mut j = 0;
        model.net.visit_params("", &mut |_, p| {
            assert_eq!(p.value.data(), snap.values[j].data());
            j += 1;
        });
    }

    #[test]
    fn rank1_params_stay_fp32() {
        let mut rng = Rng::new(2);
        let mut model = vgg_t(12, 10, &mut rng);
        let mut biases_before = Vec::new();
        model.net.visit_params("", &mut |_, p| {
            if p.value.shape().len() == 1 {
                biases_before.push(p.value.clone());
            }
        });
        let fmt = parse_format("INT8").unwrap();
        quantize_weights(&mut model, fmt.as_ref());
        let mut k = 0;
        model.net.visit_params("", &mut |_, p| {
            if p.value.shape().len() == 1 {
                assert_eq!(p.value.data(), biases_before[k].data());
                k += 1;
            }
        });
    }

    #[test]
    fn high_precision_format_preserves_predictions() {
        // Quantizing through a wide format (MERSIT at 4-bit fraction) on a
        // random model should keep most predictions identical.
        let mut rng = Rng::new(3);
        let mut model = vgg_t(12, 10, &mut rng);
        let x = Tensor::randn(&[16, 3, 12, 12], 1.0, &mut rng);
        let cal = calibrate(&mut model, &x, 8);
        let fp = predict(&mut model.net, &x, 8);
        let fmt = parse_format("MERSIT(8,2)").unwrap();
        let q = evaluate_format(&mut model, fmt.as_ref(), &cal, &x, 8);
        let agree = fp.iter().zip(&q).filter(|(a, b)| a == b).count();
        assert!(agree >= 12, "only {agree}/16 predictions agree");
    }

    #[test]
    fn degenerate_format_degrades_more() {
        // FP(8,2) has a tiny dynamic range; it should disagree with FP32 at
        // least as much as MERSIT(8,2) does.
        let mut rng = Rng::new(4);
        let mut model = vgg_t(12, 10, &mut rng);
        let x = Tensor::randn(&[24, 3, 12, 12], 2.0, &mut rng);
        let cal = calibrate(&mut model, &x, 8);
        let fp = predict(&mut model.net, &x, 8);
        let agree = |name: &str, model: &mut Model| {
            let fmt = parse_format(name).unwrap();
            let q = evaluate_format(model, fmt.as_ref(), &cal, &x, 8);
            fp.iter().zip(&q).filter(|(a, b)| a == b).count()
        };
        let good = agree("MERSIT(8,2)", &mut model);
        let bad = agree("FP(8,2)", &mut model);
        assert!(good >= bad, "MERSIT {good} vs FP(8,2) {bad}");
    }
}
