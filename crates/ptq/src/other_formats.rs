//! The "Other Formats" of the paper's §2.1: AdaptivFloat [Tambe+, DAC'20]
//! and 8-bit block floating point [Yeh+, ICML'22].
//!
//! The paper argues these "align with FP8" once channel-/layer-level
//! scaling is applied, "eliminating the need for a separate comparison".
//! This module implements both so that claim can be *measured* (see the
//! `other_formats` bench binary) instead of assumed.
//!
//! Like the main pipeline's [`crate::FormatAssignment`], the §2.1
//! quantizers are per-layer assignable: [`AltAssignment`] maps layer
//! paths to an [`AltQuant`] choice (or FP32 pass-through) with the same
//! longest-dotted-prefix resolution, and [`AltTap`] /
//! [`quantize_weights_alt`] apply it to activations and weights.

use mersit_nn::{Layer, Model, Site, Tap};
use mersit_tensor::Tensor;

/// AdaptivFloat quantization: sign + `exp_bits` exponent + `frac_bits`
/// fraction, **no subnormals**, with a per-tensor integer exponent bias
/// chosen so the largest magnitude is representable — the format's
/// "adaptive" part.
///
/// # Panics
///
/// Panics unless `1 <= exp_bits <= 6` and `1 + exp_bits + frac_bits == 8`
/// (8-bit words, as compared in the paper).
#[must_use]
pub fn quantize_adaptivfloat(t: &Tensor, exp_bits: u32, frac_bits: u32) -> Tensor {
    assert!((1..=6).contains(&exp_bits), "exp_bits out of range");
    assert_eq!(1 + exp_bits + frac_bits, 8, "must form an 8-bit word");
    let max = f64::from(t.max_abs());
    if max == 0.0 {
        return t.clone();
    }
    // Choose the bias so the top exponent matches the data maximum.
    let e_top = max.log2().floor() as i32;
    let e_min = e_top - (1 << exp_bits) + 1;
    let fscale = f64::from(1u32 << frac_bits);
    t.map(|x| {
        let xf = f64::from(x);
        if xf == 0.0 {
            return 0.0;
        }
        let sign = xf.signum();
        let mag = xf.abs();
        let mut e = mag.log2().floor() as i32;
        if e < e_min {
            // No subnormals: underflow region rounds to zero or the
            // smallest normal, whichever is nearer.
            let min_normal = 2f64.powi(e_min);
            return if mag < min_normal / 2.0 {
                0.0
            } else {
                (sign * min_normal) as f32
            };
        }
        e = e.min(e_top);
        let step = 2f64.powi(e) / fscale;
        let q = (mag / step).round_ties_even() * step;
        // Rounding up may carry into the next binade; cap at the max.
        let max_val = (2.0 - 1.0 / fscale) * 2f64.powi(e_top);
        (sign * q.min(max_val)) as f32
    })
}

/// Block-floating-point quantization: values are split into groups of
/// `group` consecutive elements sharing one exponent; each element keeps a
/// signed `mant_bits`-bit mantissa.
///
/// # Panics
///
/// Panics if `group == 0` or `mant_bits` is not in `2..=15`.
#[must_use]
pub fn quantize_bfp(t: &Tensor, mant_bits: u32, group: usize) -> Tensor {
    assert!(group > 0, "empty group");
    assert!((2..=15).contains(&mant_bits), "mantissa width out of range");
    let mut out = t.clone();
    let half = f64::from((1i32 << (mant_bits - 1)) - 1); // symmetric mantissa range
    for chunk in out.data_mut().chunks_mut(group) {
        let max = chunk.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        if max == 0.0 {
            continue;
        }
        // Shared exponent: scale so the max uses the full mantissa.
        let e = f64::from(max).log2().ceil() as i32;
        let step = 2f64.powi(e) / (half + 1.0);
        for v in chunk.iter_mut() {
            let q = (f64::from(*v) / step).round_ties_even().clamp(-half, half);
            *v = (q * step) as f32;
        }
    }
    out
}

/// One §2.1 alternative quantizer with its parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AltQuant {
    /// AdaptivFloat with `exp_bits` exponent and `frac_bits` fraction
    /// bits (see [`quantize_adaptivfloat`]).
    AdaptivFloat {
        /// Exponent field width.
        exp_bits: u32,
        /// Fraction field width.
        frac_bits: u32,
    },
    /// Block floating point with `mant_bits`-bit mantissas over groups of
    /// `group` elements (see [`quantize_bfp`]).
    Bfp {
        /// Signed mantissa width.
        mant_bits: u32,
        /// Elements sharing one exponent.
        group: usize,
    },
}

impl AltQuant {
    /// Applies the quantizer tensor-wide (per-layer scaling).
    #[must_use]
    pub fn apply(&self, t: &Tensor) -> Tensor {
        match *self {
            AltQuant::AdaptivFloat {
                exp_bits,
                frac_bits,
            } => quantize_adaptivfloat(t, exp_bits, frac_bits),
            AltQuant::Bfp { mant_bits, group } => quantize_bfp(t, mant_bits, group),
        }
    }

    /// Applies the quantizer per output channel (outermost dimension) —
    /// the weight path, matching the main pipeline's per-channel scales.
    /// BFP already groups internally, so it applies tensor-wide.
    ///
    /// # Panics
    ///
    /// Panics on rank-0 tensors.
    #[must_use]
    pub fn apply_per_channel(&self, t: &Tensor) -> Tensor {
        match *self {
            AltQuant::AdaptivFloat { .. } => {
                let oc = t.shape()[0];
                let inner: usize = t.shape()[1..].iter().product();
                let mut out = t.clone();
                for c in 0..oc {
                    let slice =
                        Tensor::from_vec(t.data()[c * inner..(c + 1) * inner].to_vec(), &[inner]);
                    let q = self.apply(&slice);
                    out.data_mut()[c * inner..(c + 1) * inner].copy_from_slice(q.data());
                }
                out
            }
            AltQuant::Bfp { .. } => self.apply(t),
        }
    }
}

/// A per-layer map over the §2.1 quantizers, mirroring
/// [`crate::FormatAssignment`]: every layer uses `default` unless an
/// override's path is a dotted prefix (`None` = leave that layer FP32).
#[derive(Debug, Clone)]
pub struct AltAssignment {
    default: AltQuant,
    overrides: Vec<(String, Option<AltQuant>)>,
}

impl AltAssignment {
    /// Every layer quantizes through `default`.
    #[must_use]
    pub fn uniform(default: AltQuant) -> Self {
        Self {
            default,
            overrides: Vec::new(),
        }
    }

    /// Overrides a layer (or parameter) path to `alt` — `None` leaves it
    /// in FP32. Replaces any previous override for the same path.
    #[must_use]
    pub fn with_override(mut self, path: impl Into<String>, alt: Option<AltQuant>) -> Self {
        let path = path.into();
        self.overrides.retain(|(p, _)| *p != path);
        self.overrides.push((path, alt));
        self.overrides.sort_by(|a, b| a.0.cmp(&b.0));
        self
    }

    /// Resolves the quantizer for a path: longest dotted-prefix override
    /// wins, otherwise the default. `None` = pass through in FP32.
    #[must_use]
    pub fn alt_for(&self, path: &str) -> Option<AltQuant> {
        let mut best: Option<&(String, Option<AltQuant>)> = None;
        for ov in &self.overrides {
            let (p, _) = ov;
            let is_prefix = path == p
                || (path.len() > p.len()
                    && path.starts_with(p.as_str())
                    && path.as_bytes()[p.len()] == b'.');
            if is_prefix && best.is_none_or(|(bp, _)| p.len() > bp.len()) {
                best = Some(ov);
            }
        }
        best.map_or(Some(self.default), |(_, a)| *a)
    }
}

/// An activation tap applying an [`AltAssignment`] at every site.
#[derive(Debug, Clone)]
pub struct AltTap {
    assign: AltAssignment,
}

impl AltTap {
    /// Tap over the given assignment.
    #[must_use]
    pub fn new(assign: AltAssignment) -> Self {
        Self { assign }
    }
}

impl Tap for AltTap {
    fn activation(&mut self, site: Site<'_>, t: Tensor) -> Tensor {
        match self.assign.alt_for(site.path) {
            Some(alt) => alt.apply(&t),
            None => t,
        }
    }
}

/// Quantizes every rank-≥2 parameter in place through the assignment's
/// per-layer quantizer choice (per output channel, like the main
/// pipeline); rank-1 parameters and `None`-assigned layers stay FP32.
/// Snapshot/restore with [`crate::WeightSnapshot`] around it.
pub fn quantize_weights_alt(model: &mut Model, assign: &AltAssignment) {
    model.net.visit_params("", &mut |path, p| {
        if p.value.shape().len() >= 2 {
            if let Some(alt) = assign.alt_for(path) {
                p.value = alt.apply_per_channel(&p.value);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantizer::relative_rmse;
    use mersit_tensor::Rng;

    #[test]
    fn alt_assignment_resolves_like_format_assignment() {
        let af = AltQuant::AdaptivFloat {
            exp_bits: 4,
            frac_bits: 3,
        };
        let bfp = AltQuant::Bfp {
            mant_bits: 7,
            group: 16,
        };
        let a = AltAssignment::uniform(af)
            .with_override("0_conv", Some(bfp))
            .with_override("2_linear", None);
        assert_eq!(a.alt_for("0_conv.w"), Some(bfp));
        assert_eq!(a.alt_for("0_convx"), Some(af));
        assert_eq!(a.alt_for("2_linear"), None);
        assert_eq!(a.alt_for("1_bn"), Some(af));
    }

    #[test]
    fn alt_quant_apply_matches_free_functions() {
        let mut rng = Rng::new(9);
        let t = Tensor::randn(&[64], 1.0, &mut rng);
        let af = AltQuant::AdaptivFloat {
            exp_bits: 4,
            frac_bits: 3,
        };
        assert_eq!(af.apply(&t).data(), quantize_adaptivfloat(&t, 4, 3).data());
        let bf = AltQuant::Bfp {
            mant_bits: 7,
            group: 16,
        };
        assert_eq!(bf.apply(&t).data(), quantize_bfp(&t, 7, 16).data());
    }

    #[test]
    fn adaptivfloat_representable_values_fixed() {
        // Exact powers of two and simple fractions survive.
        let t = Tensor::from_vec(vec![1.0, 0.5, -2.0, 1.5, 0.0], &[5]);
        let q = quantize_adaptivfloat(&t, 4, 3);
        assert_eq!(q.data(), t.data());
    }

    #[test]
    fn adaptivfloat_adapts_bias_to_scale() {
        // The same relative precision at wildly different scales — the
        // point of the adaptive bias.
        let mut rng = Rng::new(1);
        let base = Tensor::randn(&[2000], 1.0, &mut rng);
        let scaled = base.scale(1e-6);
        let e1 = relative_rmse(&quantize_adaptivfloat(&base, 4, 3), &base);
        let e2 = relative_rmse(&quantize_adaptivfloat(&scaled, 4, 3), &scaled);
        assert!((e1 - e2).abs() < 0.01, "{e1} vs {e2}");
        assert!(e1 < 0.1, "precision sane: {e1}");
    }

    #[test]
    fn adaptivfloat_flushes_deep_underflow() {
        // Values far below the (biased) normal range flush to zero.
        let t = Tensor::from_vec(vec![1.0, 1e-30], &[2]);
        let q = quantize_adaptivfloat(&t, 3, 4);
        assert_eq!(q.data()[0], 1.0);
        assert_eq!(q.data()[1], 0.0);
    }

    #[test]
    fn bfp_exact_within_group_scale() {
        let t = Tensor::from_vec(vec![0.5, 0.25, -0.75, 1.0], &[4]);
        let q = quantize_bfp(&t, 8, 4);
        for (a, b) in q.data().iter().zip(t.data()) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn bfp_group_size_trades_accuracy() {
        // Small groups adapt better to locally varying magnitudes.
        let mut rng = Rng::new(2);
        let mut data = Vec::new();
        for i in 0..64 {
            let scale = if i % 2 == 0 { 1.0 } else { 1e-3 };
            for _ in 0..16 {
                data.push((rng.normal() * scale) as f32);
            }
        }
        let t = Tensor::from_vec(data, &[64 * 16]);
        let small = relative_rmse(&quantize_bfp(&t, 8, 16), &t);
        let large = relative_rmse(&quantize_bfp(&t, 8, 512), &t);
        assert!(small < large, "group 16: {small}, group 512: {large}");
    }

    #[test]
    fn bfp_zero_group_is_noop() {
        let t = Tensor::zeros(&[32]);
        let q = quantize_bfp(&t, 8, 8);
        assert_eq!(q.data(), t.data());
    }
}
