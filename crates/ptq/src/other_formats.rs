//! The "Other Formats" of the paper's §2.1: AdaptivFloat [Tambe+, DAC'20]
//! and 8-bit block floating point [Yeh+, ICML'22].
//!
//! The paper argues these "align with FP8" once channel-/layer-level
//! scaling is applied, "eliminating the need for a separate comparison".
//! This module implements both so that claim can be *measured* (see the
//! `other_formats` bench binary) instead of assumed.

use mersit_tensor::Tensor;

/// AdaptivFloat quantization: sign + `exp_bits` exponent + `frac_bits`
/// fraction, **no subnormals**, with a per-tensor integer exponent bias
/// chosen so the largest magnitude is representable — the format's
/// "adaptive" part.
///
/// # Panics
///
/// Panics unless `1 <= exp_bits <= 6` and `1 + exp_bits + frac_bits == 8`
/// (8-bit words, as compared in the paper).
#[must_use]
pub fn quantize_adaptivfloat(t: &Tensor, exp_bits: u32, frac_bits: u32) -> Tensor {
    assert!((1..=6).contains(&exp_bits), "exp_bits out of range");
    assert_eq!(1 + exp_bits + frac_bits, 8, "must form an 8-bit word");
    let max = f64::from(t.max_abs());
    if max == 0.0 {
        return t.clone();
    }
    // Choose the bias so the top exponent matches the data maximum.
    let e_top = max.log2().floor() as i32;
    let e_min = e_top - (1 << exp_bits) + 1;
    let fscale = f64::from(1u32 << frac_bits);
    t.map(|x| {
        let xf = f64::from(x);
        if xf == 0.0 {
            return 0.0;
        }
        let sign = xf.signum();
        let mag = xf.abs();
        let mut e = mag.log2().floor() as i32;
        if e < e_min {
            // No subnormals: underflow region rounds to zero or the
            // smallest normal, whichever is nearer.
            let min_normal = 2f64.powi(e_min);
            return if mag < min_normal / 2.0 {
                0.0
            } else {
                (sign * min_normal) as f32
            };
        }
        e = e.min(e_top);
        let step = 2f64.powi(e) / fscale;
        let q = (mag / step).round_ties_even() * step;
        // Rounding up may carry into the next binade; cap at the max.
        let max_val = (2.0 - 1.0 / fscale) * 2f64.powi(e_top);
        (sign * q.min(max_val)) as f32
    })
}

/// Block-floating-point quantization: values are split into groups of
/// `group` consecutive elements sharing one exponent; each element keeps a
/// signed `mant_bits`-bit mantissa.
///
/// # Panics
///
/// Panics if `group == 0` or `mant_bits` is not in `2..=15`.
#[must_use]
pub fn quantize_bfp(t: &Tensor, mant_bits: u32, group: usize) -> Tensor {
    assert!(group > 0, "empty group");
    assert!((2..=15).contains(&mant_bits), "mantissa width out of range");
    let mut out = t.clone();
    let half = f64::from((1i32 << (mant_bits - 1)) - 1); // symmetric mantissa range
    for chunk in out.data_mut().chunks_mut(group) {
        let max = chunk.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        if max == 0.0 {
            continue;
        }
        // Shared exponent: scale so the max uses the full mantissa.
        let e = f64::from(max).log2().ceil() as i32;
        let step = 2f64.powi(e) / (half + 1.0);
        for v in chunk.iter_mut() {
            let q = (f64::from(*v) / step).round_ties_even().clamp(-half, half);
            *v = (q * step) as f32;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantizer::relative_rmse;
    use mersit_tensor::Rng;

    #[test]
    fn adaptivfloat_representable_values_fixed() {
        // Exact powers of two and simple fractions survive.
        let t = Tensor::from_vec(vec![1.0, 0.5, -2.0, 1.5, 0.0], &[5]);
        let q = quantize_adaptivfloat(&t, 4, 3);
        assert_eq!(q.data(), t.data());
    }

    #[test]
    fn adaptivfloat_adapts_bias_to_scale() {
        // The same relative precision at wildly different scales — the
        // point of the adaptive bias.
        let mut rng = Rng::new(1);
        let base = Tensor::randn(&[2000], 1.0, &mut rng);
        let scaled = base.scale(1e-6);
        let e1 = relative_rmse(&quantize_adaptivfloat(&base, 4, 3), &base);
        let e2 = relative_rmse(&quantize_adaptivfloat(&scaled, 4, 3), &scaled);
        assert!((e1 - e2).abs() < 0.01, "{e1} vs {e2}");
        assert!(e1 < 0.1, "precision sane: {e1}");
    }

    #[test]
    fn adaptivfloat_flushes_deep_underflow() {
        // Values far below the (biased) normal range flush to zero.
        let t = Tensor::from_vec(vec![1.0, 1e-30], &[2]);
        let q = quantize_adaptivfloat(&t, 3, 4);
        assert_eq!(q.data()[0], 1.0);
        assert_eq!(q.data()[1], 0.0);
    }

    #[test]
    fn bfp_exact_within_group_scale() {
        let t = Tensor::from_vec(vec![0.5, 0.25, -0.75, 1.0], &[4]);
        let q = quantize_bfp(&t, 8, 4);
        for (a, b) in q.data().iter().zip(t.data()) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn bfp_group_size_trades_accuracy() {
        // Small groups adapt better to locally varying magnitudes.
        let mut rng = Rng::new(2);
        let mut data = Vec::new();
        for i in 0..64 {
            let scale = if i % 2 == 0 { 1.0 } else { 1e-3 };
            for _ in 0..16 {
                data.push((rng.normal() * scale) as f32);
            }
        }
        let t = Tensor::from_vec(data, &[64 * 16]);
        let small = relative_rmse(&quantize_bfp(&t, 8, 16), &t);
        let large = relative_rmse(&quantize_bfp(&t, 8, 512), &t);
        assert!(small < large, "group 16: {small}, group 512: {large}");
    }

    #[test]
    fn bfp_zero_group_is_noop() {
        let t = Tensor::zeros(&[32]);
        let q = quantize_bfp(&t, 8, 8);
        assert_eq!(q.data(), t.data());
    }
}
