//! Heterogeneous per-layer format assignment and the accuracy↔cost
//! search over it.
//!
//! The paper evaluates every format at whole-model granularity; the
//! interesting hardware trade-off lives one level down — give the
//! precision-sensitive layers a strong format (MERSIT) and demote the
//! insensitive bulk to a cheaper MAC. [`FormatAssignment`] is the
//! first-class "layer → format" map every plan consumer builds against:
//! [`crate::QuantPlan`] quantizes each weight and activation site through
//! the format its path resolves to, `coverify` diffs the executors per
//! site under the same map, and the serve plan cache keys on the
//! assignment's canonical [`FormatAssignment::name`].
//!
//! A uniform assignment ([`FormatAssignment::uniform`]) is **bit-for-bit**
//! identical to the pre-assignment single-format plans on both executors:
//! every site resolves to the same format, so every scale anchor, weight
//! code and `FixTable` is computed from exactly the same inputs (pinned by
//! `tests/assignment_props.rs`).
//!
//! On top of the map, this module closes the accuracy↔hardware-cost loop:
//! [`layer_macs`] counts per-layer MAC work (the weighting for the
//! `mersit-hw` area/power roll-up), [`layer_sensitivity`] ranks layers by
//! how much quantization hurts them (weight + activation RMSE under a
//! probe format), and [`greedy_search`] walks layers from least to most
//! sensitive, demoting each to the cheapest candidate format that keeps
//! accuracy within tolerance — emitting one accuracy/area/power point per
//! accepted swap (the Pareto front of `BENCH_pareto.json`).

use crate::accuracy::Metric;
use crate::bittrue::Executor;
use crate::calibrate::Calibration;
use crate::executor::QuantPlan;
use crate::quantizer::{
    quantize_per_channel, quantize_tensor, relative_rmse, scale_anchor, site_scale,
};
use mersit_core::{parse_format, FormatRef, InvalidFormatError};
use mersit_nn::{Ctx, Layer, Model, Site, Tap};
use mersit_tensor::Tensor;
use std::collections::HashMap;

/// A per-layer format map: every layer (and weight) path resolves to the
/// `default` format unless an override's path is a dotted prefix of it.
///
/// Override paths address the model's hierarchical layer paths
/// (`"0_conv"`, `"3_residual.main.1_bn"`, …). A layer override covers both
/// the layer's activation site and its parameters (`"0_conv"` matches
/// `"0_conv"` and `"0_conv.w"`); an override naming a parameter path
/// exactly (`"0_conv.w"`) covers only that weight. The network input
/// quantizes through whatever [`crate::INPUT_PATH`] resolves to — the
/// default unless explicitly overridden.
///
/// The canonical [`FormatAssignment::name`] of a uniform assignment is the
/// plain format name, so plan-cache keys and report labels are unchanged
/// for single-format use; mixed assignments name as a parseable spec:
///
/// ```
/// use mersit_ptq::FormatAssignment;
///
/// let a = FormatAssignment::parse("MERSIT(8,2);0_conv=FP(8,4)")?;
/// assert_eq!(a.format_for("0_conv.w").name(), "FP(8,4)");
/// assert_eq!(a.format_for("1_bn").name(), "MERSIT(8,2)");
/// assert_eq!(a.name(), "MERSIT(8,2);0_conv=FP(8,4)");
/// assert_eq!(FormatAssignment::parse(&a.name())?.name(), a.name());
/// # Ok::<(), mersit_core::InvalidFormatError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FormatAssignment {
    default: FormatRef,
    /// Sorted by path (canonical order for naming and deterministic
    /// longest-prefix resolution).
    overrides: Vec<(String, FormatRef)>,
}

impl FormatAssignment {
    /// The uniform assignment: every layer uses `fmt` — bit-identical to
    /// the historical single-format plan.
    #[must_use]
    pub fn uniform(default: FormatRef) -> Self {
        Self {
            default,
            overrides: Vec::new(),
        }
    }

    /// Returns the assignment with `path` (a layer or parameter path)
    /// overridden to `fmt`, replacing any previous override for the same
    /// path.
    #[must_use]
    pub fn with_override(mut self, path: impl Into<String>, fmt: FormatRef) -> Self {
        let path = path.into();
        self.overrides.retain(|(p, _)| *p != path);
        self.overrides.push((path, fmt));
        self.overrides.sort_by(|a, b| a.0.cmp(&b.0));
        self
    }

    /// The format layers fall back to when no override matches.
    #[must_use]
    pub fn default_format(&self) -> &FormatRef {
        &self.default
    }

    /// The overrides, sorted by path.
    #[must_use]
    pub fn overrides(&self) -> &[(String, FormatRef)] {
        &self.overrides
    }

    /// True when no override exists — the single-format case.
    #[must_use]
    pub fn is_uniform(&self) -> bool {
        self.overrides.is_empty()
    }

    /// Resolves the format for a layer, parameter, or [`crate::INPUT_PATH`]
    /// path: the override with the longest dotted-prefix match wins,
    /// otherwise the default.
    #[must_use]
    pub fn format_for(&self, path: &str) -> &FormatRef {
        let mut best: Option<&(String, FormatRef)> = None;
        for ov in &self.overrides {
            let (p, _) = ov;
            let is_prefix = path == p
                || (path.len() > p.len()
                    && path.starts_with(p.as_str())
                    && path.as_bytes()[p.len()] == b'.');
            if is_prefix && best.is_none_or(|(bp, _)| p.len() > bp.len()) {
                best = Some(ov);
            }
        }
        best.map_or(&self.default, |(_, f)| f)
    }

    /// Canonical name: the plain format name when uniform, otherwise the
    /// `default;path=FMT;…` spec (overrides in sorted path order). Round-
    /// trips through [`FormatAssignment::parse`] and keys the serve plan
    /// cache.
    #[must_use]
    pub fn name(&self) -> String {
        let mut out = self.default.name();
        for (p, f) in &self.overrides {
            out.push(';');
            out.push_str(p);
            out.push('=');
            out.push_str(&f.name());
        }
        out
    }

    /// Every distinct format the assignment can resolve to: the default
    /// first, then overrides in path order (deduplicated by name).
    #[must_use]
    pub fn formats(&self) -> Vec<FormatRef> {
        let mut out = vec![self.default.clone()];
        for (_, f) in &self.overrides {
            if !out.iter().any(|g| g.name() == f.name()) {
                out.push(f.clone());
            }
        }
        out
    }

    /// Parses an assignment spec: a plain format name (`"MERSIT(8,2)"`,
    /// uniform) or `"DEFAULT;path=FMT;path=FMT"`. A later override for the
    /// same path replaces an earlier one.
    ///
    /// # Errors
    ///
    /// Returns an error when any format name fails `parse_format` or an
    /// override clause is not `path=FMT`.
    pub fn parse(spec: &str) -> Result<Self, InvalidFormatError> {
        let mut parts = spec.split(';');
        let default = parse_format(parts.next().unwrap_or("").trim())?;
        let mut assign = Self::uniform(default);
        for clause in parts {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let Some((path, fmt)) = clause.split_once('=') else {
                return Err(InvalidFormatError::new(format!(
                    "assignment override {clause:?} is not path=FORMAT"
                )));
            };
            let path = path.trim();
            if path.is_empty() {
                return Err(InvalidFormatError::new(format!(
                    "assignment override {clause:?} has an empty path"
                )));
            }
            assign = assign.with_override(path, parse_format(fmt.trim())?);
        }
        Ok(assign)
    }

    /// Reads the `MERSIT_ASSIGN` environment variable as an assignment
    /// spec. `None` when unset or empty.
    ///
    /// # Errors
    ///
    /// Returns an error when the variable is set but does not parse.
    pub fn from_env() -> Result<Option<Self>, InvalidFormatError> {
        match std::env::var("MERSIT_ASSIGN") {
            Ok(s) if !s.trim().is_empty() => Self::parse(&s).map(Some),
            _ => Ok(None),
        }
    }
}

impl From<FormatRef> for FormatAssignment {
    fn from(fmt: FormatRef) -> Self {
        Self::uniform(fmt)
    }
}

impl From<&FormatRef> for FormatAssignment {
    fn from(fmt: &FormatRef) -> Self {
        Self::uniform(fmt.clone())
    }
}

/// Per-layer MAC work: the weighting of the per-assignment hardware
/// cost roll-up (`mersit_hw::assignment_cost`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerMacs {
    /// Hierarchical layer path (the site path, without the `.w` suffix).
    pub path: String,
    /// Multiply-accumulates per sample through this layer's GEMM. Zero
    /// for quantized non-GEMM parameters (embedding lookups do no MACs).
    pub macs: u64,
}

struct ShapeTap {
    elems: HashMap<String, u64>,
}

impl Tap for ShapeTap {
    fn activation(&mut self, site: Site<'_>, t: Tensor) -> Tensor {
        self.elems
            .entry(site.path.to_owned())
            .or_insert(t.data().len() as u64);
        t
    }
}

/// Counts per-layer MACs for one sample with a shape-recording forward:
/// a GEMM weight `[out, in]` whose layer emits `out × spatial` activation
/// elements does `out × in × spatial` MACs (spatial = conv output
/// positions, or sequence length for per-token linears; 1 for a plain
/// linear). Quantized non-GEMM parameters count zero.
///
/// `sample` must carry a leading batch dimension of 1.
///
/// # Panics
///
/// Panics when `sample`'s leading dimension is not 1.
#[must_use]
pub fn layer_macs(model: &Model, sample: &Tensor) -> Vec<LayerMacs> {
    assert_eq!(sample.shape()[0], 1, "layer_macs needs a single sample");
    let mut tap = ShapeTap {
        elems: HashMap::new(),
    };
    let mut ctx = Ctx::with_tap(&mut tap);
    let _ = model.net.forward_ref(sample.clone(), &mut ctx);
    let elems = tap.elems;
    let mut out = Vec::new();
    model.net.visit_params_ref("", &mut |path, p| {
        if p.value.shape().len() < 2 {
            return;
        }
        let layer = layer_of(path).to_owned();
        let macs = if p.gemm_rhs {
            let w_elems = p.value.data().len() as u64;
            let out_ch = p.value.shape()[0] as u64;
            let spatial = elems.get(&layer).map_or(1, |&e| (e / out_ch.max(1)).max(1));
            w_elems * spatial
        } else {
            0
        };
        out.push(LayerMacs { path: layer, macs });
    });
    out
}

/// The layer path of a parameter path (`"0_conv.w"` → `"0_conv"`).
fn layer_of(param_path: &str) -> &str {
    param_path
        .rsplit_once('.')
        .map_or(param_path, |(layer, _)| layer)
}

/// How much quantization under a probe format hurts one layer: relative
/// RMSE of its per-channel-quantized weights plus relative RMSE of its
/// activation site under the calibrated scale. Low score = safe to demote
/// first.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSensitivity {
    /// Hierarchical layer path.
    pub path: String,
    /// Relative RMSE of the layer's rank-≥2 weights under the probe.
    pub weight_rmse: f64,
    /// Mean relative RMSE of the layer's activation site under the probe
    /// (0 when the site never fires on the probe batch).
    pub act_rmse: f64,
}

impl LayerSensitivity {
    /// Combined ranking score (weight + activation components).
    #[must_use]
    pub fn score(&self) -> f64 {
        self.weight_rmse + self.act_rmse
    }
}

struct SensTap<'a> {
    fmt: &'a dyn mersit_core::Format,
    anchor: f64,
    cal: &'a Calibration,
    err: &'a mut HashMap<String, (f64, u64)>,
}

impl Tap for SensTap<'_> {
    fn activation(&mut self, site: Site<'_>, t: Tensor) -> Tensor {
        let Some(s) = site_scale(self.anchor, self.cal.max_for(site.path)) else {
            return t;
        };
        let q = quantize_tensor(self.fmt, &t, s);
        let e = self.err.entry(site.path.to_owned()).or_insert((0.0, 0));
        e.0 += relative_rmse(&q, &t);
        e.1 += 1;
        q
    }
}

/// Measures per-layer quantization sensitivity under `probe` (reusing the
/// Fig. 6 RMSE machinery): one forward over `inputs` with quantized
/// activations propagating, plus per-layer weight RMSE. Returned in
/// parameter-visit order; sort by [`LayerSensitivity::score`] ascending to
/// get the greedy demotion order.
#[must_use]
pub fn layer_sensitivity(
    model: &Model,
    cal: &Calibration,
    probe: &FormatRef,
    inputs: &Tensor,
    batch: usize,
) -> Vec<LayerSensitivity> {
    let _span = mersit_obs::span("ptq.assign.sensitivity");
    let mut err: HashMap<String, (f64, u64)> = HashMap::new();
    let n = inputs.shape()[0];
    let mut i = 0;
    while i < n {
        let hi = (i + batch.max(1)).min(n);
        let mut tap = SensTap {
            fmt: probe.as_ref(),
            anchor: scale_anchor(probe.as_ref()),
            cal,
            err: &mut err,
        };
        let mut ctx = Ctx::with_tap(&mut tap);
        let _ = model.net.forward_ref(inputs.slice_outer(i, hi), &mut ctx);
        i = hi;
    }
    let mut out = Vec::new();
    model.net.visit_params_ref("", &mut |path, p| {
        if p.value.shape().len() < 2 {
            return;
        }
        let layer = layer_of(path).to_owned();
        let q = quantize_per_channel(probe.as_ref(), &p.value);
        let w_rmse = relative_rmse(&q, &p.value);
        let act = err.get(&layer).map_or(
            0.0,
            |&(sum, cnt)| if cnt == 0 { 0.0 } else { sum / cnt as f64 },
        );
        out.push(LayerSensitivity {
            path: layer,
            weight_rmse: w_rmse,
            act_rmse: act,
        });
    });
    out
}

/// One point on the accuracy-vs-hardware-cost front.
#[derive(Debug, Clone)]
pub struct ParetoPoint {
    /// The assignment that produced this point.
    pub assignment: FormatAssignment,
    /// Metric score on the evaluation split.
    pub accuracy: f64,
    /// MAC-count-weighted mean per-MAC area (µm²) under the assignment.
    pub area_um2: f64,
    /// MAC-count-weighted mean per-MAC power (µW) under the assignment.
    pub power_uw: f64,
    /// How many layers were demoted away from the base format.
    pub swaps: usize,
}

/// Knobs of [`greedy_search`].
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Formats a layer may be demoted to (tried cheapest-area first).
    /// Candidates the cost closure cannot price (e.g. INT8, which has no
    /// hardware decoder) are skipped.
    pub candidates: Vec<FormatRef>,
    /// Largest accuracy drop (metric points) tolerated relative to the
    /// all-base corner.
    pub tolerance: f64,
    /// Upper bound on accepted swaps (defense against long tails; the
    /// layer count bounds it anyway).
    pub max_swaps: usize,
}

/// Scores one assignment: compile a plan and run the evaluation split.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn assignment_score(
    model: &Model,
    assign: &FormatAssignment,
    cal: &Calibration,
    inputs: &Tensor,
    labels: &[usize],
    metric: Metric,
    batch: usize,
    executor: Executor,
) -> f64 {
    let plan = QuantPlan::build_with(model, assign.clone(), cal, executor);
    let preds = plan.predict(model, inputs, batch);
    metric.score(&preds, labels)
}

/// Greedy sensitivity-ordered demotion search from the all-`base`
/// assignment.
///
/// Walks `order` (layer paths, least-sensitive first); for each layer it
/// tries the candidates from cheapest per-MAC area up and accepts the
/// first demotion that stays within `cfg.tolerance` of the all-base
/// accuracy — every accepted swap emits a [`ParetoPoint`]. `cost` prices
/// an assignment as MAC-weighted (area µm², power µW) per MAC —
/// `mersit_hw::assignment_cost` over [`layer_macs`] is the intended
/// implementation — returning `None` for unpriceable assignments (these
/// are skipped).
///
/// Returns all accepted points, all-base corner first. Use
/// [`pareto_front`] to flag the non-dominated subset.
#[allow(clippy::too_many_arguments)]
pub fn greedy_search(
    model: &Model,
    cal: &Calibration,
    base: &FormatRef,
    order: &[String],
    inputs: &Tensor,
    labels: &[usize],
    metric: Metric,
    batch: usize,
    executor: Executor,
    cfg: &SearchConfig,
    cost: &mut dyn FnMut(&FormatAssignment) -> Option<(f64, f64)>,
) -> Vec<ParetoPoint> {
    let _span = mersit_obs::span("ptq.assign.search");
    let mut points = Vec::new();
    let mut current = FormatAssignment::uniform(base.clone());
    let base_acc = assignment_score(
        model, &current, cal, inputs, labels, metric, batch, executor,
    );
    let Some((area0, power0)) = cost(&current) else {
        return points;
    };
    points.push(ParetoPoint {
        assignment: current.clone(),
        accuracy: base_acc,
        area_um2: area0,
        power_uw: power0,
        swaps: 0,
    });

    // Candidates cheapest-first by their uniform per-MAC area; unpriced
    // candidates drop out here.
    let mut priced: Vec<(FormatRef, f64)> = cfg
        .candidates
        .iter()
        .filter(|c| c.name() != base.name())
        .filter_map(|c| cost(&FormatAssignment::uniform(c.clone())).map(|(a, _)| (c.clone(), a)))
        .collect();
    priced.sort_by(|a, b| a.1.total_cmp(&b.1));

    let mut swaps = 0usize;
    for path in order {
        if swaps >= cfg.max_swaps {
            break;
        }
        let cur_area = cost(&FormatAssignment::uniform(current.format_for(path).clone()))
            .map_or(f64::INFINITY, |(a, _)| a);
        for (cand, cand_area) in &priced {
            if *cand_area >= cur_area {
                break; // sorted: nothing cheaper remains
            }
            let trial = current.clone().with_override(path.clone(), cand.clone());
            mersit_obs::incr("ptq.assign.search.evals");
            let acc = assignment_score(model, &trial, cal, inputs, labels, metric, batch, executor);
            if acc >= base_acc - cfg.tolerance {
                let Some((area, power)) = cost(&trial) else {
                    continue;
                };
                swaps += 1;
                points.push(ParetoPoint {
                    assignment: trial.clone(),
                    accuracy: acc,
                    area_um2: area,
                    power_uw: power,
                    swaps,
                });
                current = trial;
                break;
            }
        }
    }
    points
}

/// Flags the non-dominated points on (accuracy ↑, area ↓): `true` means
/// no other point has at-least-equal accuracy and at-most-equal area with
/// one strict.
#[must_use]
pub fn pareto_front(points: &[ParetoPoint]) -> Vec<bool> {
    points
        .iter()
        .map(|p| {
            !points.iter().any(|q| {
                q.accuracy >= p.accuracy
                    && q.area_um2 <= p.area_um2
                    && (q.accuracy > p.accuracy || q.area_um2 < p.area_um2)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::{calibrate, INPUT_PATH};
    use mersit_nn::models::vgg_t;
    use mersit_tensor::Rng;

    fn fmt(name: &str) -> FormatRef {
        parse_format(name).unwrap()
    }

    #[test]
    fn uniform_name_is_plain_format_name() {
        let a = FormatAssignment::uniform(fmt("MERSIT(8,2)"));
        assert!(a.is_uniform());
        assert_eq!(a.name(), "MERSIT(8,2)");
        assert_eq!(a.format_for("anything.w").name(), "MERSIT(8,2)");
        assert_eq!(a.format_for(INPUT_PATH).name(), "MERSIT(8,2)");
    }

    #[test]
    fn longest_prefix_override_wins() {
        let a = FormatAssignment::uniform(fmt("MERSIT(8,2)"))
            .with_override("3_residual", fmt("FP(8,4)"))
            .with_override("3_residual.main.1_bn", fmt("Posit(8,1)"));
        assert_eq!(a.format_for("3_residual.main.1_bn").name(), "Posit(8,1)");
        assert_eq!(a.format_for("3_residual.main.1_bn.w").name(), "Posit(8,1)");
        assert_eq!(a.format_for("3_residual.main.0_conv").name(), "FP(8,4)");
        // "3_residualx" is not a dotted child of "3_residual".
        let b = FormatAssignment::uniform(fmt("MERSIT(8,2)")).with_override("0_conv", fmt("INT8"));
        assert_eq!(b.format_for("0_convx").name(), "MERSIT(8,2)");
        assert_eq!(b.format_for("0_conv.w").name(), "INT8");
    }

    #[test]
    fn parse_round_trips_and_rejects_garbage() {
        let spec = "MERSIT(8,2);0_conv=FP(8,4);4_linear=Posit(8,1)";
        let a = FormatAssignment::parse(spec).unwrap();
        assert_eq!(a.name(), spec);
        assert_eq!(a.overrides().len(), 2);
        assert_eq!(a.formats().len(), 3);
        // Later override replaces earlier for the same path.
        let b = FormatAssignment::parse("INT8;x=FP(8,4);x=Posit(8,1)").unwrap();
        assert_eq!(b.format_for("x").name(), "Posit(8,1)");
        assert_eq!(b.overrides().len(), 1);
        assert!(FormatAssignment::parse("NOPE(1,2)").is_err());
        assert!(FormatAssignment::parse("INT8;noequals").is_err());
        assert!(FormatAssignment::parse("INT8;=FP(8,4)").is_err());
    }

    #[test]
    fn layer_macs_counts_gemm_work() {
        let mut rng = Rng::new(11);
        let model = vgg_t(8, 10, &mut rng);
        let x = Tensor::randn(&[1, 3, 8, 8], 1.0, &mut rng);
        let macs = layer_macs(&model, &x);
        assert!(macs.len() >= 4, "vgg_t has several quantized layers");
        let total: u64 = macs.iter().map(|l| l.macs).sum();
        assert!(total > 0);
        // Convolutions multiply by output positions: at least one layer
        // must exceed its raw weight element count.
        let has_spatial = macs.iter().any(|l| l.macs > 0 && l.path.contains("conv"));
        assert!(has_spatial, "{macs:?}");
        // Deterministic.
        assert_eq!(macs, layer_macs(&model, &x));
    }

    #[test]
    fn sensitivity_ranks_and_search_trades_area() {
        let mut rng = Rng::new(12);
        let model = vgg_t(8, 10, &mut rng);
        let x = Tensor::randn(&[10, 3, 8, 8], 1.0, &mut rng);
        let labels: Vec<usize> = (0..10).map(|i| i % 10).collect();
        let cal = calibrate(&model, &x, 5);
        let probe = fmt("FP(8,4)");
        let sens = layer_sensitivity(&model, &cal, &probe, &x, 5);
        assert!(!sens.is_empty());
        assert!(sens
            .iter()
            .all(|s| s.score().is_finite() && s.score() >= 0.0));
        assert!(sens.iter().any(|s| s.weight_rmse > 0.0));

        // Synthetic cost model: MERSIT MACs cost 2.0, FP 1.0, Posit 3.0.
        let unit = |n: &str| -> f64 {
            if n.starts_with("MERSIT") {
                2.0
            } else if n.starts_with("FP") {
                1.0
            } else {
                3.0
            }
        };
        let macs = layer_macs(&model, &x.slice_outer(0, 1));
        let mut cost = |a: &FormatAssignment| -> Option<(f64, f64)> {
            let mut num = 0.0;
            let mut den = 0.0;
            for l in &macs {
                let u = unit(&a.format_for(&l.path).name());
                num += u * l.macs as f64;
                den += l.macs as f64;
            }
            Some((num / den, num / den))
        };
        let mut order: Vec<(f64, String)> = sens
            .iter()
            .filter(|s| macs.iter().any(|l| l.path == s.path && l.macs > 0))
            .map(|s| (s.score(), s.path.clone()))
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0));
        let order: Vec<String> = order.into_iter().map(|(_, p)| p).collect();
        let cfg = SearchConfig {
            candidates: vec![fmt("FP(8,4)"), fmt("Posit(8,1)")],
            tolerance: 100.0, // untrained model: accept everything
            max_swaps: 2,
        };
        let base = fmt("MERSIT(8,2)");
        let points = greedy_search(
            &model,
            &cal,
            &base,
            &order,
            &x,
            &labels,
            Metric::Accuracy,
            5,
            Executor::Float,
            &cfg,
            &mut cost,
        );
        assert!(points.len() >= 2, "tolerance 100 must accept swaps");
        assert_eq!(points[0].swaps, 0);
        assert!(points[0].assignment.is_uniform());
        // Every accepted swap strictly reduces weighted area.
        for w in points.windows(2) {
            assert!(w[1].area_um2 < w[0].area_um2, "{points:?}");
            assert_eq!(w[1].swaps, w[0].swaps + 1);
        }
        let front = pareto_front(&points);
        assert_eq!(front.len(), points.len());
        // The cheapest point is never dominated.
        let min_area = points
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.area_um2.total_cmp(&b.1.area_um2))
            .unwrap()
            .0;
        assert!(front[min_area]);
    }
}
