//! Calibration: run a small data subset through the FP32 model and record
//! the per-site activation maxima that become the PTQ scaling parameters
//! (§4.1 of the paper).
//!
//! The first calibration batch doubles as the *tracing* pass: it interns
//! every activation tap point into a dense [`SiteTable`] (see
//! `mersit_nn::site`), and the recorded maxima live in a flat `Vec<f32>`
//! indexed by [`SiteId`] — no string keys or hash lookups in the hot loop.
//! Subsequent batches replay the table in compiled mode.

use mersit_nn::{Ctx, Layer, Model, Site, SiteId, SiteTable, Tap};
use mersit_tensor::Tensor;

/// Pseudo-path under which the network input's maximum is recorded.
pub const INPUT_PATH: &str = "__input__";

/// Per-site activation maxima collected on the calibration split, indexed
/// by the dense [`SiteId`]s of the traced [`SiteTable`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Calibration {
    sites: SiteTable,
    act_max: Vec<f32>,
    input_max: Option<f32>,
}

impl Calibration {
    /// Maximum recorded for a site id.
    ///
    /// # Panics
    ///
    /// Panics when `id` was not assigned by this calibration's site table.
    #[must_use]
    pub fn max_of(&self, id: SiteId) -> f32 {
        self.act_max[id.index()]
    }

    /// Maximum recorded for a path (0 if the path never fired). The legacy
    /// string-keyed read: resolves through the interned table, including
    /// the [`INPUT_PATH`] pseudo-site.
    #[must_use]
    pub fn max_for(&self, path: &str) -> f32 {
        if path == INPUT_PATH {
            return self.input_max();
        }
        self.sites.get(path).map_or(0.0, |id| self.max_of(id))
    }

    /// Maximum absolute value of the network input over the calibration
    /// split (0 when calibration never ran).
    #[must_use]
    pub fn input_max(&self) -> f32 {
        self.input_max.unwrap_or(0.0)
    }

    /// The interned site table the maxima are indexed by. [`INPUT_PATH`]
    /// is *not* a table entry — it is tracked separately so compiled
    /// forwards replay exactly the traced tap order.
    #[must_use]
    pub fn sites(&self) -> &SiteTable {
        &self.sites
    }

    /// Dense per-site maxima in [`SiteId`] order.
    #[must_use]
    pub fn site_maxima(&self) -> &[f32] {
        &self.act_max
    }

    /// Number of observed activation sites (including the input
    /// pseudo-site when calibration ran).
    #[must_use]
    pub fn num_sites(&self) -> usize {
        self.act_max.len() + usize::from(self.input_max.is_some())
    }
}

struct CalibTap<'a> {
    act_max: &'a mut Vec<f32>,
}

impl Tap for CalibTap<'_> {
    fn activation(&mut self, site: Site<'_>, t: Tensor) -> Tensor {
        let m = t.max_abs();
        let i = site.id.index();
        if i == self.act_max.len() {
            self.act_max.push(m);
        } else {
            assert!(i < self.act_max.len(), "site id beyond traced table");
            if m > self.act_max[i] {
                self.act_max[i] = m;
            }
        }
        t
    }
}

/// Runs the calibration split through the model, recording activation
/// maxima (including the input under [`INPUT_PATH`]). The first batch
/// traces the site table; later batches replay it compiled. Needs only
/// `&` access to the model.
pub fn calibrate(model: &Model, inputs: &Tensor, batch: usize) -> Calibration {
    let _span = mersit_obs::span("ptq.calibrate");
    let mut sites = SiteTable::new();
    let mut act_max: Vec<f32> = Vec::new();
    let mut input_max: Option<f32> = None;
    let n = inputs.shape()[0];
    let mut i = 0;
    while i < n {
        mersit_obs::incr("ptq.calibrate.batches");
        let hi = (i + batch).min(n);
        let x = inputs.slice_outer(i, hi);
        let m = x.max_abs();
        input_max = Some(input_max.map_or(m, |e| e.max(m)));
        let mut tap = CalibTap {
            act_max: &mut act_max,
        };
        if i == 0 {
            let mut ctx = Ctx::tracing_with_tap(&mut sites, &mut tap);
            let _ = model.net.forward_ref(x, &mut ctx);
        } else {
            let mut ctx = Ctx::compiled(&sites, &mut tap);
            let _ = model.net.forward_ref(x, &mut ctx);
        }
        i = hi;
    }
    Calibration {
        sites,
        act_max,
        input_max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mersit_nn::models::vgg_t;
    use mersit_tensor::Rng;

    #[test]
    fn calibration_records_every_layer() {
        let mut rng = Rng::new(1);
        let model = vgg_t(12, 10, &mut rng);
        let x = Tensor::randn(&[4, 3, 12, 12], 1.0, &mut rng);
        let cal = calibrate(&model, &x, 2);
        // 14 tapped layers + the input.
        let paths: Vec<&str> = cal.sites().iter().map(|(_, p)| p).collect();
        assert_eq!(cal.num_sites(), 15, "{paths:?}");
        assert!(cal.max_for(INPUT_PATH) > 0.0);
        for (id, path) in cal.sites().iter() {
            assert!(cal.max_of(id) >= 0.0, "{path}");
            assert_eq!(cal.max_for(path), cal.max_of(id), "{path}");
        }
    }

    #[test]
    fn calibration_maxima_grow_monotonically() {
        let mut rng = Rng::new(2);
        let model = vgg_t(12, 10, &mut rng);
        let small = Tensor::randn(&[2, 3, 12, 12], 0.1, &mut rng);
        let big = Tensor::randn(&[2, 3, 12, 12], 5.0, &mut rng);
        let cal_small = calibrate(&model, &small, 2);
        let both = Tensor::cat_outer(&[&small, &big]);
        let cal_both = calibrate(&model, &both, 2);
        assert!(cal_both.max_for(INPUT_PATH) >= cal_small.max_for(INPUT_PATH));
    }

    #[test]
    fn unknown_path_reads_zero() {
        let cal = Calibration::default();
        assert_eq!(cal.max_for("nope"), 0.0);
    }

    #[test]
    fn site_table_stable_across_repeated_calibrations() {
        let mut rng = Rng::new(9);
        let model = vgg_t(12, 10, &mut rng);
        let x = Tensor::randn(&[4, 3, 12, 12], 1.0, &mut rng);
        let a = calibrate(&model, &x, 2);
        let b = calibrate(&model, &x, 4);
        assert_eq!(a.sites(), b.sites(), "site table depends on batch size");
    }
}

#[cfg(test)]
mod consistency_tests {
    use super::*;
    use crate::executor::QuantTap;
    use mersit_core::parse_format;
    use mersit_nn::models::mobilenet_v3_t;
    use mersit_tensor::Rng;
    use std::collections::BTreeSet;

    /// The quantized-inference tap must visit exactly the same activation
    /// sites the calibration tap recorded — otherwise scales silently
    /// go unused / unseen sites stay unquantized.
    #[test]
    fn quantized_inference_visits_calibrated_sites() {
        struct Spy<'a> {
            inner: QuantTap<'a>,
            seen: BTreeSet<String>,
        }
        impl Tap for Spy<'_> {
            fn activation(&mut self, site: Site<'_>, t: Tensor) -> Tensor {
                self.seen.insert(site.path.to_owned());
                self.inner.activation(site, t)
            }
        }
        let mut rng = Rng::new(8);
        let model = mobilenet_v3_t(8, 10, &mut rng);
        let x = Tensor::randn(&[4, 3, 8, 8], 1.0, &mut rng);
        let cal = calibrate(&model, &x, 2);
        let fmt = parse_format("MERSIT(8,2)").unwrap();
        let mut spy = Spy {
            inner: QuantTap::new(fmt.as_ref(), &cal),
            seen: BTreeSet::new(),
        };
        let mut ctx = Ctx::with_tap(&mut spy);
        let _ = model.net.forward_ref(x, &mut ctx);
        let calibrated: BTreeSet<String> = cal.sites().iter().map(|(_, p)| p.to_owned()).collect();
        assert_eq!(spy.seen, calibrated, "tap site mismatch");
        assert!(spy.seen.len() > 20, "nontrivial site count");
    }
}
