//! Calibration: run a small data subset through the FP32 model and record
//! the per-layer activation maxima that become the PTQ scaling parameters
//! (§4.1 of the paper).

use mersit_nn::{Ctx, Layer, Model, Tap};
use mersit_tensor::Tensor;
use std::collections::BTreeMap;

/// Pseudo-path under which the network input's maximum is recorded.
pub const INPUT_PATH: &str = "__input__";

/// Per-layer activation maxima collected on the calibration split.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Calibration {
    /// Max |activation| keyed by tap path.
    pub act_max: BTreeMap<String, f32>,
}

impl Calibration {
    /// Maximum recorded for a path (0 if the path never fired).
    #[must_use]
    pub fn max_for(&self, path: &str) -> f32 {
        self.act_max.get(path).copied().unwrap_or(0.0)
    }

    /// Number of observed activation sites.
    #[must_use]
    pub fn num_sites(&self) -> usize {
        self.act_max.len()
    }
}

struct CalibTap<'a> {
    cal: &'a mut Calibration,
}

impl Tap for CalibTap<'_> {
    fn activation(&mut self, path: &str, t: Tensor) -> Tensor {
        let m = t.max_abs();
        let e = self.cal.act_max.entry(path.to_owned()).or_insert(0.0);
        if m > *e {
            *e = m;
        }
        t
    }
}

/// Runs the calibration split through the model, recording activation
/// maxima (including the input under [`INPUT_PATH`]).
pub fn calibrate(model: &mut Model, inputs: &Tensor, batch: usize) -> Calibration {
    let _span = mersit_obs::span("ptq.calibrate");
    let mut cal = Calibration::default();
    let n = inputs.shape()[0];
    let mut i = 0;
    while i < n {
        mersit_obs::incr("ptq.calibrate.batches");
        let hi = (i + batch).min(n);
        let x = inputs.slice_outer(i, hi);
        {
            let e = cal.act_max.entry(INPUT_PATH.to_owned()).or_insert(0.0);
            let m = x.max_abs();
            if m > *e {
                *e = m;
            }
        }
        let mut tap = CalibTap { cal: &mut cal };
        let mut ctx = Ctx::with_tap(&mut tap);
        let _ = model.net.forward(x, &mut ctx);
        i = hi;
    }
    cal
}

#[cfg(test)]
mod tests {
    use super::*;
    use mersit_nn::models::vgg_t;
    use mersit_tensor::Rng;

    #[test]
    fn calibration_records_every_layer() {
        let mut rng = Rng::new(1);
        let mut model = vgg_t(12, 10, &mut rng);
        let x = Tensor::randn(&[4, 3, 12, 12], 1.0, &mut rng);
        let cal = calibrate(&mut model, &x, 2);
        // 14 tapped layers + the input.
        assert_eq!(cal.num_sites(), 15, "{:?}", cal.act_max.keys());
        assert!(cal.max_for(INPUT_PATH) > 0.0);
        for (path, &m) in &cal.act_max {
            assert!(m >= 0.0, "{path}");
        }
    }

    #[test]
    fn calibration_maxima_grow_monotonically() {
        let mut rng = Rng::new(2);
        let mut model = vgg_t(12, 10, &mut rng);
        let small = Tensor::randn(&[2, 3, 12, 12], 0.1, &mut rng);
        let big = Tensor::randn(&[2, 3, 12, 12], 5.0, &mut rng);
        let cal_small = calibrate(&mut model, &small, 2);
        let both = Tensor::cat_outer(&[&small, &big]);
        let cal_both = calibrate(&mut model, &both, 2);
        assert!(cal_both.max_for(INPUT_PATH) >= cal_small.max_for(INPUT_PATH));
    }

    #[test]
    fn unknown_path_reads_zero() {
        let cal = Calibration::default();
        assert_eq!(cal.max_for("nope"), 0.0);
    }
}

#[cfg(test)]
mod consistency_tests {
    use super::*;
    use crate::executor::QuantTap;
    use mersit_core::parse_format;
    use mersit_nn::models::mobilenet_v3_t;
    use mersit_tensor::Rng;
    use std::collections::BTreeSet;

    /// The quantized-inference tap must visit exactly the same activation
    /// sites the calibration tap recorded — otherwise scales silently
    /// go unused / unseen sites stay unquantized.
    #[test]
    fn quantized_inference_visits_calibrated_sites() {
        struct Spy<'a> {
            inner: QuantTap<'a>,
            seen: BTreeSet<String>,
        }
        impl Tap for Spy<'_> {
            fn activation(&mut self, path: &str, t: Tensor) -> Tensor {
                self.seen.insert(path.to_owned());
                self.inner.activation(path, t)
            }
        }
        let mut rng = Rng::new(8);
        let mut model = mobilenet_v3_t(8, 10, &mut rng);
        let x = Tensor::randn(&[4, 3, 8, 8], 1.0, &mut rng);
        let cal = calibrate(&mut model, &x, 2);
        let fmt = parse_format("MERSIT(8,2)").unwrap();
        let mut spy = Spy {
            inner: QuantTap::new(fmt.as_ref(), &cal),
            seen: BTreeSet::new(),
        };
        let mut ctx = Ctx::with_tap(&mut spy);
        let _ = model.net.forward(x, &mut ctx);
        let calibrated: BTreeSet<String> = cal
            .act_max
            .keys()
            .filter(|k| k.as_str() != INPUT_PATH)
            .cloned()
            .collect();
        assert_eq!(spy.seen, calibrated, "tap site mismatch");
        assert!(spy.seen.len() > 20, "nontrivial site count");
    }
}
