//! Executable form of NUMERICS.md: one test per section, asserting every
//! bit pattern, value, and width the document claims. Keep the two in
//! lockstep — a change here without a NUMERICS.md edit (or vice versa)
//! means the guide is lying.

// Bit literals are grouped as sign_ks_ECs_fraction, mirroring the field
// diagrams in NUMERICS.md, not in equal-size digit groups.
#![allow(clippy::unusual_byte_groupings)]

use mersit_core::fixpoint::FixTable;
use mersit_core::{v_ovf_for, Format, Fp8, MacParams, Mersit, Posit, ValueClass};

fn m82() -> Mersit {
    Mersit::new(8, 2).unwrap()
}

/// §1 — word anatomy and the contiguous merged-exponent range.
#[test]
fn section1_word_anatomy() {
    let m = m82();
    assert_eq!(m.groups(), 3);
    assert_eq!(m.regime_scale(), 3); // 2^E − 1
    assert_eq!(m.exp_eff_range(), -9..=8);
    assert_eq!(m.min_positive(), 2.0_f64.powi(-9));
    assert_eq!(m.max_finite(), 2.0_f64.powi(8));
}

/// §2 — decode walkthrough `0 1 01 0110` → 2.75.
#[test]
fn section2_decode_positive_regime() {
    let m = m82();
    let code = 0b0_1_01_0110;
    let d = m.fields(code).unwrap();
    assert_eq!(d.regime, Some(0)); // ks = 1, g = 0
    assert_eq!(d.exp_raw, 1);
    assert_eq!(d.exp_eff, 1); // 3·0 + 1
    assert_eq!((d.frac, d.frac_bits), (0b0110, 4));
    assert_eq!(m.decode(code), 2.75);
}

/// §3 — decode walkthrough `0 0 11 01 10` → 3/64, and sign-magnitude.
#[test]
fn section3_decode_negative_regime() {
    let m = m82();
    let code = 0b0_0_1101_10;
    let d = m.fields(code).unwrap();
    assert_eq!(d.regime, Some(-2)); // ks = 0, g = 1 ⇒ k = −(g+1)
    assert_eq!(d.exp_raw, 1);
    assert_eq!(d.exp_eff, -5); // 3·(−2) + 1
    assert_eq!((d.frac, d.frac_bits), (0b10, 2));
    assert_eq!(m.decode(code), 0.046875);
    // Setting the sign bit negates the same magnitude.
    assert_eq!(m.decode(code | 0x80), -0.046875);
    assert_eq!(m.decode(0b1_1_01_0110), -2.75);
}

/// §4 — special patterns: zero, ±∞, and NaN → +∞.
#[test]
fn section4_special_patterns() {
    let m = m82();
    assert_eq!(m.classify(0b0_0111111), ValueClass::Zero);
    assert_eq!(m.classify(0b1_0111111), ValueClass::Zero);
    assert_eq!(m.decode(0b1_0111111), 0.0);
    assert_eq!(m.classify(0b0_1111111), ValueClass::Infinite);
    assert_eq!(m.decode(0b0_1111111), f64::INFINITY);
    assert_eq!(m.decode(0b1_1111111), f64::NEG_INFINITY);
    assert_eq!(m.decode(m.encode(f64::NAN)), f64::INFINITY);
}

/// §5 — encode walkthrough 0.7 → `0 0 10 0110` = 0.6875.
#[test]
fn section5_encode_walkthrough() {
    let m = m82();
    assert_eq!(m.encode(0.7), 0b0_0_10_0110);
    assert_eq!(m.decode(0b0_0_10_0110), 0.6875);
}

/// §6 — rounding ties and saturation.
#[test]
fn section6_rounding_and_saturation() {
    let m = m82();
    // Tie between frac 0110 (1.375) and 0111 (1.4375) → even fraction.
    assert_eq!(m.decode(m.encode(1.40625)), 1.375);
    // Fraction-free regime: 96 is halfway between 2^6 and 2^7 → up.
    assert_eq!(m.decode(m.encode(96.0)), 128.0);
    // Saturation, never wraparound.
    assert_eq!(m.decode(m.encode(1e9)), 256.0);
    assert_eq!(m.decode(m.encode(-1e9)), -256.0);
    assert_eq!(m.decode(m.encode(1e-300)), 2.0_f64.powi(-9));
    assert_eq!(m.decode(m.encode(f64::INFINITY)), f64::INFINITY);
}

/// §7 — Kulisch width table and the FixTable view of the same widths.
#[test]
fn section7_kulisch_widths() {
    let fp = MacParams::of(&Fp8::new(4).unwrap());
    let po = MacParams::of(&Posit::new(8, 1).unwrap());
    let me = MacParams::of(&m82());
    assert_eq!((fp.w, po.w, me.w), (33, 45, 35));
    assert_eq!(
        (fp.acc_bits(10), po.acc_bits(10), me.acc_bits(10)),
        (43, 55, 45)
    );
    // Headroom: V = max(10, ceil_log2(L) + 2).
    assert_eq!(v_ovf_for(1), 10);
    assert_eq!(v_ovf_for(1024), 12);

    // FixTable derives the same accumulator width from the decoder:
    // S = 5 significand bits, max_bits = (8 − (−9)) + 5 = 22,
    // acc = 2·22 − 1 + V = W + 2M − 2 + V = 53 at V = 10.
    let m = m82();
    let t = FixTable::build(&m).unwrap();
    assert_eq!(t.sig_bits(), 5);
    assert_eq!(t.max_bits(), 22);
    assert_eq!(t.acc_width(10), 53);
    assert_eq!(t.acc_width(10) as u32, me.acc_bits(10) + 2 * me.m - 2);
    // §2's code as a fixed-point integer: 2.75 / 2^(e_min − (S−1)) = 22528.
    assert_eq!(t.fix(0b0_1_01_0110), 22528);
    // Posit(8,3) operands need 99 bits — no i64 table; the engine's
    // 256-bit wide accumulator covers it instead.
    assert!(FixTable::build(&Posit::new(8, 3).unwrap()).is_none());
}
