//! The format implementations generalize beyond the paper's 8-bit scope:
//! 16-bit MERSIT/Posit/FP configurations as an extension study.

use mersit_core::{Format, Fp8, MacParams, Mersit, Posit, PrecisionProfile, ValueClass};

#[test]
fn mersit16_2_round_trips_every_code() {
    let m = Mersit::new(16, 2).unwrap();
    assert_eq!(m.groups(), 7);
    for code in m.codes() {
        let code = code as u16;
        if m.classify(code) != ValueClass::Finite {
            continue;
        }
        let v = m.decode(code);
        assert_eq!(m.decode(m.encode(v)), v, "code {code:#x}");
    }
}

#[test]
fn mersit16_2_exponents_are_contiguous() {
    let m = Mersit::new(16, 2).unwrap();
    // k ∈ −7..=6, exp ∈ 0..=2 → effective exponents −21..=20.
    assert_eq!(m.exp_eff_range(), -21..=20);
    assert_eq!(m.min_positive(), 2f64.powi(-21));
    assert_eq!(m.max_finite(), 2f64.powi(20));
    // Peak fraction precision: (G−1)·es = 12 bits.
    assert_eq!(m.max_frac_bits(), 12);
}

#[test]
fn posit16_matches_known_encodings() {
    let p = Posit::standard(16, 1).unwrap();
    assert_eq!(p.decode(0x4000), 1.0);
    assert_eq!(p.decode(0x5000), 2.0);
    assert_eq!(p.decode(0xC000), -1.0);
    assert!(p.decode(0x8000).is_nan()); // NaR
                                        // minpos of standard posit(16,1) = 2^-28.
    assert_eq!(p.min_positive(), 2f64.powi(-28));
}

#[test]
fn wider_formats_nest_the_8bit_lattice() {
    // Every MERSIT(8,2) value is representable in MERSIT(16,2):
    // same regime structure with more fraction bits.
    let m8 = Mersit::new(8, 2).unwrap();
    let m16 = Mersit::new(16, 2).unwrap();
    for code in m8.codes() {
        let code = code as u16;
        if m8.classify(code) != ValueClass::Finite {
            continue;
        }
        let v = m8.decode(code);
        assert_eq!(
            m16.decode(m16.encode(v)),
            v,
            "MERSIT(8,2) value {v} not exact in MERSIT(16,2)"
        );
    }
}

#[test]
fn mersit16_precision_band_vs_posit16() {
    // The §3.2 band argument scales with width: MERSIT's full-precision
    // plateau stays wider than Posit's at 16 bits too.
    let m = PrecisionProfile::of(&Mersit::new(16, 2).unwrap());
    let p = PrecisionProfile::of(&Posit::new(16, 1).unwrap());
    let mb = m.max_frac_bits();
    let pb = p.max_frac_bits();
    assert_eq!(mb, 12);
    assert_eq!(pb, 12);
    assert!(
        m.band_width_at(mb) > p.band_width_at(pb),
        "MERSIT plateau {} vs Posit {}",
        m.band_width_at(mb),
        p.band_width_at(pb)
    );
}

#[test]
fn fp16_like_configuration() {
    // FP(16,5) is IEEE-half-like: check a few familiar values.
    let f = Fp8::with_bits(16, 5).unwrap();
    assert_eq!(f.decode(0x3C00), 1.0);
    assert_eq!(f.decode(0x4000), 2.0);
    assert_eq!(f.decode(0xC000), -2.0);
    assert_eq!(f.decode(0x7C00), f64::INFINITY);
    assert_eq!(f.max_finite(), 65504.0);
    assert_eq!(f.min_positive(), 2f64.powi(-24));
}

#[test]
fn mac_params_scale_with_width() {
    let m16 = MacParams::of(&Mersit::new(16, 2).unwrap());
    assert_eq!(m16.w, 2 * (21 + 20) + 1);
    assert_eq!(m16.m, 13);
    let p16 = MacParams::of(&Posit::new(16, 1).unwrap());
    assert_eq!(p16.m, 13);
    assert!(p16.w > m16.w, "posit16 needs the wider accumulator");
}
