//! Property tests pinning the batched quantization engine to the scalar
//! reference: for every registry format, `Format::quantize_slice` must be
//! bit-identical (`f32::to_bits`) to the per-element
//! `(quantize(x / scale) * scale) as f32` loop — across random bit
//! patterns, tie midpoints, subnormal inputs, ±∞-adjacent magnitudes,
//! NaNs, and non-unit scales, on both the LUT path (slices past
//! `LUT_MIN_LEN`) and the scalar fallback — and `QuantLut::apply` must
//! equal the per-element `QuantLut::map` loop on **every SIMD tier** the
//! host supports, including degenerate scales whose crowded coarse
//! buckets push `probe_len` past the vector kernel's probe cutoff.

use mersit_core::{
    available_levels, quantize_slice_scalar, table2_formats, Format, QuantLut, ValueClass,
    LUT_MIN_LEN,
};
use proptest::prelude::*;

/// Asserts slice == scalar bit-for-bit for one format over one input set.
fn assert_bit_identical(fmt: &dyn Format, xs: &[f32], scale: f64) {
    let mut batched = xs.to_vec();
    fmt.quantize_slice(&mut batched, scale);
    let mut scalar = xs.to_vec();
    quantize_slice_scalar(fmt, &mut scalar, scale);
    for (i, (&b, &s)) in batched.iter().zip(&scalar).enumerate() {
        assert_eq!(
            b.to_bits(),
            s.to_bits(),
            "{} scale={scale:e} x={:e} ({:#010x}): batched {b:e} vs scalar {s:e}",
            fmt.name(),
            xs[i],
            xs[i].to_bits()
        );
    }
}

/// Asserts the slice codec equals the per-element `map` loop bit-for-bit
/// on every SIMD tier this host can run (scalar plus each vector
/// kernel), across even and odd lengths (vector body + scalar tail).
fn assert_lut_levels_match_map(fmt: &dyn Format, xs: &[f32], scale: f64) {
    let Some(lut) = QuantLut::build(&fmt.quant_spec(), scale) else {
        return;
    };
    let want: Vec<u32> = xs.iter().map(|&x| lut.map(x).to_bits()).collect();
    for &level in available_levels() {
        for len in [xs.len(), xs.len().saturating_sub(3)] {
            let mut got = xs[..len].to_vec();
            lut.apply_with_level(level, &mut got);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    *w,
                    "{} scale={scale:e} {} x={:e} ({:#010x}) elem {i}",
                    fmt.name(),
                    level.name(),
                    xs[i],
                    xs[i].to_bits()
                );
            }
        }
    }
}

/// Checks both engine paths: the full slice (long enough for the LUT) and
/// a short prefix (scalar fallback).
fn check_all_formats(xs: &[f32], scale: f64) {
    assert!(xs.len() >= LUT_MIN_LEN, "inputs must reach the LUT path");
    for fmt in table2_formats() {
        assert_bit_identical(fmt.as_ref(), xs, scale);
        assert_bit_identical(fmt.as_ref(), &xs[..64], scale);
    }
}

/// Fixed specials appended to every sampled buffer.
fn specials() -> Vec<f32> {
    vec![
        0.0,
        -0.0,
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::NAN,
        -f32::NAN,
        f32::from_bits(0x7f80_0001), // signaling-NaN payload
        f32::from_bits(0xffc0_1234), // negative quiet NaN with payload
        f32::MAX,
        f32::MIN,
        f32::MIN_POSITIVE,
        -f32::MIN_POSITIVE,
        f32::from_bits(1), // smallest subnormal
        f32::from_bits(0x8000_0001),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_bit_patterns_match(
        words in prop::collection::vec(any::<u64>(), LUT_MIN_LEN + 200),
        sexp in -30i32..31,
    ) {
        // Raw bit reinterpretation covers every f32 class: normals of all
        // magnitudes, subnormals, zeros, infinities, NaN payloads.
        let mut xs: Vec<f32> = words.iter().map(|&w| f32::from_bits(w as u32)).collect();
        xs.extend(specials());
        let pow2 = f64::powi(2.0, sexp);
        check_all_formats(&xs, pow2); // exact ties reachable
        check_all_formats(&xs, pow2 * 1.3791); // awkward mantissa
    }

    #[test]
    fn tie_midpoints_match(sexp in -12i32..13, noise in any::<u64>()) {
        // Build inputs on (and one ulp around) the exact midpoints between
        // adjacent lattice values of every format — the rounding tie cases.
        let scale = f64::powi(2.0, sexp);
        for fmt in table2_formats() {
            let mut vals: Vec<f64> = fmt
                .codes()
                .map(|c| c as u16)
                .filter(|&c| fmt.classify(c) == ValueClass::Finite)
                .map(|c| fmt.decode(c))
                .filter(|&v| v > 0.0)
                .collect();
            vals.sort_by(f64::total_cmp);
            vals.dedup();
            let mut xs = Vec::new();
            for w in vals.windows(2) {
                let mid = (w[0] + (w[1] - w[0]) / 2.0) * scale;
                for v in [mid as f32, (mid as f32) * 0.5] {
                    let b = v.to_bits();
                    xs.extend([
                        v,
                        -v,
                        f32::from_bits(b.wrapping_add(1)),
                        f32::from_bits(b.wrapping_sub(1)),
                    ]);
                }
            }
            // Pad with noise-derived values to reach the LUT path.
            let mut w = noise;
            while xs.len() < LUT_MIN_LEN {
                w = w.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                xs.push(f32::from_bits((w >> 32) as u32));
            }
            assert_bit_identical(fmt.as_ref(), &xs, scale);
        }
    }

    #[test]
    fn subnormal_inputs_match(
        offsets in prop::collection::vec(0u32..0x0080_0000, LUT_MIN_LEN),
        sexp in -20i32..21,
    ) {
        // Magnitudes entirely inside the f32 subnormal range, both signs.
        let xs: Vec<f32> = offsets
            .iter()
            .enumerate()
            .map(|(i, &m)| {
                let sign = u32::from(i % 2 == 1) << 31;
                f32::from_bits(m | sign)
            })
            .collect();
        check_all_formats(&xs, f64::powi(2.0, sexp) * 1.07);
    }

    #[test]
    fn infinity_adjacent_magnitudes_match(
        offsets in prop::collection::vec(0u32..64, LUT_MIN_LEN),
        scale in 0.001f64..1000.0,
    ) {
        // Bit patterns straddling f32::MAX and ±∞ (offsets past the MAX
        // bits wrap into the infinity/NaN encodings on purpose).
        let xs: Vec<f32> = offsets
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                let sign = u32::from(i % 2 == 1) << 31;
                f32::from_bits((0x7f7f_ffe0 + d) | sign)
            })
            .collect();
        check_all_formats(&xs, scale);
    }

    #[test]
    fn lut_apply_matches_map_on_every_simd_tier(
        words in prop::collection::vec(any::<u64>(), 600),
        sexp in -30i32..31,
        mantissa in 1.0f64..2.0,
    ) {
        // The vectorized slice codec against the per-element `map` loop,
        // on every runnable tier: random bit patterns (all f32 classes,
        // NaN lanes exercising the masked gathers) plus the fixed
        // specials, odd lengths for the scalar tail.
        let mut xs: Vec<f32> = words.iter().map(|&w| f32::from_bits(w as u32)).collect();
        xs.extend(specials());
        let scale = f64::powi(2.0, sexp) * mantissa;
        for fmt in table2_formats() {
            assert_lut_levels_match_map(fmt.as_ref(), &xs, scale);
        }
    }

    #[test]
    fn degenerate_scales_fall_back_identically(
        words in prop::collection::vec(any::<u64>(), LUT_MIN_LEN),
    ) {
        // Scales the LUT cannot represent must still agree bit-for-bit
        // (the engine falls back to the scalar path).
        let xs: Vec<f32> = words.iter().map(|&w| f32::from_bits(w as u32)).collect();
        for &scale in &[0.0, -1.0, f64::INFINITY, f64::NAN, 1e-320, 4e307] {
            for fmt in table2_formats() {
                assert_bit_identical(fmt.as_ref(), &xs, scale);
            }
        }
    }
}

#[test]
fn crowded_probe_scales_match_on_every_simd_tier() {
    // Subnormal-range scales push every format cut into the f32
    // subnormal binades, where the linear coarse-bucket grid collapses:
    // one bucket holds (nearly) every region and `probe_len` climbs past
    // 100 — far beyond the vector kernel's bounded-probe cutoff, so the
    // slice codec must take the whole-slice scalar fallback and still
    // match `map` exactly. The assertion on `probe_len` keeps this test
    // honest: if the bucket grid ever changes, it fails loudly rather
    // than silently testing the fast path twice.
    let mut xs: Vec<f32> = (0u32..1500)
        .map(|i| {
            let mag = i.wrapping_mul(0x9E37_79B9) & 0x00ff_ffff; // subnormal/small-normal bits
            let sign = u32::from(i % 2 == 1) << 31;
            f32::from_bits(mag | sign)
        })
        .collect();
    xs.extend(specials());

    let mut crowded_seen = 0u32;
    for &scale in &[5e-42f64, 1e-41] {
        for fmt in table2_formats() {
            if let Some(lut) = QuantLut::build(&fmt.quant_spec(), scale) {
                if lut.probe_len() > 8 {
                    crowded_seen += 1;
                }
            }
            assert_lut_levels_match_map(fmt.as_ref(), &xs, scale);
            assert_bit_identical(fmt.as_ref(), &xs, scale);
        }
    }
    assert!(
        crowded_seen >= 4,
        "expected several crowded-bucket LUTs (probe_len > 8), saw {crowded_seen}"
    );
}
