//! Property-based tests over the format implementations: invariants that
//! must hold for every configuration and every input.

use mersit_core::{
    table2_formats, Format, Fp8, Int8, Mersit, Posit, PositFlavor, UnderflowPolicy, ValueClass,
};
use proptest::prelude::*;

/// All 8-bit configurations the paper evaluates, boxed.
fn all_formats() -> Vec<mersit_core::FormatRef> {
    let mut v = table2_formats();
    v.push(std::sync::Arc::new(Posit::standard(8, 1).unwrap()));
    v.push(std::sync::Arc::new(Mersit::new(8, 1).unwrap()));
    v
}

proptest! {
    /// `quantize` is idempotent: re-quantizing a representable value is a no-op.
    #[test]
    fn quantize_idempotent(x in -2000.0f64..2000.0) {
        for f in all_formats() {
            let q = f.quantize(x);
            prop_assert_eq!(f.quantize(q), q, "{} at {}", f.name(), x);
        }
    }

    /// Quantization error is at most half the local step (nearest rounding),
    /// bounded by half an ulp at the format's worst in-range precision.
    #[test]
    fn quantize_is_nearest(x in 1e-3f64..100.0) {
        for f in all_formats() {
            if x > f.max_finite() { continue; }
            let q = f.quantize(x);
            // The next / previous representable values must not be closer.
            let better: Vec<f64> = f.codes()
                .filter(|&c| f.classify(c as u16) == ValueClass::Finite)
                .map(|c| f.decode(c as u16))
                .filter(|v| (v - x).abs() < (q - x).abs() - 1e-15)
                .collect();
            prop_assert!(better.is_empty(),
                "{}: {} quantized to {} but {:?} are closer", f.name(), x, q, better);
        }
    }

    /// Quantization is odd-symmetric: q(−x) = −q(x) for every format
    /// (all lattices are sign-symmetric).
    #[test]
    fn quantize_odd_symmetry(x in 0.0f64..1500.0) {
        for f in all_formats() {
            prop_assert_eq!(f.quantize(-x), -f.quantize(x), "{}", f.name());
        }
    }

    /// Quantization is monotone non-decreasing.
    #[test]
    fn quantize_monotone(a in -1500.0f64..1500.0, b in -1500.0f64..1500.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for f in all_formats() {
            prop_assert!(f.quantize(lo) <= f.quantize(hi),
                "{}: q({}) > q({})", f.name(), lo, hi);
        }
    }

    /// Saturating formats never emit a value outside the finite range for
    /// finite input.
    #[test]
    fn finite_in_finite_out(x in -1e12f64..1e12) {
        for f in all_formats() {
            let q = f.quantize(x);
            prop_assert!(q.is_finite(), "{} produced {}", f.name(), q);
            prop_assert!(q.abs() <= f.max_finite());
        }
    }

    /// Posit-family formats never round a non-zero value to zero.
    #[test]
    fn posit_like_never_flushes(x in prop::num::f64::NORMAL) {
        for f in all_formats() {
            if f.underflow_policy() == UnderflowPolicy::SaturateToMinPos && x != 0.0 {
                prop_assert!(f.quantize(x) != 0.0,
                    "{} flushed {} to zero", f.name(), x);
            }
        }
    }

    /// Field decoding agrees with value decoding on every finite code.
    #[test]
    fn fields_match_decode(code in 0u16..256) {
        for f in all_formats() {
            if f.classify(code) == ValueClass::Finite {
                let d = f.fields(code).unwrap();
                let v = f.decode(code);
                prop_assert!((d.value() - v).abs() <= v.abs() * 1e-12,
                    "{} code {:#x}: fields say {}, decode says {}",
                    f.name(), code, d.value(), v);
            } else {
                prop_assert!(f.fields(code).is_none());
            }
        }
    }

    /// Standard and paper Posit agree on every positive finite magnitude.
    #[test]
    fn posit_flavors_share_lattice(code in 0u16..128) {
        for es in 0..=3u32 {
            let paper = Posit::new(8, es).unwrap();
            let std_ = Posit::with_flavor(8, es, PositFlavor::Standard).unwrap();
            if paper.classify(code) == ValueClass::Finite {
                prop_assert_eq!(paper.decode(code), std_.decode(code),
                    "es={} code={:#x}", es, code);
            }
        }
    }

    /// MERSIT pack/fields round-trip under arbitrary field choices.
    #[test]
    fn mersit_pack_fields_roundtrip(
        k in -3i32..=2,
        exp in 0u32..3,
        frac in 0u32..16,
        sign in any::<bool>(),
    ) {
        let m = Mersit::new(8, 2).unwrap();
        let fb = m.frac_bits_at(k);
        let frac = frac & ((1u32 << fb) - 1);
        let code = m.pack(sign, k, exp, frac);
        let d = m.fields(code).unwrap();
        prop_assert_eq!(d.regime, Some(k));
        prop_assert_eq!(d.exp_raw, exp);
        prop_assert_eq!(d.frac, frac);
        prop_assert_eq!(d.sign, sign);
    }

    /// INT8 quantize equals round-half-even clamped to ±127.
    #[test]
    fn int8_matches_reference(x in -300.0f64..300.0) {
        let i = Int8::new();
        let expect = x.round_ties_even().clamp(-127.0, 127.0);
        prop_assert_eq!(i.quantize(x), expect);
    }

    /// FP8 decode agrees with a f64 reconstruction from first principles.
    #[test]
    fn fp8_decode_reference(code in 0u16..256, e in 1u32..=6) {
        let f = Fp8::new(e).unwrap();
        let m = 7 - e;
        let bias = (1i32 << (e - 1)) - 1;
        let sign = if code & 0x80 != 0 { -1.0 } else { 1.0 };
        let ef = (u32::from(code) >> m) & ((1 << e) - 1);
        let fr = u32::from(code) & ((1 << m) - 1);
        let emax = (1u32 << e) - 1;
        if ef == emax {
            if fr == 0 {
                prop_assert_eq!(f.decode(code), sign * f64::INFINITY);
            } else {
                prop_assert!(f.decode(code).is_nan());
            }
        } else if ef == 0 {
            let expect = sign * f64::from(fr) * 2f64.powi(1 - bias - m as i32);
            prop_assert_eq!(f.decode(code), expect);
        } else {
            let expect = sign
                * (1.0 + f64::from(fr) / f64::from(1u32 << m))
                * 2f64.powi(ef as i32 - bias);
            prop_assert_eq!(f.decode(code), expect);
        }
    }
}

#[test]
fn mersit_value_count_matches_posit() {
    // Both MERSIT(8,2) and Posit(8,1) have 252 finite non-zero codes:
    // same code-space utilization, different allocation.
    for f in [
        &Mersit::new(8, 2).unwrap() as &dyn Format,
        &Posit::new(8, 1).unwrap(),
    ] {
        let finite = f
            .codes()
            .filter(|&c| f.classify(c as u16) == ValueClass::Finite)
            .count();
        assert_eq!(finite, 252, "{}", f.name());
    }
}

#[test]
fn every_format_decodes_all_256_codes_without_panic() {
    for f in all_formats() {
        for c in f.codes() {
            let _ = f.decode(c as u16);
            let _ = f.classify(c as u16);
            let _ = f.fields(c as u16);
        }
    }
}

/// Differential check: `encode` agrees with brute-force nearest-value
/// search over a dense magnitude grid, for every configuration.
#[test]
fn encode_matches_brute_force_nearest() {
    for f in all_formats() {
        // All positive finite lattice values.
        let lattice: Vec<f64> = f
            .codes()
            .filter(|&c| f.classify(c as u16) == ValueClass::Finite)
            .map(|c| f.decode(c as u16))
            .filter(|&v| v > 0.0)
            .collect();
        let max = f.max_finite();
        let mut x = max * 1e-5;
        while x < max {
            let q = f.quantize(x);
            let best = lattice
                .iter()
                .map(|&v| (v - x).abs())
                .fold(f64::INFINITY, f64::min);
            let got = (q - x).abs();
            // Nearest up to tie-breaking (and zero under FlushToZero).
            assert!(
                got <= best + 1e-12 || (q == 0.0 && x < lattice[0]),
                "{}: quantize({x}) = {q}, |err| {got} but nearest is {best}",
                f.name()
            );
            x *= 1.37;
        }
    }
}
