//! Textual enumeration of format code spaces — regenerates Table 1 of the
//! paper (the full MERSIT(8,2) decoding table) for any MERSIT configuration,
//! plus generic per-code dumps for any [`Format`].

use crate::fields::ValueClass;
use crate::format::Format;
use crate::mersit::Mersit;

/// One row of a Table-1-style decoding table.
#[derive(Debug, Clone, PartialEq)]
pub struct MersitTableRow {
    /// Magnitude bit pattern `b(n−2)…b0` (sign excluded), rendered with
    /// `x` for fraction positions, e.g. `"01101xx"`.
    pub pattern: String,
    /// Regime `k`, or `None` for the zero/∞ rows.
    pub k: Option<i32>,
    /// Exponent field value, or `None` for the zero/∞ rows.
    pub exp: Option<u32>,
    /// Effective exponent `(2^es−1)×k + exp`; `None` for zero/∞.
    pub exp_eff: Option<i32>,
    /// Number of fraction bits.
    pub frac_bits: u32,
    /// Special-row label: `"zero"` or `"±inf"`.
    pub special: Option<&'static str>,
}

/// Generates the full Table-1 enumeration for a MERSIT format:
/// one row per (k, exp) pair plus the zero and ±∞ rows, ordered by
/// ascending effective exponent exactly as the paper prints it.
///
/// # Examples
///
/// ```
/// use mersit_core::{Mersit, mersit_table};
///
/// let rows = mersit_table(&Mersit::new(8, 2)?);
/// assert_eq!(rows.len(), 20); // 18 (k,exp) rows + zero + ±inf
/// assert_eq!(rows[0].special, Some("zero"));
/// assert_eq!(rows[1].exp_eff, Some(-9));
/// assert_eq!(rows.last().unwrap().special, Some("±inf"));
/// # Ok::<(), mersit_core::InvalidFormatError>(())
/// ```
#[must_use]
pub fn mersit_table(m: &Mersit) -> Vec<MersitTableRow> {
    let nb = m.bits() - 1; // ks + body bits shown in Table 1
    let ones_pattern = |ks: u32| -> String {
        let mut s = String::new();
        s.push(if ks == 1 { '1' } else { '0' });
        for _ in 0..(m.bits() - 2) {
            s.push('1');
        }
        s
    };
    let mut rows = Vec::new();
    rows.push(MersitTableRow {
        pattern: ones_pattern(0),
        k: None,
        exp: None,
        exp_eff: None,
        frac_bits: 0,
        special: Some("zero"),
    });
    let scale = m.regime_scale();
    for k in m.regime_range() {
        let fb = m.frac_bits_at(k);
        for exp in 0..(1u32 << m.es()) - 1 {
            let code = m.pack(false, k, exp, 0);
            let mut pattern: String = format!("{:0width$b}", code, width = nb as usize);
            // Replace the fraction positions by 'x'.
            let len = pattern.len();
            pattern.replace_range((len - fb as usize)..len, &"x".repeat(fb as usize));
            rows.push(MersitTableRow {
                pattern,
                k: Some(k),
                exp: Some(exp),
                exp_eff: Some(scale * k + exp as i32),
                frac_bits: fb,
                special: None,
            });
        }
    }
    rows.sort_by_key(|r| r.exp_eff.unwrap_or(i32::MIN));
    rows.push(MersitTableRow {
        pattern: ones_pattern(1),
        k: None,
        exp: None,
        exp_eff: None,
        frac_bits: 0,
        special: Some("±inf"),
    });
    rows
}

/// Renders [`mersit_table`] as aligned text (the shape of Table 1).
#[must_use]
pub fn render_mersit_table(m: &Mersit) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} decoding table (x: fraction bits, es = {})\n",
        m.name(),
        m.es()
    ));
    out.push_str("pattern      k    exp   eff   frac-bits\n");
    for r in mersit_table(m) {
        if let Some(s) = r.special {
            out.push_str(&format!("{:<12} {:>28}\n", r.pattern, s));
        } else {
            out.push_str(&format!(
                "{:<12} {:>3}   {:>3}   {:>3}   {:>3}\n",
                r.pattern,
                r.k.unwrap(),
                r.exp.unwrap(),
                r.exp_eff.unwrap(),
                r.frac_bits
            ));
        }
    }
    out
}

/// One row of a generic code dump.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeRow {
    /// The code word.
    pub code: u16,
    /// Classification.
    pub class: ValueClass,
    /// Decoded value.
    pub value: f64,
}

/// Dumps every code of a format, ordered by code.
#[must_use]
pub fn code_dump(fmt: &dyn Format) -> Vec<CodeRow> {
    fmt.codes()
        .map(|c| {
            let code = c as u16;
            CodeRow {
                code,
                class: fmt.classify(code),
                value: fmt.decode(code),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_patterns_match_paper() {
        let m = Mersit::new(8, 2).unwrap();
        let rows = mersit_table(&m);
        let pats: Vec<&str> = rows.iter().map(|r| r.pattern.as_str()).collect();
        // Spot-check the exact printed patterns of Table 1.
        assert!(pats.contains(&"0111111")); // zero
        assert!(pats.contains(&"0111100")); // eff −9
        assert!(pats.contains(&"01101xx")); // eff −5
        assert!(pats.contains(&"000xxxx")); // eff −3
        assert!(pats.contains(&"100xxxx")); // eff 0
        assert!(pats.contains(&"11101xx")); // eff 4
        assert!(pats.contains(&"1111110")); // eff 8
        assert!(pats.contains(&"1111111")); // ±inf
    }

    #[test]
    fn table1_effs_ascend_from_minus9_to_8() {
        let m = Mersit::new(8, 2).unwrap();
        let effs: Vec<i32> = mersit_table(&m).iter().filter_map(|r| r.exp_eff).collect();
        assert_eq!(effs, (-9..=8).collect::<Vec<_>>());
    }

    #[test]
    fn render_contains_header_and_specials() {
        let m = Mersit::new(8, 2).unwrap();
        let s = render_mersit_table(&m);
        assert!(s.contains("MERSIT(8,2)"));
        assert!(s.contains("zero"));
        assert!(s.contains("±inf"));
    }

    #[test]
    fn code_dump_covers_full_space() {
        let m = Mersit::new(8, 2).unwrap();
        let d = code_dump(&m);
        assert_eq!(d.len(), 256);
        let finite = d.iter().filter(|r| r.class == ValueClass::Finite).count();
        // 256 − 2 zeros − 2 infinities
        assert_eq!(finite, 252);
    }
}
