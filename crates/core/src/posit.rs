//! The Posit(N,es) format of Gustafson & Yonemoto (Fig. 1b of the paper).
//!
//! Two flavors are provided:
//!
//! * [`PositFlavor::Paper`] — the variant the MERSIT paper describes:
//!   the MSB is a plain sign bit ("operates identically to that in
//!   floating-point data formats"), and the all-ones regime pattern is
//!   reserved for ±∞, mirroring MERSIT's `1111111₂ → ±∞` row. This gives
//!   the Posit(8,1) dynamic range `2^-12 … 2^10` and the Kulisch width
//!   `W = 2×(12+10)+1 = 45` the paper reports in Fig. 2.
//! * [`PositFlavor::Standard`] — the posit-standard encoding: negative
//!   values are the two's complement of their positive pattern and
//!   `1000…0` is NaR. Included for completeness; both flavors share the
//!   same positive magnitude lattice, so PTQ accuracy is identical.

use crate::error::InvalidFormatError;
use crate::fields::{exp2i, Decoded, ValueClass};
use crate::format::{EncodeTable, Format, TieRule, UnderflowPolicy};
use crate::quant_lut::{quantize_slice_cached, FormatCaches};
use std::sync::Arc;

/// Encoding flavor of [`Posit`]; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PositFlavor {
    /// Sign-magnitude, all-ones regime = ±∞ (the paper's description).
    #[default]
    Paper,
    /// Posit™-standard two's complement with NaR.
    Standard,
}

/// The Posit(N,es) number format.
///
/// # Examples
///
/// ```
/// use mersit_core::{Posit, Format};
///
/// let p = Posit::new(8, 1)?; // paper flavor by default
/// assert_eq!(p.name(), "Posit(8,1)");
/// assert_eq!(p.decode(0x40), 1.0);
/// assert_eq!(p.min_positive(), 2.0_f64.powi(-12));
/// assert_eq!(p.max_finite(), 2.0_f64.powi(10));
/// # Ok::<(), mersit_core::InvalidFormatError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Posit {
    bits: u32,
    es: u32,
    flavor: PositFlavor,
    table: EncodeTable,
    caches: FormatCaches,
}

/// Result of decoding the magnitude body of a posit word.
#[derive(Debug, Clone, Copy, PartialEq)]
struct BodyFields {
    k: i32,
    exp: u32,
    frac: u32,
    frac_bits: u32,
}

impl Posit {
    /// Creates a Posit(N,es) in the paper flavor (the reproduction default).
    ///
    /// # Errors
    ///
    /// Returns an error unless `3 <= bits <= 16` and `es <= 3`.
    pub fn new(bits: u32, es: u32) -> Result<Self, InvalidFormatError> {
        Self::with_flavor(bits, es, PositFlavor::Paper)
    }

    /// Creates a Posit(N,es) in the posit-standard two's-complement flavor.
    ///
    /// # Errors
    ///
    /// Same constraints as [`Posit::new`].
    pub fn standard(bits: u32, es: u32) -> Result<Self, InvalidFormatError> {
        Self::with_flavor(bits, es, PositFlavor::Standard)
    }

    /// Creates a Posit(N,es) with an explicit [`PositFlavor`].
    ///
    /// # Errors
    ///
    /// Returns an error unless `3 <= bits <= 16` and `es <= 3`.
    pub fn with_flavor(
        bits: u32,
        es: u32,
        flavor: PositFlavor,
    ) -> Result<Self, InvalidFormatError> {
        if !(3..=16).contains(&bits) {
            return Err(InvalidFormatError::new(format!(
                "posit bits must be in 3..=16, got {bits}"
            )));
        }
        if es > 3 {
            return Err(InvalidFormatError::new(format!(
                "posit es must be <= 3, got {es}"
            )));
        }
        let mut p = Self {
            bits,
            es,
            flavor,
            table: EncodeTable::empty(),
            caches: FormatCaches::new(),
        };
        p.table = EncodeTable::build(&p, TieRule::EvenCode, UnderflowPolicy::SaturateToMinPos);
        Ok(p)
    }

    /// The exponent-field size `es`.
    #[must_use]
    pub fn es(&self) -> u32 {
        self.es
    }

    /// The encoding flavor.
    #[must_use]
    pub fn flavor(&self) -> PositFlavor {
        self.flavor
    }

    fn body_mask(&self) -> u32 {
        (1u32 << (self.bits - 1)) - 1
    }

    /// Splits a code into (sign, magnitude-body). For the standard flavor a
    /// negative word is two's-complement negated first.
    fn sign_body(&self, code: u16) -> (bool, u32) {
        let mask = (1u32 << self.bits) - 1;
        let code = u32::from(code) & mask;
        let sign = (code >> (self.bits - 1)) & 1 == 1;
        let body = match self.flavor {
            PositFlavor::Paper => code & self.body_mask(),
            PositFlavor::Standard => {
                let mag = if sign {
                    code.wrapping_neg() & mask
                } else {
                    code
                };
                mag & self.body_mask()
            }
        };
        (sign, body)
    }

    /// Decodes the regime/exponent/fraction of a non-special body.
    fn decode_body(&self, body: u32) -> BodyFields {
        let nb = self.bits - 1; // body width
        debug_assert!(body != 0, "zero body is a special value");
        let first = (body >> (nb - 1)) & 1;
        // Length of the leading run of bits equal to `first`.
        let mut run = 0;
        while run < nb && (body >> (nb - 1 - run)) & 1 == first {
            run += 1;
        }
        let k = if first == 1 {
            run as i32 - 1
        } else {
            -(run as i32)
        };
        // Bits after the run and its terminator.
        let rem = nb.saturating_sub(run + 1);
        let tail = if rem == 0 { 0 } else { body & ((1 << rem) - 1) };
        let es_avail = self.es.min(rem);
        let frac_bits = rem - es_avail;
        let exp_hi = if es_avail == 0 {
            0
        } else {
            (tail >> frac_bits) & ((1 << es_avail) - 1)
        };
        // Truncated low exponent bits are zero (posit standard).
        let exp = exp_hi << (self.es - es_avail);
        let frac = if frac_bits == 0 {
            0
        } else {
            tail & ((1 << frac_bits) - 1)
        };
        BodyFields {
            k,
            exp,
            frac,
            frac_bits,
        }
    }

    /// Internal shared encoder table (exposed for analysis tooling).
    #[must_use]
    pub fn encode_table(&self) -> &EncodeTable {
        &self.table
    }
}

impl Format for Posit {
    fn name(&self) -> String {
        match self.flavor {
            PositFlavor::Paper => format!("Posit({},{})", self.bits, self.es),
            PositFlavor::Standard => format!("Posit-std({},{})", self.bits, self.es),
        }
    }

    fn bits(&self) -> u32 {
        self.bits
    }

    fn classify(&self, code: u16) -> ValueClass {
        let mask = (1u32 << self.bits) - 1;
        let c = u32::from(code) & mask;
        match self.flavor {
            PositFlavor::Paper => {
                let body = c & self.body_mask();
                if body == 0 {
                    ValueClass::Zero
                } else if body == self.body_mask() {
                    ValueClass::Infinite
                } else {
                    ValueClass::Finite
                }
            }
            PositFlavor::Standard => {
                if c == 0 {
                    ValueClass::Zero
                } else if c == 1 << (self.bits - 1) {
                    ValueClass::Nan // NaR
                } else {
                    ValueClass::Finite
                }
            }
        }
    }

    fn decode(&self, code: u16) -> f64 {
        match self.classify(code) {
            ValueClass::Zero => 0.0,
            ValueClass::Nan => f64::NAN,
            ValueClass::Infinite => {
                let (sign, _) = self.sign_body(code);
                if sign {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                }
            }
            ValueClass::Finite => {
                let (sign, body) = self.sign_body(code);
                let b = self.decode_body(body);
                let scale = exp2i(b.k * (1 << self.es) + b.exp as i32);
                let mag = scale * (1.0 + f64::from(b.frac) * exp2i(-(b.frac_bits as i32)));
                if sign {
                    -mag
                } else {
                    mag
                }
            }
        }
    }

    fn fields(&self, code: u16) -> Option<Decoded> {
        if self.classify(code) != ValueClass::Finite {
            return None;
        }
        let (sign, body) = self.sign_body(code);
        let b = self.decode_body(body);
        let max_fb = self.max_frac_bits();
        let sig_bits = max_fb + 1;
        // Left-align: hidden 1 at the MSB, fraction padded with zeros —
        // exactly what the hardware decoder's dynamic shifter produces.
        let sig = ((1 << b.frac_bits) | b.frac) << (max_fb - b.frac_bits);
        Some(Decoded {
            sign,
            regime: Some(b.k),
            exp_raw: b.exp,
            exp_eff: b.k * (1 << self.es) + b.exp as i32,
            sig,
            sig_bits,
            frac_bits: b.frac_bits,
            frac: b.frac,
        })
    }

    fn encode(&self, x: f64) -> u16 {
        let mask = (1u32 << self.bits) - 1;
        if x.is_nan() {
            return match self.flavor {
                // The paper flavor has no NaN; use +∞ as the error value.
                PositFlavor::Paper => self.body_mask() as u16,
                PositFlavor::Standard => (1 << (self.bits - 1)) as u16,
            };
        }
        if x == 0.0 {
            return 0;
        }
        let neg = x < 0.0;
        let mag = x.abs();
        let pos_code = if mag.is_infinite() {
            match self.flavor {
                PositFlavor::Paper => self.body_mask() as u16,
                // Standard posit maps ±∞ to NaR.
                PositFlavor::Standard => return (1 << (self.bits - 1)) as u16,
            }
        } else {
            // SaturateToMinPos ⇒ always Some for positive finite input.
            self.table
                .round_positive(mag)
                .expect("posit never underflows to zero")
        };
        if !neg {
            return pos_code;
        }
        match self.flavor {
            PositFlavor::Paper => pos_code | (1 << (self.bits - 1)) as u16,
            PositFlavor::Standard => (u32::from(pos_code).wrapping_neg() & mask) as u16,
        }
    }

    fn max_finite(&self) -> f64 {
        self.table.max_finite()
    }

    fn min_positive(&self) -> f64 {
        self.table.min_positive()
    }

    fn underflow_policy(&self) -> UnderflowPolicy {
        UnderflowPolicy::SaturateToMinPos
    }

    fn max_frac_bits(&self) -> u32 {
        // Shortest regime (run of 1) leaves n−3 tail bits, minus es.
        (self.bits - 3).saturating_sub(self.es)
    }

    fn quantize_slice(&self, xs: &mut [f32], scale: f64) {
        quantize_slice_cached(self, &self.caches, xs, scale);
    }

    fn scale_anchor(&self) -> f64 {
        self.caches.anchor(self)
    }

    fn precision_profile(&self) -> Arc<crate::profile::PrecisionProfile> {
        self.caches.profile(self)
    }

    fn quant_spec(&self) -> Arc<crate::quant_lut::QuantSpec> {
        self.caches.spec(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_configs() {
        assert!(Posit::new(2, 1).is_err());
        assert!(Posit::new(17, 1).is_err());
        assert!(Posit::new(8, 4).is_err());
    }

    #[test]
    fn paper_posit81_dynamic_range() {
        let p = Posit::new(8, 1).unwrap();
        // Fig. 2: dynamic range 2^-12 .. 2^10 (all-ones regime reserved for ∞)
        assert_eq!(p.min_positive(), 2.0_f64.powi(-12));
        assert_eq!(p.max_finite(), 2.0_f64.powi(10));
        assert_eq!(p.max_frac_bits(), 4);
    }

    #[test]
    fn standard_posit81_dynamic_range() {
        let p = Posit::standard(8, 1).unwrap();
        // Standard posit keeps the unterminated all-ones regime as maxpos 2^12.
        assert_eq!(p.max_finite(), 2.0_f64.powi(12));
        assert_eq!(p.min_positive(), 2.0_f64.powi(-12));
    }

    #[test]
    fn decode_known_codes() {
        let p = Posit::new(8, 1).unwrap();
        assert_eq!(p.decode(0x40), 1.0); // 0 10 0 0000
        assert_eq!(p.decode(0b0_10_1_0000), 2.0);
        assert_eq!(p.decode(0b0_10_0_1000), 1.5);
        assert_eq!(p.decode(0b0_0000001), 2.0_f64.powi(-12));
        assert_eq!(p.decode(0b0_1111110), 2.0_f64.powi(10));
        assert_eq!(p.decode(0b0_1111111), f64::INFINITY);
        assert_eq!(p.decode(0b1_1111111), f64::NEG_INFINITY);
        assert_eq!(p.decode(0b1_10_0_0000), -1.0);
        assert_eq!(p.decode(0), 0.0);
    }

    #[test]
    fn standard_negatives_are_twos_complement() {
        let p = Posit::standard(8, 1).unwrap();
        assert_eq!(p.decode(0x40), 1.0);
        assert_eq!(p.decode(0xC0), -1.0); // two's complement of 0x40
        assert!(p.decode(0x80).is_nan()); // NaR
        assert_eq!(p.encode(-1.0), 0xC0);
        assert_eq!(p.encode(f64::INFINITY), 0x80);
    }

    #[test]
    fn posit80_and_posit82_ranges() {
        let p0 = Posit::new(8, 0).unwrap();
        assert_eq!(p0.min_positive(), 2.0_f64.powi(-6));
        assert_eq!(p0.max_finite(), 2.0_f64.powi(5));
        let p2 = Posit::new(8, 2).unwrap();
        assert_eq!(p2.min_positive(), 2.0_f64.powi(-24));
        assert_eq!(p2.max_finite(), 2.0_f64.powi(20));
        let p3 = Posit::new(8, 3).unwrap();
        assert_eq!(p3.min_positive(), 2.0_f64.powi(-48));
        assert_eq!(p3.max_finite(), 2.0_f64.powi(40));
    }

    #[test]
    fn round_trip_all_finite_codes_both_flavors() {
        for es in 0..=3 {
            for flavor in [PositFlavor::Paper, PositFlavor::Standard] {
                let p = Posit::with_flavor(8, es, flavor).unwrap();
                for code in p.codes() {
                    let code = code as u16;
                    if p.classify(code) != ValueClass::Finite {
                        continue;
                    }
                    let v = p.decode(code);
                    assert_eq!(p.decode(p.encode(v)), v, "{} code {code:#x}", p.name());
                }
            }
        }
    }

    #[test]
    fn never_underflows_to_zero() {
        let p = Posit::new(8, 1).unwrap();
        assert_eq!(p.quantize(1e-300), 2.0_f64.powi(-12));
        assert_eq!(p.quantize(-1e-300), -(2.0_f64.powi(-12)));
    }

    #[test]
    fn truncated_exponent_field() {
        // Posit(8,2): body 111110x leaves one exponent bit = exp MSB.
        let p = Posit::new(8, 2).unwrap();
        // 0 111110 1 → k=4, es_avail=1, exp = 1<<1 = 2 → 2^(16+2)
        assert_eq!(p.decode(0b0_111110_1), 2.0_f64.powi(18));
        // 0 111110 0 → 2^16
        assert_eq!(p.decode(0b0_111110_0), 2.0_f64.powi(16));
    }

    #[test]
    fn fields_left_aligned_significand() {
        let p = Posit::new(8, 1).unwrap();
        // 1.5 = 0 10 0 1000 : frac=8/16, fb=4, sig = 11000
        let d = p.fields(0b0_10_0_1000).unwrap();
        assert_eq!(d.sig, 0b11000);
        assert_eq!(d.sig_bits, 5);
        assert_eq!(d.exp_eff, 0);
        assert_eq!(d.value(), 1.5);
        // 2^10 (no fraction bits): sig = 10000
        let d = p.fields(0b0_1111110).unwrap();
        assert_eq!(d.sig, 0b10000);
        assert_eq!(d.exp_eff, 10);
        assert_eq!(d.regime, Some(5));
    }

    #[test]
    fn encode_is_nearest_value() {
        let p = Posit::new(8, 1).unwrap();
        // Between 1.0 and 1.0625 (1 + 1/16): 1.03 → 1.0625 is 0.0325 away, 1.0 is 0.03 → 1.0
        assert_eq!(p.quantize(1.03), 1.0);
        assert_eq!(p.quantize(1.04), 1.0625);
    }
}
