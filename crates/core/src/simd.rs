//! Runtime SIMD tier selection shared by every vectorized kernel.
//!
//! The workspace carries explicit `std::arch` micro-kernels (the f32 GEMM
//! and integer qgemm in `mersit-tensor`, the [`crate::QuantLut`] probe in
//! this crate). All of them dispatch through one process-wide tier,
//! detected **once** and cached in a `OnceLock` — never per kernel call —
//! and overridable by the `MERSIT_SIMD` environment variable:
//!
//! | value                    | effect                                    |
//! |--------------------------|-------------------------------------------|
//! | unset, `1`, `on`, `auto` | best tier the host supports (default)     |
//! | `0`, `off`, `scalar`     | force the scalar reference kernels        |
//! | `neon` / `avx2` / `avx512` | best *available* tier not above that one |
//!
//! Tiers are totally ordered `Scalar < Neon < Avx2 < Avx512` so a named
//! request clamps downward on hosts that cannot honor it (e.g.
//! `MERSIT_SIMD=avx512` on an AVX2-only box selects AVX2; `neon` on
//! x86_64 selects scalar). Unrecognized values fall back to auto-detect.
//!
//! # Bit-identity contract
//!
//! Selecting a tier never changes a single output bit: every SIMD kernel
//! in the workspace is proven bit-identical to its scalar reference by
//! the `gemm_props` / `qgemm_props` / `quant_slice_props` harnesses,
//! which sweep all tiers supported by the host. `MERSIT_SIMD=0` exists as
//! a kill-switch for debugging and differential testing, not because the
//! outputs differ.

use std::sync::OnceLock;

/// One SIMD capability tier. Ordered: a kernel compiled for a tier may be
/// selected whenever the active tier is `>=` it (and the architecture
/// matches).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum SimdLevel {
    /// Portable scalar Rust — the bit-identity reference, always present.
    Scalar = 0,
    /// aarch64 Advanced SIMD (128-bit).
    Neon = 1,
    /// x86_64 AVX2 (256-bit; all AVX2 hosts also carry FMA, which the
    /// kernels deliberately do **not** use — see the tensor `simd` docs).
    Avx2 = 2,
    /// x86_64 AVX-512F (512-bit).
    Avx512 = 3,
}

impl SimdLevel {
    /// Stable lowercase name, used in report headers and obs counters.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Neon => "neon",
            Self::Avx2 => "avx2",
            Self::Avx512 => "avx512",
        }
    }
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Best tier the host CPU supports, ignoring `MERSIT_SIMD`.
#[must_use]
pub fn detected_level() -> SimdLevel {
    static DETECTED: OnceLock<SimdLevel> = OnceLock::new();
    *DETECTED.get_or_init(detect)
}

#[allow(unreachable_code)] // each target keeps exactly one arm
fn detect() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") {
            return SimdLevel::Avx512;
        }
        if is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
        return SimdLevel::Scalar;
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return SimdLevel::Neon;
        }
        return SimdLevel::Scalar;
    }
    #[allow(unreachable_code)]
    SimdLevel::Scalar
}

/// Parses a `MERSIT_SIMD` value against the detected tier.
fn parse(raw: &str, detected: SimdLevel) -> SimdLevel {
    let requested = match raw.trim().to_ascii_lowercase().as_str() {
        "0" | "off" | "scalar" | "none" => SimdLevel::Scalar,
        "neon" => SimdLevel::Neon,
        "avx2" => SimdLevel::Avx2,
        "avx512" => SimdLevel::Avx512,
        _ => detected, // "", "1", "on", "auto", unrecognized
    };
    // Clamp to the best tier the host actually has, never above the
    // request: the active tier must always be runnable.
    best_at_most(requested, detected)
}

/// Best host-supported tier that does not exceed `cap`.
fn best_at_most(cap: SimdLevel, detected: SimdLevel) -> SimdLevel {
    available_levels()
        .iter()
        .copied()
        .filter(|&l| l <= cap && l <= detected)
        .max()
        .unwrap_or(SimdLevel::Scalar)
}

/// Every tier this host can execute, ascending, always starting with
/// [`SimdLevel::Scalar`]. This is what the property-test harnesses sweep
/// so each supported kernel is differentially tested in-process.
#[must_use]
pub fn available_levels() -> &'static [SimdLevel] {
    static LEVELS: OnceLock<Vec<SimdLevel>> = OnceLock::new();
    LEVELS.get_or_init(|| {
        let mut levels = vec![SimdLevel::Scalar];
        let detected = detected_level();
        for l in [SimdLevel::Neon, SimdLevel::Avx2, SimdLevel::Avx512] {
            if l <= detected {
                levels.push(l);
            }
        }
        levels
    })
}

/// The process-wide active tier: detection ∧ `MERSIT_SIMD`, computed once.
///
/// Read this at kernel dispatch time; it is one relaxed atomic load after
/// the first call. Tests that need other tiers use the explicit
/// `*_with_level` kernel entry points instead of mutating the
/// environment (the latch is deliberately process-wide so production
/// call sites never re-parse).
#[must_use]
pub fn simd_level() -> SimdLevel {
    static ACTIVE: OnceLock<SimdLevel> = OnceLock::new();
    *ACTIVE.get_or_init(|| match std::env::var("MERSIT_SIMD") {
        Ok(raw) => parse(&raw, detected_level()),
        Err(_) => detected_level(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_switch_values_force_scalar() {
        for raw in ["0", "off", "OFF", "scalar", " Scalar ", "none"] {
            assert_eq!(parse(raw, detected_level()), SimdLevel::Scalar, "{raw:?}");
        }
    }

    #[test]
    fn auto_values_select_detected() {
        for raw in ["1", "on", "auto", "", "bogus"] {
            assert_eq!(parse(raw, detected_level()), detected_level(), "{raw:?}");
        }
    }

    #[test]
    fn named_tiers_clamp_to_available() {
        let detected = detected_level();
        for raw in ["neon", "avx2", "avx512"] {
            let level = parse(raw, detected);
            assert!(
                level <= detected,
                "{raw}: {level} above detected {detected}"
            );
            assert!(
                available_levels().contains(&level),
                "{raw}: {level} not runnable here"
            );
        }
    }

    #[test]
    fn available_levels_start_scalar_and_end_detected() {
        let levels = available_levels();
        assert_eq!(levels.first(), Some(&SimdLevel::Scalar));
        assert_eq!(levels.last(), Some(&detected_level()));
        assert!(levels.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
    }

    #[test]
    fn active_level_is_runnable() {
        assert!(available_levels().contains(&simd_level()));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(SimdLevel::Scalar.name(), "scalar");
        assert_eq!(SimdLevel::Neon.name(), "neon");
        assert_eq!(SimdLevel::Avx2.name(), "avx2");
        assert_eq!(SimdLevel::Avx512.name(), "avx512");
        assert_eq!(SimdLevel::Avx512.to_string(), "avx512");
    }
}
