//! MAC sizing parameters per format — the table embedded in Fig. 2.
//!
//! For a format with dynamic range `2^e_min … ~2^e_max` the Kulisch-style
//! MAC of §2.2 needs:
//!
//! * `P`  — signed width of the decoded effective exponent,
//! * `M`  — width of the effective significand (hidden bit included),
//! * `W = 2×(|e_min| + e_max) + 1` — fixed-point accumulator span covering
//!   the full product range (plus an overflow margin `V` chosen at
//!   instantiation time).
//!
//! Paper values reproduced exactly: FP(8,4) → 33 bits, Posit(8,1) → 45 bits,
//! MERSIT(8,2) → 35 bits.

use crate::format::Format;
use std::fmt;

/// Sizing parameters of a MAC unit specialized to one format (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacParams {
    /// Exponent of the smallest positive magnitude (`min_positive = 2^e_min`).
    pub e_min: i32,
    /// Floor of the log2 of the largest finite magnitude.
    pub e_max: i32,
    /// Signed bit-width of the decoded effective exponent (`P`).
    pub p: u32,
    /// Significand width including the hidden bit (`M`).
    pub m: u32,
    /// Kulisch accumulator span `W = 2(|e_min| + e_max) + 1`.
    pub w: u32,
}

impl MacParams {
    /// Derives the MAC parameters of `fmt`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mersit_core::{MacParams, Mersit, Posit, Fp8};
    ///
    /// assert_eq!(MacParams::of(&Fp8::new(4)?).w, 33);
    /// assert_eq!(MacParams::of(&Posit::new(8, 1)?).w, 45);
    /// assert_eq!(MacParams::of(&Mersit::new(8, 2)?).w, 35);
    /// # Ok::<(), mersit_core::InvalidFormatError>(())
    /// ```
    #[must_use]
    pub fn of(fmt: &dyn Format) -> Self {
        let e_min = fmt.min_positive().log2().floor() as i32;
        let e_max = fmt.max_finite().log2().floor() as i32;
        let p = signed_width(e_min).max(signed_width(e_max));
        let m = fmt.max_frac_bits() + 1;
        let w = (2 * (e_max - e_min) + 1) as u32;
        Self {
            e_min,
            e_max,
            p,
            m,
            w,
        }
    }

    /// Width of the fraction multiplier product, `2M`.
    #[must_use]
    pub fn product_bits(&self) -> u32 {
        2 * self.m
    }

    /// Accumulator width including an overflow margin of `v` bits
    /// (the `W + V` of Fig. 2).
    #[must_use]
    pub fn acc_bits(&self, v: u32) -> u32 {
        self.w + v
    }
}

impl fmt::Display for MacParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "range 2^{}..2^{}  P={}  M={}  W=2x({}+{})+1={} bits",
            self.e_min, self.e_max, self.p, self.m, -self.e_min, self.e_max, self.w
        )
    }
}

/// Minimal signed two's-complement width holding `v`.
fn signed_width(v: i32) -> u32 {
    let mut w = 1;
    while !((-(1i64 << (w - 1)))..(1i64 << (w - 1))).contains(&i64::from(v)) {
        w += 1;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fp8, Mersit, Posit};

    #[test]
    fn fig2_table_values() {
        // FP(8,4): 2^-9..2^7, P=5, M=4, W=33
        let fp = MacParams::of(&Fp8::new(4).unwrap());
        assert_eq!((fp.e_min, fp.e_max, fp.p, fp.m, fp.w), (-9, 7, 5, 4, 33));
        // Posit(8,1): 2^-12..2^10, P=5, M=5, W=45
        let po = MacParams::of(&Posit::new(8, 1).unwrap());
        assert_eq!((po.e_min, po.e_max, po.p, po.m, po.w), (-12, 10, 5, 5, 45));
        // MERSIT(8,2): 2^-9..2^8, P=5, M=5, W=35
        let me = MacParams::of(&Mersit::new(8, 2).unwrap());
        assert_eq!((me.e_min, me.e_max, me.p, me.m, me.w), (-9, 8, 5, 5, 35));
    }

    #[test]
    fn acc_and_product_widths() {
        let me = MacParams::of(&Mersit::new(8, 2).unwrap());
        assert_eq!(me.product_bits(), 10);
        assert_eq!(me.acc_bits(4), 39);
    }

    #[test]
    fn signed_width_edges() {
        assert_eq!(signed_width(0), 1);
        assert_eq!(signed_width(-1), 1);
        assert_eq!(signed_width(1), 2);
        assert_eq!(signed_width(-16), 5);
        assert_eq!(signed_width(15), 5);
        assert_eq!(signed_width(16), 6);
    }
}
