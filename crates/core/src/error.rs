//! Error types for format construction.

use std::error::Error;
use std::fmt;

/// Error returned when a format configuration is invalid.
///
/// # Examples
///
/// ```
/// use mersit_core::Mersit;
///
/// // 7 body bits cannot be split into 2-bit exponent candidates.
/// assert!(Mersit::new(9, 2).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidFormatError {
    message: String,
}

impl InvalidFormatError {
    /// Creates an error with the given message (also usable by downstream
    /// crates that extend the format family).
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for InvalidFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid format configuration: {}", self.message)
    }
}

impl Error for InvalidFormatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = InvalidFormatError::new("es too large");
        assert_eq!(e.to_string(), "invalid format configuration: es too large");
    }
}
