//! # mersit-core — bit-exact 8-bit data formats for post-training quantization
//!
//! This crate reproduces the number systems studied in *"MERSIT: A
//! Hardware-Efficient 8-bit Data Format with Enhanced Post-Training
//! Quantization DNN Accuracy"* (DAC 2024):
//!
//! * [`Mersit`] — the paper's contribution: a Posit-like format whose
//!   regime and exponent are merged into multi-bit *exponent candidates*,
//!   enabling cheap grouped decoding (§3, Table 1).
//! * [`Posit`] — Posit(N,es), in both the paper's sign-magnitude flavor
//!   and the standard two's-complement flavor.
//! * [`Fp8`] — configurable-exponent minifloat FP(N,E) with subnormals.
//! * [`Int8`] — the symmetric integer baseline.
//!
//! All formats implement the common [`Format`] trait (decode / classify /
//! field extraction / round-to-nearest encode), so PTQ pipelines and
//! hardware models can treat them uniformly.
//!
//! ## Quick example
//!
//! ```
//! use mersit_core::{Format, Mersit, Posit, Fp8, MacParams};
//!
//! let mersit = Mersit::new(8, 2)?;
//! let posit = Posit::new(8, 1)?;
//! let fp8 = Fp8::new(4)?;
//!
//! // Quantize a real number through each format:
//! let x = 0.3713;
//! assert!((mersit.quantize(x) - x).abs() < 0.02);
//!
//! // The Kulisch MAC sizing of Fig. 2:
//! assert_eq!(MacParams::of(&fp8).w, 33);
//! assert_eq!(MacParams::of(&posit).w, 45);
//! assert_eq!(MacParams::of(&mersit).w, 35);
//! # Ok::<(), mersit_core::InvalidFormatError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_possible_wrap,
    clippy::cast_precision_loss,
    clippy::must_use_candidate,
    clippy::module_name_repetitions,
    clippy::doc_markdown,
    clippy::float_cmp,
    clippy::format_push_string,
    clippy::many_single_char_names,
    clippy::unreadable_literal,
    clippy::match_same_arms,
    clippy::missing_panics_doc,
    clippy::unusual_byte_groupings,
    clippy::too_many_lines,
    clippy::cast_lossless
)]

pub mod error;
pub mod fields;
pub mod fixpoint;
pub mod format;
pub mod fp8;
pub mod int8;
pub mod mac_params;
pub mod mersit;
pub mod posit;
pub mod profile;
pub mod quant_lut;
pub mod registry;
pub mod simd;
pub mod tables;

pub use error::InvalidFormatError;
pub use fields::{Decoded, ValueClass};
pub use fixpoint::{ceil_log2, v_ovf_for, wrap_i128, FixTable, DEFAULT_V_OVF};
pub use format::{EncodeTable, Format, LatticePoint, TieRule, UnderflowPolicy};
pub use fp8::Fp8;
pub use int8::Int8;
pub use mac_params::MacParams;
pub use mersit::Mersit;
pub use posit::{Posit, PositFlavor};
pub use profile::{BinadePrecision, PrecisionProfile};
pub use quant_lut::{
    compute_scale_anchor, quantize_slice_cached, quantize_slice_scalar, FormatCaches, QuantLut,
    QuantSpec, LUT_MIN_LEN,
};
pub use registry::{fig4_formats, hardware_formats, parse_format, table2_formats, FormatRef};
pub use simd::{available_levels, detected_level, simd_level, SimdLevel};
pub use tables::{code_dump, mersit_table, render_mersit_table, CodeRow, MersitTableRow};
