//! Configurable-exponent minifloat: the FP(8,E) family of the paper (Fig. 1a).
//!
//! FP8 is not IEEE-standardized; the paper parameterizes it by the number of
//! exponent bits `E` and writes a configuration as FP(8,E). This module
//! implements the general `FP(N,E)` minifloat with:
//!
//! * bias `2^(E−1) − 1`,
//! * subnormal numbers when the exponent field is zero (this is how FP8
//!   "offers a wider exponent range using subnormal representation"),
//! * the all-ones exponent reserved for ±Inf (fraction 0) and NaN.

use crate::error::InvalidFormatError;
use crate::fields::{exp2i, Decoded, ValueClass};
use crate::format::{EncodeTable, Format, TieRule, UnderflowPolicy};
use crate::quant_lut::{quantize_slice_cached, FormatCaches};
use std::sync::Arc;

/// The FP(N,E) minifloat format. `Fp8::new(E)` gives the paper's FP(8,E).
///
/// # Examples
///
/// ```
/// use mersit_core::{Fp8, Format};
///
/// let f = Fp8::new(4)?; // FP(8,4): 1 sign, 4 exponent, 3 fraction bits
/// assert_eq!(f.name(), "FP(8,4)");
/// assert_eq!(f.min_positive(), 2.0_f64.powi(-9)); // min subnormal
/// assert_eq!(f.max_finite(), 1.875 * 2.0_f64.powi(7));
/// # Ok::<(), mersit_core::InvalidFormatError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Fp8 {
    bits: u32,
    exp_bits: u32,
    table: EncodeTable,
    caches: FormatCaches,
}

impl Fp8 {
    /// Creates the 8-bit FP(8,E) format.
    ///
    /// # Errors
    ///
    /// Returns an error unless `1 <= exp_bits <= 6`.
    pub fn new(exp_bits: u32) -> Result<Self, InvalidFormatError> {
        Self::with_bits(8, exp_bits)
    }

    /// Creates a general FP(N,E) minifloat with `bits` total bits.
    ///
    /// # Errors
    ///
    /// Returns an error unless `3 <= bits <= 16` and
    /// `1 <= exp_bits <= bits − 2`.
    pub fn with_bits(bits: u32, exp_bits: u32) -> Result<Self, InvalidFormatError> {
        if !(3..=16).contains(&bits) {
            return Err(InvalidFormatError::new(format!(
                "FP bits must be in 3..=16, got {bits}"
            )));
        }
        if exp_bits == 0 || exp_bits > bits - 2 {
            return Err(InvalidFormatError::new(format!(
                "FP({bits},E) needs 1 <= E <= {}, got {exp_bits}",
                bits - 2
            )));
        }
        let mut f = Self {
            bits,
            exp_bits,
            table: EncodeTable::empty(),
            caches: FormatCaches::new(),
        };
        f.table = EncodeTable::build(&f, TieRule::EvenFraction, UnderflowPolicy::FlushToZero);
        Ok(f)
    }

    /// Number of exponent bits `E`.
    #[must_use]
    pub fn exp_bits(&self) -> u32 {
        self.exp_bits
    }

    /// Number of fraction bits `M = N − 1 − E`.
    #[must_use]
    pub fn frac_bits(&self) -> u32 {
        self.bits - 1 - self.exp_bits
    }

    /// Exponent bias, `2^(E−1) − 1`.
    #[must_use]
    pub fn bias(&self) -> i32 {
        (1i32 << (self.exp_bits - 1)) - 1
    }

    /// The canonical NaN code (all-ones exponent, fraction LSB set, sign 0).
    #[must_use]
    pub fn nan_code(&self) -> u16 {
        let m = self.frac_bits();
        (((1u16 << self.exp_bits) - 1) << m) | 1
    }

    /// The +∞ code (all-ones exponent, zero fraction, sign 0).
    #[must_use]
    pub fn inf_code(&self) -> u16 {
        ((1u16 << self.exp_bits) - 1) << self.frac_bits()
    }

    fn split(&self, code: u16) -> (bool, u32, u32) {
        let code = u32::from(code) & ((1u32 << self.bits) - 1);
        let m = self.frac_bits();
        let sign = (code >> (self.bits - 1)) & 1 == 1;
        let e = (code >> m) & ((1 << self.exp_bits) - 1);
        let f = code & ((1 << m) - 1);
        (sign, e, f)
    }

    /// Internal shared encoder table (exposed for analysis tooling).
    #[must_use]
    pub fn encode_table(&self) -> &EncodeTable {
        &self.table
    }
}

impl Format for Fp8 {
    fn name(&self) -> String {
        format!("FP({},{})", self.bits, self.exp_bits)
    }

    fn bits(&self) -> u32 {
        self.bits
    }

    fn classify(&self, code: u16) -> ValueClass {
        let (_, e, f) = self.split(code);
        let emax = (1u32 << self.exp_bits) - 1;
        if e == emax {
            if f == 0 {
                ValueClass::Infinite
            } else {
                ValueClass::Nan
            }
        } else if e == 0 && f == 0 {
            ValueClass::Zero
        } else {
            ValueClass::Finite
        }
    }

    fn decode(&self, code: u16) -> f64 {
        let (sign, e, f) = self.split(code);
        let m = self.frac_bits();
        let emax = (1u32 << self.exp_bits) - 1;
        let mag = if e == emax {
            if f == 0 {
                f64::INFINITY
            } else {
                return f64::NAN;
            }
        } else if e == 0 {
            // subnormal: 0.f × 2^(1−bias)
            f64::from(f) * exp2i(1 - self.bias() - m as i32)
        } else {
            (1.0 + f64::from(f) * exp2i(-(m as i32))) * exp2i(e as i32 - self.bias())
        };
        if sign {
            -mag
        } else {
            mag
        }
    }

    fn fields(&self, code: u16) -> Option<Decoded> {
        if self.classify(code) != ValueClass::Finite {
            return None;
        }
        let (sign, e, f) = self.split(code);
        let m = self.frac_bits();
        let (exp_eff, sig) = if e == 0 {
            (1 - self.bias(), f) // hidden bit 0, unnormalized
        } else {
            (e as i32 - self.bias(), (1 << m) | f)
        };
        Some(Decoded {
            sign,
            regime: None,
            exp_raw: e,
            exp_eff,
            sig,
            sig_bits: m + 1,
            frac_bits: m,
            frac: f,
        })
    }

    fn encode(&self, x: f64) -> u16 {
        if x.is_nan() {
            return self.nan_code();
        }
        let sign_bit = 1u16 << (self.bits - 1);
        let (neg, mag) = (x.is_sign_negative(), x.abs());
        if mag == 0.0 {
            return 0;
        }
        let code = if mag.is_infinite() {
            self.inf_code()
        } else {
            match self.table.round_positive(mag) {
                Some(c) => c,
                None => return if neg { sign_bit } else { 0 },
            }
        };
        if neg {
            code | sign_bit
        } else {
            code
        }
    }

    fn max_finite(&self) -> f64 {
        self.table.max_finite()
    }

    fn min_positive(&self) -> f64 {
        self.table.min_positive()
    }

    fn max_frac_bits(&self) -> u32 {
        self.frac_bits()
    }

    fn quantize_slice(&self, xs: &mut [f32], scale: f64) {
        quantize_slice_cached(self, &self.caches, xs, scale);
    }

    fn scale_anchor(&self) -> f64 {
        self.caches.anchor(self)
    }

    fn precision_profile(&self) -> Arc<crate::profile::PrecisionProfile> {
        self.caches.profile(self)
    }

    fn quant_spec(&self) -> Arc<crate::quant_lut::QuantSpec> {
        self.caches.spec(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_configs() {
        assert!(Fp8::new(0).is_err());
        assert!(Fp8::new(7).is_err());
        assert!(Fp8::with_bits(2, 1).is_err());
        assert!(Fp8::with_bits(17, 5).is_err());
    }

    #[test]
    fn fp8_e4_parameters() {
        let f = Fp8::new(4).unwrap();
        assert_eq!(f.frac_bits(), 3);
        assert_eq!(f.bias(), 7);
        // Paper Fig. 2: FP(8,4) dynamic range 2^-9 .. 2^7
        assert_eq!(f.min_positive(), 2.0_f64.powi(-9));
        assert_eq!(f.max_finite(), 1.875 * 2.0_f64.powi(7));
    }

    #[test]
    fn fp8_e2_and_e5_ranges() {
        let f2 = Fp8::new(2).unwrap(); // M=5, bias=1
        assert_eq!(f2.min_positive(), 2.0_f64.powi(-5)); // 2^(1-1-5)
        let f5 = Fp8::new(5).unwrap(); // M=2, bias=15
        assert_eq!(f5.min_positive(), 2.0_f64.powi(-16));
        assert_eq!(f5.max_finite(), 1.75 * 2.0_f64.powi(15));
    }

    #[test]
    fn decode_known_codes_fp84() {
        let f = Fp8::new(4).unwrap();
        // 0 0111 000 = 1.0
        assert_eq!(f.decode(0b0_0111_000), 1.0);
        // 0 0111 100 = 1.5
        assert_eq!(f.decode(0b0_0111_100), 1.5);
        // 1 1000 000 = -2.0
        assert_eq!(f.decode(0b1_1000_000), -2.0);
        // subnormal: 0 0000 001 = 2^-9
        assert_eq!(f.decode(0b0_0000_001), 2.0_f64.powi(-9));
        // inf / nan
        assert_eq!(f.decode(0b0_1111_000), f64::INFINITY);
        assert_eq!(f.decode(0b1_1111_000), f64::NEG_INFINITY);
        assert!(f.decode(0b0_1111_001).is_nan());
        // negative zero decodes to -0.0 == 0.0
        assert_eq!(f.decode(0b1_0000_000), 0.0);
    }

    #[test]
    fn classify_covers_all_classes() {
        let f = Fp8::new(4).unwrap();
        assert_eq!(f.classify(0), ValueClass::Zero);
        assert_eq!(f.classify(0b1_0000_000), ValueClass::Zero);
        assert_eq!(f.classify(f.inf_code()), ValueClass::Infinite);
        assert_eq!(f.classify(f.nan_code()), ValueClass::Nan);
        assert_eq!(f.classify(0b0_0111_000), ValueClass::Finite);
        assert_eq!(f.classify(0b0_0000_001), ValueClass::Finite);
    }

    #[test]
    fn fields_subnormal_and_normal() {
        let f = Fp8::new(4).unwrap();
        let d = f.fields(0b0_0111_101).unwrap(); // 1.625
        assert_eq!(d.exp_eff, 0);
        assert_eq!(d.sig, 0b1101);
        assert_eq!(d.sig_bits, 4);
        assert_eq!(d.value(), 1.625);
        let s = f.fields(0b0_0000_011).unwrap(); // subnormal 3 × 2^-9
        assert_eq!(s.exp_eff, -6);
        assert_eq!(s.sig, 0b0011);
        assert_eq!(s.value(), 3.0 * 2.0_f64.powi(-9));
    }

    #[test]
    fn encode_round_trip_all_codes() {
        for e in 1..=6 {
            let f = Fp8::new(e).unwrap();
            for code in f.codes() {
                let code = code as u16;
                if f.classify(code) != ValueClass::Finite {
                    continue;
                }
                let v = f.decode(code);
                let back = f.encode(v);
                assert_eq!(
                    f.decode(back),
                    v,
                    "FP(8,{e}) code {code:#x} value {v} re-encoded to {back:#x}"
                );
            }
        }
    }

    #[test]
    fn encode_specials() {
        let f = Fp8::new(4).unwrap();
        assert_eq!(f.encode(0.0), 0);
        assert_eq!(f.encode(f64::INFINITY), f.inf_code());
        assert_eq!(f.encode(f64::NEG_INFINITY), f.inf_code() | 0x80);
        assert_eq!(f.encode(f64::NAN), f.nan_code());
        // saturation
        assert_eq!(f.decode(f.encode(1e30)), f.max_finite());
        assert_eq!(f.decode(f.encode(-1e30)), -f.max_finite());
        // flush to zero
        assert_eq!(f.decode(f.encode(1e-30)), 0.0);
    }

    #[test]
    fn quantize_monotone_on_samples() {
        let f = Fp8::new(3).unwrap();
        let mut prev = f64::NEG_INFINITY;
        let mut x = -f.max_finite() * 1.1;
        while x < f.max_finite() * 1.1 {
            let q = f.quantize(x);
            assert!(q >= prev, "quantize not monotone at {x}");
            prev = q;
            x += f.max_finite() / 500.0;
        }
    }
}
