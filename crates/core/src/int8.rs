//! Symmetric INT8 — the conventional integer quantization baseline.
//!
//! The PTQ convention of the paper (and of common practice) is *symmetric*
//! quantization: codes represent the integers −127…127 and the scaling
//! step maps `max|x| → 127`. The code `0x80` (−128) still decodes to −128
//! for completeness, but the encoder never produces it, keeping the grid
//! symmetric.

use crate::error::InvalidFormatError;
use crate::fields::{Decoded, ValueClass};
use crate::format::{Format, UnderflowPolicy};
use crate::quant_lut::{quantize_slice_cached, FormatCaches};
use std::sync::Arc;

/// Symmetric two's-complement INT8 (integer lattice −127…127).
///
/// # Examples
///
/// ```
/// use mersit_core::{Int8, Format};
///
/// let i = Int8::new();
/// assert_eq!(i.decode(0x01), 1.0);
/// assert_eq!(i.decode(0xFF), -1.0);
/// assert_eq!(i.quantize(3.4), 3.0);
/// assert_eq!(i.quantize(200.0), 127.0); // saturates
/// ```
#[derive(Debug, Clone, Default)]
pub struct Int8 {
    caches: FormatCaches,
}

impl Int8 {
    /// Creates the symmetric INT8 format.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a general `bits`-wide symmetric integer format is not
    /// supported; INT8 is fixed at 8 bits. This constructor exists for
    /// symmetry with the other formats and always succeeds.
    ///
    /// # Errors
    ///
    /// Never fails; the `Result` keeps the constructor signature uniform.
    pub fn try_new() -> Result<Self, InvalidFormatError> {
        Ok(Self::new())
    }
}

impl Format for Int8 {
    fn name(&self) -> String {
        "INT8".to_owned()
    }

    fn bits(&self) -> u32 {
        8
    }

    fn classify(&self, code: u16) -> ValueClass {
        if code as u8 == 0 {
            ValueClass::Zero
        } else {
            ValueClass::Finite
        }
    }

    fn decode(&self, code: u16) -> f64 {
        f64::from(code as u8 as i8)
    }

    fn fields(&self, code: u16) -> Option<Decoded> {
        let v = code as u8 as i8;
        if v == 0 {
            return None;
        }
        let mag = (i32::from(v)).unsigned_abs();
        Some(Decoded {
            sign: v < 0,
            regime: None,
            exp_raw: 0,
            exp_eff: 7,
            sig: mag,
            sig_bits: 8,
            frac_bits: 0,
            frac: 0,
        })
    }

    fn encode(&self, x: f64) -> u16 {
        if x.is_nan() {
            return 0;
        }
        // Round half to even, clamp to the symmetric grid.
        let r = x.round_ties_even().clamp(-127.0, 127.0);
        (r as i8 as u8).into()
    }

    fn max_finite(&self) -> f64 {
        127.0
    }

    fn min_positive(&self) -> f64 {
        1.0
    }

    fn underflow_policy(&self) -> UnderflowPolicy {
        UnderflowPolicy::FlushToZero
    }

    fn max_frac_bits(&self) -> u32 {
        0
    }

    fn quantize_slice(&self, xs: &mut [f32], scale: f64) {
        quantize_slice_cached(self, &self.caches, xs, scale);
    }

    fn scale_anchor(&self) -> f64 {
        self.caches.anchor(self)
    }

    fn precision_profile(&self) -> Arc<crate::profile::PrecisionProfile> {
        self.caches.profile(self)
    }

    fn quant_spec(&self) -> Arc<crate::quant_lut::QuantSpec> {
        self.caches.spec(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_two_complement() {
        let i = Int8::new();
        assert_eq!(i.decode(0x7F), 127.0);
        assert_eq!(i.decode(0x80), -128.0);
        assert_eq!(i.decode(0x81), -127.0);
        assert_eq!(i.decode(0), 0.0);
    }

    #[test]
    fn encode_rounds_ties_to_even() {
        let i = Int8::new();
        assert_eq!(i.quantize(2.5), 2.0);
        assert_eq!(i.quantize(3.5), 4.0);
        assert_eq!(i.quantize(-2.5), -2.0);
        assert_eq!(i.quantize(-3.5), -4.0);
        assert_eq!(i.quantize(0.4), 0.0);
        assert_eq!(i.quantize(0.6), 1.0);
    }

    #[test]
    fn encode_saturates_symmetrically() {
        let i = Int8::new();
        assert_eq!(i.quantize(1e9), 127.0);
        assert_eq!(i.quantize(-1e9), -127.0); // never −128
        assert_eq!(i.encode(f64::INFINITY), 0x7F);
    }

    #[test]
    fn round_trip_symmetric_codes() {
        let i = Int8::new();
        for code in 0..=255u16 {
            if code == 0x80 {
                continue; // encoder never produces −128
            }
            let v = i.decode(code);
            assert_eq!(i.decode(i.encode(v)), v);
        }
    }

    #[test]
    fn fields_magnitude() {
        let i = Int8::new();
        let d = i.fields(0xFB).unwrap(); // −5
        assert!(d.sign);
        assert_eq!(d.sig, 5);
        assert_eq!(d.value(), -5.0);
        assert!(i.fields(0).is_none());
    }
}
