//! MERSIT — the paper's proposed format (§3, Fig. 3, Table 1).
//!
//! A MERSIT(N,E) word is
//!
//! ```text
//! [ sign | ks | EC0 | EC1 | … | EC(G−1) ]      G = (N−2)/E groups of E bits
//! ```
//!
//! The first exponent candidate (EC) that contains a zero bit is the
//! exponent; its group index `g` encodes the regime:
//! `k = g` when `ks = 1`, `k = −(g+1)` when `ks = 0`. The ECs after the
//! exponent hold the fraction. The represented value is
//!
//! ```text
//! (−1)^sign × 2^((2^E−1)·k) × 2^exp × (1 + .frac)
//! ```
//!
//! so the *effective exponent* is `(2^E−1)·k + exp` with `exp ∈ 0..2^E−1`
//! (an EC that is all ones cannot be the exponent), which tiles the integer
//! exponents contiguously. When no EC contains a zero: `ks = 0` is zero and
//! `ks = 1` is ±∞ (Table 1 rows `0111111₂` and `1111111₂`).

use crate::error::InvalidFormatError;
use crate::fields::{exp2i, Decoded, ValueClass};
use crate::format::{EncodeTable, Format, TieRule, UnderflowPolicy};
use crate::quant_lut::{quantize_slice_cached, FormatCaches};
use std::sync::Arc;

/// The MERSIT(N,E) format. The paper studies `Mersit::new(8, 2)` and
/// `Mersit::new(8, 3)`.
///
/// # Examples
///
/// ```
/// use mersit_core::{Mersit, Format};
///
/// let m = Mersit::new(8, 2)?;
/// assert_eq!(m.name(), "MERSIT(8,2)");
/// // Table 1: effective exponents span −9 ..= 8
/// assert_eq!(m.min_positive(), 2.0_f64.powi(-9));
/// assert_eq!(m.max_finite(), 2.0_f64.powi(8));
/// // 1 00 xxxx with ks=1 is k=0: 1.0 is 0b0_1_00_0000
/// assert_eq!(m.decode(0b0_1_00_0000), 1.0);
///
/// // Round-to-nearest encode; exactly representable values round-trip.
/// let code = m.encode(0.75);
/// assert_eq!(m.decode(code), 0.75);
/// // Off-lattice inputs land on the nearest representable neighbor.
/// assert!((m.decode(m.encode(0.7)) - 0.7).abs() < 0.05);
/// # Ok::<(), mersit_core::InvalidFormatError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Mersit {
    bits: u32,
    es: u32,
    groups: u32,
    table: EncodeTable,
    caches: FormatCaches,
}

/// Decoded regime/exponent/fraction of a MERSIT body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct McBody {
    g: u32,
    k: i32,
    exp: u32,
    frac: u32,
    frac_bits: u32,
}

impl Mersit {
    /// Creates a MERSIT(N,E) format.
    ///
    /// # Errors
    ///
    /// Returns an error unless `4 <= bits <= 16`, `1 <= es <= 4`, and the
    /// body width `bits − 2` is an exact multiple of `es` (ECs are whole
    /// groups of `es` bits).
    pub fn new(bits: u32, es: u32) -> Result<Self, InvalidFormatError> {
        if !(4..=16).contains(&bits) {
            return Err(InvalidFormatError::new(format!(
                "MERSIT bits must be in 4..=16, got {bits}"
            )));
        }
        if !(1..=4).contains(&es) {
            return Err(InvalidFormatError::new(format!(
                "MERSIT es must be in 1..=4, got {es}"
            )));
        }
        let body = bits - 2;
        if !body.is_multiple_of(es) {
            return Err(InvalidFormatError::new(format!(
                "MERSIT({bits},{es}): body width {body} is not a multiple of es={es}"
            )));
        }
        let mut m = Self {
            bits,
            es,
            groups: body / es,
            table: EncodeTable::empty(),
            caches: FormatCaches::new(),
        };
        m.table = EncodeTable::build(&m, TieRule::EvenFraction, UnderflowPolicy::SaturateToMinPos);
        Ok(m)
    }

    /// The exponent-candidate width `E` (the paper's merge level).
    #[must_use]
    pub fn es(&self) -> u32 {
        self.es
    }

    /// The number of exponent candidates `G = (N−2)/E`.
    #[must_use]
    pub fn groups(&self) -> u32 {
        self.groups
    }

    /// The regime scale factor `2^E − 1` (the "×3" unit of Fig. 5b when E=2).
    #[must_use]
    pub fn regime_scale(&self) -> i32 {
        (1 << self.es) - 1
    }

    /// Range of regime values `k`: `−G ..= G−1`.
    #[must_use]
    pub fn regime_range(&self) -> std::ops::RangeInclusive<i32> {
        -(self.groups as i32)..=(self.groups as i32 - 1)
    }

    /// Fraction bits available at regime `k`, `(G − 1 − g)·E`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside [`Mersit::regime_range`].
    #[must_use]
    pub fn frac_bits_at(&self, k: i32) -> u32 {
        let g = self.group_of(k);
        (self.groups - 1 - g) * self.es
    }

    /// Effective exponent `(2^E−1)·k + exp` range of the format.
    #[must_use]
    pub fn exp_eff_range(&self) -> std::ops::RangeInclusive<i32> {
        let s = self.regime_scale();
        let g = self.groups as i32;
        // min: k = −G, exp = 0; max: k = G−1, exp = 2^E − 2.
        (-g * s)..=((g - 1) * s + (s - 1))
    }

    fn group_of(&self, k: i32) -> u32 {
        let g = if k >= 0 { k } else { -k - 1 };
        assert!(
            (g as u32) < self.groups,
            "regime {k} out of range for {}",
            self.name()
        );
        g as u32
    }

    fn body_bits(&self) -> u32 {
        self.bits - 2
    }

    /// Splits a code into (sign, ks, body).
    fn split(&self, code: u16) -> (bool, bool, u32) {
        let code = u32::from(code) & ((1u32 << self.bits) - 1);
        let sign = (code >> (self.bits - 1)) & 1 == 1;
        let ks = (code >> (self.bits - 2)) & 1 == 1;
        let body = code & ((1 << self.body_bits()) - 1);
        (sign, ks, body)
    }

    /// Extracts EC `g` (0 = most significant) from a body.
    fn ec(&self, body: u32, g: u32) -> u32 {
        let shift = (self.groups - 1 - g) * self.es;
        (body >> shift) & ((1 << self.es) - 1)
    }

    /// Finds the exponent EC: the first group that is not all ones.
    /// Returns `None` when every EC is all ones (zero / ±∞ patterns).
    fn find_exponent(&self, body: u32) -> Option<u32> {
        let ones = (1u32 << self.es) - 1;
        (0..self.groups).find(|&g| self.ec(body, g) != ones)
    }

    fn decode_mag(&self, ks: bool, body: u32) -> Option<McBody> {
        let g = self.find_exponent(body)?;
        let exp = self.ec(body, g);
        let k = if ks { g as i32 } else { -(g as i32) - 1 };
        let frac_bits = (self.groups - 1 - g) * self.es;
        let frac = if frac_bits == 0 {
            0
        } else {
            body & ((1 << frac_bits) - 1)
        };
        Some(McBody {
            g,
            k,
            exp,
            frac,
            frac_bits,
        })
    }

    /// Encodes regime/exponent/fraction fields directly to a code word
    /// (the inverse of the decode in Table 1). Used by tests and by the
    /// hardware encoder model.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range, `exp >= 2^E − 1`, or `frac` does not
    /// fit in the fraction bits available at regime `k`.
    #[must_use]
    pub fn pack(&self, sign: bool, k: i32, exp: u32, frac: u32) -> u16 {
        let g = self.group_of(k);
        let ones = (1u32 << self.es) - 1;
        assert!(
            exp < ones,
            "exp {exp} must contain a zero bit (es={})",
            self.es
        );
        let fb = (self.groups - 1 - g) * self.es;
        if fb == 0 {
            assert_eq!(frac, 0, "regime {k} has no fraction bits");
        } else {
            assert!(frac < (1 << fb), "fraction {frac} overflows {fb} bits");
        }
        let mut body = 0u32;
        for lead in 0..g {
            let shift = (self.groups - 1 - lead) * self.es;
            body |= ones << shift;
        }
        body |= exp << ((self.groups - 1 - g) * self.es);
        body |= frac;
        let ks = u32::from(k >= 0);
        let s = u32::from(sign);
        ((s << (self.bits - 1)) | (ks << (self.bits - 2)) | body) as u16
    }

    /// Internal shared encoder table (exposed for analysis tooling).
    #[must_use]
    pub fn encode_table(&self) -> &EncodeTable {
        &self.table
    }
}

impl Format for Mersit {
    fn name(&self) -> String {
        format!("MERSIT({},{})", self.bits, self.es)
    }

    fn bits(&self) -> u32 {
        self.bits
    }

    fn classify(&self, code: u16) -> ValueClass {
        let (_, ks, body) = self.split(code);
        if self.find_exponent(body).is_none() {
            if ks {
                ValueClass::Infinite
            } else {
                ValueClass::Zero
            }
        } else {
            ValueClass::Finite
        }
    }

    fn decode(&self, code: u16) -> f64 {
        let (sign, ks, body) = self.split(code);
        let Some(b) = self.decode_mag(ks, body) else {
            return if ks {
                if sign {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                }
            } else {
                0.0
            };
        };
        let eff = self.regime_scale() * b.k + b.exp as i32;
        let mag = exp2i(eff) * (1.0 + f64::from(b.frac) * exp2i(-(b.frac_bits as i32)));
        if sign {
            -mag
        } else {
            mag
        }
    }

    fn fields(&self, code: u16) -> Option<Decoded> {
        if self.classify(code) != ValueClass::Finite {
            return None;
        }
        let (sign, ks, body) = self.split(code);
        let b = self.decode_mag(ks, body)?;
        let max_fb = self.max_frac_bits();
        let sig = ((1 << b.frac_bits) | b.frac) << (max_fb - b.frac_bits);
        Some(Decoded {
            sign,
            regime: Some(b.k),
            exp_raw: b.exp,
            exp_eff: self.regime_scale() * b.k + b.exp as i32,
            sig,
            sig_bits: max_fb + 1,
            frac_bits: b.frac_bits,
            frac: b.frac,
        })
    }

    fn encode(&self, x: f64) -> u16 {
        let sign_bit = 1u16 << (self.bits - 1);
        let inf_body = ((1u32 << (self.bits - 1)) - 1) as u16; // ks=1, all ECs ones
        if x.is_nan() {
            // MERSIT has no NaN; ±∞ is the error value (paper-Posit convention).
            return inf_body;
        }
        if x == 0.0 {
            // Zero pattern: ks = 0, every EC all ones (Table 1 row 0111111₂).
            return ((1u32 << (self.bits - 2)) - 1) as u16;
        }
        let neg = x < 0.0;
        let code = if x.abs().is_infinite() {
            inf_body
        } else {
            self.table
                .round_positive(x.abs())
                .expect("MERSIT never underflows to zero")
        };
        if neg {
            code | sign_bit
        } else {
            code
        }
    }

    fn max_finite(&self) -> f64 {
        self.table.max_finite()
    }

    fn min_positive(&self) -> f64 {
        self.table.min_positive()
    }

    fn underflow_policy(&self) -> UnderflowPolicy {
        UnderflowPolicy::SaturateToMinPos
    }

    fn max_frac_bits(&self) -> u32 {
        (self.groups - 1) * self.es
    }

    fn quantize_slice(&self, xs: &mut [f32], scale: f64) {
        quantize_slice_cached(self, &self.caches, xs, scale);
    }

    fn scale_anchor(&self) -> f64 {
        self.caches.anchor(self)
    }

    fn precision_profile(&self) -> Arc<crate::profile::PrecisionProfile> {
        self.caches.profile(self)
    }

    fn quant_spec(&self) -> Arc<crate::quant_lut::QuantSpec> {
        self.caches.spec(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m82() -> Mersit {
        Mersit::new(8, 2).unwrap()
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(Mersit::new(9, 2).is_err()); // body 7 not divisible by 2
        assert!(Mersit::new(8, 0).is_err());
        assert!(Mersit::new(8, 5).is_err());
        assert!(Mersit::new(3, 1).is_err());
        assert!(Mersit::new(8, 4).is_err()); // body 6 % 4 != 0
        assert!(Mersit::new(10, 4).is_ok()); // body 8 = 2 ECs of 4
    }

    #[test]
    fn table1_special_rows() {
        let m = m82();
        // 0111111₂ → zero ; 1111111₂ → ±∞ (b6..b0 of Table 1)
        assert_eq!(m.classify(0b0_0111111), ValueClass::Zero);
        assert_eq!(m.classify(0b0_1111111), ValueClass::Infinite);
        assert_eq!(m.decode(0b0_1111111), f64::INFINITY);
        assert_eq!(m.decode(0b1_1111111), f64::NEG_INFINITY);
        assert_eq!(m.decode(0b1_0111111), 0.0);
    }

    /// Every (pattern, k, exp, effective exponent, frac bits) row of Table 1.
    #[test]
    fn table1_full_enumeration() {
        let m = m82();
        // (body7 pattern template, k, exp, eff, frac_bits)
        let rows: &[(u32, i32, u32, i32, u32)] = &[
            (0b0111100, -3, 0, -9, 0),
            (0b0111101, -3, 1, -8, 0),
            (0b0111110, -3, 2, -7, 0),
            (0b0110000, -2, 0, -6, 2),
            (0b0110100, -2, 1, -5, 2),
            (0b0111000, -2, 2, -4, 2),
            (0b0000000, -1, 0, -3, 4),
            (0b0010000, -1, 1, -2, 4),
            (0b0100000, -1, 2, -1, 4),
            (0b1000000, 0, 0, 0, 4),
            (0b1010000, 0, 1, 1, 4),
            (0b1100000, 0, 2, 2, 4),
            (0b1110000, 1, 0, 3, 2),
            (0b1110100, 1, 1, 4, 2),
            (0b1111000, 1, 2, 5, 2),
            (0b1111100, 2, 0, 6, 0),
            (0b1111101, 2, 1, 7, 0),
            (0b1111110, 2, 2, 8, 0),
        ];
        for &(pattern, k, exp, eff, fb) in rows {
            let code = pattern as u16; // sign = 0
            let d = m
                .fields(code)
                .unwrap_or_else(|| panic!("pattern {pattern:07b} should be finite"));
            assert_eq!(d.regime, Some(k), "pattern {pattern:07b}");
            assert_eq!(d.exp_raw, exp, "pattern {pattern:07b}");
            assert_eq!(d.exp_eff, eff, "pattern {pattern:07b}");
            assert_eq!(d.frac_bits, fb, "pattern {pattern:07b}");
            assert_eq!(m.decode(code), 2.0_f64.powi(eff), "pattern {pattern:07b}");
        }
    }

    #[test]
    fn fraction_bits_by_regime() {
        let m = m82();
        // Table 1: |k|=3 (neg side) / k=2 → 0 bits; k=±2/1 → 2 bits; k∈{−1,0} → 4 bits
        assert_eq!(m.frac_bits_at(-3), 0);
        assert_eq!(m.frac_bits_at(-2), 2);
        assert_eq!(m.frac_bits_at(-1), 4);
        assert_eq!(m.frac_bits_at(0), 4);
        assert_eq!(m.frac_bits_at(1), 2);
        assert_eq!(m.frac_bits_at(2), 0);
        assert_eq!(m.max_frac_bits(), 4);
    }

    #[test]
    fn mersit83_parameters() {
        let m = Mersit::new(8, 3).unwrap();
        assert_eq!(m.groups(), 2);
        assert_eq!(m.regime_scale(), 7);
        assert_eq!(m.exp_eff_range(), -14..=13);
        assert_eq!(m.min_positive(), 2.0_f64.powi(-14));
        assert_eq!(m.max_finite(), 2.0_f64.powi(13));
        assert_eq!(m.frac_bits_at(0), 3);
        assert_eq!(m.frac_bits_at(1), 0);
        assert_eq!(m.frac_bits_at(-1), 3);
        assert_eq!(m.frac_bits_at(-2), 0);
    }

    #[test]
    fn effective_exponents_tile_contiguously() {
        for (bits, es) in [(8, 2), (8, 3), (8, 1), (10, 2), (12, 2), (16, 2)] {
            let m = Mersit::new(bits, es).unwrap();
            let mut effs: Vec<i32> = m
                .codes()
                .filter_map(|c| m.fields(c as u16))
                .filter(|d| !d.sign && d.frac == 0)
                .map(|d| d.exp_eff)
                .collect();
            effs.sort_unstable();
            effs.dedup();
            let range = m.exp_eff_range();
            let expect: Vec<i32> = range.clone().collect();
            assert_eq!(effs, expect, "MERSIT({bits},{es})");
        }
    }

    #[test]
    fn decode_values_with_fractions() {
        let m = m82();
        // 0 1 00 1010: k=0, exp=0, frac=1010 → 1 + 10/16 = 1.625
        assert_eq!(m.decode(0b0_1_00_1010), 1.625);
        // 0 1 1101 01: k=1, exp=1, frac=01 → 2^4 × 1.25 = 20
        assert_eq!(m.decode(0b0_1_1101_01), 20.0);
        // negative: sign bit set
        assert_eq!(m.decode(0b1_1_00_1010), -1.625);
        // 0 0 00 0001: k=−1, exp=0, frac=0001 → 2^-3 × (1+1/16)
        assert_eq!(
            m.decode(0b0_0_00_0001),
            2.0_f64.powi(-3) * (1.0 + 1.0 / 16.0)
        );
    }

    #[test]
    fn pack_round_trips_fields() {
        let m = m82();
        for code in m.codes() {
            let code = code as u16;
            let Some(d) = m.fields(code) else { continue };
            let packed = m.pack(d.sign, d.regime.unwrap(), d.exp_raw, d.frac);
            assert_eq!(packed, code, "code {code:#010b}");
        }
    }

    #[test]
    fn encode_round_trip_all_finite_codes() {
        for (bits, es) in [(8, 2), (8, 3), (8, 1)] {
            let m = Mersit::new(bits, es).unwrap();
            for code in m.codes() {
                let code = code as u16;
                if m.classify(code) != ValueClass::Finite {
                    continue;
                }
                let v = m.decode(code);
                assert_eq!(m.decode(m.encode(v)), v, "{} code {code:#x}", m.name());
            }
        }
    }

    #[test]
    fn encode_specials_and_saturation() {
        let m = m82();
        assert_eq!(m.decode(m.encode(0.0)), 0.0);
        assert_eq!(m.decode(m.encode(1e9)), m.max_finite());
        assert_eq!(m.decode(m.encode(-1e9)), -m.max_finite());
        assert_eq!(m.decode(m.encode(1e-300)), m.min_positive());
        assert_eq!(m.decode(m.encode(f64::INFINITY)), f64::INFINITY);
        assert_eq!(m.decode(m.encode(f64::NEG_INFINITY)), f64::NEG_INFINITY);
    }

    #[test]
    fn precision_band_wider_than_posit() {
        // §3.2: the range where MERSIT(8,2) keeps 4-bit precision is wider
        // than Posit(8,1)'s 4-bit band.
        let m = m82();
        let p = crate::posit::Posit::new(8, 1).unwrap();
        let band = |effs: Vec<(i32, u32)>| {
            let four: Vec<i32> = effs
                .iter()
                .filter(|&&(_, fb)| fb >= 4)
                .map(|&(e, _)| e)
                .collect();
            (four.iter().min().copied(), four.iter().max().copied())
        };
        let m_effs: Vec<(i32, u32)> = m
            .codes()
            .filter_map(|c| m.fields(c as u16))
            .map(|d| (d.exp_eff, d.frac_bits))
            .collect();
        let p_effs: Vec<(i32, u32)> = p
            .codes()
            .filter_map(|c| p.fields(c as u16))
            .map(|d| (d.exp_eff, d.frac_bits))
            .collect();
        let (m_lo, m_hi) = band(m_effs);
        let (p_lo, p_hi) = band(p_effs);
        let m_w = m_hi.unwrap() - m_lo.unwrap();
        let p_w = p_hi.unwrap() - p_lo.unwrap();
        assert!(m_w > p_w, "MERSIT 4-bit band {m_w} vs Posit {p_w}");
    }
}
