//! Per-code fixed-point value tables for bit-true Kulisch accumulation.
//!
//! The Kulisch MAC of Fig. 2 never rounds inside a dot product: every
//! `w × a` product is aligned to a common fixed-point grid and added
//! exactly. A [`FixTable`] precomputes, for every code of a format, the
//! *single-operand* analogue of that alignment:
//!
//! ```text
//! fix(code) = ±sig << (exp_eff − e_min)
//! ```
//!
//! so that the product of two table entries is bit-identical to the
//! product-and-align step of the hardware MAC and of
//! `mersit-hw::GoldenMac`:
//!
//! ```text
//! fix(w) · fix(a) = ±(sig_w·sig_a) << (exp_eff_w + exp_eff_a − 2·e_min)
//! ```
//!
//! Summing those integer products (with a final two's-complement wrap to
//! the accumulator width) therefore reproduces the hardware accumulator
//! *bit for bit* — integer addition is associative, so the sum may be
//! tiled, packed, or threaded freely without changing a single bit.
//!
//! A single entry carries the real value `fix × 2^(e_min − (S − 1))`,
//! where `S` is the decoder's significand width ([`FixTable::sig_bits`]).
//! For the hardware formats `S` equals the `M` of [`MacParams`] and every
//! width/LSB formula below coincides with `mersit-hw::MacUnit`'s
//! (`acc_width = W + 2M − 2 + V`, `lsb = 2·e_min − (2M − 2)`); INT8's
//! decoder reports its raw magnitude un-normalized (`S = 8`, `M = 1`), and
//! the `S`-based formulas keep the engine exact there too.
//!
//! Non-finite codes (zero, ±∞, NaN) map to `fix = 0`, mirroring the
//! special-value gating of the hardware datapath.
//!
//! [`FixTable::build`] returns `None` for formats whose per-operand fixed
//! point does not fit an `i64` (e.g. Posit(8,3), whose exponents alone
//! span ~2^96); callers fall back to an explicit (sign, significand,
//! shift) wide path for those.
//!
//! # Example
//!
//! ```
//! use mersit_core::{fixpoint::FixTable, Format, Mersit};
//!
//! let m = Mersit::new(8, 2)?;
//! let t = FixTable::build(&m).expect("MERSIT(8,2) fits i64");
//! let code = 0b0_1_01_0110; // decodes to 2.75
//! let lsb = 2f64.powi(t.operand_lsb_exp());
//! assert_eq!(t.fix(code) as f64 * lsb, m.decode(code));
//! # Ok::<(), mersit_core::InvalidFormatError>(())
//! ```

use crate::format::Format;
use crate::mac_params::MacParams;
use crate::ValueClass;

/// Default overflow-headroom bits of the Kulisch accumulator (supports
/// ≥ `2^8` accumulations with the `+2` guard of [`v_ovf_for`]). This is
/// the single source of truth; `mersit-hw` re-exports it.
pub const DEFAULT_V_OVF: u32 = 10;

/// Overflow margin guaranteeing a `dot_len`-term dot product never wraps:
/// each aligned product occupies at most `acc_width − v_ovf + 1` bits
/// including sign, so `ceil(log2(dot_len)) + 2` headroom bits keep the
/// running sum exact. Never below [`DEFAULT_V_OVF`], so short dot products
/// keep the hardware default width.
#[must_use]
pub fn v_ovf_for(dot_len: usize) -> u32 {
    DEFAULT_V_OVF.max(ceil_log2(dot_len) + 2)
}

/// `ceil(log2(n))` for `n ≥ 1` (0 for `n ≤ 1`).
#[must_use]
pub fn ceil_log2(n: usize) -> u32 {
    usize::BITS - n.saturating_sub(1).leading_zeros()
}

/// Per-code fixed-point values of one format: `fix(code)` is the code's
/// magnitude aligned to the format grid (`±sig << (exp_eff − e_min)`),
/// zero for non-finite codes. See the module docs for the bit-identity
/// this buys.
#[derive(Debug, Clone)]
pub struct FixTable {
    name: String,
    params: MacParams,
    sig_bits: u32,
    fix: Vec<i64>,
    max_bits: u32,
}

impl FixTable {
    /// Builds the table for `fmt`, or `None` if a single operand's fixed
    /// point can exceed 62 magnitude bits (it would not fit `i64`).
    #[must_use]
    pub fn build(fmt: &dyn Format) -> Option<Self> {
        let params = MacParams::of(fmt);
        // The decoder's significand width: constant per format (asserted
        // below); equals params.m for the normalized hardware formats.
        let sig_bits = fmt
            .codes()
            .find_map(|c| fmt.fields(c as u16))
            .map_or(params.m, |d| d.sig_bits);
        // Largest magnitude: sig < 2^S shifted by up to e_max − e_min.
        let max_bits = (params.e_max - params.e_min) as u32 + sig_bits;
        if max_bits > 62 {
            return None;
        }
        let mut fix = vec![0i64; fmt.codes().end as usize];
        for code in fmt.codes() {
            let code = code as u16;
            if fmt.classify(code) != ValueClass::Finite {
                continue;
            }
            let d = fmt.fields(code).expect("finite code has fields");
            assert_eq!(
                d.sig_bits, sig_bits,
                "decoder significand width must be constant per format"
            );
            let shift = d.exp_eff - params.e_min;
            assert!(shift >= 0, "finite magnitude below min_positive");
            let mag = i64::from(d.sig) << shift;
            fix[code as usize] = if d.sign { -mag } else { mag };
        }
        Some(Self {
            name: fmt.name(),
            params,
            sig_bits,
            fix,
            max_bits,
        })
    }

    /// Name of the format the table was built for.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The MAC sizing parameters of the format.
    #[must_use]
    pub fn params(&self) -> &MacParams {
        &self.params
    }

    /// The decoder's significand width `S` (hidden bit included). Equals
    /// `params().m` for every hardware format.
    #[must_use]
    pub fn sig_bits(&self) -> u32 {
        self.sig_bits
    }

    /// Fixed-point value of one code (0 for zero / special codes).
    #[must_use]
    pub fn fix(&self, code: u16) -> i64 {
        self.fix[code as usize]
    }

    /// The whole table, indexed by code.
    #[must_use]
    pub fn fixes(&self) -> &[i64] {
        &self.fix
    }

    /// Maximum magnitude bits of any single entry,
    /// `(e_max − e_min) + S` (≤ 62 by construction).
    #[must_use]
    pub fn max_bits(&self) -> u32 {
        self.max_bits
    }

    /// LSB-weight exponent of a *single* table entry,
    /// `e_min − (S − 1)`: `value(code) = fix(code) × 2^operand_lsb_exp()`.
    #[must_use]
    pub fn operand_lsb_exp(&self) -> i32 {
        self.params.e_min - (self.sig_bits as i32 - 1)
    }

    /// LSB-weight exponent of a *product* accumulator over this table,
    /// `2·(e_min − (S − 1))` — identical to `MacUnit::acc_lsb_exp()`
    /// (`2·e_min − (2M − 2)`) whenever `S == M`.
    #[must_use]
    pub fn lsb_exp(&self) -> i32 {
        2 * self.operand_lsb_exp()
    }

    /// Accumulator width for overflow margin `v_ovf`:
    /// `2·max_bits − 1 + v_ovf`. For the hardware formats
    /// (`max_bits = (e_max − e_min) + M`) this is algebraically identical
    /// to `MacUnit::acc_width_for` (`W + 2M − 2 + v_ovf`); for INT8 it is
    /// wide enough for the un-normalized `S = 8` products.
    #[must_use]
    pub fn acc_width(&self, v_ovf: u32) -> usize {
        (2 * self.max_bits - 1 + v_ovf) as usize
    }

    /// Whether a `dot_len`-term sum of raw `i128` products of table
    /// entries is guaranteed not to overflow `i128` (the fast path's
    /// accumulate-then-wrap-once precondition).
    #[must_use]
    pub fn raw_sum_fits_i128(&self, dot_len: usize) -> bool {
        2 * self.max_bits + ceil_log2(dot_len) < 127
    }
}

/// Wraps `v` to `width`-bit two's complement — the same reduction
/// `GoldenMac` applies after every addition. Because `x mod 2^w` is a ring
/// homomorphism, wrapping an exact `i128` sum *once* equals wrapping after
/// every step, which is why the engine can accumulate raw and defer this
/// to the end of the dot product.
#[must_use]
pub fn wrap_i128(v: i128, width: usize) -> i128 {
    assert!((1..128).contains(&width), "wrap width must fit i128");
    // Bit arithmetic in u128 so width 127 (where 2^width overflows i128)
    // still works: take the low `width` bits, then sign-extend.
    let low = (v as u128) & ((1u128 << width) - 1);
    if low >> (width - 1) & 1 == 1 {
        low.wrapping_sub(1u128 << width) as i128
    } else {
        low as i128
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::exp2i;
    use crate::registry::{hardware_formats, table2_formats};
    use crate::{Int8, Mersit, Posit};

    #[test]
    fn fix_values_match_decode_for_every_code() {
        for f in table2_formats() {
            let fmt: &dyn crate::Format = f.as_ref();
            let Some(t) = FixTable::build(fmt) else {
                continue;
            };
            let lsb = exp2i(t.operand_lsb_exp());
            for code in fmt.codes() {
                let code = code as u16;
                let expect = if fmt.classify(code) == ValueClass::Finite {
                    fmt.decode(code)
                } else {
                    0.0
                };
                assert_eq!(
                    t.fix(code) as f64 * lsb,
                    expect,
                    "{} code {code:#04x}",
                    t.name()
                );
            }
        }
    }

    #[test]
    fn int8_fix_is_the_integer_itself() {
        let t = FixTable::build(&Int8::new()).unwrap();
        // e_min = 0, S = 8, every exp_eff = 7 → fix = v << 7, LSB 2^-7.
        assert_eq!(t.sig_bits(), 8);
        assert_eq!(t.operand_lsb_exp(), -7);
        assert_eq!(t.fix(1), 1 << 7);
        assert_eq!(t.fix(0x80), -128 << 7);
        assert_eq!(t.fix(0), 0);
    }

    #[test]
    fn posit83_overflows_i64_and_is_rejected() {
        let p = Posit::new(8, 3).unwrap();
        assert!(FixTable::build(&p).is_none());
        // Sanity: its single-operand span really is > 62 bits.
        let params = MacParams::of(&p);
        assert!((params.e_max - params.e_min) as u32 + params.m > 62);
    }

    #[test]
    fn widths_match_mac_unit_formulas_on_hardware_formats() {
        for f in hardware_formats() {
            let t = FixTable::build(f.as_ref()).unwrap();
            let p = t.params();
            assert_eq!(t.sig_bits(), p.m, "{}", t.name());
            assert_eq!(
                t.acc_width(DEFAULT_V_OVF) as u32,
                p.w + 2 * p.m - 2 + DEFAULT_V_OVF,
                "{}",
                t.name()
            );
            assert_eq!(t.lsb_exp(), 2 * p.e_min - (2 * p.m as i32 - 2));
        }
        // Fig. 2 spot values for MERSIT(8,2): W = 35, M = 5.
        let t = FixTable::build(&Mersit::new(8, 2).unwrap()).unwrap();
        assert_eq!(t.acc_width(DEFAULT_V_OVF), 53);
        assert_eq!(t.lsb_exp(), -26);
        assert_eq!(t.max_bits(), 22);
    }

    #[test]
    fn v_ovf_scales_with_dot_length() {
        assert_eq!(v_ovf_for(1), DEFAULT_V_OVF);
        assert_eq!(v_ovf_for(256), DEFAULT_V_OVF);
        assert_eq!(v_ovf_for(257), 11);
        assert_eq!(v_ovf_for(1 << 20), 22);
    }

    #[test]
    fn ceil_log2_edges() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn wrap_matches_twos_complement() {
        assert_eq!(wrap_i128(7, 3), -1);
        assert_eq!(wrap_i128(8, 3), 0);
        assert_eq!(wrap_i128(-9, 3), -1);
        assert_eq!(wrap_i128(3, 3), 3);
        assert_eq!(wrap_i128(-4, 3), -4);
        // Wrap-once == wrap-each-step on a sum that overflows the width.
        let w = 8;
        let vals = [100i128, 100, 100, -50, 100];
        let once = wrap_i128(vals.iter().sum(), w);
        let stepped = vals.iter().fold(0i128, |a, &v| wrap_i128(a + v, w));
        assert_eq!(once, stepped);
    }
}
