//! The [`Format`] trait: the uniform interface every 8-bit format
//! (FP8, Posit8, MERSIT8, INT8) implements, plus the shared
//! table-driven round-to-nearest encoder.

use crate::fields::{Decoded, ValueClass};
use std::fmt::Debug;
use std::sync::Arc;

/// How values below the smallest representable positive magnitude round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum UnderflowPolicy {
    /// IEEE-style: round-to-nearest-even against zero — values below half
    /// the minimum positive flush to zero. Used by FP8 and INT8.
    #[default]
    FlushToZero,
    /// Posit-style: a non-zero real never rounds to zero; anything in
    /// `(0, minpos]` becomes `minpos`. Used by Posit and MERSIT
    /// (MERSIT is Posit-like and inherits the convention).
    SaturateToMinPos,
}

/// A fixed-width binary number format with at most 16 bits.
///
/// Implementations must guarantee:
///
/// * `decode` is total over all `2^bits()` codes (returning `f64` values,
///   `±∞`, or NaN as the format prescribes);
/// * positive finite codes decode to *distinct* magnitudes;
/// * `encode` performs round-to-nearest with the format's native tie rule,
///   saturating to the largest finite value and applying the format's
///   [`UnderflowPolicy`] near zero.
///
/// # Examples
///
/// ```
/// use mersit_core::{Format, Mersit, Posit, Fp8};
///
/// let m = Mersit::new(8, 2).unwrap();
/// let x = 0.7_f64;
/// let q = m.quantize(x);
/// assert!((q - x).abs() < x / 16.0); // within one ulp at 4 fraction bits
/// ```
pub trait Format: Debug + Send + Sync {
    /// Human-readable name, e.g. `"MERSIT(8,2)"`.
    fn name(&self) -> String;

    /// Total width of the format in bits (8 for everything in the paper).
    fn bits(&self) -> u32;

    /// Decodes a code word to its represented value.
    ///
    /// Codes wider than [`Format::bits`] must be masked by the caller;
    /// implementations ignore the excess high bits.
    fn decode(&self, code: u16) -> f64;

    /// Classifies a code word.
    fn classify(&self, code: u16) -> ValueClass;

    /// Decoder-output fields for a *finite, non-zero* code;
    /// `None` for zero / infinity / NaN codes.
    fn fields(&self, code: u16) -> Option<Decoded>;

    /// Encodes `x` with round-to-nearest (format-native tie rule),
    /// saturating at the largest finite magnitude.
    fn encode(&self, x: f64) -> u16;

    /// The largest finite representable magnitude.
    fn max_finite(&self) -> f64;

    /// The smallest positive representable magnitude (subnormals included).
    fn min_positive(&self) -> f64;

    /// Underflow behaviour near zero.
    fn underflow_policy(&self) -> UnderflowPolicy {
        UnderflowPolicy::FlushToZero
    }

    /// The maximum number of fraction bits the format can carry
    /// (the `M − 1` of the MAC's fraction multiplier in Fig. 2).
    fn max_frac_bits(&self) -> u32;

    /// Round-trips `x` through the format: `decode(encode(x))`.
    fn quantize(&self, x: f64) -> f64 {
        self.decode(self.encode(x))
    }

    /// Fake-quantizes a slice in place with one scale: every element
    /// becomes `(self.quantize(f64::from(x) / scale) * scale) as f32`,
    /// bit-exactly.
    ///
    /// The default is the scalar reference loop; the built-in formats
    /// override it with the batched [`crate::QuantLut`] codec (backed by
    /// their memoized [`crate::QuantSpec`]), falling back to scalar for
    /// short slices and degenerate scales.
    fn quantize_slice(&self, xs: &mut [f32], scale: f64) {
        crate::quant_lut::quantize_slice_scalar(self, xs, scale);
    }

    /// The scaling anchor: the largest lattice magnitude inside the
    /// highest binade still carrying the format's maximal effective
    /// fraction bits. PTQ maps `max|x|` onto this value.
    ///
    /// The built-in formats memoize it; the default recomputes.
    fn scale_anchor(&self) -> f64 {
        crate::quant_lut::compute_scale_anchor(self)
    }

    /// The per-binade precision staircase (Fig. 4 row) of the format.
    ///
    /// The built-in formats memoize it; the default recomputes.
    fn precision_profile(&self) -> Arc<crate::profile::PrecisionProfile> {
        Arc::new(crate::profile::PrecisionProfile::of(self))
    }

    /// The scale-independent batched-quantization spec of the format.
    ///
    /// The built-in formats memoize it; the default recomputes.
    fn quant_spec(&self) -> Arc<crate::quant_lut::QuantSpec> {
        Arc::new(crate::quant_lut::QuantSpec::of(self))
    }

    /// All codes of the format, `0..2^bits()`.
    fn codes(&self) -> std::ops::Range<u32> {
        0..(1u32 << self.bits())
    }
}

/// One entry of the positive-magnitude lattice of a format.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatticePoint {
    /// The represented magnitude.
    pub value: f64,
    /// The code of the *positive* value.
    pub code: u16,
    /// Raw fraction field (used for even-fraction tie breaking).
    pub frac: u32,
    /// Fraction width at this point.
    pub frac_bits: u32,
}

/// Tie-breaking rule applied when a real lands exactly between two
/// representable magnitudes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TieRule {
    /// Pick the neighbour with an even fraction field; if both are even
    /// (regime/binade boundary), pick the larger magnitude.
    /// Reproduces IEEE round-to-nearest-even for FP8.
    #[default]
    EvenFraction,
    /// Pick the neighbour whose code is even, treating the positive
    /// code lattice as integers (the Posit-standard rule; valid because
    /// Posit codes are monotone in value).
    EvenCode,
}

/// Shared table-driven encoder: the sorted positive-magnitude lattice of a
/// format together with rounding rules.
///
/// Formats build this once (from their own `decode`) and answer `encode`
/// queries via binary search, which keeps `encode` and `decode` consistent
/// by construction.
#[derive(Debug, Clone)]
pub struct EncodeTable {
    points: Arc<[LatticePoint]>,
    tie: TieRule,
    underflow: UnderflowPolicy,
}

impl EncodeTable {
    /// An empty placeholder table, used during two-phase format construction
    /// (the format is created first, then its own `decode` builds the table).
    #[must_use]
    pub fn empty() -> Self {
        Self {
            points: Vec::new().into(),
            tie: TieRule::EvenFraction,
            underflow: UnderflowPolicy::FlushToZero,
        }
    }

    /// Builds the lattice by decoding every code of `fmt` and keeping the
    /// positive finite ones, sorted ascending by magnitude.
    ///
    /// # Panics
    ///
    /// Panics if two positive codes decode to the same magnitude — that
    /// would indicate a broken format implementation.
    #[must_use]
    pub fn build(fmt: &dyn Format, tie: TieRule, underflow: UnderflowPolicy) -> Self {
        let mut points = Vec::new();
        for code in fmt.codes() {
            let code = code as u16;
            if fmt.classify(code) != ValueClass::Finite {
                continue;
            }
            let v = fmt.decode(code);
            if v <= 0.0 {
                continue;
            }
            let d = fmt
                .fields(code)
                .expect("finite code must expose decoder fields");
            points.push(LatticePoint {
                value: v,
                code,
                frac: d.frac,
                frac_bits: d.frac_bits,
            });
        }
        points.sort_by(|a, b| a.value.partial_cmp(&b.value).expect("finite values"));
        for w in points.windows(2) {
            assert!(
                w[0].value < w[1].value,
                "duplicate magnitude {} for codes {:#x} and {:#x}",
                w[0].value,
                w[0].code,
                w[1].code
            );
        }
        Self {
            points: points.into(),
            tie,
            underflow,
        }
    }

    /// The positive-magnitude lattice, ascending.
    #[must_use]
    pub fn points(&self) -> &[LatticePoint] {
        &self.points
    }

    /// Largest finite magnitude.
    #[must_use]
    pub fn max_finite(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.value)
    }

    /// Smallest positive magnitude.
    #[must_use]
    pub fn min_positive(&self) -> f64 {
        self.points.first().map_or(0.0, |p| p.value)
    }

    /// Rounds a positive magnitude to the code of the nearest lattice point,
    /// or `None` when the value rounds to zero under the underflow policy.
    ///
    /// # Panics
    ///
    /// Panics if the lattice is empty or `x` is not a positive finite number.
    #[must_use]
    pub fn round_positive(&self, x: f64) -> Option<u16> {
        assert!(x > 0.0 && x.is_finite(), "round_positive needs 0 < x < inf");
        let pts = &self.points;
        assert!(!pts.is_empty(), "empty lattice");
        let first = &pts[0];
        if x <= first.value {
            return match self.underflow {
                UnderflowPolicy::SaturateToMinPos => Some(first.code),
                UnderflowPolicy::FlushToZero => {
                    let half = first.value / 2.0;
                    // Tie at exactly half of minpos goes to zero (zero is "even").
                    if x > half {
                        Some(first.code)
                    } else {
                        None
                    }
                }
            };
        }
        let last = &pts[pts.len() - 1];
        if x >= last.value {
            return Some(last.code);
        }
        // Invariant: pts[lo].value < x < pts[hi].value with hi = lo + 1.
        let hi = pts.partition_point(|p| p.value < x);
        if pts[hi].value == x {
            return Some(pts[hi].code);
        }
        let (a, b) = (&pts[hi - 1], &pts[hi]);
        let mid = a.value + (b.value - a.value) / 2.0;
        if x < mid {
            Some(a.code)
        } else if x > mid {
            Some(b.code)
        } else {
            Some(self.break_tie(a, b))
        }
    }

    fn break_tie(&self, a: &LatticePoint, b: &LatticePoint) -> u16 {
        match self.tie {
            TieRule::EvenCode => {
                if a.code.is_multiple_of(2) {
                    a.code
                } else {
                    b.code
                }
            }
            TieRule::EvenFraction => {
                let a_even = a.frac.is_multiple_of(2) || a.frac_bits == 0;
                let b_even = b.frac.is_multiple_of(2) || b.frac_bits == 0;
                match (a_even, b_even) {
                    (true, false) => a.code,
                    (false | true, true) => b.code,
                    (false, false) => b.code, // cannot occur on a 1-ulp step
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp8::Fp8;

    #[test]
    fn lattice_is_sorted_and_distinct() {
        let f = Fp8::new(4).unwrap();
        let t = EncodeTable::build(&f, TieRule::EvenFraction, UnderflowPolicy::FlushToZero);
        assert!(t.points().windows(2).all(|w| w[0].value < w[1].value));
        assert_eq!(t.min_positive(), 2.0_f64.powi(-9));
        assert!((t.max_finite() - 1.875 * 128.0).abs() < 1e-12);
    }

    #[test]
    fn round_positive_nearest() {
        let f = Fp8::new(4).unwrap();
        let t = EncodeTable::build(&f, TieRule::EvenFraction, UnderflowPolicy::FlushToZero);
        // 1.0 is representable
        let c = t.round_positive(1.0).unwrap();
        assert_eq!(f.decode(c), 1.0);
        // 1.06 → nearest of {1.0, 1.125}
        let c = t.round_positive(1.06).unwrap();
        assert_eq!(f.decode(c), 1.0);
        let c = t.round_positive(1.07).unwrap();
        assert_eq!(f.decode(c), 1.125);
    }

    #[test]
    fn tie_rounds_to_even_fraction() {
        let f = Fp8::new(4).unwrap();
        let t = EncodeTable::build(&f, TieRule::EvenFraction, UnderflowPolicy::FlushToZero);
        // Between 1.000 and 1.125 (frac 0 and 1): tie at 1.0625 → even frac = 1.0
        let c = t.round_positive(1.0625).unwrap();
        assert_eq!(f.decode(c), 1.0);
        // Between 1.125 and 1.25 (frac 1 and 2): tie → 1.25
        let c = t.round_positive(1.1875).unwrap();
        assert_eq!(f.decode(c), 1.25);
    }

    #[test]
    fn underflow_flush_to_zero() {
        let f = Fp8::new(4).unwrap();
        let t = EncodeTable::build(&f, TieRule::EvenFraction, UnderflowPolicy::FlushToZero);
        let minpos = t.min_positive();
        assert!(t.round_positive(minpos * 0.49).is_none());
        assert!(t.round_positive(minpos * 0.5).is_none()); // tie → zero (even)
        assert!(t.round_positive(minpos * 0.51).is_some());
    }

    #[test]
    fn saturates_at_max() {
        let f = Fp8::new(4).unwrap();
        let t = EncodeTable::build(&f, TieRule::EvenFraction, UnderflowPolicy::FlushToZero);
        let c = t.round_positive(1.0e9).unwrap();
        assert_eq!(f.decode(c), t.max_finite());
    }
}
