//! Dynamic-range / precision profiling of formats (Fig. 4).
//!
//! Fig. 4 of the paper plots, per binade of representable magnitude, how
//! many effective fraction bits each configuration carries. We recover the
//! same staircase by counting lattice points per binade: a binade holding
//! `2^b` values offers `b` effective fraction bits. This automatically
//! captures FP8's degrading subnormal precision and Posit/MERSIT's
//! regime-dependent tapering.

use crate::fields::ValueClass;
use crate::format::Format;

/// Effective precision available in one binade `[2^exp, 2^(exp+1))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BinadePrecision {
    /// Binade exponent (floor of log2 of the magnitudes inside).
    pub exp: i32,
    /// Number of lattice points in the binade.
    pub count: u32,
    /// Effective fraction bits, `floor(log2(count))`.
    pub frac_bits: u32,
}

/// The per-binade precision staircase of a format (one Fig. 4 row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrecisionProfile {
    /// Format name this profile belongs to.
    pub name: String,
    /// Binades ascending by exponent; contiguous from the lowest to the
    /// highest representable binade.
    pub binades: Vec<BinadePrecision>,
}

impl PrecisionProfile {
    /// Profiles `fmt` by enumerating its positive finite lattice.
    ///
    /// # Examples
    ///
    /// ```
    /// use mersit_core::{PrecisionProfile, Mersit};
    ///
    /// let p = PrecisionProfile::of(&Mersit::new(8, 2)?);
    /// assert_eq!(p.exp_min(), -9);
    /// assert_eq!(p.exp_max(), 8);
    /// assert_eq!(p.max_frac_bits(), 4);
    /// # Ok::<(), mersit_core::InvalidFormatError>(())
    /// ```
    #[must_use]
    pub fn of<F: Format + ?Sized>(fmt: &F) -> Self {
        let mut counts: std::collections::BTreeMap<i32, u32> = std::collections::BTreeMap::new();
        for code in fmt.codes() {
            let code = code as u16;
            if fmt.classify(code) != ValueClass::Finite {
                continue;
            }
            let v = fmt.decode(code);
            if v <= 0.0 {
                continue;
            }
            let e = v.log2().floor() as i32;
            *counts.entry(e).or_insert(0) += 1;
        }
        let binades = counts
            .into_iter()
            .map(|(exp, count)| BinadePrecision {
                exp,
                count,
                frac_bits: 31 - count.leading_zeros().min(31),
            })
            .collect();
        Self {
            name: fmt.name(),
            binades,
        }
    }

    /// Lowest representable binade exponent.
    ///
    /// # Panics
    ///
    /// Panics if the format has no finite positive values.
    #[must_use]
    pub fn exp_min(&self) -> i32 {
        self.binades.first().expect("non-empty profile").exp
    }

    /// Highest representable binade exponent.
    ///
    /// # Panics
    ///
    /// Panics if the format has no finite positive values.
    #[must_use]
    pub fn exp_max(&self) -> i32 {
        self.binades.last().expect("non-empty profile").exp
    }

    /// The best effective fraction precision anywhere in the range.
    #[must_use]
    pub fn max_frac_bits(&self) -> u32 {
        self.binades.iter().map(|b| b.frac_bits).max().unwrap_or(0)
    }

    /// Width (in binades) of the region offering at least `bits` fraction bits.
    #[must_use]
    pub fn band_width_at(&self, bits: u32) -> u32 {
        self.binades.iter().filter(|b| b.frac_bits >= bits).count() as u32
    }

    /// Renders the profile as an ASCII staircase, one char per binade
    /// (digit = fraction bits).
    #[must_use]
    pub fn ascii_row(&self, exp_lo: i32, exp_hi: i32) -> String {
        let mut s = String::new();
        for e in exp_lo..=exp_hi {
            match self.binades.iter().find(|b| b.exp == e) {
                Some(b) => s.push(char::from_digit(b.frac_bits.min(9), 10).unwrap_or('?')),
                None => s.push('.'),
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fp8, Mersit, Posit};

    #[test]
    fn fp84_profile_matches_fig4() {
        let p = PrecisionProfile::of(&Fp8::new(4).unwrap());
        assert_eq!(p.exp_min(), -9);
        assert_eq!(p.exp_max(), 7);
        // Normal binades carry the full 3 fraction bits.
        let normal = p.binades.iter().find(|b| b.exp == 0).unwrap();
        assert_eq!(normal.frac_bits, 3);
        // Subnormal staircase: the lowest binade has a single point.
        let lowest = p.binades.iter().find(|b| b.exp == -9).unwrap();
        assert_eq!(lowest.frac_bits, 0);
        let sub = p.binades.iter().find(|b| b.exp == -7).unwrap();
        assert_eq!(sub.frac_bits, 2);
    }

    #[test]
    fn posit81_tapers_toward_extremes() {
        let p = PrecisionProfile::of(&Posit::new(8, 1).unwrap());
        assert_eq!(p.exp_min(), -12);
        assert_eq!(p.exp_max(), 10);
        assert_eq!(p.max_frac_bits(), 4);
        // Center binades have 4 bits, extremes 0.
        assert_eq!(p.binades.iter().find(|b| b.exp == 0).unwrap().frac_bits, 4);
        assert_eq!(p.binades.iter().find(|b| b.exp == 10).unwrap().frac_bits, 0);
    }

    #[test]
    fn mersit82_4bit_band_wider_than_posit81() {
        // §3.2: "the range within which MERSIT(8,2) can maintain a 4-bit
        // precision is broader than that of Posit(8,1)".
        let m = PrecisionProfile::of(&Mersit::new(8, 2).unwrap());
        let p = PrecisionProfile::of(&Posit::new(8, 1).unwrap());
        assert!(m.band_width_at(4) > p.band_width_at(4));
        // MERSIT(8,2): k ∈ {−1, 0} → effective exponents −3..2, six binades.
        assert_eq!(m.band_width_at(4), 6);
        // Posit(8,1): 4-bit fraction only at k ∈ {0, −1} → exponents −2..1.
        assert_eq!(p.band_width_at(4), 4);
    }

    #[test]
    fn binades_are_contiguous() {
        for fmt in [
            &Mersit::new(8, 2).unwrap() as &dyn crate::Format,
            &Mersit::new(8, 3).unwrap(),
            &Posit::new(8, 0).unwrap(),
            &Fp8::new(3).unwrap(),
        ] {
            let p = PrecisionProfile::of(fmt);
            for w in p.binades.windows(2) {
                assert_eq!(w[1].exp, w[0].exp + 1, "{} has a gap", p.name);
            }
        }
    }

    #[test]
    fn ascii_row_renders() {
        let p = PrecisionProfile::of(&Mersit::new(8, 2).unwrap());
        let row = p.ascii_row(-10, 9);
        assert_eq!(row.len(), 20);
        assert!(row.starts_with('.')); // −10 below range
        assert!(row.contains('4'));
    }
}
