//! Batched fake-quantization: a per-`(Format, scale)` lookup codec.
//!
//! The PTQ pipeline's hot loop is scaled *fake quantization*: every f32
//! element `x` becomes `(quantize(x / scale) * scale) as f32`. The scalar
//! path pays, per element, an `f64` division, two virtual calls, and a
//! binary search over 24-byte [`crate::LatticePoint`] entries.
//!
//! This module splits that work into two precomputed layers:
//!
//! * [`QuantSpec`] — scale-independent geometry of a format's rounding
//!   function: the decision *cuts* (underflow threshold and midpoints,
//!   computed with exactly the arithmetic of
//!   [`crate::EncodeTable::round_positive`]) plus the probed `quantize()`
//!   output for every open region between cuts, for every exact tie on a
//!   cut, and for the special inputs (±0, ±∞, NaN). Built once per format
//!   instance and memoized in [`FormatCaches`].
//! * [`QuantLut`] — per-scale codec. Each cut is translated into f32
//!   *input* space by a monotone bisection over the non-negative f32 bit
//!   patterns, using the same `f64::from(x) / scale` expression the scalar
//!   path evaluates — so region membership is exact by construction, not
//!   by analysis. Outputs are prescaled with the same `(v * scale) as f32`
//!   cast. The hot loop is then a sign strip, a 256-entry coarse index on
//!   the top exponent byte, and a short `u32` search: no division, no
//!   virtual dispatch, no `f64` at all.
//!
//! # Invariants
//!
//! * **Bit-exactness with the scalar path** — including tie rules,
//!   underflow policy, saturation, `-0.0`, infinities and NaN — is the
//!   load-bearing contract: callers may freely switch between
//!   `Format::quantize_slice`, a [`QuantLut`], and the threaded fan-out in
//!   `mersit_tensor::par` without changing a single output bit. Asserted
//!   by the in-module sweep tests and by the cross-format property tests
//!   in `tests/quant_slice_props.rs`.
//! * **Region membership is exact by construction**: every cut is placed
//!   by bisection over f32 bit patterns using the *same* `f64` expression
//!   the scalar path evaluates, never by closed-form analysis that could
//!   disagree in the last ulp.
//! * **`build` is total over supported scales**: [`QuantLut::supports`]
//!   gates the finite, positive, normal scales; within that domain `build`
//!   returns `Some` for every registry format.
//!
//! # Example
//!
//! ```
//! use mersit_core::{Format, Mersit, QuantLut};
//!
//! let fmt = Mersit::new(8, 2)?;
//! let scale = 0.05;
//! let lut = QuantLut::build(&fmt.quant_spec(), scale).expect("supported scale");
//!
//! let mut xs = vec![0.1f32, -0.37, 0.002, 3.9];
//! let reference: Vec<f32> = xs
//!     .iter()
//!     .map(|&x| (fmt.quantize(f64::from(x) / scale) * scale) as f32)
//!     .collect();
//! lut.apply(&mut xs);
//! assert_eq!(xs, reference); // bit-identical to the scalar loop
//! # Ok::<(), mersit_core::InvalidFormatError>(())
//! ```

use crate::fields::ValueClass;
use crate::format::{Format, UnderflowPolicy};
use crate::profile::PrecisionProfile;
use std::sync::{Arc, OnceLock};

/// Below this many elements the scalar loop wins: building a [`QuantLut`]
/// costs roughly a thousand scalar quantizations' worth of bisections.
pub const LUT_MIN_LEN: usize = 1024;

/// Bit pattern of `f32::MAX`: the largest finite positive magnitude.
const MAX_MAG_BITS: u32 = 0x7f7f_ffff;

/// Coarse-index granularity: magnitudes are bucketed by their top
/// `32 − 1 − COARSE_SHIFT = 12` bits (exponent + 4 mantissa bits), i.e.
/// sixteen buckets per binade, so a bucket rarely spans more than a few
/// regions.
const COARSE_SHIFT: u32 = 19;

/// Number of coarse buckets covering all finite positive magnitudes.
const N_BUCKETS: usize = (MAX_MAG_BITS >> COARSE_SHIFT) as usize + 1;

/// Largest per-bucket region count served by the branchless probe loop;
/// beyond it (degenerate scales crowding many regions into one bucket)
/// the lookup falls back to binary search.
const PROBE_CUTOFF: u32 = 8;

/// Scale-independent quantization geometry of one format: decision cuts in
/// the unscaled domain and the probed `quantize()` output everywhere.
///
/// Build once per format (or take the memoized copy via
/// [`Format::quant_spec`]), then instantiate a [`QuantLut`] per scale.
#[derive(Debug, Clone)]
pub struct QuantSpec {
    /// Decision boundaries over positive magnitudes, strictly ascending:
    /// the flush-to-zero threshold (when the policy has one) followed by
    /// the midpoint between each pair of adjacent lattice magnitudes,
    /// computed as `a + (b - a) / 2` — the exact expression
    /// `round_positive` compares against.
    cuts: Vec<f64>,
    /// `quantize()` output on each open region between cuts
    /// (`cuts.len() + 1` entries; the last one is the saturation value).
    region_outs: Vec<f64>,
    /// `quantize(-m)` for the same regions. Probed separately rather than
    /// negated: formats disagree on the sign of a zero result (FP8's
    /// negative underflow keeps `-0.0`, INT8's decode yields `+0.0`).
    region_outs_neg: Vec<f64>,
    /// `quantize()` output for an input landing exactly on each cut
    /// (tie-rule / underflow-tie behavior, probed, `cuts.len()` entries).
    tie_outs: Vec<f64>,
    /// `quantize(-cut)` for the same ties.
    tie_outs_neg: Vec<f64>,
    q_zero_pos: f64,
    q_zero_neg: f64,
    q_inf_pos: f64,
    q_inf_neg: f64,
    q_nan: f64,
}

impl QuantSpec {
    /// Derives the spec from a format by enumerating its positive finite
    /// lattice and probing `quantize()` at region representatives, cuts,
    /// and special values.
    ///
    /// # Panics
    ///
    /// Panics if the format has no positive finite values.
    #[must_use]
    pub fn of<F: Format + ?Sized>(fmt: &F) -> Self {
        let mut vals: Vec<f64> = fmt
            .codes()
            .map(|c| c as u16)
            .filter(|&c| fmt.classify(c) == ValueClass::Finite)
            .map(|c| fmt.decode(c))
            .filter(|&v| v > 0.0)
            .collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        vals.dedup();
        assert!(!vals.is_empty(), "format has no positive finite values");

        let mut cuts = Vec::with_capacity(vals.len());
        let mut reps = Vec::with_capacity(vals.len() + 1);
        if fmt.underflow_policy() == UnderflowPolicy::FlushToZero {
            // Region (0, v0/2) rounds toward zero; probe it strictly inside.
            cuts.push(vals[0] / 2.0);
            reps.push(vals[0] / 4.0);
        }
        for w in vals.windows(2) {
            cuts.push(w[0] + (w[1] - w[0]) / 2.0);
        }
        // Each remaining region contains exactly one lattice magnitude.
        reps.extend(vals.iter().copied());

        let region_outs = reps.iter().map(|&r| fmt.quantize(r)).collect();
        let region_outs_neg = reps.iter().map(|&r| fmt.quantize(-r)).collect();
        let tie_outs = cuts.iter().map(|&c| fmt.quantize(c)).collect();
        let tie_outs_neg = cuts.iter().map(|&c| fmt.quantize(-c)).collect();

        Self {
            cuts,
            region_outs,
            region_outs_neg,
            tie_outs,
            tie_outs_neg,
            q_zero_pos: fmt.quantize(0.0),
            q_zero_neg: fmt.quantize(-0.0),
            q_inf_pos: fmt.quantize(f64::INFINITY),
            q_inf_neg: fmt.quantize(f64::NEG_INFINITY),
            q_nan: fmt.quantize(f64::NAN),
        }
    }

    /// Number of decision cuts (≈ the positive lattice size).
    #[must_use]
    pub fn num_cuts(&self) -> usize {
        self.cuts.len()
    }
}

/// Largest bit pattern in `[1, MAX_MAG_BITS]` whose value satisfies the
/// monotone predicate `pred(f64::from(x) / scale)`, or 0 if none does.
fn max_bits_where(scale: f64, pred: impl Fn(f64) -> bool) -> u32 {
    let holds = |bits: u32| pred(f64::from(f32::from_bits(bits)) / scale);
    if !holds(1) {
        return 0;
    }
    if holds(MAX_MAG_BITS) {
        return MAX_MAG_BITS;
    }
    // Invariant: holds(lo) && !holds(hi).
    let (mut lo, mut hi) = (1u32, MAX_MAG_BITS);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if holds(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Appends a region `(…, upper] → (pos, neg)`, merging with the previous
/// region when both output bit patterns match (keeps the table short).
fn push_region(
    uppers: &mut Vec<u32>,
    outs: &mut Vec<f32>,
    outs_neg: &mut Vec<f32>,
    upper: u32,
    pos: f32,
    neg: f32,
) {
    if let Some(last_u) = uppers.last_mut() {
        let same = outs.last().copied().map(f32::to_bits) == Some(pos.to_bits())
            && outs_neg.last().copied().map(f32::to_bits) == Some(neg.to_bits());
        if same {
            *last_u = upper;
            return;
        }
    }
    uppers.push(upper);
    outs.push(pos);
    outs_neg.push(neg);
}

/// A per-scale fake-quantization codec: maps any f32 to
/// `(fmt.quantize(f64::from(x) / scale) * scale) as f32` bit-exactly,
/// without touching `f64` on the hot path.
#[derive(Debug, Clone)]
pub struct QuantLut {
    /// Ascending upper bit-bounds (inclusive) of the positive-magnitude
    /// regions; the last entry is always `f32::MAX`'s bit pattern.
    uppers: Vec<u32>,
    /// Prescaled `[positive, negative]` output per region, parallel to
    /// `uppers`; indexed by the input's sign bit so the sign selection is
    /// a load, not a (randomly taken) branch.
    out_pairs: Vec<[f32; 2]>,
    /// `coarse[b]` = first region index whose upper bound reaches the
    /// magnitudes in bucket `b` (top [`COARSE_SHIFT`]-shifted bits, i.e.
    /// one sixteenth of a binade) — narrows the search to a handful of
    /// regions.
    coarse: Vec<u32>,
    /// Maximum regions any single bucket spans: the fixed trip count of
    /// the branchless probe loop in [`QuantLut::map`].
    probe_len: u32,
    zero_pos: f32,
    zero_neg: f32,
    inf_pos: f32,
    inf_neg: f32,
    nan_out: f32,
}

impl QuantLut {
    /// Whether a LUT can represent this scale exactly. Degenerate scales
    /// (non-positive, non-finite, or so small that `x / scale` overflows
    /// for in-range f32 inputs) must use the scalar path.
    #[must_use]
    pub fn supports(scale: f64) -> bool {
        scale > 0.0 && scale.is_finite() && (f64::from(f32::MAX) / scale).is_finite()
    }

    /// Builds the codec for one scale, or `None` when
    /// [`QuantLut::supports`] rejects the scale.
    #[must_use]
    pub fn build(spec: &QuantSpec, scale: f64) -> Option<Self> {
        if !Self::supports(scale) {
            return None;
        }
        let emit = |v: f64| (v * scale) as f32;
        let mut uppers: Vec<u32> = Vec::with_capacity(spec.cuts.len() + 2);
        let mut outs: Vec<f32> = Vec::with_capacity(spec.cuts.len() + 2);
        let mut outs_neg: Vec<f32> = Vec::with_capacity(spec.cuts.len() + 2);
        let mut prev = 0u32;
        // Huge scales underflow `x / scale` to exactly ±0.0 for small
        // magnitudes; `encode` treats an exact zero as the zero class, not
        // as an underflowing nonzero, so that bit range needs the zero
        // outputs rather than the first region's.
        let under = max_bits_where(scale, |m| m == 0.0);
        if under > 0 {
            push_region(
                &mut uppers,
                &mut outs,
                &mut outs_neg,
                under,
                emit(spec.q_zero_pos),
                emit(spec.q_zero_neg),
            );
            prev = under;
        }
        for (i, &cut) in spec.cuts.iter().enumerate() {
            // Largest f32 whose unscaled preimage stays strictly below the
            // cut — found with the scalar path's own division, so the
            // boundary is exact by construction.
            let below = max_bits_where(scale, |m| m < cut);
            if below > prev {
                push_region(
                    &mut uppers,
                    &mut outs,
                    &mut outs_neg,
                    below,
                    emit(spec.region_outs[i]),
                    emit(spec.region_outs_neg[i]),
                );
                prev = below;
            }
            // Inputs dividing exactly onto the cut take the tie output.
            if below < MAX_MAG_BITS && f64::from(f32::from_bits(below + 1)) / scale == cut {
                let at = max_bits_where(scale, |m| m <= cut);
                push_region(
                    &mut uppers,
                    &mut outs,
                    &mut outs_neg,
                    at,
                    emit(spec.tie_outs[i]),
                    emit(spec.tie_outs_neg[i]),
                );
                prev = at;
            }
        }
        if prev < MAX_MAG_BITS || uppers.is_empty() {
            let sat = *spec.region_outs.last().expect("non-empty regions");
            let sat_neg = *spec.region_outs_neg.last().expect("non-empty regions");
            push_region(
                &mut uppers,
                &mut outs,
                &mut outs_neg,
                MAX_MAG_BITS,
                emit(sat),
                emit(sat_neg),
            );
        }
        let coarse: Vec<u32> = (0..=N_BUCKETS as u32)
            .map(|b| uppers.partition_point(|&u| u < (b << COARSE_SHIFT)) as u32)
            .collect();
        let probe_len = coarse.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0);
        let out_pairs = outs.iter().zip(&outs_neg).map(|(&p, &n)| [p, n]).collect();
        Some(Self {
            uppers,
            out_pairs,
            coarse,
            probe_len,
            zero_pos: emit(spec.q_zero_pos),
            zero_neg: emit(spec.q_zero_neg),
            inf_pos: emit(spec.q_inf_pos),
            inf_neg: emit(spec.q_inf_neg),
            nan_out: emit(spec.q_nan),
        })
    }

    /// Fake-quantizes one value.
    #[inline]
    #[must_use]
    pub fn map(&self, x: f32) -> f32 {
        let bits = x.to_bits();
        let mag = bits & 0x7fff_ffff;
        // Finite non-zero fast path: mag ∈ [1, f32::MAX bits].
        if mag.wrapping_sub(1) < MAX_MAG_BITS {
            let b = (mag >> COARSE_SHIFT) as usize;
            let lo = self.coarse[b] as usize;
            let idx = if self.probe_len <= PROBE_CUTOFF {
                // Branchless bounded probe: once `uppers[idx] >= mag` the
                // increment predicate stays false, so `idx` parks on the
                // answer and never walks past the last region.
                let mut idx = lo;
                for _ in 0..self.probe_len {
                    idx += usize::from(self.uppers[idx] < mag);
                }
                idx
            } else {
                // Crowded buckets (extreme scales): binary search.
                let hi = self.coarse[b + 1] as usize;
                lo + self.uppers[lo..hi].partition_point(|&u| u < mag)
            };
            return self.out_pairs[idx][(bits >> 31) as usize];
        }
        if mag == 0 {
            if bits == 0 {
                self.zero_pos
            } else {
                self.zero_neg
            }
        } else if mag > 0x7f80_0000 {
            self.nan_out
        } else if bits & 0x8000_0000 == 0 {
            self.inf_pos
        } else {
            self.inf_neg
        }
    }

    /// Fake-quantizes a slice in place, dispatching to the best SIMD
    /// tier the process selected (see [`crate::simd`]). Bit-identical to
    /// mapping each element through [`QuantLut::map`] for every tier.
    pub fn apply(&self, xs: &mut [f32]) {
        self.apply_with_level(crate::simd::simd_level(), xs);
    }

    /// [`QuantLut::apply`] with an explicit SIMD tier — the differential-
    /// testing entry point (`quant_slice_props` sweeps every tier in
    /// [`crate::simd::available_levels`]). Tiers above what the host
    /// supports must not be passed; production code uses [`QuantLut::apply`].
    pub fn apply_with_level(&self, level: crate::simd::SimdLevel, xs: &mut [f32]) {
        #[cfg(target_arch = "x86_64")]
        if level >= crate::simd::SimdLevel::Avx2 && self.probe_len <= PROBE_CUTOFF {
            // SAFETY: `level >= Avx2` only occurs when runtime detection
            // confirmed AVX2 (tiers are clamped to the host in `simd`,
            // and `apply_with_level` callers sweep `available_levels`).
            unsafe { self.apply_avx2(xs) };
            return;
        }
        let _ = level;
        for x in xs {
            *x = self.map(*x);
        }
    }

    /// AVX2 slice kernel: eight lanes of the [`QuantLut::map`] fast path —
    /// mask sign, bucket by `mag >> COARSE_SHIFT`, run the same bounded
    /// probe with gathered `uppers`, then gather the prescaled outputs.
    /// Per lane every comparison and index update is exactly the scalar
    /// one, so the result is bit-identical by construction; lanes outside
    /// the finite-nonzero fast path (zeros in-vector, ±∞/NaN via a scalar
    /// fixup) take the same special-value table the scalar path reads.
    ///
    /// Gathers are masked to the fast lanes: a NaN magnitude shifted by
    /// [`COARSE_SHIFT`] would index past `coarse`, so masked-off lanes
    /// must not touch memory. Signed compares are safe throughout —
    /// magnitudes and table bounds all fit in 31 bits.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    #[allow(clippy::cast_ptr_alignment)] // unaligned intrinsics only
    unsafe fn apply_avx2(&self, xs: &mut [f32]) {
        use std::arch::x86_64::{
            __m256i, _mm256_add_epi32, _mm256_and_si256, _mm256_andnot_si256, _mm256_blendv_ps,
            _mm256_castsi256_ps, _mm256_cmpeq_epi32, _mm256_cmpgt_epi32, _mm256_loadu_si256,
            _mm256_mask_i32gather_epi32, _mm256_mask_i32gather_ps, _mm256_movemask_ps,
            _mm256_or_si256, _mm256_set1_epi32, _mm256_set1_ps, _mm256_setzero_ps,
            _mm256_setzero_si256, _mm256_slli_epi32, _mm256_srli_epi32, _mm256_storeu_ps,
            _mm256_sub_epi32,
        };
        const LANES: usize = 8;
        let n = xs.len();
        let uppers = self.uppers.as_ptr().cast::<i32>();
        let coarse = self.coarse.as_ptr().cast::<i32>();
        let pairs = self.out_pairs.as_ptr().cast::<f32>();
        let mag_mask = _mm256_set1_epi32(0x7fff_ffff);
        let max_mag = _mm256_set1_epi32(MAX_MAG_BITS as i32);
        let zero = _mm256_setzero_si256();
        let zero_pos = _mm256_set1_ps(self.zero_pos);
        let zero_neg = _mm256_set1_ps(self.zero_neg);
        let mut i = 0usize;
        while i + LANES <= n {
            let v = _mm256_loadu_si256(xs.as_ptr().add(i).cast::<__m256i>());
            let mag = _mm256_and_si256(v, mag_mask);
            // Fast lanes: 1 <= mag <= MAX_MAG_BITS (finite non-zero).
            let nonzero = _mm256_cmpgt_epi32(mag, zero);
            let fast = _mm256_andnot_si256(_mm256_cmpgt_epi32(mag, max_mag), nonzero);
            let bucket = _mm256_srli_epi32::<{ COARSE_SHIFT as i32 }>(mag);
            let mut idx = _mm256_mask_i32gather_epi32::<4>(zero, coarse, bucket, fast);
            // Bounded probe, identical per lane to the scalar loop: add 1
            // while `uppers[idx] < mag`; the predicate parks, so `idx`
            // never leaves the table for fast lanes (masked lanes never
            // gather and their idx is never used).
            for _ in 0..self.probe_len {
                let u = _mm256_mask_i32gather_epi32::<4>(zero, uppers, idx, fast);
                idx = _mm256_sub_epi32(idx, _mm256_and_si256(_mm256_cmpgt_epi32(mag, u), fast));
            }
            let sign = _mm256_srli_epi32::<31>(v);
            let flat = _mm256_add_epi32(_mm256_slli_epi32::<1>(idx), sign);
            let fast_out = _mm256_mask_i32gather_ps::<4>(
                _mm256_setzero_ps(),
                pairs,
                flat,
                _mm256_castsi256_ps(fast),
            );
            // ±0.0 lanes in-vector: select by sign bit (the top bit of
            // each f32 lane of `v` is exactly what blendv keys on).
            let zeros = _mm256_cmpeq_epi32(mag, zero);
            let zero_out = _mm256_blendv_ps(zero_pos, zero_neg, _mm256_castsi256_ps(v));
            let out = _mm256_blendv_ps(fast_out, zero_out, _mm256_castsi256_ps(zeros));
            // ±∞ / NaN lanes (rare) go through the scalar map after the
            // vector store, reading the staged original values.
            let special = _mm256_andnot_si256(_mm256_or_si256(fast, zeros), _mm256_set1_epi32(-1));
            let special_bits = _mm256_movemask_ps(_mm256_castsi256_ps(special));
            if special_bits == 0 {
                _mm256_storeu_ps(xs.as_mut_ptr().add(i), out);
            } else {
                let mut orig = [0.0f32; LANES];
                _mm256_storeu_ps(orig.as_mut_ptr(), _mm256_castsi256_ps(v));
                _mm256_storeu_ps(xs.as_mut_ptr().add(i), out);
                for (j, &x) in orig.iter().enumerate() {
                    if special_bits & (1 << j) != 0 {
                        xs[i + j] = self.map(x);
                    }
                }
            }
            i += LANES;
        }
        for x in &mut xs[i..] {
            *x = self.map(*x);
        }
    }

    /// Number of regions in the positive-magnitude table.
    #[must_use]
    pub fn num_regions(&self) -> usize {
        self.uppers.len()
    }

    /// Most regions any coarse bucket spans — the probe trip count.
    /// Above the probe cutoff (8) the lookup switches to binary search
    /// and [`QuantLut::apply`] stays scalar; exposed so tests can assert
    /// both lookup regimes are actually covered.
    #[must_use]
    pub fn probe_len(&self) -> u32 {
        self.probe_len
    }
}

/// The reference per-element fake-quantization loop — the semantics every
/// batched path must reproduce bit for bit.
pub fn quantize_slice_scalar<F: Format + ?Sized>(fmt: &F, xs: &mut [f32], scale: f64) {
    for x in xs {
        *x = (fmt.quantize(f64::from(*x) / scale) * scale) as f32;
    }
}

/// Shared `quantize_slice` implementation for formats carrying a
/// [`FormatCaches`]: batched LUT when the slice is long enough and the
/// scale representable, scalar reference loop otherwise.
pub fn quantize_slice_cached<F: Format + ?Sized>(
    fmt: &F,
    caches: &FormatCaches,
    xs: &mut [f32],
    scale: f64,
) {
    if xs.len() >= LUT_MIN_LEN && QuantLut::supports(scale) {
        if let Some(lut) = QuantLut::build(&caches.spec(fmt), scale) {
            lut.apply(xs);
            return;
        }
    }
    quantize_slice_scalar(fmt, xs, scale);
}

/// The scale anchor: the largest lattice magnitude inside the *highest*
/// binade that still carries the format's maximal effective fraction bits
/// (the top of the precision plateau; see `mersit-ptq`'s scaling docs).
pub fn compute_scale_anchor<F: Format + ?Sized>(fmt: &F) -> f64 {
    anchor_from_profile(fmt, &fmt.precision_profile())
}

fn anchor_from_profile<F: Format + ?Sized>(fmt: &F, profile: &PrecisionProfile) -> f64 {
    let best = profile.max_frac_bits();
    let top_exp = profile
        .binades
        .iter()
        .filter(|b| b.frac_bits == best)
        .map(|b| b.exp)
        .max()
        .expect("non-empty profile");
    let mut anchor = 0.0f64;
    for code in fmt.codes() {
        let code = code as u16;
        if fmt.classify(code) != ValueClass::Finite {
            continue;
        }
        let v = fmt.decode(code);
        if v > 0.0 && (v.log2().floor() as i32) == top_exp && v > anchor {
            anchor = v;
        }
    }
    anchor
}

/// Per-instance memoization of a format's derived constants: the
/// [`QuantSpec`], the [`PrecisionProfile`], and the scale anchor.
///
/// Formats embed one of these and route the corresponding [`Format`]
/// methods through it; cloning a format shares the already-computed
/// artifacts (they are behind `Arc`s).
#[derive(Debug, Clone, Default)]
pub struct FormatCaches {
    spec: OnceLock<Arc<QuantSpec>>,
    profile: OnceLock<Arc<PrecisionProfile>>,
    anchor: OnceLock<f64>,
}

impl FormatCaches {
    /// An empty cache; every artifact is computed on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The memoized [`QuantSpec`] of `fmt`.
    pub fn spec<F: Format + ?Sized>(&self, fmt: &F) -> Arc<QuantSpec> {
        Arc::clone(self.spec.get_or_init(|| Arc::new(QuantSpec::of(fmt))))
    }

    /// The memoized [`PrecisionProfile`] of `fmt`.
    pub fn profile<F: Format + ?Sized>(&self, fmt: &F) -> Arc<PrecisionProfile> {
        Arc::clone(
            self.profile
                .get_or_init(|| Arc::new(PrecisionProfile::of(fmt))),
        )
    }

    /// The memoized scale anchor of `fmt`.
    pub fn anchor<F: Format + ?Sized>(&self, fmt: &F) -> f64 {
        *self
            .anchor
            .get_or_init(|| anchor_from_profile(fmt, &self.profile(fmt)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::table2_formats;
    use crate::{Fp8, Int8, Mersit, Posit};

    fn scalar_ref(fmt: &dyn Format, x: f32, scale: f64) -> f32 {
        (fmt.quantize(f64::from(x) / scale) * scale) as f32
    }

    /// Probes the LUT against the scalar reference on every structurally
    /// interesting input: cuts and lattice values mapped back into input
    /// space (± one ulp), specials, subnormals, and pseudo-random values.
    fn assert_bit_exact(fmt: &dyn Format, scale: f64) {
        let spec = QuantSpec::of(fmt);
        let lut = QuantLut::build(&spec, scale).expect("supported scale");
        let mut probes: Vec<f32> = vec![
            0.0,
            -0.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            f32::from_bits(0xffc0_0001), // negative NaN with payload
            f32::from_bits(0x7f80_0001), // signalling-style NaN
            f32::MIN_POSITIVE,
            f32::from_bits(1), // smallest subnormal
            f32::MAX,
            -f32::MAX,
        ];
        for &c in spec.cuts.iter().chain(spec.region_outs.iter()) {
            let y = (c * scale) as f32;
            if y.is_finite() {
                for d in [y, y.next_up(), y.next_down()] {
                    probes.push(d);
                    probes.push(-d);
                }
            }
        }
        // Deterministic pseudo-random bit patterns (finite magnitudes).
        let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ scale.to_bits();
        for _ in 0..4000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let bits = (state >> 33) as u32;
            let mag = bits & 0x7fff_ffff;
            if mag <= MAX_MAG_BITS {
                probes.push(f32::from_bits(bits));
            }
        }
        for x in probes {
            let got = lut.map(x);
            let want = scalar_ref(fmt, x, scale);
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{} scale={scale} x={x:?} ({:#010x}): lut {got:?} vs scalar {want:?}",
                fmt.name(),
                x.to_bits(),
            );
        }
    }

    #[test]
    fn lut_matches_scalar_for_all_table2_formats() {
        for fmt in table2_formats() {
            for scale in [1.0, 0.0378, 1.0 / 127.0, 3.7e-5, 128.0] {
                assert_bit_exact(fmt.as_ref(), scale);
            }
        }
    }

    #[test]
    fn lut_matches_scalar_on_awkward_scales() {
        let m = Mersit::new(8, 2).unwrap();
        for scale in [
            f64::from(1.0f32.next_down()),
            1e30,
            1e-30,
            f64::from(f32::MIN_POSITIVE),
        ] {
            if QuantLut::supports(scale) {
                assert_bit_exact(&m, scale);
            }
        }
    }

    #[test]
    fn degenerate_scales_are_rejected() {
        for scale in [0.0, -1.0, f64::NAN, f64::INFINITY, 1e-300] {
            assert!(!QuantLut::supports(scale), "scale {scale} must fall back");
        }
        // quantize_slice still works on them via the scalar fallback.
        let m = Mersit::new(8, 2).unwrap();
        for scale in [0.0, -1.0, f64::NAN, f64::INFINITY, 1e-300] {
            let mut xs = vec![1.0f32; 4];
            let mut want = xs.clone();
            m.quantize_slice(&mut xs, scale);
            quantize_slice_scalar(&m, &mut want, scale);
            let (a, b): (Vec<u32>, Vec<u32>) = (
                xs.iter().map(|v| v.to_bits()).collect(),
                want.iter().map(|v| v.to_bits()).collect(),
            );
            assert_eq!(a, b, "scale {scale}");
        }
    }

    #[test]
    fn quantize_slice_long_path_is_bit_exact() {
        for fmt in [
            &Mersit::new(8, 3).unwrap() as &dyn Format,
            &Posit::new(8, 1).unwrap(),
            &Posit::standard(8, 2).unwrap(),
            &Fp8::new(5).unwrap(),
            &Int8::new(),
        ] {
            let mut xs: Vec<f32> = (0..4096)
                .map(|i| ((i as f32) - 2048.0) * 0.019_73)
                .collect();
            xs[7] = f32::NAN;
            xs[100] = f32::INFINITY;
            xs[200] = -0.0;
            let mut want = xs.clone();
            let scale = 0.031_4;
            fmt.quantize_slice(&mut xs, scale);
            quantize_slice_scalar(fmt, &mut want, scale);
            for (i, (a, b)) in xs.iter().zip(&want).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{} elem {i}", fmt.name());
            }
        }
    }

    #[test]
    fn caches_memoize_and_survive_clone() {
        let m = Mersit::new(8, 2).unwrap();
        let s1 = m.quant_spec();
        let s2 = m.quant_spec();
        assert!(Arc::ptr_eq(&s1, &s2), "spec must be memoized");
        let p1 = m.precision_profile();
        let p2 = m.precision_profile();
        assert!(Arc::ptr_eq(&p1, &p2), "profile must be memoized");
        assert_eq!(m.scale_anchor(), 7.75);
        let cloned = m.clone();
        assert!(
            Arc::ptr_eq(&s1, &cloned.quant_spec()),
            "clone shares cached artifacts"
        );
    }

    #[test]
    fn anchors_match_known_values() {
        assert_eq!(Int8::new().scale_anchor(), 127.0);
        let f = Fp8::new(4).unwrap();
        assert_eq!(f.scale_anchor(), f.max_finite());
        assert!((Posit::new(8, 1).unwrap().scale_anchor() - 3.875).abs() < 1e-12);
        assert!((Mersit::new(8, 2).unwrap().scale_anchor() - 7.75).abs() < 1e-12);
    }

    #[test]
    fn huge_scale_underflow_keeps_zero_sign_semantics() {
        // With scale 4e307, x/scale underflows to exactly ±0.0 for small
        // |x|; encode's zero class then yields +0.0 for both signs under
        // FP8 (whereas a nonzero underflow yields −0.0 for negatives).
        let f = Fp8::new(2).unwrap();
        let scale = 4e307;
        let lut = QuantLut::build(&f.quant_spec(), scale).unwrap();
        for x in [3.3e-34f32, -3.3e-34, 1e-30, -1e-30, f32::MIN_POSITIVE] {
            let want = (f.quantize(f64::from(x) / scale) * scale) as f32;
            assert_eq!(
                lut.map(x).to_bits(),
                want.to_bits(),
                "x={x:e}: lut {:e} vs scalar {want:e}",
                lut.map(x)
            );
        }
    }

    #[test]
    fn lut_is_compact() {
        // Region merging keeps the table near the lattice size, and the
        // coarse index has one entry per bucket plus a terminator.
        let m = Mersit::new(8, 2).unwrap();
        let lut = QuantLut::build(&m.quant_spec(), 1.0).unwrap();
        assert!(lut.num_regions() <= 2 * m.quant_spec().num_cuts() + 2);
        assert_eq!(lut.coarse.len(), N_BUCKETS + 1);
        assert_eq!(*lut.uppers.last().unwrap(), MAX_MAG_BITS);
        // An ordinary scale keeps every bucket sparse enough for the
        // branchless probe loop.
        assert!(lut.probe_len <= PROBE_CUTOFF, "probe_len {}", lut.probe_len);
    }
}
