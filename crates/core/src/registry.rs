//! Name-based construction of formats and the paper's configuration sets.

use crate::error::InvalidFormatError;
use crate::format::Format;
use crate::fp8::Fp8;
use crate::int8::Int8;
use crate::mersit::Mersit;
use crate::posit::Posit;
use std::sync::Arc;

/// A reference-counted, dynamically typed format handle.
pub type FormatRef = Arc<dyn Format>;

/// Parses a format name like `"MERSIT(8,2)"`, `"Posit(8,1)"`, `"FP(8,4)"`,
/// or `"INT8"` into a format instance.
///
/// # Errors
///
/// Returns an error for unknown names or invalid parameters.
///
/// # Examples
///
/// ```
/// use mersit_core::parse_format;
///
/// let f = parse_format("MERSIT(8,2)")?;
/// assert_eq!(f.name(), "MERSIT(8,2)");
/// assert!(parse_format("FP(8,9)").is_err());
/// # Ok::<(), mersit_core::InvalidFormatError>(())
/// ```
pub fn parse_format(name: &str) -> Result<FormatRef, InvalidFormatError> {
    let name = name.trim();
    if name.eq_ignore_ascii_case("INT8") {
        return Ok(Arc::new(Int8::new()));
    }
    let (kind, args) = name
        .split_once('(')
        .ok_or_else(|| InvalidFormatError::new(format!("unrecognized format name `{name}`")))?;
    let args = args
        .strip_suffix(')')
        .ok_or_else(|| InvalidFormatError::new(format!("missing `)` in `{name}`")))?;
    let nums: Vec<u32> = args
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<u32>()
                .map_err(|_| InvalidFormatError::new(format!("bad number in `{name}`")))
        })
        .collect::<Result<_, _>>()?;
    if nums.len() != 2 {
        return Err(InvalidFormatError::new(format!(
            "`{name}` needs exactly two parameters"
        )));
    }
    let (n, e) = (nums[0], nums[1]);
    match kind.trim().to_ascii_uppercase().as_str() {
        "FP" => Ok(Arc::new(Fp8::with_bits(n, e)?)),
        "POSIT" => Ok(Arc::new(Posit::new(n, e)?)),
        "POSIT-STD" => Ok(Arc::new(Posit::standard(n, e)?)),
        "MERSIT" => Ok(Arc::new(Mersit::new(n, e)?)),
        other => Err(InvalidFormatError::new(format!(
            "unknown format kind `{other}`"
        ))),
    }
}

/// The eleven 8-bit format columns of Table 2 (everything except FP32):
/// INT8, FP(8,2..5), Posit(8,0..3), MERSIT(8,2..3), in paper order.
///
/// # Panics
///
/// Never panics; all configurations are valid by construction.
#[must_use]
pub fn table2_formats() -> Vec<FormatRef> {
    let names = [
        "INT8",
        "FP(8,2)",
        "FP(8,3)",
        "FP(8,4)",
        "FP(8,5)",
        "Posit(8,0)",
        "Posit(8,1)",
        "Posit(8,2)",
        "Posit(8,3)",
        "MERSIT(8,2)",
        "MERSIT(8,3)",
    ];
    names
        .iter()
        .map(|n| parse_format(n).expect("paper configurations are valid"))
        .collect()
}

/// The three configurations selected for the hardware study (§4.3):
/// FP(8,4), Posit(8,1), MERSIT(8,2).
///
/// # Panics
///
/// Never panics; all configurations are valid by construction.
#[must_use]
pub fn hardware_formats() -> Vec<FormatRef> {
    ["FP(8,4)", "Posit(8,1)", "MERSIT(8,2)"]
        .iter()
        .map(|n| parse_format(n).expect("paper configurations are valid"))
        .collect()
}

/// The nine configurations compared in Fig. 4.
///
/// # Panics
///
/// Never panics; all configurations are valid by construction.
#[must_use]
pub fn fig4_formats() -> Vec<FormatRef> {
    [
        "FP(8,2)",
        "FP(8,3)",
        "FP(8,4)",
        "FP(8,5)",
        "Posit(8,0)",
        "Posit(8,1)",
        "Posit(8,2)",
        "MERSIT(8,2)",
        "MERSIT(8,3)",
    ]
    .iter()
    .map(|n| parse_format(n).expect("paper configurations are valid"))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_paper_name() {
        for f in table2_formats() {
            let again = parse_format(&f.name()).unwrap();
            assert_eq!(again.name(), f.name());
        }
    }

    #[test]
    fn parse_is_case_insensitive_and_trims() {
        assert_eq!(parse_format(" int8 ").unwrap().name(), "INT8");
        assert_eq!(parse_format("mersit(8,3)").unwrap().name(), "MERSIT(8,3)");
        assert_eq!(
            parse_format("posit-std(8,1)").unwrap().name(),
            "Posit-std(8,1)"
        );
    }

    #[test]
    fn rejects_malformed_names() {
        assert!(parse_format("FP8").is_err());
        assert!(parse_format("FP(8)").is_err());
        assert!(parse_format("FP(8,4").is_err());
        assert!(parse_format("FP(8,x)").is_err());
        assert!(parse_format("GHOST(8,2)").is_err());
        assert!(parse_format("MERSIT(9,2)").is_err());
    }

    #[test]
    fn set_sizes() {
        assert_eq!(table2_formats().len(), 11);
        assert_eq!(hardware_formats().len(), 3);
        assert_eq!(fig4_formats().len(), 9);
    }
}
