//! Common decoded-field representation shared by every 8-bit format.
//!
//! The hardware MAC of the paper (Fig. 2) feeds a *decoder* output —
//! an effective exponent and an effective fraction — into a signed
//! exponent adder and an unsigned fraction multiplier. [`Decoded`] is the
//! software mirror of that decoder output and is what the gate-level
//! models in `mersit-hw` are cross-checked against.

use std::fmt;

/// Classification of a code point of an 8-bit format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueClass {
    /// Exact zero (positive or negative zero patterns both classify here).
    Zero,
    /// A finite, non-zero representable value.
    Finite,
    /// Positive or negative infinity (MERSIT `1111111`, paper-Posit
    /// all-ones regime, FP8 exponent-all-ones with zero fraction).
    Infinite,
    /// Not-a-number (FP8 exponent-all-ones with non-zero fraction,
    /// standard-Posit NaR).
    Nan,
}

impl ValueClass {
    /// Returns `true` for [`ValueClass::Finite`].
    #[must_use]
    pub fn is_finite(self) -> bool {
        self == ValueClass::Finite
    }

    /// Returns `true` for zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self == ValueClass::Zero
    }
}

impl fmt::Display for ValueClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueClass::Zero => "zero",
            ValueClass::Finite => "finite",
            ValueClass::Infinite => "inf",
            ValueClass::Nan => "nan",
        };
        f.write_str(s)
    }
}

/// Decoder output for one code word: the fields a hardware decoder extracts.
///
/// The represented value of a finite code is
///
/// ```text
/// (-1)^sign × sig × 2^(exp_eff − (sig_bits − 1))
/// ```
///
/// where `sig` is the *left-aligned* significand including the hidden bit
/// (the dynamic shifter of the MERSIT decoder in Fig. 5 performs exactly this
/// left alignment in hardware). For FP8 subnormals the hidden bit is zero and
/// `sig` is *not* normalized; the formula above still holds with
/// `exp_eff = 1 − bias`.
///
/// # Examples
///
/// ```
/// use mersit_core::{Format, Mersit};
///
/// let m = Mersit::new(8, 2).unwrap();
/// // 0 1 01 xxxx with frac 0110 → k = 0, exp = 1, value = 2^1 × (1 + 6/16)
/// let code = 0b0_1_01_0110;
/// let d = m.fields(code).unwrap();
/// assert_eq!(d.exp_eff, 1);
/// assert_eq!(d.frac_bits, 4);
/// assert_eq!(m.decode(code), 2.0 * (1.0 + 6.0 / 16.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Decoded {
    /// Sign of the value (`true` = negative).
    pub sign: bool,
    /// Regime value `k` for Posit/MERSIT; `None` for formats without a regime.
    pub regime: Option<i32>,
    /// Raw exponent-field value (before bias / regime contribution).
    pub exp_raw: u32,
    /// Effective (unbiased) exponent of the hidden-bit position.
    pub exp_eff: i32,
    /// Left-aligned significand including the hidden bit.
    pub sig: u32,
    /// Width of `sig` in bits (the `M` parameter of the MAC in Fig. 2).
    pub sig_bits: u32,
    /// Number of fraction bits actually present in the encoding
    /// (varies with `k` for Posit/MERSIT; fixed for FP8).
    pub frac_bits: u32,
    /// Raw fraction-field value (right-aligned, `frac_bits` wide).
    pub frac: u32,
}

impl Decoded {
    /// The magnitude this decoding represents, `sig × 2^(exp_eff − (sig_bits−1))`.
    #[must_use]
    pub fn magnitude(&self) -> f64 {
        f64::from(self.sig) * exp2i(self.exp_eff - (self.sig_bits as i32 - 1))
    }

    /// The signed value this decoding represents.
    #[must_use]
    pub fn value(&self) -> f64 {
        let m = self.magnitude();
        if self.sign {
            -m
        } else {
            m
        }
    }
}

impl fmt::Display for Decoded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sign={} k={:?} exp_raw={} exp_eff={} sig={:#0width$b} frac_bits={}",
            u8::from(self.sign),
            self.regime,
            self.exp_raw,
            self.exp_eff,
            self.sig,
            self.frac_bits,
            width = self.sig_bits as usize + 2,
        )
    }
}

/// `2^e` for possibly large-magnitude integer `e`, exact in `f64`
/// for the entire range any 16-bit-or-smaller format can produce.
#[must_use]
pub fn exp2i(e: i32) -> f64 {
    // f64 covers 2^-1074 .. 2^1023; all our formats stay far inside.
    f64::powi(2.0, e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp2i_matches_powers() {
        assert_eq!(exp2i(0), 1.0);
        assert_eq!(exp2i(10), 1024.0);
        assert_eq!(exp2i(-3), 0.125);
        assert_eq!(exp2i(-24), 2.0_f64.powi(-24));
    }

    #[test]
    fn decoded_value_formula() {
        // 1.0110 × 2^3 = 22 × 2^(3-4)
        let d = Decoded {
            sign: false,
            regime: Some(1),
            exp_raw: 0,
            exp_eff: 3,
            sig: 0b10110,
            sig_bits: 5,
            frac_bits: 4,
            frac: 0b0110,
        };
        assert_eq!(d.magnitude(), 22.0 * 0.5);
        let mut n = d;
        n.sign = true;
        assert_eq!(n.value(), -11.0);
    }

    #[test]
    fn class_display_and_predicates() {
        assert!(ValueClass::Finite.is_finite());
        assert!(ValueClass::Zero.is_zero());
        assert!(!ValueClass::Infinite.is_finite());
        assert_eq!(ValueClass::Nan.to_string(), "nan");
    }
}
