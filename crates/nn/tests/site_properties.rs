//! Property tests for the interned activation-site registry: tracing
//! assigns stable, dense [`mersit_nn::SiteId`]s, and the interned table
//! round-trips exactly to the legacy string paths the ad-hoc (untraced)
//! executor builds — on every model in the vision zoo plus `bert_t`.

use mersit_nn::models::{bert_t, vision_zoo};
use mersit_nn::{Ctx, Layer, Model, Site, SiteId, Tap};
use mersit_tensor::{Rng, Tensor};
use proptest::prelude::*;

/// Records every `(id, path)` pair an ad-hoc tapped forward visits, in
/// visit order.
struct Recorder {
    events: Vec<(usize, String)>,
}

impl Tap for Recorder {
    fn activation(&mut self, site: Site<'_>, t: Tensor) -> Tensor {
        self.events.push((site.id.index(), site.path.to_owned()));
        t
    }
}

/// The eight vision-zoo models plus `bert_t`, each paired with a valid
/// input batch.
fn zoo(seed: u64) -> Vec<(Model, Tensor)> {
    let mut input_rng = Rng::new(seed ^ 0xDA7A);
    let mut out: Vec<(Model, Tensor)> = vision_zoo(8, 6, seed)
        .into_iter()
        .map(|m| {
            let x = Tensor::randn(&[2, 3, 8, 8], 1.0, &mut input_rng);
            (m, x)
        })
        .collect();
    let mut rng = Rng::new(seed);
    let bert = bert_t(24, 8, 16, 3, &mut rng);
    let ids = Tensor::from_vec((0..16).map(|v| (v % 24) as f32).collect(), &[2, 8]);
    out.push((bert, ids));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Tracing is deterministic: repeated traces of the same model, and
    /// traces at a different batch size, intern the identical table.
    #[test]
    fn trace_is_stable_across_repeated_forwards(seed in 0u64..(1 << 32)) {
        for (model, x) in zoo(seed) {
            let t1 = model.trace(&x);
            let t2 = model.trace(&x);
            prop_assert_eq!(&t1, &t2, "retrace differs in {}", &model.name);
            let single = x.slice_outer(0, 1);
            let t3 = model.trace(&single);
            prop_assert_eq!(&t1, &t3, "batch-size dependence in {}", &model.name);
            prop_assert!(!t1.is_empty(), "{} traced no sites", &model.name);
        }
    }

    /// The interned table round-trips exactly to the legacy string
    /// paths: an ad-hoc forward visits the same paths in the same
    /// order, ids are dense in visit order, and `get`/`path` are
    /// mutually inverse over every interned site.
    #[test]
    fn table_round_trips_legacy_string_paths(seed in 0u64..(1 << 32)) {
        for (model, x) in zoo(seed) {
            let table = model.trace(&x);
            let mut rec = Recorder { events: Vec::new() };
            let mut ctx = Ctx::with_tap(&mut rec);
            let _ = model.net.forward_ref(x.clone(), &mut ctx);
            prop_assert_eq!(rec.events.len(), table.len(), "site count in {}", &model.name);
            for (i, (id, path)) in rec.events.iter().enumerate() {
                prop_assert_eq!(*id, i, "non-dense ad-hoc id in {}", &model.name);
                prop_assert_eq!(table.path(SiteId(*id as u32)), path.as_str());
                prop_assert_eq!(table.get(path).map(SiteId::index), Some(*id));
            }
        }
    }
}
