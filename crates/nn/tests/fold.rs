//! Batch-norm folding: inference equivalence and structural effects.

use mersit_nn::layer::{Ctx, Layer};
use mersit_nn::models::{mobilenet_v2_t, resnet18_t};
use mersit_nn::{synthetic_images, train_classifier, TrainConfig};
use mersit_tensor::{Rng, Tensor};

fn count_kind(net: &mut dyn Layer, kind: &str) -> usize {
    // Count parameters belonging to layers of this kind via path names.
    let mut n = 0;
    net.visit_params("", &mut |path, _| {
        if path.contains(kind) {
            n += 1;
        }
    });
    n
}

#[test]
fn folding_preserves_inference_outputs() {
    // Train briefly so BN running stats and weights are non-trivial.
    let ds = synthetic_images(31, 300, 40, 8);
    let mut rng = Rng::new(4);
    let mut model = resnet18_t(8, 10, &mut rng);
    train_classifier(
        &mut model.net,
        &ds.train,
        &TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        },
    );
    let x = ds.test.inputs.slice_outer(0, 16);
    let before = model.net.forward(x.clone(), &mut Ctx::inference());
    model.net.fold_bn();
    let after = model.net.forward(x, &mut Ctx::inference());
    assert_eq!(before.shape(), after.shape());
    for (a, b) in before.data().iter().zip(after.data()) {
        assert!(
            (a - b).abs() < 1e-3 * (1.0 + b.abs()),
            "fold changed inference: {a} vs {b}"
        );
    }
}

#[test]
fn folding_removes_batchnorm_layers() {
    let mut rng = Rng::new(5);
    let mut model = mobilenet_v2_t(8, 10, &mut rng);
    assert!(count_kind(&mut model.net, "_bn.") > 0, "model has BNs");
    model.net.fold_bn();
    assert_eq!(count_kind(&mut model.net, "_bn."), 0, "all BNs folded away");
}

#[test]
fn folding_widens_per_channel_weight_spread() {
    // The realism mechanism: after folding, per-output-channel weight
    // maxima spread out (BN scales vary per channel after training).
    let ds = synthetic_images(37, 400, 40, 8);
    let mut rng = Rng::new(6);
    let mut model = mobilenet_v2_t(8, 10, &mut rng);
    train_classifier(
        &mut model.net,
        &ds.train,
        &TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        },
    );
    let spread = |net: &mut dyn Layer| -> f64 {
        // Geometric mean over conv tensors of (max channel max / min
        // channel max).
        let mut log_sum = 0.0f64;
        let mut n = 0usize;
        net.visit_params("", &mut |path, p| {
            if p.value.shape().len() >= 2 && path.contains("conv") {
                let maxes = channel_maxes(&p.value);
                let hi = maxes.iter().copied().fold(0.0f32, f32::max);
                let lo = maxes
                    .iter()
                    .copied()
                    .filter(|&v| v > 0.0)
                    .fold(f32::MAX, f32::min);
                if lo < f32::MAX && lo > 0.0 {
                    log_sum += f64::from(hi / lo).ln();
                    n += 1;
                }
            }
        });
        (log_sum / n as f64).exp()
    };
    let before = spread(&mut model.net);
    model.net.fold_bn();
    let after = spread(&mut model.net);
    assert!(
        after > before,
        "folding should widen channel spread: {before} -> {after}"
    );
}

fn channel_maxes(t: &Tensor) -> Vec<f32> {
    let oc = t.shape()[0];
    let inner: usize = t.shape()[1..].iter().product();
    (0..oc)
        .map(|c| {
            t.data()[c * inner..(c + 1) * inner]
                .iter()
                .fold(0.0f32, |m, &x| m.max(x.abs()))
        })
        .collect()
}
