//! Evaluation metrics matching the GLUE conventions: accuracy, Matthews
//! correlation (CoLA), and F1 (MRPC), plus the shared argmax-over-logits
//! decode step used by every inference path.

use mersit_tensor::Tensor;

/// Argmax per row of a `[N, K]` logits tensor: the predicted class index
/// for each sample. Ties resolve to the *last* maximal index, matching the
/// historical behavior of the inference loops this helper replaced.
///
/// # Panics
///
/// Panics when any logit is NaN (the comparison contract requires finite
/// logits) or when the tensor is not rank-2.
#[must_use]
pub fn argmax_rows(logits: &Tensor) -> Vec<usize> {
    assert_eq!(logits.shape().len(), 2, "argmax_rows expects [N, K] logits");
    let k = logits.shape()[1];
    let n = logits.shape()[0];
    let data = logits.data();
    let mut preds = Vec::with_capacity(n);
    for r in 0..n {
        let row = &data[r * k..(r + 1) * k];
        let arg = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map_or(0, |(j, _)| j);
        preds.push(arg);
    }
    preds
}

/// Fraction of exact matches, in percent.
///
/// # Panics
///
/// Panics on length mismatch or empty inputs.
#[must_use]
pub fn accuracy(preds: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(preds.len(), labels.len(), "length mismatch");
    assert!(!preds.is_empty(), "empty predictions");
    let hits = preds.iter().zip(labels).filter(|(a, b)| a == b).count();
    100.0 * hits as f64 / preds.len() as f64
}

/// Matthews correlation coefficient for binary labels, scaled ×100 as GLUE
/// reports it. Returns 0 when any marginal is empty (the standard
/// convention).
///
/// # Panics
///
/// Panics on length mismatch or non-binary labels.
#[must_use]
pub fn matthews(preds: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(preds.len(), labels.len(), "length mismatch");
    let (mut tp, mut tn, mut fp, mut fneg) = (0f64, 0f64, 0f64, 0f64);
    for (&p, &y) in preds.iter().zip(labels) {
        assert!(p < 2 && y < 2, "matthews needs binary labels");
        match (p, y) {
            (1, 1) => tp += 1.0,
            (0, 0) => tn += 1.0,
            (1, 0) => fp += 1.0,
            (0, 1) => fneg += 1.0,
            _ => unreachable!(),
        }
    }
    let denom = ((tp + fp) * (tp + fneg) * (tn + fp) * (tn + fneg)).sqrt();
    if denom == 0.0 {
        0.0
    } else {
        100.0 * (tp * tn - fp * fneg) / denom
    }
}

/// Binary F1 score of the positive class, in percent.
///
/// # Panics
///
/// Panics on length mismatch or non-binary labels.
#[must_use]
pub fn f1_binary(preds: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(preds.len(), labels.len(), "length mismatch");
    let (mut tp, mut fp, mut fneg) = (0f64, 0f64, 0f64);
    for (&p, &y) in preds.iter().zip(labels) {
        assert!(p < 2 && y < 2, "f1 needs binary labels");
        match (p, y) {
            (1, 1) => tp += 1.0,
            (1, 0) => fp += 1.0,
            (0, 1) => fneg += 1.0,
            _ => {}
        }
    }
    if tp == 0.0 {
        return 0.0;
    }
    let precision = tp / (tp + fp);
    let recall = tp / (tp + fneg);
    100.0 * 2.0 * precision * recall / (precision + recall)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 3]), 100.0);
        assert_eq!(accuracy(&[1, 0, 3], &[1, 2, 3]), 100.0 * 2.0 / 3.0);
    }

    #[test]
    fn matthews_perfect_and_inverse() {
        let y = [1, 0, 1, 0, 1, 1, 0, 0];
        assert!((matthews(&y, &y) - 100.0).abs() < 1e-9);
        let inv: Vec<usize> = y.iter().map(|&v| 1 - v).collect();
        assert!((matthews(&inv, &y) + 100.0).abs() < 1e-9);
    }

    #[test]
    fn matthews_degenerate_predictions_zero() {
        // All-positive predictions on mixed labels → 0 by convention.
        assert_eq!(matthews(&[1, 1, 1, 1], &[1, 0, 1, 0]), 0.0);
    }

    #[test]
    fn f1_known_value() {
        // tp=2, fp=1, fn=1 → precision 2/3, recall 2/3 → F1 = 2/3.
        let p = [1, 1, 1, 0, 0];
        let y = [1, 1, 0, 1, 0];
        assert!((f1_binary(&p, &y) - 100.0 * 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn f1_no_positive_predictions() {
        assert_eq!(f1_binary(&[0, 0], &[1, 0]), 0.0);
    }

    #[test]
    fn argmax_rows_picks_max_per_row() {
        let t = Tensor::from_vec(vec![0.1, 0.9, -0.5, 3.0, -2.0, 1.0], &[2, 3]);
        assert_eq!(argmax_rows(&t), vec![1, 0]);
    }

    #[test]
    fn argmax_rows_ties_resolve_to_last_index() {
        let t = Tensor::from_vec(vec![2.0, 2.0, 1.0, 5.0, 0.0, 5.0], &[2, 3]);
        assert_eq!(argmax_rows(&t), vec![1, 2]);
    }

    #[test]
    fn argmax_rows_handles_infinities() {
        let t = Tensor::from_vec(vec![f32::NEG_INFINITY, 0.0, f32::INFINITY, 0.0], &[2, 2]);
        assert_eq!(argmax_rows(&t), vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "finite logits")]
    fn argmax_rows_rejects_nan() {
        let t = Tensor::from_vec(vec![0.0, f32::NAN], &[1, 2]);
        let _ = argmax_rows(&t);
    }
}
