//! The [`Layer`] trait, forward context, and the activation [`Tap`] hook
//! that the PTQ pipeline uses to observe and fake-quantize activations at
//! every layer boundary.

use crate::param::ParamVisitor;
use mersit_tensor::Tensor;

/// Observer/transformer of inter-layer activations.
///
/// During calibration a tap records per-layer maxima and returns the tensor
/// unchanged; during quantized inference it fake-quantizes the tensor.
pub trait Tap {
    /// Called with each produced activation; returns the (possibly
    /// transformed) tensor that flows onward.
    fn activation(&mut self, path: &str, t: Tensor) -> Tensor;
}

/// Forward-pass context: training flag, hierarchical path, optional tap.
pub struct Ctx<'a> {
    /// Training mode (enables caching for backward, batch statistics).
    pub train: bool,
    path: Vec<String>,
    tap: Option<&'a mut dyn Tap>,
}

impl<'a> Ctx<'a> {
    /// Inference context without a tap.
    #[must_use]
    pub fn inference() -> Self {
        Self {
            train: false,
            path: Vec::new(),
            tap: None,
        }
    }

    /// Training context (caches intermediates for backward).
    #[must_use]
    pub fn training() -> Self {
        Self {
            train: true,
            path: Vec::new(),
            tap: None,
        }
    }

    /// Inference context with an activation tap.
    pub fn with_tap(tap: &'a mut dyn Tap) -> Self {
        Self {
            train: false,
            path: Vec::new(),
            tap: Some(tap),
        }
    }

    /// Pushes a path component (container entering a child).
    pub fn push(&mut self, name: &str) {
        self.path.push(name.to_owned());
    }

    /// Pops a path component.
    pub fn pop(&mut self) {
        self.path.pop();
    }

    /// Current hierarchical path joined with `.`.
    #[must_use]
    pub fn path(&self) -> String {
        self.path.join(".")
    }

    /// Routes an activation through the tap (if any).
    ///
    /// When the `MERSIT_OBS` toggle is on this is also the
    /// activation-stat hook: every tensor that crosses a tap point is
    /// counted (`nn.act.tensors`, `nn.act.elems`) and its max-|x| lands
    /// in the `nn.act.max_abs` histogram — the per-layer visibility that
    /// decides which 8-bit format survives PTQ. Observation only; the
    /// tensor itself is never altered by instrumentation.
    #[must_use]
    pub fn tap_activation(&mut self, t: Tensor) -> Tensor {
        if mersit_obs::enabled() {
            mersit_obs::incr("nn.act.tensors");
            mersit_obs::add("nn.act.elems", t.len() as u64);
            mersit_obs::observe("nn.act.max_abs", f64::from(t.max_abs()));
        }
        let p = self.path();
        match self.tap.as_mut() {
            Some(tap) => tap.activation(&p, t),
            None => t,
        }
    }

    /// Whether a tap is attached.
    #[must_use]
    pub fn has_tap(&self) -> bool {
        self.tap.is_some()
    }
}

/// A differentiable network layer.
///
/// `forward` must cache whatever `backward` needs **only** when
/// `ctx.train` is set; `backward` consumes those caches and returns the
/// gradient with respect to the layer input, accumulating parameter
/// gradients into its [`crate::param::Param`]s.
///
/// The [`std::any::Any`] supertrait allows structural model transforms
/// (such as batch-norm folding) to downcast children of containers.
pub trait Layer: std::any::Any {
    /// Forward pass.
    fn forward(&mut self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor;

    /// Backward pass (valid after a `train` forward).
    fn backward(&mut self, dout: Tensor) -> Tensor;

    /// Visits all trainable parameters with hierarchical names.
    fn visit_params(&mut self, prefix: &str, f: &mut ParamVisitor<'_>);

    /// Short type label used in paths ("conv", "linear", …).
    fn kind(&self) -> &'static str;

    /// Recursively applies batch-norm folding inside nested containers.
    /// Containers override this; leaf layers do nothing.
    fn fold_bn(&mut self) {}
}

/// Joins a prefix and a component with `.` (skipping empty prefixes).
#[must_use]
pub fn join_path(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_owned()
    } else {
        format!("{prefix}.{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_stack() {
        let mut c = Ctx::inference();
        assert_eq!(c.path(), "");
        c.push("net");
        c.push("0");
        assert_eq!(c.path(), "net.0");
        c.pop();
        assert_eq!(c.path(), "net");
    }

    struct Doubler;
    impl Tap for Doubler {
        fn activation(&mut self, _p: &str, t: Tensor) -> Tensor {
            t.scale(2.0)
        }
    }

    #[test]
    fn tap_transforms_activations() {
        let mut tap = Doubler;
        let mut c = Ctx::with_tap(&mut tap);
        let t = Tensor::full(&[2], 3.0);
        let out = c.tap_activation(t);
        assert_eq!(out.data(), &[6.0, 6.0]);
        assert!(c.has_tap());
    }

    #[test]
    fn join_path_rules() {
        assert_eq!(join_path("", "conv"), "conv");
        assert_eq!(join_path("net.0", "w"), "net.0.w");
    }
}
