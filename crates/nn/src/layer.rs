//! The [`Layer`] trait, forward context, and the activation [`Tap`] hook
//! that the PTQ pipeline uses to observe and fake-quantize activations at
//! every layer boundary.
//!
//! Taps receive a [`Site`] — a dense [`SiteId`] plus the dotted path — and
//! the context maintains the path in a single incremental buffer, so the
//! hot loop never re-joins a `Vec<String>` per activation. See
//! [`crate::site`] for the tracing/compiled site machinery.

use crate::param::{ParamVisitor, RefParamVisitor};
use crate::site::{Site, SiteId, SiteTable};
use mersit_tensor::{PackedRhs, Tensor};
use std::sync::Arc;

/// A bit-true replacement for one layer's `x · Wᵀ` GEMM.
///
/// Implementations (the quantized-execution engines in `mersit-ptq`) own
/// the weight in whatever exact representation they need and consume the
/// **float** activation rows, returning the `[rows, out]` product
/// *without* bias — the layer adds its own bias afterwards, exactly as on
/// the float path. Keeping the engine behind a trait object preserves the
/// layering rule that `mersit-nn` knows nothing about quantization.
pub trait BitTrueGemm: std::fmt::Debug + Send + Sync {
    /// Computes `[rows, in] → [rows, out]` for rank-2 `x2` (bias not
    /// included).
    fn gemm(&self, x2: &Tensor) -> Tensor;
}

/// One planned weight override: the quantized value tensor plus,
/// for weights consumed as the rhs of a `x · Wᵀ` GEMM (see
/// [`crate::param::Param::gemm_rhs`]), the same values pre-packed into
/// cache-blocked panels so every forward skips the transpose + pack.
/// The packed panels are **derived** from `value` — bit-identical math,
/// packed once per plan instead of once per sample.
///
/// A slot may instead carry a [`BitTrueGemm`] engine, in which case GEMM
/// consumers route the product through it (exact integer arithmetic on
/// raw codes) and every other consumer still reads `value`.
#[derive(Debug, Clone)]
pub struct PlanWeight {
    /// The override value (what non-GEMM consumers read).
    pub value: Tensor,
    /// `value` packed as the `[in, out]` rhs of `x · Wᵀ`, when the
    /// parameter is a rank-2 GEMM rhs.
    pub packed_t: Option<PackedRhs>,
    /// Bit-true execution engine replacing the float GEMM, when the plan
    /// runs in bit-true mode and the parameter is a rank-2 GEMM rhs.
    pub bit_true: Option<Arc<dyn BitTrueGemm>>,
}

impl PlanWeight {
    /// An override with no packed form (embeddings, depthwise kernels,
    /// rank-≠2 weights).
    #[must_use]
    pub fn plain(value: Tensor) -> Self {
        Self {
            value,
            packed_t: None,
            bit_true: None,
        }
    }

    /// An override pre-packed as a GEMM rhs. `value` must be the usual
    /// `[out, in]` weight layout; the panels describe its transpose.
    ///
    /// # Panics
    ///
    /// Panics unless `value` is rank 2.
    #[must_use]
    pub fn packed_rhs(value: Tensor) -> Self {
        assert_eq!(value.shape().len(), 2, "GEMM rhs weight must be rank 2");
        let (out_dim, in_dim) = (value.shape()[0], value.shape()[1]);
        let packed = PackedRhs::pack_t(value.data(), out_dim, in_dim);
        Self {
            value,
            packed_t: Some(packed),
            bit_true: None,
        }
    }

    /// An override that routes GEMM consumers through a bit-true engine.
    /// `value` stays available for non-GEMM reads (and for reference
    /// comparisons); no float panels are packed — the engine carries its
    /// own packed code matrices.
    #[must_use]
    pub fn with_bit_true(value: Tensor, engine: Arc<dyn BitTrueGemm>) -> Self {
        Self {
            value,
            packed_t: None,
            bit_true: Some(engine),
        }
    }
}

/// Observer/transformer of inter-layer activations.
///
/// During calibration a tap records per-site maxima and returns the tensor
/// unchanged; during quantized inference it fake-quantizes the tensor.
pub trait Tap {
    /// Called with each produced activation; returns the (possibly
    /// transformed) tensor that flows onward.
    fn activation(&mut self, site: Site<'_>, t: Tensor) -> Tensor;
}

/// How the context assigns [`SiteId`]s at tap points.
enum SiteMode<'a> {
    /// Dense ids by visit order, no table. Ids match what a trace of the
    /// same model would assign, because both follow forward order.
    Adhoc { next: u32 },
    /// Interns each tap path into the table (idempotent across batches).
    Trace(&'a mut SiteTable),
    /// Ids by cursor; paths resolved from the traced table instead of the
    /// live buffer — the compatibility shim for obs span names.
    Compiled { table: &'a SiteTable, next: u32 },
}

/// Forward-pass context: training flag, hierarchical path, site mode,
/// optional tap, and optional planned weight overrides.
pub struct Ctx<'a> {
    /// Training mode (enables caching for backward, batch statistics).
    pub train: bool,
    path_buf: String,
    marks: Vec<usize>,
    tap: Option<&'a mut dyn Tap>,
    mode: SiteMode<'a>,
    overrides: Option<&'a [PlanWeight]>,
    override_cursor: usize,
}

impl<'a> Ctx<'a> {
    fn base(train: bool, tap: Option<&'a mut dyn Tap>, mode: SiteMode<'a>) -> Self {
        Self {
            train,
            path_buf: String::new(),
            marks: Vec::new(),
            tap,
            mode,
            overrides: None,
            override_cursor: 0,
        }
    }

    /// Inference context without a tap.
    #[must_use]
    pub fn inference() -> Self {
        Self::base(false, None, SiteMode::Adhoc { next: 0 })
    }

    /// Training context (caches intermediates for backward).
    #[must_use]
    pub fn training() -> Self {
        Self::base(true, None, SiteMode::Adhoc { next: 0 })
    }

    /// Inference context with an activation tap (ad-hoc dense site ids).
    pub fn with_tap(tap: &'a mut dyn Tap) -> Self {
        Self::base(false, Some(tap), SiteMode::Adhoc { next: 0 })
    }

    /// Tracing inference context: interns every tap path into `table`.
    pub fn tracing(table: &'a mut SiteTable) -> Self {
        Self::base(false, None, SiteMode::Trace(table))
    }

    /// Tracing inference context with a tap attached (calibration).
    pub fn tracing_with_tap(table: &'a mut SiteTable, tap: &'a mut dyn Tap) -> Self {
        Self::base(false, Some(tap), SiteMode::Trace(table))
    }

    /// Compiled inference context: site ids advance by cursor in visit
    /// order and tap paths resolve through the traced `table`.
    pub fn compiled(table: &'a SiteTable, tap: &'a mut dyn Tap) -> Self {
        Self::base(false, Some(tap), SiteMode::Compiled { table, next: 0 })
    }

    /// Attaches planned weight overrides: layers consume one slot per
    /// rank-≥2 parameter, in `visit_params` order (builder style).
    #[must_use]
    pub fn with_overrides(mut self, weights: &'a [PlanWeight]) -> Self {
        self.overrides = Some(weights);
        self.override_cursor = 0;
        self
    }

    /// Pushes a path component (container entering a child).
    pub fn push(&mut self, name: &str) {
        self.marks.push(self.path_buf.len());
        if !self.path_buf.is_empty() {
            self.path_buf.push('.');
        }
        self.path_buf.push_str(name);
    }

    /// Pops a path component.
    pub fn pop(&mut self) {
        let mark = self.marks.pop().expect("pop without matching push");
        self.path_buf.truncate(mark);
    }

    /// Current hierarchical path joined with `.` (maintained incrementally;
    /// no per-call allocation).
    #[must_use]
    pub fn path(&self) -> &str {
        &self.path_buf
    }

    /// The next planned weight override, advancing the cursor — or `None`
    /// when the context carries no plan. Layers call this exactly once per
    /// rank-≥2 parameter, in `visit_params` order, which is the order the
    /// plan builder filled the slots in.
    pub fn next_override(&mut self) -> Option<&'a PlanWeight> {
        let slice = self.overrides?;
        let i = self.override_cursor;
        assert!(
            i < slice.len(),
            "weight-override cursor overran the plan ({} slots)",
            slice.len()
        );
        self.override_cursor += 1;
        Some(&slice[i])
    }

    /// Number of override slots consumed so far (plan executors assert
    /// this equals the plan length after a forward).
    #[must_use]
    pub fn overrides_consumed(&self) -> usize {
        self.override_cursor
    }

    /// Routes an activation through the tap (if any).
    ///
    /// When the `MERSIT_OBS` toggle is on this is also the
    /// activation-stat hook: every tensor that crosses a tap point is
    /// counted (`nn.act.tensors`, `nn.act.elems`) and its max-|x| lands
    /// in the `nn.act.max_abs` histogram — the per-layer visibility that
    /// decides which 8-bit format survives PTQ. Observation only; the
    /// tensor itself is never altered by instrumentation.
    #[must_use]
    pub fn tap_activation(&mut self, t: Tensor) -> Tensor {
        if mersit_obs::enabled() {
            mersit_obs::incr("nn.act.tensors");
            mersit_obs::add("nn.act.elems", t.len() as u64);
            mersit_obs::observe("nn.act.max_abs", f64::from(t.max_abs()));
        }
        let Self {
            path_buf,
            tap,
            mode,
            ..
        } = self;
        let (id, path): (SiteId, &str) = match mode {
            SiteMode::Adhoc { next } => {
                let id = SiteId(*next);
                *next += 1;
                (id, path_buf.as_str())
            }
            SiteMode::Trace(table) => (table.intern(path_buf), path_buf.as_str()),
            SiteMode::Compiled { table, next } => {
                let id = SiteId(*next);
                *next += 1;
                let path = table.path(id);
                debug_assert_eq!(
                    path,
                    path_buf.as_str(),
                    "compiled forward diverged from the traced site order"
                );
                (id, path)
            }
        };
        match tap {
            Some(tap) => tap.activation(Site { id, path }, t),
            None => t,
        }
    }

    /// Whether a tap is attached.
    #[must_use]
    pub fn has_tap(&self) -> bool {
        self.tap.is_some()
    }
}

/// A differentiable network layer.
///
/// `forward` must cache whatever `backward` needs **only** when
/// `ctx.train` is set; `backward` consumes those caches and returns the
/// gradient with respect to the layer input, accumulating parameter
/// gradients into its [`crate::param::Param`]s.
///
/// `forward_ref` is the shared-reference inference entry point: it borrows
/// the layer (and thus every parameter) read-only, so any number of
/// forwards can run concurrently over one model. Non-training `forward`
/// calls delegate to it, which guarantees the two paths are bit-identical.
///
/// The [`std::any::Any`] supertrait allows structural model transforms
/// (such as batch-norm folding) to downcast children of containers; the
/// `Send + Sync` supertraits let `&Model` cross scoped-thread boundaries
/// for parallel PTQ sweeps.
pub trait Layer: std::any::Any + Send + Sync {
    /// Forward pass (exclusive borrow; required for training).
    fn forward(&mut self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor;

    /// Inference forward over a shared borrow. Must ignore `ctx.train`
    /// caching (there is nowhere to cache) and produce bit-identical
    /// outputs to a non-training `forward`.
    fn forward_ref(&self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor;

    /// Backward pass (valid after a `train` forward).
    fn backward(&mut self, dout: Tensor) -> Tensor;

    /// Visits all trainable parameters with hierarchical names.
    fn visit_params(&mut self, prefix: &str, f: &mut ParamVisitor<'_>);

    /// Read-only parameter visit, same order and names as `visit_params`.
    fn visit_params_ref(&self, prefix: &str, f: &mut RefParamVisitor<'_>);

    /// Short type label used in paths ("conv", "linear", …).
    fn kind(&self) -> &'static str;

    /// Recursively applies batch-norm folding inside nested containers.
    /// Containers override this; leaf layers do nothing.
    fn fold_bn(&mut self) {}
}

/// Joins a prefix and a component with `.` (skipping empty prefixes).
#[must_use]
pub fn join_path(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_owned()
    } else {
        format!("{prefix}.{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_stack() {
        let mut c = Ctx::inference();
        assert_eq!(c.path(), "");
        c.push("net");
        c.push("0");
        assert_eq!(c.path(), "net.0");
        c.pop();
        assert_eq!(c.path(), "net");
        c.pop();
        assert_eq!(c.path(), "");
    }

    struct Doubler;
    impl Tap for Doubler {
        fn activation(&mut self, _site: Site<'_>, t: Tensor) -> Tensor {
            t.scale(2.0)
        }
    }

    #[test]
    fn tap_transforms_activations() {
        let mut tap = Doubler;
        let mut c = Ctx::with_tap(&mut tap);
        let t = Tensor::full(&[2], 3.0);
        let out = c.tap_activation(t);
        assert_eq!(out.data(), &[6.0, 6.0]);
        assert!(c.has_tap());
    }

    struct Sites(Vec<(u32, String)>);
    impl Tap for Sites {
        fn activation(&mut self, site: Site<'_>, t: Tensor) -> Tensor {
            self.0.push((site.id.0, site.path.to_owned()));
            t
        }
    }

    #[test]
    fn adhoc_ids_are_dense_in_visit_order() {
        let mut tap = Sites(Vec::new());
        let mut c = Ctx::with_tap(&mut tap);
        c.push("a");
        let _ = c.tap_activation(Tensor::zeros(&[1]));
        c.pop();
        c.push("b");
        let _ = c.tap_activation(Tensor::zeros(&[1]));
        c.pop();
        assert_eq!(tap.0, vec![(0, "a".to_owned()), (1, "b".to_owned())]);
    }

    #[test]
    fn tracing_interns_and_compiled_replays() {
        let mut table = SiteTable::new();
        {
            let mut c = Ctx::tracing(&mut table);
            c.push("x");
            let _ = c.tap_activation(Tensor::zeros(&[1]));
            c.pop();
            c.push("y");
            let _ = c.tap_activation(Tensor::zeros(&[1]));
            c.pop();
        }
        assert_eq!(table.len(), 2);
        assert_eq!(table.get("x").map(crate::site::SiteId::index), Some(0));
        // Compiled mode resolves paths through the table.
        let mut tap = Sites(Vec::new());
        let mut c = Ctx::compiled(&table, &mut tap);
        c.push("x");
        let _ = c.tap_activation(Tensor::zeros(&[1]));
        c.pop();
        c.push("y");
        let _ = c.tap_activation(Tensor::zeros(&[1]));
        c.pop();
        assert_eq!(tap.0, vec![(0, "x".to_owned()), (1, "y".to_owned())]);
    }

    #[test]
    fn overrides_consumed_in_order() {
        let a = PlanWeight::plain(Tensor::full(&[1], 1.0));
        let b = PlanWeight::packed_rhs(Tensor::full(&[1, 1], 2.0));
        let slots = [a, b];
        let mut c = Ctx::inference().with_overrides(&slots);
        assert_eq!(c.next_override().unwrap().value.data(), &[1.0]);
        let second = c.next_override().unwrap();
        assert_eq!(second.value.data(), &[2.0]);
        assert!(second.packed_t.is_some());
        assert_eq!(c.overrides_consumed(), 2);
        let mut plain = Ctx::inference();
        assert!(plain.next_override().is_none());
        assert_eq!(plain.overrides_consumed(), 0);
    }

    #[test]
    fn join_path_rules() {
        assert_eq!(join_path("", "conv"), "conv");
        assert_eq!(join_path("net.0", "w"), "net.0.w");
    }
}
