//! Interned activation-site registry.
//!
//! A one-time *tracing* forward pass (see [`trace_sites`]) assigns every
//! tap point a dense [`SiteId`] in forward order and records the
//! `SiteId ↔ path-string` table. Hot inference loops then carry the `u32`
//! id instead of re-joining dotted path strings per activation; the legacy
//! string path stays available through the table for observability span
//! names and debugging.
//!
//! # Site contract
//!
//! For a fixed model structure the forward pass visits tap points in a
//! deterministic order, so:
//!
//! * tracing the same model twice yields identical tables;
//! * the ids a *compiled* forward assigns by cursor (0, 1, 2, … in visit
//!   order) match the traced ids exactly;
//! * `table.get(table.path(id)) == Some(id)` for every interned id.

use crate::layer::{Ctx, Layer};
use mersit_tensor::Tensor;
use std::collections::HashMap;

/// Dense index of one activation tap point, assigned in forward order by
/// a tracing pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u32);

impl SiteId {
    /// The id as a slice index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One activation tap point as a [`crate::layer::Tap`] sees it: the dense
/// id plus the dotted path (resolved via the interned table in compiled
/// mode — never `format!`ed per activation).
#[derive(Debug, Clone, Copy)]
pub struct Site<'a> {
    /// Dense trace-order id.
    pub id: SiteId,
    /// Hierarchical dotted path, e.g. `"3_residual.main.1_bn"`.
    pub path: &'a str,
}

/// Bidirectional `SiteId ↔ path` table built by a tracing forward pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiteTable {
    paths: Vec<String>,
    index: HashMap<String, u32>,
}

impl SiteTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `path`, returning its dense id. Idempotent: re-interning an
    /// existing path returns the original id.
    pub fn intern(&mut self, path: &str) -> SiteId {
        if let Some(&i) = self.index.get(path) {
            return SiteId(i);
        }
        let i = u32::try_from(self.paths.len()).expect("more than u32::MAX tap sites");
        self.paths.push(path.to_owned());
        self.index.insert(path.to_owned(), i);
        SiteId(i)
    }

    /// The id previously assigned to `path`, if any.
    #[must_use]
    pub fn get(&self, path: &str) -> Option<SiteId> {
        self.index.get(path).copied().map(SiteId)
    }

    /// The path interned under `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` was not assigned by this table (a compiled forward
    /// visiting more sites than its trace did breaks the site contract).
    #[must_use]
    pub fn path(&self, id: SiteId) -> &str {
        &self.paths[id.index()]
    }

    /// Number of interned sites.
    #[must_use]
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True when no site has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Iterates `(id, path)` pairs in trace order.
    pub fn iter(&self) -> impl Iterator<Item = (SiteId, &str)> {
        self.paths
            .iter()
            .enumerate()
            .map(|(i, p)| (SiteId(i as u32), p.as_str()))
    }
}

/// Runs one tracing forward pass over `net` (shared-reference, inference
/// mode) and returns the interned site table.
#[must_use]
pub fn trace_sites(net: &dyn Layer, x: &Tensor) -> SiteTable {
    let mut table = SiteTable::new();
    let mut ctx = Ctx::tracing(&mut table);
    let _ = net.forward_ref(x.clone(), &mut ctx);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut t = SiteTable::new();
        let a = t.intern("conv0");
        let b = t.intern("conv1");
        assert_eq!(a, SiteId(0));
        assert_eq!(b, SiteId(1));
        assert_eq!(t.intern("conv0"), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn round_trips_ids_and_paths() {
        let mut t = SiteTable::new();
        for p in ["a", "b.c", "b.d"] {
            let id = t.intern(p);
            assert_eq!(t.path(id), p);
            assert_eq!(t.get(p), Some(id));
        }
        assert_eq!(t.get("missing"), None);
        let collected: Vec<_> = t.iter().map(|(id, p)| (id.index(), p.to_owned())).collect();
        assert_eq!(
            collected,
            vec![
                (0, "a".to_owned()),
                (1, "b.c".to_owned()),
                (2, "b.d".to_owned())
            ]
        );
    }
}
