//! Composite blocks: residual connections (ResNet / MobileNetV2 inverted
//! bottlenecks) and squeeze-and-excitation (MobileNetV3 / EfficientNet).

use crate::layer::{join_path, Ctx, Layer};
use crate::layers::{Act, ActKind, Linear, Sequential};
use crate::param::{ParamVisitor, RefParamVisitor};
use mersit_tensor::{dims4, global_avg_pool, global_avg_pool_backward, Rng, Tensor};

/// `out = main(x) + shortcut(x)`; the shortcut is identity when `None`.
#[derive(Debug)]
pub struct Residual {
    /// Main branch.
    pub main: Sequential,
    /// Optional projection shortcut (stride/channel changes).
    pub shortcut: Option<Sequential>,
}

impl Residual {
    /// Residual block with identity shortcut.
    #[must_use]
    pub fn new(main: Sequential) -> Self {
        Self {
            main,
            shortcut: None,
        }
    }

    /// Residual block with a projection shortcut.
    #[must_use]
    pub fn with_shortcut(main: Sequential, shortcut: Sequential) -> Self {
        Self {
            main,
            shortcut: Some(shortcut),
        }
    }
}

impl Layer for Residual {
    fn fold_bn(&mut self) {
        self.main.fold_bn();
        if let Some(sc) = &mut self.shortcut {
            sc.fold_bn();
        }
    }

    fn forward(&mut self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        if !ctx.train {
            return self.forward_ref(x, ctx);
        }
        ctx.push("main");
        let m = self.main.forward(x.clone(), ctx);
        ctx.pop();
        let s = match &mut self.shortcut {
            Some(sc) => {
                ctx.push("shortcut");
                let s = sc.forward(x, ctx);
                ctx.pop();
                s
            }
            None => x,
        };
        let sum = m.add(&s);
        ctx.push("add");
        let out = ctx.tap_activation(sum);
        ctx.pop();
        out
    }

    fn forward_ref(&self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        ctx.push("main");
        let m = self.main.forward_ref(x.clone(), ctx);
        ctx.pop();
        let s = match &self.shortcut {
            Some(sc) => {
                ctx.push("shortcut");
                let s = sc.forward_ref(x, ctx);
                ctx.pop();
                s
            }
            None => x,
        };
        let sum = m.add(&s);
        ctx.push("add");
        let out = ctx.tap_activation(sum);
        ctx.pop();
        out
    }

    fn backward(&mut self, dout: Tensor) -> Tensor {
        let dm = self.main.backward(dout.clone());
        let ds = match &mut self.shortcut {
            Some(sc) => sc.backward(dout),
            None => dout,
        };
        dm.add(&ds)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut ParamVisitor<'_>) {
        self.main.visit_params(&join_path(prefix, "main"), f);
        if let Some(sc) = &mut self.shortcut {
            sc.visit_params(&join_path(prefix, "shortcut"), f);
        }
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut RefParamVisitor<'_>) {
        self.main.visit_params_ref(&join_path(prefix, "main"), f);
        if let Some(sc) = &self.shortcut {
            sc.visit_params_ref(&join_path(prefix, "shortcut"), f);
        }
    }

    fn kind(&self) -> &'static str {
        "residual"
    }
}

/// Squeeze-and-excitation: global pool → FC → ReLU → FC → sigmoid →
/// per-channel rescale of the input.
#[derive(Debug)]
pub struct SEBlock {
    fc1: Linear,
    act: Act,
    fc2: Linear,
    gate: Act,
    cache: Option<SeCache>,
}

#[derive(Debug)]
struct SeCache {
    x: Tensor,
    scale: Tensor, // [N, C]
}

impl SEBlock {
    /// SE block over `ch` channels with reduction ratio `r`.
    #[must_use]
    pub fn new(ch: usize, r: usize, rng: &mut Rng) -> Self {
        let mid = (ch / r).max(1);
        Self {
            fc1: Linear::new(ch, mid, rng),
            act: Act::new(ActKind::Relu),
            fc2: Linear::new(mid, ch, rng),
            gate: Act::new(ActKind::Sigmoid),
            cache: None,
        }
    }
}

impl Layer for SEBlock {
    fn forward(&mut self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        if !ctx.train {
            return self.forward_ref(x, ctx);
        }
        let (n, c, h, w) = dims4(&x);
        let pooled = global_avg_pool(&x); // [N, C]
        ctx.push("fc1");
        let s = self.fc1.forward(pooled, ctx);
        ctx.pop();
        let s = self.act.forward(s, ctx);
        ctx.push("fc2");
        let s = self.fc2.forward(s, ctx);
        ctx.pop();
        let scale = self.gate.forward(s, ctx); // [N, C] in (0,1)
                                               // Rescale channels.
        let mut out = x.clone();
        let sd = scale.data().to_vec();
        {
            let od = out.data_mut();
            for ni in 0..n {
                for ci in 0..c {
                    let g = sd[ni * c + ci];
                    let base = (ni * c + ci) * h * w;
                    for v in &mut od[base..base + h * w] {
                        *v *= g;
                    }
                }
            }
        }
        self.cache = Some(SeCache { x, scale });
        ctx.push("scale");
        let out = ctx.tap_activation(out);
        ctx.pop();
        out
    }

    fn forward_ref(&self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        let (n, c, h, w) = dims4(&x);
        let pooled = global_avg_pool(&x); // [N, C]
        ctx.push("fc1");
        let s = self.fc1.forward_ref(pooled, ctx);
        ctx.pop();
        let s = self.act.forward_ref(s, ctx);
        ctx.push("fc2");
        let s = self.fc2.forward_ref(s, ctx);
        ctx.pop();
        let scale = self.gate.forward_ref(s, ctx); // [N, C] in (0,1)
        let mut out = x;
        let sd = scale.data().to_vec();
        {
            let od = out.data_mut();
            for ni in 0..n {
                for ci in 0..c {
                    let g = sd[ni * c + ci];
                    let base = (ni * c + ci) * h * w;
                    for v in &mut od[base..base + h * w] {
                        *v *= g;
                    }
                }
            }
        }
        ctx.push("scale");
        let out = ctx.tap_activation(out);
        ctx.pop();
        out
    }

    fn backward(&mut self, dout: Tensor) -> Tensor {
        let SeCache { x, scale } = self.cache.take().expect("backward before forward");
        let (n, c, h, w) = dims4(&x);
        let (dd, xd, sd) = (dout.data(), x.data(), scale.data());
        // d scale[n,c] = Σ_hw dout·x ; dx (direct path) = dout·scale
        let mut dscale = vec![0.0f32; n * c];
        let mut dx = vec![0.0f32; x.len()];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                let g = sd[ni * c + ci];
                let mut acc = 0.0;
                for i in base..base + h * w {
                    acc += dd[i] * xd[i];
                    dx[i] = dd[i] * g;
                }
                dscale[ni * c + ci] = acc;
            }
        }
        // Back through gate → fc2 → act → fc1 → global pool.
        let g1 = self.gate.backward(Tensor::from_vec(dscale, &[n, c]));
        let g2 = self.fc2.backward(g1);
        let g3 = self.act.backward(g2);
        let g4 = self.fc1.backward(g3); // [N, C]
        let dpool = global_avg_pool_backward(&g4, x.shape());
        let mut dx_t = Tensor::from_vec(dx, x.shape());
        dx_t.axpy(1.0, &dpool);
        dx_t
    }

    fn visit_params(&mut self, prefix: &str, f: &mut ParamVisitor<'_>) {
        self.fc1.visit_params(&join_path(prefix, "fc1"), f);
        self.fc2.visit_params(&join_path(prefix, "fc2"), f);
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut RefParamVisitor<'_>) {
        self.fc1.visit_params_ref(&join_path(prefix, "fc1"), f);
        self.fc2.visit_params_ref(&join_path(prefix, "fc2"), f);
    }

    fn kind(&self) -> &'static str {
        "se"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{BatchNorm2d, Conv2d};

    fn dot(a: &Tensor, b: &Tensor) -> f32 {
        a.data().iter().zip(b.data()).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn residual_identity_forward() {
        let mut rng = Rng::new(1);
        let mut main = Sequential::new();
        main.push(Conv2d::new(3, 3, 3, 1, 1, &mut rng));
        let mut block = Residual::new(main);
        let x = Tensor::randn(&[1, 3, 4, 4], 1.0, &mut rng);
        let y = block.forward(x.clone(), &mut Ctx::inference());
        assert_eq!(y.shape(), x.shape());
    }

    #[test]
    fn residual_backward_numerical() {
        let mut rng = Rng::new(2);
        let mut main = Sequential::new();
        main.push(Conv2d::new(2, 2, 3, 1, 1, &mut rng));
        main.push(Act::new(ActKind::Tanh));
        let mut block = Residual::new(main);
        let x = Tensor::randn(&[1, 2, 3, 3], 1.0, &mut rng);
        let y = block.forward(x.clone(), &mut Ctx::training());
        let r = Tensor::randn(y.shape(), 1.0, &mut rng);
        let dx = block.backward(r.clone());
        let eps = 1e-2;
        for &i in &[0usize, 5, 11, 17] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let yp = block.forward(xp, &mut Ctx::training());
            let _ = block.backward(r.clone()); // consume cache
            let ym = block.forward(xm, &mut Ctx::training());
            let _ = block.backward(r.clone());
            let num = (dot(&yp, &r) - dot(&ym, &r)) / (2.0 * eps);
            assert!((num - dx.data()[i]).abs() < 3e-2, "dx[{i}]");
        }
    }

    #[test]
    fn residual_with_projection_shortcut() {
        let mut rng = Rng::new(3);
        let mut main = Sequential::new();
        main.push(Conv2d::new(2, 4, 3, 2, 1, &mut rng));
        let mut sc = Sequential::new();
        sc.push(Conv2d::new(2, 4, 1, 2, 0, &mut rng));
        let mut block = Residual::with_shortcut(main, sc);
        let x = Tensor::randn(&[1, 2, 6, 6], 1.0, &mut rng);
        let y = block.forward(x, &mut Ctx::inference());
        assert_eq!(y.shape(), &[1, 4, 3, 3]);
    }

    #[test]
    fn se_block_scales_channels() {
        let mut rng = Rng::new(4);
        let mut se = SEBlock::new(4, 2, &mut rng);
        let x = Tensor::full(&[1, 4, 3, 3], 1.0);
        let y = se.forward(x.clone(), &mut Ctx::inference());
        // Each output channel is a constant in (0,1) times the input.
        for ci in 0..4 {
            let v = y.at(&[0, ci, 0, 0]);
            assert!(v > 0.0 && v < 1.0, "channel {ci}: {v}");
            assert!((y.at(&[0, ci, 2, 2]) - v).abs() < 1e-6);
        }
    }

    #[test]
    fn se_backward_numerical() {
        let mut rng = Rng::new(5);
        let mut se = SEBlock::new(2, 2, &mut rng);
        let x = Tensor::randn(&[1, 2, 3, 3], 1.0, &mut rng);
        let y = se.forward(x.clone(), &mut Ctx::training());
        let r = Tensor::randn(y.shape(), 1.0, &mut rng);
        let dx = se.backward(r.clone());
        let eps = 1e-2;
        for &i in &[0usize, 4, 9, 17] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let yp = se.forward(xp, &mut Ctx::training());
            let _ = se.backward(r.clone());
            let ym = se.forward(xm, &mut Ctx::training());
            let _ = se.backward(r.clone());
            let num = (dot(&yp, &r) - dot(&ym, &r)) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < 3e-2,
                "dx[{i}]: {num} vs {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn residual_taps_the_sum() {
        struct Names(Vec<String>);
        impl crate::layer::Tap for Names {
            fn activation(&mut self, site: crate::site::Site<'_>, t: Tensor) -> Tensor {
                self.0.push(site.path.to_owned());
                t
            }
        }
        let mut rng = Rng::new(6);
        let mut main = Sequential::new();
        main.push(BatchNorm2d::new(2));
        let mut block = Residual::new(main);
        let mut tap = Names(Vec::new());
        let mut ctx = Ctx::with_tap(&mut tap);
        let _ = block.forward(Tensor::randn(&[1, 2, 2, 2], 1.0, &mut rng), &mut ctx);
        assert!(tap.0.iter().any(|p| p.ends_with("add")), "{:?}", tap.0);
        assert!(tap.0.iter().any(|p| p.contains("main")), "{:?}", tap.0);
    }
}
