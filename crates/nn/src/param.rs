//! Trainable parameters: a value tensor paired with its gradient
//! accumulator.

use mersit_tensor::Tensor;

/// A trainable parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the last backward pass.
    pub grad: Tensor,
    /// True when inference consumes this parameter as the rhs of a
    /// `x · Wᵀ` GEMM (Linear / im2col Conv2d weights), so plan builders
    /// know to pre-pack it into [`mersit_tensor::PackedRhs`] panels.
    pub gemm_rhs: bool,
}

impl Param {
    /// Wraps an initial value with a zeroed gradient.
    #[must_use]
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Self {
            value,
            grad,
            gemm_rhs: false,
        }
    }

    /// [`Param::new`], flagged as a GEMM rhs weight (see
    /// [`Param::gemm_rhs`]).
    #[must_use]
    pub fn new_gemm_rhs(value: Tensor) -> Self {
        let mut p = Self::new(value);
        p.gemm_rhs = true;
        p
    }

    /// Zeroes the gradient.
    pub fn zero_grad(&mut self) {
        self.grad = Tensor::zeros(self.value.shape());
    }

    /// Number of scalar parameters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True when the parameter is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// Visitor callback type for parameter traversal.
pub type ParamVisitor<'a> = dyn FnMut(&str, &mut Param) + 'a;

/// Read-only visitor callback type — same traversal order and names as
/// [`ParamVisitor`], over a shared borrow (used by plan builders that
/// quantize weights without mutating the model).
pub type RefParamVisitor<'a> = dyn FnMut(&str, &Param) + 'a;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Tensor::full(&[2, 3], 1.5));
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::zeros(&[4]));
        p.grad = Tensor::full(&[4], 2.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }
}
