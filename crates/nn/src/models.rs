//! The miniature model zoo — one architecture-family analogue per row of
//! the paper's Table 2.
//!
//! Each builder reproduces the *distribution mechanisms* of its family:
//!
//! | Paper model | Analogue | Mechanism carried over |
//! |---|---|---|
//! | VGG16 | `vgg_t` | plain conv + ReLU, no normalization |
//! | ResNet18 | `resnet18_t` | basic residual blocks + BN |
//! | ResNet50 | `resnet50_t` | bottleneck residuals + BN |
//! | ResNet101 | `resnet101_t` | deeper bottleneck stack |
//! | MobileNet_v2 | `mobilenet_v2_t` | inverted bottlenecks, depthwise conv, ReLU6, linear projections |
//! | MobileNet_v3 | `mobilenet_v3_t` | + h-swish and squeeze-excitation |
//! | EfficientNet_b0 | `efficientnet_b0_t` | MBConv with SiLU + SE |
//! | EfficientNet_v2 | `efficientnet_v2_t` | fused-MBConv stage + MBConv stage, SiLU |
//! | BERT-base | `bert_t` | embeddings, pre-norm transformer encoders, GELU FFN, CLS head |

use crate::attention::{Embedding, LayerNorm, TakeCls, TransformerBlock};
use crate::blocks::{Residual, SEBlock};
use crate::layers::{
    Act, ActKind, BatchNorm2d, Conv2d, DwConv2d, Flatten, GlobalAvgPool, Linear, MaxPool2d,
    Sequential,
};
use mersit_tensor::Rng;

/// What a model consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputKind {
    /// NCHW image tensors — the input itself is quantized in PTQ.
    Image,
    /// Integer token ids — never quantized.
    Tokens,
}

/// A named network.
#[derive(Debug)]
pub struct Model {
    /// Analogue name (e.g. `"mobilenet_v2_t"`).
    pub name: String,
    /// The network.
    pub net: Sequential,
    /// Input kind.
    pub input: InputKind,
}

impl Model {
    /// Runs one tracing forward pass over a representative input and
    /// returns the interned [`crate::site::SiteTable`] mapping every
    /// activation tap point to its dense [`crate::site::SiteId`].
    #[must_use]
    pub fn trace(&self, x: &mersit_tensor::Tensor) -> crate::site::SiteTable {
        crate::site::trace_sites(&self.net, x)
    }
}

fn conv_bn(
    seq: &mut Sequential,
    cin: usize,
    cout: usize,
    k: usize,
    s: usize,
    p: usize,
    act: ActKind,
    rng: &mut Rng,
) {
    seq.push(Conv2d::new(cin, cout, k, s, p, rng));
    seq.push(BatchNorm2d::new(cout));
    seq.push(Act::new(act));
}

/// VGG-style: plain convolutions + ReLU, max pooling, FC head.
#[must_use]
pub fn vgg_t(hw: usize, classes: usize, rng: &mut Rng) -> Model {
    let mut net = Sequential::new();
    net.push(Conv2d::new(3, 16, 3, 1, 1, rng));
    net.push(Act::new(ActKind::Relu));
    net.push(Conv2d::new(16, 16, 3, 1, 1, rng));
    net.push(Act::new(ActKind::Relu));
    net.push(MaxPool2d::new(2, 2));
    net.push(Conv2d::new(16, 32, 3, 1, 1, rng));
    net.push(Act::new(ActKind::Relu));
    net.push(Conv2d::new(32, 32, 3, 1, 1, rng));
    net.push(Act::new(ActKind::Relu));
    net.push(MaxPool2d::new(2, 2));
    net.push(Flatten::new());
    let sp = hw / 4;
    net.push(Linear::new(32 * sp * sp, 64, rng));
    net.push(Act::new(ActKind::Relu));
    net.push(Linear::new(64, classes, rng));
    Model {
        name: "vgg_t".into(),
        net,
        input: InputKind::Image,
    }
}

fn basic_block(ch: usize, rng: &mut Rng) -> Residual {
    let mut main = Sequential::new();
    conv_bn(&mut main, ch, ch, 3, 1, 1, ActKind::Relu, rng);
    main.push(Conv2d::new(ch, ch, 3, 1, 1, rng));
    main.push(BatchNorm2d::new(ch));
    Residual::new(main)
}

fn down_block(cin: usize, cout: usize, rng: &mut Rng) -> Residual {
    let mut main = Sequential::new();
    conv_bn(&mut main, cin, cout, 3, 2, 1, ActKind::Relu, rng);
    main.push(Conv2d::new(cout, cout, 3, 1, 1, rng));
    main.push(BatchNorm2d::new(cout));
    let mut sc = Sequential::new();
    sc.push(Conv2d::new(cin, cout, 1, 2, 0, rng));
    sc.push(BatchNorm2d::new(cout));
    Residual::with_shortcut(main, sc)
}

/// ResNet18-style: basic residual blocks.
#[must_use]
pub fn resnet18_t(_hw: usize, classes: usize, rng: &mut Rng) -> Model {
    let mut net = Sequential::new();
    conv_bn(&mut net, 3, 16, 3, 1, 1, ActKind::Relu, rng);
    net.push(basic_block(16, rng));
    net.push(Act::new(ActKind::Relu));
    net.push(basic_block(16, rng));
    net.push(Act::new(ActKind::Relu));
    net.push(down_block(16, 32, rng));
    net.push(Act::new(ActKind::Relu));
    net.push(basic_block(32, rng));
    net.push(Act::new(ActKind::Relu));
    net.push(GlobalAvgPool::new());
    net.push(Linear::new(32, classes, rng));
    Model {
        name: "resnet18_t".into(),
        net,
        input: InputKind::Image,
    }
}

fn bottleneck(cin: usize, mid: usize, cout: usize, stride: usize, rng: &mut Rng) -> Residual {
    let mut main = Sequential::new();
    conv_bn(&mut main, cin, mid, 1, 1, 0, ActKind::Relu, rng);
    conv_bn(&mut main, mid, mid, 3, stride, 1, ActKind::Relu, rng);
    main.push(Conv2d::new(mid, cout, 1, 1, 0, rng));
    main.push(BatchNorm2d::new(cout));
    if cin == cout && stride == 1 {
        Residual::new(main)
    } else {
        let mut sc = Sequential::new();
        sc.push(Conv2d::new(cin, cout, 1, stride, 0, rng));
        sc.push(BatchNorm2d::new(cout));
        Residual::with_shortcut(main, sc)
    }
}

fn resnet_bottleneck_model(
    name: &str,
    blocks_per_stage: usize,
    classes: usize,
    rng: &mut Rng,
) -> Model {
    let mut net = Sequential::new();
    conv_bn(&mut net, 3, 16, 3, 1, 1, ActKind::Relu, rng);
    net.push(bottleneck(16, 8, 32, 1, rng));
    net.push(Act::new(ActKind::Relu));
    for _ in 1..blocks_per_stage {
        net.push(bottleneck(32, 8, 32, 1, rng));
        net.push(Act::new(ActKind::Relu));
    }
    net.push(bottleneck(32, 16, 64, 2, rng));
    net.push(Act::new(ActKind::Relu));
    for _ in 1..blocks_per_stage {
        net.push(bottleneck(64, 16, 64, 1, rng));
        net.push(Act::new(ActKind::Relu));
    }
    net.push(GlobalAvgPool::new());
    net.push(Linear::new(64, classes, rng));
    Model {
        name: name.into(),
        net,
        input: InputKind::Image,
    }
}

/// ResNet50-style: bottleneck residuals (2 per stage).
#[must_use]
pub fn resnet50_t(_hw: usize, classes: usize, rng: &mut Rng) -> Model {
    resnet_bottleneck_model("resnet50_t", 2, classes, rng)
}

/// ResNet101-style: deeper bottleneck stack (3 per stage).
#[must_use]
pub fn resnet101_t(_hw: usize, classes: usize, rng: &mut Rng) -> Model {
    resnet_bottleneck_model("resnet101_t", 3, classes, rng)
}

/// MobileNetV2-style inverted residual (expand → depthwise → linear
/// project); `act` selects ReLU6 / h-swish / SiLU, `se` adds
/// squeeze-excitation after the depthwise stage.
fn inverted_residual(
    cin: usize,
    cout: usize,
    expand: usize,
    stride: usize,
    act: ActKind,
    se: bool,
    rng: &mut Rng,
) -> Box<dyn crate::layer::Layer> {
    let mid = cin * expand;
    let mut main = Sequential::new();
    conv_bn(&mut main, cin, mid, 1, 1, 0, act, rng);
    main.push(DwConv2d::new(mid, 3, stride, 1, rng));
    main.push(BatchNorm2d::new(mid));
    main.push(Act::new(act));
    if se {
        main.push(SEBlock::new(mid, 4, rng));
    }
    // Linear (activation-free) projection — the V2 signature.
    main.push(Conv2d::new(mid, cout, 1, 1, 0, rng));
    main.push(BatchNorm2d::new(cout));
    if cin == cout && stride == 1 {
        Box::new(Residual::new(main))
    } else {
        Box::new(main)
    }
}

fn mobilenet_like(name: &str, act: ActKind, se: bool, classes: usize, rng: &mut Rng) -> Model {
    let mut net = Sequential::new();
    conv_bn(&mut net, 3, 12, 3, 1, 1, act, rng);
    net.push_named("ir0", inverted_residual(12, 12, 4, 1, act, se, rng));
    net.push_named("ir1", inverted_residual(12, 24, 4, 2, act, se, rng));
    net.push_named("ir2", inverted_residual(24, 24, 4, 1, act, se, rng));
    net.push(GlobalAvgPool::new());
    net.push(Linear::new(24, 48, rng));
    net.push(Act::new(act));
    net.push(Linear::new(48, classes, rng));
    Model {
        name: name.into(),
        net,
        input: InputKind::Image,
    }
}

/// MobileNetV2-style: inverted residuals + ReLU6.
#[must_use]
pub fn mobilenet_v2_t(_hw: usize, classes: usize, rng: &mut Rng) -> Model {
    mobilenet_like("mobilenet_v2_t", ActKind::Relu6, false, classes, rng)
}

/// MobileNetV3-style: + h-swish and SE.
#[must_use]
pub fn mobilenet_v3_t(_hw: usize, classes: usize, rng: &mut Rng) -> Model {
    mobilenet_like("mobilenet_v3_t", ActKind::HSwish, true, classes, rng)
}

/// EfficientNet-B0-style: MBConv with SiLU + SE.
#[must_use]
pub fn efficientnet_b0_t(_hw: usize, classes: usize, rng: &mut Rng) -> Model {
    let mut m = mobilenet_like("efficientnet_b0_t", ActKind::Silu, true, classes, rng);
    m.name = "efficientnet_b0_t".into();
    m
}

/// Fused-MBConv: 3×3 expand convolution + 1×1 projection (EfficientNetV2).
fn fused_mbconv(
    cin: usize,
    cout: usize,
    expand: usize,
    stride: usize,
    rng: &mut Rng,
) -> Box<dyn crate::layer::Layer> {
    let mid = cin * expand;
    let mut main = Sequential::new();
    conv_bn(&mut main, cin, mid, 3, stride, 1, ActKind::Silu, rng);
    main.push(Conv2d::new(mid, cout, 1, 1, 0, rng));
    main.push(BatchNorm2d::new(cout));
    if cin == cout && stride == 1 {
        Box::new(Residual::new(main))
    } else {
        Box::new(main)
    }
}

/// EfficientNetV2-style: fused-MBConv stage, then SE MBConv stage.
#[must_use]
pub fn efficientnet_v2_t(_hw: usize, classes: usize, rng: &mut Rng) -> Model {
    let mut net = Sequential::new();
    conv_bn(&mut net, 3, 12, 3, 1, 1, ActKind::Silu, rng);
    net.push_named("fused0", fused_mbconv(12, 12, 2, 1, rng));
    net.push_named("fused1", fused_mbconv(12, 24, 2, 2, rng));
    net.push_named(
        "mb0",
        inverted_residual(24, 24, 4, 1, ActKind::Silu, true, rng),
    );
    net.push(GlobalAvgPool::new());
    net.push(Linear::new(24, 48, rng));
    net.push(Act::new(ActKind::Silu));
    net.push(Linear::new(48, classes, rng));
    Model {
        name: "efficientnet_v2_t".into(),
        net,
        input: InputKind::Image,
    }
}

/// BERT-style encoder: embedding → 2 pre-norm transformer blocks → final
/// LayerNorm → CLS token → classifier.
#[must_use]
pub fn bert_t(vocab: usize, seq_len: usize, dim: usize, classes: usize, rng: &mut Rng) -> Model {
    let mut net = Sequential::new();
    net.push(Embedding::new(vocab, dim, seq_len, rng));
    net.push(TransformerBlock::new(dim, 2, 2, rng));
    net.push(TransformerBlock::new(dim, 2, 2, rng));
    net.push(LayerNorm::new(dim));
    net.push(TakeCls::new());
    net.push(Linear::new(dim, classes, rng));
    Model {
        name: "bert_t".into(),
        net,
        input: InputKind::Tokens,
    }
}

/// Builds the full vision zoo (8 models, Table 2 order).
#[must_use]
#[allow(clippy::type_complexity)]
pub fn vision_zoo(hw: usize, classes: usize, seed: u64) -> Vec<Model> {
    let builders: [(&str, fn(usize, usize, &mut Rng) -> Model); 8] = [
        ("vgg_t", vgg_t),
        ("resnet18_t", resnet18_t),
        ("resnet50_t", resnet50_t),
        ("resnet101_t", resnet101_t),
        ("mobilenet_v2_t", mobilenet_v2_t),
        ("mobilenet_v3_t", mobilenet_v3_t),
        ("efficientnet_b0_t", efficientnet_b0_t),
        ("efficientnet_v2_t", efficientnet_v2_t),
    ];
    builders
        .iter()
        .enumerate()
        .map(|(i, (_, b))| {
            let mut rng = Rng::new(seed.wrapping_add(i as u64 * 0x9E37));
            b(hw, classes, &mut rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Ctx, Layer};
    use mersit_tensor::Tensor;

    #[test]
    fn vision_models_produce_logits() {
        let mut count = 0;
        for mut m in vision_zoo(12, 10, 42) {
            let mut rng = Rng::new(1);
            let x = Tensor::randn(&[2, 3, 12, 12], 1.0, &mut rng);
            let y = m.net.forward(x, &mut Ctx::inference());
            assert_eq!(y.shape(), &[2, 10], "{}", m.name);
            assert!(y.data().iter().all(|v| v.is_finite()), "{}", m.name);
            count += 1;
        }
        assert_eq!(count, 8);
    }

    #[test]
    fn vision_models_backprop_without_panic() {
        for mut m in vision_zoo(12, 10, 7) {
            let mut rng = Rng::new(2);
            let x = Tensor::randn(&[2, 3, 12, 12], 1.0, &mut rng);
            let y = m.net.forward(x, &mut Ctx::training());
            let g = Tensor::randn(y.shape(), 1.0, &mut rng);
            let dx = m.net.backward(g);
            assert_eq!(dx.shape(), &[2, 3, 12, 12], "{}", m.name);
            assert!(dx.data().iter().all(|v| v.is_finite()), "{}", m.name);
        }
    }

    #[test]
    fn bert_produces_logits_and_backprops() {
        let mut rng = Rng::new(3);
        let mut m = bert_t(30, 16, 32, 3, &mut rng);
        let ids = Tensor::from_vec(
            (0..32)
                .map(|v| f32::from(u8::try_from(v % 30).unwrap()))
                .collect(),
            &[2, 16],
        );
        let y = m.net.forward(ids, &mut Ctx::training());
        assert_eq!(y.shape(), &[2, 3]);
        let g = Tensor::randn(y.shape(), 1.0, &mut rng);
        let _ = m.net.backward(g);
    }

    #[test]
    fn param_counts_are_reasonable() {
        for mut m in vision_zoo(12, 10, 11) {
            let mut total = 0usize;
            m.net.visit_params("", &mut |_, p| total += p.len());
            assert!(
                (3_000..200_000).contains(&total),
                "{}: {total} params",
                m.name
            );
        }
    }

    #[test]
    fn zoo_is_deterministic() {
        let mut a = vision_zoo(12, 10, 5);
        let mut b = vision_zoo(12, 10, 5);
        for (ma, mb) in a.iter_mut().zip(b.iter_mut()) {
            let mut wa = Vec::new();
            ma.net
                .visit_params("", &mut |_, p| wa.extend_from_slice(p.value.data()));
            let mut wb = Vec::new();
            mb.net
                .visit_params("", &mut |_, p| wb.extend_from_slice(p.value.data()));
            assert_eq!(wa, wb, "{}", ma.name);
        }
    }
}
