//! Optimizers and the training loop used to pre-train the model zoo before
//! post-training quantization.

use crate::layer::{Ctx, Layer};
use crate::param::Param;
use mersit_tensor::{cross_entropy, Rng, Tensor};

/// Optimizer choice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Optimizer {
    /// Stochastic gradient descent with momentum.
    Sgd {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient.
        momentum: f32,
        /// L2 weight decay.
        weight_decay: f32,
    },
    /// Adam.
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
        /// L2 weight decay.
        weight_decay: f32,
    },
}

impl Optimizer {
    /// SGD with common defaults.
    #[must_use]
    pub fn sgd(lr: f32) -> Self {
        Optimizer::Sgd {
            lr,
            momentum: 0.9,
            weight_decay: 1e-4,
        }
    }

    /// Adam with common defaults.
    #[must_use]
    pub fn adam(lr: f32) -> Self {
        Optimizer::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            weight_decay: 1e-5,
        }
    }
}

/// Optimizer state (slot per parameter, in visit order).
#[derive(Debug, Default)]
pub struct OptState {
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    step: u64,
}

impl OptState {
    /// Fresh state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies one optimizer step over all parameters of `net`, then zeroes
    /// the gradients.
    pub fn apply(&mut self, net: &mut dyn Layer, opt: &Optimizer, lr_scale: f32) {
        self.step += 1;
        let step = self.step;
        let mut idx = 0usize;
        let (m, v) = (&mut self.m, &mut self.v);
        net.visit_params("", &mut |_, p: &mut Param| {
            if m.len() <= idx {
                m.push(Tensor::zeros(p.value.shape()));
                v.push(Tensor::zeros(p.value.shape()));
            }
            match *opt {
                Optimizer::Sgd {
                    lr,
                    momentum,
                    weight_decay,
                } => {
                    let lr = lr * lr_scale;
                    let mom = &mut m[idx];
                    for i in 0..p.value.len() {
                        let g = p.grad.data()[i] + weight_decay * p.value.data()[i];
                        let mv = momentum * mom.data()[i] + g;
                        mom.data_mut()[i] = mv;
                        p.value.data_mut()[i] -= lr * mv;
                    }
                }
                Optimizer::Adam {
                    lr,
                    beta1,
                    beta2,
                    weight_decay,
                } => {
                    let lr = lr * lr_scale;
                    let bc1 = 1.0 - beta1.powi(step as i32);
                    let bc2 = 1.0 - beta2.powi(step as i32);
                    let (ms, vs) = (&mut m[idx], &mut v[idx]);
                    for i in 0..p.value.len() {
                        let g = p.grad.data()[i] + weight_decay * p.value.data()[i];
                        let m1 = beta1 * ms.data()[i] + (1.0 - beta1) * g;
                        let v1 = beta2 * vs.data()[i] + (1.0 - beta2) * g * g;
                        ms.data_mut()[i] = m1;
                        vs.data_mut()[i] = v1;
                        let mh = m1 / bc1;
                        let vh = v1 / bc2;
                        p.value.data_mut()[i] -= lr * mh / (vh.sqrt() + 1e-8);
                    }
                }
            }
            p.zero_grad();
            idx += 1;
        });
    }
}

/// A labelled dataset split: inputs (outer dim = samples) and labels.
#[derive(Debug, Clone)]
pub struct Split {
    /// Input tensor, outermost dimension indexes samples.
    pub inputs: Tensor,
    /// Integer class labels.
    pub labels: Vec<usize>,
}

impl Split {
    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Extracts a mini-batch by sample indices.
    #[must_use]
    pub fn batch(&self, idx: &[usize]) -> (Tensor, Vec<usize>) {
        let parts: Vec<Tensor> = idx
            .iter()
            .map(|&i| self.inputs.slice_outer(i, i + 1))
            .collect();
        let refs: Vec<&Tensor> = parts.iter().collect();
        (
            Tensor::cat_outer(&refs),
            idx.iter().map(|&i| self.labels[i]).collect(),
        )
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Optimizer.
    pub opt: Optimizer,
    /// Cosine-decay the learning rate to this fraction by the last epoch.
    pub final_lr_frac: f32,
    /// RNG seed for shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 32,
            opt: Optimizer::adam(3e-3),
            final_lr_frac: 0.05,
            seed: 0xDEC0DE,
        }
    }
}

/// Trains `net` as a classifier on `train`; returns per-epoch mean losses.
pub fn train_classifier(net: &mut dyn Layer, train: &Split, cfg: &TrainConfig) -> Vec<f32> {
    let mut rng = Rng::new(cfg.seed);
    let mut state = OptState::new();
    let mut losses = Vec::with_capacity(cfg.epochs);
    let n = train.len();
    for epoch in 0..cfg.epochs {
        let progress = epoch as f32 / cfg.epochs.max(1) as f32;
        let lr_scale = cfg.final_lr_frac
            + (1.0 - cfg.final_lr_frac) * 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
        let order = rng.permutation(n);
        let mut epoch_loss = 0.0;
        let mut batches = 0;
        let _epoch_span = mersit_obs::span("nn.train.epoch");
        for chunk in order.chunks(cfg.batch_size) {
            let _step_span = mersit_obs::span("nn.train.step");
            let (x, y) = train.batch(chunk);
            let logits = net.forward(x, &mut Ctx::training());
            let (loss, dlogits) = cross_entropy(&logits, &y);
            net.backward(dlogits);
            state.apply(net, &cfg.opt, lr_scale);
            mersit_obs::add("nn.train.samples", chunk.len() as u64);
            epoch_loss += loss;
            batches += 1;
        }
        losses.push(epoch_loss / batches.max(1) as f32);
    }
    losses
}

/// Runs inference and returns the predicted class per sample.
pub fn predict(net: &mut dyn Layer, inputs: &Tensor, batch: usize) -> Vec<usize> {
    predict_ref(&*net, inputs, batch)
}

/// Shared-reference inference: like [`predict`] but needs only `&` access
/// to the network, so callers can run several predictions concurrently
/// over one model.
///
/// Samples are sharded across the global pool in whole-batch chunks
/// (`Layer: Send + Sync` makes `&dyn Layer` shareable); each sample's
/// forward is independent and per-sample arithmetic never depends on its
/// batch-mates, so predictions are bit-identical to the serial loop for
/// every thread count. The per-batch forwards inside a shard nest their
/// own GEMM dispatches, which the stealing pool composes instead of
/// serializing.
pub fn predict_ref(net: &dyn Layer, inputs: &Tensor, batch: usize) -> Vec<usize> {
    let n = inputs.shape()[0];
    let batch = batch.max(1);
    let mut preds = vec![0usize; n];
    mersit_tensor::par::par_chunks_mut(&mut preds, 1, batch, |s0, chunk| {
        let mut i = 0;
        while i < chunk.len() {
            let hi = (i + batch).min(chunk.len());
            let x = inputs.slice_outer(s0 + i, s0 + hi);
            chunk[i..hi].copy_from_slice(&predict_one_batch_ref(net, x));
            i = hi;
        }
    });
    preds
}

/// Runs one already-coalesced batch through a single inference forward
/// and returns the predicted class per sample — the FP32 serving entry
/// point: a dynamic batcher concatenates single-sample requests along the
/// outer dimension and calls this once. The inference forward has no
/// cross-sample reductions, so each sample's prediction is bit-identical
/// to calling this with that sample alone (the batching invariant the
/// serving layer relies on; pinned by `mersit-serve`'s batching tests).
/// GEMMs inside the forward still fan out across the global pool.
#[must_use]
pub fn predict_one_batch_ref(net: &dyn Layer, x: Tensor) -> Vec<usize> {
    let _batch_span = mersit_obs::span("nn.predict.batch");
    let logits = net.forward_ref(x, &mut Ctx::inference());
    crate::metrics::argmax_rows(&logits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Act, ActKind, Linear, Sequential};

    /// Two-moons-ish 2-D synthetic binary classification.
    fn toy_data(n: usize, seed: u64) -> Split {
        let mut rng = Rng::new(seed);
        let mut xs = Vec::with_capacity(n * 2);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let label = rng.below(2);
            let t = rng.uniform() as f32 * std::f32::consts::PI;
            let (sx, sy) = if label == 0 {
                (t.cos(), t.sin())
            } else {
                (1.0 - t.cos(), 0.5 - t.sin())
            };
            xs.push(sx + rng.normal() as f32 * 0.05);
            xs.push(sy + rng.normal() as f32 * 0.05);
            ys.push(label);
        }
        Split {
            inputs: Tensor::from_vec(xs, &[n, 2]),
            labels: ys,
        }
    }

    #[test]
    fn training_reduces_loss_and_fits_toy_data() {
        let mut rng = Rng::new(42);
        let mut net = Sequential::new();
        net.push(Linear::new(2, 24, &mut rng));
        net.push(Act::new(ActKind::Tanh));
        net.push(Linear::new(24, 2, &mut rng));
        let train = toy_data(400, 1);
        let test = toy_data(200, 2);
        let cfg = TrainConfig {
            epochs: 50,
            batch_size: 32,
            opt: Optimizer::adam(5e-3),
            ..TrainConfig::default()
        };
        let losses = train_classifier(&mut net, &train, &cfg);
        assert!(losses.last().unwrap() < &(losses[0] * 0.5), "{losses:?}");
        let preds = predict(&mut net, &test.inputs, 64);
        let acc = preds
            .iter()
            .zip(&test.labels)
            .filter(|(a, b)| a == b)
            .count() as f32
            / preds.len() as f32;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn sgd_also_converges() {
        let mut rng = Rng::new(7);
        let mut net = Sequential::new();
        net.push(Linear::new(2, 16, &mut rng));
        net.push(Act::new(ActKind::Relu));
        net.push(Linear::new(16, 2, &mut rng));
        let train = toy_data(300, 3);
        let cfg = TrainConfig {
            epochs: 40,
            batch_size: 16,
            opt: Optimizer::sgd(0.05),
            ..TrainConfig::default()
        };
        let losses = train_classifier(&mut net, &train, &cfg);
        assert!(losses.last().unwrap() < &0.3, "{losses:?}");
    }

    #[test]
    fn split_batch_gathers_rows() {
        let s = Split {
            inputs: Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[4, 2]),
            labels: vec![0, 1, 2, 3],
        };
        let (x, y) = s.batch(&[2, 0]);
        assert_eq!(x.data(), &[4., 5., 0., 1.]);
        assert_eq!(y, vec![2, 0]);
    }
}
