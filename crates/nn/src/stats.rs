//! Model profiling: per-layer MAC counts (for accelerator-level cost
//! models) and activation-distribution statistics (the quantities that
//! decide which 8-bit format survives PTQ on a given architecture).

use crate::layer::{Ctx, Layer, Tap};
use crate::models::Model;
use crate::site::Site;
use mersit_tensor::Tensor;
use std::collections::BTreeMap;

/// Statistics of one profiled layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerStats {
    /// Tap path of the layer.
    pub path: String,
    /// Output activation shape.
    pub out_shape: Vec<usize>,
    /// Multiply-accumulate operations for the profiled batch
    /// (0 for parameter-free layers).
    pub macs: u64,
    /// Parameter count of the layer's weight tensor (0 if none).
    pub params: u64,
    /// RMS of the output activations.
    pub act_rms: f64,
    /// Max |activation|.
    pub act_max: f64,
    /// Fraction of activations with |x| > 4·RMS (outlier ratio).
    pub outlier_ratio: f64,
}

impl LayerStats {
    /// Dynamic-range demand of this layer's activations:
    /// `log2(max / rms)` (0 when degenerate).
    #[must_use]
    pub fn range_demand_bits(&self) -> f64 {
        if self.act_rms > 0.0 && self.act_max > 0.0 {
            (self.act_max / self.act_rms).log2()
        } else {
            0.0
        }
    }
}

/// Whole-model profile.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelProfile {
    /// Model name.
    pub model: String,
    /// Batch size the profile was taken at.
    pub batch: usize,
    /// Per-layer stats, forward order.
    pub layers: Vec<LayerStats>,
}

impl ModelProfile {
    /// Total MACs for the profiled batch.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Total parameters.
    #[must_use]
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(|l| l.params).sum()
    }

    /// MACs per sample.
    #[must_use]
    pub fn macs_per_sample(&self) -> u64 {
        self.total_macs() / self.batch.max(1) as u64
    }

    /// The worst (largest) per-layer dynamic-range demand.
    #[must_use]
    pub fn peak_range_demand_bits(&self) -> f64 {
        self.layers
            .iter()
            .map(LayerStats::range_demand_bits)
            .fold(0.0, f64::max)
    }
}

struct StatTap {
    shapes: Vec<(String, Vec<usize>, f64, f64, f64)>,
}

impl Tap for StatTap {
    fn activation(&mut self, site: Site<'_>, t: Tensor) -> Tensor {
        let rms = f64::from(t.rms());
        let max = f64::from(t.max_abs());
        let outliers = if rms > 0.0 {
            t.data()
                .iter()
                .filter(|&&v| f64::from(v.abs()) > 4.0 * rms)
                .count() as f64
                / t.len() as f64
        } else {
            0.0
        };
        self.shapes
            .push((site.path.to_owned(), t.shape().to_vec(), rms, max, outliers));
        t
    }
}

/// Profiles a model on one batch: MAC counts (inferred from weight/output
/// shapes: `macs = out_elems × ∏ w.shape[1..]`, which is exact for conv,
/// depthwise conv and linear layers) and activation statistics.
///
/// Embedding gathers are excluded from MAC counts. Projection layers
/// inside SE blocks and attention (which are not activation-tap sites)
/// are also excluded — they contribute <2 % of the MACs in the vision
/// zoo; use the per-path weight census in `total_params` for exact
/// parameter counts.
#[must_use]
pub fn profile_model(model: &Model, x: &Tensor) -> ModelProfile {
    let batch = x.shape()[0];
    // Collect weights by layer prefix (strip the trailing param name).
    let mut weights: BTreeMap<String, Vec<Vec<usize>>> = BTreeMap::new();
    model.net.visit_params_ref("", &mut |path, p| {
        if p.value.shape().len() >= 2 {
            let prefix = path.rsplit_once('.').map_or(path, |(pre, _)| pre);
            weights
                .entry(prefix.to_owned())
                .or_default()
                .push(p.value.shape().to_vec());
        }
    });
    let mut tap = StatTap { shapes: Vec::new() };
    {
        let mut ctx = Ctx::with_tap(&mut tap);
        let _ = model.net.forward_ref(x.clone(), &mut ctx);
    }
    let layers = tap
        .shapes
        .into_iter()
        .map(|(path, out_shape, rms, max, outliers)| {
            let out_elems: u64 = out_shape.iter().product::<usize>() as u64;
            let (macs, params) = match weights.get(&path) {
                Some(ws) => {
                    let is_embedding = path.contains("embed");
                    let mut macs = 0u64;
                    let mut params = 0u64;
                    for w in ws {
                        params += w.iter().product::<usize>() as u64;
                        if !is_embedding {
                            macs += out_elems * w[1..].iter().product::<usize>() as u64;
                        }
                    }
                    (macs, params)
                }
                None => (0, 0),
            };
            LayerStats {
                path,
                out_shape,
                macs,
                params,
                act_rms: rms,
                act_max: max,
                outlier_ratio: outliers,
            }
        })
        .collect();
    ModelProfile {
        model: model.name.clone(),
        batch,
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{mobilenet_v3_t, vgg_t};
    use mersit_tensor::Rng;

    #[test]
    fn vgg_mac_count_matches_hand_computation() {
        let mut rng = Rng::new(1);
        let m = vgg_t(12, 10, &mut rng);
        let x = Tensor::randn(&[2, 3, 12, 12], 1.0, &mut rng);
        let p = profile_model(&m, &x);
        // conv1: out [2,16,12,12], w [16, 27] → 2·16·144·27
        let conv1 = &p.layers[0];
        assert_eq!(conv1.macs, 2 * 16 * 144 * 27);
        // Total must cover all conv + linear layers.
        let hand: u64 = 2
            * ((16 * 144 * 27)      // conv 3→16
                + (16 * 144 * 16 * 9)  // conv 16→16
                + (32 * 36 * 16 * 9)   // conv 16→32 (after pool, 6x6)
                + (32 * 36 * 32 * 9)   // conv 32→32
                + (64 * 32 * 9)        // fc 288→64
                + (10 * 64)); // fc 64→10
        assert_eq!(p.total_macs(), hand);
        assert_eq!(p.batch, 2);
        assert_eq!(p.macs_per_sample(), hand / 2);
    }

    #[test]
    fn stats_capture_distribution_shape() {
        let mut rng = Rng::new(2);
        let m = mobilenet_v3_t(10, 10, &mut rng);
        let x = Tensor::randn(&[4, 3, 10, 10], 1.0, &mut rng);
        let p = profile_model(&m, &x);
        assert!(p.layers.len() > 20);
        assert!(p.total_params() > 3_000);
        for l in &p.layers {
            assert!(l.act_max >= 0.0 && l.act_rms >= 0.0, "{}", l.path);
            assert!(
                (0.0..=1.0).contains(&l.outlier_ratio),
                "{}: {}",
                l.path,
                l.outlier_ratio
            );
        }
        assert!(p.peak_range_demand_bits() > 0.5);
    }

    #[test]
    fn profile_is_deterministic() {
        let mut rng = Rng::new(3);
        let m = vgg_t(8, 10, &mut rng);
        let x = Tensor::randn(&[1, 3, 8, 8], 1.0, &mut rng);
        let a = profile_model(&m, &x);
        let b = profile_model(&m, &x);
        assert_eq!(a, b);
    }
}
