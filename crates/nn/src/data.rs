//! Deterministic synthetic datasets standing in for ImageNet and GLUE
//! (see DESIGN.md §2 for the substitution rationale).
//!
//! * [`synthetic_images`] — a 10-class image task whose samples carry
//!   class-dependent oriented gratings and blobs under log-normally
//!   distributed illumination, so activations span a wide dynamic range
//!   (the distribution property that stresses narrow-range 8-bit formats).
//! * [`glue_like`] — four GLUE-analogue sequence-classification tasks
//!   (acceptability, sentiment, paraphrase, inference) over a small
//!   vocabulary, learnable by a miniature transformer.

use crate::train::Split;
use mersit_tensor::{Rng, Tensor};

/// A complete task: train/test splits plus a small calibration subset
/// (the paper calibrates on 1000 ImageNet images / 5 % of GLUE).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Task name.
    pub name: String,
    /// Training split.
    pub train: Split,
    /// Held-out evaluation split.
    pub test: Split,
    /// Calibration subset (drawn from the training split).
    pub calib: Split,
    /// Number of classes.
    pub num_classes: usize,
}

/// Generates the 10-class synthetic image task. Images are `[3, hw, hw]`.
#[must_use]
pub fn synthetic_images(seed: u64, n_train: usize, n_test: usize, hw: usize) -> Dataset {
    let mut rng = Rng::new(seed);
    let train = gen_images(&mut rng, n_train, hw);
    let test = gen_images(&mut rng, n_test, hw);
    let calib_n = (n_train / 8).clamp(1, 256);
    let calib = Split {
        inputs: train.inputs.slice_outer(0, calib_n),
        labels: train.labels[..calib_n].to_vec(),
    };
    Dataset {
        name: format!("synth-images-{hw}"),
        train,
        test,
        calib,
        num_classes: 10,
    }
}

fn gen_images(rng: &mut Rng, n: usize, hw: usize) -> Split {
    let mut data = Vec::with_capacity(n * 3 * hw * hw);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let class = rng.below(10);
        labels.push(class);
        // Class-defining structure.
        let theta = class as f32 * std::f32::consts::PI / 10.0;
        let freq = 1.0 + (class % 3) as f32;
        let blob_x = ((class * 7) % 10) as f32 / 10.0;
        let blob_y = ((class * 3) % 10) as f32 / 10.0;
        // Per-sample nuisance: illumination spans orders of magnitude
        // (log-normal) — the wide-dynamic-range mechanism.
        let amp = (rng.normal() * 0.8).exp() as f32;
        let phase = rng.uniform_in(0.0, f64::from(std::f32::consts::TAU)) as f32;
        // Spatial jitter keeps classes from being trivially separable.
        let jx = rng.normal() as f32 * 0.06;
        let jy = rng.normal() as f32 * 0.06;
        for c in 0..3usize {
            let cphase = phase + c as f32 * 0.7;
            for y in 0..hw {
                for x in 0..hw {
                    let xf = x as f32 / hw as f32;
                    let yf = y as f32 / hw as f32;
                    let grating =
                        (freq * std::f32::consts::TAU * (xf * theta.cos() + yf * theta.sin())
                            + cphase)
                            .sin();
                    let dx = xf - (blob_x + jx);
                    let dy = yf - (blob_y + jy);
                    let blob = (-(dx * dx + dy * dy) * 30.0).exp() * 1.2;
                    let noise = rng.normal() as f32 * 0.65;
                    data.push(amp * (grating + blob + noise));
                }
            }
        }
    }
    Split {
        inputs: Tensor::from_vec(data, &[n, 3, hw, hw]),
        labels,
    }
}

/// The four GLUE-analogue tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GlueTask {
    /// Acceptability (CoLA analogue): reject sequences containing a
    /// forbidden bigram. Binary, class-imbalanced; scored with Matthews
    /// correlation like CoLA.
    Cola,
    /// Natural language inference (MNLI analogue): 3-way relation between
    /// the two halves, driven by token overlap and a negation marker.
    Mnli,
    /// Paraphrase (MRPC analogue): is the second half a (noisy) shuffle of
    /// the first? Binary; scored with F1 like MRPC.
    Mrpc,
    /// Sentiment (SST-2 analogue): sign of summed token valence. Binary.
    Sst2,
}

impl GlueTask {
    /// Task display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GlueTask::Cola => "CoLA-like",
            GlueTask::Mnli => "MNLI-like",
            GlueTask::Mrpc => "MRPC-like",
            GlueTask::Sst2 => "SST-2-like",
        }
    }

    /// Number of classes.
    #[must_use]
    pub fn num_classes(self) -> usize {
        match self {
            GlueTask::Mnli => 3,
            _ => 2,
        }
    }
}

/// Vocabulary size of the GLUE-analogue tasks.
pub const GLUE_VOCAB: usize = 30;
/// Sequence length (CLS + 14 content/SEP + padding).
pub const GLUE_SEQ_LEN: usize = 16;

const CLS: f32 = 0.0;
const SEP: f32 = 1.0;
const NEG_MARKER: usize = 26;

/// Generates a GLUE-analogue dataset.
#[must_use]
pub fn glue_like(task: GlueTask, seed: u64, n_train: usize, n_test: usize) -> Dataset {
    let mut rng = Rng::new(seed ^ 0x61_75_65);
    let train = gen_glue(task, &mut rng, n_train);
    let test = gen_glue(task, &mut rng, n_test);
    // 5 % calibration split, as in the paper.
    let calib_n = (n_train / 20).max(8);
    let calib = Split {
        inputs: train.inputs.slice_outer(0, calib_n),
        labels: train.labels[..calib_n].to_vec(),
    };
    Dataset {
        name: task.name().to_owned(),
        train,
        test,
        calib,
        num_classes: task.num_classes(),
    }
}

fn gen_glue(task: GlueTask, rng: &mut Rng, n: usize) -> Split {
    let t = GLUE_SEQ_LEN;
    let mut data = Vec::with_capacity(n * t);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let (tokens, label) = match task {
            GlueTask::Sst2 => gen_sst2(rng),
            GlueTask::Cola => gen_cola(rng),
            GlueTask::Mrpc => gen_mrpc(rng),
            GlueTask::Mnli => gen_mnli(rng),
        };
        debug_assert_eq!(tokens.len(), t);
        data.extend(tokens);
        labels.push(label);
    }
    Split {
        inputs: Tensor::from_vec(data, &[n, t]),
        labels,
    }
}

fn content_token(rng: &mut Rng) -> usize {
    2 + rng.below(24) // 2..=25
}

fn gen_sst2(rng: &mut Rng) -> (Vec<f32>, usize) {
    let mut toks = vec![CLS];
    let mut valence = 0i32;
    for _ in 0..GLUE_SEQ_LEN - 2 {
        let tk = content_token(rng);
        valence += if tk <= 13 { 1 } else { -1 };
        toks.push(tk as f32);
    }
    toks.push(SEP);
    // Zero-valence ties (possible with an even token count) label as 0.
    ((toks), usize::from(valence > 0))
}

fn gen_cola(rng: &mut Rng) -> (Vec<f32>, usize) {
    // Forbidden bigram: two consecutive tokens from 20..=25.
    // ~62 % acceptable, mirroring CoLA's imbalance.
    let make_bad = rng.uniform() < 0.38;
    loop {
        let mut toks = vec![CLS];
        for _ in 0..GLUE_SEQ_LEN - 2 {
            toks.push(content_token(rng) as f32);
        }
        toks.push(SEP);
        if make_bad {
            // Inject a forbidden bigram at a random interior position.
            let pos = 1 + rng.below(GLUE_SEQ_LEN - 3);
            toks[pos] = (20 + rng.below(6)) as f32;
            toks[pos + 1] = (20 + rng.below(6)) as f32;
            return (toks, 0);
        }
        let bad = toks
            .windows(2)
            .any(|w| (20.0..=25.0).contains(&w[0]) && (20.0..=25.0).contains(&w[1]));
        if !bad {
            return (toks, 1);
        }
    }
}

fn gen_mrpc(rng: &mut Rng) -> (Vec<f32>, usize) {
    // [CLS] a1..a6 [SEP] b1..b6 [SEP] pad
    let half = 6;
    let a: Vec<usize> = (0..half).map(|_| content_token(rng)).collect();
    let paraphrase = rng.uniform() < 0.5;
    let b: Vec<usize> = if paraphrase {
        let mut b = a.clone();
        rng.shuffle(&mut b);
        // One noisy substitution half the time.
        if rng.uniform() < 0.5 {
            let i = rng.below(half);
            b[i] = content_token(rng);
        }
        b
    } else {
        (0..half).map(|_| content_token(rng)).collect()
    };
    let mut toks = vec![CLS];
    toks.extend(a.iter().map(|&v| v as f32));
    toks.push(SEP);
    toks.extend(b.iter().map(|&v| v as f32));
    toks.push(SEP);
    while toks.len() < GLUE_SEQ_LEN {
        toks.push(SEP);
    }
    (toks, usize::from(paraphrase))
}

fn gen_mnli(rng: &mut Rng) -> (Vec<f32>, usize) {
    // Label 0 = entailment (hypothesis ⊂ premise), 1 = neutral (partial
    // overlap), 2 = contradiction (negation marker + overlap).
    let label = rng.below(3);
    let half = 6;
    let premise: Vec<usize> = (0..half).map(|_| content_token(rng)).collect();
    let mut hypothesis: Vec<usize> = match label {
        0 => {
            let mut h = premise.clone();
            rng.shuffle(&mut h);
            h
        }
        1 => {
            let mut h: Vec<usize> = premise[..half / 2].to_vec();
            while h.len() < half {
                h.push(content_token(rng));
            }
            rng.shuffle(&mut h);
            h
        }
        _ => {
            let mut h = premise.clone();
            rng.shuffle(&mut h);
            h[0] = NEG_MARKER;
            h
        }
    };
    if label == 1 {
        rng.shuffle(&mut hypothesis);
    }
    let mut toks = vec![CLS];
    toks.extend(premise.iter().map(|&v| v as f32));
    toks.push(SEP);
    toks.extend(hypothesis.iter().map(|&v| v as f32));
    toks.push(SEP);
    while toks.len() < GLUE_SEQ_LEN {
        toks.push(SEP);
    }
    (toks, label)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn images_shapes_and_determinism() {
        let a = synthetic_images(5, 40, 20, 8);
        let b = synthetic_images(5, 40, 20, 8);
        assert_eq!(a.train.inputs.shape(), &[40, 3, 8, 8]);
        assert_eq!(a.test.len(), 20);
        assert_eq!(a.train.inputs.data(), b.train.inputs.data());
        assert_eq!(a.train.labels, b.train.labels);
        assert!(a.calib.len() <= 40);
    }

    #[test]
    fn images_have_wide_dynamic_range() {
        let d = synthetic_images(11, 400, 10, 8);
        // Per-sample max |x| should span at least ~30x between the dimmest
        // and brightest samples (the log-normal illumination).
        let mut maxima = Vec::new();
        for i in 0..400 {
            maxima.push(d.train.inputs.slice_outer(i, i + 1).max_abs());
        }
        let hi = maxima.iter().fold(0.0f32, |a, &b| a.max(b));
        let lo = maxima.iter().fold(f32::MAX, |a, &b| a.min(b));
        assert!(hi / lo > 30.0, "range ratio {}", hi / lo);
    }

    #[test]
    fn images_cover_all_classes() {
        let d = synthetic_images(3, 300, 10, 8);
        for c in 0..10 {
            assert!(d.train.labels.contains(&c), "class {c} missing");
        }
    }

    #[test]
    fn glue_tasks_generate_valid_sequences() {
        for task in [
            GlueTask::Cola,
            GlueTask::Mnli,
            GlueTask::Mrpc,
            GlueTask::Sst2,
        ] {
            let d = glue_like(task, 1, 100, 50);
            assert_eq!(d.train.inputs.shape(), &[100, GLUE_SEQ_LEN]);
            assert_eq!(d.num_classes, task.num_classes());
            for &v in d.train.inputs.data() {
                assert!(v >= 0.0 && (v as usize) < GLUE_VOCAB, "token {v}");
            }
            for &l in &d.train.labels {
                assert!(l < d.num_classes);
            }
            // Every class occurs.
            for c in 0..d.num_classes {
                assert!(d.train.labels.contains(&c), "{task:?} class {c}");
            }
        }
    }

    #[test]
    fn cola_rule_consistency() {
        let d = glue_like(GlueTask::Cola, 9, 300, 10);
        for i in 0..300 {
            let row = d.train.inputs.slice_outer(i, i + 1);
            let bad = row
                .data()
                .windows(2)
                .any(|w| (20.0..=25.0).contains(&w[0]) && (20.0..=25.0).contains(&w[1]));
            assert_eq!(d.train.labels[i], usize::from(!bad), "sample {i}");
        }
    }

    #[test]
    fn cola_is_imbalanced_like_the_real_thing() {
        let d = glue_like(GlueTask::Cola, 2, 1000, 10);
        let pos = d.train.labels.iter().filter(|&&l| l == 1).count();
        assert!((550..750).contains(&pos), "positives {pos}");
    }

    #[test]
    fn sst2_rule_consistency() {
        let d = glue_like(GlueTask::Sst2, 4, 200, 10);
        for i in 0..200 {
            let row = d.train.inputs.slice_outer(i, i + 1);
            let valence: i32 = row
                .data()
                .iter()
                .filter(|&&v| v >= 2.0)
                .map(|&v| if v <= 13.0 { 1 } else { -1 })
                .sum();
            assert_eq!(d.train.labels[i], usize::from(valence > 0));
        }
    }
}
