//! # mersit-nn — layers, training, and the miniature model zoo
//!
//! A from-scratch neural-network stack (manual backprop, no autograd) that
//! trains the architecture-family analogues evaluated in the MERSIT paper's
//! Table 2, plus the synthetic datasets they train on and the GLUE-style
//! metrics they report.
//!
//! The PTQ hook is the [`layer::Tap`] trait: a forward pass with a tap
//! attached sees every inter-layer activation, which is how `mersit-ptq`
//! calibrates and fake-quantizes models without the layers knowing anything
//! about number formats.
//!
//! ```
//! use mersit_nn::layers::{Act, ActKind, Linear, Sequential};
//! use mersit_nn::layer::{Ctx, Layer};
//! use mersit_tensor::{Rng, Tensor};
//!
//! let mut rng = Rng::new(1);
//! let mut net = Sequential::new();
//! net.push(Linear::new(4, 8, &mut rng));
//! net.push(Act::new(ActKind::Relu));
//! net.push(Linear::new(8, 2, &mut rng));
//! let logits = net.forward(Tensor::zeros(&[1, 4]), &mut Ctx::inference());
//! assert_eq!(logits.shape(), &[1, 2]);
//! ```

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_possible_wrap,
    clippy::cast_precision_loss,
    clippy::must_use_candidate,
    clippy::module_name_repetitions,
    clippy::doc_markdown,
    clippy::float_cmp,
    clippy::many_single_char_names,
    clippy::unreadable_literal,
    clippy::match_same_arms,
    clippy::missing_panics_doc,
    clippy::unusual_byte_groupings,
    clippy::cast_lossless,
    clippy::similar_names,
    clippy::too_many_arguments,
    clippy::too_many_lines,
    clippy::needless_range_loop,
    clippy::assigning_clones
)]

pub mod attention;
pub mod blocks;
pub mod data;
pub mod layer;
pub mod layers;
pub mod metrics;
pub mod models;
pub mod param;
pub mod site;
pub mod stats;
pub mod train;

pub use data::{glue_like, synthetic_images, Dataset, GlueTask, GLUE_SEQ_LEN, GLUE_VOCAB};
pub use layer::{BitTrueGemm, Ctx, Layer, PlanWeight, Tap};
pub use metrics::{accuracy, argmax_rows, f1_binary, matthews};
pub use models::{bert_t, vision_zoo, InputKind, Model};
pub use param::{Param, RefParamVisitor};
pub use site::{trace_sites, Site, SiteId, SiteTable};
pub use stats::{profile_model, LayerStats, ModelProfile};
pub use train::{
    predict, predict_one_batch_ref, predict_ref, train_classifier, OptState, Optimizer, Split,
    TrainConfig,
};
