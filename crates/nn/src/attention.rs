//! Transformer components for the BERT-style GLUE models: layer norm,
//! token/position embedding, multi-head self-attention, and the encoder
//! block. Sequence activations are `[N, T, D]`.

use crate::layer::{join_path, Ctx, Layer};
use crate::layers::{Act, ActKind, Linear, Sequential};
use crate::param::{Param, ParamVisitor, RefParamVisitor};
use mersit_tensor::{softmax_rows, Rng, Tensor};

/// Layer normalization over the last dimension with learned scale/shift.
#[derive(Debug)]
pub struct LayerNorm {
    /// Scale `[D]`.
    pub gamma: Param,
    /// Shift `[D]`.
    pub beta: Param,
    dim: usize,
    eps: f32,
    cache: Option<(Tensor, Vec<f32>)>, // (x_hat rows, inv_std per row)
}

impl LayerNorm {
    /// Layer norm over `dim` features.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        Self {
            gamma: Param::new(Tensor::full(&[dim], 1.0)),
            beta: Param::new(Tensor::zeros(&[dim])),
            dim,
            eps: 1e-5,
            cache: None,
        }
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        if !ctx.train {
            return self.forward_ref(x, ctx);
        }
        let d = self.dim;
        let rows = x.len() / d;
        let shape = x.shape().to_vec();
        let xd = x.data();
        let mut out = vec![0.0f32; x.len()];
        let mut x_hat = vec![0.0f32; x.len()];
        let mut inv_stds = vec![0.0f32; rows];
        let (gd, bd) = (self.gamma.value.data(), self.beta.value.data());
        for r in 0..rows {
            let row = &xd[r * d..(r + 1) * d];
            let mean: f32 = row.iter().sum::<f32>() / d as f32;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv = 1.0 / (var + self.eps).sqrt();
            inv_stds[r] = inv;
            for i in 0..d {
                let xh = (row[i] - mean) * inv;
                x_hat[r * d + i] = xh;
                out[r * d + i] = gd[i] * xh + bd[i];
            }
        }
        self.cache = Some((Tensor::from_vec(x_hat, &[rows, d]), inv_stds));
        Tensor::from_vec(out, &shape)
    }

    fn forward_ref(&self, x: Tensor, _ctx: &mut Ctx<'_>) -> Tensor {
        let d = self.dim;
        let rows = x.len() / d;
        let shape = x.shape().to_vec();
        let xd = x.data();
        let mut out = vec![0.0f32; x.len()];
        let (gd, bd) = (self.gamma.value.data(), self.beta.value.data());
        for r in 0..rows {
            let row = &xd[r * d..(r + 1) * d];
            let mean: f32 = row.iter().sum::<f32>() / d as f32;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv = 1.0 / (var + self.eps).sqrt();
            for i in 0..d {
                out[r * d + i] = gd[i] * (row[i] - mean) * inv + bd[i];
            }
        }
        Tensor::from_vec(out, &shape)
    }

    fn backward(&mut self, dout: Tensor) -> Tensor {
        let (x_hat, inv_stds) = self.cache.take().expect("backward before forward");
        let d = self.dim;
        let rows = dout.len() / d;
        let shape = dout.shape().to_vec();
        let dd = dout.data();
        let xh = x_hat.data();
        let gd = self.gamma.value.data().to_vec();
        let mut dgamma = vec![0.0f32; d];
        let mut dbeta = vec![0.0f32; d];
        let mut dx = vec![0.0f32; dout.len()];
        for r in 0..rows {
            let mut sum_g = 0.0f32;
            let mut sum_gx = 0.0f32;
            for i in 0..d {
                let g = dd[r * d + i] * gd[i];
                sum_g += g;
                sum_gx += g * xh[r * d + i];
                dgamma[i] += dd[r * d + i] * xh[r * d + i];
                dbeta[i] += dd[r * d + i];
            }
            for i in 0..d {
                let g = dd[r * d + i] * gd[i];
                dx[r * d + i] =
                    inv_stds[r] * (g - sum_g / d as f32 - xh[r * d + i] * sum_gx / d as f32);
            }
        }
        self.gamma.grad.axpy(1.0, &Tensor::from_vec(dgamma, &[d]));
        self.beta.grad.axpy(1.0, &Tensor::from_vec(dbeta, &[d]));
        Tensor::from_vec(dx, &shape)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut ParamVisitor<'_>) {
        f(&join_path(prefix, "gamma"), &mut self.gamma);
        f(&join_path(prefix, "beta"), &mut self.beta);
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut RefParamVisitor<'_>) {
        f(&join_path(prefix, "gamma"), &self.gamma);
        f(&join_path(prefix, "beta"), &self.beta);
    }

    fn kind(&self) -> &'static str {
        "ln"
    }
}

/// Token + learned positional embedding: `[N, T]` ids → `[N, T, D]`.
#[derive(Debug)]
pub struct Embedding {
    /// Token table `[V, D]`.
    pub table: Param,
    /// Positional table `[T_max, D]`.
    pub pos: Param,
    dim: usize,
    cache_ids: Option<Vec<usize>>,
    cache_nt: (usize, usize),
}

impl Embedding {
    /// Embedding with vocabulary `vocab`, model dim `dim`, max length
    /// `t_max`.
    #[must_use]
    pub fn new(vocab: usize, dim: usize, t_max: usize, rng: &mut Rng) -> Self {
        Self {
            table: Param::new(Tensor::randn(&[vocab, dim], 0.5, rng)),
            pos: Param::new(Tensor::randn(&[t_max, dim], 0.1, rng)),
            dim,
            cache_ids: None,
            cache_nt: (0, 0),
        }
    }
}

impl Layer for Embedding {
    fn forward(&mut self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        if !ctx.train {
            return self.forward_ref(x, ctx);
        }
        // x: [N, T] token ids stored as f32.
        let (n, t) = (x.shape()[0], x.shape()[1]);
        let d = self.dim;
        let vocab = self.table.value.shape()[0];
        let ids: Vec<usize> = x
            .data()
            .iter()
            .map(|&v| {
                let id = v as usize;
                assert!(id < vocab, "token id {id} out of vocabulary (size {vocab})");
                id
            })
            .collect();
        let (td, pd) = (self.table.value.data(), self.pos.value.data());
        let mut out = vec![0.0f32; n * t * d];
        for (row, &id) in ids.iter().enumerate() {
            let pos = row % t;
            let o = &mut out[row * d..(row + 1) * d];
            let tab = &td[id * d..(id + 1) * d];
            let pv = &pd[pos * d..(pos + 1) * d];
            for i in 0..d {
                o[i] = tab[i] + pv[i];
            }
        }
        self.cache_ids = Some(ids);
        self.cache_nt = (n, t);
        Tensor::from_vec(out, &[n, t, d])
    }

    fn forward_ref(&self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        let (n, t) = (x.shape()[0], x.shape()[1]);
        let d = self.dim;
        // Override order matches `visit_params`: table, then pos.
        let table = ctx
            .next_override()
            .map_or(&self.table.value, |pw| &pw.value);
        let pos_tab = ctx.next_override().map_or(&self.pos.value, |pw| &pw.value);
        debug_assert_eq!(table.shape(), self.table.value.shape());
        debug_assert_eq!(pos_tab.shape(), self.pos.value.shape());
        let vocab = table.shape()[0];
        let (td, pd) = (table.data(), pos_tab.data());
        let mut out = vec![0.0f32; n * t * d];
        for (row, &v) in x.data().iter().enumerate() {
            let id = v as usize;
            assert!(id < vocab, "token id {id} out of vocabulary (size {vocab})");
            let pos = row % t;
            let o = &mut out[row * d..(row + 1) * d];
            let tab = &td[id * d..(id + 1) * d];
            let pv = &pd[pos * d..(pos + 1) * d];
            for i in 0..d {
                o[i] = tab[i] + pv[i];
            }
        }
        Tensor::from_vec(out, &[n, t, d])
    }

    fn backward(&mut self, dout: Tensor) -> Tensor {
        let ids = self.cache_ids.take().expect("backward before forward");
        let (n, t) = self.cache_nt;
        let d = self.dim;
        let dd = dout.data();
        let tg = self.table.grad.data_mut();
        for (row, &id) in ids.iter().enumerate() {
            for i in 0..d {
                tg[id * d + i] += dd[row * d + i];
            }
        }
        let pg = self.pos.grad.data_mut();
        for row in 0..ids.len() {
            let pos = row % t;
            for i in 0..d {
                pg[pos * d + i] += dd[row * d + i];
            }
        }
        // Input is token ids — no upstream gradient.
        Tensor::zeros(&[n, t])
    }

    fn visit_params(&mut self, prefix: &str, f: &mut ParamVisitor<'_>) {
        f(&join_path(prefix, "table"), &mut self.table);
        f(&join_path(prefix, "pos"), &mut self.pos);
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut RefParamVisitor<'_>) {
        f(&join_path(prefix, "table"), &self.table);
        f(&join_path(prefix, "pos"), &self.pos);
    }

    fn kind(&self) -> &'static str {
        "embed"
    }
}

/// Multi-head self-attention.
#[derive(Debug)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    dim: usize,
    cache: Option<MhaCache>,
}

#[derive(Debug)]
struct MhaCache {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    probs: Vec<Tensor>, // one [T, T] per (n, head)
    nt: (usize, usize),
}

impl MultiHeadAttention {
    /// MHA with `heads` heads over model dim `dim` (must divide evenly).
    ///
    /// # Panics
    ///
    /// Panics unless `dim % heads == 0`.
    #[must_use]
    pub fn new(dim: usize, heads: usize, rng: &mut Rng) -> Self {
        assert_eq!(dim % heads, 0, "dim must be divisible by heads");
        Self {
            wq: Linear::new(dim, dim, rng),
            wk: Linear::new(dim, dim, rng),
            wv: Linear::new(dim, dim, rng),
            wo: Linear::new(dim, dim, rng),
            heads,
            dim,
            cache: None,
        }
    }

    /// Extracts head `h` of row-major `[N·T, D]` as `[T, dh]` for batch `n`.
    fn head(&self, x: &Tensor, n: usize, h: usize, t: usize) -> Tensor {
        let dh = self.dim / self.heads;
        let xd = x.data();
        let mut out = vec![0.0f32; t * dh];
        for ti in 0..t {
            let row = (n * t + ti) * self.dim + h * dh;
            out[ti * dh..(ti + 1) * dh].copy_from_slice(&xd[row..row + dh]);
        }
        Tensor::from_vec(out, &[t, dh])
    }

    fn scatter_head(&self, dst: &mut Tensor, src: &Tensor, n: usize, h: usize, t: usize) {
        let dh = self.dim / self.heads;
        let dd = dst.data_mut();
        let sd = src.data();
        for ti in 0..t {
            let row = (n * t + ti) * self.dim + h * dh;
            dd[row..row + dh].copy_from_slice(&sd[ti * dh..(ti + 1) * dh]);
        }
    }
}

impl Layer for MultiHeadAttention {
    fn forward(&mut self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        if !ctx.train {
            return self.forward_ref(x, ctx);
        }
        let (n, t, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        assert_eq!(d, self.dim, "model dim mismatch");
        let dh = d / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        ctx.push("wq");
        let q = self.wq.forward(x.clone(), ctx);
        ctx.pop();
        ctx.push("wk");
        let k = self.wk.forward(x.clone(), ctx);
        ctx.pop();
        ctx.push("wv");
        let v = self.wv.forward(x, ctx);
        ctx.pop();
        let mut concat = Tensor::zeros(&[n, t, d]);
        let mut probs = Vec::with_capacity(n * self.heads);
        for ni in 0..n {
            for h in 0..self.heads {
                let qh = self.head(&q, ni, h, t);
                let kh = self.head(&k, ni, h, t);
                let vh = self.head(&v, ni, h, t);
                let scores = qh.matmul(&kh.transpose()).scale(scale);
                let p = softmax_rows(&scores);
                let oh = p.matmul(&vh);
                self.scatter_head(&mut concat, &oh, ni, h, t);
                probs.push(p);
            }
        }
        self.cache = Some(MhaCache {
            q,
            k,
            v,
            probs,
            nt: (n, t),
        });
        ctx.push("wo");
        let out = self.wo.forward(concat, ctx);
        ctx.pop();
        out
    }

    fn forward_ref(&self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        let (n, t, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        assert_eq!(d, self.dim, "model dim mismatch");
        let dh = d / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        ctx.push("wq");
        let q = self.wq.forward_ref(x.clone(), ctx);
        ctx.pop();
        ctx.push("wk");
        let k = self.wk.forward_ref(x.clone(), ctx);
        ctx.pop();
        ctx.push("wv");
        let v = self.wv.forward_ref(x, ctx);
        ctx.pop();
        let mut concat = Tensor::zeros(&[n, t, d]);
        for ni in 0..n {
            for h in 0..self.heads {
                let qh = self.head(&q, ni, h, t);
                let kh = self.head(&k, ni, h, t);
                let vh = self.head(&v, ni, h, t);
                let scores = qh.matmul(&kh.transpose()).scale(scale);
                let p = softmax_rows(&scores);
                let oh = p.matmul(&vh);
                self.scatter_head(&mut concat, &oh, ni, h, t);
            }
        }
        ctx.push("wo");
        let out = self.wo.forward_ref(concat, ctx);
        ctx.pop();
        out
    }

    fn backward(&mut self, dout: Tensor) -> Tensor {
        let MhaCache { q, k, v, probs, nt } = self.cache.take().expect("backward before forward");
        let (n, t) = nt;
        let d = self.dim;
        let dh = d / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let dconcat = self.wo.backward(dout);
        let mut dq = Tensor::zeros(&[n, t, d]);
        let mut dk = Tensor::zeros(&[n, t, d]);
        let mut dv = Tensor::zeros(&[n, t, d]);
        for ni in 0..n {
            for h in 0..self.heads {
                let p = &probs[ni * self.heads + h];
                let doh = self.head(&dconcat, ni, h, t);
                let qh = self.head(&q, ni, h, t);
                let kh = self.head(&k, ni, h, t);
                let vh = self.head(&v, ni, h, t);
                // dV = Pᵀ · dO
                let dvh = p.transpose().matmul(&doh);
                // dP = dO · Vᵀ
                let dp = doh.matmul(&vh.transpose());
                // dS = P ∘ (dP − rowsum(dP ∘ P))
                let mut ds = Tensor::zeros(&[t, t]);
                for r in 0..t {
                    let prow = &p.data()[r * t..(r + 1) * t];
                    let dprow = &dp.data()[r * t..(r + 1) * t];
                    let dot: f32 = prow.iter().zip(dprow).map(|(a, b)| a * b).sum();
                    for c in 0..t {
                        ds.data_mut()[r * t + c] = prow[c] * (dprow[c] - dot);
                    }
                }
                let ds = ds.scale(scale);
                // dQ = dS · K ; dK = dSᵀ · Q
                let dqh = ds.matmul(&kh);
                let dkh = ds.transpose().matmul(&qh);
                self.scatter_head(&mut dq, &dqh, ni, h, t);
                self.scatter_head(&mut dk, &dkh, ni, h, t);
                self.scatter_head(&mut dv, &dvh, ni, h, t);
            }
        }
        let gx_q = self.wq.backward(dq);
        let gx_k = self.wk.backward(dk);
        let gx_v = self.wv.backward(dv);
        gx_q.add(&gx_k).add(&gx_v)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut ParamVisitor<'_>) {
        self.wq.visit_params(&join_path(prefix, "wq"), f);
        self.wk.visit_params(&join_path(prefix, "wk"), f);
        self.wv.visit_params(&join_path(prefix, "wv"), f);
        self.wo.visit_params(&join_path(prefix, "wo"), f);
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut RefParamVisitor<'_>) {
        self.wq.visit_params_ref(&join_path(prefix, "wq"), f);
        self.wk.visit_params_ref(&join_path(prefix, "wk"), f);
        self.wv.visit_params_ref(&join_path(prefix, "wv"), f);
        self.wo.visit_params_ref(&join_path(prefix, "wo"), f);
    }

    fn kind(&self) -> &'static str {
        "mha"
    }
}

/// Pre-norm transformer encoder block:
/// `x + MHA(LN(x))` then `x + FFN(LN(x))`.
#[derive(Debug)]
pub struct TransformerBlock {
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    ln2: LayerNorm,
    ffn: Sequential,
}

impl TransformerBlock {
    /// Encoder block with FFN expansion factor `ffn_mult`.
    #[must_use]
    pub fn new(dim: usize, heads: usize, ffn_mult: usize, rng: &mut Rng) -> Self {
        let mut ffn = Sequential::new();
        ffn.push(Linear::new(dim, dim * ffn_mult, rng));
        ffn.push(Act::new(ActKind::Gelu));
        ffn.push(Linear::new(dim * ffn_mult, dim, rng));
        Self {
            ln1: LayerNorm::new(dim),
            attn: MultiHeadAttention::new(dim, heads, rng),
            ln2: LayerNorm::new(dim),
            ffn,
        }
    }
}

impl Layer for TransformerBlock {
    fn fold_bn(&mut self) {
        self.ffn.fold_bn();
    }

    fn forward(&mut self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        if !ctx.train {
            return self.forward_ref(x, ctx);
        }
        ctx.push("ln1");
        let h = self.ln1.forward(x.clone(), ctx);
        let h = ctx.tap_activation(h);
        ctx.pop();
        ctx.push("attn");
        let a = self.attn.forward(h, ctx);
        let a = ctx.tap_activation(a);
        ctx.pop();
        let x1 = x.add(&a);
        ctx.push("ln2");
        let h2 = self.ln2.forward(x1.clone(), ctx);
        let h2 = ctx.tap_activation(h2);
        ctx.pop();
        ctx.push("ffn");
        let f = self.ffn.forward(h2, ctx);
        ctx.pop();
        let out = x1.add(&f);
        ctx.push("out");
        let out = ctx.tap_activation(out);
        ctx.pop();
        out
    }

    fn forward_ref(&self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        ctx.push("ln1");
        let h = self.ln1.forward_ref(x.clone(), ctx);
        let h = ctx.tap_activation(h);
        ctx.pop();
        ctx.push("attn");
        let a = self.attn.forward_ref(h, ctx);
        let a = ctx.tap_activation(a);
        ctx.pop();
        let x1 = x.add(&a);
        ctx.push("ln2");
        let h2 = self.ln2.forward_ref(x1.clone(), ctx);
        let h2 = ctx.tap_activation(h2);
        ctx.pop();
        ctx.push("ffn");
        let f = self.ffn.forward_ref(h2, ctx);
        ctx.pop();
        let out = x1.add(&f);
        ctx.push("out");
        let out = ctx.tap_activation(out);
        ctx.pop();
        out
    }

    fn backward(&mut self, dout: Tensor) -> Tensor {
        // out = x1 + ffn(ln2(x1)); x1 = x + attn(ln1(x))
        let df = self.ffn.backward(dout.clone());
        let dx1 = dout.add(&self.ln2.backward(df));
        let da = self.attn.backward(dx1.clone());
        dx1.add(&self.ln1.backward(da))
    }

    fn visit_params(&mut self, prefix: &str, f: &mut ParamVisitor<'_>) {
        self.ln1.visit_params(&join_path(prefix, "ln1"), f);
        self.attn.visit_params(&join_path(prefix, "attn"), f);
        self.ln2.visit_params(&join_path(prefix, "ln2"), f);
        self.ffn.visit_params(&join_path(prefix, "ffn"), f);
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut RefParamVisitor<'_>) {
        self.ln1.visit_params_ref(&join_path(prefix, "ln1"), f);
        self.attn.visit_params_ref(&join_path(prefix, "attn"), f);
        self.ln2.visit_params_ref(&join_path(prefix, "ln2"), f);
        self.ffn.visit_params_ref(&join_path(prefix, "ffn"), f);
    }

    fn kind(&self) -> &'static str {
        "transformer"
    }
}

/// Selects the first (CLS) token: `[N, T, D] → [N, D]`.
#[derive(Debug, Default)]
pub struct TakeCls {
    cache_shape: Vec<usize>,
}

impl TakeCls {
    /// Creates the layer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for TakeCls {
    fn forward(&mut self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        if ctx.train {
            self.cache_shape = x.shape().to_vec();
        }
        self.forward_ref(x, ctx)
    }

    fn forward_ref(&self, x: Tensor, _ctx: &mut Ctx<'_>) -> Tensor {
        let (n, t, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let xd = x.data();
        let mut out = vec![0.0f32; n * d];
        for ni in 0..n {
            out[ni * d..(ni + 1) * d].copy_from_slice(&xd[ni * t * d..ni * t * d + d]);
        }
        Tensor::from_vec(out, &[n, d])
    }

    fn backward(&mut self, dout: Tensor) -> Tensor {
        let (n, t, d) = (
            self.cache_shape[0],
            self.cache_shape[1],
            self.cache_shape[2],
        );
        let mut dx = vec![0.0f32; n * t * d];
        let dd = dout.data();
        for ni in 0..n {
            dx[ni * t * d..ni * t * d + d].copy_from_slice(&dd[ni * d..(ni + 1) * d]);
        }
        Tensor::from_vec(dx, &self.cache_shape)
    }

    fn visit_params(&mut self, _prefix: &str, _f: &mut ParamVisitor<'_>) {}

    fn visit_params_ref(&self, _prefix: &str, _f: &mut RefParamVisitor<'_>) {}

    fn kind(&self) -> &'static str {
        "cls"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dot(a: &Tensor, b: &Tensor) -> f32 {
        a.data().iter().zip(b.data()).map(|(x, y)| x * y).sum()
    }

    fn numeric_input_check(layer: &mut dyn Layer, x: &Tensor, picks: &[usize], tol: f32) {
        let mut rng = Rng::new(123);
        let y = layer.forward(x.clone(), &mut Ctx::training());
        let r = Tensor::randn(y.shape(), 1.0, &mut rng);
        let dx = layer.backward(r.clone());
        let eps = 1e-2;
        for &i in picks {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let yp = layer.forward(xp, &mut Ctx::training());
            let _ = layer.backward(r.clone());
            let ym = layer.forward(xm, &mut Ctx::training());
            let _ = layer.backward(r.clone());
            let num = (dot(&yp, &r) - dot(&ym, &r)) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < tol,
                "dx[{i}]: numeric {num} vs analytic {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn layernorm_normalizes_rows() {
        let mut ln = LayerNorm::new(8);
        let mut rng = Rng::new(1);
        let x = Tensor::randn(&[3, 8], 2.0, &mut rng).map(|v| v + 7.0);
        let y = ln.forward(x, &mut Ctx::inference());
        for r in 0..3 {
            let row = &y.data()[r * 8..(r + 1) * 8];
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4);
        }
    }

    #[test]
    fn layernorm_backward_numerical() {
        let mut rng = Rng::new(2);
        let mut ln = LayerNorm::new(6);
        ln.gamma.value = Tensor::randn(&[6], 0.3, &mut rng).map(|v| v + 1.0);
        let x = Tensor::randn(&[4, 6], 1.0, &mut rng);
        numeric_input_check(&mut ln, &x, &[0, 7, 13, 23], 3e-2);
    }

    #[test]
    fn embedding_gathers_and_accumulates() {
        let mut rng = Rng::new(3);
        let mut emb = Embedding::new(10, 4, 5, &mut rng);
        let ids = Tensor::from_vec(vec![2.0, 7.0, 2.0, 0.0], &[2, 2]);
        let y = emb.forward(ids, &mut Ctx::training());
        assert_eq!(y.shape(), &[2, 2, 4]);
        // Same token at different positions differs only by the positional
        // embedding.
        let tok2_pos0: Vec<f32> = (0..4).map(|i| y.at(&[0, 0, i])).collect();
        let tok2_pos0b: Vec<f32> = (0..4).map(|i| y.at(&[1, 0, i])).collect();
        assert_eq!(tok2_pos0, tok2_pos0b);
        // Backward accumulates into the right rows.
        let g = Tensor::full(&[2, 2, 4], 1.0);
        let _ = emb.backward(g);
        // token 2 appears twice → grad 2 per component.
        assert_eq!(emb.table.grad.at(&[2, 0]), 2.0);
        assert_eq!(emb.table.grad.at(&[7, 0]), 1.0);
        assert_eq!(emb.table.grad.at(&[5, 0]), 0.0);
    }

    #[test]
    fn mha_forward_shape_and_permutation_sanity() {
        let mut rng = Rng::new(4);
        let mut mha = MultiHeadAttention::new(8, 2, &mut rng);
        let x = Tensor::randn(&[2, 5, 8], 1.0, &mut rng);
        let y = mha.forward(x, &mut Ctx::inference());
        assert_eq!(y.shape(), &[2, 5, 8]);
    }

    #[test]
    fn mha_backward_numerical() {
        let mut rng = Rng::new(5);
        let mut mha = MultiHeadAttention::new(4, 2, &mut rng);
        let x = Tensor::randn(&[1, 3, 4], 1.0, &mut rng);
        numeric_input_check(&mut mha, &x, &[0, 3, 7, 11], 3e-2);
    }

    #[test]
    fn transformer_block_backward_numerical() {
        let mut rng = Rng::new(6);
        let mut blk = TransformerBlock::new(4, 2, 2, &mut rng);
        let x = Tensor::randn(&[1, 3, 4], 1.0, &mut rng);
        numeric_input_check(&mut blk, &x, &[0, 5, 11], 5e-2);
    }

    #[test]
    fn take_cls_picks_first_token() {
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[2, 3, 2]);
        let mut cls = TakeCls::new();
        let y = cls.forward(x, &mut Ctx::training());
        assert_eq!(y.data(), &[0., 1., 6., 7.]);
        let dx = cls.backward(Tensor::full(&[2, 2], 1.0));
        assert_eq!(dx.sum(), 4.0);
        assert_eq!(dx.at(&[0, 0, 1]), 1.0);
        assert_eq!(dx.at(&[0, 1, 0]), 0.0);
    }
}
